// govdns_dig — a minimal dig-style lookup tool over real UDP sockets.
//
//   govdns_dig @<server-ip> [-p port] <name> [type]
//
// Sends one query with the library's wire codec and prints the decoded
// response (plus round-trip classification), e.g.:
//
//   govdns_dig @127.0.0.1 -p 5353 www.gov.xx A
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/resolver.h"
#include "netio/udp.h"

namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr, "usage: %s @<server-ip> [-p port] <name> [type]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace govdns;

  std::string server_text;
  std::string name_text;
  std::string type_text = "A";
  uint16_t port = 53;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.size() > 1 && arg[0] == '@') {
      server_text = arg.substr(1);
    } else if (arg == "-p" && i + 1 < argc) {
      port = static_cast<uint16_t>(std::atoi(argv[++i]));
    } else if (name_text.empty()) {
      name_text = arg;
    } else {
      type_text = arg;
    }
  }
  if (server_text.empty() || name_text.empty()) return Usage(argv[0]);

  auto server = geo::IPv4::Parse(server_text);
  if (!server.ok()) {
    std::fprintf(stderr, "bad server address: %s\n", server_text.c_str());
    return 2;
  }
  auto name = dns::Name::Parse(name_text);
  if (!name.ok()) {
    std::fprintf(stderr, "bad name: %s\n", name_text.c_str());
    return 2;
  }
  for (char& c : type_text) c = static_cast<char>(std::toupper(c));
  auto type = dns::RRTypeFromName(type_text);
  if (!type.ok()) {
    std::fprintf(stderr, "bad type: %s\n", type_text.c_str());
    return 2;
  }

  netio::UdpTransport::Options options;
  options.port = port;
  netio::UdpTransport transport(options);
  core::IterativeResolver resolver(&transport, {*server});

  core::ServerReply reply = resolver.QueryServer(*server, *name, *type);
  switch (reply.outcome) {
    case core::QueryOutcome::kTimeout:
      std::printf(";; timeout\n");
      return 1;
    case core::QueryOutcome::kUnreachable:
      std::printf(";; unreachable\n");
      return 1;
    case core::QueryOutcome::kMalformed:
      std::printf(";; malformed response\n");
      return 1;
    default:
      break;
  }
  std::fputs(reply.message->ToString().c_str(), stdout);
  return 0;
}
