// govdns_lint — RFC 1912-style hygiene checks for a zone file (the §V-B
// "tools for DNS debugging" remedy).
//
//   govdns_lint --zone <file> [--origin <name>] [--parent-ns ns1,ns2,...]
//               [--strict]
//
// Exit status: 0 clean, 1 findings, 2 usage/parse error.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "util/strings.h"
#include "zone/lint.h"
#include "zone/zonefile.h"

namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --zone <file> [--origin <name>] "
               "[--parent-ns ns1,ns2] [--strict]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace govdns;

  std::string zone_path;
  std::string origin_text = ".";
  std::string parent_ns_text;
  zone::LintOptions options;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--zone") {
      if (const char* v = next()) zone_path = v;
    } else if (arg == "--origin") {
      if (const char* v = next()) origin_text = v;
    } else if (arg == "--parent-ns") {
      if (const char* v = next()) parent_ns_text = v;
    } else if (arg == "--strict") {
      options.strict_replication = true;
    } else {
      return Usage(argv[0]);
    }
  }
  if (zone_path.empty()) return Usage(argv[0]);

  std::ifstream in(zone_path);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", zone_path.c_str());
    return 2;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();

  auto origin = dns::Name::Parse(origin_text);
  if (!origin.ok()) {
    std::fprintf(stderr, "bad origin: %s\n", origin_text.c_str());
    return 2;
  }
  auto zone = zone::ParseZoneFile(buffer.str(), *origin);
  if (!zone.ok()) {
    std::fprintf(stderr, "parse error: %s\n", zone.status().ToString().c_str());
    return 2;
  }

  auto findings = zone::LintZone(*zone, options);
  if (!parent_ns_text.empty()) {
    std::vector<dns::Name> parent_ns;
    for (const std::string& token : util::Split(parent_ns_text, ',')) {
      auto name = dns::Name::Parse(token);
      if (!name.ok()) {
        std::fprintf(stderr, "bad parent NS name: %s\n", token.c_str());
        return 2;
      }
      parent_ns.push_back(*name);
    }
    auto delegation = zone::LintDelegation(*zone, parent_ns);
    findings.insert(findings.end(), delegation.begin(), delegation.end());
  }

  for (const auto& finding : findings) {
    std::printf("%s\n", finding.ToString().c_str());
  }
  std::printf("%zu finding(s) in %s (%zu records)\n", findings.size(),
              zone->origin().ToString().c_str(), zone->record_count());
  return findings.empty() ? 0 : 1;
}
