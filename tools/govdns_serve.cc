// govdns_serve — serve a master-format zone file over real UDP.
//
//   govdns_serve --zone <file> [--origin <name>] [--port N] [--duration S]
//
// Parses the zone with the library's RFC 1035 master-file parser, wraps it
// in an authoritative server, and answers real DNS queries on 127.0.0.1.
// Pair it with govdns_dig (or dig/kdig) to poke at a zone interactively:
//
//   govdns_serve --zone gov.xx.zone --port 5353 &
//   govdns_dig @127.0.0.1 -p 5353 www.gov.xx A
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <thread>

#include "netio/udp.h"
#include "zone/auth_server.h"
#include "zone/zonefile.h"

namespace {

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --zone <file> [--origin <name>] [--port N] [--duration S]\n",
      argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace govdns;

  std::string zone_path;
  std::string origin_text = ".";
  uint16_t port = 5353;
  int duration_s = 0;  // 0: run until stdin closes

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--zone") {
      if (const char* v = next()) zone_path = v;
    } else if (arg == "--origin") {
      if (const char* v = next()) origin_text = v;
    } else if (arg == "--port") {
      if (const char* v = next()) port = static_cast<uint16_t>(std::atoi(v));
    } else if (arg == "--duration") {
      if (const char* v = next()) duration_s = std::atoi(v);
    } else {
      return Usage(argv[0]);
    }
  }
  if (zone_path.empty()) return Usage(argv[0]);

  std::ifstream in(zone_path);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", zone_path.c_str());
    return 1;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();

  auto origin = dns::Name::Parse(origin_text);
  if (!origin.ok()) {
    std::fprintf(stderr, "bad origin: %s\n", origin_text.c_str());
    return 2;
  }
  auto zone = zone::ParseZoneFile(buffer.str(), *origin);
  if (!zone.ok()) {
    std::fprintf(stderr, "zone parse error: %s\n",
                 zone.status().ToString().c_str());
    return 1;
  }
  auto shared = std::make_shared<zone::Zone>(*std::move(zone));
  std::printf("loaded %s: %zu records, origin %s\n", zone_path.c_str(),
              shared->record_count(), shared->origin().ToString().c_str());

  zone::AuthServer auth("govdns-serve");
  auth.AddZone(shared);

  netio::UdpServer server;
  auto status = server.Start(
      geo::IPv4(127, 0, 0, 1), port,
      [&auth](const std::vector<uint8_t>& wire) -> std::vector<uint8_t> {
        auto query = dns::Message::Decode(wire);
        if (!query.ok()) return {};
        return auth.Answer(*query).Encode();
      });
  if (!status.ok()) {
    std::fprintf(stderr, "cannot start server: %s\n",
                 status.ToString().c_str());
    return 1;
  }
  std::printf("serving on 127.0.0.1:%u", server.port());
  if (duration_s > 0) {
    std::printf(" for %d s\n", duration_s);
    std::this_thread::sleep_for(std::chrono::seconds(duration_s));
  } else {
    std::printf(" until stdin closes\n");
    std::string line;
    while (std::getline(std::cin, line)) {
    }
  }
  std::printf("served %llu requests\n",
              static_cast<unsigned long long>(server.requests_served()));
  server.Stop();
  return 0;
}
