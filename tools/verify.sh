#!/usr/bin/env bash
# Tier-1 verification, twice: a normal release build and an ASan+UBSan
# build. The sanitized pass exists because the chaos model deliberately
# feeds the wire-format parsers corrupted datagrams; memory bugs there must
# fail CI, not just crash probabilistically.
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS=${JOBS:-$(nproc)}

echo "==> tier-1: release build + ctest"
cmake --preset release >/dev/null
cmake --build --preset release -j "${JOBS}"
ctest --preset release -j "${JOBS}"

echo "==> tier-1: asan/ubsan build + ctest"
cmake --preset asan >/dev/null
cmake --build --preset asan -j "${JOBS}"
ctest --preset asan -j "${JOBS}"

echo "==> tier-1: tsan build + concurrency suites"
# The sharded measurement pool (shared cut cache, SimNetwork striping,
# per-worker merges) must be race-free, not just correct-when-lucky. Run the
# suites that exercise the parallel path under ThreadSanitizer; the binaries
# are invoked directly so gtest filters stay simple and reliable.
cmake --preset tsan >/dev/null
cmake --build --preset tsan -j "${JOBS}" --target \
  simnet_test resolver_test measure_test parallel_measure_test \
  chaos_resilience_test
for t in simnet_test resolver_test measure_test parallel_measure_test \
         chaos_resilience_test; do
  echo "==> tsan: ${t}"
  "./build-tsan/tests/${t}"
done

echo "==> verify OK (release + sanitized + tsan)"
