#!/usr/bin/env bash
# Tier-1 verification, twice: a normal release build and an ASan+UBSan
# build. The sanitized pass exists because the chaos model deliberately
# feeds the wire-format parsers corrupted datagrams; memory bugs there must
# fail CI, not just crash probabilistically.
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS=${JOBS:-$(nproc)}
# Hard wall-clock cap on every ctest invocation: the degradation model
# (DESIGN.md §6g) exists precisely because hangs happen, and the harness
# that tests it must not itself hang CI when a regression wedges a worker.
CTEST_TIMEOUT=${CTEST_TIMEOUT:-900}

echo "==> tier-1: release build + ctest"
cmake --preset release >/dev/null
cmake --build --preset release -j "${JOBS}"
timeout "${CTEST_TIMEOUT}" ctest --preset release -j "${JOBS}"

echo "==> smoke: govdns_study observability exports parse"
# The release binary must produce valid JSON from --json/--metrics/--trace
# on a small world, and the metrics document must carry the measurement
# counters — a cheap end-to-end check that the obs layer is actually wired.
SMOKE_DIR=$(mktemp -d)
trap 'rm -rf "${SMOKE_DIR}"' EXIT
./build/tools/govdns_study --scale 0.01 --no-report \
  --json "${SMOKE_DIR}/report.json" \
  --metrics "${SMOKE_DIR}/metrics.json" \
  --trace "${SMOKE_DIR}/trace.json" 2>/dev/null
python3 - "${SMOKE_DIR}" <<'EOF'
import json, pathlib, sys
d = pathlib.Path(sys.argv[1])
report = json.loads((d / "report.json").read_text())
assert "resilience" in report and "profile" in report, sorted(report)
assert any(p["name"] == "measurement" for p in report["profile"])
metrics = json.loads((d / "metrics.json").read_text())
counters = {c["name"] for c in metrics["counters"]}
assert "measure.queries" in counters, sorted(counters)
assert "mining.domains" in counters, sorted(counters)
trace = json.loads((d / "trace.json").read_text())
assert trace["folded_domains"] >= len(trace["domains"])
print("smoke: report/metrics/trace exports parse OK")
EOF

echo "==> smoke: bench_parallel_mine (identity + fold scaling, both sweeps)"
# The mining pool is only allowed to change wall-clock time, never bytes —
# at every worker count, on every snapshot substrate, at world scale and at
# the 10x GOVDNS_MINE_SCALE sweep. The parallel-fold refactor must also
# actually scale: >=3.5x at 4 workers, measured when the host has the cores
# to show it, otherwise via the Amdahl projection from the profiled
# 1-worker phase decomposition (DESIGN.md §6j).
GOVDNS_SCALE=0.05 GOVDNS_MINE_SCALE=0.5 \
  GOVDNS_MINING_JSON="${SMOKE_DIR}/BENCH_mining.json" \
  ./build/bench/bench_parallel_mine --benchmark_filter='^$' >/dev/null 2>&1
python3 - "${SMOKE_DIR}/BENCH_mining.json" <<'EOF'
import json, sys
doc = json.loads(open(sys.argv[1]).read())

def check(sweep, tag):
    points = {p["workers"]: p for p in sweep["sweep"]}
    assert {1, 2, 4, 8} <= set(points), (tag, sorted(points))
    assert all(p["identical_to_serial"] for p in sweep["sweep"]), (tag, sweep)
    subs = sweep["substrates"]
    assert {(s["substrate"], s["workers"]) for s in subs} == \
        {("owning", 1), ("owning", 4), ("mapped", 1), ("mapped", 4)}, (tag, subs)
    assert all(s["identical_to_serial"] for s in subs), (tag, subs)
    p4 = points[4]
    speedup = p4["speedup_vs_serial"] if doc["cores"] >= 4 \
        else p4["projected_speedup"]
    kind = "measured" if doc["cores"] >= 4 else "projected"
    assert speedup >= 3.5, (tag, kind, speedup)
    print(f"smoke: mining sweep {tag}: identity OK, "
          f"{kind} 4-worker speedup {speedup:.2f}x >= 3.5x")

check(doc, f"scale={doc['scale']}")
big = doc.get("mine_scale_sweep")
assert big is not None, sorted(doc)
check(big, f"scale={big['scale']}")
EOF

echo "==> smoke: checkpoint kill/resume (byte-identical report)"
# Kill the study at several journal write points via --ckpt-kill-after,
# resume, and require the exported report to match an uninterrupted
# checkpointed baseline byte for byte (DESIGN.md §6f). The kill run must
# exit with the dedicated kill-point code (42) so a crash-for-another-reason
# can never masquerade as a successful fault injection.
CKPT_DIR="${SMOKE_DIR}/ckpt"
./build/tools/govdns_study --scale 0.01 --no-report \
  --checkpoint-dir "${CKPT_DIR}/base" \
  --json "${SMOKE_DIR}/ckpt_base.json" 2>"${SMOKE_DIR}/ckpt_base.err"
WRITES=$(python3 -c '
import json, re, sys
text = open(sys.argv[1]).read()
m = re.search(r"\[ckpt\] stats (\{.*\})", text)
assert m, text
print(json.loads(m.group(1))["commits"])' "${SMOKE_DIR}/ckpt_base.err")
echo "smoke: baseline checkpointed run journals ${WRITES} writes"
for K in 1 $((WRITES / 2)) "${WRITES}"; do
  DIR="${CKPT_DIR}/kill_${K}"
  set +e
  ./build/tools/govdns_study --scale 0.01 --no-report \
    --checkpoint-dir "${DIR}" --ckpt-kill-after "${K}" \
    --json "${SMOKE_DIR}/ckpt_killed.json" 2>/dev/null
  STATUS=$?
  set -e
  if [ "${STATUS}" -ne 42 ]; then
    echo "smoke: kill at write ${K} exited ${STATUS}, expected 42" >&2
    exit 1
  fi
  ./build/tools/govdns_study --scale 0.01 --no-report \
    --checkpoint-dir "${DIR}" --resume \
    --json "${SMOKE_DIR}/ckpt_resumed.json" 2>/dev/null
  cmp "${SMOKE_DIR}/ckpt_base.json" "${SMOKE_DIR}/ckpt_resumed.json"
  echo "smoke: kill at write ${K} -> resume -> report byte-identical OK"
done

echo "==> smoke: multi-vantage supervision (kill a vantage, identical merge)"
# Three supervised multi-vantage runs on the same seed: uninterrupted, one
# shard crashed at a journal write point (the supervisor restarts it from
# its own journal), and one shard SIGKILLed mid-run on the wall clock. All
# three merged cross-vantage disagreement reports must be byte-identical
# (DESIGN.md §6k) — fault recovery may cost time, never bytes.
VANT_DIR="${SMOKE_DIR}/vantage"
./build/tools/govdns_study --scale 0.01 --seed 7 --no-report \
  --vantages 2 --checkpoint-dir "${VANT_DIR}/base" \
  --json "${SMOKE_DIR}/vant_base.json" 2>/dev/null
./build/tools/govdns_study --scale 0.01 --seed 7 --no-report \
  --vantages 2 --checkpoint-dir "${VANT_DIR}/crash" \
  --vantage-kill-after v1-far:3 \
  --json "${SMOKE_DIR}/vant_crash.json" 2>/dev/null
cmp "${SMOKE_DIR}/vant_base.json" "${SMOKE_DIR}/vant_crash.json"
./build/tools/govdns_study --scale 0.01 --seed 7 --no-report \
  --vantages 2 --checkpoint-dir "${VANT_DIR}/sigkill" \
  --vantage-sigkill v0-base:150 \
  --json "${SMOKE_DIR}/vant_sigkill.json" 2>/dev/null
cmp "${SMOKE_DIR}/vant_base.json" "${SMOKE_DIR}/vant_sigkill.json"
python3 - "${SMOKE_DIR}/vant_base.json" <<'EOF'
import json, sys
doc = json.loads(open(sys.argv[1]).read())
assert doc["vantages"], sorted(doc)
assert not doc["lost"], doc["lost"]
compared = doc["disagreement"]["countries_compared"]
assert compared > 0, doc["disagreement"]
print(f"smoke: vantage crash/SIGKILL -> restart -> merge byte-identical OK "
      f"({compared} countries compared)")
EOF

echo "==> smoke: snapshot file round-trip (mapped mining == frozen mining)"
# Write the world's PDNS database as a GVSN snapshot, then rerun the same
# study mining the mmapped file instead of freezing the database; the two
# exported reports must be byte-identical (DESIGN.md §6i).
SNAP="${SMOKE_DIR}/pdns.gvsn"
./build/tools/govdns_study --scale 0.01 --no-report \
  --snapshot-file "${SNAP}" \
  --json "${SMOKE_DIR}/snap_base.json" 2>/dev/null
./build/tools/govdns_study --scale 0.01 --no-report \
  --map-snapshot "${SNAP}" \
  --json "${SMOKE_DIR}/snap_mapped.json" 2>"${SMOKE_DIR}/snap_mapped.err"
cmp "${SMOKE_DIR}/snap_base.json" "${SMOKE_DIR}/snap_mapped.json"
grep -q "mapped ${SNAP}" "${SMOKE_DIR}/snap_mapped.err"
echo "smoke: mapped-snapshot report byte-identical OK"

echo "==> smoke: bench_snapshot_io (mapped open beats parse-load)"
# The zero-copy resume path must actually be faster than re-decoding, and
# mining any snapshot substrate at 1 or 4 workers must reproduce the
# database-mined dataset exactly.
GOVDNS_SCALE=0.05 GOVDNS_SNAPSHOT_JSON="${SMOKE_DIR}/BENCH_snapshot.json" \
  ./build/bench/bench_snapshot_io --benchmark_filter='^$' >/dev/null 2>&1
python3 - "${SMOKE_DIR}/BENCH_snapshot.json" <<'EOF'
import json, sys
doc = json.loads(open(sys.argv[1]).read())
assert doc["mapped_vs_parse_speedup"] > 1.0, doc
assert all(doc["mining_identity"].values()), doc
print(f"smoke: bench_snapshot_io speedup "
      f"{doc['mapped_vs_parse_speedup']:.1f}x, mining identity OK")
EOF

echo "==> smoke: bench_query_engine (async engine >=10x sync loop)"
# The async engine exists to lift the real-socket path off the
# thread-per-query ceiling (DESIGN.md §6h). Run the bench artifact against
# the loopback echo server and assert the best window beats the 4-worker
# synchronous loop by at least 10x.
GOVDNS_NETIO_JSON="${SMOKE_DIR}/BENCH_netio.json" \
  ./build/bench/bench_query_engine --benchmark_filter='^$' >/dev/null 2>&1
python3 - "${SMOKE_DIR}/BENCH_netio.json" <<'EOF'
import json, sys
doc = json.loads(open(sys.argv[1]).read())
assert doc["max_ratio"] >= 10.0, doc
windows = {p["window"] for p in doc["sweep"]}
assert {64, 256, 1024} <= windows, sorted(windows)
print(f"smoke: bench_query_engine max_ratio {doc['max_ratio']:.1f}x OK")
EOF

echo "==> tier-1: asan/ubsan build + ctest"
cmake --preset asan >/dev/null
cmake --build --preset asan -j "${JOBS}"
timeout "${CTEST_TIMEOUT}" ctest --preset asan -j "${JOBS}"

echo "==> smoke: snapshot round-trip + mmap load under asan/ubsan"
# The mapped reader reinterprets file bytes in place; any bounds slip must
# trip the sanitizers here, not corrupt a real resume.
./build-asan/tools/govdns_study --scale 0.01 --no-report \
  --snapshot-file "${SMOKE_DIR}/asan.gvsn" \
  --json "${SMOKE_DIR}/asan_base.json" 2>/dev/null
./build-asan/tools/govdns_study --scale 0.01 --no-report \
  --map-snapshot "${SMOKE_DIR}/asan.gvsn" \
  --json "${SMOKE_DIR}/asan_mapped.json" 2>/dev/null
cmp "${SMOKE_DIR}/asan_base.json" "${SMOKE_DIR}/asan_mapped.json"
echo "smoke: asan snapshot round-trip OK"

echo "==> tier-1: ubsan-only build + ctest (hard-fail on UB)"
cmake --preset ubsan >/dev/null
cmake --build --preset ubsan -j "${JOBS}"
timeout "${CTEST_TIMEOUT}" ctest --preset ubsan -j "${JOBS}"

echo "==> smoke: snapshot round-trip + mmap load under ubsan"
./build-ubsan/tools/govdns_study --scale 0.01 --no-report \
  --snapshot-file "${SMOKE_DIR}/ubsan.gvsn" \
  --json "${SMOKE_DIR}/ubsan_base.json" 2>/dev/null
./build-ubsan/tools/govdns_study --scale 0.01 --no-report \
  --map-snapshot "${SMOKE_DIR}/ubsan.gvsn" \
  --json "${SMOKE_DIR}/ubsan_mapped.json" 2>/dev/null
cmp "${SMOKE_DIR}/ubsan_base.json" "${SMOKE_DIR}/ubsan_mapped.json"
echo "smoke: ubsan snapshot round-trip OK"

echo "==> tier-1: tsan build + concurrency suites"
# The sharded measurement and mining pools (shared cut cache, SimNetwork
# striping, frozen PDNS snapshot, per-worker merges) must be race-free, not
# just correct-when-lucky. Run the suites that exercise the parallel paths
# under ThreadSanitizer; the binaries are invoked directly so gtest filters
# stay simple and reliable.
cmake --preset tsan >/dev/null
cmake --build --preset tsan -j "${JOBS}" --target \
  simnet_test resolver_test measure_test parallel_measure_test \
  chaos_resilience_test pdns_test mining_test parallel_mine_test \
  mining_fold_test ckpt_test ckpt_resume_test degradation_test \
  quarantine_test netio_test snapshot_file_test
for t in simnet_test resolver_test measure_test parallel_measure_test \
         chaos_resilience_test pdns_test mining_test parallel_mine_test \
         mining_fold_test ckpt_test ckpt_resume_test degradation_test \
         quarantine_test netio_test snapshot_file_test; do
  echo "==> tsan: ${t}"
  timeout "${CTEST_TIMEOUT}" "./build-tsan/tests/${t}"
done

echo "==> verify OK (release + smoke + asan + ubsan + tsan)"
