#!/usr/bin/env bash
# Tier-1 verification, twice: a normal release build and an ASan+UBSan
# build. The sanitized pass exists because the chaos model deliberately
# feeds the wire-format parsers corrupted datagrams; memory bugs there must
# fail CI, not just crash probabilistically.
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS=${JOBS:-$(nproc)}

echo "==> tier-1: release build + ctest"
cmake --preset release >/dev/null
cmake --build --preset release -j "${JOBS}"
ctest --preset release -j "${JOBS}"

echo "==> tier-1: asan/ubsan build + ctest"
cmake --preset asan >/dev/null
cmake --build --preset asan -j "${JOBS}"
ctest --preset asan -j "${JOBS}"

echo "==> verify OK (release + sanitized)"
