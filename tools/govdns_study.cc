// govdns_study — run the complete study from the command line and export
// the results.
//
//   govdns_study [--scale S] [--seed N] [--json out.json] [--csv table[,table...]]
//                [--metrics out.json] [--trace out.json]
//                [--trace-sample N] [--mine-workers N] [--report]
//
// Builds a world at the requested scale, runs selection -> mining -> active
// measurement, and then prints the consolidated report (--report, default)
// and/or writes machine-readable exports. --metrics and --trace attach the
// observability layer and dump the metrics snapshot / sampled query traces
// (DESIGN.md §6d); both documents are deterministic for a given seed except
// for series tagged "diagnostic".
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>

#include "core/export.h"
#include "core/mining.h"
#include "core/report.h"
#include "obs/obs.h"
#include "util/strings.h"
#include "worldgen/adapter.h"

int main(int argc, char** argv) {
  using namespace govdns;

  worldgen::WorldConfig config;
  config.scale = 0.05;
  std::string json_path;
  std::string csv_tables;
  std::string metrics_path;
  std::string trace_path;
  uint64_t trace_sample = 16;
  int mine_workers = 0;  // 0 = all cores (results are worker-count invariant)
  bool print_report = true;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--scale") {
      if (const char* v = next()) config.scale = std::atof(v);
    } else if (arg == "--seed") {
      if (const char* v = next()) config.seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--json") {
      if (const char* v = next()) json_path = v;
    } else if (arg == "--csv") {
      if (const char* v = next()) csv_tables = v;
    } else if (arg == "--metrics") {
      if (const char* v = next()) metrics_path = v;
    } else if (arg == "--trace") {
      if (const char* v = next()) trace_path = v;
    } else if (arg == "--trace-sample") {
      if (const char* v = next()) trace_sample = std::strtoull(v, nullptr, 10);
    } else if (arg == "--mine-workers") {
      if (const char* v = next()) mine_workers = std::atoi(v);
    } else if (arg == "--report") {
      print_report = true;
    } else if (arg == "--no-report") {
      print_report = false;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--scale S] [--seed N] [--json out.json] "
                   "[--csv t1,t2] [--metrics out.json] [--trace out.json] "
                   "[--trace-sample N] [--mine-workers N] [--no-report]\n",
                   argv[0]);
      return 2;
    }
  }

  std::fprintf(stderr, "building world (scale %.3f, seed %llu)...\n",
               config.scale, static_cast<unsigned long long>(config.seed));
  auto world = worldgen::BuildWorld(config);
  auto bound = worldgen::MakeStudy(*world);

  obs::ObservabilityConfig obs_config;
  obs_config.trace.sample_period = trace_sample == 0 ? 1 : trace_sample;
  obs::Observability observability(obs_config);
  const bool want_obs = !metrics_path.empty() || !trace_path.empty();
  if (want_obs) bound.study->AttachObservability(&observability);

  std::fprintf(stderr, "running study...\n");
  bound.study->RunSelection();
  core::MinerOptions mine_options;
  mine_options.workers = mine_workers;
  bound.study->RunMining(mine_options);
  bound.study->RunActiveMeasurement();

  std::vector<std::string> top10;
  for (const char* code : worldgen::Top10CountryCodes()) {
    top10.emplace_back(code);
  }
  core::StudyReport report = core::BuildReport(*bound.study, top10);

  if (print_report) core::PrintReport(report, std::cout);

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    out << core::ExportReportJson(report) << "\n";
    std::fprintf(stderr, "wrote %s\n", json_path.c_str());
  }
  if (!csv_tables.empty()) {
    for (const std::string& table : util::Split(csv_tables, ',')) {
      std::string csv = core::ExportCsv(report, table);
      if (csv.empty()) {
        std::fprintf(stderr, "unknown csv table: %s\n", table.c_str());
        continue;
      }
      std::string path = table + ".csv";
      std::ofstream out(path);
      out << csv;
      std::fprintf(stderr, "wrote %s\n", path.c_str());
    }
  }
  if (!metrics_path.empty()) {
    std::ofstream out(metrics_path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", metrics_path.c_str());
      return 1;
    }
    out << core::ExportMetricsJson(observability.metrics().Snapshot()) << "\n";
    std::fprintf(stderr, "wrote %s\n", metrics_path.c_str());
  }
  if (!trace_path.empty()) {
    std::ofstream out(trace_path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", trace_path.c_str());
      return 1;
    }
    out << core::ExportTraceJson(observability.traces(), observability.cut_log())
        << "\n";
    std::fprintf(stderr, "wrote %s\n", trace_path.c_str());
  }
  return 0;
}
