// govdns_study — run the complete study from the command line and export
// the results.
//
//   govdns_study [--scale S] [--seed N] [--json out.json] [--csv table[,table...]]
//                [--metrics out.json] [--trace out.json]
//                [--trace-sample N] [--mine-workers N] [--report]
//                [--checkpoint-dir DIR] [--resume] [--ckpt-batch N]
//                [--ckpt-kill-after N]
//                [--phase-deadline MS] [--country-budget MS]
//                [--domain-budget MS] [--quarantine-report PATH]
//                [--snapshot-file PATH] [--map-snapshot PATH]
//
// Builds a world at the requested scale, runs selection -> mining -> active
// measurement, and then prints the consolidated report (--report, default)
// and/or writes machine-readable exports. --metrics and --trace attach the
// observability layer and dump the metrics snapshot / sampled query traces
// (DESIGN.md §6d); both documents are deterministic for a given seed except
// for series tagged "diagnostic".
//
// Checkpointing (DESIGN.md §6f): --checkpoint-dir journals every phase into
// DIR; --resume picks up from the last complete phase (and, inside active
// measurement, the last complete batch). --ckpt-kill-after N _exit(42)s at
// the Nth journal write — the harness uses this to prove kill-anywhere
// resume. SIGINT/SIGTERM raise a cooperative flag: the in-flight batch
// finishes, its checkpoint commits, and the run exits with a structured
// error naming the interrupted phase. A second SIGINT/SIGTERM during that
// flush escalates to an immediate _exit (DESIGN.md §6g).
//
// Snapshot files (DESIGN.md §6i): --snapshot-file PATH freezes the world's
// PDNS database and publishes it as a mmap-able GVSN snapshot at PATH
// (atomic tmp+rename), stamped with the same world fingerprint the journal
// uses. --map-snapshot PATH memory-maps such a file and mines it zero-copy
// — the O(1)-resume fast path; the mined dataset (and therefore the report)
// is byte-identical to the freeze path.
//
// Degradation budgets (DESIGN.md §6g): --domain-budget caps the logical ms
// one domain may consume, --country-budget one country's domains together,
// --phase-deadline the whole measurement phase; over-budget domains are
// quarantined, annotated in the report's quarantine section, and optionally
// dumped standalone with --quarantine-report.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <atomic>
#include <exception>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>

#include "ckpt/fault.h"
#include "ckpt/signals.h"
#include "core/export.h"
#include "core/mining.h"
#include "core/report.h"
#include "core/study.h"
#include "core/study_ckpt.h"
#include "netio/engine.h"
#include "obs/obs.h"
#include "pdns/snapshot_io.h"
#include "util/json.h"
#include "util/strings.h"
#include "worldgen/adapter.h"

namespace {

std::atomic<bool> g_interrupted{false};

// Structured failure diagnostic on stderr: one JSON object naming the phase
// that died and why, so harnesses never have to scrape free-form text.
void PrintStructuredError(const std::string& phase, const std::string& cause) {
  govdns::util::JsonWriter w;
  w.BeginObject();
  w.Key("error").BeginObject();
  w.Kv("phase", phase);
  w.Kv("cause", cause);
  w.EndObject();
  w.EndObject();
  std::fprintf(stderr, "%s\n", w.TakeString().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace govdns;

  worldgen::WorldConfig config;
  config.scale = 0.05;
  std::string json_path;
  std::string csv_tables;
  std::string metrics_path;
  std::string trace_path;
  std::string checkpoint_dir;
  uint64_t trace_sample = 16;
  int mine_workers = 0;  // 0 = all cores (results are worker-count invariant)
  bool print_report = true;
  core::StudyCheckpointOptions ckpt_options;
  uint64_t kill_after = 0;
  core::MeasurerOptions measure_options;
  std::string quarantine_path;
  std::string snapshot_out_path;
  std::string map_snapshot_path;
  bool use_engine = false;
  netio::QueryEngine::Options engine_options;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--scale") {
      if (const char* v = next()) config.scale = std::atof(v);
    } else if (arg == "--seed") {
      if (const char* v = next()) config.seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--json") {
      if (const char* v = next()) json_path = v;
    } else if (arg == "--csv") {
      if (const char* v = next()) csv_tables = v;
    } else if (arg == "--metrics") {
      if (const char* v = next()) metrics_path = v;
    } else if (arg == "--trace") {
      if (const char* v = next()) trace_path = v;
    } else if (arg == "--trace-sample") {
      if (const char* v = next()) trace_sample = std::strtoull(v, nullptr, 10);
    } else if (arg == "--mine-workers") {
      if (const char* v = next()) mine_workers = std::atoi(v);
    } else if (arg == "--checkpoint-dir") {
      if (const char* v = next()) checkpoint_dir = v;
    } else if (arg == "--resume") {
      ckpt_options.resume = true;
    } else if (arg == "--ckpt-batch") {
      if (const char* v = next()) {
        ckpt_options.batch_size =
            static_cast<size_t>(std::strtoull(v, nullptr, 10));
      }
    } else if (arg == "--ckpt-kill-after") {
      if (const char* v = next()) kill_after = std::strtoull(v, nullptr, 10);
    } else if (arg == "--phase-deadline") {
      if (const char* v = next()) {
        measure_options.phase_deadline_logical_ms =
            std::strtoull(v, nullptr, 10);
      }
    } else if (arg == "--country-budget") {
      if (const char* v = next()) {
        measure_options.max_logical_ms_per_country =
            std::strtoull(v, nullptr, 10);
      }
    } else if (arg == "--domain-budget") {
      if (const char* v = next()) {
        measure_options.max_logical_ms_per_domain =
            std::strtoull(v, nullptr, 10);
      }
    } else if (arg == "--quarantine-report") {
      if (const char* v = next()) quarantine_path = v;
    } else if (arg == "--snapshot-file") {
      if (const char* v = next()) snapshot_out_path = v;
    } else if (arg == "--map-snapshot") {
      if (const char* v = next()) map_snapshot_path = v;
    } else if (arg == "--engine") {
      use_engine = true;
    } else if (arg == "--max-inflight") {
      if (const char* v = next()) engine_options.max_inflight = std::atoi(v);
    } else if (arg == "--per-ns-qps") {
      if (const char* v = next()) engine_options.per_server_qps = std::atof(v);
    } else if (arg == "--lanes") {
      if (const char* v = next()) measure_options.async_lanes = std::atoi(v);
    } else if (arg == "--report") {
      print_report = true;
    } else if (arg == "--no-report") {
      print_report = false;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--scale S] [--seed N] [--json out.json] "
                   "[--csv t1,t2] [--metrics out.json] [--trace out.json] "
                   "[--trace-sample N] [--mine-workers N] [--no-report] "
                   "[--checkpoint-dir DIR] [--resume] [--ckpt-batch N] "
                   "[--ckpt-kill-after N] [--phase-deadline MS] "
                   "[--country-budget MS] [--domain-budget MS] "
                   "[--quarantine-report PATH] [--engine] [--max-inflight N] "
                   "[--per-ns-qps Q] [--lanes N] [--snapshot-file PATH] "
                   "[--map-snapshot PATH]\n",
                   argv[0]);
      return 2;
    }
  }
  if ((ckpt_options.resume || kill_after != 0) && checkpoint_dir.empty()) {
    PrintStructuredError("setup",
                         "--resume/--ckpt-kill-after require --checkpoint-dir");
    return 2;
  }

  std::string phase = "setup";
  try {
    std::fprintf(stderr, "building world (scale %.3f, seed %llu)...\n",
                 config.scale, static_cast<unsigned long long>(config.seed));
    auto world = worldgen::BuildWorld(config);
    // The engine (if any) must be wired in *before* the Study is built: the
    // study binds its resolver to the transport at construction. Fronting
    // the simulated network with a wrapped-mode QueryEngine leaves the
    // report byte-identical — exchanges still execute inline on each lane's
    // thread under its own chaos context — while exercising the exact
    // submit/complete path a real-socket run uses.
    std::optional<pdns::MappedPdnsSnapshot> mapped_snapshot;
    std::unique_ptr<netio::QueryEngine> engine;
    worldgen::BoundStudy bound;
    bound.policy = std::make_unique<worldgen::PolicyLookupAdapter>(
        &world->registry_policy());
    core::StudyInputs inputs =
        worldgen::MakeStudyInputs(*world, bound.policy.get());

    // World identity: every knob that changes the world's bytes belongs in
    // this fingerprint. The checkpoint journal and snapshot files both carry
    // it, so neither artifact can cross worlds.
    uint64_t world_fp = config.seed;
    world_fp = ckpt::MixFingerprint(
        world_fp, static_cast<uint64_t>(config.scale * 1000000.0));
    world_fp =
        ckpt::MixFingerprint(world_fp, static_cast<uint64_t>(config.first_year));
    world_fp =
        ckpt::MixFingerprint(world_fp, static_cast<uint64_t>(config.last_year));

    if (!snapshot_out_path.empty()) {
      phase = "snapshot-write";
      std::fprintf(stderr, "freezing pdns database -> %s ...\n",
                   snapshot_out_path.c_str());
      const pdns::PdnsSnapshot frozen = world->pdns_db().Freeze();
      std::string dir =
          std::filesystem::path(snapshot_out_path).parent_path().string();
      if (dir.empty()) dir = ".";
      auto status = pdns::WritePdnsSnapshotFile(frozen, world_fp, dir,
                                                snapshot_out_path);
      if (!status.ok()) {
        PrintStructuredError(phase, status.ToString());
        return 1;
      }
      std::fprintf(stderr, "wrote %s (%zu names, %zu entries)\n",
                   snapshot_out_path.c_str(), frozen.name_count(),
                   frozen.entry_count());
    }
    if (!map_snapshot_path.empty()) {
      phase = "snapshot-map";
      auto loaded =
          pdns::MappedPdnsSnapshot::Open(map_snapshot_path, world_fp);
      if (!loaded.ok()) {
        PrintStructuredError(phase, loaded.status().ToString());
        return 1;
      }
      mapped_snapshot = *std::move(loaded);
      inputs.pdns_snapshot = &*mapped_snapshot;
      std::fprintf(stderr, "mapped %s (%zu names, %zu entries, %s)\n",
                   map_snapshot_path.c_str(), mapped_snapshot->name_count(),
                   mapped_snapshot->entry_count(),
                   mapped_snapshot->mapped() ? "mmap" : "read fallback");
    }

    if (use_engine) {
      engine = std::make_unique<netio::QueryEngine>(inputs.transport,
                                                    engine_options);
      inputs.transport = engine.get();
    }
    bound.study = std::make_unique<core::Study>(std::move(inputs));

    obs::ObservabilityConfig obs_config;
    obs_config.trace.sample_period = trace_sample == 0 ? 1 : trace_sample;
    obs::Observability observability(obs_config);
    const bool want_obs = !metrics_path.empty() || !trace_path.empty();
    if (want_obs) bound.study->AttachObservability(&observability);

    std::unique_ptr<core::StudyCheckpoint> checkpoint;
    if (!checkpoint_dir.empty()) {
      checkpoint = std::make_unique<core::StudyCheckpoint>(
          checkpoint_dir, world_fp, ckpt_options);
      if (kill_after != 0) {
        ckpt::CkptFaultPlan plan;
        plan.kill_at_write = kill_after;
        plan.mode = ckpt::KillMode::kAfterCommit;
        plan.exit_process = true;
        checkpoint->set_fault_plan(plan);
      }
      bound.study->AttachCheckpoint(checkpoint.get());
      bound.study->set_interrupt_flag(&g_interrupted);
      // Escalating handlers: first signal flushes-then-exits cooperatively,
      // second one _exit(130)s immediately in case the flush is wedged.
      ckpt::InstallEscalatingHandlers(&g_interrupted, 130);
    }

    std::fprintf(stderr, "running study...\n");
    phase = "selection";
    bound.study->RunSelection();
    phase = "mining";
    core::MinerOptions mine_options;
    mine_options.workers = mine_workers;
    bound.study->RunMining(mine_options);
    phase = "measurement";
    bound.study->RunActiveMeasurement(measure_options);
    if (engine != nullptr && want_obs) {
      engine->PublishStats(observability.metrics());
    }

    phase = "report";
    std::vector<std::string> top10;
    for (const char* code : worldgen::Top10CountryCodes()) {
      top10.emplace_back(code);
    }
    core::StudyReport report = core::BuildReport(*bound.study, top10);
    const std::string report_json = core::ExportReportJson(report);
    if (checkpoint != nullptr) {
      checkpoint->SaveReportJson(report_json);
      std::fprintf(stderr, "[ckpt] stats %s\n",
                   checkpoint->StatsJson().c_str());
    }

    phase = "export";
    if (print_report) core::PrintReport(report, std::cout);

    if (!json_path.empty()) {
      std::ofstream out(json_path);
      if (!out) {
        PrintStructuredError(phase, "cannot write " + json_path);
        return 1;
      }
      out << report_json << "\n";
      std::fprintf(stderr, "wrote %s\n", json_path.c_str());
    }
    if (!csv_tables.empty()) {
      for (const std::string& table : util::Split(csv_tables, ',')) {
        std::string csv = core::ExportCsv(report, table);
        if (csv.empty()) {
          std::fprintf(stderr, "unknown csv table: %s\n", table.c_str());
          continue;
        }
        std::string path = table + ".csv";
        std::ofstream out(path);
        out << csv;
        std::fprintf(stderr, "wrote %s\n", path.c_str());
      }
    }
    if (!quarantine_path.empty()) {
      // Standalone coverage document: the report's quarantine object plus
      // per-country rows, for harnesses that only care about degradation.
      const core::QuarantineReport& q = report.quarantine;
      util::JsonWriter w;
      w.BeginObject();
      w.Kv("total_domains", q.total_domains);
      w.Kv("quarantined", q.quarantined);
      w.Kv("hang", q.hang);
      w.Kv("blackhole", q.blackhole);
      w.Kv("budget_exceeded", q.budget_exceeded);
      w.Kv("watchdog_cancelled", q.watchdog_cancelled);
      w.Kv("coverage", q.coverage);
      w.Key("by_country").BeginArray();
      for (const core::QuarantineReport::CountryRow& row : q.by_country) {
        w.BeginObject();
        w.Kv("code", row.code);
        w.Kv("domains", row.domains);
        w.Kv("quarantined", row.quarantined);
        w.EndObject();
      }
      w.EndArray();
      w.EndObject();
      std::ofstream out(quarantine_path);
      if (!out) {
        PrintStructuredError(phase, "cannot write " + quarantine_path);
        return 1;
      }
      out << w.TakeString() << "\n";
      std::fprintf(stderr, "wrote %s\n", quarantine_path.c_str());
    }
    if (!metrics_path.empty()) {
      std::ofstream out(metrics_path);
      if (!out) {
        PrintStructuredError(phase, "cannot write " + metrics_path);
        return 1;
      }
      out << core::ExportMetricsJson(observability.metrics().Snapshot())
          << "\n";
      std::fprintf(stderr, "wrote %s\n", metrics_path.c_str());
    }
    if (!trace_path.empty()) {
      std::ofstream out(trace_path);
      if (!out) {
        PrintStructuredError(phase, "cannot write " + trace_path);
        return 1;
      }
      out << core::ExportTraceJson(observability.traces(),
                                   observability.cut_log())
          << "\n";
      std::fprintf(stderr, "wrote %s\n", trace_path.c_str());
    }
    return 0;
  } catch (const core::PipelineError& e) {
    // Interrupt/checkpoint failures arrive here with the current batch
    // already flushed (the study checks the flag only between batches).
    PrintStructuredError(e.phase(), e.cause());
    return 1;
  } catch (const std::exception& e) {
    PrintStructuredError(phase, e.what());
    return 1;
  }
}
