// govdns_study — run the complete study from the command line and export
// the results.
//
//   govdns_study [--scale S] [--seed N] [--json out.json] [--csv table[,table...]]
//                [--metrics out.json] [--trace out.json]
//                [--trace-sample N] [--mine-workers N] [--report]
//                [--checkpoint-dir DIR] [--resume] [--ckpt-batch N]
//                [--ckpt-kill-after N]
//                [--phase-deadline MS] [--country-budget MS]
//                [--domain-budget MS] [--quarantine-report PATH]
//                [--snapshot-file PATH] [--map-snapshot PATH]
//                [--vantages N] [--vantage-deadline MS]
//                [--vantage-restarts K]
//
// Builds a world at the requested scale, runs selection -> mining -> active
// measurement, and then prints the consolidated report (--report, default)
// and/or writes machine-readable exports. --metrics and --trace attach the
// observability layer and dump the metrics snapshot / sampled query traces
// (DESIGN.md §6d); both documents are deterministic for a given seed except
// for series tagged "diagnostic".
//
// Checkpointing (DESIGN.md §6f): --checkpoint-dir journals every phase into
// DIR; --resume picks up from the last complete phase (and, inside active
// measurement, the last complete batch). --ckpt-kill-after N _exit(42)s at
// the Nth journal write — the harness uses this to prove kill-anywhere
// resume. SIGINT/SIGTERM raise a cooperative flag: the in-flight batch
// finishes, its checkpoint commits, and the run exits with a structured
// error naming the interrupted phase. A second SIGINT/SIGTERM during that
// flush escalates to an immediate _exit (DESIGN.md §6g).
//
// Snapshot files (DESIGN.md §6i): --snapshot-file PATH freezes the world's
// PDNS database and publishes it as a mmap-able GVSN snapshot at PATH
// (atomic tmp+rename), stamped with the same world fingerprint the journal
// uses. --map-snapshot PATH memory-maps such a file and mines it zero-copy
// — the O(1)-resume fast path; the mined dataset (and therefore the report)
// is byte-identical to the freeze path.
//
// Degradation budgets (DESIGN.md §6g): --domain-budget caps the logical ms
// one domain may consume, --country-budget one country's domains together,
// --phase-deadline the whole measurement phase; over-budget domains are
// quarantined, annotated in the report's quarantine section, and optionally
// dumped standalone with --quarantine-report.
//
// Multi-vantage mode (DESIGN.md §6k): --vantages N forks N supervised shard
// processes, each measuring the same world through its own vantage overlay
// and journaling into <checkpoint-dir>/vantage_<name>/. The parent restarts
// crashed shards from their journals (--vantage-restarts attempts), SIGKILLs
// any attempt that outlives --vantage-deadline, folds the surviving vantage
// frames into the deterministic cross-vantage disagreement report, and
// degrades lost vantages into the quarantine taxonomy. Test hooks:
// --vantage-sigkill NAME:MS murders a shard mid-run, --vantage-kill-after
// NAME:N arms a first-attempt fault plan at the Nth journal write, and
// --vantage-stall NAME:MS wedges a first attempt so the deadline fires.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <atomic>
#include <chrono>
#include <exception>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <thread>
#include <utility>

#include "ckpt/fault.h"
#include "ckpt/signals.h"
#include "core/export.h"
#include "core/mining.h"
#include "core/report.h"
#include "core/study.h"
#include "core/study_ckpt.h"
#include "core/vantage.h"
#include "netio/engine.h"
#include "obs/obs.h"
#include "pdns/snapshot_io.h"
#include "util/json.h"
#include "util/strings.h"
#include "worldgen/adapter.h"

namespace {

std::atomic<bool> g_interrupted{false};

// Structured failure diagnostic on stderr: one JSON object naming the phase
// that died and why, so harnesses never have to scrape free-form text.
void PrintStructuredError(const std::string& phase, const std::string& cause) {
  govdns::util::JsonWriter w;
  w.BeginObject();
  w.Key("error").BeginObject();
  w.Kv("phase", phase);
  w.Kv("cause", cause);
  w.EndObject();
  w.EndObject();
  std::fprintf(stderr, "%s\n", w.TakeString().c_str());
}

// "NAME:VALUE" test-hook argument (split on the last ':', so vantage names
// may not contain one — the default roster doesn't).
std::optional<std::pair<std::string, uint64_t>> ParseNameValue(
    const char* raw) {
  if (raw == nullptr) return std::nullopt;
  std::string s = raw;
  size_t colon = s.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 >= s.size()) {
    return std::nullopt;
  }
  return std::make_pair(s.substr(0, colon),
                        std::strtoull(s.c_str() + colon + 1, nullptr, 10));
}

}  // namespace

int main(int argc, char** argv) {
  using namespace govdns;

  worldgen::WorldConfig config;
  config.scale = 0.05;
  std::string json_path;
  std::string csv_tables;
  std::string metrics_path;
  std::string trace_path;
  std::string checkpoint_dir;
  uint64_t trace_sample = 16;
  int mine_workers = 0;  // 0 = all cores (results are worker-count invariant)
  bool print_report = true;
  core::StudyCheckpointOptions ckpt_options;
  uint64_t kill_after = 0;
  core::MeasurerOptions measure_options;
  std::string quarantine_path;
  std::string snapshot_out_path;
  std::string map_snapshot_path;
  bool use_engine = false;
  netio::QueryEngine::Options engine_options;
  int vantages = 0;
  core::VantageSupervisorOptions vantage_options;
  std::optional<std::pair<std::string, uint64_t>> vantage_kill_after;
  std::optional<std::pair<std::string, uint64_t>> vantage_stall;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--scale") {
      if (const char* v = next()) config.scale = std::atof(v);
    } else if (arg == "--seed") {
      if (const char* v = next()) config.seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--json") {
      if (const char* v = next()) json_path = v;
    } else if (arg == "--csv") {
      if (const char* v = next()) csv_tables = v;
    } else if (arg == "--metrics") {
      if (const char* v = next()) metrics_path = v;
    } else if (arg == "--trace") {
      if (const char* v = next()) trace_path = v;
    } else if (arg == "--trace-sample") {
      if (const char* v = next()) trace_sample = std::strtoull(v, nullptr, 10);
    } else if (arg == "--mine-workers") {
      if (const char* v = next()) mine_workers = std::atoi(v);
    } else if (arg == "--checkpoint-dir") {
      if (const char* v = next()) checkpoint_dir = v;
    } else if (arg == "--resume") {
      ckpt_options.resume = true;
    } else if (arg == "--ckpt-batch") {
      if (const char* v = next()) {
        ckpt_options.batch_size =
            static_cast<size_t>(std::strtoull(v, nullptr, 10));
      }
    } else if (arg == "--ckpt-kill-after") {
      if (const char* v = next()) kill_after = std::strtoull(v, nullptr, 10);
    } else if (arg == "--phase-deadline") {
      if (const char* v = next()) {
        measure_options.phase_deadline_logical_ms =
            std::strtoull(v, nullptr, 10);
      }
    } else if (arg == "--country-budget") {
      if (const char* v = next()) {
        measure_options.max_logical_ms_per_country =
            std::strtoull(v, nullptr, 10);
      }
    } else if (arg == "--domain-budget") {
      if (const char* v = next()) {
        measure_options.max_logical_ms_per_domain =
            std::strtoull(v, nullptr, 10);
      }
    } else if (arg == "--quarantine-report") {
      if (const char* v = next()) quarantine_path = v;
    } else if (arg == "--snapshot-file") {
      if (const char* v = next()) snapshot_out_path = v;
    } else if (arg == "--map-snapshot") {
      if (const char* v = next()) map_snapshot_path = v;
    } else if (arg == "--engine") {
      use_engine = true;
    } else if (arg == "--max-inflight") {
      if (const char* v = next()) engine_options.max_inflight = std::atoi(v);
    } else if (arg == "--per-ns-qps") {
      if (const char* v = next()) engine_options.per_server_qps = std::atof(v);
    } else if (arg == "--lanes") {
      if (const char* v = next()) measure_options.async_lanes = std::atoi(v);
    } else if (arg == "--vantages") {
      if (const char* v = next()) vantages = std::atoi(v);
    } else if (arg == "--vantage-deadline") {
      if (const char* v = next()) {
        vantage_options.deadline_ms = std::strtoull(v, nullptr, 10);
      }
    } else if (arg == "--vantage-restarts") {
      if (const char* v = next()) vantage_options.max_restarts = std::atoi(v);
    } else if (arg == "--vantage-sigkill") {
      if (auto kv = ParseNameValue(next())) {
        vantage_options.kill_once = {kv->first, kv->second};
      }
    } else if (arg == "--vantage-kill-after") {
      vantage_kill_after = ParseNameValue(next());
    } else if (arg == "--vantage-stall") {
      vantage_stall = ParseNameValue(next());
    } else if (arg == "--report") {
      print_report = true;
    } else if (arg == "--no-report") {
      print_report = false;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--scale S] [--seed N] [--json out.json] "
                   "[--csv t1,t2] [--metrics out.json] [--trace out.json] "
                   "[--trace-sample N] [--mine-workers N] [--no-report] "
                   "[--checkpoint-dir DIR] [--resume] [--ckpt-batch N] "
                   "[--ckpt-kill-after N] [--phase-deadline MS] "
                   "[--country-budget MS] [--domain-budget MS] "
                   "[--quarantine-report PATH] [--engine] [--max-inflight N] "
                   "[--per-ns-qps Q] [--lanes N] [--snapshot-file PATH] "
                   "[--map-snapshot PATH] [--vantages N] "
                   "[--vantage-deadline MS] [--vantage-restarts K]\n",
                   argv[0]);
      return 2;
    }
  }
  if ((ckpt_options.resume || kill_after != 0) && checkpoint_dir.empty()) {
    PrintStructuredError("setup",
                         "--resume/--ckpt-kill-after require --checkpoint-dir");
    return 2;
  }
  if (vantages > 0) {
    // The shards ARE the journal consumers, so a checkpoint root is
    // mandatory; engine/snapshot modes are per-process concerns that do not
    // compose with fork-per-vantage (the engine spawns threads, and fork
    // from a threaded parent is off the table).
    if (checkpoint_dir.empty()) {
      PrintStructuredError("setup", "--vantages requires --checkpoint-dir");
      return 2;
    }
    if (use_engine || !snapshot_out_path.empty() || !map_snapshot_path.empty() ||
        kill_after != 0) {
      PrintStructuredError("setup",
                           "--vantages is incompatible with --engine, "
                           "--snapshot-file, --map-snapshot and "
                           "--ckpt-kill-after (use --vantage-kill-after)");
      return 2;
    }
  }

  std::string phase = "setup";
  try {
    std::fprintf(stderr, "building world (scale %.3f, seed %llu)...\n",
                 config.scale, static_cast<unsigned long long>(config.seed));
    auto world = worldgen::BuildWorld(config);
    // The engine (if any) must be wired in *before* the Study is built: the
    // study binds its resolver to the transport at construction. Fronting
    // the simulated network with a wrapped-mode QueryEngine leaves the
    // report byte-identical — exchanges still execute inline on each lane's
    // thread under its own chaos context — while exercising the exact
    // submit/complete path a real-socket run uses.
    std::optional<pdns::MappedPdnsSnapshot> mapped_snapshot;
    std::unique_ptr<netio::QueryEngine> engine;
    worldgen::BoundStudy bound;
    bound.policy = std::make_unique<worldgen::PolicyLookupAdapter>(
        &world->registry_policy());
    core::StudyInputs inputs =
        worldgen::MakeStudyInputs(*world, bound.policy.get());

    // World identity: every knob that changes the world's bytes belongs in
    // this fingerprint. The checkpoint journal and snapshot files both carry
    // it, so neither artifact can cross worlds.
    uint64_t world_fp = config.seed;
    world_fp = ckpt::MixFingerprint(
        world_fp, static_cast<uint64_t>(config.scale * 1000000.0));
    world_fp =
        ckpt::MixFingerprint(world_fp, static_cast<uint64_t>(config.first_year));
    world_fp =
        ckpt::MixFingerprint(world_fp, static_cast<uint64_t>(config.last_year));

    if (vantages > 0) {
      // Multi-vantage orchestration (DESIGN.md §6k). The world was built
      // once, single-threaded, above; each shard forks, applies its own
      // vantage overlay to the copy-on-write network, and runs the full
      // pipeline into its private journal. The parent never builds a Study
      // — it only supervises and merges vantage frames.
      phase = "vantage";
      std::vector<worldgen::VantageProfile> profiles;
      std::vector<std::string> names;
      for (int v = 0; v < vantages; ++v) {
        profiles.push_back(worldgen::MakeDefaultVantageProfile(v));
        names.push_back(profiles.back().name);
      }
      // The study-identity half of each shard journal's fingerprint; a pure
      // function of the inputs' shape, so the parent's (pre-overlay) value
      // matches what every child computes post-overlay.
      const uint64_t study_fp = core::StudyInputsFingerprint(inputs);
      std::vector<std::string> top10;
      for (const char* code : worldgen::Top10CountryCodes()) {
        top10.emplace_back(code);
      }

      core::VantageSupervisor::ChildFn child_fn =
          [&](const std::string& name, int attempt) -> int {
        try {
          const worldgen::VantageProfile* profile = nullptr;
          for (const worldgen::VantageProfile& p : profiles) {
            if (p.name == name) profile = &p;
          }
          if (profile == nullptr) return 3;
          if (vantage_stall && vantage_stall->first == name && attempt == 0) {
            // Wedge the first attempt on the wall clock so the supervisor's
            // deadline fires; the restart runs clean and resumes.
            std::this_thread::sleep_for(
                std::chrono::milliseconds(vantage_stall->second));
          }
          world->ApplyVantage(*profile);
          worldgen::BoundStudy shard;
          shard.policy = std::make_unique<worldgen::PolicyLookupAdapter>(
              &world->registry_policy());
          core::StudyInputs shard_inputs =
              worldgen::MakeStudyInputs(*world, shard.policy.get());
          const uint64_t shard_study_fp =
              core::StudyInputsFingerprint(shard_inputs);

          core::StudyCheckpointOptions shard_ckpt = ckpt_options;
          // Restarts always resume: that is the whole crash-recovery story.
          shard_ckpt.resume = ckpt_options.resume || attempt > 0;
          core::StudyCheckpoint ckpt(
              core::VantageJournalDir(checkpoint_dir, name),
              core::VantageBaseFingerprint(world_fp, name), shard_ckpt);
          if (vantage_kill_after && vantage_kill_after->first == name &&
              attempt == 0) {
            ckpt::CkptFaultPlan plan;
            plan.kill_at_write = vantage_kill_after->second;
            plan.mode = ckpt::KillMode::kAfterCommit;
            plan.exit_process = true;
            ckpt.set_fault_plan(plan);
          }

          obs::ObservabilityConfig shard_obs_config;
          shard_obs_config.trace.sample_period =
              trace_sample == 0 ? 1 : trace_sample;
          obs::Observability shard_obs(shard_obs_config);
          if (!metrics_path.empty()) {
            // Namespace every metric the shard declares under its vantage so
            // side-by-side exports can never collide.
            shard_obs.metrics().set_name_prefix("vantage." + name + ".");
          }

          shard.study = std::make_unique<core::Study>(std::move(shard_inputs));
          if (!metrics_path.empty()) shard.study->AttachObservability(&shard_obs);
          shard.study->AttachCheckpoint(&ckpt);
          shard.study->RunSelection();
          core::MinerOptions shard_mine;
          shard_mine.workers = mine_workers;
          shard.study->RunMining(shard_mine);
          shard.study->RunActiveMeasurement(measure_options);

          core::StudyReport report = core::BuildReport(*shard.study, top10);
          const std::string report_json = core::ExportReportJson(report);
          ckpt.SaveReportJson(report_json);
          const uint64_t full_fp = ckpt::MixFingerprint(
              core::VantageBaseFingerprint(world_fp, name), shard_study_fp);
          ckpt.SaveVantage(core::BuildVantageSummary(
              name, full_fp, shard.study->active(), report_json));

          if (!metrics_path.empty()) {
            const std::string path = metrics_path + "." + name;
            std::ofstream out(path);
            if (!out) return 1;
            out << core::ExportMetricsJson(shard_obs.metrics().Snapshot())
                << "\n";
          }
          return 0;
        } catch (const core::PipelineError& e) {
          PrintStructuredError("vantage:" + name + ":" + e.phase(), e.cause());
          return 1;
        } catch (const std::exception& e) {
          PrintStructuredError("vantage:" + name, e.what());
          return 1;
        }
      };

      std::fprintf(stderr, "supervising %d vantage shard(s)...\n", vantages);
      core::VantageSupervisor supervisor(names, vantage_options);
      std::vector<core::VantageOutcome> outcomes = supervisor.Run(child_fn);

      std::vector<core::VantageSummary> summaries;
      std::vector<std::string> lost;
      for (const core::VantageOutcome& out : outcomes) {
        std::fprintf(stderr,
                     "[vantage] %s: %s (attempts %d, deadline kills %d)\n",
                     out.name.c_str(), out.lost ? "LOST" : "ok", out.attempts,
                     out.deadline_kills);
        if (out.lost) {
          lost.push_back(out.name);
          continue;
        }
        const uint64_t full_fp = ckpt::MixFingerprint(
            core::VantageBaseFingerprint(world_fp, out.name), study_fp);
        auto summary = core::LoadVantageSummary(
            core::VantageJournalDir(checkpoint_dir, out.name), full_fp);
        if (!summary) {
          // Exited clean but left no readable vantage frame: treat exactly
          // like a lost shard rather than merging a partial view.
          lost.push_back(out.name);
          continue;
        }
        summaries.push_back(*std::move(summary));
      }

      phase = "vantage-merge";
      core::MultiVantageReport merged =
          core::MergeVantageSummaries(std::move(summaries), std::move(lost));
      if (print_report) core::PrintMultiVantageReport(merged, std::cout);
      if (!json_path.empty()) {
        std::ofstream out(json_path);
        if (!out) {
          PrintStructuredError(phase, "cannot write " + json_path);
          return 1;
        }
        out << core::ExportMultiVantageJson(merged) << "\n";
        std::fprintf(stderr, "wrote %s\n", json_path.c_str());
      }
      return merged.vantages.empty() ? 1 : 0;
    }

    if (!snapshot_out_path.empty()) {
      phase = "snapshot-write";
      std::fprintf(stderr, "freezing pdns database -> %s ...\n",
                   snapshot_out_path.c_str());
      const pdns::PdnsSnapshot frozen = world->pdns_db().Freeze();
      std::string dir =
          std::filesystem::path(snapshot_out_path).parent_path().string();
      if (dir.empty()) dir = ".";
      auto status = pdns::WritePdnsSnapshotFile(frozen, world_fp, dir,
                                                snapshot_out_path);
      if (!status.ok()) {
        PrintStructuredError(phase, status.ToString());
        return 1;
      }
      std::fprintf(stderr, "wrote %s (%zu names, %zu entries)\n",
                   snapshot_out_path.c_str(), frozen.name_count(),
                   frozen.entry_count());
    }
    if (!map_snapshot_path.empty()) {
      phase = "snapshot-map";
      auto loaded =
          pdns::MappedPdnsSnapshot::Open(map_snapshot_path, world_fp);
      if (!loaded.ok()) {
        PrintStructuredError(phase, loaded.status().ToString());
        return 1;
      }
      mapped_snapshot = *std::move(loaded);
      inputs.pdns_snapshot = &*mapped_snapshot;
      std::fprintf(stderr, "mapped %s (%zu names, %zu entries, %s)\n",
                   map_snapshot_path.c_str(), mapped_snapshot->name_count(),
                   mapped_snapshot->entry_count(),
                   mapped_snapshot->mapped() ? "mmap" : "read fallback");
    }

    if (use_engine) {
      engine = std::make_unique<netio::QueryEngine>(inputs.transport,
                                                    engine_options);
      inputs.transport = engine.get();
    }
    bound.study = std::make_unique<core::Study>(std::move(inputs));

    obs::ObservabilityConfig obs_config;
    obs_config.trace.sample_period = trace_sample == 0 ? 1 : trace_sample;
    obs::Observability observability(obs_config);
    const bool want_obs = !metrics_path.empty() || !trace_path.empty();
    if (want_obs) bound.study->AttachObservability(&observability);

    std::unique_ptr<core::StudyCheckpoint> checkpoint;
    if (!checkpoint_dir.empty()) {
      checkpoint = std::make_unique<core::StudyCheckpoint>(
          checkpoint_dir, world_fp, ckpt_options);
      if (kill_after != 0) {
        ckpt::CkptFaultPlan plan;
        plan.kill_at_write = kill_after;
        plan.mode = ckpt::KillMode::kAfterCommit;
        plan.exit_process = true;
        checkpoint->set_fault_plan(plan);
      }
      bound.study->AttachCheckpoint(checkpoint.get());
      bound.study->set_interrupt_flag(&g_interrupted);
      // Escalating handlers: first signal flushes-then-exits cooperatively,
      // second one _exit(130)s immediately in case the flush is wedged.
      ckpt::InstallEscalatingHandlers(&g_interrupted, 130);
    }

    std::fprintf(stderr, "running study...\n");
    phase = "selection";
    bound.study->RunSelection();
    phase = "mining";
    core::MinerOptions mine_options;
    mine_options.workers = mine_workers;
    bound.study->RunMining(mine_options);
    phase = "measurement";
    bound.study->RunActiveMeasurement(measure_options);
    if (engine != nullptr && want_obs) {
      engine->PublishStats(observability.metrics());
    }

    phase = "report";
    std::vector<std::string> top10;
    for (const char* code : worldgen::Top10CountryCodes()) {
      top10.emplace_back(code);
    }
    core::StudyReport report = core::BuildReport(*bound.study, top10);
    const std::string report_json = core::ExportReportJson(report);
    if (checkpoint != nullptr) {
      checkpoint->SaveReportJson(report_json);
      std::fprintf(stderr, "[ckpt] stats %s\n",
                   checkpoint->StatsJson().c_str());
    }

    phase = "export";
    if (print_report) core::PrintReport(report, std::cout);

    if (!json_path.empty()) {
      std::ofstream out(json_path);
      if (!out) {
        PrintStructuredError(phase, "cannot write " + json_path);
        return 1;
      }
      out << report_json << "\n";
      std::fprintf(stderr, "wrote %s\n", json_path.c_str());
    }
    if (!csv_tables.empty()) {
      for (const std::string& table : util::Split(csv_tables, ',')) {
        std::string csv = core::ExportCsv(report, table);
        if (csv.empty()) {
          std::fprintf(stderr, "unknown csv table: %s\n", table.c_str());
          continue;
        }
        std::string path = table + ".csv";
        std::ofstream out(path);
        out << csv;
        std::fprintf(stderr, "wrote %s\n", path.c_str());
      }
    }
    if (!quarantine_path.empty()) {
      // Standalone coverage document: the report's quarantine object plus
      // per-country rows, for harnesses that only care about degradation.
      const core::QuarantineReport& q = report.quarantine;
      util::JsonWriter w;
      w.BeginObject();
      w.Kv("total_domains", q.total_domains);
      w.Kv("quarantined", q.quarantined);
      w.Kv("hang", q.hang);
      w.Kv("blackhole", q.blackhole);
      w.Kv("budget_exceeded", q.budget_exceeded);
      w.Kv("watchdog_cancelled", q.watchdog_cancelled);
      w.Kv("coverage", q.coverage);
      w.Key("by_country").BeginArray();
      for (const core::QuarantineReport::CountryRow& row : q.by_country) {
        w.BeginObject();
        w.Kv("code", row.code);
        w.Kv("domains", row.domains);
        w.Kv("quarantined", row.quarantined);
        w.EndObject();
      }
      w.EndArray();
      w.EndObject();
      std::ofstream out(quarantine_path);
      if (!out) {
        PrintStructuredError(phase, "cannot write " + quarantine_path);
        return 1;
      }
      out << w.TakeString() << "\n";
      std::fprintf(stderr, "wrote %s\n", quarantine_path.c_str());
    }
    if (!metrics_path.empty()) {
      std::ofstream out(metrics_path);
      if (!out) {
        PrintStructuredError(phase, "cannot write " + metrics_path);
        return 1;
      }
      out << core::ExportMetricsJson(observability.metrics().Snapshot())
          << "\n";
      std::fprintf(stderr, "wrote %s\n", metrics_path.c_str());
    }
    if (!trace_path.empty()) {
      std::ofstream out(trace_path);
      if (!out) {
        PrintStructuredError(phase, "cannot write " + trace_path);
        return 1;
      }
      out << core::ExportTraceJson(observability.traces(),
                                   observability.cut_log())
          << "\n";
      std::fprintf(stderr, "wrote %s\n", trace_path.c_str());
    }
    return 0;
  } catch (const core::PipelineError& e) {
    // Interrupt/checkpoint failures arrive here with the current batch
    // already flushed (the study checks the flag only between batches).
    PrintStructuredError(e.phase(), e.cause());
    return 1;
  } catch (const std::exception& e) {
    PrintStructuredError(phase, e.what());
    return 1;
  }
}
