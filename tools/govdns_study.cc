// govdns_study — run the complete study from the command line and export
// the results.
//
//   govdns_study [--scale S] [--seed N] [--json out.json] [--csv table[,table...]]
//                [--report]
//
// Builds a world at the requested scale, runs selection -> mining -> active
// measurement, and then prints the consolidated report (--report, default)
// and/or writes machine-readable exports.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>

#include "core/export.h"
#include "core/report.h"
#include "util/strings.h"
#include "worldgen/adapter.h"

int main(int argc, char** argv) {
  using namespace govdns;

  worldgen::WorldConfig config;
  config.scale = 0.05;
  std::string json_path;
  std::string csv_tables;
  bool print_report = true;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--scale") {
      if (const char* v = next()) config.scale = std::atof(v);
    } else if (arg == "--seed") {
      if (const char* v = next()) config.seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--json") {
      if (const char* v = next()) json_path = v;
    } else if (arg == "--csv") {
      if (const char* v = next()) csv_tables = v;
    } else if (arg == "--report") {
      print_report = true;
    } else if (arg == "--no-report") {
      print_report = false;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--scale S] [--seed N] [--json out.json] "
                   "[--csv t1,t2] [--no-report]\n",
                   argv[0]);
      return 2;
    }
  }

  std::fprintf(stderr, "building world (scale %.3f, seed %llu)...\n",
               config.scale, static_cast<unsigned long long>(config.seed));
  auto world = worldgen::BuildWorld(config);
  auto bound = worldgen::MakeStudy(*world);
  std::fprintf(stderr, "running study...\n");
  bound.study->RunAll();

  std::vector<std::string> top10;
  for (const char* code : worldgen::Top10CountryCodes()) {
    top10.emplace_back(code);
  }
  core::StudyReport report = core::BuildReport(*bound.study, top10);

  if (print_report) core::PrintReport(report, std::cout);

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    out << core::ExportReportJson(report) << "\n";
    std::fprintf(stderr, "wrote %s\n", json_path.c_str());
  }
  if (!csv_tables.empty()) {
    for (const std::string& table : util::Split(csv_tables, ',')) {
      std::string csv = core::ExportCsv(report, table);
      if (csv.empty()) {
        std::fprintf(stderr, "unknown csv table: %s\n", table.c_str());
        continue;
      }
      std::string path = table + ".csv";
      std::ofstream out(path);
      out << csv;
      std::fprintf(stderr, "wrote %s\n", path.c_str());
    }
  }
  return 0;
}
