# Empty dependencies file for bench_fig10_defective_delegations.
# This may be replaced when dependencies are built.
