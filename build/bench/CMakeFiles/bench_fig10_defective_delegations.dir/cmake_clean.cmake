file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_defective_delegations.dir/bench_fig10_defective_delegations.cc.o"
  "CMakeFiles/bench_fig10_defective_delegations.dir/bench_fig10_defective_delegations.cc.o.d"
  "bench_fig10_defective_delegations"
  "bench_fig10_defective_delegations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_defective_delegations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
