file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_available_ns.dir/bench_fig11_available_ns.cc.o"
  "CMakeFiles/bench_fig11_available_ns.dir/bench_fig11_available_ns.cc.o.d"
  "bench_fig11_available_ns"
  "bench_fig11_available_ns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_available_ns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
