# Empty dependencies file for bench_fig11_available_ns.
# This may be replaced when dependencies are built.
