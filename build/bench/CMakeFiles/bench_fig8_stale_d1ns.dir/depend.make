# Empty dependencies file for bench_fig8_stale_d1ns.
# This may be replaced when dependencies are built.
