file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_stale_d1ns.dir/bench_fig8_stale_d1ns.cc.o"
  "CMakeFiles/bench_fig8_stale_d1ns.dir/bench_fig8_stale_d1ns.cc.o.d"
  "bench_fig8_stale_d1ns"
  "bench_fig8_stale_d1ns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_stale_d1ns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
