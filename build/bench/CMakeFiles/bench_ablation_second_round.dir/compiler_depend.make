# Empty compiler generated dependencies file for bench_ablation_second_round.
# This may be replaced when dependencies are built.
