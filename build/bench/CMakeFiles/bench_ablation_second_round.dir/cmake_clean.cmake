file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_second_round.dir/bench_ablation_second_round.cc.o"
  "CMakeFiles/bench_ablation_second_round.dir/bench_ablation_second_round.cc.o.d"
  "bench_ablation_second_round"
  "bench_ablation_second_round.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_second_round.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
