file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_private_deployment.dir/bench_fig7_private_deployment.cc.o"
  "CMakeFiles/bench_fig7_private_deployment.dir/bench_fig7_private_deployment.cc.o.d"
  "bench_fig7_private_deployment"
  "bench_fig7_private_deployment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_private_deployment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
