# Empty compiler generated dependencies file for bench_fig7_private_deployment.
# This may be replaced when dependencies are built.
