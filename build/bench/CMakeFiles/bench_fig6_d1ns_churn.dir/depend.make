# Empty dependencies file for bench_fig6_d1ns_churn.
# This may be replaced when dependencies are built.
