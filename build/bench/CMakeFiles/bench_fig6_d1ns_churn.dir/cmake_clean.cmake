file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_d1ns_churn.dir/bench_fig6_d1ns_churn.cc.o"
  "CMakeFiles/bench_fig6_d1ns_churn.dir/bench_fig6_d1ns_churn.cc.o.d"
  "bench_fig6_d1ns_churn"
  "bench_fig6_d1ns_churn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_d1ns_churn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
