# Empty compiler generated dependencies file for govdns_bench_common.
# This may be replaced when dependencies are built.
