file(REMOVE_RECURSE
  "CMakeFiles/govdns_bench_common.dir/common.cc.o"
  "CMakeFiles/govdns_bench_common.dir/common.cc.o.d"
  "libgovdns_bench_common.a"
  "libgovdns_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/govdns_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
