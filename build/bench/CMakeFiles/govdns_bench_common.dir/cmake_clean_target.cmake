file(REMOVE_RECURSE
  "libgovdns_bench_common.a"
)
