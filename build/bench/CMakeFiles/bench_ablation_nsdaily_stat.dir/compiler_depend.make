# Empty compiler generated dependencies file for bench_ablation_nsdaily_stat.
# This may be replaced when dependencies are built.
