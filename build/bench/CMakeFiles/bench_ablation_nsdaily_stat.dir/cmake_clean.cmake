file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_nsdaily_stat.dir/bench_ablation_nsdaily_stat.cc.o"
  "CMakeFiles/bench_ablation_nsdaily_stat.dir/bench_ablation_nsdaily_stat.cc.o.d"
  "bench_ablation_nsdaily_stat"
  "bench_ablation_nsdaily_stat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_nsdaily_stat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
