# Empty dependencies file for bench_fig12_registration_cost.
# This may be replaced when dependencies are built.
