# Empty dependencies file for bench_fig2_pdns_growth.
# This may be replaced when dependencies are built.
