# Empty dependencies file for bench_fig9_ns_cdf.
# This may be replaced when dependencies are built.
