# Empty dependencies file for bench_fig13_consistency.
# This may be replaced when dependencies are built.
