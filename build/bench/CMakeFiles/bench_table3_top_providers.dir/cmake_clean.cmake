file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_top_providers.dir/bench_table3_top_providers.cc.o"
  "CMakeFiles/bench_table3_top_providers.dir/bench_table3_top_providers.cc.o.d"
  "bench_table3_top_providers"
  "bench_table3_top_providers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_top_providers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
