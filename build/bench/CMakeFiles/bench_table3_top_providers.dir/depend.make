# Empty dependencies file for bench_table3_top_providers.
# This may be replaced when dependencies are built.
