# Empty dependencies file for bench_fig4_domains_per_country.
# This may be replaced when dependencies are built.
