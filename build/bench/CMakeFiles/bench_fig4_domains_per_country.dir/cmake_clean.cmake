file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_domains_per_country.dir/bench_fig4_domains_per_country.cc.o"
  "CMakeFiles/bench_fig4_domains_per_country.dir/bench_fig4_domains_per_country.cc.o.d"
  "bench_fig4_domains_per_country"
  "bench_fig4_domains_per_country.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_domains_per_country.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
