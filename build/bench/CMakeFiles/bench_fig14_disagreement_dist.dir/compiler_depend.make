# Empty compiler generated dependencies file for bench_fig14_disagreement_dist.
# This may be replaced when dependencies are built.
