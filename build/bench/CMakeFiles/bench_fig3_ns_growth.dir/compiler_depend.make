# Empty compiler generated dependencies file for bench_fig3_ns_growth.
# This may be replaced when dependencies are built.
