file(REMOVE_RECURSE
  "CMakeFiles/country_audit.dir/country_audit.cc.o"
  "CMakeFiles/country_audit.dir/country_audit.cc.o.d"
  "country_audit"
  "country_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/country_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
