# Empty dependencies file for country_audit.
# This may be replaced when dependencies are built.
