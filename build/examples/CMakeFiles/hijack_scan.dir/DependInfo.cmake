
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/hijack_scan.cc" "examples/CMakeFiles/hijack_scan.dir/hijack_scan.cc.o" "gcc" "examples/CMakeFiles/hijack_scan.dir/hijack_scan.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/govdns_core.dir/DependInfo.cmake"
  "/root/repo/build/src/worldgen/CMakeFiles/govdns_worldgen.dir/DependInfo.cmake"
  "/root/repo/build/src/pdns/CMakeFiles/govdns_pdns.dir/DependInfo.cmake"
  "/root/repo/build/src/registrar/CMakeFiles/govdns_registrar.dir/DependInfo.cmake"
  "/root/repo/build/src/zone/CMakeFiles/govdns_zone.dir/DependInfo.cmake"
  "/root/repo/build/src/simnet/CMakeFiles/govdns_simnet.dir/DependInfo.cmake"
  "/root/repo/build/src/dns/CMakeFiles/govdns_dns.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/govdns_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/govdns_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
