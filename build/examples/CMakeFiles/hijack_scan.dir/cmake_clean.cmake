file(REMOVE_RECURSE
  "CMakeFiles/hijack_scan.dir/hijack_scan.cc.o"
  "CMakeFiles/hijack_scan.dir/hijack_scan.cc.o.d"
  "hijack_scan"
  "hijack_scan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hijack_scan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
