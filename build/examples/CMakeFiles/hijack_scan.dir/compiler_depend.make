# Empty compiler generated dependencies file for hijack_scan.
# This may be replaced when dependencies are built.
