file(REMOVE_RECURSE
  "CMakeFiles/longitudinal_trends.dir/longitudinal_trends.cc.o"
  "CMakeFiles/longitudinal_trends.dir/longitudinal_trends.cc.o.d"
  "longitudinal_trends"
  "longitudinal_trends.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/longitudinal_trends.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
