# Empty compiler generated dependencies file for govdns_geo.
# This may be replaced when dependencies are built.
