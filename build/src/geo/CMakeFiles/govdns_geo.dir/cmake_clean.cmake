file(REMOVE_RECURSE
  "CMakeFiles/govdns_geo.dir/asn_db.cc.o"
  "CMakeFiles/govdns_geo.dir/asn_db.cc.o.d"
  "CMakeFiles/govdns_geo.dir/ipv4.cc.o"
  "CMakeFiles/govdns_geo.dir/ipv4.cc.o.d"
  "libgovdns_geo.a"
  "libgovdns_geo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/govdns_geo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
