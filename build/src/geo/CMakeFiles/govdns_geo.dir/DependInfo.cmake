
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/geo/asn_db.cc" "src/geo/CMakeFiles/govdns_geo.dir/asn_db.cc.o" "gcc" "src/geo/CMakeFiles/govdns_geo.dir/asn_db.cc.o.d"
  "/root/repo/src/geo/ipv4.cc" "src/geo/CMakeFiles/govdns_geo.dir/ipv4.cc.o" "gcc" "src/geo/CMakeFiles/govdns_geo.dir/ipv4.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/govdns_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
