file(REMOVE_RECURSE
  "libgovdns_geo.a"
)
