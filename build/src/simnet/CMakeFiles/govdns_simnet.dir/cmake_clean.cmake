file(REMOVE_RECURSE
  "CMakeFiles/govdns_simnet.dir/network.cc.o"
  "CMakeFiles/govdns_simnet.dir/network.cc.o.d"
  "libgovdns_simnet.a"
  "libgovdns_simnet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/govdns_simnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
