file(REMOVE_RECURSE
  "libgovdns_simnet.a"
)
