# Empty compiler generated dependencies file for govdns_simnet.
# This may be replaced when dependencies are built.
