file(REMOVE_RECURSE
  "CMakeFiles/govdns_worldgen.dir/adapter.cc.o"
  "CMakeFiles/govdns_worldgen.dir/adapter.cc.o.d"
  "CMakeFiles/govdns_worldgen.dir/countries.cc.o"
  "CMakeFiles/govdns_worldgen.dir/countries.cc.o.d"
  "CMakeFiles/govdns_worldgen.dir/generate_active.cc.o"
  "CMakeFiles/govdns_worldgen.dir/generate_active.cc.o.d"
  "CMakeFiles/govdns_worldgen.dir/generate_infra.cc.o"
  "CMakeFiles/govdns_worldgen.dir/generate_infra.cc.o.d"
  "CMakeFiles/govdns_worldgen.dir/generate_lifecycle.cc.o"
  "CMakeFiles/govdns_worldgen.dir/generate_lifecycle.cc.o.d"
  "CMakeFiles/govdns_worldgen.dir/providers.cc.o"
  "CMakeFiles/govdns_worldgen.dir/providers.cc.o.d"
  "CMakeFiles/govdns_worldgen.dir/world.cc.o"
  "CMakeFiles/govdns_worldgen.dir/world.cc.o.d"
  "libgovdns_worldgen.a"
  "libgovdns_worldgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/govdns_worldgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
