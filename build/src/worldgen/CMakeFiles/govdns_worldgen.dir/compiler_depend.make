# Empty compiler generated dependencies file for govdns_worldgen.
# This may be replaced when dependencies are built.
