file(REMOVE_RECURSE
  "libgovdns_worldgen.a"
)
