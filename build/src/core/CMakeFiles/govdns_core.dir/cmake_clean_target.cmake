file(REMOVE_RECURSE
  "libgovdns_core.a"
)
