file(REMOVE_RECURSE
  "CMakeFiles/govdns_core.dir/analysis.cc.o"
  "CMakeFiles/govdns_core.dir/analysis.cc.o.d"
  "CMakeFiles/govdns_core.dir/export.cc.o"
  "CMakeFiles/govdns_core.dir/export.cc.o.d"
  "CMakeFiles/govdns_core.dir/measure.cc.o"
  "CMakeFiles/govdns_core.dir/measure.cc.o.d"
  "CMakeFiles/govdns_core.dir/mining.cc.o"
  "CMakeFiles/govdns_core.dir/mining.cc.o.d"
  "CMakeFiles/govdns_core.dir/providers.cc.o"
  "CMakeFiles/govdns_core.dir/providers.cc.o.d"
  "CMakeFiles/govdns_core.dir/report.cc.o"
  "CMakeFiles/govdns_core.dir/report.cc.o.d"
  "CMakeFiles/govdns_core.dir/resolver.cc.o"
  "CMakeFiles/govdns_core.dir/resolver.cc.o.d"
  "CMakeFiles/govdns_core.dir/selection.cc.o"
  "CMakeFiles/govdns_core.dir/selection.cc.o.d"
  "CMakeFiles/govdns_core.dir/study.cc.o"
  "CMakeFiles/govdns_core.dir/study.cc.o.d"
  "libgovdns_core.a"
  "libgovdns_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/govdns_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
