# Empty dependencies file for govdns_core.
# This may be replaced when dependencies are built.
