
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/analysis.cc" "src/core/CMakeFiles/govdns_core.dir/analysis.cc.o" "gcc" "src/core/CMakeFiles/govdns_core.dir/analysis.cc.o.d"
  "/root/repo/src/core/export.cc" "src/core/CMakeFiles/govdns_core.dir/export.cc.o" "gcc" "src/core/CMakeFiles/govdns_core.dir/export.cc.o.d"
  "/root/repo/src/core/measure.cc" "src/core/CMakeFiles/govdns_core.dir/measure.cc.o" "gcc" "src/core/CMakeFiles/govdns_core.dir/measure.cc.o.d"
  "/root/repo/src/core/mining.cc" "src/core/CMakeFiles/govdns_core.dir/mining.cc.o" "gcc" "src/core/CMakeFiles/govdns_core.dir/mining.cc.o.d"
  "/root/repo/src/core/providers.cc" "src/core/CMakeFiles/govdns_core.dir/providers.cc.o" "gcc" "src/core/CMakeFiles/govdns_core.dir/providers.cc.o.d"
  "/root/repo/src/core/report.cc" "src/core/CMakeFiles/govdns_core.dir/report.cc.o" "gcc" "src/core/CMakeFiles/govdns_core.dir/report.cc.o.d"
  "/root/repo/src/core/resolver.cc" "src/core/CMakeFiles/govdns_core.dir/resolver.cc.o" "gcc" "src/core/CMakeFiles/govdns_core.dir/resolver.cc.o.d"
  "/root/repo/src/core/selection.cc" "src/core/CMakeFiles/govdns_core.dir/selection.cc.o" "gcc" "src/core/CMakeFiles/govdns_core.dir/selection.cc.o.d"
  "/root/repo/src/core/study.cc" "src/core/CMakeFiles/govdns_core.dir/study.cc.o" "gcc" "src/core/CMakeFiles/govdns_core.dir/study.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dns/CMakeFiles/govdns_dns.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/govdns_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/pdns/CMakeFiles/govdns_pdns.dir/DependInfo.cmake"
  "/root/repo/build/src/registrar/CMakeFiles/govdns_registrar.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/govdns_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
