file(REMOVE_RECURSE
  "CMakeFiles/govdns_dns.dir/message.cc.o"
  "CMakeFiles/govdns_dns.dir/message.cc.o.d"
  "CMakeFiles/govdns_dns.dir/name.cc.o"
  "CMakeFiles/govdns_dns.dir/name.cc.o.d"
  "CMakeFiles/govdns_dns.dir/rr.cc.o"
  "CMakeFiles/govdns_dns.dir/rr.cc.o.d"
  "CMakeFiles/govdns_dns.dir/wire.cc.o"
  "CMakeFiles/govdns_dns.dir/wire.cc.o.d"
  "libgovdns_dns.a"
  "libgovdns_dns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/govdns_dns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
