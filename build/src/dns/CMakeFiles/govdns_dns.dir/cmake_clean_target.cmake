file(REMOVE_RECURSE
  "libgovdns_dns.a"
)
