# Empty compiler generated dependencies file for govdns_dns.
# This may be replaced when dependencies are built.
