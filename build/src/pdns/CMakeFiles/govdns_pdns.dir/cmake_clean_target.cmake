file(REMOVE_RECURSE
  "libgovdns_pdns.a"
)
