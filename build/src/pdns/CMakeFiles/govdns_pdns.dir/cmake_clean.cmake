file(REMOVE_RECURSE
  "CMakeFiles/govdns_pdns.dir/db.cc.o"
  "CMakeFiles/govdns_pdns.dir/db.cc.o.d"
  "libgovdns_pdns.a"
  "libgovdns_pdns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/govdns_pdns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
