# Empty dependencies file for govdns_pdns.
# This may be replaced when dependencies are built.
