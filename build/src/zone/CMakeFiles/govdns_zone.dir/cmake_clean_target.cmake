file(REMOVE_RECURSE
  "libgovdns_zone.a"
)
