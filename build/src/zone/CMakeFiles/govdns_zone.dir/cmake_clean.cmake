file(REMOVE_RECURSE
  "CMakeFiles/govdns_zone.dir/auth_server.cc.o"
  "CMakeFiles/govdns_zone.dir/auth_server.cc.o.d"
  "CMakeFiles/govdns_zone.dir/lint.cc.o"
  "CMakeFiles/govdns_zone.dir/lint.cc.o.d"
  "CMakeFiles/govdns_zone.dir/zone.cc.o"
  "CMakeFiles/govdns_zone.dir/zone.cc.o.d"
  "CMakeFiles/govdns_zone.dir/zonefile.cc.o"
  "CMakeFiles/govdns_zone.dir/zonefile.cc.o.d"
  "libgovdns_zone.a"
  "libgovdns_zone.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/govdns_zone.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
