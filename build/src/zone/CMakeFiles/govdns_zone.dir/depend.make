# Empty dependencies file for govdns_zone.
# This may be replaced when dependencies are built.
