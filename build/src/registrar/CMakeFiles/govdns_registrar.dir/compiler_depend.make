# Empty compiler generated dependencies file for govdns_registrar.
# This may be replaced when dependencies are built.
