file(REMOVE_RECURSE
  "libgovdns_registrar.a"
)
