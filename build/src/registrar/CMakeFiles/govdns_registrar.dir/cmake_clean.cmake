file(REMOVE_RECURSE
  "CMakeFiles/govdns_registrar.dir/registrar.cc.o"
  "CMakeFiles/govdns_registrar.dir/registrar.cc.o.d"
  "CMakeFiles/govdns_registrar.dir/suffix.cc.o"
  "CMakeFiles/govdns_registrar.dir/suffix.cc.o.d"
  "libgovdns_registrar.a"
  "libgovdns_registrar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/govdns_registrar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
