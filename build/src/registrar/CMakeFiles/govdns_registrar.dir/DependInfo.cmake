
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/registrar/registrar.cc" "src/registrar/CMakeFiles/govdns_registrar.dir/registrar.cc.o" "gcc" "src/registrar/CMakeFiles/govdns_registrar.dir/registrar.cc.o.d"
  "/root/repo/src/registrar/suffix.cc" "src/registrar/CMakeFiles/govdns_registrar.dir/suffix.cc.o" "gcc" "src/registrar/CMakeFiles/govdns_registrar.dir/suffix.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dns/CMakeFiles/govdns_dns.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/govdns_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/govdns_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
