# Empty dependencies file for govdns_util.
# This may be replaced when dependencies are built.
