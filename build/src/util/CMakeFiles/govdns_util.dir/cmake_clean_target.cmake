file(REMOVE_RECURSE
  "libgovdns_util.a"
)
