file(REMOVE_RECURSE
  "CMakeFiles/govdns_util.dir/civil_time.cc.o"
  "CMakeFiles/govdns_util.dir/civil_time.cc.o.d"
  "CMakeFiles/govdns_util.dir/json.cc.o"
  "CMakeFiles/govdns_util.dir/json.cc.o.d"
  "CMakeFiles/govdns_util.dir/rng.cc.o"
  "CMakeFiles/govdns_util.dir/rng.cc.o.d"
  "CMakeFiles/govdns_util.dir/stats.cc.o"
  "CMakeFiles/govdns_util.dir/stats.cc.o.d"
  "CMakeFiles/govdns_util.dir/status.cc.o"
  "CMakeFiles/govdns_util.dir/status.cc.o.d"
  "CMakeFiles/govdns_util.dir/strings.cc.o"
  "CMakeFiles/govdns_util.dir/strings.cc.o.d"
  "CMakeFiles/govdns_util.dir/table.cc.o"
  "CMakeFiles/govdns_util.dir/table.cc.o.d"
  "libgovdns_util.a"
  "libgovdns_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/govdns_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
