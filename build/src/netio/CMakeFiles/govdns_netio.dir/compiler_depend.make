# Empty compiler generated dependencies file for govdns_netio.
# This may be replaced when dependencies are built.
