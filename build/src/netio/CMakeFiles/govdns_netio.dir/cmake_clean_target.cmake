file(REMOVE_RECURSE
  "libgovdns_netio.a"
)
