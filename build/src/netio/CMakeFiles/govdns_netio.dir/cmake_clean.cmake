file(REMOVE_RECURSE
  "CMakeFiles/govdns_netio.dir/udp.cc.o"
  "CMakeFiles/govdns_netio.dir/udp.cc.o.d"
  "libgovdns_netio.a"
  "libgovdns_netio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/govdns_netio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
