# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/name_test[1]_include.cmake")
include("/root/repo/build/tests/wire_test[1]_include.cmake")
include("/root/repo/build/tests/message_test[1]_include.cmake")
include("/root/repo/build/tests/geo_test[1]_include.cmake")
include("/root/repo/build/tests/zone_test[1]_include.cmake")
include("/root/repo/build/tests/zonefile_test[1]_include.cmake")
include("/root/repo/build/tests/lint_test[1]_include.cmake")
include("/root/repo/build/tests/property_sweep_test[1]_include.cmake")
include("/root/repo/build/tests/simnet_test[1]_include.cmake")
include("/root/repo/build/tests/netio_test[1]_include.cmake")
include("/root/repo/build/tests/pdns_test[1]_include.cmake")
include("/root/repo/build/tests/registrar_test[1]_include.cmake")
include("/root/repo/build/tests/resolver_test[1]_include.cmake")
include("/root/repo/build/tests/measure_test[1]_include.cmake")
include("/root/repo/build/tests/failure_injection_test[1]_include.cmake")
include("/root/repo/build/tests/analysis_test[1]_include.cmake")
include("/root/repo/build/tests/mining_test[1]_include.cmake")
include("/root/repo/build/tests/providers_test[1]_include.cmake")
include("/root/repo/build/tests/report_test[1]_include.cmake")
include("/root/repo/build/tests/export_test[1]_include.cmake")
include("/root/repo/build/tests/selection_test[1]_include.cmake")
include("/root/repo/build/tests/worldgen_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
