file(REMOVE_RECURSE
  "CMakeFiles/providers_test.dir/providers_test.cc.o"
  "CMakeFiles/providers_test.dir/providers_test.cc.o.d"
  "providers_test"
  "providers_test.pdb"
  "providers_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/providers_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
