file(REMOVE_RECURSE
  "CMakeFiles/pdns_test.dir/pdns_test.cc.o"
  "CMakeFiles/pdns_test.dir/pdns_test.cc.o.d"
  "pdns_test"
  "pdns_test.pdb"
  "pdns_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdns_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
