# Empty dependencies file for pdns_test.
# This may be replaced when dependencies are built.
