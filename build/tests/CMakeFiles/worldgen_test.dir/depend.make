# Empty dependencies file for worldgen_test.
# This may be replaced when dependencies are built.
