file(REMOVE_RECURSE
  "CMakeFiles/worldgen_test.dir/worldgen_test.cc.o"
  "CMakeFiles/worldgen_test.dir/worldgen_test.cc.o.d"
  "worldgen_test"
  "worldgen_test.pdb"
  "worldgen_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/worldgen_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
