# Empty dependencies file for registrar_test.
# This may be replaced when dependencies are built.
