file(REMOVE_RECURSE
  "CMakeFiles/registrar_test.dir/registrar_test.cc.o"
  "CMakeFiles/registrar_test.dir/registrar_test.cc.o.d"
  "registrar_test"
  "registrar_test.pdb"
  "registrar_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/registrar_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
