file(REMOVE_RECURSE
  "CMakeFiles/govdns_study.dir/govdns_study.cc.o"
  "CMakeFiles/govdns_study.dir/govdns_study.cc.o.d"
  "govdns_study"
  "govdns_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/govdns_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
