# Empty dependencies file for govdns_study.
# This may be replaced when dependencies are built.
