file(REMOVE_RECURSE
  "CMakeFiles/govdns_serve.dir/govdns_serve.cc.o"
  "CMakeFiles/govdns_serve.dir/govdns_serve.cc.o.d"
  "govdns_serve"
  "govdns_serve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/govdns_serve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
