# Empty compiler generated dependencies file for govdns_serve.
# This may be replaced when dependencies are built.
