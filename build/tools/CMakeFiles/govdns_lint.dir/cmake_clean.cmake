file(REMOVE_RECURSE
  "CMakeFiles/govdns_lint.dir/govdns_lint.cc.o"
  "CMakeFiles/govdns_lint.dir/govdns_lint.cc.o.d"
  "govdns_lint"
  "govdns_lint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/govdns_lint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
