# Empty compiler generated dependencies file for govdns_lint.
# This may be replaced when dependencies are built.
