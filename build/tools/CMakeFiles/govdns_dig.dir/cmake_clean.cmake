file(REMOVE_RECURSE
  "CMakeFiles/govdns_dig.dir/govdns_dig.cc.o"
  "CMakeFiles/govdns_dig.dir/govdns_dig.cc.o.d"
  "govdns_dig"
  "govdns_dig.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/govdns_dig.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
