# Empty compiler generated dependencies file for govdns_dig.
# This may be replaced when dependencies are built.
