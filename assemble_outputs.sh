#!/bin/bash
# Assembles bench_output.txt from the chunked full-scale runs. The output is
# staged in a temp file and moved into place atomically, so an interrupted
# assembly never leaves a truncated bench_output.txt behind.
cd /root/repo || exit 1
tmp="bench_output.txt.tmp"
trap 'rm -f "$tmp"' EXIT
{
  echo "govdns benchmark sweep"
  echo "paper-scale (GOVDNS_SCALE=1.0) for all tables/figures;"
  echo "ablation benches at GOVDNS_SCALE=0.25 (relative comparisons)."
  echo "Assembled from per-binary runs (single-core machine; binaries run"
  echo "sequentially, one output section per binary)."
  echo
  for n in bench_fig2_pdns_growth bench_fig3_ns_growth \
           bench_fig4_domains_per_country bench_fig6_d1ns_churn \
           bench_fig7_private_deployment bench_fig8_stale_d1ns \
           bench_fig9_ns_cdf bench_table1_diversity \
           bench_table2_major_providers bench_table3_top_providers \
           bench_fig10_defective_delegations bench_fig11_available_ns \
           bench_fig12_registration_cost bench_fig13_consistency \
           bench_fig14_disagreement_dist bench_ablation_stability_filter \
           bench_ablation_nsdaily_stat bench_ablation_second_round \
           bench_ablation_provider_matching; do
    f="results/full/$n.txt"
    # A missing or empty section means a bench crashed or was skipped;
    # assembling around it would silently publish a partial sweep.
    if [ ! -s "$f" ]; then
      echo "assemble_outputs: missing or empty artifact: $f" >&2
      exit 1
    fi
    echo "==================== $n ===================="
    cat "$f"
    echo
  done
} > "$tmp"
mv "$tmp" bench_output.txt
wc -l bench_output.txt
