// Hijack scan: enumerate registrable nameserver domains that government
// domains still delegate to — the §IV-C/D attack surface — and print a
// responsible-disclosure-style report with registration prices.
//
//   ./hijack_scan [scale]    (default 0.05)
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <set>

#include "core/analysis.h"
#include "core/study.h"
#include "util/stats.h"
#include "util/strings.h"
#include "util/table.h"
#include "worldgen/adapter.h"

int main(int argc, char** argv) {
  using namespace govdns;
  worldgen::WorldConfig config;
  config.scale = argc > 1 ? std::atof(argv[1]) : 0.05;
  auto world = worldgen::BuildWorld(config);
  auto bound = worldgen::MakeStudy(*world);
  core::Study& study = *bound.study;
  study.RunAll();

  const auto& dataset = study.active();
  const auto& psl = world->psl();
  const auto& registrar = world->registrar_client();

  // Collect (available d_ns -> victims) directly so the report can name
  // names; AnalyzeHijackRisk provides the same data in aggregate.
  struct Finding {
    std::set<std::string> domains;
    std::set<std::string> countries;
    double price = 0.0;
    bool parked = false;
  };
  std::map<std::string, Finding> findings;

  auto is_government = [&](const dns::Name& name) {
    for (const auto& seed : study.seeds()) {
      if (name.IsSubdomainOf(seed.d_gov)) return true;
    }
    return false;
  };

  for (size_t i = 0; i < dataset.results.size(); ++i) {
    const auto& r = dataset.results[i];
    if (!r.parent_has_records) continue;
    bool defective = core::ClassifyDelegation(r) !=
                     core::DelegationHealth::kHealthy;
    auto klass = core::ClassifyConsistency(r);
    bool inconsistent = klass != core::ConsistencyClass::kEqual &&
                        klass != core::ConsistencyClass::kNotComparable;
    if (!defective && !inconsistent) continue;
    for (const auto& host : r.hosts) {
      bool risky = defective
                       ? (host.in_parent_set &&
                          host.status != core::NsHostStatus::kAuthoritative)
                       : !(host.in_parent_set && host.in_child_set);
      if (!risky || is_government(host.host)) continue;
      auto reg = psl.RegisteredDomain(host.host);
      if (!reg || !registrar.IsAvailable(*reg)) continue;
      auto& finding = findings[reg->ToString()];
      finding.domains.insert(r.domain.ToString());
      if (dataset.country[i] >= 0) {
        finding.countries.insert(dataset.metas[dataset.country[i]].code);
      }
      finding.price = registrar.PriceUsd(*reg).value_or(0.0);
      finding.parked = !defective;
    }
  }

  std::printf("== hijackable nameserver domains: %zu ==\n", findings.size());
  std::vector<std::pair<size_t, std::string>> ranked;
  std::vector<double> prices;
  for (const auto& [dns_domain, finding] : findings) {
    ranked.emplace_back(finding.domains.size(), dns_domain);
    prices.push_back(finding.price);
  }
  std::sort(ranked.rbegin(), ranked.rend());

  util::TextTable table({"Nameserver domain", "Price (USD)", "Victims",
                         "Countries", "Kind"});
  for (size_t i = 0; i < ranked.size() && i < 25; ++i) {
    const Finding& finding = findings[ranked[i].second];
    char price[32];
    std::snprintf(price, sizeof(price), "%.2f", finding.price);
    table.AddRow({ranked[i].second, price,
                  std::to_string(finding.domains.size()),
                  util::Join({finding.countries.begin(),
                              finding.countries.end()}, ","),
                  finding.parked ? "parked (responsive)" : "lame"});
  }
  table.Print(std::cout);

  if (!prices.empty()) {
    std::printf("\ntotal cost to acquire every listed domain: %.2f USD; "
                "median %.2f\n",
                [&] { double s = 0; for (double p : prices) s += p; return s; }(),
                util::Median(prices));
  }
  std::printf("(each entry means: registering that domain lets an attacker "
              "answer DNS for the victim government domains)\n");
  return 0;
}
