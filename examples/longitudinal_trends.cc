// Longitudinal trends: the passive-DNS decade in one report — namespace
// growth, the single-nameserver population, private-deployment share, and
// provider centralization (the paper's §IV-A/B narrative).
//
//   ./longitudinal_trends [scale]    (default 0.05)
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "core/mining.h"
#include "core/providers.h"
#include "core/study.h"
#include "util/strings.h"
#include "util/table.h"
#include "worldgen/adapter.h"

int main(int argc, char** argv) {
  using namespace govdns;
  worldgen::WorldConfig config;
  config.scale = argc > 1 ? std::atof(argv[1]) : 0.05;
  auto world = worldgen::BuildWorld(config);
  auto bound = worldgen::MakeStudy(*world);
  core::Study& study = *bound.study;
  study.RunSelection();
  study.RunMining();

  const auto& dataset = study.mined();
  auto counts = core::CountPerYear(dataset);
  auto churn = core::D1nsChurn(dataset);
  auto private_share = core::PrivateShare(dataset, study.seeds());

  util::TextTable table({"Year", "Domains", "NS hosts", "d_1NS",
                         "d_1NS private", "all private"});
  for (size_t y = 0; y < counts.size(); ++y) {
    table.AddRow({std::to_string(counts[y].year),
                  util::WithCommas(counts[y].domains),
                  util::WithCommas(counts[y].nameservers),
                  util::WithCommas(churn[y].d1ns_total),
                  util::Percent(private_share[y].pct_d1ns_private),
                  util::Percent(private_share[y].pct_all_private)});
  }
  std::printf("== a decade of government DNS ==\n");
  table.Print(std::cout);

  core::ProviderMatcher matcher(core::DefaultProviderRules());
  core::ProviderAnalyzer analyzer(&matcher, worldgen::MakeCountryMetas());
  util::TextTable trend({"Year", "Top provider", "Countries",
                         "Domains on majors"});
  for (int year : {2011, 2014, 2017, 2020}) {
    auto t = analyzer.Analyze(dataset, year);
    auto top = core::ProviderAnalyzer::TopByCountries(t, 1);
    int64_t majors = 0;
    for (const auto& row : t.rows) {
      if (row.major) majors += row.domains;
    }
    trend.AddRow({std::to_string(year),
                  top.empty() ? "-" : top.front().group_key,
                  top.empty() ? "0" : std::to_string(top.front().countries),
                  util::WithCommas(majors)});
  }
  std::printf("\n== provider centralization ==\n");
  trend.Print(std::cout);
  std::printf("(the paper's headline: the most widely used provider grew "
              "from 52 to 85 countries, +60%%)\n");
  return 0;
}
