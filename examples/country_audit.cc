// Country audit: the per-country slice of the study — what a national CERT
// would want to know about its government namespace.
//
//   ./country_audit [cc] [scale]    (defaults: "br", 0.05)
//
// Prints the country's d_gov, replication profile, defective delegations
// (with the offending nameservers), consistency, provider dependence, and
// registrable dangling nameserver domains.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <set>
#include <string>

#include "core/analysis.h"
#include "core/providers.h"
#include "core/study.h"
#include "util/strings.h"
#include "util/table.h"
#include "worldgen/adapter.h"

int main(int argc, char** argv) {
  using namespace govdns;
  std::string code = argc > 1 ? argv[1] : "br";
  worldgen::WorldConfig config;
  config.scale = argc > 2 ? std::atof(argv[2]) : 0.05;
  auto world = worldgen::BuildWorld(config);
  auto bound = worldgen::MakeStudy(*world);
  core::Study& study = *bound.study;
  study.RunAll();

  const auto& dataset = study.active();
  int country = -1;
  for (size_t i = 0; i < dataset.metas.size(); ++i) {
    if (dataset.metas[i].code == code) country = static_cast<int>(i);
  }
  if (country < 0) {
    std::fprintf(stderr, "unknown country code: %s\n", code.c_str());
    return 1;
  }
  const core::SeedDomain* seed = nullptr;
  for (const auto& s : study.seeds()) {
    if (s.country == country) seed = &s;
  }
  std::printf("== audit of %s (%s) ==\n", dataset.metas[country].name.c_str(),
              seed ? seed->d_gov.ToString().c_str() : "no seed");

  // Per-country funnel and replication.
  int64_t queried = 0, responsive = 0, d1ns = 0, d1ns_stale = 0;
  int64_t partial = 0, full = 0, comparable = 0, disagree = 0;
  std::map<std::string, int64_t> provider_use;
  std::map<std::string, std::set<std::string>> bad_ns;  // host -> domains
  core::ProviderMatcher matcher(core::DefaultProviderRules());

  for (size_t i = 0; i < dataset.results.size(); ++i) {
    if (dataset.country[i] != country) continue;
    const auto& r = dataset.results[i];
    ++queried;
    if (!r.parent_has_records) continue;
    ++responsive;
    if (r.AllNs().size() == 1) {
      ++d1ns;
      if (!r.child_any_authoritative) ++d1ns_stale;
    }
    auto health = core::ClassifyDelegation(r);
    if (health == core::DelegationHealth::kPartiallyDefective) ++partial;
    if (health == core::DelegationHealth::kFullyDefective) ++full;
    if (health != core::DelegationHealth::kHealthy) {
      for (const auto& host : r.hosts) {
        if (host.in_parent_set &&
            host.status != core::NsHostStatus::kAuthoritative) {
          bad_ns[host.host.ToString()].insert(r.domain.ToString());
        }
      }
    }
    auto klass = core::ClassifyConsistency(r);
    if (klass != core::ConsistencyClass::kNotComparable) {
      ++comparable;
      if (klass != core::ConsistencyClass::kEqual) ++disagree;
    }
    for (const auto& ns : r.AllNs()) {
      int m = matcher.MatchNs(ns.ToString());
      if (m >= 0) ++provider_use[matcher.rules()[m].group_key];
    }
  }

  std::printf("domains queried: %lld, responsive: %lld\n",
              static_cast<long long>(queried),
              static_cast<long long>(responsive));
  if (responsive == 0) return 0;
  std::printf("single-NS domains: %lld (stale: %lld)\n",
              static_cast<long long>(d1ns),
              static_cast<long long>(d1ns_stale));
  std::printf("defective delegations: %s partial, %s full\n",
              util::Percent(double(partial) / responsive).c_str(),
              util::Percent(double(full) / responsive).c_str());
  if (comparable > 0) {
    std::printf("parent/child disagreement: %s of %lld comparable\n",
                util::Percent(double(disagree) / comparable).c_str(),
                static_cast<long long>(comparable));
  }

  if (!provider_use.empty()) {
    std::printf("\nthird-party provider exposure:\n");
    std::vector<std::pair<int64_t, std::string>> ranked;
    for (const auto& [key, n] : provider_use) ranked.emplace_back(n, key);
    std::sort(ranked.rbegin(), ranked.rend());
    for (size_t i = 0; i < ranked.size() && i < 8; ++i) {
      std::printf("  %-24s %lld NS references\n", ranked[i].second.c_str(),
                  static_cast<long long>(ranked[i].first));
    }
  }

  if (!bad_ns.empty()) {
    std::printf("\nworst offending nameservers (defective, by victim count):\n");
    std::vector<std::pair<size_t, std::string>> ranked;
    for (const auto& [host, victims] : bad_ns) {
      ranked.emplace_back(victims.size(), host);
    }
    std::sort(ranked.rbegin(), ranked.rend());
    for (size_t i = 0; i < ranked.size() && i < 10; ++i) {
      std::printf("  %-40s affects %zu domains\n", ranked[i].second.c_str(),
                  ranked[i].first);
    }
  }
  return 0;
}
