// Full report: the one-call API — run the whole pipeline and print the
// consolidated study report (core::BuildReport / core::PrintReport).
//
//   ./full_report [scale]    (default 0.05)
#include <cstdlib>
#include <iostream>

#include "core/report.h"
#include "worldgen/adapter.h"

int main(int argc, char** argv) {
  using namespace govdns;
  worldgen::WorldConfig config;
  config.scale = argc > 1 ? std::atof(argv[1]) : 0.05;
  auto world = worldgen::BuildWorld(config);
  auto bound = worldgen::MakeStudy(*world);
  bound.study->RunAll();

  std::vector<std::string> top10;
  for (const char* code : worldgen::Top10CountryCodes()) {
    top10.emplace_back(code);
  }
  core::StudyReport report = core::BuildReport(*bound.study, top10);
  core::PrintReport(report, std::cout);
  return 0;
}
