// Quickstart: build a small simulated world, run the full measurement
// pipeline (selection -> passive-DNS mining -> active measurement), and
// print the headline numbers of the study.
//
//   ./quickstart [scale]     (default scale 0.05)
#include <cstdio>
#include <cstdlib>

#include "core/analysis.h"
#include "core/study.h"
#include "util/strings.h"
#include "worldgen/adapter.h"

int main(int argc, char** argv) {
  using namespace govdns;

  // 1. A world to measure. At scale 1.0 this reproduces the paper's global
  //    scale (~190k domains); smaller scales shrink every country's share.
  worldgen::WorldConfig config;
  config.scale = argc > 1 ? std::atof(argv[1]) : 0.05;
  config.seed = 2022;
  std::printf("building world (scale %.2f, seed %llu)...\n", config.scale,
              static_cast<unsigned long long>(config.seed));
  auto world = worldgen::BuildWorld(config);

  // 2. The study pipeline, wired to the world's substrate interfaces. On a
  //    real deployment the same core::Study would run against a socket
  //    transport and a live passive-DNS database.
  auto bound = worldgen::MakeStudy(*world);
  core::Study& study = *bound.study;

  study.RunSelection();
  std::printf("selection: %zu government seed domains "
              "(%d dead portal links, %d squatted, %d MSQ fallbacks)\n",
              study.seeds().size(), study.selection_stats().broken_links,
              study.selection_stats().squatted_links,
              study.selection_stats().msq_fallbacks);

  study.RunMining();
  auto counts = core::CountPerYear(study.mined());
  std::printf("passive DNS: %s domains (%d) -> %s domains (%d)\n",
              util::WithCommas(counts.front().domains).c_str(),
              counts.front().year,
              util::WithCommas(counts.back().domains).c_str(),
              counts.back().year);

  study.RunActiveMeasurement();
  auto funnel = study.active().ComputeFunnel();
  std::printf("active measurement: %s queried, %s parent responses, "
              "%s with NS records (%llu DNS queries)\n",
              util::WithCommas(funnel.queried).c_str(),
              util::WithCommas(funnel.parent_responded).c_str(),
              util::WithCommas(funnel.parent_has_records).c_str(),
              static_cast<unsigned long long>(
                  study.measurement_queries_sent()));

  // 3. Headline analyses.
  auto replication = core::AnalyzeReplication(study.active());
  std::printf("\n-- replication --\n");
  std::printf("domains with >=2 nameservers: %s\n",
              util::Percent(replication.pct_at_least_two).c_str());
  std::printf("single-NS domains: %lld, of which unresponsive: %s\n",
              static_cast<long long>(replication.d1ns_count),
              util::Percent(replication.d1ns_stale_pct).c_str());

  auto delegations = core::AnalyzeDelegations(study.active());
  double n = static_cast<double>(delegations.domains_considered);
  std::printf("\n-- defective delegations --\n");
  std::printf("partially defective: %s, fully defective: %s\n",
              util::Percent(delegations.partially_defective / n).c_str(),
              util::Percent(delegations.fully_defective / n).c_str());

  auto consistency = core::AnalyzeConsistency(study.active());
  std::printf("\n-- parent/child consistency --\n");
  std::printf("P = C for %s of %s comparable domains\n",
              util::Percent(consistency.pct_equal).c_str(),
              util::WithCommas(consistency.comparable).c_str());

  auto hijack = core::AnalyzeHijackRisk(study.active(), world->psl(),
                                        world->registrar_client());
  std::printf("\n-- hijack risk --\n");
  std::printf("registrable nameserver domains in defective delegations: "
              "%lld (affecting %lld domains in %lld countries)\n",
              static_cast<long long>(hijack.available_ns_domains),
              static_cast<long long>(hijack.affected_domains),
              static_cast<long long>(hijack.affected_countries));
  std::printf("dangling-but-responsive (parked) nameserver domains: %lld\n",
              static_cast<long long>(hijack.dangling_available_ns));
  return 0;
}
