// Figure 6: churn of single-nameserver domains (d_1NS), 2012-2020.
//
// Paper anchors: the share of each year's d_1NS that were already d_1NS in
// 2011 declines steadily (21% overlap by 2020); 14-23% of each year's d_1NS
// are new relative to the previous year; 2011's cohort gradually disappears.
#include <iostream>

#include "bench/common.h"
#include "core/mining.h"
#include "util/strings.h"
#include "util/table.h"

namespace {

using govdns::bench::BenchEnv;

void BM_D1nsChurn(benchmark::State& state) {
  auto& env = BenchEnv::Get();
  const auto& dataset = env.mined();
  for (auto _ : state) {
    auto churn = govdns::core::D1nsChurn(dataset);
    benchmark::DoNotOptimize(churn);
  }
}
BENCHMARK(BM_D1nsChurn)->Unit(benchmark::kMillisecond);

void PrintArtifact() {
  auto& env = BenchEnv::Get();
  auto churn = govdns::core::D1nsChurn(env.mined());
  govdns::util::TextTable table({"Year", "d_1NS", "overlap w/ 2011",
                                 "new vs prev year", "2011 cohort gone"});
  for (const auto& row : churn) {
    table.AddRow({std::to_string(row.year),
                  govdns::util::WithCommas(row.d1ns_total),
                  govdns::util::Percent(row.pct_overlap_2011),
                  govdns::util::Percent(row.pct_new_vs_prev),
                  govdns::util::Percent(row.pct_2011_cohort_gone)});
  }
  std::printf("\nFig. 6 — d_1NS churn (paper: overlap falls to 21%% by 2020;"
              " 14-23%% new per year)\n");
  table.Print(std::cout);
}

}  // namespace

GOVDNS_BENCH_MAIN(PrintArtifact)
