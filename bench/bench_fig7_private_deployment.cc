// Figure 7: share of d_1NS and of all domains using a private ADNS
// deployment (all nameservers inside the domain's own d_gov), per year.
//
// Paper anchors: d_1NS private share stays above 71% every year; the
// all-domain private share stays below 34%.
#include <iostream>

#include "bench/common.h"
#include "core/mining.h"
#include "util/strings.h"
#include "util/table.h"

namespace {

using govdns::bench::BenchEnv;

void BM_PrivateShare(benchmark::State& state) {
  auto& env = BenchEnv::Get();
  const auto& dataset = env.mined();
  const auto& seeds = env.seeds();
  for (auto _ : state) {
    auto rows = govdns::core::PrivateShare(dataset, seeds);
    benchmark::DoNotOptimize(rows);
  }
}
BENCHMARK(BM_PrivateShare)->Unit(benchmark::kMillisecond);

void PrintArtifact() {
  auto& env = BenchEnv::Get();
  auto rows = govdns::core::PrivateShare(env.mined(), env.seeds());
  govdns::util::TextTable table(
      {"Year", "d_1NS private", "all domains private"});
  for (const auto& row : rows) {
    table.AddRow({std::to_string(row.year),
                  govdns::util::Percent(row.pct_d1ns_private),
                  govdns::util::Percent(row.pct_all_private)});
  }
  std::printf("\nFig. 7 — private ADNS deployment share per year\n");
  std::printf("(paper: d_1NS > 71%% every year; all domains < 34%%)\n");
  table.Print(std::cout);
}

}  // namespace

GOVDNS_BENCH_MAIN(PrintArtifact)
