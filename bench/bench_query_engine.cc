// Throughput bench: synchronous per-worker UDP loop vs the async
// QueryEngine (DESIGN.md §6h).
//
// A loopback echo server answers every datagram after a fixed ~2ms delay —
// a stand-in for network RTT, which is what actually bounds the active
// phase at scale. The sync arm runs 4 worker threads each blocking in
// UdpTransport::Exchange, the paper-pipeline shape before the engine; the
// async arm keeps a single submitter thread and sweeps the engine's
// in-flight window over 64/256/1024. The artifact records queries/sec per
// arm and the ratio, and lands in BENCH_netio.json (path overridable via
// GOVDNS_NETIO_JSON) — the acceptance bar is >=10x at window >=64 against
// the 4-worker sync loop.
#include <poll.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench/common.h"
#include "dns/message.h"
#include "netio/engine.h"
#include "netio/sockaddr.h"
#include "netio/udp.h"
#include "util/json.h"
#include "util/table.h"

namespace {

using Clock = std::chrono::steady_clock;
using govdns::geo::IPv4;

constexpr int kDelayMs = 2;          // simulated RTT
constexpr int kSyncWorkers = 4;      // the pre-engine pipeline shape
constexpr int kSyncQueriesPerWorker = 250;
constexpr int kAsyncQueries = 8000;

IPv4 Loopback() { return IPv4(127, 0, 0, 1); }

// Echoes every datagram back to its sender with the QR bit set, after a
// fixed delay. Single thread: drains arrivals into a FIFO (constant delay
// keeps it ordered by due time) and flushes the due ones each turn.
class DelayedEchoServer {
 public:
  bool Start() {
    fd_ = ::socket(AF_INET, SOCK_DGRAM | SOCK_NONBLOCK, 0);
    if (fd_ < 0) return false;
    int rcvbuf = 1 << 20;  // absorb full-window bursts
    (void)::setsockopt(fd_, SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof(rcvbuf));
    sockaddr_in addr = govdns::netio::MakeSockaddr(Loopback(), 0);
    if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
        0) {
      return false;
    }
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&bound), &len) < 0) {
      return false;
    }
    port_ = ntohs(bound.sin_port);
    running_.store(true);
    thread_ = std::thread([this] { Loop(); });
    return true;
  }

  void Stop() {
    if (!running_.exchange(false)) return;
    if (thread_.joinable()) thread_.join();
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

  ~DelayedEchoServer() { Stop(); }

  uint16_t port() const { return port_; }

 private:
  struct Reply {
    Clock::time_point due;
    sockaddr_in to{};
    std::vector<uint8_t> payload;
  };

  void Loop() {
    std::vector<uint8_t> buf(4096);
    while (running_.load()) {
      pollfd pfd{fd_, POLLIN, 0};
      (void)::poll(&pfd, 1, 1);
      for (;;) {
        sockaddr_in from{};
        socklen_t from_len = sizeof(from);
        ssize_t got = ::recvfrom(fd_, buf.data(), buf.size(), 0,
                                 reinterpret_cast<sockaddr*>(&from),
                                 &from_len);
        if (got <= 0) break;
        Reply r;
        r.due = Clock::now() + std::chrono::milliseconds(kDelayMs);
        r.to = from;
        r.payload.assign(buf.begin(), buf.begin() + got);
        if (r.payload.size() >= 3) r.payload[2] |= 0x80;  // QR
        queue_.push_back(std::move(r));
      }
      const Clock::time_point now = Clock::now();
      while (!queue_.empty() && queue_.front().due <= now) {
        const Reply& r = queue_.front();
        (void)::sendto(fd_, r.payload.data(), r.payload.size(), 0,
                       reinterpret_cast<const sockaddr*>(&r.to), sizeof(r.to));
        queue_.pop_front();
      }
    }
  }

  int fd_ = -1;
  uint16_t port_ = 0;
  std::deque<Reply> queue_;
  std::thread thread_;
  std::atomic<bool> running_{false};
};

std::vector<uint8_t> Query(uint16_t id) {
  return govdns::dns::MakeQuery(id,
                                govdns::dns::Name::FromString("www.gov.xx"),
                                govdns::dns::RRType::kA)
      .Encode();
}

// Queries/sec of `workers` threads each blocking per exchange.
double SyncQps(uint16_t port, int workers, int per_worker) {
  std::atomic<int> failures{0};
  const auto start = Clock::now();
  std::vector<std::thread> pool;
  pool.reserve(static_cast<size_t>(workers));
  for (int w = 0; w < workers; ++w) {
    pool.emplace_back([&, w] {
      govdns::netio::UdpTransport::Options options;
      options.port = port;
      options.timeout_ms = 2000;
      govdns::netio::UdpTransport transport(options);
      for (int i = 0; i < per_worker; ++i) {
        auto raw = transport.Exchange(
            Loopback(), Query(static_cast<uint16_t>(w * per_worker + i + 1)));
        if (!raw.ok()) failures.fetch_add(1);
      }
    });
  }
  for (std::thread& t : pool) t.join();
  const double seconds = std::chrono::duration<double>(Clock::now() - start).count();
  if (failures.load() > 0) {
    std::fprintf(stderr, "[bench] sync arm: %d failures\n", failures.load());
  }
  return static_cast<double>(workers) * per_worker / seconds;
}

// Queries/sec of one submitter thread driving the engine at `window`.
double EngineQps(uint16_t port, int window, int queries) {
  govdns::netio::QueryEngine::Options options;
  options.port = port;
  options.timeout_ms = 2000;
  options.max_inflight = window;
  govdns::netio::QueryEngine engine(options);

  const auto start = Clock::now();
  std::vector<govdns::netio::QueryEngine::Token> tokens;
  tokens.reserve(static_cast<size_t>(queries));
  for (int i = 0; i < queries; ++i) {
    tokens.push_back(
        engine.Submit(Loopback(), Query(static_cast<uint16_t>(i + 1))));
  }
  int failures = 0;
  for (govdns::netio::QueryEngine::Token t : tokens) {
    if (!engine.Wait(t).ok()) ++failures;
  }
  const double seconds = std::chrono::duration<double>(Clock::now() - start).count();
  if (failures > 0) {
    std::fprintf(stderr, "[bench] engine window=%d: %d failures\n", window,
                 failures);
  }
  return static_cast<double>(queries) / seconds;
}

DelayedEchoServer& Server() {
  static DelayedEchoServer server;
  static bool started = server.Start();
  if (!started) {
    std::fprintf(stderr, "[bench] cannot bind loopback echo server\n");
    std::exit(1);
  }
  return server;
}

void BM_SyncLoop(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        SyncQps(Server().port(), kSyncWorkers, kSyncQueriesPerWorker / 5));
  }
}
BENCHMARK(BM_SyncLoop)->Unit(benchmark::kMillisecond)->Iterations(1);

void BM_EngineWindow(benchmark::State& state) {
  const int window = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        EngineQps(Server().port(), window, kAsyncQueries / 4));
  }
}
BENCHMARK(BM_EngineWindow)
    ->Arg(64)
    ->Arg(256)
    ->Arg(1024)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

void PrintArtifact() {
  DelayedEchoServer& server = Server();

  const double sync_qps =
      SyncQps(server.port(), kSyncWorkers, kSyncQueriesPerWorker);

  struct Point {
    int window;
    double qps;
    double ratio;
  };
  std::vector<Point> sweep;
  double max_ratio = 0.0;
  for (int window : {64, 256, 1024}) {
    const double qps = EngineQps(server.port(), window, kAsyncQueries);
    const double ratio = qps / sync_qps;
    max_ratio = std::max(max_ratio, ratio);
    sweep.push_back({window, qps, ratio});
  }

  govdns::util::JsonWriter w;
  w.BeginObject();
  w.Kv("delay_ms", int64_t{kDelayMs});
  w.Kv("sync_workers", int64_t{kSyncWorkers});
  w.Kv("sync_qps", sync_qps);
  w.Kv("async_queries", int64_t{kAsyncQueries});
  w.Key("sweep").BeginArray();
  for (const Point& p : sweep) {
    w.BeginObject()
        .Kv("window", int64_t{p.window})
        .Kv("qps", p.qps)
        .Kv("ratio_vs_sync", p.ratio)
        .EndObject();
  }
  w.EndArray();
  w.Kv("max_ratio", max_ratio);
  w.EndObject();
  const std::string json = w.TakeString();

  govdns::util::TextTable table({"Arm", "Window", "Queries/sec", "vs sync"});
  char qps_buf[32];
  std::snprintf(qps_buf, sizeof qps_buf, "%.0f", sync_qps);
  table.AddRow({"sync x" + std::to_string(kSyncWorkers), "-", qps_buf,
                "1.00x"});
  for (const Point& p : sweep) {
    char rate[32], ratio[32];
    std::snprintf(rate, sizeof rate, "%.0f", p.qps);
    std::snprintf(ratio, sizeof ratio, "%.2fx", p.ratio);
    table.AddRow({"engine", std::to_string(p.window), rate, ratio});
  }

  std::printf("\nThroughput — sync per-worker loop vs async query engine\n");
  std::printf("(loopback echo server, %dms reply delay standing in for RTT;\n",
              kDelayMs);
  std::printf(" the engine multiplexes its whole window over %s sockets)\n",
              "a pool of 8");
  table.Print(std::cout);
  std::fprintf(stderr, "[bench] netio %s\n", json.c_str());

  govdns::bench::WriteArtifactJson("GOVDNS_NETIO_JSON", "BENCH_netio.json", json);
  server.Stop();
}

}  // namespace

GOVDNS_BENCH_MAIN(PrintArtifact)
