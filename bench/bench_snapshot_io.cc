// Snapshot I/O bench: parse-load vs zero-copy mapped load (DESIGN.md §6i).
//
// Freezes the shared BenchEnv world's PDNS database, writes it as a GVSN
// snapshot file, and measures the two resume paths side by side:
//
//   * parse-load — ReadPdnsSnapshotFileOwning, which decodes every section
//     back into an owning PdnsSnapshot (O(entries)); and
//   * mapped     — MappedPdnsSnapshot::Open, which mmaps the file and
//     validates only the container CRCs and bounds (O(1) in world size).
//
// The artifact's headline number is mapped_vs_parse_speedup; the tentpole's
// acceptance bar is >= 20x at paper scale. On the way the bench verifies the
// correctness contract: mining the owning and the mapped snapshot, at 1 and
// at 4 workers, produces a MinedDataset byte-identical to mining the source
// database. Lands in BENCH_snapshot.json (path overridable via
// GOVDNS_SNAPSHOT_JSON).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "bench/common.h"
#include "core/mining.h"
#include "pdns/db.h"
#include "pdns/snapshot_io.h"
#include "util/json.h"
#include "util/status.h"
#include "util/table.h"

namespace {

using govdns::bench::BenchEnv;
namespace pdns = govdns::pdns;

constexpr uint64_t kBenchFingerprint = 0x60bd5bebcd5eedULL;

// One shared on-disk snapshot for every measurement below.
struct SnapshotFixture {
  std::string dir;
  std::string path;
  pdns::PdnsSnapshot owning;  // the Freeze() source of truth
  double write_seconds = 0.0;
  uint64_t file_bytes = 0;

  static SnapshotFixture& Get() {
    static SnapshotFixture* fixture = [] {
      auto* f = new SnapshotFixture();
      auto& env = BenchEnv::Get();
      f->dir = (std::filesystem::temp_directory_path() /
                "govdns_bench_snapshot")
                   .string();
      std::filesystem::create_directories(f->dir);
      f->path = f->dir + "/pdns.gvsn";
      std::fprintf(stderr, "[bench] freezing PDNS database ...\n");
      f->owning = env.world().pdns_db().Freeze();
      const auto start = std::chrono::steady_clock::now();
      auto status = pdns::WritePdnsSnapshotFile(f->owning, kBenchFingerprint,
                                                f->dir, f->path);
      const auto stop = std::chrono::steady_clock::now();
      if (!status.ok()) {
        std::fprintf(stderr, "[bench] snapshot write failed: %s\n",
                     status.ToString().c_str());
        std::exit(1);
      }
      f->write_seconds = std::chrono::duration<double>(stop - start).count();
      f->file_bytes = std::filesystem::file_size(f->path);
      return f;
    }();
    return *fixture;
  }
};

double TimeSeconds(int reps, const auto& fn) {
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < reps; ++i) fn();
  const auto stop = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(stop - start).count() / reps;
}

void BM_ParseLoad(benchmark::State& state) {
  auto& f = SnapshotFixture::Get();
  for (auto _ : state) {
    auto snap = pdns::ReadPdnsSnapshotFileOwning(f.path, kBenchFingerprint);
    benchmark::DoNotOptimize(snap);
  }
}
BENCHMARK(BM_ParseLoad)->Unit(benchmark::kMillisecond)->Iterations(1);

void BM_MappedOpen(benchmark::State& state) {
  auto& f = SnapshotFixture::Get();
  for (auto _ : state) {
    auto snap = pdns::MappedPdnsSnapshot::Open(f.path, kBenchFingerprint);
    benchmark::DoNotOptimize(snap);
  }
}
BENCHMARK(BM_MappedOpen)->Unit(benchmark::kMillisecond)->Iterations(1);

void PrintArtifact() {
  auto& env = BenchEnv::Get();
  auto& f = SnapshotFixture::Get();
  const auto& inputs = env.study().inputs();
  const auto& seeds = env.seeds();

  // --- Load-path timing. Mapped opens are microseconds; average over many.
  const double parse_seconds = TimeSeconds(3, [&] {
    auto snap = pdns::ReadPdnsSnapshotFileOwning(f.path, kBenchFingerprint);
    if (!snap.ok()) std::abort();
    benchmark::DoNotOptimize(snap);
  });
  bool mapped_for_real = false;
  const double mapped_seconds = TimeSeconds(100, [&] {
    auto snap = pdns::MappedPdnsSnapshot::Open(f.path, kBenchFingerprint);
    if (!snap.ok()) std::abort();
    mapped_for_real = snap->mapped();
    benchmark::DoNotOptimize(snap);
  });
  const double speedup =
      mapped_seconds > 0.0 ? parse_seconds / mapped_seconds : 0.0;

  // --- Identity: every snapshot substrate, at 1 and 4 workers, must mine
  // the same bytes as the source database.
  govdns::core::PdnsMiner db_miner(inputs.pdns, inputs.mining);
  const auto baseline = db_miner.Mine(seeds);

  auto mine_with = [&](const auto& snapshot, int workers) {
    govdns::core::MinerOptions opts;
    opts.workers = workers;
    govdns::core::PdnsMiner miner(inputs.mining, opts);
    return miner.MineSnapshot(snapshot, seeds);
  };
  auto parsed = pdns::ReadPdnsSnapshotFileOwning(f.path, kBenchFingerprint);
  auto mapped = pdns::MappedPdnsSnapshot::Open(f.path, kBenchFingerprint);
  if (!parsed.ok() || !mapped.ok()) std::abort();
  const bool owning_w1 = mine_with(*parsed, 1) == baseline;
  const bool owning_w4 = mine_with(*parsed, 4) == baseline;
  const bool mapped_w1 = mine_with(*mapped, 1) == baseline;
  const bool mapped_w4 = mine_with(*mapped, 4) == baseline;

  govdns::util::TextTable table({"Path", "Seconds", "Speedup"});
  char parse_s[32], mapped_s[32], speedup_s[32];
  std::snprintf(parse_s, sizeof parse_s, "%.6f", parse_seconds);
  std::snprintf(mapped_s, sizeof mapped_s, "%.6f", mapped_seconds);
  std::snprintf(speedup_s, sizeof speedup_s, "%.1fx", speedup);
  table.AddRow({"parse-load", parse_s, "1.0x"});
  table.AddRow({"mapped", mapped_s, speedup_s});

  govdns::util::JsonWriter w;
  w.BeginObject();
  w.Kv("scale", env.scale());
  w.Kv("names", int64_t(f.owning.name_count()));
  w.Kv("entries", int64_t(f.owning.entry_count()));
  w.Kv("file_bytes", int64_t(f.file_bytes));
  w.Kv("write_seconds", f.write_seconds);
  w.Kv("parse_load_seconds", parse_seconds);
  w.Kv("mapped_open_seconds", mapped_seconds);
  w.Kv("mapped_vs_parse_speedup", speedup);
  w.Kv("mapped_for_real", mapped_for_real);
  w.Key("mining_identity").BeginObject()
      .Kv("owning_w1", owning_w1)
      .Kv("owning_w4", owning_w4)
      .Kv("mapped_w1", mapped_w1)
      .Kv("mapped_w4", mapped_w4)
      .EndObject();
  w.EndObject();
  const std::string json = w.TakeString();

  std::printf("\nSnapshot resume cost — parse-load vs mmap (zero-copy)\n");
  std::printf("(%zu names, %zu entries, %.1f MiB on disk; mapped open\n",
              f.owning.name_count(), f.owning.entry_count(),
              double(f.file_bytes) / (1024.0 * 1024.0));
  std::printf(" validates container CRCs only — O(1) in world size)\n");
  table.Print(std::cout);
  std::printf("mining identity (vs source db): owning w1=%s w4=%s, "
              "mapped w1=%s w4=%s\n",
              owning_w1 ? "yes" : "NO", owning_w4 ? "yes" : "NO",
              mapped_w1 ? "yes" : "NO", mapped_w4 ? "yes" : "NO");
  std::fprintf(stderr, "[bench] snapshot %s\n", json.c_str());

  govdns::bench::WriteArtifactJson("GOVDNS_SNAPSHOT_JSON",
                                   "BENCH_snapshot.json", json);
}

}  // namespace

GOVDNS_BENCH_MAIN(PrintArtifact)
