// Figure 9: CDF of the number of authoritative nameservers listed in NS
// records per domain (paper: 98.4% of domains use at least two).
#include <iostream>

#include "bench/common.h"
#include "core/analysis.h"
#include "util/strings.h"
#include "util/table.h"

namespace {

using govdns::bench::BenchEnv;

void BM_NsCountCdf(benchmark::State& state) {
  auto& env = BenchEnv::Get();
  const auto& dataset = env.active();
  for (auto _ : state) {
    auto summary = govdns::core::AnalyzeReplication(dataset);
    benchmark::DoNotOptimize(summary.ns_count_cdf);
  }
}
BENCHMARK(BM_NsCountCdf)->Unit(benchmark::kMillisecond);

void PrintArtifact() {
  auto& env = BenchEnv::Get();
  auto summary = govdns::core::AnalyzeReplication(env.active());
  govdns::util::TextTable table({"#ADNS", "CDF"});
  for (const auto& [count, cdf] : summary.ns_count_cdf) {
    table.AddRow({std::to_string(count), govdns::util::Percent(cdf, 2)});
  }
  std::printf("\nFig. 9 — CDF of the number of ADNS per domain\n");
  std::printf("domains considered: %s;  >=2 nameservers: %s (paper: 98.4%%)\n",
              govdns::util::WithCommas(summary.domains_considered).c_str(),
              govdns::util::Percent(summary.pct_at_least_two).c_str());
  table.Print(std::cout);
}

}  // namespace

GOVDNS_BENCH_MAIN(PrintArtifact)
