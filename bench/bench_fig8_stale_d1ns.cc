// Figure 8: percentage of single-nameserver domains with no authoritative
// response, overall and for the most affected d_gov.
//
// Paper anchors: 60.1% of d_1NS found in active measurements never gave an
// authoritative answer; for several countries (Indonesia, Kyrgyzstan,
// Mexico, ...) the share exceeds half.
#include <algorithm>
#include <iostream>

#include "bench/common.h"
#include "core/analysis.h"
#include "util/strings.h"
#include "util/table.h"

namespace {

using govdns::bench::BenchEnv;

void BM_AnalyzeReplication(benchmark::State& state) {
  auto& env = BenchEnv::Get();
  const auto& dataset = env.active();
  for (auto _ : state) {
    auto summary = govdns::core::AnalyzeReplication(dataset);
    benchmark::DoNotOptimize(summary);
  }
}
BENCHMARK(BM_AnalyzeReplication)->Unit(benchmark::kMillisecond);

void PrintArtifact() {
  auto& env = BenchEnv::Get();
  auto summary = govdns::core::AnalyzeReplication(env.active());
  std::printf("\nFig. 8 — stale d_1NS (no authoritative response)\n");
  std::printf("overall: %s of %lld d_1NS   (paper: 60.1%%)\n",
              govdns::util::Percent(summary.d1ns_stale_pct).c_str(),
              static_cast<long long>(summary.d1ns_count));

  auto rows = summary.by_country;
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    return a.d1ns_stale > b.d1ns_stale;
  });
  govdns::util::TextTable table({"Country", "d_1NS", "stale", "stale %"});
  int shown = 0;
  for (const auto& row : rows) {
    if (row.d1ns < 3) continue;  // skip tiny denominators
    table.AddRow({row.code, std::to_string(row.d1ns),
                  std::to_string(row.d1ns_stale),
                  govdns::util::Percent(double(row.d1ns_stale) /
                                        double(row.d1ns))});
    if (++shown >= 15) break;
  }
  table.Print(std::cout);
}

}  // namespace

GOVDNS_BENCH_MAIN(PrintArtifact)
