// Figure 2: number of domains and countries with NS data in the passive-DNS
// database, per year 2011-2020.
//
// Paper anchors: 113.5k domains (2011) -> 192.6k (2020), with a slight dip
// from 2019 to 2020 caused by the consolidation of Chinese government
// domains; essentially all countries have data in every year.
#include "bench/common.h"
#include "core/mining.h"
#include "util/strings.h"
#include "util/table.h"

#include <cstdio>

namespace {

using govdns::bench::BenchEnv;

void BM_CountPerYear(benchmark::State& state) {
  auto& env = BenchEnv::Get();
  const auto& dataset = env.mined();
  for (auto _ : state) {
    auto counts = govdns::core::CountPerYear(dataset);
    benchmark::DoNotOptimize(counts);
  }
}
BENCHMARK(BM_CountPerYear)->Unit(benchmark::kMillisecond);

void PrintArtifact() {
  auto& env = BenchEnv::Get();
  auto counts = govdns::core::CountPerYear(env.mined());
  govdns::util::TextTable table({"Year", "Domains", "Countries"});
  for (const auto& row : counts) {
    table.AddRow({std::to_string(row.year),
                  govdns::util::WithCommas(row.domains),
                  std::to_string(row.countries)});
  }
  std::printf("\nFig. 2 — domains and countries with NS data in PDNS\n");
  std::printf("(paper: 113.5k -> 192.6k domains, dip 2019->2020)\n");
  table.Print(std::cout);
}

}  // namespace

#include <iostream>
GOVDNS_BENCH_MAIN(PrintArtifact)
