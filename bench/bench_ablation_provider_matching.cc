// Ablation: provider identification via NS hostnames alone vs NS hostnames
// plus SOA MNAME/RNAME (§IV-B).
//
// Customers that front a provider with vanity nameserver names in their own
// zone are invisible to pure NS-name matching; their SOA MNAME still points
// at the provider. This compares the two rules over the active-measurement
// data (which carries SOA records).
#include <iostream>
#include <map>

#include "bench/common.h"
#include "core/analysis.h"
#include "core/providers.h"
#include "util/strings.h"
#include "util/table.h"

namespace {

using govdns::bench::BenchEnv;
using govdns::core::ProviderMatcher;

struct MatchCounts {
  std::map<std::string, int64_t> ns_only;
  std::map<std::string, int64_t> ns_plus_soa;
};

MatchCounts Count() {
  auto& env = BenchEnv::Get();
  static ProviderMatcher matcher(govdns::core::DefaultProviderRules());
  MatchCounts counts;
  for (const auto& result : env.active().results) {
    if (!result.parent_has_records) continue;
    int ns_match = -1;
    for (const auto& ns : result.AllNs()) {
      ns_match = matcher.MatchNs(ns.ToString());
      if (ns_match >= 0) break;
    }
    int soa_match = ns_match;
    if (soa_match < 0 && result.soa.has_value()) {
      soa_match = matcher.MatchSoa(*result.soa);
    }
    if (ns_match >= 0) {
      ++counts.ns_only[matcher.rules()[ns_match].group_key];
    }
    if (soa_match >= 0) {
      ++counts.ns_plus_soa[matcher.rules()[soa_match].group_key];
    }
  }
  return counts;
}

void BM_ProviderMatching(benchmark::State& state) {
  BenchEnv::Get().active();
  for (auto _ : state) {
    auto counts = Count();
    benchmark::DoNotOptimize(counts);
  }
}
BENCHMARK(BM_ProviderMatching)->Unit(benchmark::kMillisecond);

void PrintArtifact() {
  auto counts = Count();
  govdns::util::TextTable table(
      {"Provider", "NS-name match", "NS + SOA match", "gain"});
  int64_t total_ns = 0, total_soa = 0;
  for (const auto& [key, with_soa] : counts.ns_plus_soa) {
    int64_t ns_only =
        counts.ns_only.contains(key) ? counts.ns_only.at(key) : 0;
    total_ns += ns_only;
    total_soa += with_soa;
    if (with_soa - ns_only == 0 && ns_only < 50) continue;
    table.AddRow({key, govdns::util::WithCommas(ns_only),
                  govdns::util::WithCommas(with_soa),
                  "+" + govdns::util::WithCommas(with_soa - ns_only)});
  }
  std::printf("\nAblation — provider matching: NS names vs NS + SOA "
              "MNAME/RNAME\n");
  table.Print(std::cout);
  std::printf("total matched: %s -> %s (+%s via SOA)\n",
              govdns::util::WithCommas(total_ns).c_str(),
              govdns::util::WithCommas(total_soa).c_str(),
              govdns::util::WithCommas(total_soa - total_ns).c_str());
}

}  // namespace

GOVDNS_BENCH_MAIN(PrintArtifact)
