// Table III: the top DNS providers ranked by the number of countries with
// government subdomains using them, in 2011 and 2020.
//
// Paper anchors: 2011 led by websitewelcome.com (52 countries), 2020 by
// Cloudflare (85 countries) — a 60% increase in the reach of the single
// most-used provider, the paper's centralization headline.
#include <iostream>

#include "bench/common.h"
#include "core/providers.h"
#include "util/strings.h"
#include "util/table.h"

namespace {

using govdns::bench::BenchEnv;
using govdns::core::ProviderAnalyzer;
using govdns::core::ProviderMatcher;

ProviderMatcher& Matcher() {
  static ProviderMatcher matcher(govdns::core::DefaultProviderRules());
  return matcher;
}

void BM_TopProviders(benchmark::State& state) {
  auto& env = BenchEnv::Get();
  const auto& dataset = env.mined();
  ProviderAnalyzer analyzer(&Matcher(), govdns::worldgen::MakeCountryMetas());
  for (auto _ : state) {
    auto t = analyzer.Analyze(dataset, 2020);
    auto top = ProviderAnalyzer::TopByCountries(t, 11);
    benchmark::DoNotOptimize(top);
  }
}
BENCHMARK(BM_TopProviders)->Unit(benchmark::kMillisecond);

void PrintYear(int year) {
  auto& env = BenchEnv::Get();
  ProviderAnalyzer analyzer(&Matcher(), govdns::worldgen::MakeCountryMetas());
  auto t = analyzer.Analyze(env.mined(), year);
  auto top = ProviderAnalyzer::TopByCountries(t, 11);
  govdns::util::TextTable table(
      {"Provider", "Domains", "Groups", "Countries"});
  for (const auto& row : top) {
    if (row.countries == 0) continue;
    table.AddRow({row.group_key,
                  govdns::util::WithCommas(row.domains) + " (" +
                      govdns::util::Percent(double(row.domains) /
                                            double(t.total_domains)) +
                      ")",
                  std::to_string(row.groups) + "/" +
                      std::to_string(t.total_groups),
                  std::to_string(row.countries)});
  }
  std::printf("\nTable III (%d) — top providers by countries served\n", year);
  table.Print(std::cout);
  std::printf("max countries on any single provider: %lld\n",
              static_cast<long long>(
                  ProviderAnalyzer::MaxCountriesAnyProvider(t)));
}

void PrintArtifact() {
  PrintYear(2011);
  PrintYear(2020);
  std::printf("(paper: 52 countries in 2011 -> 85 in 2020, +60%%)\n");
}

}  // namespace

GOVDNS_BENCH_MAIN(PrintArtifact)
