// Checkpoint overhead bench: the full pipeline with and without a journal.
//
// The checkpoint layer's contract mirrors the obs layer's: attaching a
// StudyCheckpoint may only cost wall-clock time and disk bytes, never change
// the exported report. This bench runs the complete pipeline (selection ->
// mining -> active measurement -> report export) three ways on fresh worlds
// with the same seed — no journal, journal from scratch, and a resume over
// the completed journal — and reports the write-path overhead plus the
// resume speedup that pays for it. The artifact lands in
// BENCH_checkpoint.json (path overridable via GOVDNS_CKPT_JSON) so the
// journal's cost is tracked on disk run over run.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench/common.h"
#include "core/export.h"
#include "core/report.h"
#include "core/study.h"
#include "core/study_ckpt.h"
#include "util/json.h"
#include "util/table.h"
#include "worldgen/adapter.h"
#include "worldgen/countries.h"
#include "worldgen/world.h"

namespace {

namespace fs = std::filesystem;

constexpr uint64_t kWorldFp = 0xBE7CC4F7ull;

double Scale() {
  if (const char* s = std::getenv("GOVDNS_SCALE")) {
    const double v = std::atof(s);
    if (v > 0.0) return v;
  }
  return 1.0;
}

struct ArmPoint {
  double seconds = 0.0;  // pipeline only; world build is excluded
  std::string report_json;
  size_t domains = 0;
  uint64_t commits = 0;
  uint64_t bytes_written = 0;
  int phases_loaded = 0;
};

// One full pipeline on a fresh world. `dir` empty = no checkpoint;
// otherwise a journal is attached (resuming whatever the dir holds).
ArmPoint RunArm(const std::string& dir, bool resume) {
  govdns::worldgen::WorldConfig config;
  config.scale = Scale();
  auto world = govdns::worldgen::BuildWorld(config);
  auto bound = govdns::worldgen::MakeStudy(*world);

  std::unique_ptr<govdns::core::StudyCheckpoint> ckpt;
  if (!dir.empty()) {
    govdns::core::StudyCheckpointOptions opts;
    opts.resume = resume;
    ckpt = std::make_unique<govdns::core::StudyCheckpoint>(dir, kWorldFp,
                                                           opts);
    bound.study->AttachCheckpoint(ckpt.get());
  }

  std::vector<std::string> top10;
  for (const char* code : govdns::worldgen::Top10CountryCodes()) {
    top10.emplace_back(code);
  }

  const auto start = std::chrono::steady_clock::now();
  bound.study->RunSelection();
  bound.study->RunMining();
  bound.study->RunActiveMeasurement();
  auto report = govdns::core::BuildReport(*bound.study, top10);
  std::string json = govdns::core::ExportReportJson(report);
  if (ckpt != nullptr) ckpt->SaveReportJson(json);
  const auto stop = std::chrono::steady_clock::now();

  ArmPoint point;
  point.seconds = std::chrono::duration<double>(stop - start).count();
  point.report_json = std::move(json);
  point.domains = bound.study->active().results.size();
  if (ckpt != nullptr) {
    point.commits = ckpt->journal_stats().commits;
    point.bytes_written = ckpt->journal_stats().bytes_written;
    point.phases_loaded = ckpt->stats().phases_loaded;
  }
  return point;
}

void BM_Pipeline(benchmark::State& state) {
  const bool checkpointed = state.range(0) != 0;
  const std::string dir =
      (fs::temp_directory_path() / "govdns_bench_ckpt_bm").string();
  for (auto _ : state) {
    fs::remove_all(dir);
    auto point = RunArm(checkpointed ? dir : "", /*resume=*/false);
    benchmark::DoNotOptimize(point);
  }
  fs::remove_all(dir);
}
BENCHMARK(BM_Pipeline)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->Iterations(1);

void PrintArtifact() {
  const std::string dir =
      (fs::temp_directory_path() / "govdns_bench_ckpt").string();
  constexpr int kReps = 2;
  double off_total = 0.0, on_total = 0.0;
  ArmPoint off, on;
  for (int rep = 0; rep < kReps; ++rep) {
    off = RunArm("", /*resume=*/false);
    off_total += off.seconds;
    fs::remove_all(dir);
    on = RunArm(dir, /*resume=*/false);
    on_total += on.seconds;
  }
  // Resume over the last completed journal: everything loads, nothing
  // recomputes — this is what the write-path overhead buys.
  ArmPoint resumed = RunArm(dir, /*resume=*/true);
  fs::remove_all(dir);

  const double off_s = off_total / kReps;
  const double on_s = on_total / kReps;
  const double overhead_pct = off_s > 0.0 ? (on_s / off_s - 1.0) * 100.0 : 0.0;
  const bool identical = off.report_json == on.report_json &&
                         on.report_json == resumed.report_json;

  govdns::util::TextTable table(
      {"Config", "Seconds", "Commits", "Bytes written"});
  char off_sec[32], on_sec[32], res_sec[32];
  std::snprintf(off_sec, sizeof off_sec, "%.3f", off_s);
  std::snprintf(on_sec, sizeof on_sec, "%.3f", on_s);
  std::snprintf(res_sec, sizeof res_sec, "%.3f", resumed.seconds);
  table.AddRow({"no checkpoint", off_sec, "-", "-"});
  table.AddRow({"journal from scratch", on_sec, std::to_string(on.commits),
                std::to_string(on.bytes_written)});
  table.AddRow({"resume (all loaded)", res_sec,
                std::to_string(resumed.commits),
                std::to_string(resumed.bytes_written)});

  govdns::util::JsonWriter w;
  w.BeginObject();
  w.Kv("scale", Scale());
  w.Kv("domains", int64_t(on.domains));
  w.Kv("reps", int64_t(kReps));
  w.Kv("off_seconds", off_s);
  w.Kv("on_seconds", on_s);
  w.Kv("overhead_pct", overhead_pct);
  w.Kv("resume_seconds", resumed.seconds);
  w.Kv("resume_phases_loaded", int64_t(resumed.phases_loaded));
  w.Kv("commits", int64_t(on.commits));
  w.Kv("bytes_written", int64_t(on.bytes_written));
  w.Kv("reports_identical", identical);
  w.EndObject();
  const std::string json = w.TakeString();

  std::printf("\nCheckpoint overhead — full pipeline with and without the\n");
  std::printf("journal (fresh world per run, world build excluded), mean of\n");
  std::printf("%d interleaved reps, plus one resume over the completed\n",
              kReps);
  std::printf("journal. The journal may only cost time and bytes — all\n");
  std::printf("three report exports must stay byte-identical.\n");
  table.Print(std::cout);
  std::printf("overhead: %.2f%%, reports identical: %s\n", overhead_pct,
              identical ? "yes" : "NO");
  std::fprintf(stderr, "[bench] checkpoint %s\n", json.c_str());

  govdns::bench::WriteArtifactJson("GOVDNS_CKPT_JSON", "BENCH_checkpoint.json", json);
}

}  // namespace

GOVDNS_BENCH_MAIN(PrintArtifact)
