// Figure 12: the cost to register the available nameserver domains found
// through defective delegations.
//
// Paper anchors: 0.01 to 20,000 USD, median 11.99.
#include <algorithm>
#include <iostream>

#include "bench/common.h"
#include "core/analysis.h"
#include "util/stats.h"
#include "util/strings.h"
#include "util/table.h"

namespace {

using govdns::bench::BenchEnv;

govdns::core::HijackSummary Summary() {
  auto& env = BenchEnv::Get();
  return govdns::core::AnalyzeHijackRisk(env.active(), env.world().psl(),
                                         env.world().registrar_client());
}

void BM_PriceDistribution(benchmark::State& state) {
  auto& env = BenchEnv::Get();
  env.active();
  for (auto _ : state) {
    auto summary = Summary();
    if (!summary.prices_usd.empty()) {
      double median = govdns::util::Median(summary.prices_usd);
      benchmark::DoNotOptimize(median);
    }
  }
}
BENCHMARK(BM_PriceDistribution)->Unit(benchmark::kMillisecond);

void PrintArtifact() {
  auto summary = Summary();
  std::printf("\nFig. 12 — registration cost of available d_ns\n");
  if (summary.prices_usd.empty()) {
    std::printf("no available d_ns found (world too small?)\n");
    return;
  }
  auto prices = summary.prices_usd;
  std::sort(prices.begin(), prices.end());
  std::printf("n=%zu  min=%.2f  median=%.2f  max=%.2f USD "
              "(paper: 0.01 / 11.99 / 20,000)\n",
              prices.size(), prices.front(),
              govdns::util::Median(prices), prices.back());

  govdns::util::TextTable table({"Percentile", "Price (USD)"});
  for (double p : {0.05, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99}) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.2f",
                  govdns::util::Percentile(prices, p));
    table.AddRow({govdns::util::Percent(p, 0), buf});
  }
  table.Print(std::cout);
}

}  // namespace

GOVDNS_BENCH_MAIN(PrintArtifact)
