// Figure 11: registrable nameserver domains referenced by defective
// delegations, by country.
//
// Paper anchors: 805 available d_ns used by 1,121 government domains in 49
// countries; only 2 available d_ns are shared across countries; for about a
// third of affected countries all defects point into a single domain.
#include <algorithm>
#include <iostream>

#include "bench/common.h"
#include "core/analysis.h"
#include "util/strings.h"
#include "util/table.h"

namespace {

using govdns::bench::BenchEnv;

void BM_AnalyzeHijackRisk(benchmark::State& state) {
  auto& env = BenchEnv::Get();
  const auto& dataset = env.active();
  for (auto _ : state) {
    auto summary = govdns::core::AnalyzeHijackRisk(
        dataset, env.world().psl(), env.world().registrar_client());
    benchmark::DoNotOptimize(summary);
  }
}
BENCHMARK(BM_AnalyzeHijackRisk)->Unit(benchmark::kMillisecond);

void PrintArtifact() {
  auto& env = BenchEnv::Get();
  auto summary = govdns::core::AnalyzeHijackRisk(
      env.active(), env.world().psl(), env.world().registrar_client());
  std::printf("\nFig. 11 — available nameserver domains in defective "
              "delegations\n");
  std::printf("available d_ns: %lld (paper: 805)\n",
              static_cast<long long>(summary.available_ns_domains));
  std::printf("affected government domains: %lld (paper: 1,121)\n",
              static_cast<long long>(summary.affected_domains));
  std::printf("affected countries: %lld (paper: 49)\n",
              static_cast<long long>(summary.affected_countries));
  std::printf("d_ns shared across countries: %lld (paper: 2)\n",
              static_cast<long long>(summary.multi_country_ns_domains));

  auto rows = summary.by_country;
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    return a.affected_domains > b.affected_domains;
  });
  govdns::util::TextTable table(
      {"Country", "Affected domains", "Available d_ns"});
  for (size_t i = 0; i < rows.size() && i < 20; ++i) {
    table.AddRow({rows[i].code,
                  govdns::util::WithCommas(rows[i].affected_domains),
                  govdns::util::WithCommas(rows[i].available_ns_domains)});
  }
  table.Print(std::cout);
}

}  // namespace

GOVDNS_BENCH_MAIN(PrintArtifact)
