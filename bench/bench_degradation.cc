// Degradation bench: what does a partially-dark Internet cost the study?
//
// Sweeps the global blackhole probability (DESIGN.md §6g) over a healthy
// world and 1% / 5% / 20% blackholed-server worlds, with the per-domain
// logical deadline armed, and reports per point: wall time of the full
// pipeline, quarantine counts by reason, and the resulting coverage ratio.
// The point of the artifact is the trade curve — budgets convert unbounded
// tail latency into an explicit, measured coverage loss — plus the §6g
// invariant that a degraded report is identical for 1 and N workers. The
// artifact lands in BENCH_degradation.json (path overridable via
// GOVDNS_DEGRADATION_JSON).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench/common.h"
#include "core/export.h"
#include "core/measure.h"
#include "core/report.h"
#include "core/study.h"
#include "util/json.h"
#include "util/table.h"
#include "worldgen/adapter.h"
#include "worldgen/countries.h"
#include "worldgen/world.h"

namespace {

// Tight enough that a blackholed parent chain (3 attempts x 2000 ms per
// server, plus backoff) cannot finish, generous for healthy domains.
constexpr uint64_t kDomainDeadlineMs = 8000;

double Scale() {
  if (const char* s = std::getenv("GOVDNS_SCALE")) {
    const double v = std::atof(s);
    if (v > 0.0) return v;
  }
  return 1.0;
}

struct SweepPoint {
  double p_blackhole = 0.0;
  double seconds = 0.0;  // pipeline only; world build is excluded
  size_t domains = 0;
  govdns::core::QuarantineReport quarantine;
  std::string report_json;
  bool identical_across_workers = false;
};

std::string RunPipeline(double p_blackhole, int workers, double* seconds,
                        govdns::core::QuarantineReport* quarantine,
                        size_t* domains) {
  govdns::worldgen::WorldConfig config;
  config.scale = Scale();
  config.chaos.p_blackhole = p_blackhole;
  auto world = govdns::worldgen::BuildWorld(config);
  auto bound = govdns::worldgen::MakeStudy(*world);

  std::vector<std::string> top10;
  for (const char* code : govdns::worldgen::Top10CountryCodes()) {
    top10.emplace_back(code);
  }

  govdns::core::MeasurerOptions options;
  options.workers = workers;
  options.max_logical_ms_per_domain = kDomainDeadlineMs;

  const auto start = std::chrono::steady_clock::now();
  bound.study->RunSelection();
  bound.study->RunMining();
  bound.study->RunActiveMeasurement(options);
  auto report = govdns::core::BuildReport(*bound.study, top10);
  std::string json = govdns::core::ExportReportJson(report);
  const auto stop = std::chrono::steady_clock::now();

  if (seconds != nullptr) {
    *seconds = std::chrono::duration<double>(stop - start).count();
  }
  if (quarantine != nullptr) *quarantine = report.quarantine;
  if (domains != nullptr) *domains = bound.study->active().results.size();
  return json;
}

SweepPoint RunPoint(double p_blackhole) {
  SweepPoint point;
  point.p_blackhole = p_blackhole;
  point.report_json = RunPipeline(p_blackhole, /*workers=*/1, &point.seconds,
                                  &point.quarantine, &point.domains);
  const std::string pooled =
      RunPipeline(p_blackhole, /*workers=*/4, nullptr, nullptr, nullptr);
  point.identical_across_workers = point.report_json == pooled;
  return point;
}

void BM_DegradedPipeline(benchmark::State& state) {
  const double p = static_cast<double>(state.range(0)) / 100.0;
  for (auto _ : state) {
    double seconds = 0.0;
    auto json = RunPipeline(p, /*workers=*/1, &seconds, nullptr, nullptr);
    benchmark::DoNotOptimize(json);
  }
}
BENCHMARK(BM_DegradedPipeline)
    ->Arg(0)
    ->Arg(5)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->Iterations(1);

void PrintArtifact() {
  const std::vector<double> kSweep = {0.0, 0.01, 0.05, 0.20};
  std::vector<SweepPoint> points;
  for (double p : kSweep) points.push_back(RunPoint(p));

  govdns::util::TextTable table({"p(blackhole)", "Seconds", "Quarantined",
                                 "hang/bh/budget", "Coverage", "1==4 workers"});
  for (const SweepPoint& point : points) {
    char p_buf[16], sec[32], mix[48], cov[16];
    std::snprintf(p_buf, sizeof p_buf, "%.2f", point.p_blackhole);
    std::snprintf(sec, sizeof sec, "%.3f", point.seconds);
    std::snprintf(mix, sizeof mix, "%lld/%lld/%lld",
                  static_cast<long long>(point.quarantine.hang),
                  static_cast<long long>(point.quarantine.blackhole),
                  static_cast<long long>(point.quarantine.budget_exceeded));
    std::snprintf(cov, sizeof cov, "%.4f", point.quarantine.coverage);
    table.AddRow({p_buf, sec,
                  std::to_string(point.quarantine.quarantined), mix, cov,
                  point.identical_across_workers ? "yes" : "NO"});
  }

  govdns::util::JsonWriter w;
  w.BeginObject();
  w.Kv("scale", Scale());
  w.Kv("domain_deadline_ms", static_cast<int64_t>(kDomainDeadlineMs));
  w.Key("sweep").BeginArray();
  for (const SweepPoint& point : points) {
    w.BeginObject();
    w.Kv("p_blackhole", point.p_blackhole);
    w.Kv("wall_seconds", point.seconds);
    w.Kv("domains", static_cast<int64_t>(point.domains));
    w.Kv("quarantined", point.quarantine.quarantined);
    w.Kv("hang", point.quarantine.hang);
    w.Kv("blackhole", point.quarantine.blackhole);
    w.Kv("budget_exceeded", point.quarantine.budget_exceeded);
    w.Kv("watchdog_cancelled", point.quarantine.watchdog_cancelled);
    w.Kv("coverage", point.quarantine.coverage);
    w.Kv("identical_across_workers", point.identical_across_workers);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  const std::string json = w.TakeString();

  std::printf("\nGraceful degradation — the full pipeline with the %llu ms\n",
              static_cast<unsigned long long>(kDomainDeadlineMs));
  std::printf("per-domain deadline armed, sweeping the fraction of\n");
  std::printf("blackholed servers. Budgets trade unbounded tail latency for\n");
  std::printf("an explicit coverage loss; degraded reports must stay\n");
  std::printf("identical across worker counts.\n");
  table.Print(std::cout);
  std::fprintf(stderr, "[bench] degradation %s\n", json.c_str());

  govdns::bench::WriteArtifactJson("GOVDNS_DEGRADATION_JSON", "BENCH_degradation.json", json);
}

}  // namespace

GOVDNS_BENCH_MAIN(PrintArtifact)
