// Figure 3: number of distinct nameserver hostnames in the passive-DNS
// data, per year 2011-2020 (paper: growth pattern similar to Fig. 2).
#include <iostream>

#include "bench/common.h"
#include "core/mining.h"
#include "util/strings.h"
#include "util/table.h"

namespace {

using govdns::bench::BenchEnv;

void BM_NameserversPerYear(benchmark::State& state) {
  auto& env = BenchEnv::Get();
  const auto& dataset = env.mined();
  for (auto _ : state) {
    auto counts = govdns::core::CountPerYear(dataset);
    benchmark::DoNotOptimize(counts);
  }
}
BENCHMARK(BM_NameserversPerYear)->Unit(benchmark::kMillisecond);

void PrintArtifact() {
  auto& env = BenchEnv::Get();
  auto counts = govdns::core::CountPerYear(env.mined());
  govdns::util::TextTable table({"Year", "Nameserver hostnames"});
  for (const auto& row : counts) {
    table.AddRow({std::to_string(row.year),
                  govdns::util::WithCommas(row.nameservers)});
  }
  std::printf("\nFig. 3 — distinct nameserver hostnames in PDNS per year\n");
  table.Print(std::cout);
}

}  // namespace

GOVDNS_BENCH_MAIN(PrintArtifact)
