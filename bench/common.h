// Shared environment for the benchmark harnesses.
//
// Every bench binary regenerates one table or figure of the paper. They all
// share one lazily-built world + study pipeline so google-benchmark times
// only the analysis under test, not world generation. Scale defaults to the
// paper's global scale (1.0, ~190k domains in the 2020 PDNS snapshot); set
// GOVDNS_SCALE to run smaller.
#pragma once

#include <benchmark/benchmark.h>

#include <memory>
#include <string>

#include "core/study.h"
#include "worldgen/adapter.h"
#include "worldgen/world.h"

namespace govdns::bench {

class BenchEnv {
 public:
  // Singleton; first call builds the world (and prints a note to stderr).
  static BenchEnv& Get();

  worldgen::World& world() { return *world_; }
  core::Study& study() { return *bound_.study; }

  // Stage accessors; each runs its stage on first use.
  const std::vector<core::SeedDomain>& seeds();
  const core::MinedDataset& mined();
  const core::ActiveDataset& active();

  // Emits one `[bench] stats {...}` JSON line to stderr with the network
  // stats and the resolver's cache/health counters, so bench runs record
  // query volume and adversity alongside timing. Called automatically after
  // the measurement stage; harmless to call again for an updated snapshot.
  void PrintStatsJson();

  double scale() const { return scale_; }

 private:
  BenchEnv();

  double scale_ = 1.0;
  std::unique_ptr<worldgen::World> world_;
  worldgen::BoundStudy bound_;
  bool selected_ = false;
  bool mined_done_ = false;
  bool active_done_ = false;
};

// An independent world + study at an explicit scale, for benches that sweep
// scale itself (e.g. bench_parallel_mine's GOVDNS_MINE_SCALE sweep) and so
// cannot share the BenchEnv singleton. Selection is NOT run; callers drive
// the stages they need.
struct ScaledStudy {
  std::unique_ptr<worldgen::World> world;
  worldgen::BoundStudy bound;

  core::Study& study() { return *bound.study; }
};
ScaledStudy MakeScaledStudy(double scale);

// Writes a BENCH_*.json artifact atomically: the bytes land in
// `<path>.tmp` first and are renamed into place only after a successful
// write, so a crashed or interrupted bench run can never leave a
// half-written artifact for assemble_outputs.sh to scoop up. `env_var`
// overrides `default_path` when set. Logs a `[bench] wrote ...` (or
// `cannot write ...`) line to stderr either way.
void WriteArtifactJson(const char* env_var, const char* default_path,
                       const std::string& json);

// Standard main body: run benchmarks, then emit the artifact via `print`.
int BenchMain(int argc, char** argv, void (*print_artifact)());

#define GOVDNS_BENCH_MAIN(print_artifact)                      \
  int main(int argc, char** argv) {                            \
    return ::govdns::bench::BenchMain(argc, argv, print_artifact); \
  }

}  // namespace govdns::bench
