// Figure 4: number of domains per country in the 2020 PDNS data (paper:
// a heavy-tailed distribution spanning from a handful to tens of thousands,
// topped by China, Thailand, Brazil, Mexico, UK, Turkey, India, Australia,
// Ukraine, Argentina).
#include <algorithm>
#include <iostream>
#include <map>

#include "bench/common.h"
#include "core/mining.h"
#include "util/strings.h"
#include "util/table.h"

namespace {

using govdns::bench::BenchEnv;

std::map<int, int64_t> DomainsPerCountry2020() {
  auto& env = BenchEnv::Get();
  const auto& dataset = env.mined();
  const int y = 2020 - dataset.config.first_year;
  std::map<int, int64_t> per_country;
  for (const auto& domain : dataset.domains) {
    if (domain.HasData(y)) ++per_country[domain.country];
  }
  return per_country;
}

void BM_DomainsPerCountry(benchmark::State& state) {
  BenchEnv::Get().mined();
  for (auto _ : state) {
    auto per_country = DomainsPerCountry2020();
    benchmark::DoNotOptimize(per_country);
  }
}
BENCHMARK(BM_DomainsPerCountry)->Unit(benchmark::kMillisecond);

void PrintArtifact() {
  auto per_country = DomainsPerCountry2020();
  auto metas = govdns::worldgen::MakeCountryMetas();

  std::vector<std::pair<int64_t, int>> ranked;
  for (const auto& [c, n] : per_country) ranked.emplace_back(n, c);
  std::sort(ranked.rbegin(), ranked.rend());

  govdns::util::TextTable table({"Rank", "Country", "Domains (2020)"});
  for (size_t i = 0; i < ranked.size() && i < 20; ++i) {
    table.AddRow({std::to_string(i + 1), metas[ranked[i].second].name,
                  govdns::util::WithCommas(ranked[i].first)});
  }
  std::printf("\nFig. 4 — domains per country in PDNS, 2020 (top 20 of %zu)\n",
              ranked.size());
  table.Print(std::cout);

  // The distribution's spread (the figure is a log-scale scatter).
  std::vector<int64_t> sizes;
  for (const auto& [n, c] : ranked) sizes.push_back(n);
  std::printf("countries with data: %zu; min=%lld median=%lld max=%lld\n",
              sizes.size(), static_cast<long long>(sizes.back()),
              static_cast<long long>(sizes[sizes.size() / 2]),
              static_cast<long long>(sizes.front()));
}

}  // namespace

GOVDNS_BENCH_MAIN(PrintArtifact)
