// Multi-vantage supervision bench: what fault tolerance costs.
//
// Runs the full supervised multi-vantage pipeline (fork-per-shard, private
// journals, deterministic disagreement merge — DESIGN.md §6k) three ways on
// fresh worlds with the same seed: uninterrupted, with one shard murdered
// mid-run at a journal write point (supervisor restarts it from its
// journal), and with one shard deadline-killed as a wall-clock straggler.
// Reports the wall-clock overhead of each recovery next to the invariant
// that pays for everything: all three merged disagreement reports must be
// byte-identical. The artifact lands in BENCH_vantage.json (path
// overridable via GOVDNS_VANTAGE_JSON).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench/common.h"
#include "ckpt/fault.h"
#include "ckpt/journal.h"
#include "core/export.h"
#include "core/report.h"
#include "core/study.h"
#include "core/study_ckpt.h"
#include "core/vantage.h"
#include "util/json.h"
#include "util/table.h"
#include "worldgen/adapter.h"
#include "worldgen/countries.h"
#include "worldgen/world.h"

namespace {

namespace fs = std::filesystem;

constexpr uint64_t kWorldFp = 0xBE4C876616E74ull;
constexpr int kVantages = 2;

double Scale() {
  if (const char* s = std::getenv("GOVDNS_SCALE")) {
    const double v = std::atof(s);
    if (v > 0.0) return v;
  }
  return 0.02;  // forks 2x the pipeline per run; default smaller than 1.0
}

struct Fault {
  uint64_t kill_at_write = 0;  // shard 0, attempt 0, after-commit _exit
  uint64_t stall_ms = 0;       // shard 0, attempt 0 wedges; deadline fires
};

struct ArmPoint {
  double seconds = 0.0;  // supervise + merge; world build excluded
  std::string json;
  int attempts = 0;        // shard 0's attempt count
  int deadline_kills = 0;  // shard 0's deadline kills
  int64_t countries_compared = 0;
  int64_t countries_disagreeing = 0;
};

// One supervised multi-vantage run on a fresh world, mirroring the
// govdns_study --vantages orchestration.
ArmPoint RunArm(const std::string& dir, const Fault& fault,
                uint64_t deadline_ms) {
  using namespace govdns;
  fs::remove_all(dir);
  worldgen::WorldConfig config;
  config.scale = Scale();
  auto world = worldgen::BuildWorld(config);

  std::vector<worldgen::VantageProfile> profiles;
  std::vector<std::string> names;
  for (int v = 0; v < kVantages; ++v) {
    profiles.push_back(worldgen::MakeDefaultVantageProfile(v));
    names.push_back(profiles.back().name);
  }
  uint64_t study_fp = 0;
  {
    worldgen::PolicyLookupAdapter policy(&world->registry_policy());
    study_fp = core::StudyInputsFingerprint(
        worldgen::MakeStudyInputs(*world, &policy));
  }
  std::vector<std::string> top10;
  for (const char* code : worldgen::Top10CountryCodes()) {
    top10.emplace_back(code);
  }

  core::VantageSupervisor::ChildFn child_fn = [&](const std::string& name,
                                                  int attempt) -> int {
    try {
      const worldgen::VantageProfile* profile = nullptr;
      for (const worldgen::VantageProfile& p : profiles) {
        if (p.name == name) profile = &p;
      }
      if (profile == nullptr) return 3;
      const bool victim = name == names[0] && attempt == 0;
      if (victim && fault.stall_ms > 0) {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(fault.stall_ms));
      }
      world->ApplyVantage(*profile);
      auto bound = worldgen::MakeStudy(*world);

      core::StudyCheckpointOptions opts;
      opts.resume = attempt > 0;
      core::StudyCheckpoint ckpt(core::VantageJournalDir(dir, name),
                                 core::VantageBaseFingerprint(kWorldFp, name),
                                 opts);
      if (victim && fault.kill_at_write > 0) {
        ckpt::CkptFaultPlan plan;
        plan.kill_at_write = fault.kill_at_write;
        plan.mode = ckpt::KillMode::kAfterCommit;
        plan.exit_process = true;
        ckpt.set_fault_plan(plan);
      }
      bound.study->AttachCheckpoint(&ckpt);
      bound.study->RunSelection();
      bound.study->RunMining();
      bound.study->RunActiveMeasurement();

      const std::string report_json =
          core::ExportReportJson(core::BuildReport(*bound.study, top10));
      ckpt.SaveReportJson(report_json);
      const uint64_t full_fp = ckpt::MixFingerprint(
          core::VantageBaseFingerprint(kWorldFp, name), study_fp);
      ckpt.SaveVantage(core::BuildVantageSummary(
          name, full_fp, bound.study->active(), report_json));
      return 0;
    } catch (...) {
      return 1;
    }
  };

  core::VantageSupervisorOptions options;
  options.poll_ms = 10;
  options.deadline_ms = deadline_ms;

  const auto start = std::chrono::steady_clock::now();
  core::VantageSupervisor supervisor(names, options);
  std::vector<core::VantageOutcome> outcomes = supervisor.Run(child_fn);

  std::vector<core::VantageSummary> summaries;
  std::vector<std::string> lost;
  for (const core::VantageOutcome& outcome : outcomes) {
    if (outcome.lost) {
      lost.push_back(outcome.name);
      continue;
    }
    const uint64_t full_fp = ckpt::MixFingerprint(
        core::VantageBaseFingerprint(kWorldFp, outcome.name), study_fp);
    auto summary = core::LoadVantageSummary(
        core::VantageJournalDir(dir, outcome.name), full_fp);
    if (!summary) {
      lost.push_back(outcome.name);
      continue;
    }
    summaries.push_back(*std::move(summary));
  }
  core::MultiVantageReport merged =
      core::MergeVantageSummaries(std::move(summaries), std::move(lost));
  const auto stop = std::chrono::steady_clock::now();

  ArmPoint point;
  point.seconds = std::chrono::duration<double>(stop - start).count();
  point.json = core::ExportMultiVantageJson(merged);
  point.attempts = outcomes.empty() ? 0 : outcomes[0].attempts;
  point.deadline_kills = outcomes.empty() ? 0 : outcomes[0].deadline_kills;
  point.countries_compared = merged.countries_compared;
  point.countries_disagreeing = merged.countries_disagreeing;
  fs::remove_all(dir);
  return point;
}

void BM_SupervisedMultiVantage(benchmark::State& state) {
  const std::string dir =
      (fs::temp_directory_path() / "govdns_bench_vantage_bm").string();
  for (auto _ : state) {
    ArmPoint point = RunArm(dir, Fault{}, /*deadline_ms=*/0);
    benchmark::DoNotOptimize(point);
  }
}
BENCHMARK(BM_SupervisedMultiVantage)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->Iterations(1);

void PrintArtifact() {
  const std::string dir =
      (fs::temp_directory_path() / "govdns_bench_vantage").string();

  ArmPoint clean = RunArm(dir, Fault{}, /*deadline_ms=*/0);
  Fault crash;
  crash.kill_at_write = 2;  // mid-pipeline: after the mining frame commits
  ArmPoint crashed = RunArm(dir, crash, /*deadline_ms=*/0);
  Fault stall;
  stall.stall_ms = 60000;
  ArmPoint straggler = RunArm(dir, stall, /*deadline_ms=*/1000);

  const bool identical =
      clean.json == crashed.json && clean.json == straggler.json;
  const double crash_over =
      clean.seconds > 0.0 ? (crashed.seconds / clean.seconds - 1.0) * 100.0
                          : 0.0;
  const double stall_over =
      clean.seconds > 0.0 ? (straggler.seconds / clean.seconds - 1.0) * 100.0
                          : 0.0;

  govdns::util::TextTable table(
      {"Config", "Seconds", "Shard-0 attempts", "Deadline kills"});
  char clean_s[32], crash_s[32], stall_s[32];
  std::snprintf(clean_s, sizeof clean_s, "%.3f", clean.seconds);
  std::snprintf(crash_s, sizeof crash_s, "%.3f", crashed.seconds);
  std::snprintf(stall_s, sizeof stall_s, "%.3f", straggler.seconds);
  table.AddRow({"uninterrupted", clean_s, std::to_string(clean.attempts),
                std::to_string(clean.deadline_kills)});
  table.AddRow({"crash + restart", crash_s, std::to_string(crashed.attempts),
                std::to_string(crashed.deadline_kills)});
  table.AddRow({"straggler + deadline kill", stall_s,
                std::to_string(straggler.attempts),
                std::to_string(straggler.deadline_kills)});

  govdns::util::JsonWriter w;
  w.BeginObject();
  w.Kv("scale", Scale());
  w.Kv("vantages", int64_t(kVantages));
  w.Kv("clean_seconds", clean.seconds);
  w.Kv("crash_seconds", crashed.seconds);
  w.Kv("crash_overhead_pct", crash_over);
  w.Kv("crash_attempts", int64_t(crashed.attempts));
  w.Kv("straggler_seconds", straggler.seconds);
  w.Kv("straggler_overhead_pct", stall_over);
  w.Kv("straggler_deadline_kills", int64_t(straggler.deadline_kills));
  w.Kv("countries_compared", clean.countries_compared);
  w.Kv("countries_disagreeing", clean.countries_disagreeing);
  w.Kv("reports_identical", identical);
  w.EndObject();
  const std::string json = w.TakeString();

  std::printf("\nMulti-vantage supervision — %d forked shards supervised to\n",
              kVantages);
  std::printf("completion three ways (fresh world per run, build excluded):\n");
  std::printf("clean, one shard crash-restarted from its journal, one shard\n");
  std::printf("deadline-killed mid-stall. Recovery may only cost wall-clock\n");
  std::printf("time — the merged disagreement report must stay identical.\n");
  table.Print(std::cout);
  std::printf("crash overhead: %.2f%%, straggler overhead: %.2f%%, "
              "reports identical: %s\n",
              crash_over, stall_over, identical ? "yes" : "NO");
  std::fprintf(stderr, "[bench] vantage %s\n", json.c_str());

  govdns::bench::WriteArtifactJson("GOVDNS_VANTAGE_JSON",
                                   "BENCH_vantage.json", json);
}

}  // namespace

GOVDNS_BENCH_MAIN(PrintArtifact)
