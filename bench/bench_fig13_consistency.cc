// Figure 13: parent/child NS-set consistency, classified per the Sommese
// framework, plus the §IV-D dangling-but-responsive aftermarket cases.
//
// Paper anchors: P = C for 76.8% of responsive domains; consistency is much
// higher at the second level (93.5%) than below; 40.9% of P != C domains
// also have a partial defect; 13 available d_ns serve 26 domains in 7
// countries through responsive parking services, min price 300 USD.
#include <algorithm>
#include <iostream>

#include "bench/common.h"
#include "core/analysis.h"
#include "util/strings.h"
#include "util/table.h"

namespace {

using govdns::bench::BenchEnv;
using govdns::core::ConsistencyClass;

void BM_AnalyzeConsistency(benchmark::State& state) {
  auto& env = BenchEnv::Get();
  const auto& dataset = env.active();
  for (auto _ : state) {
    auto summary = govdns::core::AnalyzeConsistency(dataset);
    benchmark::DoNotOptimize(summary);
  }
}
BENCHMARK(BM_AnalyzeConsistency)->Unit(benchmark::kMillisecond);

const char* ClassName(ConsistencyClass c) {
  switch (c) {
    case ConsistencyClass::kEqual: return "P = C";
    case ConsistencyClass::kChildSuperset: return "P subset of C";
    case ConsistencyClass::kParentSuperset: return "C subset of P";
    case ConsistencyClass::kOverlapNeither: return "overlap, neither";
    case ConsistencyClass::kDisjointSharedIp: return "disjoint, shared IPs";
    case ConsistencyClass::kDisjoint: return "disjoint";
    case ConsistencyClass::kNotComparable: return "not comparable";
  }
  return "?";
}

void PrintArtifact() {
  auto& env = BenchEnv::Get();
  auto summary = govdns::core::AnalyzeConsistency(env.active());
  std::printf("\nFig. 13 — parent/child zone consistency\n");
  std::printf("comparable domains: %s;  P = C: %s (paper: 76.8%%)\n",
              govdns::util::WithCommas(summary.comparable).c_str(),
              govdns::util::Percent(summary.pct_equal).c_str());

  govdns::util::TextTable table({"Class", "Domains", "Share"});
  for (const auto& [klass, count] : summary.counts) {
    table.AddRow({ClassName(klass), govdns::util::WithCommas(count),
                  govdns::util::Percent(double(count) / summary.comparable)});
  }
  table.Print(std::cout);

  govdns::util::TextTable levels({"DNS level", "Comparable", "P = C"});
  for (const auto& [level, pair] : summary.by_level) {
    levels.AddRow({std::to_string(level),
                   govdns::util::WithCommas(pair.second),
                   govdns::util::Percent(double(pair.first) / pair.second)});
  }
  std::printf("\nconsistency by hierarchy level (paper: 93.5%% at level 2)\n");
  levels.Print(std::cout);

  std::printf("\nP != C domains with a partial defect: %s (paper: 40.9%%)\n",
              govdns::util::Percent(summary.pct_disagree_with_partial_defect)
                  .c_str());

  auto hijack = govdns::core::AnalyzeHijackRisk(
      env.active(), env.world().psl(), env.world().registrar_client());
  std::printf("\n§IV-D dangling-but-responsive: %lld available d_ns, "
              "%lld domains, %lld countries (paper: 13 / 26 / 7)\n",
              static_cast<long long>(hijack.dangling_available_ns),
              static_cast<long long>(hijack.dangling_domains),
              static_cast<long long>(hijack.dangling_countries));
  if (!hijack.dangling_prices_usd.empty()) {
    std::printf("min price: %.2f USD (paper: 300)\n",
                *std::min_element(hijack.dangling_prices_usd.begin(),
                                  hijack.dangling_prices_usd.end()));
  }
}

}  // namespace

GOVDNS_BENCH_MAIN(PrintArtifact)
