// Ablation: the §III-C stability filter threshold.
//
// The paper keeps PDNS records whose first-to-last-seen *gap* is at least 7
// days — `last_seen − first_seen >= stability_days`, the largest default
// cache TTL among popular resolvers — arguing that shorter-lived records
// are transients (misconfigurations, DDoS protection switches,
// expirations). Note the gap, not the inclusive calendar length: a record
// seen on 7 consecutive days has a 6-day gap and is dropped at the default
// threshold (see mining.h). This sweep re-mines the dataset at thresholds
// 1..30 days and reports how the 2020 domain count and the d_1NS population
// react: low thresholds admit junk records, high ones start dropping
// genuinely stable deployments.
#include <iostream>

#include "bench/common.h"
#include "core/mining.h"
#include "util/strings.h"
#include "util/table.h"

namespace {

using govdns::bench::BenchEnv;

govdns::core::MinedDataset MineWithThreshold(int days) {
  auto& env = BenchEnv::Get();
  govdns::core::MiningConfig config;
  config.first_year = env.world().config().first_year;
  config.last_year = env.world().config().last_year;
  config.stability_days = days;
  govdns::core::PdnsMiner miner(&env.world().pdns_db(), config);
  return miner.Mine(env.seeds());
}

void BM_MineAtThreshold(benchmark::State& state) {
  BenchEnv::Get().seeds();
  for (auto _ : state) {
    auto dataset = MineWithThreshold(static_cast<int>(state.range(0)));
    benchmark::DoNotOptimize(dataset);
  }
}
BENCHMARK(BM_MineAtThreshold)->Arg(1)->Arg(7)->Arg(30)
    ->Unit(benchmark::kMillisecond);

void PrintArtifact() {
  govdns::util::TextTable table({"Threshold (days)", "Domains 2020",
                                 "NS hostnames 2020", "d_1NS 2020"});
  for (int days : {1, 3, 7, 14, 30, 60}) {
    auto dataset = MineWithThreshold(days);
    auto counts = govdns::core::CountPerYear(dataset);
    auto churn = govdns::core::D1nsChurn(dataset);
    const auto& last = counts.back();
    table.AddRow({std::to_string(days),
                  govdns::util::WithCommas(last.domains),
                  govdns::util::WithCommas(last.nameservers),
                  govdns::util::WithCommas(churn.back().d1ns_total)});
  }
  std::printf("\nAblation — stability-filter threshold (paper uses 7 days)\n");
  table.Print(std::cout);
}

}  // namespace

GOVDNS_BENCH_MAIN(PrintArtifact)
