// Table II: government usage of the major third-party DNS providers, 2011
// vs 2020: domains, d_1P (domains depending on a single provider), and
// sub-region groups covered (UN sub-regions, with the top-10 countries as
// their own groups).
//
// Paper anchors: Amazon 5 -> 5,193 domains; Cloudflare 12 -> 4,136;
// Azure 0 -> 1,574; GoDaddy 283 -> 1,582; DNSPod stays Chinese-only
// (1 group); Cloudflare reaches ~97% of groups by 2020.
#include <iostream>

#include "bench/common.h"
#include "core/providers.h"
#include "util/strings.h"
#include "util/table.h"

namespace {

using govdns::bench::BenchEnv;
using govdns::core::ProviderAnalyzer;
using govdns::core::ProviderMatcher;

ProviderMatcher& Matcher() {
  static ProviderMatcher matcher(govdns::core::DefaultProviderRules());
  return matcher;
}

void BM_ProviderYear2020(benchmark::State& state) {
  auto& env = BenchEnv::Get();
  const auto& dataset = env.mined();
  ProviderAnalyzer analyzer(&Matcher(), govdns::worldgen::MakeCountryMetas());
  for (auto _ : state) {
    auto table = analyzer.Analyze(dataset, 2020);
    benchmark::DoNotOptimize(table);
  }
}
BENCHMARK(BM_ProviderYear2020)->Unit(benchmark::kMillisecond);

void PrintArtifact() {
  auto& env = BenchEnv::Get();
  ProviderAnalyzer analyzer(&Matcher(), govdns::worldgen::MakeCountryMetas());
  auto t2011 = analyzer.Analyze(env.mined(), 2011);
  auto t2020 = analyzer.Analyze(env.mined(), 2020);

  govdns::util::TextTable table({"Provider", "Domains'11", "d_1P'11",
                                 "Groups'11", "Domains'20", "d_1P'20",
                                 "Groups'20"});
  for (size_t i = 0; i < t2020.rows.size(); ++i) {
    if (!t2020.rows[i].major) continue;
    const auto& a = t2011.rows[i];
    const auto& b = t2020.rows[i];
    auto pct = [](int64_t n, int64_t total) {
      return total > 0 ? govdns::util::Percent(double(n) / double(total)) : "-";
    };
    table.AddRow({b.display,
                  govdns::util::WithCommas(a.domains) + " (" +
                      pct(a.domains, t2011.total_domains) + ")",
                  govdns::util::WithCommas(a.d1p),
                  std::to_string(a.groups) + "/" +
                      std::to_string(t2011.total_groups),
                  govdns::util::WithCommas(b.domains) + " (" +
                      pct(b.domains, t2020.total_domains) + ")",
                  govdns::util::WithCommas(b.d1p),
                  std::to_string(b.groups) + "/" +
                      std::to_string(t2020.total_groups)});
  }
  std::printf("\nTable II — major-provider usage, 2011 vs 2020\n");
  std::printf("(paper: Amazon 5 -> 5,193; Cloudflare 12 -> 4,136; "
              "Azure 0 -> 1,574)\n");
  table.Print(std::cout);
}

}  // namespace

GOVDNS_BENCH_MAIN(PrintArtifact)
