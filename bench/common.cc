#include "bench/common.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "util/json.h"

namespace govdns::bench {

BenchEnv& BenchEnv::Get() {
  static BenchEnv env;
  return env;
}

BenchEnv::BenchEnv() {
  if (const char* s = std::getenv("GOVDNS_SCALE")) {
    scale_ = std::atof(s);
    if (scale_ <= 0.0) scale_ = 1.0;
  }
  std::fprintf(stderr, "[bench] building world at scale %.3f ...\n", scale_);
  worldgen::WorldConfig config;
  config.scale = scale_;
  world_ = worldgen::BuildWorld(config);
  bound_ = worldgen::MakeStudy(*world_);
  std::fprintf(stderr, "[bench] world ready: %zu domains, %zu endpoints\n",
               world_->domains().size(), world_->network().endpoint_count());
}

const std::vector<core::SeedDomain>& BenchEnv::seeds() {
  if (!selected_) {
    bound_.study->RunSelection();
    selected_ = true;
  }
  return bound_.study->seeds();
}

const core::MinedDataset& BenchEnv::mined() {
  seeds();
  if (!mined_done_) {
    std::fprintf(stderr, "[bench] mining passive DNS ...\n");
    bound_.study->RunMining();
    mined_done_ = true;
  }
  return bound_.study->mined();
}

const core::ActiveDataset& BenchEnv::active() {
  mined();
  if (!active_done_) {
    std::fprintf(stderr, "[bench] running active measurement ...\n");
    bound_.study->RunActiveMeasurement();
    active_done_ = true;
    std::fprintf(stderr, "[bench] measurement done (%llu queries)\n",
                 static_cast<unsigned long long>(
                     bound_.study->measurement_queries_sent()));
    PrintStatsJson();
  }
  return bound_.study->active();
}

void BenchEnv::PrintStatsJson() {
  const simnet::NetworkStats net = world_->network().stats();
  const core::ResolverCounters& rc = bound_.study->measurement_counters();
  const core::CutCacheStats& cc = bound_.study->measurement_cache_stats();
  util::JsonWriter w;
  w.BeginObject();
  w.Key("network").BeginObject()
      .Kv("exchanges", int64_t(net.exchanges))
      .Kv("delivered", int64_t(net.delivered))
      .Kv("timeouts", int64_t(net.timeouts))
      .Kv("unreachable", int64_t(net.unreachable))
      .Kv("flap_dropped", int64_t(net.flap_dropped))
      .Kv("burst_dropped", int64_t(net.burst_dropped))
      .Kv("rate_limited", int64_t(net.rate_limited))
      .Kv("corrupted", int64_t(net.corrupted))
      .Kv("truncated", int64_t(net.truncated))
      .Kv("wrong_id", int64_t(net.wrong_id))
      .Kv("clock_ms", int64_t(world_->network().clock().now_ms()))
      .EndObject();
  w.Key("measurement").BeginObject()
      .Kv("queries", int64_t(rc.queries))
      .Kv("retries", int64_t(rc.retries))
      .Kv("timeouts", int64_t(rc.timeouts))
      .Kv("refused", int64_t(rc.refused))
      .Kv("malformed", int64_t(rc.malformed))
      .Kv("wrong_id", int64_t(rc.wrong_id))
      .Kv("truncated", int64_t(rc.truncated))
      .Kv("backoff_ms", int64_t(rc.backoff_ms))
      .Kv("breaker_skips", int64_t(rc.breaker_skips))
      .Kv("negative_cache_hits", int64_t(rc.negative_cache_hits))
      .Kv("budget_denied", int64_t(rc.budget_denied))
      .EndObject();
  w.Key("cut_cache").BeginObject()
      .Kv("hits", int64_t(cc.hits))
      .Kv("misses", int64_t(cc.misses))
      .Kv("negative_hits", int64_t(cc.negative_hits))
      .Kv("publishes", int64_t(cc.publishes))
      .Kv("negative_publishes", int64_t(cc.negative_publishes))
      .Kv("infra_queries", int64_t(cc.infra.queries))
      .Kv("infra_retries", int64_t(cc.infra.retries))
      .EndObject();
  w.EndObject();
  std::fprintf(stderr, "[bench] stats %s\n", w.TakeString().c_str());
}

ScaledStudy MakeScaledStudy(double scale) {
  std::fprintf(stderr, "[bench] building extra world at scale %.3f ...\n",
               scale);
  worldgen::WorldConfig config;
  config.scale = scale;
  ScaledStudy out;
  out.world = worldgen::BuildWorld(config);
  out.bound = worldgen::MakeStudy(*out.world);
  std::fprintf(stderr, "[bench] extra world ready: %zu domains\n",
               out.world->domains().size());
  return out;
}

void WriteArtifactJson(const char* env_var, const char* default_path,
                       const std::string& json) {
  const char* override_path = std::getenv(env_var);
  const std::string out_path =
      override_path != nullptr ? override_path : default_path;
  const std::string tmp_path = out_path + ".tmp";
  {
    std::ofstream out(tmp_path, std::ios::trunc);
    if (out) out << json << "\n";
    if (!out) {
      std::fprintf(stderr, "[bench] cannot write %s\n", tmp_path.c_str());
      std::remove(tmp_path.c_str());
      return;
    }
  }
  if (std::rename(tmp_path.c_str(), out_path.c_str()) != 0) {
    std::fprintf(stderr, "[bench] cannot rename %s -> %s\n", tmp_path.c_str(),
                 out_path.c_str());
    std::remove(tmp_path.c_str());
    return;
  }
  std::fprintf(stderr, "[bench] wrote %s\n", out_path.c_str());
}

int BenchMain(int argc, char** argv, void (*print_artifact)()) {
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  if (print_artifact != nullptr) print_artifact();
  return 0;
}

}  // namespace govdns::bench
