#include "bench/common.h"

#include <cstdio>
#include <cstdlib>

namespace govdns::bench {

BenchEnv& BenchEnv::Get() {
  static BenchEnv env;
  return env;
}

BenchEnv::BenchEnv() {
  if (const char* s = std::getenv("GOVDNS_SCALE")) {
    scale_ = std::atof(s);
    if (scale_ <= 0.0) scale_ = 1.0;
  }
  std::fprintf(stderr, "[bench] building world at scale %.3f ...\n", scale_);
  worldgen::WorldConfig config;
  config.scale = scale_;
  world_ = worldgen::BuildWorld(config);
  bound_ = worldgen::MakeStudy(*world_);
  std::fprintf(stderr, "[bench] world ready: %zu domains, %zu endpoints\n",
               world_->domains().size(), world_->network().endpoint_count());
}

const std::vector<core::SeedDomain>& BenchEnv::seeds() {
  if (!selected_) {
    bound_.study->RunSelection();
    selected_ = true;
  }
  return bound_.study->seeds();
}

const core::MinedDataset& BenchEnv::mined() {
  seeds();
  if (!mined_done_) {
    std::fprintf(stderr, "[bench] mining passive DNS ...\n");
    bound_.study->RunMining();
    mined_done_ = true;
  }
  return bound_.study->mined();
}

const core::ActiveDataset& BenchEnv::active() {
  mined();
  if (!active_done_) {
    std::fprintf(stderr, "[bench] running active measurement ...\n");
    bound_.study->RunActiveMeasurement();
    active_done_ = true;
    std::fprintf(stderr, "[bench] measurement done (%llu queries)\n",
                 static_cast<unsigned long long>(
                     bound_.study->resolver().queries_sent()));
  }
  return bound_.study->active();
}

int BenchMain(int argc, char** argv, void (*print_artifact)()) {
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  if (print_artifact != nullptr) print_artifact();
  return 0;
}

}  // namespace govdns::bench
