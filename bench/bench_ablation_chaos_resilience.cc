// Ablation: chaos sweep — retry/backoff/health armor vs injected loss.
//
// The paper's second measurement round exists to keep transient packet loss
// from masquerading as defective delegations (§III-B, Fig. 10). This sweep
// quantifies that rationale end-to-end: network-wide loss is swept 0 → 50%
// and the stale-d_1NS rate (Fig. 8) and defective-delegation rates (Fig. 10)
// are measured with the RetryPolicy armor on vs off. The false-positive
// columns subtract each arm's zero-loss baseline, so they show exactly how
// much *adversity-induced* misclassification the armor absorbs.
#include <iostream>
#include <vector>

#include "bench/common.h"
#include "core/analysis.h"
#include "core/measure.h"
#include "core/report.h"
#include "util/strings.h"
#include "util/table.h"

namespace {

using govdns::bench::BenchEnv;

struct SweepPoint {
  double loss = 0.0;
  bool armored = false;
  double stale_d1ns_pct = 0.0;   // Fig. 8 statistic under this weather
  double fully_defective_pct = 0.0;  // Fig. 10 statistic
  govdns::core::ResilienceReport resilience;
};

SweepPoint MeasurePoint(bool armored, double loss) {
  auto& env = BenchEnv::Get();
  env.world().network().set_extra_loss_rate(loss);
  // A fresh resolver per arm so cache/health state never leaks across arms.
  govdns::core::ResolverOptions ropts;
  if (!armored) ropts.retry = govdns::core::RetryPolicy::Disabled();
  govdns::core::IterativeResolver resolver(&env.world().network(),
                                           env.world().root_server_ips(),
                                           ropts);
  govdns::core::MeasurerOptions mopts;
  mopts.collect_soa = false;
  govdns::core::ActiveMeasurer measurer(&resolver, mopts);
  auto query_list = govdns::core::PdnsMiner::ActiveQueryList(env.mined());
  // Deterministic subsample: 12 full measurement passes ride this sweep.
  constexpr size_t kSample = 20000;
  if (query_list.size() > kSample) query_list.resize(kSample);
  auto results = measurer.MeasureAll(query_list);
  auto dataset = govdns::core::ActiveDataset::Build(
      std::move(results), env.seeds(), govdns::worldgen::MakeCountryMetas());
  env.world().network().set_extra_loss_rate(0.0);

  SweepPoint point;
  point.loss = loss;
  point.armored = armored;
  auto replication = govdns::core::AnalyzeReplication(dataset);
  point.stale_d1ns_pct = replication.d1ns_stale_pct;
  auto delegations = govdns::core::AnalyzeDelegations(dataset);
  if (delegations.domains_considered > 0) {
    point.fully_defective_pct = double(delegations.fully_defective) /
                                double(delegations.domains_considered);
  }
  point.resilience = govdns::core::BuildResilienceReport(dataset);
  return point;
}

void BM_ChaosResilience(benchmark::State& state) {
  BenchEnv::Get().mined();
  const bool armored = state.range(0) != 0;
  const double loss = double(state.range(1)) / 100.0;
  for (auto _ : state) {
    auto point = MeasurePoint(armored, loss);
    benchmark::DoNotOptimize(point);
  }
}
BENCHMARK(BM_ChaosResilience)
    ->Args({0, 20})
    ->Args({1, 20})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

void PrintArtifact() {
  const std::vector<double> kLossSweep = {0.0, 0.1, 0.2, 0.3, 0.4, 0.5};
  govdns::util::TextTable table({"Loss", "Armor", "stale d1NS", "FP", "full def",
                                 "FP", "retries", "degraded"});
  for (bool armored : {false, true}) {
    SweepPoint baseline;
    for (double loss : kLossSweep) {
      SweepPoint p = MeasurePoint(armored, loss);
      if (loss == 0.0) baseline = p;
      table.AddRow(
          {govdns::util::Percent(loss, 0),
           armored ? "retry policy" : "naive",
           govdns::util::Percent(p.stale_d1ns_pct),
           govdns::util::Percent(p.stale_d1ns_pct - baseline.stale_d1ns_pct),
           govdns::util::Percent(p.fully_defective_pct),
           govdns::util::Percent(p.fully_defective_pct -
                                 baseline.fully_defective_pct),
           std::to_string(p.resilience.totals.retries),
           std::to_string(p.resilience.degraded_domains)});
      if (loss == 0.2) {
        std::fprintf(stderr, "[bench] resilience@20%%loss armor=%d %s\n",
                     armored ? 1 : 0, p.resilience.ToJson().c_str());
      }
    }
  }
  std::printf("\nAblation — chaos sweep: retry/backoff/health armor vs loss\n");
  std::printf("(FP = excess over the same arm's zero-loss baseline; the\n");
  std::printf(" armor keeps stale-d1NS and full-defective FP rates near zero\n");
  std::printf(" while the naive single-shot client inflates them with loss)\n");
  table.Print(std::cout);
}

}  // namespace

GOVDNS_BENCH_MAIN(PrintArtifact)
