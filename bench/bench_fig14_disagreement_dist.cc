// Figure 14: distribution of the parent/child disagreement rate per d_gov.
//
// Paper anchors: countries with the largest disagreement rates tend to have
// few responsive domains, but some large namespaces also disagree often.
#include <algorithm>
#include <iostream>

#include "bench/common.h"
#include "core/analysis.h"
#include "util/stats.h"
#include "util/strings.h"
#include "util/table.h"

namespace {

using govdns::bench::BenchEnv;

void BM_DisagreementDistribution(benchmark::State& state) {
  auto& env = BenchEnv::Get();
  const auto& dataset = env.active();
  for (auto _ : state) {
    auto summary = govdns::core::AnalyzeConsistency(dataset);
    benchmark::DoNotOptimize(summary.by_country);
  }
}
BENCHMARK(BM_DisagreementDistribution)->Unit(benchmark::kMillisecond);

void PrintArtifact() {
  auto& env = BenchEnv::Get();
  auto summary = govdns::core::AnalyzeConsistency(env.active());

  std::vector<double> rates;
  for (const auto& row : summary.by_country) {
    if (row.comparable >= 5) {
      rates.push_back(double(row.disagree) / double(row.comparable));
    }
  }
  std::printf("\nFig. 14 — disagreement rate per d_gov (countries with >=5 "
              "comparable domains: %zu)\n", rates.size());
  if (rates.empty()) return;
  govdns::util::TextTable table({"Percentile", "Disagreement rate"});
  for (double p : {0.10, 0.25, 0.50, 0.75, 0.90, 0.99}) {
    table.AddRow({govdns::util::Percent(p, 0),
                  govdns::util::Percent(govdns::util::Percentile(rates, p))});
  }
  table.Print(std::cout);

  auto rows = summary.by_country;
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    double ra = a.comparable ? double(a.disagree) / a.comparable : 0;
    double rb = b.comparable ? double(b.disagree) / b.comparable : 0;
    return ra > rb;
  });
  govdns::util::TextTable top({"Country", "Comparable", "Disagree", "Rate"});
  int shown = 0;
  for (const auto& row : rows) {
    if (row.comparable < 5) continue;
    top.AddRow({row.code, govdns::util::WithCommas(row.comparable),
                govdns::util::WithCommas(row.disagree),
                govdns::util::Percent(double(row.disagree) / row.comparable)});
    if (++shown >= 15) break;
  }
  std::printf("\nhighest-disagreement countries\n");
  top.Print(std::cout);
}

}  // namespace

GOVDNS_BENCH_MAIN(PrintArtifact)
