// Scaling bench: the sharded PDNS miner vs worker count (DESIGN.md §6j).
//
// Freezes the PDNS database once (freeze cost reported separately — it is a
// one-time substrate build, not per-mine work), then sweeps
// PdnsMiner::MineSnapshot at 1/2/4/8 workers with the sub-phase profiler
// attached. Each point records wall seconds, per-phase walls, the measured
// speedup, and an Amdahl projection computed from the 1-worker run's phase
// decomposition: the only serial remainder of the pipeline is the intern
// k-way merge plus the renumber pass, so
//
//     projected(N) = total / (serial + (total - serial) / N)
//
// On a multi-core host measured and projected agree; on a single-core host
// (where OS scheduling makes measured speedup physically ~1x) the projection
// is the honest scaling statement, and the `cores` field lets the reader —
// and tools/verify.sh — judge which one to trust.
//
// The dataset must be byte-identical at every point (parallel mining is a
// pure optimization), including when mined from the owning and mmapped
// snapshot-file substrates, which this bench round-trips through a temp
// file. A second sweep runs at GOVDNS_MINE_SCALE (default 10x GOVDNS_SCALE;
// set 0 to disable) so the scaling claim is tested at world scale and well
// past it. Artifacts: the sweep tables on stdout, one machine-readable
// `[bench] mining` JSON line for the stats scraper, and BENCH_mining.json
// (path overridable via GOVDNS_MINING_JSON).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "bench/common.h"
#include "core/mining.h"
#include "obs/profile.h"
#include "pdns/snapshot_io.h"
#include "util/json.h"
#include "util/table.h"

namespace {

namespace fs = std::filesystem;
using govdns::bench::BenchEnv;

constexpr uint64_t kSnapshotFingerprint = 0xBE4C11731E5CA1Eull;

struct PhaseWalls {
  double intern = 0.0;
  double intern_merge = 0.0;
  double shard = 0.0;
  double renumber = 0.0;
  double sort = 0.0;
  double concat = 0.0;
  double fold = 0.0;
};

struct SweepPoint {
  int workers = 0;
  double seconds = 0.0;
  double domains_per_sec = 0.0;
  double speedup = 0.0;
  double projected = 0.0;
  bool identical = false;
  PhaseWalls phases;
};

struct SubstratePoint {
  const char* substrate = "";
  int workers = 0;
  double seconds = 0.0;
  bool identical = false;
};

struct SweepResult {
  double scale = 0.0;
  size_t seeds = 0;
  size_t domains = 0;
  size_t ns_names = 0;
  int64_t entries_scanned = 0;
  double freeze_seconds = 0.0;
  double serial_seconds = 0.0;
  double serial_phase_seconds = 0.0;  // intern merge + renumber, from 1w run
  std::vector<SweepPoint> sweep;
  std::vector<SubstratePoint> substrates;
};

double WallSeconds(const govdns::obs::PhaseProfiler& prof, const char* name) {
  auto rec = prof.LastRecord(name);
  return rec.has_value() ? rec->wall_ms / 1000.0 : 0.0;
}

PhaseWalls CollectPhases(const govdns::obs::PhaseProfiler& prof) {
  PhaseWalls p;
  p.intern = WallSeconds(prof, "mining.fold.intern");
  p.intern_merge = WallSeconds(prof, "mining.fold.intern.merge");
  p.shard = WallSeconds(prof, "mining.shard");
  p.renumber = WallSeconds(prof, "mining.fold.renumber");
  p.sort = WallSeconds(prof, "mining.fold.sort");
  p.concat = WallSeconds(prof, "mining.fold.concat");
  p.fold = WallSeconds(prof, "mining.fold");
  return p;
}

template <typename Snapshot>
govdns::core::MinedDataset MinePoint(const Snapshot& snapshot,
                                     const std::vector<govdns::core::SeedDomain>& seeds,
                                     const govdns::core::MiningConfig& config,
                                     int workers, double* seconds,
                                     PhaseWalls* phases) {
  govdns::obs::PhaseProfiler prof;
  govdns::core::MinerOptions opts;
  opts.workers = workers;
  opts.profiler = &prof;
  govdns::core::PdnsMiner miner(config, opts);
  const auto start = std::chrono::steady_clock::now();
  auto dataset = miner.MineSnapshot(snapshot, seeds);
  const auto stop = std::chrono::steady_clock::now();
  if (seconds != nullptr) {
    *seconds = std::chrono::duration<double>(stop - start).count();
  }
  if (phases != nullptr) *phases = CollectPhases(prof);
  return dataset;
}

// One full sweep over an already-selected study at `scale`.
SweepResult RunSweep(govdns::core::Study& study, double scale) {
  SweepResult r;
  r.scale = scale;
  const auto& seeds = study.seeds();
  const auto& config = study.inputs().mining;
  r.seeds = seeds.size();

  // Freeze once, up front: a one-time O(entries) substrate build every
  // sweep point then shares (the old bench re-froze per point, drowning the
  // mine in serial freeze time).
  govdns::pdns::PdnsSnapshot frozen;
  {
    const auto start = std::chrono::steady_clock::now();
    frozen = study.inputs().pdns->Freeze();
    r.freeze_seconds = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - start)
                           .count();
  }

  // The 1-worker run is the identity baseline AND the Amdahl decomposition
  // source: its intern-merge + renumber walls are the pipeline's only
  // serial remainder.
  PhaseWalls serial_phases;
  const auto serial =
      MinePoint(frozen, seeds, config, 1, &r.serial_seconds, &serial_phases);
  r.domains = serial.domains.size();
  r.ns_names = serial.ns_names.size();
  r.entries_scanned = serial.stats.entries_scanned;
  r.serial_phase_seconds = serial_phases.intern_merge + serial_phases.renumber;
  const double parallel_part = r.serial_seconds - r.serial_phase_seconds;

  for (int workers : {1, 2, 4, 8}) {
    SweepPoint point;
    point.workers = workers;
    const auto dataset =
        MinePoint(frozen, seeds, config, workers, &point.seconds, &point.phases);
    point.identical = dataset == serial;
    point.domains_per_sec =
        point.seconds > 0.0 ? double(dataset.domains.size()) / point.seconds
                            : 0.0;
    point.speedup = (r.serial_seconds > 0.0 && point.seconds > 0.0)
                        ? r.serial_seconds / point.seconds
                        : 0.0;
    const double projected_denom =
        r.serial_phase_seconds + parallel_part / workers;
    point.projected = (r.serial_seconds > 0.0 && projected_denom > 0.0)
                          ? r.serial_seconds / projected_denom
                          : 0.0;
    r.sweep.push_back(point);
  }

  // Substrate identity: the owning and mmapped snapshot-file paths must
  // yield the same bytes the in-memory frozen snapshot did.
  const std::string dir =
      (fs::temp_directory_path() / "govdns_bench_mine").string();
  std::error_code ec;
  fs::remove_all(dir, ec);
  fs::create_directories(dir, ec);
  const std::string path = dir + "/pdns.gvsn";
  auto write =
      govdns::pdns::WritePdnsSnapshotFile(frozen, kSnapshotFingerprint, dir, path);
  if (write.ok()) {
    auto owning =
        govdns::pdns::ReadPdnsSnapshotFileOwning(path, kSnapshotFingerprint);
    auto mapped =
        govdns::pdns::MappedPdnsSnapshot::Open(path, kSnapshotFingerprint);
    for (int workers : {1, 4}) {
      if (owning.ok()) {
        SubstratePoint p{"owning", workers};
        p.identical =
            MinePoint(*owning, seeds, config, workers, &p.seconds, nullptr) ==
            serial;
        r.substrates.push_back(p);
      }
      if (mapped.ok()) {
        SubstratePoint p{"mapped", workers};
        p.identical =
            MinePoint(*mapped, seeds, config, workers, &p.seconds, nullptr) ==
            serial;
        r.substrates.push_back(p);
      }
    }
  } else {
    std::fprintf(stderr, "[bench] cannot write snapshot file: %s\n",
                 write.ToString().c_str());
  }
  fs::remove_all(dir, ec);
  return r;
}

void WriteSweepJson(govdns::util::JsonWriter& w, const SweepResult& r) {
  w.Kv("scale", r.scale);
  w.Kv("seeds", int64_t(r.seeds));
  w.Kv("domains", int64_t(r.domains));
  w.Kv("ns_names", int64_t(r.ns_names));
  w.Kv("entries_scanned", r.entries_scanned);
  w.Kv("freeze_seconds", r.freeze_seconds);
  w.Kv("serial_seconds", r.serial_seconds);
  w.Kv("serial_phase_seconds", r.serial_phase_seconds);
  w.Key("sweep").BeginArray();
  for (const SweepPoint& p : r.sweep) {
    w.BeginObject()
        .Kv("workers", int64_t(p.workers))
        .Kv("seconds", p.seconds)
        .Kv("domains_per_sec", p.domains_per_sec)
        .Kv("speedup_vs_serial", p.speedup)
        .Kv("projected_speedup", p.projected)
        .Kv("identical_to_serial", p.identical);
    w.Key("phases").BeginObject()
        .Kv("intern", p.phases.intern)
        .Kv("intern_merge", p.phases.intern_merge)
        .Kv("shard", p.phases.shard)
        .Kv("renumber", p.phases.renumber)
        .Kv("sort", p.phases.sort)
        .Kv("concat", p.phases.concat)
        .Kv("fold", p.phases.fold)
        .EndObject();
    w.EndObject();
  }
  w.EndArray();
  w.Key("substrates").BeginArray();
  for (const SubstratePoint& p : r.substrates) {
    w.BeginObject()
        .Kv("substrate", std::string(p.substrate))
        .Kv("workers", int64_t(p.workers))
        .Kv("seconds", p.seconds)
        .Kv("identical_to_serial", p.identical)
        .EndObject();
  }
  w.EndArray();
}

void PrintSweepTable(const SweepResult& r) {
  govdns::util::TextTable table({"Workers", "Seconds", "Domains/sec",
                                 "Speedup", "Projected", "Identical"});
  for (const SweepPoint& p : r.sweep) {
    char seconds[32], rate[32], speedup[32], projected[32];
    std::snprintf(seconds, sizeof seconds, "%.3f", p.seconds);
    std::snprintf(rate, sizeof rate, "%.0f", p.domains_per_sec);
    std::snprintf(speedup, sizeof speedup, "%.2fx", p.speedup);
    std::snprintf(projected, sizeof projected, "%.2fx", p.projected);
    table.AddRow({std::to_string(p.workers), seconds, rate, speedup, projected,
                  p.identical ? "yes" : "NO"});
  }
  std::printf("\nScaling at scale %.3f — %zu seeds, %zu domains, "
              "freeze %.3fs (once), serial remainder %.4fs\n",
              r.scale, r.seeds, r.domains, r.freeze_seconds,
              r.serial_phase_seconds);
  table.Print(std::cout);
  for (const SubstratePoint& p : r.substrates) {
    std::printf("  substrate %-6s w=%d: %.3fs identical=%s\n", p.substrate,
                p.workers, p.seconds, p.identical ? "yes" : "NO");
  }
}

// The google-benchmark face of the same measurement (timing only; the
// artifact sweep below is the authoritative record).
void BM_MineWorkers(benchmark::State& state) {
  auto& env = BenchEnv::Get();
  static govdns::pdns::PdnsSnapshot frozen = [&] {
    env.seeds();
    return env.study().inputs().pdns->Freeze();
  }();
  const int workers = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto dataset = MinePoint(frozen, env.seeds(), env.study().inputs().mining,
                             workers, nullptr, nullptr);
    benchmark::DoNotOptimize(dataset);
  }
}
BENCHMARK(BM_MineWorkers)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->Iterations(1);

void PrintArtifact() {
  auto& env = BenchEnv::Get();
  env.seeds();
  const SweepResult main_sweep = RunSweep(env.study(), env.scale());
  PrintSweepTable(main_sweep);

  // Second sweep well past world scale: GOVDNS_MINE_SCALE (default 10x the
  // base scale, 0 disables) on its own world, so the scaling statement is
  // made where the serial fold used to hurt the most.
  std::optional<SweepResult> big_sweep;
  double mine_scale = env.scale() * 10.0;
  if (const char* s = std::getenv("GOVDNS_MINE_SCALE")) {
    mine_scale = std::atof(s);
  }
  if (mine_scale > 0.0) {
    auto scaled = govdns::bench::MakeScaledStudy(mine_scale);
    scaled.study().RunSelection();
    big_sweep = RunSweep(scaled.study(), mine_scale);
    PrintSweepTable(*big_sweep);
  }

  govdns::util::JsonWriter w;
  w.BeginObject();
  w.Kv("cores", int64_t(std::thread::hardware_concurrency()));
  WriteSweepJson(w, main_sweep);
  if (big_sweep.has_value()) {
    w.Key("mine_scale_sweep").BeginObject();
    WriteSweepJson(w, *big_sweep);
    w.EndObject();
  }
  w.EndObject();
  const std::string json = w.TakeString();

  std::printf("\n(same world seed and seed list at every point; 'Identical'\n"
              " checks the MinedDataset equals the 1-worker run — the pool\n"
              " may only change speed, never bytes. 'Projected' is the\n"
              " Amdahl speedup from the 1-worker phase decomposition: the\n"
              " honest scaling figure when cores < workers.)\n");
  std::fprintf(stderr, "[bench] mining %s\n", json.c_str());
  govdns::bench::WriteArtifactJson("GOVDNS_MINING_JSON", "BENCH_mining.json",
                                   json);
}

}  // namespace

GOVDNS_BENCH_MAIN(PrintArtifact)
