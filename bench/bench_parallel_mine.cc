// Scaling bench: the sharded PDNS miner vs worker count.
//
// Measures wall-clock seeds/sec and domains/sec of PdnsMiner::Mine at
// 1/2/4/8 workers over the shared BenchEnv world, and verifies on the way
// that the MinedDataset — domains, ns_names order, stats — is invariant to
// the worker count (parallel mining must be a pure optimization). The
// artifact records the sweep as a table, one machine-readable
// `[bench] mining` JSON line for the stats scraper, and a BENCH_mining.json
// document (path overridable via GOVDNS_MINING_JSON) so the perf trajectory
// of the mining stage is kept on disk run over run.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench/common.h"
#include "core/mining.h"
#include "util/json.h"
#include "util/table.h"

namespace {

using govdns::bench::BenchEnv;

govdns::core::MinedDataset MinePoint(int workers, double* seconds) {
  auto& env = BenchEnv::Get();
  const auto& inputs = env.study().inputs();
  govdns::core::MinerOptions opts;
  opts.workers = workers;
  govdns::core::PdnsMiner miner(inputs.pdns, inputs.mining, opts);
  const auto start = std::chrono::steady_clock::now();
  auto dataset = miner.Mine(env.seeds());
  const auto stop = std::chrono::steady_clock::now();
  if (seconds != nullptr) {
    *seconds = std::chrono::duration<double>(stop - start).count();
  }
  return dataset;
}

void BM_MineWorkers(benchmark::State& state) {
  const int workers = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto dataset = MinePoint(workers, nullptr);
    benchmark::DoNotOptimize(dataset);
  }
}
BENCHMARK(BM_MineWorkers)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->Iterations(1);

struct SweepPoint {
  int workers = 0;
  double seconds = 0.0;
  double domains_per_sec = 0.0;
  double speedup = 0.0;
  bool identical = false;
};

void PrintArtifact() {
  auto& env = BenchEnv::Get();
  const size_t seed_count = env.seeds().size();

  double serial_seconds = 0.0;
  const auto serial = MinePoint(1, &serial_seconds);

  std::vector<SweepPoint> sweep;
  for (int workers : {1, 2, 4, 8}) {
    SweepPoint point;
    point.workers = workers;
    const auto dataset = MinePoint(workers, &point.seconds);
    point.identical = dataset == serial;
    point.domains_per_sec =
        point.seconds > 0.0 ? double(dataset.domains.size()) / point.seconds
                            : 0.0;
    point.speedup = (serial_seconds > 0.0 && point.seconds > 0.0)
                        ? serial_seconds / point.seconds
                        : 0.0;
    sweep.push_back(point);
  }

  govdns::util::TextTable table(
      {"Workers", "Seconds", "Domains/sec", "Speedup", "Identical"});
  govdns::util::JsonWriter w;
  w.BeginObject();
  w.Kv("scale", env.scale());
  w.Kv("seeds", int64_t(seed_count));
  w.Kv("domains", int64_t(serial.domains.size()));
  w.Kv("ns_names", int64_t(serial.ns_names.size()));
  w.Kv("entries_scanned", serial.stats.entries_scanned);
  w.Kv("serial_seconds", serial_seconds);
  w.Key("sweep").BeginArray();
  for (const SweepPoint& p : sweep) {
    char seconds[32], rate[32], speedup[32];
    std::snprintf(seconds, sizeof seconds, "%.3f", p.seconds);
    std::snprintf(rate, sizeof rate, "%.0f", p.domains_per_sec);
    std::snprintf(speedup, sizeof speedup, "%.2fx", p.speedup);
    table.AddRow({std::to_string(p.workers), seconds, rate, speedup,
                  p.identical ? "yes" : "NO"});
    w.BeginObject()
        .Kv("workers", int64_t(p.workers))
        .Kv("seconds", p.seconds)
        .Kv("domains_per_sec", p.domains_per_sec)
        .Kv("speedup_vs_serial", p.speedup)
        .Kv("identical_to_serial", p.identical)
        .EndObject();
  }
  w.EndArray();
  w.EndObject();
  const std::string json = w.TakeString();

  std::printf("\nScaling — sharded PDNS miner vs worker count\n");
  std::printf("(same world seed and seed list at every point; 'Identical'\n");
  std::printf(" checks the MinedDataset is equal to the 1-worker run —\n");
  std::printf(" the pool may only change speed, never results)\n");
  table.Print(std::cout);
  std::fprintf(stderr, "[bench] mining %s\n", json.c_str());

  govdns::bench::WriteArtifactJson("GOVDNS_MINING_JSON", "BENCH_mining.json", json);
}

}  // namespace

GOVDNS_BENCH_MAIN(PrintArtifact)
