// Ablation: the second query round (§III-B).
//
// The paper re-queries domains whose parent returned NS records but whose
// child servers never answered, to rule out transient loss. Without the
// retry, packet loss misclassifies healthy domains as fully defective.
// This ablation runs the measurement with and without round 2 (and under
// elevated loss) and compares the defective-delegation rates.
#include <iostream>

#include "bench/common.h"
#include "core/analysis.h"
#include "core/measure.h"
#include "util/strings.h"
#include "util/table.h"

namespace {

using govdns::bench::BenchEnv;

govdns::core::DelegationSummary MeasureWith(bool second_round,
                                             double extra_loss) {
  auto& env = BenchEnv::Get();
  env.world().network().set_extra_loss_rate(extra_loss);
  // A fresh resolver so cache state is identical between arms.
  govdns::core::IterativeResolver resolver(&env.world().network(),
                                           env.world().root_server_ips());
  govdns::core::MeasurerOptions options;
  options.second_round = second_round;
  options.collect_soa = false;
  govdns::core::ActiveMeasurer measurer(&resolver, options);
  auto query_list = govdns::core::PdnsMiner::ActiveQueryList(env.mined());
  // The ablation contrasts two measurement policies; a deterministic
  // subsample keeps the repeated measurement passes affordable at scale.
  constexpr size_t kSample = 25000;
  if (query_list.size() > kSample) query_list.resize(kSample);
  auto results = measurer.MeasureAll(query_list);
  auto dataset = govdns::core::ActiveDataset::Build(
      std::move(results), env.seeds(), govdns::worldgen::MakeCountryMetas());
  env.world().network().set_extra_loss_rate(0.0);
  return govdns::core::AnalyzeDelegations(dataset);
}

void BM_SecondRound(benchmark::State& state) {
  BenchEnv::Get().mined();
  for (auto _ : state) {
    auto summary = MeasureWith(state.range(0) != 0, /*extra_loss=*/0.0);
    benchmark::DoNotOptimize(summary);
  }
}
BENCHMARK(BM_SecondRound)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond)
    ->Iterations(1);

void PrintArtifact() {
  govdns::util::TextTable table(
      {"Loss", "Configuration", "Partial %", "Full %"});
  for (double loss : {0.0, 0.15}) {
    for (bool second_round : {false, true}) {
      auto summary = MeasureWith(second_round, loss);
      double n = double(summary.domains_considered);
      table.AddRow({govdns::util::Percent(loss, 0),
                    second_round ? "with round 2 (paper)" : "single round",
                    govdns::util::Percent(summary.partially_defective / n),
                    govdns::util::Percent(summary.fully_defective / n)});
    }
  }
  std::printf("\nAblation — effect of the §III-B second query round\n");
  std::printf("(retries matter under transient loss: the 15%%-loss rows)\n");
  table.Print(std::cout);
}

}  // namespace

GOVDNS_BENCH_MAIN(PrintArtifact)
