// Ablation: the statistic summarizing NS_daily (paper Fig. 5).
//
// The paper represents a domain-year by the *mode* of its daily NS counts.
// This sweep compares mode / min / max / mean: min over-counts d_1NS (any
// transition through a 1-NS day marks the whole year), max under-counts
// them, and mean rounds away short-lived states. The mode is the stable
// middle ground.
#include <iostream>

#include "bench/common.h"
#include "core/mining.h"
#include "util/strings.h"
#include "util/table.h"

namespace {

using govdns::bench::BenchEnv;
using govdns::core::YearlyStatistic;

govdns::core::MinedDataset MineWithStatistic(YearlyStatistic stat) {
  auto& env = BenchEnv::Get();
  govdns::core::MiningConfig config;
  config.first_year = env.world().config().first_year;
  config.last_year = env.world().config().last_year;
  config.statistic = stat;
  govdns::core::PdnsMiner miner(&env.world().pdns_db(), config);
  return miner.Mine(env.seeds());
}

void BM_MineWithStatistic(benchmark::State& state) {
  BenchEnv::Get().seeds();
  for (auto _ : state) {
    auto dataset =
        MineWithStatistic(static_cast<YearlyStatistic>(state.range(0)));
    benchmark::DoNotOptimize(dataset);
  }
}
BENCHMARK(BM_MineWithStatistic)
    ->Arg(static_cast<int>(YearlyStatistic::kMode))
    ->Arg(static_cast<int>(YearlyStatistic::kMean))
    ->Unit(benchmark::kMillisecond);

void PrintArtifact() {
  static constexpr struct {
    YearlyStatistic stat;
    const char* name;
  } kStats[] = {{YearlyStatistic::kMode, "mode (paper)"},
                {YearlyStatistic::kMin, "min"},
                {YearlyStatistic::kMax, "max"},
                {YearlyStatistic::kMean, "mean"}};
  govdns::util::TextTable table(
      {"Statistic", "d_1NS 2011", "d_1NS 2020"});
  for (const auto& entry : kStats) {
    auto dataset = MineWithStatistic(entry.stat);
    auto churn = govdns::core::D1nsChurn(dataset);
    table.AddRow({entry.name,
                  govdns::util::WithCommas(churn.front().d1ns_total),
                  govdns::util::WithCommas(churn.back().d1ns_total)});
  }
  std::printf("\nAblation — NS_daily summary statistic (paper Fig. 5 uses "
              "the mode)\n");
  table.Print(std::cout);
}

}  // namespace

GOVDNS_BENCH_MAIN(PrintArtifact)
