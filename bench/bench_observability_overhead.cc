// Observability overhead bench: instrumented vs uninstrumented MeasureAll.
//
// The obs layer's contract is "free when absent, cheap when present": an
// ActiveMeasurer without an Observability* pays one null-pointer test per
// hook site, and an instrumented one shards all metric updates per worker
// and samples traces deterministically. This bench runs the same query list
// through both configurations (same world seed, fresh measurer each run, 4
// workers) and reports the relative wall-clock overhead; the acceptance bar
// is < 5%. On the way it re-checks that instrumentation cannot change the
// measured results — the resilience report must stay byte-identical.
#include <chrono>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench/common.h"
#include "core/analysis.h"
#include "core/measure.h"
#include "core/report.h"
#include "obs/obs.h"
#include "util/json.h"
#include "util/table.h"

namespace {

using govdns::bench::BenchEnv;

constexpr int kWorkers = 4;

std::vector<govdns::dns::Name> QueryList() {
  auto& env = BenchEnv::Get();
  auto list = govdns::core::PdnsMiner::ActiveQueryList(env.mined());
  constexpr size_t kSample = 20000;
  if (list.size() > kSample) list.resize(kSample);
  return list;
}

struct RunPoint {
  double seconds = 0.0;
  std::string resilience_json;
  uint64_t traced_domains = 0;
  uint64_t cut_publishes = 0;
};

RunPoint RunOnce(const std::vector<govdns::dns::Name>& list,
                 govdns::obs::Observability* obs) {
  auto& env = BenchEnv::Get();
  govdns::core::MeasurerOptions mopts;
  mopts.collect_soa = false;
  mopts.workers = kWorkers;
  mopts.obs = obs;
  govdns::core::ActiveMeasurer measurer(&env.world().network(),
                                        env.world().root_server_ips(),
                                        govdns::core::ResolverOptions(), mopts);
  const auto start = std::chrono::steady_clock::now();
  auto results = measurer.MeasureAll(list);
  const auto stop = std::chrono::steady_clock::now();

  RunPoint point;
  point.seconds = std::chrono::duration<double>(stop - start).count();
  if (obs != nullptr) {
    point.traced_domains = obs->traces().folded_total();
    point.cut_publishes = obs->cut_log().recorded();
  }
  auto dataset = govdns::core::ActiveDataset::Build(
      std::move(results), env.seeds(), govdns::worldgen::MakeCountryMetas());
  point.resilience_json =
      govdns::core::BuildResilienceReport(dataset).ToJson();
  return point;
}

govdns::obs::ObservabilityConfig ObsConfig() {
  govdns::obs::ObservabilityConfig config;
  config.trace.sample_period = 16;  // the govdns_study default
  return config;
}

void BM_MeasureAll(benchmark::State& state) {
  const auto list = QueryList();
  const bool instrumented = state.range(0) != 0;
  for (auto _ : state) {
    govdns::obs::Observability obs(ObsConfig());
    auto point = RunOnce(list, instrumented ? &obs : nullptr);
    benchmark::DoNotOptimize(point);
  }
}
BENCHMARK(BM_MeasureAll)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->Iterations(1);

void PrintArtifact() {
  const auto list = QueryList();
  // Warm the shared environment (world build, page cache) outside the
  // comparison, then interleave repetitions so drift hits both sides.
  RunOnce(list, nullptr);
  constexpr int kReps = 3;
  double plain_total = 0.0, instr_total = 0.0;
  RunPoint plain, instrumented;
  for (int rep = 0; rep < kReps; ++rep) {
    plain = RunOnce(list, nullptr);
    plain_total += plain.seconds;
    govdns::obs::Observability obs(ObsConfig());
    instrumented = RunOnce(list, &obs);
    instr_total += instrumented.seconds;
  }
  const double plain_s = plain_total / kReps;
  const double instr_s = instr_total / kReps;
  const double overhead_pct =
      plain_s > 0.0 ? (instr_s / plain_s - 1.0) * 100.0 : 0.0;
  const bool identical =
      plain.resilience_json == instrumented.resilience_json;

  govdns::util::TextTable table(
      {"Config", "Seconds", "Traced domains", "Cut publishes"});
  char plain_sec[32], instr_sec[32];
  std::snprintf(plain_sec, sizeof plain_sec, "%.3f", plain_s);
  std::snprintf(instr_sec, sizeof instr_sec, "%.3f", instr_s);
  table.AddRow({"uninstrumented", plain_sec, "-", "-"});
  table.AddRow({"instrumented", instr_sec,
                std::to_string(instrumented.traced_domains),
                std::to_string(instrumented.cut_publishes)});

  govdns::util::JsonWriter w;
  w.BeginObject();
  w.Kv("domains", int64_t(list.size()));
  w.Kv("workers", int64_t(kWorkers));
  w.Kv("reps", int64_t(kReps));
  w.Kv("uninstrumented_seconds", plain_s);
  w.Kv("instrumented_seconds", instr_s);
  w.Kv("overhead_pct", overhead_pct);
  w.Kv("results_identical", identical);
  w.EndObject();

  std::printf("\nObservability overhead — MeasureAll with and without the\n");
  std::printf("obs layer (metrics shards + 1/16 trace sampling + cut log),\n");
  std::printf("%d workers, mean of %d interleaved reps. Bar: < 5%%.\n",
              kWorkers, kReps);
  table.Print(std::cout);
  std::printf("overhead: %.2f%%, results identical: %s\n", overhead_pct,
              identical ? "yes" : "NO");
  std::fprintf(stderr, "[bench] obs_overhead %s\n", w.TakeString().c_str());
}

}  // namespace

GOVDNS_BENCH_MAIN(PrintArtifact)
