// Scaling bench: the sharded measurement pool vs worker count.
//
// Measures wall-clock domains/sec of ActiveMeasurer::MeasureAll at 1/2/4/8
// workers over one fixed query list, and verifies on the way that the
// measured results are invariant to the worker count (the pool's defining
// property — parallelism must be a pure optimization). The artifact records
// the sweep as a table plus one machine-readable `[bench] parallel` JSON
// line for the stats scraper.
#include <chrono>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench/common.h"
#include "core/analysis.h"
#include "core/measure.h"
#include "core/report.h"
#include "util/json.h"
#include "util/table.h"

namespace {

using govdns::bench::BenchEnv;

std::vector<govdns::dns::Name> QueryList() {
  auto& env = BenchEnv::Get();
  auto list = govdns::core::PdnsMiner::ActiveQueryList(env.mined());
  constexpr size_t kSample = 20000;
  if (list.size() > kSample) list.resize(kSample);
  return list;
}

struct SweepPoint {
  int workers = 0;
  double seconds = 0.0;
  double domains_per_sec = 0.0;
  std::string resilience_json;  // must match across the whole sweep
};

SweepPoint MeasurePoint(int workers,
                        const std::vector<govdns::dns::Name>& list) {
  auto& env = BenchEnv::Get();
  govdns::core::MeasurerOptions mopts;
  mopts.collect_soa = false;
  mopts.workers = workers;
  govdns::core::ActiveMeasurer measurer(&env.world().network(),
                                        env.world().root_server_ips(),
                                        govdns::core::ResolverOptions(), mopts);
  const auto start = std::chrono::steady_clock::now();
  auto results = measurer.MeasureAll(list);
  const auto stop = std::chrono::steady_clock::now();

  SweepPoint point;
  point.workers = workers;
  point.seconds = std::chrono::duration<double>(stop - start).count();
  point.domains_per_sec =
      point.seconds > 0.0 ? double(list.size()) / point.seconds : 0.0;
  auto dataset = govdns::core::ActiveDataset::Build(
      std::move(results), env.seeds(), govdns::worldgen::MakeCountryMetas());
  point.resilience_json =
      govdns::core::BuildResilienceReport(dataset).ToJson();
  return point;
}

void BM_MeasureAllWorkers(benchmark::State& state) {
  const auto list = QueryList();
  const int workers = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto point = MeasurePoint(workers, list);
    benchmark::DoNotOptimize(point);
  }
}
BENCHMARK(BM_MeasureAllWorkers)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->Iterations(1);

void PrintArtifact() {
  const auto list = QueryList();
  std::vector<SweepPoint> sweep;
  for (int workers : {1, 2, 4, 8}) {
    sweep.push_back(MeasurePoint(workers, list));
  }
  const SweepPoint& serial = sweep.front();

  govdns::util::TextTable table(
      {"Workers", "Seconds", "Domains/sec", "Speedup", "Identical"});
  govdns::util::JsonWriter w;
  w.BeginObject();
  w.Kv("domains", int64_t(list.size()));
  w.Key("sweep").BeginArray();
  for (const SweepPoint& p : sweep) {
    const bool identical = p.resilience_json == serial.resilience_json;
    const double speedup_v = (serial.seconds > 0.0 && p.seconds > 0.0)
                                 ? serial.seconds / p.seconds
                                 : 0.0;
    char seconds[32], rate[32], speedup[32];
    std::snprintf(seconds, sizeof seconds, "%.3f", p.seconds);
    std::snprintf(rate, sizeof rate, "%.0f", p.domains_per_sec);
    std::snprintf(speedup, sizeof speedup, "%.2fx", speedup_v);
    table.AddRow({std::to_string(p.workers), seconds, rate, speedup,
                  identical ? "yes" : "NO"});
    w.BeginObject()
        .Kv("workers", int64_t(p.workers))
        .Kv("seconds", p.seconds)
        .Kv("domains_per_sec", p.domains_per_sec)
        .Kv("identical_to_serial", identical)
        .EndObject();
  }
  w.EndArray();
  w.EndObject();

  std::printf("\nScaling — sharded measurement pool vs worker count\n");
  std::printf("(same world seed and query list at every point; 'Identical'\n");
  std::printf(" checks the resilience report is byte-equal to the 1-worker\n");
  std::printf(" run — the pool may only change speed, never results)\n");
  table.Print(std::cout);
  std::fprintf(stderr, "[bench] parallel %s\n", w.TakeString().c_str());
}

}  // namespace

GOVDNS_BENCH_MAIN(PrintArtifact)
