// Figure 10: defective (lame) delegations — the share of domains per
// country with a nameserver in the parent-zone NS set that does not serve
// the domain.
//
// Paper anchors: 29.5% of domains have a defective delegation; 25.4%
// partially defective; the pattern is driven by a few d_gov (Thailand,
// Turkey, Brazil, Mexico) sharing unresolvable or dead nameservers.
#include <algorithm>
#include <iostream>

#include "bench/common.h"
#include "core/analysis.h"
#include "util/strings.h"
#include "util/table.h"

namespace {

using govdns::bench::BenchEnv;

void BM_AnalyzeDelegations(benchmark::State& state) {
  auto& env = BenchEnv::Get();
  const auto& dataset = env.active();
  for (auto _ : state) {
    auto summary = govdns::core::AnalyzeDelegations(dataset);
    benchmark::DoNotOptimize(summary);
  }
}
BENCHMARK(BM_AnalyzeDelegations)->Unit(benchmark::kMillisecond);

void PrintArtifact() {
  auto& env = BenchEnv::Get();
  auto summary = govdns::core::AnalyzeDelegations(env.active());
  double n = double(summary.domains_considered);
  std::printf("\nFig. 10 — defective delegations\n");
  std::printf("domains considered: %s\n",
              govdns::util::WithCommas(summary.domains_considered).c_str());
  std::printf("partially defective: %s (paper: 25.4%%)\n",
              govdns::util::Percent(summary.partially_defective / n).c_str());
  std::printf("fully defective:     %s\n",
              govdns::util::Percent(summary.fully_defective / n).c_str());
  std::printf("any defect:          %s (paper: 29.5%%)\n",
              govdns::util::Percent((summary.partially_defective +
                                     summary.fully_defective) /
                                    n)
                  .c_str());

  auto rows = summary.by_country;
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    return a.partial + a.full > b.partial + b.full;
  });
  govdns::util::TextTable table(
      {"Country", "Domains", "Partial", "Full", "Partial %", "Full %"});
  for (size_t i = 0; i < rows.size() && i < 20; ++i) {
    const auto& row = rows[i];
    table.AddRow({row.code, govdns::util::WithCommas(row.domains),
                  govdns::util::WithCommas(row.partial),
                  govdns::util::WithCommas(row.full),
                  govdns::util::Percent(double(row.partial) / row.domains),
                  govdns::util::Percent(double(row.full) / row.domains)});
  }
  std::printf("\ntop-20 countries by defective delegations (Fig. 10a/b)\n");
  table.Print(std::cout);
}

}  // namespace

GOVDNS_BENCH_MAIN(PrintArtifact)
