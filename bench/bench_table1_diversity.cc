// Table I: for domains with multiple nameservers, the share whose
// nameserver addresses span more than one IPv4 address, /24 prefix, and
// autonomous system — total and for the 10 countries with the most data.
//
// Paper anchors (Total row): |IP|>1 89.8%, |/24|>1 71.5%, |ASN|>1 32.9%;
// Thailand's pairs collapse to one address (36.1% multi-IP); India and
// Australia are single-AS heavy (10.6% / 9.0% multi-ASN).
#include <iostream>

#include "bench/common.h"
#include "core/analysis.h"
#include "util/strings.h"
#include "util/table.h"
#include "worldgen/countries.h"

namespace {

using govdns::bench::BenchEnv;

std::vector<std::string> Top10Codes() {
  std::vector<std::string> codes;
  for (const char* code : govdns::worldgen::Top10CountryCodes()) {
    codes.emplace_back(code);
  }
  return codes;
}

void BM_AnalyzeDiversity(benchmark::State& state) {
  auto& env = BenchEnv::Get();
  const auto& dataset = env.active();
  const auto codes = Top10Codes();
  for (auto _ : state) {
    auto rows =
        govdns::core::AnalyzeDiversity(dataset, env.world().asn_db(), codes);
    benchmark::DoNotOptimize(rows);
  }
}
BENCHMARK(BM_AnalyzeDiversity)->Unit(benchmark::kMillisecond);

void PrintArtifact() {
  auto& env = BenchEnv::Get();
  auto rows = govdns::core::AnalyzeDiversity(env.active(),
                                             env.world().asn_db(), Top10Codes());
  govdns::util::TextTable table(
      {"", "Domains", "|IP|>1", "|/24|>1", "|ASN|>1"});
  for (const auto& row : rows) {
    table.AddRow({row.label, govdns::util::WithCommas(row.domains),
                  govdns::util::Percent(row.pct_multi_ip),
                  govdns::util::Percent(row.pct_multi_24),
                  govdns::util::Percent(row.pct_multi_asn)});
  }
  std::printf("\nTable I — NS address diversity of multi-NS domains\n");
  std::printf("(paper Total: 89.8%% / 71.5%% / 32.9%%)\n");
  table.Print(std::cout);

  auto levels = govdns::core::AnalyzeDiversityByLevel(env.active());
  govdns::util::TextTable ltable({"DNS level", "Domains", "|/24|>1"});
  for (const auto& row : levels) {
    ltable.AddRow({std::to_string(row.level),
                   govdns::util::WithCommas(row.domains),
                   govdns::util::Percent(row.pct_multi_24)});
  }
  std::printf("\nBy hierarchy level (paper: 87.1%% at level 2, <80%% below)\n");
  ltable.Print(std::cout);
}

}  // namespace

GOVDNS_BENCH_MAIN(PrintArtifact)
