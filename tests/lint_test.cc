#include <gtest/gtest.h>

#include <algorithm>

#include "zone/lint.h"
#include "zone/zonefile.h"

namespace govdns::zone {
namespace {

using dns::MakeA;
using dns::MakeCname;
using dns::MakeNs;
using dns::MakeSoa;
using dns::Name;

bool Has(const std::vector<LintFinding>& findings, LintRule rule) {
  return std::any_of(findings.begin(), findings.end(),
                     [&](const LintFinding& f) { return f.rule == rule; });
}

Zone HealthyZone() {
  Zone z(Name::FromString("gov.xx"));
  z.Add(MakeSoa(z.origin(), Name::FromString("ns1.gov.xx"),
                Name::FromString("hostmaster.gov.xx"), 7));
  z.Add(MakeNs(z.origin(), Name::FromString("ns1.gov.xx")));
  z.Add(MakeNs(z.origin(), Name::FromString("ns2.gov.xx")));
  z.Add(MakeA(Name::FromString("ns1.gov.xx"), geo::IPv4(10, 0, 0, 1)));
  z.Add(MakeA(Name::FromString("ns2.gov.xx"), geo::IPv4(10, 0, 0, 2)));
  z.Add(MakeA(Name::FromString("www.gov.xx"), geo::IPv4(10, 0, 0, 3)));
  return z;
}

TEST(LintTest, HealthyZoneIsClean) {
  auto findings = LintZone(HealthyZone());
  EXPECT_TRUE(findings.empty())
      << (findings.empty() ? "" : findings[0].ToString());
}

TEST(LintTest, MissingSoa) {
  Zone z(Name::FromString("gov.xx"));
  z.Add(MakeNs(z.origin(), Name::FromString("ns1.other.yy")));
  z.Add(MakeNs(z.origin(), Name::FromString("ns2.other.yy")));
  EXPECT_TRUE(Has(LintZone(z), LintRule::kMissingSoa));
}

TEST(LintTest, MultipleSoa) {
  Zone z = HealthyZone();
  z.Add(MakeSoa(z.origin(), Name::FromString("ns2.gov.xx"),
                Name::FromString("hostmaster.gov.xx"), 8));
  EXPECT_TRUE(Has(LintZone(z), LintRule::kMultipleSoa));
}

TEST(LintTest, MissingAndSingleApexNs) {
  Zone no_ns(Name::FromString("gov.xx"));
  no_ns.Add(MakeSoa(no_ns.origin(), Name::FromString("ns1.gov.xx"),
                    Name::FromString("h.gov.xx"), 1));
  EXPECT_TRUE(Has(LintZone(no_ns), LintRule::kMissingApexNs));

  Zone single(Name::FromString("gov.xx"));
  single.Add(MakeSoa(single.origin(), Name::FromString("ns1.gov.xx"),
                     Name::FromString("h.gov.xx"), 1));
  single.Add(MakeNs(single.origin(), Name::FromString("ns1.gov.xx")));
  single.Add(MakeA(Name::FromString("ns1.gov.xx"), geo::IPv4(10, 0, 0, 1)));
  auto findings = LintZone(single);
  ASSERT_TRUE(Has(findings, LintRule::kSingleApexNs));
  // Warning by default, error under strict replication policy.
  for (const auto& f : findings) {
    if (f.rule == LintRule::kSingleApexNs) {
      EXPECT_EQ(f.severity, LintSeverity::kWarning);
    }
  }
  LintOptions strict;
  strict.strict_replication = true;
  for (const auto& f : LintZone(single, strict)) {
    if (f.rule == LintRule::kSingleApexNs) {
      EXPECT_EQ(f.severity, LintSeverity::kError);
    }
  }
}

TEST(LintTest, CnameProblems) {
  Zone z = HealthyZone();
  z.Add(MakeCname(z.origin(), Name::FromString("portal.gov.xx")));
  EXPECT_TRUE(Has(LintZone(z), LintRule::kCnameAtApex));

  Zone z2 = HealthyZone();
  z2.Add(MakeCname(Name::FromString("www.gov.xx"),
                   Name::FromString("portal.gov.xx")));
  EXPECT_TRUE(Has(LintZone(z2), LintRule::kCnameAndOtherData));
}

TEST(LintTest, NsPointsToCname) {
  Zone z = HealthyZone();
  z.Add(MakeNs(z.origin(), Name::FromString("nsalias.gov.xx")));
  z.Add(MakeCname(Name::FromString("nsalias.gov.xx"),
                  Name::FromString("ns1.gov.xx")));
  EXPECT_TRUE(Has(LintZone(z), LintRule::kNsPointsToCname));
}

TEST(LintTest, RelativeNsTarget) {
  // The paper's §IV-D example: a lost-origin single-label NS target.
  Zone z = HealthyZone();
  z.Add(MakeNs(z.origin(), Name::FromString("ns")));
  EXPECT_TRUE(Has(LintZone(z), LintRule::kRelativeNsTarget));
}

TEST(LintTest, MissingGlueAndUnresolvableTarget) {
  Zone z = HealthyZone();
  // Delegation whose in-bailiwick NS has no glue but the name exists.
  z.Add(MakeNs(Name::FromString("moe.gov.xx"),
               Name::FromString("ns1.moe.gov.xx")));
  z.Add(dns::MakeTxt(Name::FromString("ns1.moe.gov.xx"), "exists"));
  auto findings = LintZone(z);
  EXPECT_TRUE(Has(findings, LintRule::kMissingGlue));

  Zone z2 = HealthyZone();
  z2.Add(MakeNs(Name::FromString("edu.gov.xx"),
                Name::FromString("ns1.edu.gov.xx")));
  EXPECT_TRUE(Has(LintZone(z2), LintRule::kUnresolvableNsTarget));
}

TEST(LintTest, OrphanGlue) {
  Zone z = HealthyZone();
  z.Add(MakeNs(Name::FromString("moe.gov.xx"),
               Name::FromString("ns1.moe.gov.xx")));
  z.Add(MakeA(Name::FromString("ns1.moe.gov.xx"), geo::IPv4(10, 0, 1, 1)));
  // Occluded data under the cut that is not glue.
  z.Add(MakeA(Name::FromString("www.moe.gov.xx"), geo::IPv4(10, 0, 1, 2)));
  auto findings = LintZone(z);
  EXPECT_TRUE(Has(findings, LintRule::kOrphanGlue));
  // The legitimate glue itself is not flagged.
  for (const auto& f : findings) {
    if (f.rule == LintRule::kOrphanGlue) {
      EXPECT_EQ(f.name.ToString(), "www.moe.gov.xx");
    }
  }
}

TEST(LintTest, TtlZeroAndSerialZero) {
  Zone z(Name::FromString("gov.xx"));
  z.Add(MakeSoa(z.origin(), Name::FromString("ns1.gov.xx"),
                Name::FromString("h.gov.xx"), 0));
  z.Add(MakeNs(z.origin(), Name::FromString("ns1.gov.xx")));
  z.Add(MakeNs(z.origin(), Name::FromString("ns2.gov.xx")));
  z.Add(MakeA(Name::FromString("ns1.gov.xx"), geo::IPv4(10, 0, 0, 1), 0));
  z.Add(MakeA(Name::FromString("ns2.gov.xx"), geo::IPv4(10, 0, 0, 2)));
  auto findings = LintZone(z);
  EXPECT_TRUE(Has(findings, LintRule::kSoaSerialZero));
  EXPECT_TRUE(Has(findings, LintRule::kTtlZero));
}

TEST(LintDelegationTest, MatchingSetsAreClean) {
  Zone z = HealthyZone();
  auto findings = LintDelegation(
      z, {Name::FromString("ns2.gov.xx"), Name::FromString("ns1.gov.xx")});
  EXPECT_TRUE(findings.empty());  // order-insensitive
}

TEST(LintDelegationTest, MismatchNamesBothSides) {
  Zone z = HealthyZone();
  auto findings = LintDelegation(
      z, {Name::FromString("ns1.gov.xx"), Name::FromString("nsold.gov.xx")});
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, LintRule::kDelegationMismatch);
  EXPECT_NE(findings[0].message.find("nsold.gov.xx"), std::string::npos);
  EXPECT_NE(findings[0].message.find("ns2.gov.xx"), std::string::npos);
}

TEST(LintTest, WorksOnParsedZoneFiles) {
  constexpr char kBroken[] = R"($ORIGIN gov.xx.
@ IN SOA ns1.gov.xx. h.gov.xx. ( 0 7200 900 1209600 300 )
@ IN NS ns1
ns1 IN A 10.0.0.1
)";
  auto zone = ParseZoneFile(kBroken, Name::FromString("gov.xx"));
  ASSERT_TRUE(zone.ok());
  auto findings = LintZone(*zone);
  EXPECT_TRUE(Has(findings, LintRule::kSingleApexNs));
  EXPECT_TRUE(Has(findings, LintRule::kSoaSerialZero));
}

TEST(LintTest, FindingToStringIsReadable) {
  Zone z(Name::FromString("gov.xx"));
  z.Add(MakeNs(z.origin(), Name::FromString("ns1.other.yy")));
  auto findings = LintZone(z);
  ASSERT_FALSE(findings.empty());
  std::string text = findings[0].ToString();
  EXPECT_NE(text.find("ERROR"), std::string::npos);
  EXPECT_NE(text.find("gov.xx"), std::string::npos);
}

}  // namespace
}  // namespace govdns::zone
