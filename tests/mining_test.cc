#include <gtest/gtest.h>

#include "core/mining.h"

namespace govdns::core {
namespace {

using dns::Name;
using dns::RRType;
using util::DayFromYmd;

std::vector<SeedDomain> OneSeed() {
  return {{0, Name::FromString("gov.xx"), SeedVerification::kRegistryPolicy,
           false}};
}

TEST(DisposableHeuristicTest, MatchesHexTails) {
  EXPECT_TRUE(
      PdnsMiner::LooksDisposable(Name::FromString("portal-4f3a9c.gov.xx")));
  EXPECT_FALSE(PdnsMiner::LooksDisposable(Name::FromString("portal.gov.xx")));
  EXPECT_FALSE(
      PdnsMiner::LooksDisposable(Name::FromString("health-xyzwvu.gov.xx")));
  EXPECT_FALSE(PdnsMiner::LooksDisposable(Name::FromString("a-1.gov.xx")));
}

TEST(MinerTest, StabilityFilterDropsTransients) {
  pdns::PdnsDatabase db(/*merge_gap_days=*/0);
  Name domain = Name::FromString("moe.gov.xx");
  db.ObserveInterval(domain, RRType::kNS, "ns1.moe.gov.xx",
                     {DayFromYmd(2015, 1, 1), DayFromYmd(2015, 12, 31)});
  db.ObserveInterval(domain, RRType::kNS, "ns1.ddos.net",
                     {DayFromYmd(2015, 6, 1), DayFromYmd(2015, 6, 3)});
  MiningConfig config;
  PdnsMiner miner(&db, config);
  auto dataset = miner.Mine(OneSeed());
  ASSERT_EQ(dataset.domains.size(), 1u);
  const auto& year = dataset.domains[0].years[2015 - 2011];
  EXPECT_EQ(year.mode_ns_count, 1);
  ASSERT_EQ(year.ns_ids.size(), 1u);
  EXPECT_EQ(dataset.NsName(year.ns_ids[0]), "ns1.moe.gov.xx");
}

TEST(MinerTest, ModeReflectsMajorityOfDays) {
  pdns::PdnsDatabase db(/*merge_gap_days=*/0);
  Name domain = Name::FromString("moe.gov.xx");
  // ns1 active all year; ns2 only 100 days: mode is 1 (265 days at count 1).
  db.ObserveInterval(domain, RRType::kNS, "ns1.x",
                     {DayFromYmd(2015, 1, 1), DayFromYmd(2015, 12, 31)});
  db.ObserveInterval(domain, RRType::kNS, "ns2.x",
                     {DayFromYmd(2015, 1, 1), DayFromYmd(2015, 4, 10)});
  PdnsMiner miner(&db, MiningConfig());
  auto dataset = miner.Mine(OneSeed());
  EXPECT_EQ(dataset.domains[0].years[4].mode_ns_count, 1);
}

TEST(MinerTest, ModeTwoWhenPairDominates) {
  pdns::PdnsDatabase db(/*merge_gap_days=*/0);
  Name domain = Name::FromString("moe.gov.xx");
  db.ObserveInterval(domain, RRType::kNS, "ns1.x",
                     {DayFromYmd(2015, 1, 1), DayFromYmd(2015, 12, 31)});
  db.ObserveInterval(domain, RRType::kNS, "ns2.x",
                     {DayFromYmd(2015, 1, 1), DayFromYmd(2015, 9, 30)});
  PdnsMiner miner(&db, MiningConfig());
  auto dataset = miner.Mine(OneSeed());
  EXPECT_EQ(dataset.domains[0].years[4].mode_ns_count, 2);
}

TEST(MinerTest, StatisticVariants) {
  pdns::PdnsDatabase db(/*merge_gap_days=*/0);
  Name domain = Name::FromString("moe.gov.xx");
  db.ObserveInterval(domain, RRType::kNS, "ns1.x",
                     {DayFromYmd(2015, 1, 1), DayFromYmd(2015, 12, 31)});
  db.ObserveInterval(domain, RRType::kNS, "ns2.x",
                     {DayFromYmd(2015, 7, 1), DayFromYmd(2015, 12, 31)});
  auto mine = [&](YearlyStatistic stat) {
    MiningConfig config;
    config.statistic = stat;
    PdnsMiner miner(&db, config);
    return miner.Mine(OneSeed()).domains[0].years[4].mode_ns_count;
  };
  EXPECT_EQ(mine(YearlyStatistic::kMin), 1);
  EXPECT_EQ(mine(YearlyStatistic::kMax), 2);
  // 181 days at 1, 184 days at 2 -> mode 2, mean rounds to 2.
  EXPECT_EQ(mine(YearlyStatistic::kMode), 2);
  EXPECT_EQ(mine(YearlyStatistic::kMean), 2);
}

TEST(MinerTest, StabilityBoundaryMatchesPaper) {
  // §III-C: stable iff last_seen − first_seen >= 7 (the gap, not the
  // inclusive calendar length). The 7-calendar-day sighting below has only a
  // 6-day gap and must be dropped — the old `LengthDays() < stability_days`
  // predicate kept it.
  auto mine_span = [](int span_days) {
    pdns::PdnsDatabase db(/*merge_gap_days=*/0);
    db.ObserveInterval(Name::FromString("moe.gov.xx"), RRType::kNS, "ns1.x",
                       {DayFromYmd(2015, 3, 1),
                        DayFromYmd(2015, 3, 1) + span_days - 1});
    PdnsMiner miner(&db, MiningConfig());
    auto dataset = miner.Mine(OneSeed());
    return dataset.domains.at(0).HasData(2015 - 2011);
  };
  EXPECT_FALSE(mine_span(6));  // gap 5: unstable either way
  EXPECT_FALSE(mine_span(7));  // gap 6: the off-by-one boundary
  EXPECT_TRUE(mine_span(8));   // gap 7: stable
}

TEST(MinerTest, StabilityBoundaryCountedInStats) {
  pdns::PdnsDatabase db(/*merge_gap_days=*/0);
  Name domain = Name::FromString("moe.gov.xx");
  db.ObserveInterval(domain, RRType::kNS, "ns1.x",
                     {DayFromYmd(2015, 3, 1), DayFromYmd(2015, 3, 7)});
  db.ObserveInterval(domain, RRType::kNS, "ns2.x",
                     {DayFromYmd(2015, 3, 1), DayFromYmd(2015, 3, 8)});
  PdnsMiner miner(&db, MiningConfig());
  auto dataset = miner.Mine(OneSeed());
  EXPECT_EQ(dataset.stats.seeds, 1);
  EXPECT_EQ(dataset.stats.entries_scanned, 2);
  EXPECT_EQ(dataset.stats.entries_unstable, 1);
  EXPECT_EQ(dataset.stats.domains, 1);
  EXPECT_EQ(dataset.stats.domains_disposable, 0);
  EXPECT_EQ(dataset.stats.domains_in_active_window, 0);
}

TEST(MinerTest, RequireStableForActiveTightensQueryList) {
  pdns::PdnsDatabase db(/*merge_gap_days=*/0);
  // A 2-day wonder inside the collection window.
  db.ObserveInterval(Name::FromString("brief.gov.xx"), RRType::kNS, "ns1.x",
                     {DayFromYmd(2020, 5, 1), DayFromYmd(2020, 5, 2)});
  MiningConfig config;
  config.require_stable_for_active = true;
  PdnsMiner miner(&db, config);
  auto dataset = miner.Mine(OneSeed());
  ASSERT_EQ(dataset.domains.size(), 1u);
  EXPECT_FALSE(dataset.domains[0].in_active_window);
  EXPECT_TRUE(PdnsMiner::ActiveQueryList(dataset).empty());
}

TEST(MinerTest, YearBoundariesRespected) {
  pdns::PdnsDatabase db(/*merge_gap_days=*/0);
  Name domain = Name::FromString("moe.gov.xx");
  db.ObserveInterval(domain, RRType::kNS, "ns1.x",
                     {DayFromYmd(2014, 12, 1), DayFromYmd(2015, 1, 20)});
  PdnsMiner miner(&db, MiningConfig());
  auto dataset = miner.Mine(OneSeed());
  const auto& d = dataset.domains[0];
  EXPECT_TRUE(d.HasData(2014 - 2011));
  EXPECT_TRUE(d.HasData(2015 - 2011));
  EXPECT_FALSE(d.HasData(2016 - 2011));
  EXPECT_FALSE(d.HasData(2013 - 2011));
}

TEST(MinerTest, ModeSweepCountsYearEndDay) {
  pdns::PdnsDatabase db(/*merge_gap_days=*/0);
  Name domain = Name::FromString("moe.gov.xx");
  // ns1 all year; ns2 Jul 2 .. Dec 31. Inclusive of Dec 31 that is 182 days
  // at count 1 vs 183 at count 2 -> mode 2. An off-by-one that drops the
  // year-end day (the sweep's `to+1` delta lands on Jan 1) ties 182/182 and
  // flips the mode to 1.
  db.ObserveInterval(domain, RRType::kNS, "ns1.x",
                     {DayFromYmd(2015, 1, 1), DayFromYmd(2015, 12, 31)});
  db.ObserveInterval(domain, RRType::kNS, "ns2.x",
                     {DayFromYmd(2015, 7, 2), DayFromYmd(2015, 12, 31)});
  PdnsMiner miner(&db, MiningConfig());
  auto dataset = miner.Mine(OneSeed());
  EXPECT_EQ(dataset.domains[0].years[2015 - 2011].mode_ns_count, 2);
  // The Jan 1, 2016 sweep delta must not leak a phantom 2016 sighting.
  EXPECT_FALSE(dataset.domains[0].HasData(2016 - 2011));
}

TEST(MinerTest, ModeSweepSplitsCrossYearInterval) {
  pdns::PdnsDatabase db(/*merge_gap_days=*/0);
  Name domain = Name::FromString("moe.gov.xx");
  // Dec 1, 2015 .. Jan 31, 2016 clamps to 31 in-year days on each side.
  db.ObserveInterval(domain, RRType::kNS, "ns1.x",
                     {DayFromYmd(2015, 12, 1), DayFromYmd(2016, 1, 31)});
  // A second nameserver only around the new year: Dec 17 .. Jan 15 is 15
  // days at count 2 in each year — a minority against 16 single-NS days in
  // December and 16 in January, so both years keep mode 1. Counting the
  // boundary day twice (or leaking the `to+1` delta across the year edge)
  // would flip one of them.
  db.ObserveInterval(domain, RRType::kNS, "ns2.x",
                     {DayFromYmd(2015, 12, 17), DayFromYmd(2016, 1, 15)});
  PdnsMiner miner(&db, MiningConfig());
  auto dataset = miner.Mine(OneSeed());
  const auto& d = dataset.domains[0];
  EXPECT_EQ(d.years[2015 - 2011].mode_ns_count, 1);
  EXPECT_EQ(d.years[2016 - 2011].mode_ns_count, 1);
  EXPECT_FALSE(d.HasData(2014 - 2011));
  EXPECT_FALSE(d.HasData(2017 - 2011));
}

TEST(MinerTest, ActiveWindowUsesUnfilteredSightings) {
  pdns::PdnsDatabase db(/*merge_gap_days=*/0);
  // Only a 2-day sighting inside the collection window: dropped from the
  // yearly trend data, still in the query list (the paper extracted raw
  // FQDNs for querying).
  Name domain = Name::FromString("brief.gov.xx");
  db.ObserveInterval(domain, RRType::kNS, "ns1.x",
                     {DayFromYmd(2020, 5, 1), DayFromYmd(2020, 5, 2)});
  PdnsMiner miner(&db, MiningConfig());
  auto dataset = miner.Mine(OneSeed());
  ASSERT_EQ(dataset.domains.size(), 1u);
  EXPECT_FALSE(dataset.domains[0].HasData(2020 - 2011));
  EXPECT_TRUE(dataset.domains[0].in_active_window);
  EXPECT_EQ(PdnsMiner::ActiveQueryList(dataset).size(), 1u);
}

TEST(MinerTest, QueryListExcludesDisposablesAndStale) {
  pdns::PdnsDatabase db(/*merge_gap_days=*/0);
  db.ObserveInterval(Name::FromString("real.gov.xx"), RRType::kNS, "a",
                     {DayFromYmd(2020, 1, 1), DayFromYmd(2020, 8, 1)});
  db.ObserveInterval(Name::FromString("junk-0a1b2c.gov.xx"), RRType::kNS, "b",
                     {DayFromYmd(2020, 1, 1), DayFromYmd(2020, 8, 1)});
  db.ObserveInterval(Name::FromString("old.gov.xx"), RRType::kNS, "c",
                     {DayFromYmd(2015, 1, 1), DayFromYmd(2016, 8, 1)});
  PdnsMiner miner(&db, MiningConfig());
  auto dataset = miner.Mine(OneSeed());
  auto list = PdnsMiner::ActiveQueryList(dataset);
  ASSERT_EQ(list.size(), 1u);
  EXPECT_EQ(list[0].ToString(), "real.gov.xx");
}

TEST(MinerTest, WorkerCountCannotChangeTheDataset) {
  // Multi-seed database with NS hostnames shared across seeds, so the
  // worker-local intern tables genuinely disagree before the fold remaps
  // them. Any worker count must produce the byte-identical MinedDataset —
  // ns_names order and stats included.
  pdns::PdnsDatabase db(/*merge_gap_days=*/0);
  std::vector<SeedDomain> seeds;
  for (int c = 0; c < 5; ++c) {
    std::string cc = std::string("a") + char('a' + c);
    seeds.push_back({c, Name::FromString("gov." + cc),
                     SeedVerification::kRegistryPolicy, false});
    for (int d = 0; d < 4; ++d) {
      Name domain = Name::FromString("d" + std::to_string(d) + ".gov." + cc);
      // "shared.host.zz" appears under every seed; the rest are seed-local.
      db.ObserveInterval(domain, RRType::kNS, "shared.host.zz",
                         {DayFromYmd(2012 + c, 1, 1), DayFromYmd(2019, 6, 1)});
      db.ObserveInterval(domain, RRType::kNS,
                         "ns" + std::to_string(d) + ".gov." + cc,
                         {DayFromYmd(2013, 1, 1), DayFromYmd(2020, 6, 1)});
      db.ObserveInterval(domain, RRType::kNS, "flaky.host.zz",
                         {DayFromYmd(2016, 5, 1), DayFromYmd(2016, 5, 3)});
    }
  }
  auto mine = [&](int workers) {
    MinerOptions options;
    options.workers = workers;
    PdnsMiner miner(&db, MiningConfig(), options);
    return miner.Mine(seeds);
  };
  const MinedDataset serial = mine(1);
  EXPECT_EQ(serial.stats.seeds, 5);
  EXPECT_EQ(serial.stats.domains, 20);
  EXPECT_GT(serial.stats.entries_unstable, 0);
  // First-appearance intern order: seed 0's first domain sees the shared
  // host first, then its own ns0.
  ASSERT_GE(serial.ns_names.size(), 2u);
  EXPECT_EQ(serial.ns_names[0], "shared.host.zz");
  EXPECT_EQ(serial.ns_names[1], "ns0.gov.aa");
  for (int workers : {2, 3, 7, 16}) {
    const MinedDataset pooled = mine(workers);
    EXPECT_TRUE(pooled == serial) << "workers=" << workers;
    EXPECT_EQ(pooled.ns_names, serial.ns_names) << "workers=" << workers;
    EXPECT_EQ(pooled.stats, serial.stats) << "workers=" << workers;
  }
}

TEST(AggregatesTest, CountPerYearAndChurn) {
  pdns::PdnsDatabase db(/*merge_gap_days=*/0);
  // One domain 2011-2020 with a single NS; a second domain appears in 2015
  // as d_1NS; a third is always dual-NS.
  db.ObserveInterval(Name::FromString("a.gov.xx"), RRType::kNS, "ns1.a.gov.xx",
                     {DayFromYmd(2011, 1, 1), DayFromYmd(2020, 12, 31)});
  db.ObserveInterval(Name::FromString("b.gov.xx"), RRType::kNS, "ns1.b.gov.xx",
                     {DayFromYmd(2015, 2, 1), DayFromYmd(2020, 12, 31)});
  db.ObserveInterval(Name::FromString("c.gov.xx"), RRType::kNS, "x1.host.zz",
                     {DayFromYmd(2011, 1, 1), DayFromYmd(2020, 12, 31)});
  db.ObserveInterval(Name::FromString("c.gov.xx"), RRType::kNS, "x2.host.zz",
                     {DayFromYmd(2011, 1, 1), DayFromYmd(2020, 12, 31)});
  PdnsMiner miner(&db, MiningConfig());
  auto dataset = miner.Mine(OneSeed());

  auto counts = CountPerYear(dataset);
  ASSERT_EQ(counts.size(), 10u);
  EXPECT_EQ(counts[0].domains, 2);
  EXPECT_EQ(counts[5].domains, 3);
  EXPECT_EQ(counts[0].nameservers, 3);
  EXPECT_EQ(counts[0].countries, 1);

  auto churn = D1nsChurn(dataset);
  EXPECT_EQ(churn[0].d1ns_total, 1);  // a only
  EXPECT_EQ(churn[5].d1ns_total, 2);  // a and b
  // In 2016, b was not d_1NS in 2011 -> 50% overlap with 2011.
  EXPECT_DOUBLE_EQ(churn[5].pct_overlap_2011, 0.5);
  EXPECT_DOUBLE_EQ(churn[5].pct_2011_cohort_gone, 0.0);

  auto priv = PrivateShare(dataset, OneSeed());
  // a and b are private (NS inside gov.xx); c is external.
  EXPECT_DOUBLE_EQ(priv[5].pct_d1ns_private, 1.0);
  EXPECT_NEAR(priv[5].pct_all_private, 2.0 / 3.0, 1e-9);
}

}  // namespace
}  // namespace govdns::core
