// Multi-vantage fault-tolerance acceptance (DESIGN.md §6k): N supervised
// vantage shards — forked processes, each running the full checkpointed
// pipeline against its own network view — are murdered at EVERY journal
// write point (kill modes cycling, real `_exit`, supervisor restart from
// the shard's own journal) and deadline-expired as wall-clock stragglers;
// the merged cross-vantage disagreement report must stay byte-identical to
// an uninterrupted run, for {1,4} measurement workers and N in {2,3}. The
// merge itself must be a pure function of the summary set: every
// permutation of completion order renders the same JSON and the same text
// section. A shard whose restart budget is exhausted is declared lost and
// excluded from the merge, never silently dropped.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "ckpt/fault.h"
#include "ckpt/journal.h"
#include "core/export.h"
#include "core/report.h"
#include "core/study.h"
#include "core/study_ckpt.h"
#include "core/vantage.h"
#include "worldgen/adapter.h"
#include "worldgen/countries.h"
#include "worldgen/world.h"

namespace govdns {
namespace {

namespace fs = std::filesystem;

// Same world shape as the ckpt_resume sweep: small but hostile enough that
// vantage overlays produce genuine cross-vantage disagreement.
constexpr double kScale = 0.004;
constexpr size_t kBatch = 200;
constexpr uint64_t kWorldFp = 0x76616E745EEDull;

std::string TempDir(const std::string& tag) {
  std::string dir =
      (fs::temp_directory_path() / ("govdns_vantage_" + tag)).string();
  fs::remove_all(dir);
  return dir;
}

worldgen::WorldConfig SmallWorld() {
  worldgen::WorldConfig config;
  config.scale = kScale;
  config.chaos = simnet::ChaosProfile::Hostile();
  return config;
}

// Fault injected into exactly one shard. The kill fires through the ckpt
// fault plan with exit_process=true — a real process death at a real write
// point, which the supervisor must absorb by restarting the shard from its
// journal. The stall wedges an attempt on the wall clock so the
// supervisor's deadline SIGKILL fires instead.
struct ShardFault {
  int vantage = -1;
  uint64_t kill_at_write = 0;
  ckpt::KillMode mode = ckpt::KillMode::kAfterCommit;
  bool kill_every_attempt = false;  // default: attempt 0 only
  uint64_t stall_ms = 0;
};

struct MultiRun {
  std::vector<core::VantageOutcome> outcomes;
  core::MultiVantageReport merged;
  std::string json;
};

const core::VantageOutcome& OutcomeOf(const MultiRun& run, int vantage) {
  return run.outcomes.at(static_cast<size_t>(vantage));
}

// One supervised multi-vantage run, mirroring the govdns_study --vantages
// orchestration: the world is built once in the parent, each forked shard
// applies its own overlay and journals into its private directory, and the
// parent folds surviving vantage frames into the deterministic merge.
MultiRun RunMulti(const std::string& dir, int vantages, int workers,
                  core::VantageSupervisorOptions options,
                  ShardFault fault = {}) {
  auto world = worldgen::BuildWorld(SmallWorld());
  std::vector<worldgen::VantageProfile> profiles;
  std::vector<std::string> names;
  for (int v = 0; v < vantages; ++v) {
    profiles.push_back(worldgen::MakeDefaultVantageProfile(v));
    names.push_back(profiles.back().name);
  }
  // The study-identity half of every shard fingerprint. Computed here
  // pre-overlay; matches each child's post-overlay value because vantage
  // overlays only touch network behaviors, never the input shape.
  uint64_t study_fp = 0;
  {
    worldgen::PolicyLookupAdapter policy(&world->registry_policy());
    study_fp = core::StudyInputsFingerprint(
        worldgen::MakeStudyInputs(*world, &policy));
  }
  std::vector<std::string> top10;
  for (const char* code : worldgen::Top10CountryCodes()) {
    top10.emplace_back(code);
  }

  core::VantageSupervisor::ChildFn child_fn = [&](const std::string& name,
                                                  int attempt) -> int {
    try {
      const worldgen::VantageProfile* profile = nullptr;
      int index = -1;
      for (size_t i = 0; i < profiles.size(); ++i) {
        if (profiles[i].name == name) {
          profile = &profiles[i];
          index = static_cast<int>(i);
        }
      }
      if (profile == nullptr) return 3;
      if (fault.stall_ms > 0 && fault.vantage == index && attempt == 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(fault.stall_ms));
      }
      world->ApplyVantage(*profile);
      auto bound = worldgen::MakeStudy(*world);

      core::StudyCheckpointOptions opts;
      opts.batch_size = kBatch;
      opts.resume = attempt > 0;  // restarts always resume
      core::StudyCheckpoint ckpt(core::VantageJournalDir(dir, name),
                                 core::VantageBaseFingerprint(kWorldFp, name),
                                 opts);
      if (fault.kill_at_write > 0 && fault.vantage == index &&
          (fault.kill_every_attempt || attempt == 0)) {
        ckpt::CkptFaultPlan plan;
        plan.kill_at_write = fault.kill_at_write;
        plan.mode = fault.mode;
        plan.exit_process = true;  // a real death, not an exception
        ckpt.set_fault_plan(plan);
      }
      bound.study->AttachCheckpoint(&ckpt);

      bound.study->RunSelection();
      bound.study->RunMining();
      core::MeasurerOptions mopts;
      mopts.workers = workers;
      bound.study->RunActiveMeasurement(mopts);

      const std::string report_json = core::ExportReportJson(
          core::BuildReport(*bound.study, top10));
      ckpt.SaveReportJson(report_json);
      const uint64_t full_fp = ckpt::MixFingerprint(
          core::VantageBaseFingerprint(kWorldFp, name), study_fp);
      ckpt.SaveVantage(core::BuildVantageSummary(
          name, full_fp, bound.study->active(), report_json));
      return 0;
    } catch (...) {
      return 1;
    }
  };

  core::VantageSupervisor supervisor(names, options);
  MultiRun out;
  out.outcomes = supervisor.Run(child_fn);

  std::vector<core::VantageSummary> summaries;
  std::vector<std::string> lost;
  for (const core::VantageOutcome& outcome : out.outcomes) {
    if (outcome.lost) {
      lost.push_back(outcome.name);
      continue;
    }
    const uint64_t full_fp = ckpt::MixFingerprint(
        core::VantageBaseFingerprint(kWorldFp, outcome.name), study_fp);
    auto summary = core::LoadVantageSummary(
        core::VantageJournalDir(dir, outcome.name), full_fp);
    if (!summary) {
      lost.push_back(outcome.name);
      continue;
    }
    summaries.push_back(*std::move(summary));
  }
  out.merged =
      core::MergeVantageSummaries(std::move(summaries), std::move(lost));
  out.json = core::ExportMultiVantageJson(out.merged);
  return out;
}

core::VantageSupervisorOptions FastPoll() {
  core::VantageSupervisorOptions options;
  options.poll_ms = 5;
  return options;
}

// Write points per shard in a clean run: every frame name is committed
// exactly once, so the .ck census of any one shard's journal is the sweep
// bound (vantages share it — selection and batching are vantage-blind).
uint64_t CountWritePoints(const std::string& dir, const std::string& name) {
  uint64_t n = 0;
  for (const auto& entry :
       fs::directory_iterator(core::VantageJournalDir(dir, name))) {
    if (entry.path().extension() == ".ck") ++n;
  }
  return n;
}

// The full acceptance sweep for one (workers, vantages) cell: a clean
// baseline, then a shard murdered at every write point (victim and kill
// mode cycling), then a wall-clock straggler deadline-killed mid-stall.
// Every merged report must match the baseline byte-for-byte.
void KillAndStragglerSweep(int workers, int vantages) {
  const std::string tag =
      "w" + std::to_string(workers) + "_n" + std::to_string(vantages);
  const std::string base_dir = TempDir(tag + "_base");
  MultiRun baseline = RunMulti(base_dir, vantages, workers, FastPoll());
  ASSERT_EQ(baseline.merged.lost.size(), 0u);
  ASSERT_EQ(static_cast<int>(baseline.merged.vantages.size()), vantages);
  ASSERT_GT(baseline.merged.countries_compared, 0);
  for (const core::VantageOutcome& outcome : baseline.outcomes) {
    EXPECT_EQ(outcome.attempts, 1) << outcome.name;
  }
  const uint64_t writes = CountWritePoints(base_dir, baseline.merged.order[0]);
  ASSERT_GE(writes, 5u);
  fs::remove_all(base_dir);

  constexpr ckpt::KillMode kModes[] = {
      ckpt::KillMode::kBeforeWrite, ckpt::KillMode::kAfterTemp,
      ckpt::KillMode::kTruncate, ckpt::KillMode::kCorrupt,
      ckpt::KillMode::kAfterCommit};
  for (uint64_t k = 1; k <= writes; ++k) {
    const std::string dir = TempDir(tag + "_k" + std::to_string(k));
    ShardFault fault;
    fault.vantage = static_cast<int>(k % static_cast<uint64_t>(vantages));
    fault.kill_at_write = k;
    fault.mode = kModes[k % 5];
    MultiRun killed = RunMulti(dir, vantages, workers, FastPoll(), fault);
    const core::VantageOutcome& victim = OutcomeOf(killed, fault.vantage);
    ASSERT_FALSE(victim.lost) << "write " << k;
    ASSERT_EQ(victim.attempts, 2)
        << "plan at write " << k << " never fired for " << victim.name;
    EXPECT_EQ(killed.json, baseline.json)
        << "merged report diverged after killing " << victim.name
        << " at write " << k << " (" << ckpt::KillModeName(fault.mode) << ")";
    fs::remove_all(dir);
  }

  // Straggler: attempt 0 of shard 0 wedges on the wall clock far past the
  // deadline; the supervisor SIGKILLs it and the restart resumes clean.
  const std::string stall_dir = TempDir(tag + "_stall");
  core::VantageSupervisorOptions deadline = FastPoll();
  deadline.deadline_ms = 1000;
  ShardFault stall;
  stall.vantage = 0;
  stall.stall_ms = 30000;
  MultiRun straggler = RunMulti(stall_dir, vantages, workers, deadline, stall);
  const core::VantageOutcome& slow = OutcomeOf(straggler, 0);
  ASSERT_FALSE(slow.lost);
  EXPECT_GE(slow.deadline_kills, 1);
  EXPECT_EQ(slow.attempts, 2);
  EXPECT_EQ(straggler.json, baseline.json)
      << "merged report diverged after deadline-killing " << slow.name;
  fs::remove_all(stall_dir);
}

TEST(MultiVantageTest, KillEveryWritePointOneWorkerTwoVantages) {
  KillAndStragglerSweep(/*workers=*/1, /*vantages=*/2);
}

TEST(MultiVantageTest, KillEveryWritePointPoolTwoVantages) {
  KillAndStragglerSweep(/*workers=*/4, /*vantages=*/2);
}

TEST(MultiVantageTest, KillEveryWritePointOneWorkerThreeVantages) {
  KillAndStragglerSweep(/*workers=*/1, /*vantages=*/3);
}

TEST(MultiVantageTest, KillEveryWritePointPoolThreeVantages) {
  KillAndStragglerSweep(/*workers=*/4, /*vantages=*/3);
}

// Worker-pool size may cost or save wall-clock time inside each shard but
// must never change the merged bytes.
TEST(MultiVantageTest, WorkerPoolNeverChangesMergedBytes) {
  const std::string dir1 = TempDir("pool_w1");
  const std::string dir4 = TempDir("pool_w4");
  MultiRun one = RunMulti(dir1, /*vantages=*/2, /*workers=*/1, FastPoll());
  MultiRun four = RunMulti(dir4, /*vantages=*/2, /*workers=*/4, FastPoll());
  ASSERT_FALSE(one.merged.vantages.empty());
  EXPECT_EQ(one.json, four.json);
  fs::remove_all(dir1);
  fs::remove_all(dir4);
}

// The merge is a pure, order-free function of the summary set: every
// permutation of collection order produces byte-identical JSON and a
// byte-identical rendered disagreement section.
TEST(MultiVantageTest, MergeIsByteIdenticalAcrossCompletionOrders) {
  const std::string dir = TempDir("perm");
  MultiRun baseline = RunMulti(dir, /*vantages=*/3, /*workers=*/1, FastPoll());
  ASSERT_EQ(baseline.merged.vantages.size(), 3u);

  std::ostringstream base_text;
  core::PrintMultiVantageReport(baseline.merged, base_text);

  std::vector<core::VantageSummary> summaries = baseline.merged.vantages;
  std::sort(summaries.begin(), summaries.end(),
            [](const core::VantageSummary& a, const core::VantageSummary& b) {
              return a.name < b.name;
            });
  int permutations = 0;
  do {
    core::MultiVantageReport merged = core::MergeVantageSummaries(
        summaries, /*lost=*/{});
    EXPECT_EQ(core::ExportMultiVantageJson(merged), baseline.json)
        << "permutation " << permutations;
    std::ostringstream text;
    core::PrintMultiVantageReport(merged, text);
    EXPECT_EQ(text.str(), base_text.str()) << "permutation " << permutations;
    ++permutations;
  } while (std::next_permutation(
      summaries.begin(), summaries.end(),
      [](const core::VantageSummary& a, const core::VantageSummary& b) {
        return a.name < b.name;
      }));
  EXPECT_EQ(permutations, 6);
  fs::remove_all(dir);
}

// A shard that dies on every attempt exhausts its restart budget, is
// declared lost, and is excluded from — but named by — the merge.
TEST(MultiVantageTest, ShardDeadOnEveryAttemptIsDeclaredLost) {
  const std::string dir = TempDir("lost");
  core::VantageSupervisorOptions options = FastPoll();
  options.max_restarts = 1;
  ShardFault fault;
  fault.vantage = 1;
  fault.kill_at_write = 1;
  fault.kill_every_attempt = true;
  MultiRun run = RunMulti(dir, /*vantages=*/2, /*workers=*/1, options, fault);
  const core::VantageOutcome& dead = OutcomeOf(run, 1);
  EXPECT_TRUE(dead.lost);
  EXPECT_EQ(dead.attempts, 2);  // budget of 1 restart, both murdered
  ASSERT_EQ(run.merged.lost.size(), 1u);
  EXPECT_EQ(run.merged.lost[0], dead.name);
  ASSERT_EQ(run.merged.vantages.size(), 1u);
  EXPECT_NE(run.merged.vantages[0].name, dead.name);
  // One survivor: no pair to disagree, but the lost shard must be named.
  EXPECT_NE(run.json.find(dead.name), std::string::npos);
  fs::remove_all(dir);
}

}  // namespace
}  // namespace govdns
