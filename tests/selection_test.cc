#include <gtest/gtest.h>

#include <map>

#include "core/selection.h"
#include "core/study.h"
#include "worldgen/adapter.h"
#include "worldgen/world.h"

namespace govdns::core {
namespace {

using dns::Name;

class MapPolicy : public RegistryPolicyLookup {
 public:
  std::optional<bool> IsRestricted(const Name& suffix) const override {
    auto it = entries_.find(suffix);
    if (it == entries_.end()) return std::nullopt;
    return it->second;
  }
  std::map<Name, bool> entries_;
};

// Extraction logic without any network: use a resolver over an empty net.
class ExtractionTest : public ::testing::Test {
 protected:
  ExtractionTest()
      : net_(1), resolver_(&net_, {geo::IPv4(1, 1, 1, 1)}) {
    psl_.AddSuffix(Name::FromString("au"));
    psl_.AddSuffix(Name::FromString("no"));
    psl_.AddSuffix(Name::FromString("la"));
    psl_.AddSuffix(Name::FromString("gov.au"));
    psl_.AddSuffix(Name::FromString("gov.la"));
    policy_.entries_[Name::FromString("gov.au")] = true;
    policy_.entries_[Name::FromString("com.au")] = false;
  }

  simnet::SimNetwork net_;
  IterativeResolver resolver_;
  registrar::PublicSuffixList psl_;
  MapPolicy policy_;
};

TEST_F(ExtractionTest, RestrictedSuffixWins) {
  SeedSelector selector(&resolver_, &psl_, &policy_);
  auto seed = selector.ExtractSeed(0, Name::FromString("www.australia.gov.au"));
  ASSERT_TRUE(seed.has_value());
  EXPECT_EQ(seed->d_gov.ToString(), "gov.au");
  EXPECT_EQ(seed->verification, SeedVerification::kRegistryPolicy);
}

TEST_F(ExtractionTest, UndocumentedSuffixFallsBackToRegisteredDomain) {
  SeedSelector selector(&resolver_, &psl_, &policy_);
  // gov.la has no policy documentation: the registered domain under the
  // public suffix is the anchor (the paper's laogov.gov.la case).
  auto seed = selector.ExtractSeed(1, Name::FromString("www.laogov.gov.la"));
  ASSERT_TRUE(seed.has_value());
  EXPECT_EQ(seed->d_gov.ToString(), "laogov.gov.la");
  EXPECT_EQ(seed->verification, SeedVerification::kRegisteredDomain);
}

TEST_F(ExtractionTest, PlainRegisteredDomain) {
  SeedSelector selector(&resolver_, &psl_, &policy_);
  // www.regjeringen.no -> regjeringen.no (Norway).
  auto seed = selector.ExtractSeed(2, Name::FromString("www.regjeringen.no"));
  ASSERT_TRUE(seed.has_value());
  EXPECT_EQ(seed->d_gov.ToString(), "regjeringen.no");
}

TEST_F(ExtractionTest, NoSuffixMatchYieldsNothing) {
  SeedSelector selector(&resolver_, &psl_, &policy_);
  EXPECT_FALSE(
      selector.ExtractSeed(3, Name::FromString("www.example.zz")).has_value());
}

// ---------------------------------------------------------------------------
// Full selection over a generated world (§III-A quirks included).
// ---------------------------------------------------------------------------

class WorldSelectionTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    worldgen::WorldConfig config;
    config.scale = 0.01;
    world_ = worldgen::BuildWorld(config).release();
    bound_ = new worldgen::BoundStudy(worldgen::MakeStudy(*world_));
    bound_->study->RunSelection();
  }
  static void TearDownTestSuite() {
    delete bound_;
    delete world_;
  }

  static worldgen::World* world_;
  static worldgen::BoundStudy* bound_;
};

worldgen::World* WorldSelectionTest::world_ = nullptr;
worldgen::BoundStudy* WorldSelectionTest::bound_ = nullptr;

TEST_F(WorldSelectionTest, OneSeedPerCountry) {
  EXPECT_EQ(bound_->study->seeds().size(), 193u);
  std::set<int> countries;
  for (const auto& seed : bound_->study->seeds()) {
    countries.insert(seed.country);
  }
  EXPECT_EQ(countries.size(), 193u);
}

TEST_F(WorldSelectionTest, ReproducesThePapersQuirks) {
  const auto& stats = bound_->study->selection_stats();
  EXPECT_EQ(stats.total, 193);
  EXPECT_EQ(stats.broken_links, 11);      // paper: 11 unresolvable links
  EXPECT_EQ(stats.squatted_links, 1);     // one squatted portal
  EXPECT_EQ(stats.msq_fallbacks, 3);      // 2 mismatches + the squat
  EXPECT_EQ(stats.registered_domain_fallbacks, 4);  // la, tl, jm, no
}

TEST_F(WorldSelectionTest, SeedsMatchGroundTruthSuffixes) {
  for (const auto& seed : bound_->study->seeds()) {
    EXPECT_EQ(seed.d_gov, world_->country_runtime()[seed.country].suffix)
        << "country " << seed.country;
  }
}

}  // namespace
}  // namespace govdns::core
