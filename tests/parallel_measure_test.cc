// The sharded measurement pool must be a pure optimization: for a fixed
// world seed, every observable study output — per-domain results, every
// analysis, the resilience report, the exported JSON — must be
// byte-identical whether one worker or many measured the list. The shared
// cut cache and the per-worker counter merge must also reconcile exactly.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/cut_cache.h"
#include "core/export.h"
#include "core/measure.h"
#include "core/report.h"
#include "core/study.h"
#include "obs/obs.h"
#include "worldgen/adapter.h"

namespace govdns {
namespace {

struct RunOutput {
  std::string resilience_json;
  std::string export_json;
  std::string metrics_stable_json;  // kStable series only
  std::string trace_json;           // sampled query traces + cut publish log
  core::ResolverCounters merged;      // Σ per-worker resolver counters
  core::ResolverCounters per_domain;  // Σ per-domain query_stats
  uint64_t queries_sent = 0;
  uint64_t traced_domains = 0;
  size_t diagnostic_gauges = 0;
  core::CutCacheStats cache;
};

// One full pipeline run on a fresh hostile world (fixed seed), measured
// with `workers` threads.
RunOutput RunStudy(int workers) {
  worldgen::WorldConfig config;
  config.scale = 0.02;
  config.chaos = simnet::ChaosProfile::Hostile();
  auto world = worldgen::BuildWorld(config);
  auto bound = worldgen::MakeStudy(*world);
  core::Study& study = *bound.study;

  obs::ObservabilityConfig obs_config;
  obs_config.trace.sample_period = 4;
  obs::Observability observability(obs_config);
  study.AttachObservability(&observability);

  study.RunSelection();
  study.RunMining();

  core::MeasurerOptions mopts;
  mopts.workers = workers;
  study.RunActiveMeasurement(mopts);

  RunOutput out;
  out.resilience_json =
      core::BuildResilienceReport(study.active()).ToJson();
  out.export_json =
      core::ExportReportJson(core::BuildReport(study, {"cn", "br"}));
  out.metrics_stable_json = core::ExportMetricsJson(
      observability.metrics().Snapshot(/*include_diagnostic=*/false));
  out.trace_json = core::ExportTraceJson(observability.traces(),
                                         observability.cut_log());
  out.traced_domains = observability.traces().folded_total();
  out.diagnostic_gauges = observability.metrics().Snapshot().gauges.size();
  out.merged = study.measurement_counters();
  out.queries_sent = study.measurement_queries_sent();
  out.cache = study.measurement_cache_stats();
  for (const core::MeasurementResult& r : study.active().results) {
    out.per_domain += r.query_stats;
  }
  return out;
}

TEST(ParallelMeasureTest, FourWorkersMatchSerialByteForByte) {
  RunOutput serial = RunStudy(1);
  RunOutput parallel = RunStudy(4);

  // Headline equivalence: the resilience report and the full exported study
  // report are byte-identical — no analysis can tell the runs apart.
  EXPECT_EQ(serial.resilience_json, parallel.resilience_json);
  EXPECT_EQ(serial.export_json, parallel.export_json);

  // The observability layer obeys the same contract: the stable metrics
  // snapshot and the full trace document (sampled per-domain event logs,
  // timestamps included, plus the deduplicated cut publish log) are
  // byte-identical across worker counts.
  EXPECT_EQ(serial.metrics_stable_json, parallel.metrics_stable_json);
  EXPECT_EQ(serial.trace_json, parallel.trace_json);
  EXPECT_GT(serial.traced_domains, 0u);
  EXPECT_GT(serial.diagnostic_gauges, 0u);  // cut-cache gauges were published
  EXPECT_NE(serial.metrics_stable_json.find("\"measure.queries\""),
            std::string::npos);

  // Counter reconciliation: the merged per-worker counters are exactly the
  // sum of the per-domain attributions, in both runs — nothing the workers
  // spent went unattributed, nothing was double-counted.
  EXPECT_EQ(serial.merged, serial.per_domain);
  EXPECT_EQ(parallel.merged, parallel.per_domain);
  EXPECT_EQ(serial.merged, parallel.merged);
  EXPECT_EQ(serial.queries_sent, parallel.queries_sent);
  EXPECT_EQ(serial.queries_sent, serial.merged.queries);

  // The run must have actually exercised the hostile weather and the shared
  // cache, or the equivalence above would be vacuous.
  EXPECT_GT(serial.merged.queries, 0u);
  EXPECT_GT(serial.merged.retries, 0u);
  EXPECT_GT(serial.cache.hits, 0u);
  EXPECT_GT(serial.cache.publishes, 0u);
  EXPECT_GT(parallel.cache.hits, 0u);
}

TEST(ParallelMeasureTest, RepeatedParallelRunsAreDeterministic) {
  // Same seed, same worker count, two runs: thread scheduling differs, the
  // outputs must not.
  RunOutput a = RunStudy(4);
  RunOutput b = RunStudy(4);
  EXPECT_EQ(a.resilience_json, b.resilience_json);
  EXPECT_EQ(a.export_json, b.export_json);
  EXPECT_EQ(a.merged, b.merged);
  EXPECT_EQ(a.metrics_stable_json, b.metrics_stable_json);
  EXPECT_EQ(a.trace_json, b.trace_json);
}

TEST(ParallelMeasureTest, DefaultWorkerCountRuns) {
  // workers = 0 (hardware concurrency) must behave like any explicit count.
  RunOutput defaulted = RunStudy(0);
  RunOutput serial = RunStudy(1);
  EXPECT_EQ(defaulted.resilience_json, serial.resilience_json);
  EXPECT_EQ(defaulted.export_json, serial.export_json);
}

}  // namespace
}  // namespace govdns
