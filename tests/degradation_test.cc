// Graceful degradation under non-terminating faults (DESIGN.md §6g):
// hang / blackhole / slow-drip endpoint semantics, the resolver's logical
// deadline, circuit-breaker reopen boundaries, quarantine classification,
// wall-clock watchdog supervision, and escalating signal handling. Also
// hosts the total-loss / heavy-loss termination cases folded in from the
// original failure-injection suite — they are degradation scenarios.
#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <functional>
#include <thread>
#include <vector>

#include "ckpt/signals.h"
#include "core/measure.h"
#include "core/resolver.h"
#include "core/watchdog.h"
#include "tests/test_world.h"

namespace govdns::core {
namespace {

using dns::Name;
using govdns::testing::TinyInternet;
using simnet::ChaosProfile;
using simnet::EndpointBehavior;

class DegradationTest : public ::testing::Test {
 protected:
  DegradationTest() : world_(), resolver_(&world_.net, world_.roots()) {}

  // Layers `mutate` onto whatever behaviour the endpoint already has.
  void Afflict(geo::IPv4 ip, const std::function<void(EndpointBehavior&)>& mutate) {
    EndpointBehavior b = world_.net.GetBehavior(ip);
    mutate(b);
    world_.net.SetBehavior(ip, b);
  }

  TinyInternet world_;
  IterativeResolver resolver_;
};

// ---- simnet fault classes --------------------------------------------------

TEST_F(DegradationTest, HangChargesFullTimeoutPerAttempt) {
  const geo::IPv4 moe = TinyInternet::Ip(10, 0, 3, 1);
  Afflict(moe, [](EndpointBehavior& b) { b.hang = true; });
  const uint64_t t0 = world_.net.clock().now_ms();
  ServerReply reply = resolver_.QueryServer(
      moe, Name::FromString("www.moe.gov.xx"), dns::RRType::kA);
  EXPECT_EQ(reply.outcome, QueryOutcome::kTimeout);
  // Every attempt pays the full client timeout; backoffs come on top.
  EXPECT_GE(world_.net.clock().now_ms() - t0,
            3u * world_.net.timeout_ms());
  simnet::NetworkStats stats = world_.net.stats();
  EXPECT_EQ(stats.hung, 3u);
  EXPECT_GE(stats.timeouts, 3u);  // hangs also count as timeouts
}

TEST_F(DegradationTest, HangWinsOverHandlerAbsence) {
  // A hang is dropped before the server would even be looked up: an
  // unoccupied-but-hanging address times out instead of reporting
  // promptly unreachable.
  const geo::IPv4 empty = TinyInternet::Ip(10, 0, 9, 50);
  Afflict(empty, [](EndpointBehavior& b) { b.hang = true; });
  ServerReply reply = resolver_.QueryServer(
      empty, Name::FromString("moe.gov.xx"), dns::RRType::kNS);
  EXPECT_EQ(reply.outcome, QueryOutcome::kTimeout);
  EXPECT_GE(world_.net.stats().hung, 1u);
  EXPECT_EQ(world_.net.stats().unreachable, 0u);
}

TEST_F(DegradationTest, BlackholeAcceptsThenDropsOnOccupiedAddress) {
  const geo::IPv4 moe = TinyInternet::Ip(10, 0, 3, 1);
  Afflict(moe, [](EndpointBehavior& b) { b.blackhole = true; });
  const uint64_t t0 = world_.net.clock().now_ms();
  ServerReply reply = resolver_.QueryServer(
      moe, Name::FromString("www.moe.gov.xx"), dns::RRType::kA);
  EXPECT_EQ(reply.outcome, QueryOutcome::kTimeout);
  EXPECT_GE(world_.net.clock().now_ms() - t0,
            3u * world_.net.timeout_ms());
  simnet::NetworkStats stats = world_.net.stats();
  EXPECT_EQ(stats.blackholed, 3u);
  EXPECT_GE(stats.timeouts, 3u);
}

TEST_F(DegradationTest, BlackholeOnUnoccupiedAddressIsStillPromptlyUnreachable) {
  // Blackhole means "accepted, then dropped": with nothing listening there
  // is no accept, so the client still gets the fast unreachable verdict and
  // the deadline budget is not silently drained by a dead address.
  const geo::IPv4 empty = TinyInternet::Ip(10, 0, 9, 51);
  Afflict(empty, [](EndpointBehavior& b) { b.blackhole = true; });
  const uint64_t t0 = world_.net.clock().now_ms();
  ServerReply reply = resolver_.QueryServer(
      empty, Name::FromString("moe.gov.xx"), dns::RRType::kNS);
  EXPECT_EQ(reply.outcome, QueryOutcome::kUnreachable);
  EXPECT_EQ(world_.net.stats().blackholed, 0u);
  EXPECT_GE(world_.net.stats().unreachable, 1u);
  EXPECT_LT(world_.net.clock().now_ms() - t0, world_.net.timeout_ms());
}

TEST_F(DegradationTest, SlowDripPastClientTimeoutIsTimeout) {
  const geo::IPv4 moe = TinyInternet::Ip(10, 0, 3, 1);
  Afflict(moe, [](EndpointBehavior& b) { b.slow_drip_delay_ms = 5000; });
  ServerReply reply = resolver_.QueryServer(
      moe, Name::FromString("www.moe.gov.xx"), dns::RRType::kA);
  EXPECT_EQ(reply.outcome, QueryOutcome::kTimeout);
  EXPECT_EQ(world_.net.stats().slow_dripped, 3u);
}

TEST_F(DegradationTest, SlowDripWithinTimeoutStillDelivers) {
  const geo::IPv4 moe = TinyInternet::Ip(10, 0, 3, 1);
  Afflict(moe, [](EndpointBehavior& b) { b.slow_drip_delay_ms = 500; });
  const uint64_t t0 = world_.net.clock().now_ms();
  ServerReply reply = resolver_.QueryServer(
      moe, Name::FromString("www.moe.gov.xx"), dns::RRType::kA);
  EXPECT_EQ(reply.outcome, QueryOutcome::kAuthAnswer);
  // A drip that fits in the timeout is a delayed answer, not a fault.
  EXPECT_EQ(world_.net.stats().slow_dripped, 0u);
  EXPECT_GE(world_.net.clock().now_ms() - t0, 500u);
}

TEST_F(DegradationTest, ChaosProfileAnyCoversNewFaultClasses) {
  ChaosProfile p;
  EXPECT_FALSE(p.Any());
  p.p_hang = 0.1;
  EXPECT_TRUE(p.Any());
  p = ChaosProfile();
  p.p_blackhole = 0.1;
  EXPECT_TRUE(p.Any());
  p = ChaosProfile();
  p.p_slow_drip = 0.1;
  EXPECT_TRUE(p.Any());
}

TEST_F(DegradationTest, RealizeNewDrawsNeverRerollExistingAfflictions) {
  // The non-terminating draws come strictly after the original seven in
  // Realize: enabling them must not change which endpoints flap, rate-limit,
  // truncate, spoof, corrupt, burst, or jitter for the same (seed, address).
  const ChaosProfile old_profile = ChaosProfile::Hostile();
  ChaosProfile new_profile = old_profile;
  new_profile.p_hang = 0.3;
  new_profile.p_blackhole = 0.3;
  new_profile.p_slow_drip = 0.3;

  int newly_afflicted = 0;
  for (int i = 0; i < 512; ++i) {
    const geo::IPv4 addr(10, 20, static_cast<uint8_t>(i / 256),
                         static_cast<uint8_t>(i % 256));
    const EndpointBehavior a =
        old_profile.Realize(2022, addr, EndpointBehavior{});
    const EndpointBehavior b =
        new_profile.Realize(2022, addr, EndpointBehavior{});
    EXPECT_EQ(a.flap_period_ms, b.flap_period_ms);
    EXPECT_EQ(a.rate_limit_per_sec, b.rate_limit_per_sec);
    EXPECT_EQ(a.truncate_rate, b.truncate_rate);
    EXPECT_EQ(a.wrong_id_rate, b.wrong_id_rate);
    EXPECT_EQ(a.corrupt_rate, b.corrupt_rate);
    EXPECT_EQ(a.burst_start_rate, b.burst_start_rate);
    EXPECT_EQ(a.burst_length, b.burst_length);
    EXPECT_EQ(a.rtt_jitter_ms, b.rtt_jitter_ms);
    // The old profile never afflicts the new classes...
    EXPECT_FALSE(a.hang);
    EXPECT_FALSE(a.blackhole);
    EXPECT_EQ(a.slow_drip_delay_ms, 0u);
    if (b.hang || b.blackhole || b.slow_drip_delay_ms > 0) ++newly_afflicted;
  }
  // ...while the new one actually strikes somewhere.
  EXPECT_GT(newly_afflicted, 0);
}

// ---- resolver logical deadline ---------------------------------------------

TEST_F(DegradationTest, DeadlineLatchesMidQueryAndDeniesAfterwards) {
  const geo::IPv4 moe = TinyInternet::Ip(10, 0, 3, 1);
  Afflict(moe, [](EndpointBehavior& b) { b.hang = true; });
  resolver_.ArmDeadline(3000);
  // Attempt 1 burns the 2000ms timeout + backoff; the pre-attempt check for
  // attempt 2 (or 3) crosses the deadline and latches it.
  ServerReply first = resolver_.QueryServer(
      moe, Name::FromString("www.moe.gov.xx"), dns::RRType::kA);
  EXPECT_EQ(first.outcome, QueryOutcome::kTimeout);
  EXPECT_TRUE(resolver_.DeadlineExceeded());
  EXPECT_GE(resolver_.counters().deadline_denied, 1u);

  // Past the deadline, queries are denied at entry without traffic.
  const uint64_t queries_before = resolver_.counters().queries;
  const uint64_t denied_before = resolver_.counters().deadline_denied;
  ServerReply second = resolver_.QueryServer(
      TinyInternet::Ip(10, 0, 2, 1), Name::FromString("moe.gov.xx"),
      dns::RRType::kNS);
  EXPECT_EQ(second.outcome, QueryOutcome::kTimeout);
  EXPECT_EQ(resolver_.counters().queries, queries_before);
  EXPECT_EQ(resolver_.counters().deadline_denied, denied_before + 1);

  // Disarming restores normal service against a healthy server.
  resolver_.DisarmDeadline();
  ServerReply third = resolver_.QueryServer(
      TinyInternet::Ip(10, 0, 2, 1), Name::FromString("moe.gov.xx"),
      dns::RRType::kNS);
  EXPECT_NE(third.outcome, QueryOutcome::kTimeout);
}

TEST_F(DegradationTest, GenerousDeadlineChangesNothing) {
  IterativeResolver plain(&world_.net, world_.roots());
  auto baseline = plain.Resolve(Name::FromString("www.moe.gov.xx"),
                                dns::RRType::kA);
  ASSERT_TRUE(baseline.ok());
  const ResolverCounters plain_counters = plain.counters();

  TinyInternet fresh_world;
  IterativeResolver armed(&fresh_world.net, fresh_world.roots());
  armed.ArmDeadline(10'000'000);
  auto result = armed.Resolve(Name::FromString("www.moe.gov.xx"),
                              dns::RRType::kA);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(armed.DeadlineExceeded());
  EXPECT_EQ(armed.counters(), plain_counters);
}

// ---- circuit breaker reopen boundary ---------------------------------------

TEST_F(DegradationTest, BreakerReopensExactlyAtCooldownBoundary) {
  // 10.0.4.1 is lame.gov.xx's glue: resolvable, nothing listens. Promptly
  // unreachable exchanges fail a whole QueryServer call in one attempt, so
  // breaker_threshold = 3 opens after exactly three calls.
  const geo::IPv4 dead = TinyInternet::Ip(10, 0, 4, 1);
  const Name q = Name::FromString("lame.gov.xx");
  for (int i = 0; i < 3; ++i) {
    ServerReply r = resolver_.QueryServer(dead, q, dns::RRType::kNS);
    EXPECT_EQ(r.outcome, QueryOutcome::kUnreachable);
  }
  EXPECT_EQ(resolver_.open_circuits(), 1u);
  // The breaker opened at the third failure, i.e. at the clock's current
  // value: open while now < open_until = now + cooldown.
  const uint64_t reopen_at =
      resolver_.now_ms() + resolver_.options().retry.breaker_cooldown_ms;

  // One tick before the boundary: still skipped, no traffic.
  world_.net.clock().Advance(reopen_at - 1 - resolver_.now_ms());
  const uint64_t queries_before = resolver_.counters().queries;
  ServerReply skipped = resolver_.QueryServer(dead, q, dns::RRType::kNS);
  EXPECT_EQ(skipped.outcome, QueryOutcome::kUnreachable);
  EXPECT_EQ(resolver_.counters().queries, queries_before);
  EXPECT_GE(resolver_.counters().breaker_skips, 1u);

  // At the boundary: half-open, a real attempt goes out again.
  world_.net.clock().Advance(1);
  ServerReply probe = resolver_.QueryServer(dead, q, dns::RRType::kNS);
  EXPECT_EQ(probe.outcome, QueryOutcome::kUnreachable);
  EXPECT_EQ(resolver_.counters().queries, queries_before + 1);

  // The open event reset the failure streak: one post-cooldown failure must
  // not re-open the breaker; it takes a fresh run of `threshold` failures.
  const uint64_t skips_after_probe = resolver_.counters().breaker_skips;
  ServerReply again = resolver_.QueryServer(dead, q, dns::RRType::kNS);
  EXPECT_EQ(again.outcome, QueryOutcome::kUnreachable);
  EXPECT_EQ(resolver_.counters().queries, queries_before + 2);
  EXPECT_EQ(resolver_.counters().breaker_skips, skips_after_probe);
  // Third post-cooldown failure re-opens; the next call is skipped again.
  resolver_.QueryServer(dead, q, dns::RRType::kNS);
  EXPECT_EQ(resolver_.open_circuits(), 1u);
  resolver_.QueryServer(dead, q, dns::RRType::kNS);
  EXPECT_EQ(resolver_.counters().breaker_skips, skips_after_probe + 1);
}

// ---- quarantine classification ---------------------------------------------

TEST_F(DegradationTest, AllTimeoutDeadlineDomainClassifiedAsHang) {
  // Root hangs: every datagram the domain sends times out, the deadline
  // latches inside the very first server query, and the verdict is kHang.
  Afflict(TinyInternet::Ip(10, 0, 0, 1),
          [](EndpointBehavior& b) { b.hang = true; });
  IterativeResolver fresh(&world_.net, world_.roots());
  MeasurerOptions options;
  options.max_logical_ms_per_domain = 3000;
  ActiveMeasurer measurer(&fresh, options);
  MeasurementResult r = measurer.Measure(Name::FromString("moe.gov.xx"));
  EXPECT_TRUE(r.degraded);
  EXPECT_EQ(r.quarantine_reason, QuarantineReason::kHang);
  EXPECT_GT(r.query_stats.queries, 0u);
  EXPECT_GE(r.query_stats.timeouts, r.query_stats.queries);
  EXPECT_GE(r.query_stats.deadline_denied, 1u);
}

TEST_F(DegradationTest, DeliveredThenDarkDeadlineDomainClassifiedAsBlackhole) {
  // Parent chain answers (root, TLD, gov.xx), then both child servers
  // swallow everything: delivered-then-dark is the blackhole shape.
  Afflict(TinyInternet::Ip(10, 0, 3, 1),
          [](EndpointBehavior& b) { b.blackhole = true; });
  Afflict(TinyInternet::Ip(10, 0, 3, 2),
          [](EndpointBehavior& b) { b.blackhole = true; });
  IterativeResolver fresh(&world_.net, world_.roots());
  MeasurerOptions options;
  options.max_logical_ms_per_domain = 4000;
  ActiveMeasurer measurer(&fresh, options);
  MeasurementResult r = measurer.Measure(Name::FromString("moe.gov.xx"));
  EXPECT_TRUE(r.degraded);
  EXPECT_EQ(r.quarantine_reason, QuarantineReason::kBlackhole);
  EXPECT_TRUE(r.parent_located);
  EXPECT_LT(r.query_stats.timeouts, r.query_stats.queries);
}

TEST_F(DegradationTest, QueryBudgetExhaustionClassifiedAsBudgetExceeded) {
  IterativeResolver fresh(&world_.net, world_.roots());
  MeasurerOptions options;
  options.max_queries_per_domain = 3;
  ActiveMeasurer measurer(&fresh, options);
  MeasurementResult r = measurer.Measure(Name::FromString("moe.gov.xx"));
  EXPECT_TRUE(r.degraded);
  EXPECT_EQ(r.quarantine_reason, QuarantineReason::kBudgetExceeded);
}

TEST_F(DegradationTest, HealthyMeasurementIsNotQuarantined) {
  IterativeResolver fresh(&world_.net, world_.roots());
  MeasurerOptions options;
  options.max_logical_ms_per_domain = 60000;
  ActiveMeasurer measurer(&fresh, options);
  MeasurementResult r = measurer.Measure(Name::FromString("moe.gov.xx"));
  EXPECT_FALSE(r.degraded);
  EXPECT_EQ(r.quarantine_reason, QuarantineReason::kNone);
  EXPECT_EQ(QuarantineReasonName(r.quarantine_reason), std::string("none"));
}

// ---- retry-schedule determinism across worker counts -----------------------

std::vector<MeasurementResult> MeasurePool(int workers) {
  TinyInternet world;
  // Injected hangs: one moe secondary and the half.gov.xx primary hang, so
  // the retry/backoff engine is genuinely exercised, not just pass-through.
  auto afflict = [&world](geo::IPv4 ip) {
    EndpointBehavior b = world.net.GetBehavior(ip);
    b.hang = true;
    world.net.SetBehavior(ip, b);
  };
  afflict(TinyInternet::Ip(10, 0, 3, 2));
  afflict(TinyInternet::Ip(10, 0, 4, 11));
  MeasurerOptions options;
  options.workers = workers;
  options.max_logical_ms_per_domain = 30000;
  ActiveMeasurer measurer(&world.net, world.roots(), ResolverOptions(),
                          options);
  const std::vector<Name> domains = {
      Name::FromString("moe.gov.xx"),      Name::FromString("half.gov.xx"),
      Name::FromString("drift.gov.xx"),    Name::FromString("glueless.gov.xx"),
      Name::FromString("refused.gov.xx"),  Name::FromString("lame.gov.xx"),
      Name::FromString("victim.gov.yy"),   Name::FromString("chain.gov.yy"),
  };
  return measurer.MeasureAll(domains);
}

TEST(DegradationPoolTest, InjectedHangsYieldIdenticalRetrySchedules) {
  // Satellite acceptance: with hangs injected, the per-domain retry counts,
  // backoff charges, timeouts and logical timings must be byte-identical for
  // 1 and 4 workers — the deadline machinery is as deterministic as the
  // healthy path.
  const std::vector<MeasurementResult> serial = MeasurePool(1);
  const std::vector<MeasurementResult> pooled = MeasurePool(4);
  ASSERT_EQ(serial.size(), pooled.size());
  uint64_t total_retries = 0;
  uint64_t total_backoff = 0;
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i], pooled[i]) << serial[i].domain.ToString();
    total_retries += serial[i].query_stats.retries;
    total_backoff += serial[i].query_stats.backoff_ms;
  }
  // The hangs actually produced retries and backoff waits.
  EXPECT_GT(total_retries, 0u);
  EXPECT_GT(total_backoff, 0u);
}

// ---- wall-clock watchdog ---------------------------------------------------

TEST(PhaseWatchdogTest, CancelsOnlyTheStalledWorker) {
  PhaseWatchdog::Options options;
  options.stall_timeout_ms = 100;
  options.poll_interval_ms = 5;
  PhaseWatchdog wd(2, options);
  wd.Heartbeat(0);
  wd.Heartbeat(1);

  // Worker 0 goes quiet; worker 1 keeps beating well inside the window.
  bool cancelled = false;
  for (int i = 0; i < 600 && !cancelled; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    wd.Heartbeat(1);
    cancelled = wd.cancel_flag(0)->load(std::memory_order_relaxed);
  }
  ASSERT_TRUE(cancelled) << "supervisor never cancelled the stalled worker";
  EXPECT_FALSE(wd.cancel_flag(1)->load(std::memory_order_relaxed));
  EXPECT_GE(wd.total_cancels(), 1u);

  // Acknowledging clears the flag; a fresh heartbeat re-arms the slot.
  wd.AckCancel(0);
  EXPECT_FALSE(wd.cancel_flag(0)->load(std::memory_order_relaxed));
  wd.Heartbeat(0);
  wd.Stop();
  wd.Stop();  // idempotent
}

TEST(PhaseWatchdogTest, StopIsIdempotentAcrossRacingCallersAndDestructor) {
  // Stop() from two racing threads, again from the test thread, and finally
  // from the destructor: exactly one caller joins the supervisor, the rest
  // are safe no-ops (this suite runs under tsan in tools/verify.sh, so a
  // racy double-join would be caught, not just flaky).
  PhaseWatchdog::Options options;
  options.stall_timeout_ms = 50;
  options.poll_interval_ms = 5;
  auto wd = std::make_unique<PhaseWatchdog>(2, options);
  std::thread a([&] { wd->Stop(); });
  std::thread b([&] { wd->Stop(); });
  a.join();
  b.join();
  wd->Stop();
  // With the supervisor gone, a silent worker is never cancelled.
  std::this_thread::sleep_for(std::chrono::milliseconds(120));
  EXPECT_FALSE(wd->cancel_flag(0)->load(std::memory_order_relaxed));
  EXPECT_EQ(wd->total_cancels(), 0u);
  wd.reset();  // fourth Stop(), via ~PhaseWatchdog
}

TEST(PhaseWatchdogTest, HeartbeatRacingStopIsSafe) {
  // Workers do not synchronize with the supervisor's shutdown: a heartbeat
  // (or an AckCancel) may land while Stop() is tearing the thread down.
  // Both touch only the slot atomics, so the interleaving must be clean.
  PhaseWatchdog::Options options;
  options.stall_timeout_ms = 20;
  options.poll_interval_ms = 1;
  for (int round = 0; round < 8; ++round) {
    PhaseWatchdog wd(2, options);
    std::atomic<bool> done{false};
    std::thread beater([&] {
      while (!done.load(std::memory_order_relaxed)) {
        wd.Heartbeat(0);
        wd.AckCancel(1);
      }
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    wd.Stop();
    done.store(true, std::memory_order_relaxed);
    beater.join();
  }
}

// Delegates to the simulated network but wall-clock-blocks the first
// `blocking` Exchange calls long enough for the watchdog to fire — the
// "wedged handler" the logical clock cannot see.
class BlockingTransport : public dns::QueryTransport {
 public:
  BlockingTransport(dns::QueryTransport* inner, int blocking,
                    uint32_t block_ms)
      : inner_(inner), remaining_(blocking), block_ms_(block_ms) {}

  util::StatusOr<std::vector<uint8_t>> Exchange(
      geo::IPv4 server, const std::vector<uint8_t>& wire_query) override {
    if (remaining_.fetch_sub(1, std::memory_order_relaxed) > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(block_ms_));
    }
    return inner_->Exchange(server, wire_query);
  }
  util::StatusOr<std::vector<uint8_t>> ExchangeStream(
      geo::IPv4 server, const std::vector<uint8_t>& wire_query) override {
    return inner_->ExchangeStream(server, wire_query);
  }
  uint64_t now_ms() const override { return inner_->now_ms(); }
  void Delay(uint32_t ms) override { inner_->Delay(ms); }
  void PushChaosContext(uint64_t tag) override {
    inner_->PushChaosContext(tag);
  }
  void PopChaosContext() override { inner_->PopChaosContext(); }

 private:
  dns::QueryTransport* inner_;
  std::atomic<int> remaining_;
  uint32_t block_ms_;
};

TEST(PhaseWatchdogTest, CancelledDomainIsRequeuedOnceAndRecovers) {
  // One wall-clock stall in the pool pass: the watchdog cancels the worker,
  // the measurer requeues the domain at the phase boundary, and the retry
  // (transport now prompt) produces the clean, unquarantined result.
  TinyInternet world;
  BlockingTransport blocking(&world.net, /*blocking=*/1, /*block_ms=*/500);
  MeasurerOptions options;
  options.workers = 1;
  options.watchdog_stall_ms = 100;
  options.watchdog_poll_ms = 5;
  ActiveMeasurer measurer(&blocking, world.roots(), ResolverOptions(),
                          options);
  const std::vector<Name> domains = {Name::FromString("moe.gov.xx")};
  const std::vector<MeasurementResult> out = measurer.MeasureAll(domains);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].quarantine_reason, QuarantineReason::kNone);

  TinyInternet plain_world;
  ActiveMeasurer plain(&plain_world.net, plain_world.roots(),
                       ResolverOptions(), MeasurerOptions{});
  EXPECT_EQ(out, plain.MeasureAll(domains));
}

TEST(PhaseWatchdogTest, DomainStalledTwiceStaysWatchdogQuarantined) {
  // The requeue is once-only: a domain that stalls again in the requeue
  // pass keeps its kWatchdogCancelled verdict instead of looping forever.
  TinyInternet world;
  BlockingTransport blocking(&world.net, /*blocking=*/2, /*block_ms=*/500);
  MeasurerOptions options;
  options.workers = 1;
  options.watchdog_stall_ms = 100;
  options.watchdog_poll_ms = 5;
  ActiveMeasurer measurer(&blocking, world.roots(), ResolverOptions(),
                          options);
  const std::vector<Name> domains = {Name::FromString("moe.gov.xx")};
  const std::vector<MeasurementResult> out = measurer.MeasureAll(domains);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].quarantine_reason, QuarantineReason::kWatchdogCancelled);
}

TEST(PhaseWatchdogTest, CancelFlagFailsResolverFastWithoutCounting) {
  // The resolver must honour an externally raised cancel flag immediately,
  // latch the cancellation, and keep it out of the deterministic counters.
  TinyInternet world;
  IterativeResolver resolver(&world.net, world.roots());
  std::atomic<bool> cancel{true};
  resolver.set_cancel_flag(&cancel);
  const ResolverCounters before = resolver.counters();
  ServerReply reply = resolver.QueryServer(
      TinyInternet::Ip(10, 0, 2, 1), Name::FromString("moe.gov.xx"),
      dns::RRType::kNS);
  EXPECT_EQ(reply.outcome, QueryOutcome::kTimeout);
  EXPECT_TRUE(resolver.WatchdogCancelled());
  EXPECT_EQ(resolver.counters(), before);  // untraced, uncounted

  cancel.store(false);
  resolver.ClearCancelLatch();
  EXPECT_FALSE(resolver.WatchdogCancelled());
  ServerReply after = resolver.QueryServer(
      TinyInternet::Ip(10, 0, 2, 1), Name::FromString("moe.gov.xx"),
      dns::RRType::kNS);
  EXPECT_NE(after.outcome, QueryOutcome::kTimeout);
}

TEST(PhaseWatchdogTest, AttachedWatchdogNeverPerturbsSimulatedRuns) {
  // In pure simulation exchanges always return promptly, so a watchdog with
  // a sane stall timeout must never fire — attaching one cannot change a
  // run's bytes.
  const std::vector<MeasurementResult> plain = MeasurePool(4);
  TinyInternet world;
  auto afflict = [&world](geo::IPv4 ip) {
    EndpointBehavior b = world.net.GetBehavior(ip);
    b.hang = true;
    world.net.SetBehavior(ip, b);
  };
  afflict(TinyInternet::Ip(10, 0, 3, 2));
  afflict(TinyInternet::Ip(10, 0, 4, 11));
  MeasurerOptions options;
  options.workers = 4;
  options.max_logical_ms_per_domain = 30000;
  options.watchdog_stall_ms = 30000;
  ActiveMeasurer measurer(&world.net, world.roots(), ResolverOptions(),
                          options);
  const std::vector<Name> domains = {
      Name::FromString("moe.gov.xx"),      Name::FromString("half.gov.xx"),
      Name::FromString("drift.gov.xx"),    Name::FromString("glueless.gov.xx"),
      Name::FromString("refused.gov.xx"),  Name::FromString("lame.gov.xx"),
      Name::FromString("victim.gov.yy"),   Name::FromString("chain.gov.yy"),
  };
  const std::vector<MeasurementResult> supervised =
      measurer.MeasureAll(domains);
  EXPECT_EQ(plain, supervised);
}

// ---- escalating signal handling --------------------------------------------

TEST(EscalatingSignalsTest, FirstSignalOnlyRaisesTheFlag) {
  const pid_t pid = fork();
  ASSERT_NE(pid, -1);
  if (pid == 0) {
    static std::atomic<bool> flag{false};
    ckpt::InstallEscalatingHandlers(&flag, 77);
    raise(SIGTERM);  // delivered synchronously before raise returns
    const bool ok = flag.load(std::memory_order_relaxed) &&
                    ckpt::EscalationCount() == 1;
    _exit(ok ? 0 : 3);
  }
  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);
}

TEST(EscalatingSignalsTest, SecondSignalForcesImmediateExit) {
  // The flush-is-wedged scenario: the first Ctrl-C raises the cooperative
  // flag, the second must _exit with the configured code instead of being
  // swallowed (or killing the process with an unhandled-signal status).
  const pid_t pid = fork();
  ASSERT_NE(pid, -1);
  if (pid == 0) {
    static std::atomic<bool> flag{false};
    ckpt::InstallEscalatingHandlers(&flag, 77);
    raise(SIGTERM);
    if (!flag.load(std::memory_order_relaxed)) _exit(3);
    raise(SIGINT);  // escalates: the handler _exit(77)s, we never return
    _exit(4);
  }
  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status)) << "child killed by signal, not _exit";
  EXPECT_EQ(WEXITSTATUS(status), 77);
}

TEST(EscalatingSignalsTest, ReinstallUpdatesExitCodeAndResetsEscalation) {
  // Regression: the handler's exit code used to be a plain int; a handler
  // installed before the new code landed could _exit with the stale value.
  // Reinstalling must (a) reset the escalation count — the first signal
  // after a reinstall is cooperative again — and (b) publish the new code
  // before the handler can observe it.
  const pid_t pid = fork();
  ASSERT_NE(pid, -1);
  if (pid == 0) {
    static std::atomic<bool> flag{false};
    ckpt::InstallEscalatingHandlers(&flag, 77);
    raise(SIGTERM);
    if (ckpt::EscalationCount() != 1) _exit(3);
    flag.store(false, std::memory_order_relaxed);
    ckpt::InstallEscalatingHandlers(&flag, 91);
    raise(SIGINT);  // count was reset: cooperative again, not an escalation
    if (!flag.load(std::memory_order_relaxed)) _exit(4);
    raise(SIGINT);  // escalates with the *new* code
    _exit(5);
  }
  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status)) << "child killed by signal, not _exit";
  EXPECT_EQ(WEXITSTATUS(status), 91);
}

// ---- folded from failure_injection_test (degradation scenarios) ------------

TEST_F(DegradationTest, TotalRootLossFailsEverything) {
  world_.net.SetBehavior(TinyInternet::Ip(10, 0, 0, 1),
                         simnet::EndpointBehavior{.silent = true});
  IterativeResolver fresh(&world_.net, world_.roots());
  EXPECT_FALSE(
      fresh.Resolve(Name::FromString("www.moe.gov.xx"), dns::RRType::kA).ok());
  ActiveMeasurer measurer(&fresh);
  auto r = measurer.Measure(Name::FromString("moe.gov.xx"));
  EXPECT_FALSE(r.parent_located);
}

TEST_F(DegradationTest, HeavyLossStillTerminates) {
  // 90% loss everywhere: many timeouts, bounded work, no hang.
  for (auto ip : {TinyInternet::Ip(10, 0, 0, 1), TinyInternet::Ip(10, 0, 1, 1),
                  TinyInternet::Ip(10, 0, 2, 1), TinyInternet::Ip(10, 0, 3, 1),
                  TinyInternet::Ip(10, 0, 3, 2)}) {
    world_.net.SetBehavior(ip, simnet::EndpointBehavior{.loss_rate = 0.9});
  }
  IterativeResolver fresh(&world_.net, world_.roots());
  ActiveMeasurer measurer(&fresh);
  uint64_t before = fresh.queries_sent();
  auto r = measurer.Measure(Name::FromString("moe.gov.xx"));
  (void)r;  // any outcome is acceptable
  EXPECT_LT(fresh.queries_sent() - before, 500u);  // bounded effort
}

}  // namespace
}  // namespace govdns::core
