#include <gtest/gtest.h>

#include "pdns/db.h"
#include "util/rng.h"

namespace govdns::pdns {
namespace {

using dns::Name;
using dns::RRType;
using util::DayFromYmd;

TEST(PdnsTest, ObserveCreatesEntry) {
  PdnsDatabase db;
  db.Observe(Name::FromString("moe.gov.cn"), RRType::kNS, "ns1.moe.gov.cn",
             DayFromYmd(2015, 3, 1));
  EXPECT_EQ(db.entry_count(), 1u);
  auto entries = db.Lookup(Name::FromString("moe.gov.cn"));
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].rdata, "ns1.moe.gov.cn");
  EXPECT_EQ(entries[0].seen.first, entries[0].seen.last);
}

TEST(PdnsTest, NearbySightingsMerge) {
  PdnsDatabase db(/*merge_gap_days=*/30);
  Name name = Name::FromString("moe.gov.cn");
  db.Observe(name, RRType::kNS, "ns1.x", DayFromYmd(2015, 3, 1));
  db.Observe(name, RRType::kNS, "ns1.x", DayFromYmd(2015, 3, 20));
  EXPECT_EQ(db.entry_count(), 1u);
  auto entries = db.Lookup(name);
  EXPECT_EQ(entries[0].seen.first, DayFromYmd(2015, 3, 1));
  EXPECT_EQ(entries[0].seen.last, DayFromYmd(2015, 3, 20));
}

TEST(PdnsTest, LongSilenceStartsNewEntry) {
  PdnsDatabase db(/*merge_gap_days=*/30);
  Name name = Name::FromString("moe.gov.cn");
  db.Observe(name, RRType::kNS, "ns1.x", DayFromYmd(2015, 3, 1));
  db.Observe(name, RRType::kNS, "ns1.x", DayFromYmd(2016, 3, 1));
  EXPECT_EQ(db.entry_count(), 2u);
}

TEST(PdnsTest, DifferentRdataNeverMerge) {
  PdnsDatabase db;
  Name name = Name::FromString("moe.gov.cn");
  db.Observe(name, RRType::kNS, "ns1.x", DayFromYmd(2015, 3, 1));
  db.Observe(name, RRType::kNS, "ns2.x", DayFromYmd(2015, 3, 1));
  EXPECT_EQ(db.entry_count(), 2u);
}

TEST(PdnsTest, DifferentTypesNeverMerge) {
  PdnsDatabase db;
  Name name = Name::FromString("moe.gov.cn");
  db.Observe(name, RRType::kNS, "x", DayFromYmd(2015, 3, 1));
  db.Observe(name, RRType::kA, "x", DayFromYmd(2015, 3, 1));
  EXPECT_EQ(db.entry_count(), 2u);
}

TEST(PdnsTest, CountAccumulates) {
  PdnsDatabase db;
  Name name = Name::FromString("moe.gov.cn");
  db.ObserveInterval(name, RRType::kNS, "ns1.x",
                     {DayFromYmd(2015, 1, 1), DayFromYmd(2015, 1, 10)});
  auto entries = db.Lookup(name);
  EXPECT_EQ(entries[0].count, 10u);
}

TEST(PdnsTest, WildcardSearchFindsAllSubdomains) {
  PdnsDatabase db;
  db.Observe(Name::FromString("gov.cn"), RRType::kNS, "a", 100);
  db.Observe(Name::FromString("moe.gov.cn"), RRType::kNS, "b", 100);
  db.Observe(Name::FromString("x.moe.gov.cn"), RRType::kNS, "c", 100);
  db.Observe(Name::FromString("gov.com"), RRType::kNS, "d", 100);
  auto hits = db.WildcardSearch(Name::FromString("gov.cn"));
  EXPECT_EQ(hits.size(), 3u);
}

TEST(PdnsTest, WildcardSearchIsLabelBounded) {
  PdnsDatabase db;
  db.Observe(Name::FromString("agov.cn"), RRType::kNS, "x", 100);
  db.Observe(Name::FromString("gov.cna"), RRType::kNS, "x", 100);
  // Neither is a subdomain of gov.cn even though the strings overlap.
  EXPECT_TRUE(db.WildcardSearch(Name::FromString("gov.cn")).empty());
}

TEST(PdnsTest, QueryFiltersByType) {
  PdnsDatabase db;
  Name name = Name::FromString("moe.gov.cn");
  db.Observe(name, RRType::kNS, "ns", 100);
  db.Observe(name, RRType::kA, "1.2.3.4", 100);
  Query q;
  q.type = RRType::kNS;
  EXPECT_EQ(db.Lookup(name, q).size(), 1u);
}

TEST(PdnsTest, QueryFiltersByWindowOverlap) {
  PdnsDatabase db;
  Name name = Name::FromString("moe.gov.cn");
  db.ObserveInterval(name, RRType::kNS, "ns", {100, 200});
  Query q;
  q.window = util::DayInterval{150, 300};
  EXPECT_EQ(db.Lookup(name, q).size(), 1u);
  q.window = util::DayInterval{201, 300};
  EXPECT_TRUE(db.Lookup(name, q).empty());
}

TEST(PdnsTest, StabilityFilterDropsShortLived) {
  PdnsDatabase db(/*merge_gap_days=*/0);
  Name name = Name::FromString("moe.gov.cn");
  db.ObserveInterval(name, RRType::kNS, "junk", {100, 102});     // gap 2
  db.ObserveInterval(name, RRType::kNS, "stable", {100, 300});   // gap 200
  Query q;
  q.min_seen_gap_days = 7;
  auto hits = db.Lookup(name, q);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].rdata, "stable");
}

TEST(PdnsTest, MinSeenGapUsesGapSemantics) {
  // Gap semantics, like the §III-C miner filter: keep iff last − first >= 7.
  // The {100, 106} sighting spans 7 calendar days but only a 6-day gap and
  // must be dropped — the old `LengthDays() < min_duration_days` predicate
  // kept it, letting the two filters drift apart.
  PdnsDatabase db(/*merge_gap_days=*/0);
  Name name = Name::FromString("moe.gov.cn");
  db.ObserveInterval(name, RRType::kNS, "gap6", {100, 106});
  db.ObserveInterval(name, RRType::kNS, "gap7", {100, 107});
  Query q;
  q.min_seen_gap_days = 7;
  auto hits = db.Lookup(name, q);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].rdata, "gap7");
}

TEST(PdnsTest, ZeroGapMergesOnlyAdjacent) {
  PdnsDatabase db(/*merge_gap_days=*/0);
  Name name = Name::FromString("a.b");
  db.Observe(name, RRType::kNS, "x", 100);
  db.Observe(name, RRType::kNS, "x", 101);  // adjacent: merges
  EXPECT_EQ(db.entry_count(), 1u);
  db.Observe(name, RRType::kNS, "x", 103);  // one-day hole: new entry
  EXPECT_EQ(db.entry_count(), 2u);
}

// ---------------------------------------------------------------------------
// Frozen flat-index snapshot
// ---------------------------------------------------------------------------

TEST(PdnsSnapshotTest, WildcardRangeExcludesLookalikeNeighbors) {
  PdnsDatabase db;
  // notgov.au and xgov.au are string-suffix lookalikes that sit adjacent to
  // the gov.au subtree in canonical order; the binary-searched range must
  // exclude them on label boundaries.
  db.Observe(Name::FromString("gov.au"), RRType::kNS, "a", 100);
  db.Observe(Name::FromString("health.gov.au"), RRType::kNS, "b", 100);
  db.Observe(Name::FromString("notgov.au"), RRType::kNS, "c", 100);
  db.Observe(Name::FromString("xgov.au"), RRType::kNS, "d", 100);
  db.Observe(Name::FromString("gov.aux"), RRType::kNS, "e", 100);
  PdnsSnapshot snap = db.Freeze();
  EXPECT_EQ(snap.entry_count(), 5u);
  EXPECT_EQ(snap.name_count(), 5u);

  auto [lo, hi] = snap.WildcardNameRange(Name::FromString("gov.au"));
  EXPECT_EQ(hi - lo, 2u);
  auto hits = snap.WildcardSearch(Name::FromString("gov.au"));
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0].rdata, "a");
  EXPECT_EQ(hits[1].rdata, "b");
  EXPECT_EQ(snap.WildcardSpan(Name::FromString("gov.au")).size(), 2u);
  EXPECT_TRUE(snap.WildcardSearch(Name::FromString("gov.zz")).empty());
  EXPECT_TRUE(snap.WildcardSpan(Name::FromString("gov.zz")).empty());
}

TEST(PdnsSnapshotTest, SnapshotIsImmutableAfterLaterObserves) {
  PdnsDatabase db;
  db.Observe(Name::FromString("a.gov.xx"), RRType::kNS, "ns1", 100);
  PdnsSnapshot snap = db.Freeze();
  db.Observe(Name::FromString("b.gov.xx"), RRType::kNS, "ns2", 100);
  EXPECT_EQ(snap.entry_count(), 1u);
  EXPECT_EQ(db.entry_count(), 2u);
  EXPECT_EQ(snap.WildcardSearch(Name::FromString("gov.xx")).size(), 1u);
  EXPECT_EQ(db.WildcardSearch(Name::FromString("gov.xx")).size(), 2u);
}

TEST(PdnsSnapshotTest, EmptyAndDefaultSnapshotsAreSafe) {
  PdnsSnapshot defaulted;
  EXPECT_TRUE(defaulted.WildcardSearch(Name::FromString("gov.xx")).empty());
  PdnsDatabase db;
  PdnsSnapshot empty = db.Freeze();
  EXPECT_EQ(empty.entry_count(), 0u);
  EXPECT_TRUE(empty.WildcardSpan(Name::FromString("gov.xx")).empty());
}

// Property: the frozen path agrees entry-for-entry with the map-backed path
// across random databases and queries, including filters.
class PdnsSnapshotOracle : public ::testing::TestWithParam<int> {};

TEST_P(PdnsSnapshotOracle, FreezeMatchesMapBackedSearch) {
  util::Rng rng(GetParam() * 7717);
  static const char* kSuffixes[] = {"gov.au", "notgov.au", "xgov.au",
                                    "gov.aux", "go.au"};
  static const char* kLabels[] = {"health", "tax", "portal"};

  PdnsDatabase db(/*merge_gap_days=*/10);
  for (int i = 0; i < 400; ++i) {
    Name name = Name::FromString(kSuffixes[rng.UniformU64(5)]);
    int depth = static_cast<int>(rng.UniformU64(3));
    for (int d = 0; d < depth; ++d) {
      name = name.Child(kLabels[rng.UniformU64(3)]);
    }
    RRType type = rng.Bernoulli(0.8) ? RRType::kNS : RRType::kA;
    std::string rdata = "ns" + std::to_string(rng.UniformU64(4)) + ".h.cc";
    util::CivilDay start = static_cast<util::CivilDay>(rng.UniformU64(1000));
    util::CivilDay len = static_cast<util::CivilDay>(rng.UniformU64(50));
    db.ObserveInterval(name, type, rdata, {start, start + len});
  }
  PdnsSnapshot snap = db.Freeze();
  EXPECT_EQ(snap.entry_count(), db.entry_count());
  EXPECT_EQ(snap.name_count(), db.name_count());

  std::vector<Query> queries(4);
  queries[1].type = RRType::kNS;
  queries[2].window = util::DayInterval{200, 600};
  queries[3].type = RRType::kNS;
  queries[3].window = util::DayInterval{100, 800};
  queries[3].min_seen_gap_days = 7;

  for (const char* suffix_text : kSuffixes) {
    Name suffix = Name::FromString(suffix_text);
    for (const Query& query : queries) {
      auto expected = db.WildcardSearch(suffix, query);
      // Copying wrapper and allocation-free visitor both match exactly.
      EXPECT_EQ(snap.WildcardSearch(suffix, query), expected);
      std::vector<PdnsEntry> visited;
      snap.VisitWildcard(suffix, query,
                         [&](const PdnsEntry& e) { visited.push_back(e); });
      EXPECT_EQ(visited, expected);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PdnsSnapshotOracle, ::testing::Range(1, 7));

// Property: same-rdata entries never overlap, regardless of insert order.
class PdnsMergeProperty : public ::testing::TestWithParam<int> {};

TEST_P(PdnsMergeProperty, EntriesForSameKeyStayDisjoint) {
  util::Rng rng(GetParam() * 101);
  PdnsDatabase db(/*merge_gap_days=*/10);
  Name name = Name::FromString("prop.gov.xx");
  for (int i = 0; i < 200; ++i) {
    util::CivilDay start = static_cast<util::CivilDay>(rng.UniformU64(2000));
    util::CivilDay len = static_cast<util::CivilDay>(rng.UniformU64(60));
    db.ObserveInterval(name, RRType::kNS, "ns1.x", {start, start + len});
  }
  auto entries = db.Lookup(name);
  for (size_t i = 0; i < entries.size(); ++i) {
    EXPECT_LE(entries[i].seen.first, entries[i].seen.last);
    for (size_t j = i + 1; j < entries.size(); ++j) {
      EXPECT_FALSE(entries[i].seen.Overlaps(entries[j].seen))
          << "entries " << i << " and " << j << " overlap";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PdnsMergeProperty, ::testing::Range(1, 9));

}  // namespace
}  // namespace govdns::pdns
