#include <gtest/gtest.h>

#include "pdns/db.h"
#include "util/rng.h"

namespace govdns::pdns {
namespace {

using dns::Name;
using dns::RRType;
using util::DayFromYmd;

TEST(PdnsTest, ObserveCreatesEntry) {
  PdnsDatabase db;
  db.Observe(Name::FromString("moe.gov.cn"), RRType::kNS, "ns1.moe.gov.cn",
             DayFromYmd(2015, 3, 1));
  EXPECT_EQ(db.entry_count(), 1u);
  auto entries = db.Lookup(Name::FromString("moe.gov.cn"));
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].rdata, "ns1.moe.gov.cn");
  EXPECT_EQ(entries[0].seen.first, entries[0].seen.last);
}

TEST(PdnsTest, NearbySightingsMerge) {
  PdnsDatabase db(/*merge_gap_days=*/30);
  Name name = Name::FromString("moe.gov.cn");
  db.Observe(name, RRType::kNS, "ns1.x", DayFromYmd(2015, 3, 1));
  db.Observe(name, RRType::kNS, "ns1.x", DayFromYmd(2015, 3, 20));
  EXPECT_EQ(db.entry_count(), 1u);
  auto entries = db.Lookup(name);
  EXPECT_EQ(entries[0].seen.first, DayFromYmd(2015, 3, 1));
  EXPECT_EQ(entries[0].seen.last, DayFromYmd(2015, 3, 20));
}

TEST(PdnsTest, LongSilenceStartsNewEntry) {
  PdnsDatabase db(/*merge_gap_days=*/30);
  Name name = Name::FromString("moe.gov.cn");
  db.Observe(name, RRType::kNS, "ns1.x", DayFromYmd(2015, 3, 1));
  db.Observe(name, RRType::kNS, "ns1.x", DayFromYmd(2016, 3, 1));
  EXPECT_EQ(db.entry_count(), 2u);
}

TEST(PdnsTest, DifferentRdataNeverMerge) {
  PdnsDatabase db;
  Name name = Name::FromString("moe.gov.cn");
  db.Observe(name, RRType::kNS, "ns1.x", DayFromYmd(2015, 3, 1));
  db.Observe(name, RRType::kNS, "ns2.x", DayFromYmd(2015, 3, 1));
  EXPECT_EQ(db.entry_count(), 2u);
}

TEST(PdnsTest, DifferentTypesNeverMerge) {
  PdnsDatabase db;
  Name name = Name::FromString("moe.gov.cn");
  db.Observe(name, RRType::kNS, "x", DayFromYmd(2015, 3, 1));
  db.Observe(name, RRType::kA, "x", DayFromYmd(2015, 3, 1));
  EXPECT_EQ(db.entry_count(), 2u);
}

TEST(PdnsTest, CountAccumulates) {
  PdnsDatabase db;
  Name name = Name::FromString("moe.gov.cn");
  db.ObserveInterval(name, RRType::kNS, "ns1.x",
                     {DayFromYmd(2015, 1, 1), DayFromYmd(2015, 1, 10)});
  auto entries = db.Lookup(name);
  EXPECT_EQ(entries[0].count, 10u);
}

TEST(PdnsTest, WildcardSearchFindsAllSubdomains) {
  PdnsDatabase db;
  db.Observe(Name::FromString("gov.cn"), RRType::kNS, "a", 100);
  db.Observe(Name::FromString("moe.gov.cn"), RRType::kNS, "b", 100);
  db.Observe(Name::FromString("x.moe.gov.cn"), RRType::kNS, "c", 100);
  db.Observe(Name::FromString("gov.com"), RRType::kNS, "d", 100);
  auto hits = db.WildcardSearch(Name::FromString("gov.cn"));
  EXPECT_EQ(hits.size(), 3u);
}

TEST(PdnsTest, WildcardSearchIsLabelBounded) {
  PdnsDatabase db;
  db.Observe(Name::FromString("agov.cn"), RRType::kNS, "x", 100);
  db.Observe(Name::FromString("gov.cna"), RRType::kNS, "x", 100);
  // Neither is a subdomain of gov.cn even though the strings overlap.
  EXPECT_TRUE(db.WildcardSearch(Name::FromString("gov.cn")).empty());
}

TEST(PdnsTest, QueryFiltersByType) {
  PdnsDatabase db;
  Name name = Name::FromString("moe.gov.cn");
  db.Observe(name, RRType::kNS, "ns", 100);
  db.Observe(name, RRType::kA, "1.2.3.4", 100);
  Query q;
  q.type = RRType::kNS;
  EXPECT_EQ(db.Lookup(name, q).size(), 1u);
}

TEST(PdnsTest, QueryFiltersByWindowOverlap) {
  PdnsDatabase db;
  Name name = Name::FromString("moe.gov.cn");
  db.ObserveInterval(name, RRType::kNS, "ns", {100, 200});
  Query q;
  q.window = util::DayInterval{150, 300};
  EXPECT_EQ(db.Lookup(name, q).size(), 1u);
  q.window = util::DayInterval{201, 300};
  EXPECT_TRUE(db.Lookup(name, q).empty());
}

TEST(PdnsTest, StabilityFilterDropsShortLived) {
  PdnsDatabase db(/*merge_gap_days=*/0);
  Name name = Name::FromString("moe.gov.cn");
  db.ObserveInterval(name, RRType::kNS, "junk", {100, 102});     // 3 days
  db.ObserveInterval(name, RRType::kNS, "stable", {100, 300});   // 201 days
  Query q;
  q.min_duration_days = 7;
  auto hits = db.Lookup(name, q);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].rdata, "stable");
}

TEST(PdnsTest, ZeroGapMergesOnlyAdjacent) {
  PdnsDatabase db(/*merge_gap_days=*/0);
  Name name = Name::FromString("a.b");
  db.Observe(name, RRType::kNS, "x", 100);
  db.Observe(name, RRType::kNS, "x", 101);  // adjacent: merges
  EXPECT_EQ(db.entry_count(), 1u);
  db.Observe(name, RRType::kNS, "x", 103);  // one-day hole: new entry
  EXPECT_EQ(db.entry_count(), 2u);
}

// Property: same-rdata entries never overlap, regardless of insert order.
class PdnsMergeProperty : public ::testing::TestWithParam<int> {};

TEST_P(PdnsMergeProperty, EntriesForSameKeyStayDisjoint) {
  util::Rng rng(GetParam() * 101);
  PdnsDatabase db(/*merge_gap_days=*/10);
  Name name = Name::FromString("prop.gov.xx");
  for (int i = 0; i < 200; ++i) {
    util::CivilDay start = static_cast<util::CivilDay>(rng.UniformU64(2000));
    util::CivilDay len = static_cast<util::CivilDay>(rng.UniformU64(60));
    db.ObserveInterval(name, RRType::kNS, "ns1.x", {start, start + len});
  }
  auto entries = db.Lookup(name);
  for (size_t i = 0; i < entries.size(); ++i) {
    EXPECT_LE(entries[i].seen.first, entries[i].seen.last);
    for (size_t j = i + 1; j < entries.size(); ++j) {
      EXPECT_FALSE(entries[i].seen.Overlaps(entries[j].seen))
          << "entries " << i << " and " << j << " overlap";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PdnsMergeProperty, ::testing::Range(1, 9));

}  // namespace
}  // namespace govdns::pdns
