#include <gtest/gtest.h>

#include "core/analysis.h"
#include "core/measure.h"
#include "tests/test_world.h"

namespace govdns::core {
namespace {

using dns::Name;
using govdns::testing::TinyInternet;

class MeasureTest : public ::testing::Test {
 protected:
  MeasureTest()
      : world_(),
        resolver_(&world_.net, world_.roots()),
        measurer_(&resolver_) {}

  MeasurementResult Measure(const char* domain) {
    return measurer_.Measure(Name::FromString(domain));
  }

  static const NsHostResult* HostNamed(const MeasurementResult& r,
                                       const char* name) {
    for (const auto& host : r.hosts) {
      if (host.host == Name::FromString(name)) return &host;
    }
    return nullptr;
  }

  TinyInternet world_;
  IterativeResolver resolver_;
  ActiveMeasurer measurer_;
};

TEST_F(MeasureTest, HealthyDomain) {
  auto r = Measure("moe.gov.xx");
  EXPECT_TRUE(r.parent_located);
  EXPECT_EQ(r.parent_zone.ToString(), "gov.xx");
  EXPECT_TRUE(r.parent_responded);
  EXPECT_TRUE(r.parent_has_records);
  EXPECT_EQ(r.parent_ns.size(), 2u);
  EXPECT_EQ(r.child_ns.size(), 2u);
  EXPECT_TRUE(r.child_any_authoritative);
  EXPECT_EQ(r.rounds, 1);
  for (const auto& host : r.hosts) {
    EXPECT_EQ(host.status, NsHostStatus::kAuthoritative)
        << host.host.ToString();
    EXPECT_TRUE(host.in_parent_set);
    EXPECT_TRUE(host.in_child_set);
  }
  ASSERT_TRUE(r.soa.has_value());
  EXPECT_EQ(r.soa->mname.ToString(), "ns1.moe.gov.xx");
  EXPECT_EQ(ClassifyDelegation(r), DelegationHealth::kHealthy);
  EXPECT_EQ(ClassifyConsistency(r), ConsistencyClass::kEqual);
}

TEST_F(MeasureTest, FullyLameDomain) {
  auto r = Measure("lame.gov.xx");
  EXPECT_TRUE(r.parent_has_records);
  EXPECT_FALSE(r.child_any_authoritative);
  EXPECT_EQ(r.rounds, 2);  // second round tried and failed too
  ASSERT_EQ(r.hosts.size(), 1u);
  EXPECT_EQ(r.hosts[0].status, NsHostStatus::kNoResponse);
  EXPECT_EQ(ClassifyDelegation(r), DelegationHealth::kFullyDefective);
  EXPECT_EQ(ClassifyConsistency(r), ConsistencyClass::kNotComparable);
}

TEST_F(MeasureTest, PartiallyLameDomain) {
  auto r = Measure("half.gov.xx");
  EXPECT_TRUE(r.child_any_authoritative);
  const auto* good = HostNamed(r, "ns1.half.gov.xx");
  const auto* dead = HostNamed(r, "ns2.half.gov.xx");
  ASSERT_NE(good, nullptr);
  ASSERT_NE(dead, nullptr);
  EXPECT_EQ(good->status, NsHostStatus::kAuthoritative);
  EXPECT_EQ(dead->status, NsHostStatus::kNoResponse);
  EXPECT_EQ(ClassifyDelegation(r), DelegationHealth::kPartiallyDefective);
  // Both parent and child list both hosts: still consistent.
  EXPECT_EQ(ClassifyConsistency(r), ConsistencyClass::kEqual);
}

TEST_F(MeasureTest, TypoNsIsUnresolvable) {
  auto r = Measure("typo.gov.xx");
  ASSERT_EQ(r.hosts.size(), 1u);
  EXPECT_EQ(r.hosts[0].status, NsHostStatus::kUnresolvable);
  EXPECT_EQ(ClassifyDelegation(r), DelegationHealth::kFullyDefective);
}

TEST_F(MeasureTest, RefusingServerIsDefective) {
  auto r = Measure("refused.gov.xx");
  ASSERT_EQ(r.hosts.size(), 1u);
  EXPECT_EQ(r.hosts[0].status, NsHostStatus::kRefused);
  EXPECT_EQ(ClassifyDelegation(r), DelegationHealth::kFullyDefective);
}

TEST_F(MeasureTest, DriftedDomainShowsInconsistency) {
  auto r = Measure("drift.gov.xx");
  EXPECT_TRUE(r.child_any_authoritative);
  // P = {ns1, nsold}; C = {ns1, nsnew}.
  EXPECT_EQ(r.parent_ns.size(), 2u);
  EXPECT_EQ(r.child_ns.size(), 2u);
  EXPECT_EQ(ClassifyConsistency(r), ConsistencyClass::kOverlapNeither);
  // The dead old host makes it partially defective as well (§IV-D: 40.9%
  // of inconsistent domains also had a partial defect).
  EXPECT_EQ(ClassifyDelegation(r), DelegationHealth::kPartiallyDefective);
  // The child-only host was still queried (step 4 of Fig. 1).
  const auto* fresh = HostNamed(r, "nsnew.drift.gov.xx");
  ASSERT_NE(fresh, nullptr);
  EXPECT_FALSE(fresh->in_parent_set);
  EXPECT_TRUE(fresh->in_child_set);
  EXPECT_EQ(fresh->status, NsHostStatus::kAuthoritative);
}

TEST_F(MeasureTest, RemovedDelegationHasNoRecords) {
  auto r = Measure("gone.gov.xx");
  EXPECT_TRUE(r.parent_located);
  EXPECT_TRUE(r.parent_responded);
  EXPECT_FALSE(r.parent_has_records);
  EXPECT_TRUE(r.hosts.empty());
}

TEST_F(MeasureTest, DeadParentZone) {
  // Silence the gov.xx server: the parent zone becomes unreachable.
  world_.net.SetBehavior(TinyInternet::Ip(10, 0, 2, 1),
                         simnet::EndpointBehavior{.silent = true});
  IterativeResolver fresh(&world_.net, world_.roots());
  ActiveMeasurer measurer(&fresh);
  auto r = measurer.Measure(Name::FromString("moe.gov.xx"));
  EXPECT_FALSE(r.parent_located);
  EXPECT_FALSE(r.parent_responded);
}

TEST_F(MeasureTest, SecondRoundRecoversFromTransientLoss) {
  // Heavy loss toward the healthy moe servers: round 1 may fail entirely,
  // round 2 retries. Both arms run the naive single-shot policy so the test
  // isolates the second-round mechanism from the per-query retry armor
  // (which would push both arms to the ceiling).
  world_.net.SetBehavior(TinyInternet::Ip(10, 0, 3, 1),
                         simnet::EndpointBehavior{.loss_rate = 0.7});
  world_.net.SetBehavior(TinyInternet::Ip(10, 0, 3, 2),
                         simnet::EndpointBehavior{.loss_rate = 0.7});
  ResolverOptions naive;
  naive.retry = RetryPolicy::Disabled();
  int with_round2 = 0, without = 0;
  for (int trial = 0; trial < 30; ++trial) {
    {
      IterativeResolver resolver(&world_.net, world_.roots(), naive);
      MeasurerOptions opts;
      opts.second_round = true;
      ActiveMeasurer m(&resolver, opts);
      with_round2 += m.Measure(Name::FromString("moe.gov.xx"))
                         .child_any_authoritative;
    }
    {
      IterativeResolver resolver(&world_.net, world_.roots(), naive);
      MeasurerOptions opts;
      opts.second_round = false;
      ActiveMeasurer m(&resolver, opts);
      without += m.Measure(Name::FromString("moe.gov.xx"))
                     .child_any_authoritative;
    }
  }
  EXPECT_GT(with_round2, without);  // the second round visibly recovers
}

TEST_F(MeasureTest, MeasureAllPreservesOrder) {
  auto results = measurer_.MeasureAll(
      {Name::FromString("moe.gov.xx"), Name::FromString("lame.gov.xx")});
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].domain.ToString(), "moe.gov.xx");
  EXPECT_EQ(results[1].domain.ToString(), "lame.gov.xx");
}

TEST_F(MeasureTest, NsAddressesDeduplicates) {
  auto r = Measure("moe.gov.xx");
  auto addrs = r.NsAddresses();
  EXPECT_EQ(addrs.size(), 2u);
  auto all_ns = r.AllNs();
  EXPECT_EQ(all_ns.size(), 2u);
}

// Regression: one of victim.gov.yy's two parent servers pads its referral
// with an A record for ns2 it is not delegating to (pointing at 10.0.9.9).
// Only glue for the referral's own NS targets may be accepted; the poisoned
// address must never be attributed to — or queried on behalf of — ns2.
TEST_F(MeasureTest, RejectsOutOfBailiwickGlue) {
  auto r = Measure("victim.gov.yy");
  EXPECT_TRUE(r.parent_has_records);
  ASSERT_EQ(r.parent_ns.size(), 2u);  // the union of both parents' targets

  const NsHostResult* ns2 = HostNamed(r, "ns2.victim.gov.yy");
  ASSERT_NE(ns2, nullptr);
  ASSERT_EQ(ns2->addresses.size(), 1u);
  EXPECT_EQ(ns2->addresses[0], TinyInternet::Ip(10, 0, 12, 2));
  EXPECT_EQ(ns2->status, NsHostStatus::kAuthoritative);

  // Nothing anywhere in the result carries the poisoned address.
  for (geo::IPv4 addr : r.NsAddresses()) {
    EXPECT_NE(addr, TinyInternet::Ip(10, 0, 9, 9));
  }
}

// Regression: chain.gov.yy's parent knows only ns1, ns1's zone copy names
// {ns1,ns2}, and only ns2's newer copy names ns3. ns3 surfaces in the
// second child-query pass, so host expansion must iterate until no new
// hostname appears — a single expansion round left ns3 in child_ns with no
// NsHostResult (and thus no status) at all.
TEST_F(MeasureTest, ExpandsHostsDiscoveredInLaterRounds) {
  auto r = Measure("chain.gov.yy");
  EXPECT_TRUE(r.child_any_authoritative);
  ASSERT_EQ(r.child_ns.size(), 3u);
  ASSERT_EQ(r.hosts.size(), 3u);

  const NsHostResult* ns3 = HostNamed(r, "ns3.chain.gov.yy");
  ASSERT_NE(ns3, nullptr);
  EXPECT_EQ(ns3->status, NsHostStatus::kAuthoritative);
  EXPECT_FALSE(ns3->in_parent_set);
  EXPECT_TRUE(ns3->in_child_set);
}

}  // namespace
}  // namespace govdns::core
