#include <gtest/gtest.h>

#include <sstream>

#include "core/report.h"
#include "worldgen/adapter.h"

namespace govdns::core {
namespace {

class ReportTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    worldgen::WorldConfig config;
    config.scale = 0.015;
    world_ = worldgen::BuildWorld(config).release();
    bound_ = new worldgen::BoundStudy(worldgen::MakeStudy(*world_));
    bound_->study->RunAll();
  }
  static void TearDownTestSuite() {
    delete bound_;
    delete world_;
  }
  static worldgen::World* world_;
  static worldgen::BoundStudy* bound_;
};

worldgen::World* ReportTest::world_ = nullptr;
worldgen::BoundStudy* ReportTest::bound_ = nullptr;

TEST_F(ReportTest, BuildReportAggregatesAllSections) {
  StudyReport report = BuildReport(*bound_->study, {"cn", "br"});
  EXPECT_EQ(report.selection.total, 193);
  ASSERT_EQ(report.pdns_per_year.size(), 10u);
  EXPECT_GT(report.pdns_per_year.back().domains,
            report.pdns_per_year.front().domains);
  EXPECT_GT(report.funnel.queried, 0);
  EXPECT_GT(report.replication.domains_considered, 0);
  ASSERT_EQ(report.diversity.size(), 3u);  // Total + 2 countries
  EXPECT_EQ(report.diversity[0].label, "Total");
  EXPECT_EQ(report.providers_first_year.year, 2011);
  EXPECT_EQ(report.providers_last_year.year, 2020);
  EXPECT_GT(report.delegations.domains_considered, 0);
  EXPECT_GT(report.consistency.comparable, 0);
}

TEST_F(ReportTest, ReportIsInternallyConsistent) {
  StudyReport report = BuildReport(*bound_->study, {});
  // The funnel narrows monotonically.
  EXPECT_GE(report.funnel.queried, report.funnel.parent_responded);
  EXPECT_GE(report.funnel.parent_responded, report.funnel.parent_has_records);
  EXPECT_GE(report.funnel.parent_has_records,
            report.funnel.child_authoritative);
  // Replication and delegation analyses agree on the denominator.
  EXPECT_EQ(report.replication.domains_considered,
            report.delegations.domains_considered);
  // Defects never exceed the domains considered.
  EXPECT_LE(report.delegations.partially_defective +
                report.delegations.fully_defective,
            report.delegations.domains_considered);
  // Comparable consistency domains are a subset of responsive domains.
  EXPECT_LE(report.consistency.comparable,
            report.funnel.parent_has_records);
}

TEST_F(ReportTest, PrintReportMentionsEverySection) {
  StudyReport report = BuildReport(*bound_->study, {"cn"});
  std::ostringstream os;
  PrintReport(report, os);
  std::string text = os.str();
  for (const char* needle :
       {"selection:", "passive DNS:", "replication", "providers",
        "defective delegations", "parent/child consistency"}) {
    EXPECT_NE(text.find(needle), std::string::npos) << needle;
  }
}

}  // namespace
}  // namespace govdns::core
