#include <gtest/gtest.h>

#include <algorithm>

#include "dns/message.h"
#include "simnet/network.h"

namespace govdns::simnet {
namespace {

std::vector<uint8_t> Echo(const std::vector<uint8_t>& in) { return in; }

TEST(SimNetworkTest, ExchangeDeliversToHandler) {
  SimNetwork net(1);
  geo::IPv4 addr(10, 0, 0, 1);
  net.AttachHandler(addr, [](const std::vector<uint8_t>& q) {
    std::vector<uint8_t> reply = q;
    reply.push_back(0xFF);
    return reply;
  });
  auto reply = net.Exchange(addr, {1, 2, 3});
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(*reply, (std::vector<uint8_t>{1, 2, 3, 0xFF}));
  EXPECT_EQ(net.stats().delivered, 1u);
}

TEST(SimNetworkTest, UnreachableWithoutHandler) {
  SimNetwork net(1);
  auto reply = net.Exchange(geo::IPv4(10, 0, 0, 9), {1});
  EXPECT_FALSE(reply.ok());
  EXPECT_EQ(reply.status().code(), util::ErrorCode::kUnavailable);
  EXPECT_EQ(net.stats().unreachable, 1u);
}

TEST(SimNetworkTest, SilentEndpointTimesOutEvenWithHandler) {
  SimNetwork net(1);
  geo::IPv4 addr(10, 0, 0, 2);
  net.AttachHandler(addr, Echo);
  net.SetBehavior(addr, EndpointBehavior{.silent = true});
  auto reply = net.Exchange(addr, {1});
  EXPECT_FALSE(reply.ok());
  EXPECT_EQ(reply.status().code(), util::ErrorCode::kTimeout);
  EXPECT_EQ(net.stats().timeouts, 1u);
}

TEST(SimNetworkTest, SilentWorksWithoutHandlerToo) {
  SimNetwork net(1);
  geo::IPv4 addr(10, 0, 0, 3);
  net.SetBehavior(addr, EndpointBehavior{.silent = true});
  auto reply = net.Exchange(addr, {1});
  EXPECT_EQ(reply.status().code(), util::ErrorCode::kTimeout);
}

TEST(SimNetworkTest, SlowEndpointExceedingTimeoutTimesOut) {
  SimNetwork net(1);
  geo::IPv4 addr(10, 0, 0, 4);
  net.AttachHandler(addr, Echo);
  net.SetBehavior(addr, EndpointBehavior{.rtt_ms = 5000});
  net.set_timeout_ms(2000);
  EXPECT_EQ(net.Exchange(addr, {1}).status().code(),
            util::ErrorCode::kTimeout);
}

TEST(SimNetworkTest, ClockAdvancesWithTraffic) {
  SimNetwork net(1);
  geo::IPv4 addr(10, 0, 0, 5);
  net.AttachHandler(addr, Echo);
  net.SetBehavior(addr, EndpointBehavior{.rtt_ms = 30});
  uint64_t before = net.clock().now_ms();
  (void)net.Exchange(addr, {1});
  EXPECT_EQ(net.clock().now_ms(), before + 30);
  // Timeouts cost the full timeout budget.
  net.SetBehavior(addr, EndpointBehavior{.silent = true});
  before = net.clock().now_ms();
  (void)net.Exchange(addr, {1});
  EXPECT_EQ(net.clock().now_ms(), before + net.timeout_ms());
}

TEST(SimNetworkTest, LossIsDeterministicPerSeed) {
  auto run = [](uint64_t seed) {
    SimNetwork net(seed);
    geo::IPv4 addr(10, 0, 0, 6);
    net.AttachHandler(addr, Echo);
    net.SetBehavior(addr, EndpointBehavior{.loss_rate = 0.5});
    std::vector<bool> outcomes;
    for (int i = 0; i < 64; ++i) {
      outcomes.push_back(net.Exchange(addr, {1}).ok());
    }
    return outcomes;
  };
  EXPECT_EQ(run(7), run(7));
  EXPECT_NE(run(7), run(8));
}

TEST(SimNetworkTest, LossRateApproximatelyHonored) {
  SimNetwork net(3);
  geo::IPv4 addr(10, 0, 0, 7);
  net.AttachHandler(addr, Echo);
  net.SetBehavior(addr, EndpointBehavior{.loss_rate = 0.25});
  int ok = 0;
  for (int i = 0; i < 2000; ++i) ok += net.Exchange(addr, {1}).ok();
  EXPECT_NEAR(ok / 2000.0, 0.75, 0.05);
}

TEST(SimNetworkTest, RetriesGetFreshLossDraws) {
  SimNetwork net(3);
  geo::IPv4 addr(10, 0, 0, 8);
  net.AttachHandler(addr, Echo);
  net.SetBehavior(addr, EndpointBehavior{.loss_rate = 0.5});
  // With per-exchange draws, some retry sequence must eventually succeed.
  bool any_ok = false;
  for (int i = 0; i < 32 && !any_ok; ++i) any_ok = net.Exchange(addr, {1}).ok();
  EXPECT_TRUE(any_ok);
}

TEST(SimNetworkTest, DetachHandlerMakesUnreachable) {
  SimNetwork net(1);
  geo::IPv4 addr(10, 0, 0, 10);
  net.AttachHandler(addr, Echo);
  EXPECT_TRUE(net.HasHandler(addr));
  net.DetachHandler(addr);
  EXPECT_FALSE(net.HasHandler(addr));
  EXPECT_EQ(net.Exchange(addr, {1}).status().code(),
            util::ErrorCode::kUnavailable);
}

TEST(SimNetworkTest, EndpointCount) {
  SimNetwork net(1);
  EXPECT_EQ(net.endpoint_count(), 0u);
  net.AttachHandler(geo::IPv4(1, 1, 1, 1), Echo);
  net.AttachHandler(geo::IPv4(1, 1, 1, 2), Echo);
  net.AttachHandler(geo::IPv4(1, 1, 1, 1), Echo);  // replace, not add
  EXPECT_EQ(net.endpoint_count(), 2u);
}

// --- chaos model ----------------------------------------------------------

// A decodable DNS query so damage modes can operate on realistic wire bytes.
std::vector<uint8_t> WireQuery(uint16_t id = 1) {
  return dns::MakeQuery(id, dns::Name::FromString("q.example"),
                        dns::RRType::kA)
      .Encode();
}

std::vector<uint8_t> DnsEcho(const std::vector<uint8_t>& wire) {
  auto query = dns::Message::Decode(wire);
  return dns::MakeResponse(*query, dns::Rcode::kNoError).Encode();
}

TEST(SimNetworkChaosTest, FlappingEndpointAlternatesSilenceWindows) {
  SimNetwork net(11);
  geo::IPv4 addr(10, 0, 1, 1);
  net.AttachHandler(addr, Echo);
  net.SetBehavior(addr, EndpointBehavior{.flap_period_ms = 1000});
  int up = 0, down = 0;
  for (int i = 0; i < 20; ++i) {
    // Probe at the start of each window; each exchange also advances the
    // clock, so land back on a window boundary before the next probe.
    if (net.Exchange(addr, {1}).ok()) {
      ++up;
    } else {
      ++down;
    }
    uint64_t next_window = (net.clock().now_ms() / 1000 + 1) * 1000;
    net.clock().Advance(next_window - net.clock().now_ms());
  }
  EXPECT_GT(up, 0);
  EXPECT_GT(down, 0);
  EXPECT_EQ(net.stats().flap_dropped, uint64_t(down));
  // Flap drops cost the client its full timeout, like any silence.
  EXPECT_EQ(net.stats().timeouts, uint64_t(down));
}

TEST(SimNetworkChaosTest, FlapPhaseDiffersAcrossEndpoints) {
  SimNetwork net(11);
  geo::IPv4 a(10, 0, 1, 1), b(10, 0, 1, 2);
  net.AttachHandler(a, Echo);
  net.AttachHandler(b, Echo);
  for (geo::IPv4 ip : {a, b}) {
    net.SetBehavior(ip, EndpointBehavior{.flap_period_ms = 4000});
  }
  // Sample both endpoints across several windows; desynchronized phases
  // must disagree at least once.
  bool disagreed = false;
  for (int i = 0; i < 16 && !disagreed; ++i) {
    bool a_ok = net.Exchange(a, {1}).ok();
    bool b_ok = net.Exchange(b, {1}).ok();
    disagreed = a_ok != b_ok;
    net.clock().Advance(1500);
  }
  EXPECT_TRUE(disagreed);
}

TEST(SimNetworkChaosTest, RateLimitRefusesBeyondPerSecondBudget) {
  SimNetwork net(5);
  geo::IPv4 addr(10, 0, 2, 1);
  net.AttachHandler(addr, DnsEcho);
  net.SetBehavior(addr, EndpointBehavior{.rtt_ms = 1, .rate_limit_per_sec = 2});
  int refused = 0;
  for (int i = 0; i < 5; ++i) {
    auto raw = net.Exchange(addr, WireQuery(uint16_t(i + 1)));
    ASSERT_TRUE(raw.ok());
    auto msg = dns::Message::Decode(*raw);
    ASSERT_TRUE(msg.ok());
    refused += msg->header.rcode == dns::Rcode::kRefused;
  }
  EXPECT_EQ(refused, 3);  // budget of 2, then REFUSED
  EXPECT_EQ(net.stats().rate_limited, 3u);
  // A fresh logical second resets the window.
  net.clock().Advance(1000);
  auto raw = net.Exchange(addr, WireQuery(9));
  ASSERT_TRUE(raw.ok());
  EXPECT_EQ(dns::Message::Decode(*raw)->header.rcode, dns::Rcode::kNoError);
}

TEST(SimNetworkChaosTest, TruncatedRepliesCarryTcBit) {
  SimNetwork net(5);
  geo::IPv4 addr(10, 0, 2, 2);
  net.AttachHandler(addr, DnsEcho);
  net.SetBehavior(addr, EndpointBehavior{.truncate_rate = 1.0});
  auto raw = net.Exchange(addr, WireQuery());
  ASSERT_TRUE(raw.ok());
  auto msg = dns::Message::Decode(*raw);
  ASSERT_TRUE(msg.ok());
  EXPECT_TRUE(msg->header.tc);
  EXPECT_EQ(net.stats().truncated, 1u);
  EXPECT_EQ(net.stats().delivered, 1u);
}

TEST(SimNetworkChaosTest, WrongIdRepliesKeepPayloadButMismatch) {
  SimNetwork net(5);
  geo::IPv4 addr(10, 0, 2, 3);
  net.AttachHandler(addr, DnsEcho);
  net.SetBehavior(addr, EndpointBehavior{.wrong_id_rate = 1.0});
  auto raw = net.Exchange(addr, WireQuery(0x1234));
  ASSERT_TRUE(raw.ok());
  auto msg = dns::Message::Decode(*raw);
  ASSERT_TRUE(msg.ok());  // decodable — only the transaction id is off
  EXPECT_NE(msg->header.id, 0x1234);
  EXPECT_EQ(net.stats().wrong_id, 1u);
}

TEST(SimNetworkChaosTest, CorruptedRepliesAreUndecodable) {
  SimNetwork net(5);
  geo::IPv4 addr(10, 0, 2, 4);
  net.AttachHandler(addr, DnsEcho);
  net.SetBehavior(addr, EndpointBehavior{.corrupt_rate = 1.0});
  auto raw = net.Exchange(addr, WireQuery());
  ASSERT_TRUE(raw.ok());
  EXPECT_FALSE(dns::Message::Decode(*raw).ok());
  EXPECT_EQ(net.stats().corrupted, 1u);
}

TEST(SimNetworkChaosTest, BurstLossIsCorrelated) {
  SimNetwork net(9);
  geo::IPv4 addr(10, 0, 2, 5);
  net.AttachHandler(addr, Echo);
  net.SetBehavior(addr, EndpointBehavior{.burst_start_rate = 1.0,
                                         .burst_length = 3});
  // With certain burst starts every exchange drops: one starter plus the
  // rest of its burst, then the next burst begins immediately.
  for (int i = 0; i < 6; ++i) EXPECT_FALSE(net.Exchange(addr, {1}).ok());
  EXPECT_EQ(net.stats().burst_dropped, 6u);
  EXPECT_EQ(net.stats().delivered, 0u);
}

TEST(SimNetworkChaosTest, BurstsEndAndTrafficResumes) {
  SimNetwork net(9);
  geo::IPv4 addr(10, 0, 2, 6);
  net.AttachHandler(addr, Echo);
  net.SetBehavior(addr, EndpointBehavior{.burst_start_rate = 0.05,
                                         .burst_length = 8});
  int delivered = 0;
  for (int i = 0; i < 400; ++i) delivered += net.Exchange(addr, {1}).ok();
  EXPECT_GT(delivered, 0);
  EXPECT_GT(net.stats().burst_dropped, 0u);
  EXPECT_EQ(net.stats().delivered, uint64_t(delivered));
}

TEST(SimNetworkChaosTest, JitterVariesRoundTripTime) {
  SimNetwork net(13);
  geo::IPv4 addr(10, 0, 2, 7);
  net.AttachHandler(addr, Echo);
  net.SetBehavior(addr, EndpointBehavior{.rtt_ms = 30, .rtt_jitter_ms = 40});
  std::vector<uint64_t> deltas;
  for (int i = 0; i < 16; ++i) {
    uint64_t before = net.clock().now_ms();
    ASSERT_TRUE(net.Exchange(addr, {1}).ok());
    deltas.push_back(net.clock().now_ms() - before);
  }
  for (uint64_t d : deltas) {
    EXPECT_GE(d, 30u);
    EXPECT_LE(d, 70u);
  }
  EXPECT_GT(*std::max_element(deltas.begin(), deltas.end()),
            *std::min_element(deltas.begin(), deltas.end()));
}

TEST(SimNetworkChaosTest, ChaosIsDeterministicPerSeed) {
  auto run = [](uint64_t seed) {
    SimNetwork net(seed);
    geo::IPv4 addr(10, 0, 3, 1);
    net.AttachHandler(addr, DnsEcho);
    net.SetBehavior(addr, EndpointBehavior{.loss_rate = 0.1,
                                           .rtt_jitter_ms = 40,
                                           .corrupt_rate = 0.2,
                                           .truncate_rate = 0.2,
                                           .wrong_id_rate = 0.2,
                                           .burst_start_rate = 0.05,
                                           .burst_length = 3,
                                           .rate_limit_per_sec = 16});
    std::vector<std::vector<uint8_t>> transcript;
    for (int i = 0; i < 64; ++i) {
      auto raw = net.Exchange(addr, WireQuery(uint16_t(i)));
      transcript.push_back(raw.ok() ? *raw : std::vector<uint8_t>{});
    }
    return transcript;
  };
  EXPECT_EQ(run(21), run(21));
  EXPECT_NE(run(21), run(22));
}

TEST(ChaosProfileTest, BenignDefaultLeavesBehaviorUntouched) {
  ChaosProfile benign;
  EXPECT_FALSE(benign.Any());
  EndpointBehavior base{.loss_rate = 0.01, .rtt_ms = 25};
  EndpointBehavior out = benign.Realize(7, geo::IPv4(10, 9, 9, 9), base);
  EXPECT_EQ(out.loss_rate, base.loss_rate);
  EXPECT_EQ(out.rtt_ms, base.rtt_ms);
  EXPECT_EQ(out.flap_period_ms, 0u);
  EXPECT_EQ(out.rate_limit_per_sec, 0u);
  EXPECT_EQ(out.corrupt_rate, 0.0);
}

TEST(ChaosProfileTest, RealizeIsAPureFunctionOfSeedAndAddress) {
  ChaosProfile hostile = ChaosProfile::Hostile();
  EXPECT_TRUE(hostile.Any());
  geo::IPv4 addr(10, 4, 4, 4);
  EndpointBehavior a = hostile.Realize(42, addr, EndpointBehavior{});
  EndpointBehavior b = hostile.Realize(42, addr, EndpointBehavior{});
  EXPECT_EQ(a.flap_period_ms, b.flap_period_ms);
  EXPECT_EQ(a.rate_limit_per_sec, b.rate_limit_per_sec);
  EXPECT_EQ(a.truncate_rate, b.truncate_rate);
  EXPECT_EQ(a.wrong_id_rate, b.wrong_id_rate);
  EXPECT_EQ(a.corrupt_rate, b.corrupt_rate);
  EXPECT_EQ(a.burst_start_rate, b.burst_start_rate);
  EXPECT_EQ(a.rtt_jitter_ms, b.rtt_jitter_ms);
}

TEST(ChaosProfileTest, HostileAfflictsAFractionOfEndpoints) {
  ChaosProfile hostile = ChaosProfile::Hostile();
  int afflicted = 0;
  for (int i = 0; i < 400; ++i) {
    EndpointBehavior b = hostile.Realize(
        7, geo::IPv4(10, 20, uint8_t(i / 256), uint8_t(i % 256)),
        EndpointBehavior{});
    bool touched = b.flap_period_ms > 0 || b.rate_limit_per_sec > 0 ||
                   b.truncate_rate > 0.0 || b.wrong_id_rate > 0.0 ||
                   b.corrupt_rate > 0.0 || b.burst_start_rate > 0.0 ||
                   b.rtt_jitter_ms > 0;
    afflicted += touched;
  }
  // Hostile afflicts ~48% of endpoints; nowhere near none or all.
  EXPECT_GT(afflicted, 100);
  EXPECT_LT(afflicted, 320);
}

}  // namespace
}  // namespace govdns::simnet
