#include <gtest/gtest.h>

#include "simnet/network.h"

namespace govdns::simnet {
namespace {

std::vector<uint8_t> Echo(const std::vector<uint8_t>& in) { return in; }

TEST(SimNetworkTest, ExchangeDeliversToHandler) {
  SimNetwork net(1);
  geo::IPv4 addr(10, 0, 0, 1);
  net.AttachHandler(addr, [](const std::vector<uint8_t>& q) {
    std::vector<uint8_t> reply = q;
    reply.push_back(0xFF);
    return reply;
  });
  auto reply = net.Exchange(addr, {1, 2, 3});
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(*reply, (std::vector<uint8_t>{1, 2, 3, 0xFF}));
  EXPECT_EQ(net.stats().delivered, 1u);
}

TEST(SimNetworkTest, UnreachableWithoutHandler) {
  SimNetwork net(1);
  auto reply = net.Exchange(geo::IPv4(10, 0, 0, 9), {1});
  EXPECT_FALSE(reply.ok());
  EXPECT_EQ(reply.status().code(), util::ErrorCode::kUnavailable);
  EXPECT_EQ(net.stats().unreachable, 1u);
}

TEST(SimNetworkTest, SilentEndpointTimesOutEvenWithHandler) {
  SimNetwork net(1);
  geo::IPv4 addr(10, 0, 0, 2);
  net.AttachHandler(addr, Echo);
  net.SetBehavior(addr, EndpointBehavior{.silent = true});
  auto reply = net.Exchange(addr, {1});
  EXPECT_FALSE(reply.ok());
  EXPECT_EQ(reply.status().code(), util::ErrorCode::kTimeout);
  EXPECT_EQ(net.stats().timeouts, 1u);
}

TEST(SimNetworkTest, SilentWorksWithoutHandlerToo) {
  SimNetwork net(1);
  geo::IPv4 addr(10, 0, 0, 3);
  net.SetBehavior(addr, EndpointBehavior{.silent = true});
  auto reply = net.Exchange(addr, {1});
  EXPECT_EQ(reply.status().code(), util::ErrorCode::kTimeout);
}

TEST(SimNetworkTest, SlowEndpointExceedingTimeoutTimesOut) {
  SimNetwork net(1);
  geo::IPv4 addr(10, 0, 0, 4);
  net.AttachHandler(addr, Echo);
  net.SetBehavior(addr, EndpointBehavior{.rtt_ms = 5000});
  net.set_timeout_ms(2000);
  EXPECT_EQ(net.Exchange(addr, {1}).status().code(),
            util::ErrorCode::kTimeout);
}

TEST(SimNetworkTest, ClockAdvancesWithTraffic) {
  SimNetwork net(1);
  geo::IPv4 addr(10, 0, 0, 5);
  net.AttachHandler(addr, Echo);
  net.SetBehavior(addr, EndpointBehavior{.rtt_ms = 30});
  uint64_t before = net.clock().now_ms();
  (void)net.Exchange(addr, {1});
  EXPECT_EQ(net.clock().now_ms(), before + 30);
  // Timeouts cost the full timeout budget.
  net.SetBehavior(addr, EndpointBehavior{.silent = true});
  before = net.clock().now_ms();
  (void)net.Exchange(addr, {1});
  EXPECT_EQ(net.clock().now_ms(), before + net.timeout_ms());
}

TEST(SimNetworkTest, LossIsDeterministicPerSeed) {
  auto run = [](uint64_t seed) {
    SimNetwork net(seed);
    geo::IPv4 addr(10, 0, 0, 6);
    net.AttachHandler(addr, Echo);
    net.SetBehavior(addr, EndpointBehavior{.loss_rate = 0.5});
    std::vector<bool> outcomes;
    for (int i = 0; i < 64; ++i) {
      outcomes.push_back(net.Exchange(addr, {1}).ok());
    }
    return outcomes;
  };
  EXPECT_EQ(run(7), run(7));
  EXPECT_NE(run(7), run(8));
}

TEST(SimNetworkTest, LossRateApproximatelyHonored) {
  SimNetwork net(3);
  geo::IPv4 addr(10, 0, 0, 7);
  net.AttachHandler(addr, Echo);
  net.SetBehavior(addr, EndpointBehavior{.loss_rate = 0.25});
  int ok = 0;
  for (int i = 0; i < 2000; ++i) ok += net.Exchange(addr, {1}).ok();
  EXPECT_NEAR(ok / 2000.0, 0.75, 0.05);
}

TEST(SimNetworkTest, RetriesGetFreshLossDraws) {
  SimNetwork net(3);
  geo::IPv4 addr(10, 0, 0, 8);
  net.AttachHandler(addr, Echo);
  net.SetBehavior(addr, EndpointBehavior{.loss_rate = 0.5});
  // With per-exchange draws, some retry sequence must eventually succeed.
  bool any_ok = false;
  for (int i = 0; i < 32 && !any_ok; ++i) any_ok = net.Exchange(addr, {1}).ok();
  EXPECT_TRUE(any_ok);
}

TEST(SimNetworkTest, DetachHandlerMakesUnreachable) {
  SimNetwork net(1);
  geo::IPv4 addr(10, 0, 0, 10);
  net.AttachHandler(addr, Echo);
  EXPECT_TRUE(net.HasHandler(addr));
  net.DetachHandler(addr);
  EXPECT_FALSE(net.HasHandler(addr));
  EXPECT_EQ(net.Exchange(addr, {1}).status().code(),
            util::ErrorCode::kUnavailable);
}

TEST(SimNetworkTest, EndpointCount) {
  SimNetwork net(1);
  EXPECT_EQ(net.endpoint_count(), 0u);
  net.AttachHandler(geo::IPv4(1, 1, 1, 1), Echo);
  net.AttachHandler(geo::IPv4(1, 1, 1, 2), Echo);
  net.AttachHandler(geo::IPv4(1, 1, 1, 1), Echo);  // replace, not add
  EXPECT_EQ(net.endpoint_count(), 2u);
}

}  // namespace
}  // namespace govdns::simnet
