// Chaos resilience: the retry/backoff/health armor must keep adversarial
// network weather from corrupting the study's headline statistics, the
// per-domain query budget must hold under any weather, and the whole chaos
// model must stay deterministic end to end.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/analysis.h"
#include "core/measure.h"
#include "core/report.h"
#include "core/study.h"
#include "worldgen/adapter.h"

namespace govdns {
namespace {

class ChaosResilienceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    worldgen::WorldConfig config;
    config.scale = 0.02;
    world_ = worldgen::BuildWorld(config).release();
    bound_ = new worldgen::BoundStudy(worldgen::MakeStudy(*world_));
    bound_->study->RunSelection();
    bound_->study->RunMining();
  }
  static void TearDownTestSuite() {
    delete bound_;
    delete world_;
  }

  static std::vector<dns::Name> QueryList(size_t limit) {
    auto list = core::PdnsMiner::ActiveQueryList(bound_->study->mined());
    if (list.size() > limit) list.resize(limit);
    return list;
  }

  // One full measurement pass under the given retry policy and loss level,
  // on a fresh resolver so cache/health state never leaks between passes.
  static core::ActiveDataset MeasurePass(const core::RetryPolicy& policy,
                                         double loss,
                                         const std::vector<dns::Name>& list,
                                         core::MeasurerOptions mopts = {}) {
    world_->network().set_extra_loss_rate(loss);
    core::ResolverOptions ropts;
    ropts.retry = policy;
    core::IterativeResolver resolver(&world_->network(),
                                     world_->root_server_ips(), ropts);
    mopts.collect_soa = false;
    core::ActiveMeasurer measurer(&resolver, mopts);
    auto results = measurer.MeasureAll(list);
    world_->network().set_extra_loss_rate(0.0);
    return core::ActiveDataset::Build(std::move(results), bound_->study->seeds(),
                                      worldgen::MakeCountryMetas());
  }

  static worldgen::World* world_;
  static worldgen::BoundStudy* bound_;
};

worldgen::World* ChaosResilienceTest::world_ = nullptr;
worldgen::BoundStudy* ChaosResilienceTest::bound_ = nullptr;

TEST_F(ChaosResilienceTest, RetryArmorLowersStaleFalsePositivesAt20PctLoss) {
  // The acceptance criterion: at 20% injected loss the armored client's
  // stale-d_1NS false-positive rate (excess over its own zero-loss
  // baseline) is strictly lower than the naive single-shot client's.
  const auto list = QueryList(700);
  const auto armored = core::RetryPolicy();
  const auto naive = core::RetryPolicy::Disabled();

  double armored_base =
      core::AnalyzeReplication(MeasurePass(armored, 0.0, list)).d1ns_stale_pct;
  double armored_lossy =
      core::AnalyzeReplication(MeasurePass(armored, 0.2, list)).d1ns_stale_pct;
  double naive_base =
      core::AnalyzeReplication(MeasurePass(naive, 0.0, list)).d1ns_stale_pct;
  double naive_lossy =
      core::AnalyzeReplication(MeasurePass(naive, 0.2, list)).d1ns_stale_pct;

  double armored_fp = armored_lossy - armored_base;
  double naive_fp = naive_lossy - naive_base;
  EXPECT_LT(armored_fp, naive_fp)
      << "armored " << armored_base << " -> " << armored_lossy << ", naive "
      << naive_base << " -> " << naive_lossy;
  // And the naive client genuinely suffers under loss, so the comparison
  // above is not vacuous.
  EXPECT_GT(naive_fp, 0.0);
}

TEST_F(ChaosResilienceTest, BudgetHoldsForEveryDomainAt30PctLoss) {
  // Property: however bad the weather, no domain may cost more than the
  // per-domain budget, and measurement must terminate for all of them.
  core::MeasurerOptions mopts;
  mopts.max_queries_per_domain = 100;
  auto list = core::PdnsMiner::ActiveQueryList(bound_->study->mined());
  auto dataset = MeasurePass(core::RetryPolicy(), 0.3, list, mopts);
  ASSERT_EQ(dataset.results.size(), list.size());
  for (const auto& r : dataset.results) {
    ASSERT_LE(r.query_stats.queries, 100u) << r.domain.ToString();
    if (r.degraded) {
      // A degraded verdict must really have hit the wall, not quit early.
      EXPECT_GE(r.query_stats.queries + r.query_stats.budget_denied, 100u)
          << r.domain.ToString();
    }
  }
  auto report = core::BuildResilienceReport(dataset);
  EXPECT_EQ(report.domains, int64_t(list.size()));
  EXPECT_LE(report.max_queries_one_domain, 100u);
  EXPECT_GT(report.totals.retries, 0u);
}

TEST_F(ChaosResilienceTest, ResilienceReportAggregatesPerDomainStats) {
  const auto list = QueryList(150);
  auto dataset = MeasurePass(core::RetryPolicy(), 0.1, list);
  auto report = core::BuildResilienceReport(dataset);
  core::ResolverCounters sum;
  uint64_t max_one = 0;
  int64_t degraded = 0;
  for (const auto& r : dataset.results) {
    sum += r.query_stats;
    max_one = std::max(max_one, r.query_stats.queries);
    degraded += r.degraded;
  }
  EXPECT_EQ(report.totals, sum);
  EXPECT_EQ(report.max_queries_one_domain, max_one);
  EXPECT_EQ(report.degraded_domains, degraded);
  EXPECT_GT(report.totals.queries, 0u);
}

TEST(ChaosDeterminismTest, SameSeedHostileWorldsGiveIdenticalReports) {
  // Two independent end-to-end runs of a hostile world with the same seed
  // must produce byte-identical resilience reports: every chaos draw is a
  // pure function of (seed, endpoint, exchange ordinal).
  auto run = [] {
    worldgen::WorldConfig config;
    config.scale = 0.01;
    config.chaos = simnet::ChaosProfile::Hostile();
    auto world = worldgen::BuildWorld(config);
    auto bound = worldgen::MakeStudy(*world);
    bound.study->RunAll();
    return core::BuildResilienceReport(bound.study->active()).ToJson();
  };
  std::string a = run();
  std::string b = run();
  EXPECT_EQ(a, b);
  // The hostile profile must actually have bitten — a report with zero
  // adversity would make the determinism check vacuous.
  EXPECT_NE(a.find("\"retries\""), std::string::npos);
}

TEST(ChaosDeterminismTest, HostileWorldMeasurementSeesChaosModes) {
  worldgen::WorldConfig config;
  config.scale = 0.01;
  config.chaos = simnet::ChaosProfile::Hostile();
  auto world = worldgen::BuildWorld(config);
  auto bound = worldgen::MakeStudy(*world);
  bound.study->RunAll();
  const auto& net = world->network().stats();
  // Worldgen attached the realized afflictions: the run encountered
  // delivered-but-damaged and timeout-shaped chaos, not just clean loss.
  EXPECT_GT(net.corrupted + net.truncated + net.wrong_id, 0u);
  EXPECT_GT(net.flap_dropped + net.burst_dropped + net.rate_limited, 0u);
  auto report = core::BuildResilienceReport(bound.study->active());
  EXPECT_GT(report.totals.retries, 0u);
  EXPECT_GT(report.totals.queries, 0u);
}

}  // namespace
}  // namespace govdns
