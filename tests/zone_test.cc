#include <gtest/gtest.h>

#include "zone/auth_server.h"
#include "zone/zone.h"

namespace govdns::zone {
namespace {

using dns::MakeA;
using dns::MakeCname;
using dns::MakeNs;
using dns::MakeSoa;
using dns::Name;

std::shared_ptr<Zone> GovCnZone() {
  auto z = std::make_shared<Zone>(Name::FromString("gov.cn"));
  Name origin = z->origin();
  z->Add(MakeSoa(origin, Name::FromString("ns1.nic.gov.cn"),
                 Name::FromString("hostmaster.gov.cn"), 1));
  z->Add(MakeNs(origin, Name::FromString("ns1.nic.gov.cn")));
  z->Add(MakeNs(origin, Name::FromString("ns2.nic.gov.cn")));
  z->Add(MakeA(Name::FromString("ns1.nic.gov.cn"), geo::IPv4(10, 0, 0, 1)));
  z->Add(MakeA(Name::FromString("ns2.nic.gov.cn"), geo::IPv4(10, 0, 0, 2)));
  z->Add(MakeA(Name::FromString("www.gov.cn"), geo::IPv4(10, 0, 0, 3)));
  // Delegation: moe.gov.cn with in-bailiwick glue.
  z->Add(MakeNs(Name::FromString("moe.gov.cn"),
                Name::FromString("ns1.moe.gov.cn")));
  z->Add(MakeNs(Name::FromString("moe.gov.cn"),
                Name::FromString("ns2.moe.gov.cn")));
  z->Add(MakeA(Name::FromString("ns1.moe.gov.cn"), geo::IPv4(10, 0, 1, 1)));
  z->Add(MakeA(Name::FromString("ns2.moe.gov.cn"), geo::IPv4(10, 0, 1, 2)));
  // CNAME inside the zone.
  z->Add(MakeCname(Name::FromString("portal.gov.cn"),
                   Name::FromString("www.gov.cn")));
  return z;
}

// ---------------------------------------------------------------------------
// Zone data model
// ---------------------------------------------------------------------------

TEST(ZoneTest, FindReturnsMatchingRecords) {
  auto z = GovCnZone();
  auto ns = z->Find(z->origin(), dns::RRType::kNS);
  EXPECT_EQ(ns.size(), 2u);
  EXPECT_TRUE(z->Find(z->origin(), dns::RRType::kTXT).empty());
  EXPECT_TRUE(z->Find(Name::FromString("absent.gov.cn"), dns::RRType::kA).empty());
}

TEST(ZoneTest, NameExistsIncludesEmptyNonTerminals) {
  auto z = GovCnZone();
  EXPECT_TRUE(z->NameExists(Name::FromString("www.gov.cn")));
  // nic.gov.cn has no records itself but ns1.nic.gov.cn exists below it.
  EXPECT_TRUE(z->NameExists(Name::FromString("nic.gov.cn")));
  EXPECT_FALSE(z->NameExists(Name::FromString("nothing.gov.cn")));
}

TEST(ZoneTest, FindDelegationAtAndBelowCut) {
  auto z = GovCnZone();
  auto cut = z->FindDelegation(Name::FromString("moe.gov.cn"));
  ASSERT_TRUE(cut.has_value());
  EXPECT_EQ(cut->ToString(), "moe.gov.cn");
  cut = z->FindDelegation(Name::FromString("deep.sub.moe.gov.cn"));
  ASSERT_TRUE(cut.has_value());
  EXPECT_EQ(cut->ToString(), "moe.gov.cn");
}

TEST(ZoneTest, NoDelegationForAuthoritativeNames) {
  auto z = GovCnZone();
  EXPECT_FALSE(z->FindDelegation(Name::FromString("www.gov.cn")).has_value());
  // The apex NS records are not a delegation.
  EXPECT_FALSE(z->FindDelegation(z->origin()).has_value());
}

TEST(ZoneTest, TopmostCutWins) {
  auto z = std::make_shared<Zone>(Name::FromString("gov.br"));
  z->Add(MakeNs(Name::FromString("sp.gov.br"), Name::FromString("ns.x.br")));
  z->Add(MakeNs(Name::FromString("city.sp.gov.br"),
                Name::FromString("ns.y.br")));
  auto cut = z->FindDelegation(Name::FromString("www.city.sp.gov.br"));
  ASSERT_TRUE(cut.has_value());
  EXPECT_EQ(cut->ToString(), "sp.gov.br");
}

TEST(ZoneTest, SoaAndNsTargets) {
  auto z = GovCnZone();
  ASSERT_TRUE(z->Soa().has_value());
  auto targets = z->NsTargets(Name::FromString("moe.gov.cn"));
  ASSERT_EQ(targets.size(), 2u);
  EXPECT_EQ(targets[0].ToString(), "ns1.moe.gov.cn");
}

TEST(ZoneTest, RecordCountAndIteration) {
  auto z = GovCnZone();
  size_t visited = 0;
  z->ForEachRecord([&](const dns::ResourceRecord&) { ++visited; });
  EXPECT_EQ(visited, z->record_count());
  EXPECT_EQ(visited, 11u);
}

// ---------------------------------------------------------------------------
// Authoritative server behaviour
// ---------------------------------------------------------------------------

class AuthServerTest : public ::testing::Test {
 protected:
  AuthServerTest() : server_("ns1.nic.gov.cn") {
    server_.AddZone(GovCnZone());
  }

  dns::Message Ask(const std::string& name, dns::RRType type) {
    return server_.Answer(dns::MakeQuery(1, Name::FromString(name), type));
  }

  AuthServer server_;
};

TEST_F(AuthServerTest, AuthoritativeAnswer) {
  auto r = Ask("www.gov.cn", dns::RRType::kA);
  EXPECT_TRUE(r.header.aa);
  EXPECT_EQ(r.header.rcode, dns::Rcode::kNoError);
  ASSERT_EQ(r.answers.size(), 1u);
  EXPECT_EQ(r.answers[0].name.ToString(), "www.gov.cn");
}

TEST_F(AuthServerTest, ApexNsAnswer) {
  auto r = Ask("gov.cn", dns::RRType::kNS);
  EXPECT_TRUE(r.header.aa);
  EXPECT_EQ(r.answers.size(), 2u);
}

TEST_F(AuthServerTest, ReferralWithGlue) {
  auto r = Ask("moe.gov.cn", dns::RRType::kNS);
  EXPECT_FALSE(r.header.aa);
  EXPECT_TRUE(r.answers.empty());
  EXPECT_TRUE(r.IsReferral());
  EXPECT_EQ(r.authority.size(), 2u);
  EXPECT_EQ(r.additional.size(), 2u);  // glue A records
  EXPECT_EQ(r.authority[0].name.ToString(), "moe.gov.cn");
}

TEST_F(AuthServerTest, ReferralForNamesBelowCut) {
  auto r = Ask("www.moe.gov.cn", dns::RRType::kA);
  EXPECT_TRUE(r.IsReferral());
}

TEST_F(AuthServerTest, NxDomainWithSoa) {
  auto r = Ask("missing.gov.cn", dns::RRType::kA);
  EXPECT_EQ(r.header.rcode, dns::Rcode::kNxDomain);
  EXPECT_TRUE(r.header.aa);
  ASSERT_EQ(r.authority.size(), 1u);
  EXPECT_EQ(r.authority[0].type(), dns::RRType::kSOA);
}

TEST_F(AuthServerTest, NodataForExistingNameWrongType) {
  auto r = Ask("www.gov.cn", dns::RRType::kTXT);
  EXPECT_EQ(r.header.rcode, dns::Rcode::kNoError);
  EXPECT_TRUE(r.answers.empty());
  ASSERT_EQ(r.authority.size(), 1u);
  EXPECT_EQ(r.authority[0].type(), dns::RRType::kSOA);
}

TEST_F(AuthServerTest, CnameAnswersOtherTypes) {
  auto r = Ask("portal.gov.cn", dns::RRType::kA);
  ASSERT_EQ(r.answers.size(), 1u);
  EXPECT_EQ(r.answers[0].type(), dns::RRType::kCNAME);
}

TEST_F(AuthServerTest, RefusedOutsideServedZones) {
  auto r = Ask("example.com", dns::RRType::kA);
  EXPECT_EQ(r.header.rcode, dns::Rcode::kRefused);
}

TEST_F(AuthServerTest, FormErrOnMultiQuestion) {
  dns::Message q = dns::MakeQuery(1, Name::FromString("www.gov.cn"),
                                  dns::RRType::kA);
  q.questions.push_back(q.questions[0]);
  EXPECT_EQ(server_.Answer(q).header.rcode, dns::Rcode::kFormErr);
}

TEST_F(AuthServerTest, MostSpecificZoneWins) {
  auto moe = std::make_shared<Zone>(Name::FromString("moe.gov.cn"));
  moe->Add(MakeNs(moe->origin(), Name::FromString("ns1.moe.gov.cn")));
  moe->Add(MakeA(Name::FromString("www.moe.gov.cn"), geo::IPv4(10, 9, 9, 9)));
  server_.AddZone(moe);
  auto r = Ask("www.moe.gov.cn", dns::RRType::kA);
  EXPECT_TRUE(r.header.aa);  // answered from the child zone, not a referral
  ASSERT_EQ(r.answers.size(), 1u);
}

TEST_F(AuthServerTest, RemoveZoneCausesRefused) {
  server_.RemoveZone(Name::FromString("gov.cn"));
  auto r = Ask("www.gov.cn", dns::RRType::kA);
  EXPECT_EQ(r.header.rcode, dns::Rcode::kRefused);
}

TEST(AuthServerModesTest, RefuseAllIsLame) {
  AuthServer server("lame.example", ServerMode::kRefuseAll);
  server.AddZone(GovCnZone());
  auto r = server.Answer(
      dns::MakeQuery(1, Name::FromString("www.gov.cn"), dns::RRType::kA));
  EXPECT_EQ(r.header.rcode, dns::Rcode::kRefused);
}

TEST(AuthServerModesTest, NoAuthBitAnswersWithoutAa) {
  AuthServer server("stealth.example", ServerMode::kNoAuthBit);
  server.AddZone(GovCnZone());
  auto r = server.Answer(
      dns::MakeQuery(1, Name::FromString("www.gov.cn"), dns::RRType::kA));
  EXPECT_EQ(r.header.rcode, dns::Rcode::kNoError);
  EXPECT_FALSE(r.header.aa);
  EXPECT_EQ(r.answers.size(), 1u);
}

TEST(AuthServerModesTest, ParkingAnswersEverything) {
  AuthServer server("ns1.parkmonster.com", ServerMode::kParking);
  server.SetParkingAddresses({geo::IPv4(203, 0, 113, 10)});
  auto a = server.Answer(
      dns::MakeQuery(1, Name::FromString("whatever.example"), dns::RRType::kA));
  EXPECT_TRUE(a.header.aa);
  ASSERT_EQ(a.answers.size(), 1u);
  EXPECT_EQ(RdataToString(a.answers[0].rdata), "203.0.113.10");

  auto ns = server.Answer(
      dns::MakeQuery(2, Name::FromString("whatever.example"), dns::RRType::kNS));
  ASSERT_EQ(ns.answers.size(), 1u);
  EXPECT_EQ(RdataToString(ns.answers[0].rdata), "ns1.parkmonster.com");
}

}  // namespace
}  // namespace govdns::zone
