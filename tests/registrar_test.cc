#include <gtest/gtest.h>

#include <algorithm>

#include "registrar/registrar.h"
#include "registrar/suffix.h"
#include "util/stats.h"

namespace govdns::registrar {
namespace {

using dns::Name;

PublicSuffixList MakePsl() {
  PublicSuffixList psl;
  for (const char* s : {"com", "net", "org", "uk", "co.uk", "br", "com.br",
                        "cn", "gov.cn", "la", "gov.la"}) {
    psl.AddSuffix(Name::FromString(s));
  }
  return psl;
}

TEST(PslTest, IsPublicSuffix) {
  auto psl = MakePsl();
  EXPECT_TRUE(psl.IsPublicSuffix(Name::FromString("com")));
  EXPECT_TRUE(psl.IsPublicSuffix(Name::FromString("co.uk")));
  EXPECT_FALSE(psl.IsPublicSuffix(Name::FromString("example.com")));
}

TEST(PslTest, LongestSuffixWins) {
  auto psl = MakePsl();
  auto suffix = psl.MatchingSuffix(Name::FromString("ns1.foo.co.uk"));
  ASSERT_TRUE(suffix.has_value());
  EXPECT_EQ(suffix->ToString(), "co.uk");
  suffix = psl.MatchingSuffix(Name::FromString("ns1.foo.uk"));
  ASSERT_TRUE(suffix.has_value());
  EXPECT_EQ(suffix->ToString(), "uk");
}

TEST(PslTest, RegisteredDomainIsSuffixPlusOne) {
  auto psl = MakePsl();
  auto reg = psl.RegisteredDomain(Name::FromString("pns11.cloudns.net"));
  ASSERT_TRUE(reg.has_value());
  EXPECT_EQ(reg->ToString(), "cloudns.net");

  reg = psl.RegisteredDomain(Name::FromString("ns1.hostgator.com.br"));
  ASSERT_TRUE(reg.has_value());
  EXPECT_EQ(reg->ToString(), "hostgator.com.br");

  reg = psl.RegisteredDomain(Name::FromString("www.laogov.gov.la"));
  ASSERT_TRUE(reg.has_value());
  EXPECT_EQ(reg->ToString(), "laogov.gov.la");
}

TEST(PslTest, RegisteredDomainOfSuffixItselfIsNull) {
  auto psl = MakePsl();
  EXPECT_FALSE(psl.RegisteredDomain(Name::FromString("co.uk")).has_value());
  EXPECT_FALSE(psl.RegisteredDomain(Name::FromString("com")).has_value());
}

TEST(PslTest, UnknownTldHasNoRegisteredDomain) {
  auto psl = MakePsl();
  EXPECT_FALSE(
      psl.RegisteredDomain(Name::FromString("host.weirdtld")).has_value());
}

TEST(RegistrarTest, AvailabilityTracksRegistration) {
  SimRegistrar reg(1);
  Name domain = Name::FromString("deadhost.com");
  EXPECT_TRUE(reg.IsAvailable(domain));
  reg.Register(domain);
  EXPECT_FALSE(reg.IsAvailable(domain));
  EXPECT_FALSE(reg.PriceUsd(domain).has_value());
  reg.Release(domain);
  EXPECT_TRUE(reg.IsAvailable(domain));
  EXPECT_TRUE(reg.PriceUsd(domain).has_value());
}

TEST(RegistrarTest, PriceIsDeterministic) {
  SimRegistrar a(7), b(7);
  Name domain = Name::FromString("somehost.net");
  EXPECT_EQ(a.PriceUsd(domain), b.PriceUsd(domain));
}

TEST(RegistrarTest, PremiumOverride) {
  SimRegistrar reg(1);
  Name domain = Name::FromString("aftermarket.com");
  reg.SetPremiumPrice(domain, 300.0);
  EXPECT_EQ(reg.PriceUsd(domain).value(), 300.0);
}

TEST(RegistrarTest, PriceDistributionMatchesPaperShape) {
  // Paper Fig. 12: prices span 0.01..20,000 USD with median 11.99.
  std::vector<double> prices;
  for (int i = 0; i < 4000; ++i) {
    prices.push_back(RegistrationPriceUsd(
        42, Name::FromString("host" + std::to_string(i) + ".com")));
  }
  double lo = *std::min_element(prices.begin(), prices.end());
  double hi = *std::max_element(prices.begin(), prices.end());
  EXPECT_GE(lo, 0.01);
  EXPECT_LE(hi, 20000.0);
  EXPECT_GT(hi, 1000.0);  // the premium tail exists
  EXPECT_NEAR(util::Median(prices), 11.99, 0.5);
}

}  // namespace
}  // namespace govdns::registrar
