#include <gtest/gtest.h>

#include "geo/asn_db.h"
#include "geo/ipv4.h"

namespace govdns::geo {
namespace {

TEST(IPv4Test, FormatAndParse) {
  IPv4 ip(192, 0, 2, 33);
  EXPECT_EQ(ip.ToString(), "192.0.2.33");
  auto parsed = IPv4::Parse("192.0.2.33");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, ip);
}

TEST(IPv4Test, ParseRejectsGarbage) {
  EXPECT_FALSE(IPv4::Parse("").ok());
  EXPECT_FALSE(IPv4::Parse("1.2.3").ok());
  EXPECT_FALSE(IPv4::Parse("1.2.3.256").ok());
  EXPECT_FALSE(IPv4::Parse("1.2.3.4x").ok());
}

TEST(IPv4Test, Slash24ZeroesLowOctet) {
  EXPECT_EQ(IPv4(10, 1, 2, 3).Slash24(), IPv4(10, 1, 2, 0));
  EXPECT_EQ(IPv4(10, 1, 2, 0).Slash24(), IPv4(10, 1, 2, 0));
  EXPECT_NE(IPv4(10, 1, 2, 3).Slash24(), IPv4(10, 1, 3, 3).Slash24());
}

TEST(IPv4Test, OrderingFollowsNumericValue) {
  EXPECT_LT(IPv4(1, 0, 0, 0), IPv4(2, 0, 0, 0));
  EXPECT_LT(IPv4(10, 0, 0, 1), IPv4(10, 0, 0, 2));
}

TEST(CidrTest, ContainsAndSize) {
  Cidr block(IPv4(192, 0, 2, 0), 24);
  EXPECT_TRUE(block.Contains(IPv4(192, 0, 2, 255)));
  EXPECT_FALSE(block.Contains(IPv4(192, 0, 3, 0)));
  EXPECT_EQ(block.size(), 256u);
  EXPECT_EQ(block.ToString(), "192.0.2.0/24");
}

TEST(CidrTest, NormalizesHostBits) {
  Cidr block(IPv4(192, 0, 2, 77), 24);
  EXPECT_EQ(block.network(), IPv4(192, 0, 2, 0));
}

TEST(CidrTest, ParseRoundTrip) {
  auto block = Cidr::Parse("10.20.0.0/16");
  ASSERT_TRUE(block.ok());
  EXPECT_EQ(block->prefix_len(), 16);
  EXPECT_TRUE(block->Contains(IPv4(10, 20, 255, 1)));
  EXPECT_FALSE(Cidr::Parse("10.20.0.0").ok());
  EXPECT_FALSE(Cidr::Parse("10.20.0.0/33").ok());
}

TEST(AsnDatabaseTest, LongestPrefixWins) {
  AsnDatabase db;
  db.Add(Cidr(IPv4(10, 0, 0, 0), 8), 100, "Big ISP");
  db.Add(Cidr(IPv4(10, 5, 0, 0), 16), 200, "Customer");
  db.Add(Cidr(IPv4(10, 5, 7, 0), 24), 300, "Sub-customer");

  EXPECT_EQ(db.Lookup(IPv4(10, 1, 1, 1))->asn, 100u);
  EXPECT_EQ(db.Lookup(IPv4(10, 5, 1, 1))->asn, 200u);
  EXPECT_EQ(db.Lookup(IPv4(10, 5, 7, 9))->asn, 300u);
  EXPECT_EQ(db.Lookup(IPv4(10, 5, 7, 9))->organization, "Sub-customer");
}

TEST(AsnDatabaseTest, MissReturnsNullopt) {
  AsnDatabase db;
  db.Add(Cidr(IPv4(10, 0, 0, 0), 8), 100, "x");
  EXPECT_FALSE(db.Lookup(IPv4(11, 0, 0, 1)).has_value());
}

TEST(AsnDatabaseTest, PrefixCount) {
  AsnDatabase db;
  EXPECT_EQ(db.prefix_count(), 0u);
  db.Add(Cidr(IPv4(10, 0, 0, 0), 8), 1, "a");
  db.Add(Cidr(IPv4(10, 0, 0, 0), 24), 2, "b");
  EXPECT_EQ(db.prefix_count(), 2u);
}

TEST(AddressAllocatorTest, BlocksAreDisjointAndRegistered) {
  AsnDatabase db;
  AddressAllocator alloc(&db);
  Cidr a = alloc.AllocateBlock(24, "org-a");
  uint32_t asn_a = alloc.last_asn();
  Cidr b = alloc.AllocateBlock(24, "org-b");
  uint32_t asn_b = alloc.last_asn();
  EXPECT_NE(a.network(), b.network());
  EXPECT_NE(asn_a, asn_b);
  EXPECT_FALSE(a.Contains(b.network()));

  auto info = db.Lookup(AddressAllocator::HostInBlock(a, 3));
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->asn, asn_a);
  EXPECT_EQ(info->organization, "org-a");
}

TEST(AddressAllocatorTest, ReuseAsnGroupsBlocks) {
  AsnDatabase db;
  AddressAllocator alloc(&db);
  alloc.AllocateBlock(24, "org");
  uint32_t asn = alloc.last_asn();
  Cidr b = alloc.AllocateBlock(24, "org", asn);
  EXPECT_EQ(db.Lookup(b.network())->asn, asn);
}

TEST(AddressAllocatorTest, HostInBlockSkipsNetworkAddress) {
  AsnDatabase db;
  AddressAllocator alloc(&db);
  Cidr block = alloc.AllocateBlock(24, "org");
  EXPECT_EQ(AddressAllocator::HostInBlock(block, 0).bits(),
            block.network().bits() + 1);
}

TEST(AddressAllocatorTest, AlignmentForMixedSizes) {
  AsnDatabase db;
  AddressAllocator alloc(&db);
  alloc.AllocateBlock(24, "small");
  Cidr big = alloc.AllocateBlock(16, "big");
  // A /16 must start on a /16 boundary.
  EXPECT_EQ(big.network().bits() & 0xFFFF, 0u);
}

}  // namespace
}  // namespace govdns::geo
