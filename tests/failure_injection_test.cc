// Failure injection: adversarial and degenerate server behaviour must never
// hang, crash, or mislead the measurement pipeline — only degrade it.
#include <gtest/gtest.h>

#include "core/analysis.h"
#include "core/measure.h"
#include "core/resolver.h"
#include "tests/test_world.h"

namespace govdns::core {
namespace {

using dns::MakeA;
using dns::MakeNs;
using dns::Name;
using govdns::testing::TinyInternet;

class FailureInjectionTest : public ::testing::Test {
 protected:
  FailureInjectionTest() : world_(), resolver_(&world_.net, world_.roots()) {}

  TinyInternet world_;
  IterativeResolver resolver_;
};

TEST_F(FailureInjectionTest, CyclicGluelessDelegationTerminates) {
  // a.gov.xx delegates to ns.b.gov.xx; b.gov.xx delegates to ns.a.gov.xx —
  // neither resolvable without the other. The resolver's depth budget must
  // cut the mutual recursion.
  auto gov = std::make_shared<zone::Zone>(Name::FromString("gov.xx"));
  gov->Add(MakeNs(Name::FromString("a.gov.xx"), Name::FromString("ns.b.gov.xx")));
  gov->Add(MakeNs(Name::FromString("b.gov.xx"), Name::FromString("ns.a.gov.xx")));
  world_.gov_server->RemoveZone(Name::FromString("gov.xx"));
  // Rebuild the gov zone with the cycle plus its own apex data.
  gov->Add(MakeNs(Name::FromString("gov.xx"), Name::FromString("ns1.nic.gov.xx")));
  gov->Add(MakeA(Name::FromString("ns1.nic.gov.xx"), TinyInternet::Ip(10, 0, 2, 1)));
  world_.gov_server->AddZone(gov);

  auto result = resolver_.Resolve(Name::FromString("www.a.gov.xx"),
                                  dns::RRType::kA);
  EXPECT_FALSE(result.ok());  // fails, but returns
}

TEST_F(FailureInjectionTest, SelfReferentialGluelessDelegationTerminates) {
  auto gov = std::make_shared<zone::Zone>(Name::FromString("gov.xx"));
  gov->Add(MakeNs(Name::FromString("loop.gov.xx"),
                  Name::FromString("ns.loop.gov.xx")));  // glueless, in-zone
  gov->Add(MakeNs(Name::FromString("gov.xx"), Name::FromString("ns1.nic.gov.xx")));
  gov->Add(MakeA(Name::FromString("ns1.nic.gov.xx"), TinyInternet::Ip(10, 0, 2, 1)));
  world_.gov_server->RemoveZone(Name::FromString("gov.xx"));
  world_.gov_server->AddZone(gov);
  auto result =
      resolver_.Resolve(Name::FromString("www.loop.gov.xx"), dns::RRType::kA);
  EXPECT_FALSE(result.ok());
}

TEST_F(FailureInjectionTest, MalformedResponderIsDefectiveNotFatal) {
  // An endpoint that answers with garbage bytes.
  geo::IPv4 addr = TinyInternet::Ip(10, 0, 9, 9);
  world_.net.AttachHandler(addr, [](const std::vector<uint8_t>&) {
    return std::vector<uint8_t>{0xde, 0xad, 0xbe, 0xef};
  });
  ServerReply reply = resolver_.QueryServer(
      addr, Name::FromString("moe.gov.xx"), dns::RRType::kNS);
  EXPECT_EQ(reply.outcome, QueryOutcome::kMalformed);
}

TEST_F(FailureInjectionTest, MismatchedTransactionIdRejected) {
  geo::IPv4 addr = TinyInternet::Ip(10, 0, 9, 10);
  world_.net.AttachHandler(addr, [](const std::vector<uint8_t>& wire) {
    auto query = dns::Message::Decode(wire);
    dns::Message reply = dns::MakeResponse(*query, dns::Rcode::kNoError);
    reply.header.id ^= 0xFFFF;  // off-path spoof with the wrong id
    return reply.Encode();
  });
  ServerReply reply = resolver_.QueryServer(
      addr, Name::FromString("moe.gov.xx"), dns::RRType::kNS);
  EXPECT_EQ(reply.outcome, QueryOutcome::kMalformed);
}

// Total-loss and heavy-loss termination live in degradation_test.cc with the
// rest of the non-terminating fault coverage (DESIGN.md §6g).

TEST_F(FailureInjectionTest, TldRefusingEverythingIsDeadParent) {
  world_.tld_server->set_mode(zone::ServerMode::kRefuseAll);
  IterativeResolver fresh(&world_.net, world_.roots());
  ActiveMeasurer measurer(&fresh);
  auto r = measurer.Measure(Name::FromString("moe.gov.xx"));
  EXPECT_FALSE(r.parent_located);
  EXPECT_FALSE(r.parent_has_records);
}

TEST_F(FailureInjectionTest, TruncatingServerIsMalformedAfterRetries) {
  // A middlebox that sets TC on every reply: the payload is never usable
  // over UDP, so after exhausting retries the verdict is kMalformed.
  const geo::IPv4 moe = TinyInternet::Ip(10, 0, 3, 1);
  auto b = world_.net.GetBehavior(moe);
  b.truncate_rate = 1.0;
  world_.net.SetBehavior(moe, b);
  ServerReply reply = resolver_.QueryServer(
      moe, Name::FromString("www.moe.gov.xx"), dns::RRType::kA);
  EXPECT_EQ(reply.outcome, QueryOutcome::kMalformed);
  EXPECT_FALSE(reply.message.has_value());
  EXPECT_GE(resolver_.counters().truncated, 3u);  // every attempt truncated
}

TEST_F(FailureInjectionTest, PersistentSpoofedIdsAreMalformed) {
  const geo::IPv4 moe = TinyInternet::Ip(10, 0, 3, 1);
  auto b = world_.net.GetBehavior(moe);
  b.wrong_id_rate = 1.0;
  world_.net.SetBehavior(moe, b);
  ServerReply reply = resolver_.QueryServer(
      moe, Name::FromString("www.moe.gov.xx"), dns::RRType::kA);
  EXPECT_EQ(reply.outcome, QueryOutcome::kMalformed);
  EXPECT_GE(resolver_.counters().wrong_id, 3u);
}

TEST_F(FailureInjectionTest, IntermittentSpoofRecoveredByRetry) {
  const geo::IPv4 moe = TinyInternet::Ip(10, 0, 3, 1);
  auto b = world_.net.GetBehavior(moe);
  b.wrong_id_rate = 0.5;
  world_.net.SetBehavior(moe, b);
  ResolverOptions options;
  options.retry.max_attempts = 10;
  IterativeResolver armored(&world_.net, world_.roots(), options);
  ServerReply reply = armored.QueryServer(
      moe, Name::FromString("www.moe.gov.xx"), dns::RRType::kA);
  EXPECT_EQ(reply.outcome, QueryOutcome::kAuthAnswer);
}

TEST_F(FailureInjectionTest, RateLimitedServerRefusesNotFatal) {
  const geo::IPv4 moe = TinyInternet::Ip(10, 0, 3, 1);
  auto b = world_.net.GetBehavior(moe);
  b.rate_limit_per_sec = 1;
  world_.net.SetBehavior(moe, b);
  const Name q = Name::FromString("www.moe.gov.xx");
  ServerReply first = resolver_.QueryServer(moe, q, dns::RRType::kA);
  EXPECT_EQ(first.outcome, QueryOutcome::kAuthAnswer);
  ServerReply second = resolver_.QueryServer(moe, q, dns::RRType::kA);
  EXPECT_EQ(second.outcome, QueryOutcome::kRefused);
  EXPECT_GE(resolver_.counters().refused, 1u);
  // The next logical second replenishes the budget.
  world_.net.clock().Advance(1000);
  ServerReply third = resolver_.QueryServer(moe, q, dns::RRType::kA);
  EXPECT_EQ(third.outcome, QueryOutcome::kAuthAnswer);
}

TEST_F(FailureInjectionTest, FlappingServerRecoveredByBackoff) {
  const geo::IPv4 moe = TinyInternet::Ip(10, 0, 3, 1);
  auto b = world_.net.GetBehavior(moe);
  b.flap_period_ms = 1200;
  world_.net.SetBehavior(moe, b);
  ResolverOptions options;
  options.retry.max_attempts = 8;
  options.retry.initial_backoff_ms = 500;
  IterativeResolver armored(&world_.net, world_.roots(), options);
  // Each timed-out attempt plus its backoff moves the clock past window
  // boundaries, so some attempt lands in an up-window.
  ServerReply reply = armored.QueryServer(
      moe, Name::FromString("www.moe.gov.xx"), dns::RRType::kA);
  EXPECT_EQ(reply.outcome, QueryOutcome::kAuthAnswer);
}

TEST_F(FailureInjectionTest, ParkingWildcardDoesNotLookLame) {
  // Delegate park.gov.xx to the parking-style server: the measurement sees
  // responsive-but-inconsistent, not defective (the §IV-D scenario).
  auto gov = std::make_shared<zone::Zone>(Name::FromString("gov.xx"));
  gov->Add(MakeNs(Name::FromString("gov.xx"), Name::FromString("ns1.nic.gov.xx")));
  gov->Add(MakeA(Name::FromString("ns1.nic.gov.xx"), TinyInternet::Ip(10, 0, 2, 1)));
  // The delegation still names the long-gone operator; its address is now
  // held by the parking service, which answers under its own NS name.
  gov->Add(MakeNs(Name::FromString("park.gov.xx"),
                  Name::FromString("ns1.oldco.gov.xx")));
  gov->Add(MakeA(Name::FromString("ns1.oldco.gov.xx"), TinyInternet::Ip(10, 0, 8, 1)));
  world_.gov_server->RemoveZone(Name::FromString("gov.xx"));
  world_.gov_server->AddZone(gov);

  static zone::AuthServer parking("ns1.parkit.gov.xx",
                                  zone::ServerMode::kParking);
  parking.SetParkingAddresses({TinyInternet::Ip(10, 0, 8, 1)});
  world_.net.AttachHandler(
      TinyInternet::Ip(10, 0, 8, 1), [](const std::vector<uint8_t>& wire) {
        auto query = dns::Message::Decode(wire);
        return parking.Answer(*query).Encode();
      });

  IterativeResolver fresh(&world_.net, world_.roots());
  ActiveMeasurer measurer(&fresh);
  auto r = measurer.Measure(Name::FromString("park.gov.xx"));
  EXPECT_TRUE(r.child_any_authoritative);
  EXPECT_EQ(ClassifyDelegation(r), DelegationHealth::kHealthy);
  auto klass = ClassifyConsistency(r);
  EXPECT_NE(klass, ConsistencyClass::kEqual);
  EXPECT_NE(klass, ConsistencyClass::kNotComparable);
}

}  // namespace
}  // namespace govdns::core
