#include <gtest/gtest.h>

#include <algorithm>

#include "dns/name.h"
#include "util/rng.h"

namespace govdns::dns {
namespace {

TEST(NameTest, ParseBasic) {
  auto name = Name::Parse("www.gov.au");
  ASSERT_TRUE(name.ok());
  EXPECT_EQ(name->LabelCount(), 3u);
  EXPECT_EQ(name->Label(0), "www");
  EXPECT_EQ(name->Label(2), "au");
  EXPECT_EQ(name->ToString(), "www.gov.au");
}

TEST(NameTest, ParseRoot) {
  auto root = Name::Parse(".");
  ASSERT_TRUE(root.ok());
  EXPECT_TRUE(root->IsRoot());
  EXPECT_EQ(root->ToString(), ".");
}

TEST(NameTest, ParseTrailingDot) {
  auto name = Name::Parse("gov.cn.");
  ASSERT_TRUE(name.ok());
  EXPECT_EQ(name->ToString(), "gov.cn");
}

TEST(NameTest, ParseLowercases) {
  EXPECT_EQ(Name::FromString("WWW.Gov.AU").ToString(), "www.gov.au");
}

TEST(NameTest, ParseRejectsBadInput) {
  EXPECT_FALSE(Name::Parse("").ok());
  EXPECT_FALSE(Name::Parse("a..b").ok());
  EXPECT_FALSE(Name::Parse("has space.com").ok());
  EXPECT_FALSE(Name::Parse(std::string(64, 'a') + ".com").ok());  // label>63
}

TEST(NameTest, ParseRejectsOverlongName) {
  std::string long_name;
  for (int i = 0; i < 30; ++i) long_name += "aaaaaaaaa.";  // 300 octets
  long_name += "com";
  EXPECT_FALSE(Name::Parse(long_name).ok());
}

TEST(NameTest, AcceptsUnderscoreAndHyphen) {
  EXPECT_TRUE(Name::Parse("_dmarc.example.com").ok());
  EXPECT_TRUE(Name::Parse("awsdns-03.co.uk").ok());
}

TEST(NameTest, SubdomainRelations) {
  Name root = Name::Root();
  Name au = Name::FromString("au");
  Name gov_au = Name::FromString("gov.au");
  Name www = Name::FromString("www.gov.au");

  EXPECT_TRUE(www.IsSubdomainOf(gov_au));
  EXPECT_TRUE(www.IsSubdomainOf(au));
  EXPECT_TRUE(www.IsSubdomainOf(root));
  EXPECT_TRUE(www.IsSubdomainOf(www));
  EXPECT_FALSE(gov_au.IsSubdomainOf(www));
  EXPECT_TRUE(www.IsProperSubdomainOf(gov_au));
  EXPECT_FALSE(www.IsProperSubdomainOf(www));
}

TEST(NameTest, SubdomainIsLabelWiseNotStringWise) {
  // "ngov.au" must not count as a subdomain of "gov.au".
  EXPECT_FALSE(Name::FromString("ngov.au").IsSubdomainOf(
      Name::FromString("gov.au")));
  EXPECT_FALSE(Name::FromString("gov.au").IsSubdomainOf(
      Name::FromString("ov.au")));
}

TEST(NameTest, ParentChildSuffix) {
  Name www = Name::FromString("www.gov.au");
  EXPECT_EQ(www.Parent().ToString(), "gov.au");
  EXPECT_EQ(www.Parent().Parent().ToString(), "au");
  EXPECT_EQ(Name::FromString("gov.au").Child("moe").ToString(), "moe.gov.au");
  EXPECT_EQ(www.Suffix(2).ToString(), "gov.au");
  EXPECT_EQ(www.Suffix(0).ToString(), ".");
  EXPECT_EQ(www.Suffix(3), www);
}

TEST(NameTest, WireLength) {
  EXPECT_EQ(Name::Root().WireLength(), 1u);
  EXPECT_EQ(Name::FromString("gov.au").WireLength(), 1u + 4 + 3);  // 3gov2au0
}

TEST(NameTest, CanonicalOrderingByRightmostLabel) {
  // a.gov.au < b.gov.au, and all *.gov.au sort between gov.au and gova.au.
  Name gov_au = Name::FromString("gov.au");
  Name a = Name::FromString("a.gov.au");
  Name b = Name::FromString("b.gov.au");
  Name gova = Name::FromString("gova.au");
  EXPECT_LT(gov_au, a);
  EXPECT_LT(a, b);
  EXPECT_LT(b, gova);
}

TEST(NameTest, EqualityIgnoresSourceCase) {
  EXPECT_EQ(Name::FromString("NS1.Gov.CN"), Name::FromString("ns1.gov.cn"));
}

TEST(NameTest, HashConsistentWithEquality) {
  Name::Hash hash;
  EXPECT_EQ(hash(Name::FromString("a.b.c")), hash(Name::FromString("A.b.C")));
  EXPECT_NE(hash(Name::FromString("a.b.c")), hash(Name::FromString("a.b.d")));
}

TEST(NameTest, FromLabels) {
  auto name = Name::FromLabels({"www", "gov", "au"});
  ASSERT_TRUE(name.ok());
  EXPECT_EQ(name->ToString(), "www.gov.au");
  EXPECT_FALSE(Name::FromLabels({"ok", ""}).ok());
}

// Property sweep: ordering is a strict weak order consistent with equality.
class NameOrderProperty : public ::testing::TestWithParam<int> {};

TEST_P(NameOrderProperty, TotalOrderOnRandomNames) {
  util::Rng rng(GetParam());
  std::vector<Name> names;
  static const char* kLabels[] = {"a", "b", "ns1", "gov", "cn", "au", "www"};
  for (int i = 0; i < 40; ++i) {
    std::vector<std::string> labels;
    int n = 1 + static_cast<int>(rng.UniformU64(4));
    for (int j = 0; j < n; ++j) {
      labels.push_back(kLabels[rng.UniformU64(std::size(kLabels))]);
    }
    names.push_back(*Name::FromLabels(std::move(labels)));
  }
  std::sort(names.begin(), names.end());
  for (size_t i = 0; i + 1 < names.size(); ++i) {
    // Sorted: no element greater than its successor.
    EXPECT_FALSE(names[i + 1] < names[i]);
    // Consistency: equal iff neither is less.
    bool eq = names[i] == names[i + 1];
    bool neither_less = !(names[i] < names[i + 1]) && !(names[i + 1] < names[i]);
    EXPECT_EQ(eq, neither_less);
  }
  // Subdomains are contiguous after their ancestor in canonical order.
  for (size_t i = 0; i < names.size(); ++i) {
    bool in_run = false, run_ended = false;
    for (size_t j = i + 1; j < names.size(); ++j) {
      bool sub = names[j].IsSubdomainOf(names[i]);
      if (sub) {
        EXPECT_FALSE(run_ended) << names[j].ToString() << " under "
                                << names[i].ToString() << " after a gap";
        in_run = true;
      } else if (in_run) {
        run_ended = true;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NameOrderProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// Property sweep: parse/format round trip.
class NameRoundTripProperty : public ::testing::TestWithParam<int> {};

TEST_P(NameRoundTripProperty, ParseFormatRoundTrip) {
  util::Rng rng(GetParam() * 977);
  for (int i = 0; i < 50; ++i) {
    std::vector<std::string> labels;
    int n = 1 + static_cast<int>(rng.UniformU64(5));
    for (int j = 0; j < n; ++j) {
      std::string label;
      int len = 1 + static_cast<int>(rng.UniformU64(12));
      for (int k = 0; k < len; ++k) {
        label += static_cast<char>('a' + rng.UniformU64(26));
      }
      labels.push_back(std::move(label));
    }
    auto name = Name::FromLabels(labels);
    ASSERT_TRUE(name.ok());
    auto reparsed = Name::Parse(name->ToString());
    ASSERT_TRUE(reparsed.ok());
    EXPECT_EQ(*name, *reparsed);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NameRoundTripProperty,
                         ::testing::Range(1, 9));

}  // namespace
}  // namespace govdns::dns
