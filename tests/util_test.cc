#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <utility>

#include "util/arena.h"
#include "util/civil_time.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/status.h"
#include "util/strings.h"
#include "util/table.h"

namespace govdns::util {
namespace {

// ---------------------------------------------------------------------------
// Status
// ---------------------------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = TimeoutError("server x");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), ErrorCode::kTimeout);
  EXPECT_EQ(s.message(), "server x");
  EXPECT_EQ(s.ToString(), "TIMEOUT: server x");
}

TEST(StatusTest, AllErrorConstructorsSetDistinctCodes) {
  std::set<ErrorCode> codes;
  codes.insert(InvalidArgumentError("").code());
  codes.insert(ParseError("").code());
  codes.insert(NotFoundError("").code());
  codes.insert(TimeoutError("").code());
  codes.insert(RefusedError("").code());
  codes.insert(UnavailableError("").code());
  codes.insert(FailedPreconditionError("").code());
  codes.insert(InternalError("").code());
  EXPECT_EQ(codes.size(), 8u);
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v(42);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  EXPECT_EQ(v.value_or(7), 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v(NotFoundError("nope"));
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), ErrorCode::kNotFound);
  EXPECT_EQ(v.value_or(7), 7);
}

TEST(StatusOrTest, MoveOnlyValue) {
  StatusOr<std::unique_ptr<int>> v(std::make_unique<int>(5));
  ASSERT_TRUE(v.ok());
  std::unique_ptr<int> p = *std::move(v);
  EXPECT_EQ(*p, 5);
}

// ---------------------------------------------------------------------------
// Rng
// ---------------------------------------------------------------------------

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, ForkIsIndependentOfDrawCount) {
  Rng a(7), b(7);
  a.NextU64();  // advance one stream only
  // Forks depend only on (seed, name), not on generator state.
  EXPECT_EQ(a.Fork("x").NextU64(), b.Fork("x").NextU64());
}

TEST(RngTest, ForkDiffersByName) {
  Rng a(7);
  EXPECT_NE(a.Fork("x").NextU64(), a.Fork("y").NextU64());
}

TEST(RngTest, UniformU64RespectsBound) {
  Rng rng(99);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.UniformU64(17), 17u);
  }
}

TEST(RngTest, UniformU64CoversRange) {
  Rng rng(5);
  std::set<uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.UniformU64(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(11);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(3);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double v = rng.UniformDouble();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(1);
  for (int i = 0; i < 10; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliApproximatesProbability) {
  Rng rng(42);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(RngTest, ZipfFavorsLowRanks) {
  Rng rng(8);
  int64_t rank1 = 0, rank10 = 0;
  for (int i = 0; i < 20000; ++i) {
    uint64_t r = rng.Zipf(10, 1.0);
    ASSERT_GE(r, 1u);
    ASSERT_LE(r, 10u);
    if (r == 1) ++rank1;
    if (r == 10) ++rank10;
  }
  EXPECT_GT(rank1, rank10 * 4);
}

TEST(RngTest, WeightedIndexProportional) {
  Rng rng(21);
  std::vector<double> weights = {1.0, 3.0};
  int hi = 0;
  for (int i = 0; i < 10000; ++i) {
    size_t k = rng.WeightedIndex(weights);
    ASSERT_LT(k, 2u);
    hi += k == 1;
  }
  EXPECT_NEAR(hi / 10000.0, 0.75, 0.03);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(13);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7};
  auto original = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(RngTest, HashStringStable) {
  EXPECT_EQ(HashString("abc"), HashString("abc"));
  EXPECT_NE(HashString("abc"), HashString("abd"));
  EXPECT_NE(HashString("abc", 1), HashString("abc", 2));
}

// ---------------------------------------------------------------------------
// Civil time
// ---------------------------------------------------------------------------

TEST(CivilTimeTest, EpochIsZero) {
  EXPECT_EQ(DayFromYmd(1970, 1, 1), 0);
  EXPECT_EQ(DateFromDay(0), (CivilDate{1970, 1, 1}));
}

TEST(CivilTimeTest, KnownDates) {
  EXPECT_EQ(DayFromYmd(2020, 1, 1), 18262);
  EXPECT_EQ(DayFromYmd(2011, 1, 1), 14975);
}

TEST(CivilTimeTest, LeapYears) {
  EXPECT_TRUE(IsLeapYear(2020));
  EXPECT_TRUE(IsLeapYear(2000));
  EXPECT_FALSE(IsLeapYear(1900));
  EXPECT_FALSE(IsLeapYear(2019));
  EXPECT_EQ(DaysInYear(2020), 366);
  EXPECT_EQ(DaysInYear(2021), 365);
  EXPECT_EQ(DaysInMonth(2020, 2), 29);
  EXPECT_EQ(DaysInMonth(2021, 2), 28);
}

TEST(CivilTimeTest, YearBoundariesAreConsistent) {
  for (int year = 2010; year <= 2022; ++year) {
    EXPECT_EQ(YearEnd(year) - YearStart(year) + 1, DaysInYear(year));
    EXPECT_EQ(YearStart(year + 1), YearEnd(year) + 1);
  }
}

TEST(CivilTimeTest, RoundTripAcrossDecades) {
  for (CivilDay day = DayFromYmd(1999, 12, 25); day < DayFromYmd(2030, 1, 7);
       day += 13) {
    EXPECT_EQ(DayFromDate(DateFromDay(day)), day);
  }
}

TEST(CivilTimeTest, FormatAndParse) {
  EXPECT_EQ(FormatDay(DayFromYmd(2021, 2, 15)), "2021-02-15");
  auto parsed = ParseDay("2021-02-15");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, DayFromYmd(2021, 2, 15));
}

TEST(CivilTimeTest, ParseRejectsGarbage) {
  EXPECT_FALSE(ParseDay("not a date").ok());
  EXPECT_FALSE(ParseDay("2021-13-01").ok());
  EXPECT_FALSE(ParseDay("2021-02-30").ok());
}

TEST(DayIntervalTest, ContainsAndOverlaps) {
  DayInterval a{10, 20};
  EXPECT_TRUE(a.Contains(10));
  EXPECT_TRUE(a.Contains(20));
  EXPECT_FALSE(a.Contains(21));
  EXPECT_TRUE(a.Overlaps({20, 30}));
  EXPECT_TRUE(a.Overlaps({0, 10}));
  EXPECT_FALSE(a.Overlaps({21, 30}));
  EXPECT_EQ(a.LengthDays(), 11);
  EXPECT_EQ((DayInterval{5, 5}).LengthDays(), 1);
}

TEST(DayIntervalTest, LengthVersusGap) {
  // The §III-C stability filter compares the first-to-last *gap*
  // (last - first), which is one less than the inclusive LengthDays(). A
  // sighting on 7 consecutive calendar days spans only a 6-day gap.
  DayInterval week{DayFromYmd(2015, 3, 1), DayFromYmd(2015, 3, 7)};
  EXPECT_EQ(week.LengthDays(), 7);
  EXPECT_EQ(week.last - week.first, 6);
  DayInterval single{100, 100};
  EXPECT_EQ(single.last - single.first, 0);
  EXPECT_EQ(single.LengthDays(), 1);
}

TEST(DayIntervalTest, OverlapsIsSymmetricAndSelfInclusive) {
  DayInterval a{10, 20};
  EXPECT_TRUE(a.Overlaps(a));
  // Single-day touching at each endpoint, both directions.
  EXPECT_TRUE(a.Overlaps({10, 10}));
  EXPECT_TRUE(a.Overlaps({20, 20}));
  EXPECT_TRUE((DayInterval{20, 20}).Overlaps(a));
  EXPECT_FALSE(a.Overlaps({9, 9}));
  EXPECT_FALSE(a.Overlaps({21, 21}));
  // Containment in both nestings.
  EXPECT_TRUE(a.Overlaps({0, 30}));
  EXPECT_TRUE((DayInterval{0, 30}).Overlaps(a));
}

TEST(DayIntervalTest, YearBoundaryAdjacency) {
  // Dec 31 and Jan 1 are adjacent, not overlapping — the mining sweep
  // depends on year intervals partitioning the timeline exactly.
  DayInterval y2015{YearStart(2015), YearEnd(2015)};
  DayInterval y2016{YearStart(2016), YearEnd(2016)};
  EXPECT_EQ(y2015.last + 1, y2016.first);
  EXPECT_FALSE(y2015.Overlaps(y2016));
  EXPECT_EQ(y2015.LengthDays(), 365);
  EXPECT_EQ((DayInterval{YearStart(2012), YearEnd(2012)}).LengthDays(), 366);
  DayInterval crossing{DayFromYmd(2015, 12, 31), DayFromYmd(2016, 1, 1)};
  EXPECT_TRUE(crossing.Overlaps(y2015));
  EXPECT_TRUE(crossing.Overlaps(y2016));
}

// ---------------------------------------------------------------------------
// Strings
// ---------------------------------------------------------------------------

TEST(StringsTest, SplitKeepsEmptyPieces) {
  EXPECT_EQ(Split("a.b.c", '.'),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("a..b", '.'), (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(Split("", '.'), (std::vector<std::string>{""}));
}

TEST(StringsTest, Join) {
  EXPECT_EQ(Join({"a", "b"}, "."), "a.b");
  EXPECT_EQ(Join({}, "."), "");
}

TEST(StringsTest, CaseHelpers) {
  EXPECT_EQ(ToLower("NS1.Example.COM"), "ns1.example.com");
  EXPECT_TRUE(EqualsIgnoreCase("AbC", "aBc"));
  EXPECT_FALSE(EqualsIgnoreCase("abc", "abd"));
  EXPECT_TRUE(EndsWithIgnoreCase("ns1.AWSDNS-03.com", ".awsdns-03.COM"));
  EXPECT_FALSE(EndsWithIgnoreCase("short", "longer-suffix"));
  EXPECT_TRUE(ContainsIgnoreCase("ns-0.AWSdns-12.org", ".awsdns-"));
  EXPECT_FALSE(ContainsIgnoreCase("ns1.cloudflare.com", ".awsdns-"));
}

TEST(StringsTest, WithCommas) {
  EXPECT_EQ(WithCommas(0), "0");
  EXPECT_EQ(WithCommas(999), "999");
  EXPECT_EQ(WithCommas(1000), "1,000");
  EXPECT_EQ(WithCommas(1234567), "1,234,567");
  EXPECT_EQ(WithCommas(-1234), "-1,234");
}

TEST(StringsTest, Percent) {
  EXPECT_EQ(Percent(0.2954), "29.5%");
  EXPECT_EQ(Percent(1.0, 0), "100%");
}

// ---------------------------------------------------------------------------
// Stats
// ---------------------------------------------------------------------------

TEST(StatsTest, ModeBasic) {
  EXPECT_EQ(ModeOf({1, 2, 2, 3}), 2);
  EXPECT_EQ(ModeOf({5}), 5);
}

TEST(StatsTest, ModeTieBreaksTowardSmaller) {
  EXPECT_EQ(ModeOf({1, 1, 2, 2}), 1);
  EXPECT_EQ(ModeOf({3, 2, 3, 2}), 2);
}

TEST(StatsTest, PercentileInterpolates) {
  std::vector<double> v = {0, 10};
  EXPECT_DOUBLE_EQ(Percentile(v, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 1.0), 10.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 0.5), 5.0);
}

TEST(StatsTest, MedianAndMean) {
  EXPECT_DOUBLE_EQ(Median({3, 1, 2}), 2.0);
  EXPECT_DOUBLE_EQ(Mean({1, 2, 3, 4}), 2.5);
}

TEST(StatsTest, EmpiricalCdfMonotone) {
  auto cdf = EmpiricalCdf({3, 1, 2, 2});
  ASSERT_EQ(cdf.size(), 3u);
  EXPECT_DOUBLE_EQ(cdf[0].value, 1.0);
  EXPECT_DOUBLE_EQ(cdf[0].cumulative_fraction, 0.25);
  EXPECT_DOUBLE_EQ(cdf[1].cumulative_fraction, 0.75);
  EXPECT_DOUBLE_EQ(cdf[2].cumulative_fraction, 1.0);
}

TEST(StatsTest, HistogramBuckets) {
  auto counts = Histogram({0.5, 1.5, 1.7, 2.0}, {0, 1, 2});
  ASSERT_EQ(counts.size(), 2u);
  EXPECT_EQ(counts[0], 1);
  EXPECT_EQ(counts[1], 3);  // final bucket inclusive of the last edge
}

// ---------------------------------------------------------------------------
// Table
// ---------------------------------------------------------------------------

TEST(TableTest, RendersAlignedColumns) {
  TextTable table({"A", "Looooong"});
  table.AddRow({"x", "y"});
  std::string out = table.ToString();
  EXPECT_NE(out.find("| A "), std::string::npos);
  EXPECT_NE(out.find("| x "), std::string::npos);
}

// ---------------------------------------------------------------------------
// Arena
// ---------------------------------------------------------------------------

TEST(ArenaTest, AllocRespectsAlignmentAndReset) {
  BumpArena arena(/*initial_bytes=*/256);
  void* a = arena.Alloc(3, 1);
  void* b = arena.Alloc(8, 8);
  EXPECT_NE(a, b);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(b) % 8, 0u);
  arena.Reset();
  // After a reset the same block is re-bumped from the start.
  EXPECT_EQ(arena.Alloc(3, 1), a);
  EXPECT_EQ(arena.block_count(), 1u);
}

TEST(ArenaTest, OverflowCoalescesToOneBlockOnReset) {
  BumpArena arena(/*initial_bytes=*/256);
  // Force several overflow blocks in one cycle.
  for (int i = 0; i < 8; ++i) arena.Alloc(300, 8);
  EXPECT_GT(arena.block_count(), 1u);
  const size_t high_water = arena.capacity_bytes();
  arena.Reset();
  // The steady state: one block, at least the high-water size, and the next
  // identical cycle allocates nothing new.
  EXPECT_EQ(arena.block_count(), 1u);
  EXPECT_GE(arena.capacity_bytes(), high_water);
  for (int i = 0; i < 8; ++i) arena.Alloc(300, 8);
  EXPECT_EQ(arena.block_count(), 1u);
}

TEST(ArenaTest, ArenaVecGrowsAndSurvivesRelocation) {
  BumpArena arena;
  ArenaVec<int> v(&arena);
  for (int i = 0; i < 1000; ++i) v.push_back(i);
  ASSERT_EQ(v.size(), 1000u);
  for (int i = 0; i < 1000; ++i) ASSERT_EQ(v[static_cast<size_t>(i)], i);
  EXPECT_EQ(v.front(), 0);
  EXPECT_EQ(v.back(), 999);
  v.resize_down(10);
  EXPECT_EQ(v.size(), 10u);
  v.clear();
  EXPECT_TRUE(v.empty());
}

TEST(ArenaTest, ArenaVecHoldsPairScratchTypes) {
  // The miner's sweep scratch: pairs of scalars (not trivially copyable in
  // the std::is_trivially_copyable sense, but trivially destructible and
  // copy-constructible — the contract ArenaVec actually needs).
  BumpArena arena;
  ArenaVec<std::pair<int, int64_t>> v(&arena);
  for (int i = 0; i < 100; ++i) v.emplace_back(i, int64_t{1} << 40);
  EXPECT_EQ(v[99].first, 99);
  EXPECT_EQ(v[99].second, int64_t{1} << 40);
}

TEST(ArenaTest, CacheAlignedElementsLandOnDistinctLines) {
  static_assert(sizeof(CacheAligned<int>) == kCacheLineBytes);
  static_assert(alignof(CacheAligned<int>) == kCacheLineBytes);
  CacheAligned<int> two[2];
  const auto a = reinterpret_cast<uintptr_t>(&two[0].value);
  const auto b = reinterpret_cast<uintptr_t>(&two[1].value);
  EXPECT_GE(b - a, kCacheLineBytes);
}

TEST(TableTest, CsvEscaping) {
  TextTable table({"name", "value"});
  table.AddRow({"with,comma", "with\"quote"});
  std::string csv = table.ToCsv();
  EXPECT_NE(csv.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"with\"\"quote\""), std::string::npos);
}

}  // namespace
}  // namespace govdns::util
