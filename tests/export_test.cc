#include <gtest/gtest.h>

#include "core/export.h"
#include "util/json.h"
#include "worldgen/adapter.h"

namespace govdns {
namespace {

// ---------------------------------------------------------------------------
// JsonWriter
// ---------------------------------------------------------------------------

TEST(JsonWriterTest, ObjectsArraysScalars) {
  util::JsonWriter json;
  json.BeginObject();
  json.Kv("name", "gov.cn");
  json.Kv("count", 42);
  json.Kv("ratio", 0.5);
  json.Kv("flag", true);
  json.Key("nothing").Null();
  json.Key("list").BeginArray().Int(1).Int(2).Int(3).EndArray();
  json.Key("nested").BeginObject().Kv("a", 1).EndObject();
  json.EndObject();
  EXPECT_EQ(json.TakeString(),
            R"({"name":"gov.cn","count":42,"ratio":0.5,"flag":true,)"
            R"("nothing":null,"list":[1,2,3],"nested":{"a":1}})");
}

TEST(JsonWriterTest, EscapesControlAndQuote) {
  util::JsonWriter json;
  json.BeginArray().String("a\"b\\c\nd\te\x01").EndArray();
  EXPECT_EQ(json.TakeString(), "[\"a\\\"b\\\\c\\nd\\te\\u0001\"]");
}

TEST(JsonWriterTest, NonFiniteDoublesBecomeNull) {
  util::JsonWriter json;
  json.BeginArray().Double(1.0 / 0.0).Double(0.25).EndArray();
  EXPECT_EQ(json.TakeString(), "[null,0.25]");
}

TEST(JsonWriterTest, EmptyContainers) {
  util::JsonWriter json;
  json.BeginObject()
      .Key("a").BeginArray().EndArray()
      .Key("o").BeginObject().EndObject()
      .EndObject();
  EXPECT_EQ(json.TakeString(), R"({"a":[],"o":{}})");
}

// ---------------------------------------------------------------------------
// Report export over a small end-to-end run
// ---------------------------------------------------------------------------

class ExportTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    worldgen::WorldConfig config;
    config.scale = 0.01;
    world_ = worldgen::BuildWorld(config).release();
    bound_ = new worldgen::BoundStudy(worldgen::MakeStudy(*world_));
    bound_->study->RunAll();
    report_ = new core::StudyReport(
        core::BuildReport(*bound_->study, {"cn", "br"}));
  }
  static void TearDownTestSuite() {
    delete report_;
    delete bound_;
    delete world_;
  }
  static worldgen::World* world_;
  static worldgen::BoundStudy* bound_;
  static core::StudyReport* report_;
};

worldgen::World* ExportTest::world_ = nullptr;
worldgen::BoundStudy* ExportTest::bound_ = nullptr;
core::StudyReport* ExportTest::report_ = nullptr;

TEST_F(ExportTest, JsonContainsEverySection) {
  std::string json = core::ExportReportJson(*report_);
  for (const char* key :
       {"\"selection\":", "\"pdns_per_year\":", "\"funnel\":",
        "\"replication\":", "\"diversity\":", "\"d1ns_churn\":",
        "\"private_share\":", "\"providers\":", "\"delegations\":",
        "\"hijack\":", "\"consistency\":"}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
  // Balanced braces as a cheap well-formedness proxy.
  int depth = 0;
  bool in_string = false;
  for (size_t i = 0; i < json.size(); ++i) {
    char c = json[i];
    if (in_string) {
      if (c == '\\') ++i;
      else if (c == '"') in_string = false;
      continue;
    }
    if (c == '"') in_string = true;
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
  EXPECT_FALSE(in_string);
}

TEST_F(ExportTest, CsvTablesHaveHeadersAndRows) {
  for (const char* table :
       {"pdns_per_year", "d1ns_churn", "private_share", "diversity",
        "delegations_by_country"}) {
    std::string csv = core::ExportCsv(*report_, table);
    ASSERT_FALSE(csv.empty()) << table;
    // Header + at least one data row.
    EXPECT_GE(std::count(csv.begin(), csv.end(), '\n'), 2) << table;
  }
}

TEST_F(ExportTest, UnknownCsvTableIsEmpty) {
  EXPECT_TRUE(core::ExportCsv(*report_, "no_such_table").empty());
}

TEST_F(ExportTest, PdnsCsvMatchesReport) {
  std::string csv = core::ExportCsv(*report_, "pdns_per_year");
  std::istringstream is(csv);
  std::string header, first_row;
  std::getline(is, header);
  std::getline(is, first_row);
  std::string expected = std::to_string(report_->pdns_per_year[0].year) + "," +
                         std::to_string(report_->pdns_per_year[0].domains);
  EXPECT_EQ(first_row.substr(0, expected.size()), expected);
}

}  // namespace
}  // namespace govdns
