// Loopback tests for the real-socket transport: genuine UDP datagrams
// between UdpTransport and UdpServer on 127.0.0.1, carrying real DNS
// wire-format messages produced and consumed by the same code the
// simulation uses. Includes the hardening cases (spoofed sources, wrong
// transaction ids, EINTR storms) and the async QueryEngine: batched
// submit/complete, TCP fallback on truncation, and study-report
// byte-identity between the sync transport and the engine.
#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <pthread.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <thread>

#include "core/export.h"
#include "core/measure.h"
#include "core/report.h"
#include "core/resolver.h"
#include "core/study.h"
#include "netio/engine.h"
#include "netio/tcp.h"
#include "netio/udp.h"
#include "simnet/network.h"
#include "worldgen/adapter.h"
#include "worldgen/countries.h"
#include "worldgen/world.h"
#include "zone/auth_server.h"

namespace govdns::netio {
namespace {

using dns::MakeA;
using dns::MakeNs;
using dns::MakeSoa;
using dns::Name;

geo::IPv4 Loopback() { return geo::IPv4(127, 0, 0, 1); }

std::shared_ptr<zone::Zone> TestZone() {
  auto z = std::make_shared<zone::Zone>(Name::FromString("gov.xx"));
  z->Add(MakeSoa(z->origin(), Name::FromString("ns1.gov.xx"),
                 Name::FromString("hostmaster.gov.xx"), 1));
  z->Add(MakeNs(z->origin(), Name::FromString("ns1.gov.xx")));
  z->Add(MakeA(Name::FromString("ns1.gov.xx"), geo::IPv4(10, 0, 0, 1)));
  z->Add(MakeA(Name::FromString("www.gov.xx"), geo::IPv4(10, 0, 0, 2)));
  return z;
}

UdpServer::Handler AuthHandler(zone::AuthServer* server) {
  return [server](const std::vector<uint8_t>& wire) -> std::vector<uint8_t> {
    auto query = dns::Message::Decode(wire);
    if (!query.ok()) return {};
    return server->Answer(*query).Encode();
  };
}

class NetioTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auth_ = std::make_unique<zone::AuthServer>("ns1.gov.xx");
    auth_->AddZone(TestZone());
    auto status = server_.Start(Loopback(), 0, AuthHandler(auth_.get()));
    if (!status.ok()) {
      GTEST_SKIP() << "cannot bind loopback UDP socket: "
                   << status.ToString();
    }
  }

  std::unique_ptr<zone::AuthServer> auth_;
  UdpServer server_;
};

TEST_F(NetioTest, RealPacketsRoundTrip) {
  UdpTransport::Options options;
  options.port = server_.port();
  options.timeout_ms = 2000;
  UdpTransport transport(options);

  dns::Message query =
      dns::MakeQuery(77, Name::FromString("www.gov.xx"), dns::RRType::kA);
  auto raw = transport.Exchange(Loopback(), query.Encode());
  ASSERT_TRUE(raw.ok()) << raw.status().ToString();
  auto reply = dns::Message::Decode(*raw);
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply->header.id, 77);
  EXPECT_TRUE(reply->header.aa);
  ASSERT_EQ(reply->answers.size(), 1u);
  EXPECT_EQ(dns::RdataToString(reply->answers[0].rdata), "10.0.0.2");
  EXPECT_GE(server_.requests_served(), 1u);
}

TEST_F(NetioTest, ResolverQueryServerWorksOverRealSockets) {
  // The measurement-side classification runs unchanged over real UDP.
  UdpTransport::Options options;
  options.port = server_.port();
  UdpTransport transport(options);
  core::IterativeResolver resolver(&transport, {Loopback()});

  auto reply = resolver.QueryServer(Loopback(), Name::FromString("www.gov.xx"),
                                    dns::RRType::kA);
  EXPECT_EQ(reply.outcome, core::QueryOutcome::kAuthAnswer);

  reply = resolver.QueryServer(Loopback(), Name::FromString("nothere.gov.xx"),
                               dns::RRType::kA);
  EXPECT_EQ(reply.outcome, core::QueryOutcome::kAuthNegative);

  reply = resolver.QueryServer(Loopback(), Name::FromString("example.com"),
                               dns::RRType::kA);
  EXPECT_EQ(reply.outcome, core::QueryOutcome::kRefused);
}

TEST_F(NetioTest, TimeoutAgainstSilentPort) {
  // A second server socket that never answers (handler returns empty).
  UdpServer silent;
  auto status = silent.Start(Loopback(), 0,
                             [](const std::vector<uint8_t>&) {
                               return std::vector<uint8_t>{};
                             });
  ASSERT_TRUE(status.ok());
  UdpTransport::Options options;
  options.port = silent.port();
  options.timeout_ms = 200;
  UdpTransport transport(options);
  auto raw = transport.Exchange(Loopback(), {0, 1, 2, 3});
  EXPECT_FALSE(raw.ok());
  EXPECT_EQ(raw.status().code(), util::ErrorCode::kTimeout);
}

TEST_F(NetioTest, ServerStopIsIdempotentAndRestartable) {
  server_.Stop();
  EXPECT_FALSE(server_.running());
  server_.Stop();  // no-op
  auto status = server_.Start(Loopback(), 0, AuthHandler(auth_.get()));
  ASSERT_TRUE(status.ok());
  EXPECT_TRUE(server_.running());
  EXPECT_GT(server_.port(), 0);
}

TEST_F(NetioTest, PortResetsToZeroOnStop) {
  EXPECT_GT(server_.port(), 0);
  server_.Stop();
  EXPECT_EQ(server_.port(), 0);
}

// A raw bound UDP socket with a known port, for hand-rolled responders.
struct RawSock {
  int fd = -1;
  uint16_t port = 0;

  bool Open() {
    fd = ::socket(AF_INET, SOCK_DGRAM, 0);
    if (fd < 0) return false;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
        0) {
      return false;
    }
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) < 0) {
      return false;
    }
    port = ntohs(bound.sin_port);
    return true;
  }
  ~RawSock() {
    if (fd >= 0) ::close(fd);
  }
};

uint8_t ReplyRcode(const std::vector<uint8_t>& wire) {
  return wire.size() >= 4 ? static_cast<uint8_t>(wire[3] & 0x0F) : 0xFF;
}

TEST(NetioHardeningTest, SpoofedSourceIsDiscarded) {
  RawSock server;
  RawSock decoy;
  ASSERT_TRUE(server.Open());
  ASSERT_TRUE(decoy.Open());

  // The responder answers twice: first a spoof from the *decoy* socket
  // (same payload, matching id, rcode REFUSED) — exactly what an off-path
  // attacker who guessed the id but not our connect-less 4-tuple would
  // inject — then, after a beat, the genuine NOERROR reply from the
  // queried socket.
  std::thread responder([&] {
    uint8_t buf[512];
    sockaddr_in client{};
    socklen_t client_len = sizeof(client);
    ssize_t got = ::recvfrom(server.fd, buf, sizeof(buf), 0,
                             reinterpret_cast<sockaddr*>(&client), &client_len);
    if (got < 12) return;
    std::vector<uint8_t> spoof(buf, buf + got);
    spoof[2] |= 0x80;                              // QR
    spoof[3] = (spoof[3] & 0xF0) | 0x05;           // REFUSED marker
    (void)::sendto(decoy.fd, spoof.data(), spoof.size(), 0,
                   reinterpret_cast<const sockaddr*>(&client), client_len);
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    std::vector<uint8_t> genuine(buf, buf + got);
    genuine[2] |= 0x80;                            // QR, NOERROR
    (void)::sendto(server.fd, genuine.data(), genuine.size(), 0,
                   reinterpret_cast<const sockaddr*>(&client), client_len);
  });

  UdpTransport::Options options;
  options.port = server.port;
  options.timeout_ms = 2000;
  UdpTransport transport(options);
  auto raw = transport.Exchange(
      Loopback(),
      dns::MakeQuery(321, Name::FromString("www.gov.xx"), dns::RRType::kA)
          .Encode());
  responder.join();
  ASSERT_TRUE(raw.ok()) << raw.status().ToString();
  // The spoof arrived first; only source validation explains NOERROR here.
  EXPECT_EQ(ReplyRcode(*raw), 0x00);
}

TEST(NetioHardeningTest, WrongTransactionIdIsDiscarded) {
  RawSock server;
  ASSERT_TRUE(server.Open());

  // Same endpoint this time, but the first reply carries a flipped id — a
  // cross-talk datagram from some other exchange, or a blind spoofer.
  std::thread responder([&] {
    uint8_t buf[512];
    sockaddr_in client{};
    socklen_t client_len = sizeof(client);
    ssize_t got = ::recvfrom(server.fd, buf, sizeof(buf), 0,
                             reinterpret_cast<sockaddr*>(&client), &client_len);
    if (got < 12) return;
    std::vector<uint8_t> wrong(buf, buf + got);
    wrong[0] ^= 0xFF;                              // mangle the id
    wrong[2] |= 0x80;
    wrong[3] = (wrong[3] & 0xF0) | 0x05;           // REFUSED marker
    (void)::sendto(server.fd, wrong.data(), wrong.size(), 0,
                   reinterpret_cast<const sockaddr*>(&client), client_len);
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    std::vector<uint8_t> genuine(buf, buf + got);
    genuine[2] |= 0x80;
    (void)::sendto(server.fd, genuine.data(), genuine.size(), 0,
                   reinterpret_cast<const sockaddr*>(&client), client_len);
  });

  UdpTransport::Options options;
  options.port = server.port;
  options.timeout_ms = 2000;
  UdpTransport transport(options);
  auto raw = transport.Exchange(
      Loopback(),
      dns::MakeQuery(654, Name::FromString("www.gov.xx"), dns::RRType::kA)
          .Encode());
  responder.join();
  ASSERT_TRUE(raw.ok()) << raw.status().ToString();
  EXPECT_EQ(ReplyRcode(*raw), 0x00);
  ASSERT_GE(raw->size(), 2u);
  EXPECT_EQ(static_cast<uint16_t>((*raw)[0] << 8 | (*raw)[1]), 654);
}

TEST_F(NetioTest, ExchangeSurvivesEintrStorm) {
  // The handler stalls long enough that the client is parked in poll() when
  // the signals land; without EINTR retry the exchange would die on the
  // first one. SA_RESTART is deliberately NOT set — this is the same signal
  // shape the CLI's escalating SIGINT handlers produce.
  server_.Stop();
  auto slow = [this](const std::vector<uint8_t>& wire) {
    std::this_thread::sleep_for(std::chrono::milliseconds(250));
    return AuthHandler(auth_.get())(wire);
  };
  ASSERT_TRUE(server_.Start(Loopback(), 0, slow).ok());

  struct sigaction action {};
  action.sa_handler = [](int) {};
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;  // no SA_RESTART: syscalls must see EINTR
  struct sigaction previous {};
  ASSERT_EQ(::sigaction(SIGUSR1, &action, &previous), 0);

  pthread_t target = ::pthread_self();
  std::atomic<bool> stop{false};
  std::thread pinger([&] {
    while (!stop.load()) {
      (void)::pthread_kill(target, SIGUSR1);
      std::this_thread::sleep_for(std::chrono::milliseconds(30));
    }
  });

  UdpTransport::Options options;
  options.port = server_.port();
  options.timeout_ms = 5000;
  UdpTransport transport(options);
  auto raw = transport.Exchange(
      Loopback(),
      dns::MakeQuery(7, Name::FromString("www.gov.xx"), dns::RRType::kA)
          .Encode());

  stop.store(true);
  pinger.join();
  ASSERT_EQ(::sigaction(SIGUSR1, &previous, nullptr), 0);

  ASSERT_TRUE(raw.ok()) << raw.status().ToString();
  auto reply = dns::Message::Decode(*raw);
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply->header.id, 7);
}

TEST_F(NetioTest, EngineBatchedSubmitBoundedWindow) {
  QueryEngine::Options options;
  options.port = server_.port();
  options.timeout_ms = 2000;
  options.max_inflight = 8;  // far fewer than the batch: Submit must block
  options.socket_pool = 4;
  QueryEngine engine(options);

  constexpr int kQueries = 64;
  std::vector<QueryEngine::Token> tokens;
  tokens.reserve(kQueries);
  for (int i = 0; i < kQueries; ++i) {
    tokens.push_back(engine.Submit(
        Loopback(),
        dns::MakeQuery(static_cast<uint16_t>(i + 1),
                       Name::FromString("www.gov.xx"), dns::RRType::kA)
            .Encode()));
  }
  for (int i = 0; i < kQueries; ++i) {
    auto raw = engine.Wait(tokens[static_cast<size_t>(i)]);
    ASSERT_TRUE(raw.ok()) << i << ": " << raw.status().ToString();
    auto reply = dns::Message::Decode(*raw);
    ASSERT_TRUE(reply.ok());
    // The engine rewrites ids on the wire but hands back the caller's.
    EXPECT_EQ(reply->header.id, i + 1);
    ASSERT_EQ(reply->answers.size(), 1u);
    EXPECT_EQ(dns::RdataToString(reply->answers[0].rdata), "10.0.0.2");
  }
  EngineStats stats = engine.stats();
  EXPECT_EQ(stats.submitted, static_cast<uint64_t>(kQueries));
  EXPECT_EQ(stats.completed, static_cast<uint64_t>(kQueries));
  EXPECT_LE(stats.max_inflight, 8u);
  EXPECT_EQ(stats.timeouts, 0u);
}

TEST_F(NetioTest, EngineTruncatedReplyFallsBackToTcp) {
  // UDP twin serves TC=1 with the answers stripped; the TCP twin on the
  // same port number serves the full answer. The engine must splice the
  // stream retry in transparently.
  server_.Stop();
  auto truncating = [this](const std::vector<uint8_t>& wire) {
    auto query = dns::Message::Decode(wire);
    if (!query.ok()) return std::vector<uint8_t>{};
    dns::Message reply = auth_->Answer(*query);
    reply.answers.clear();
    reply.header.tc = true;
    return reply.Encode();
  };
  ASSERT_TRUE(server_.Start(Loopback(), 0, truncating).ok());

  TcpServer tcp;
  auto tcp_status = tcp.Start(Loopback(), server_.port(), AuthHandler(auth_.get()));
  if (!tcp_status.ok()) {
    GTEST_SKIP() << "cannot bind TCP twin port: " << tcp_status.ToString();
  }

  QueryEngine::Options options;
  options.port = server_.port();
  options.timeout_ms = 2000;
  options.tcp_fallback = true;
  QueryEngine engine(options);

  auto raw = engine.Exchange(
      Loopback(),
      dns::MakeQuery(42, Name::FromString("www.gov.xx"), dns::RRType::kA)
          .Encode());
  ASSERT_TRUE(raw.ok()) << raw.status().ToString();
  auto reply = dns::Message::Decode(*raw);
  ASSERT_TRUE(reply.ok());
  EXPECT_FALSE(reply->header.tc);
  EXPECT_EQ(reply->header.id, 42);
  ASSERT_EQ(reply->answers.size(), 1u);
  EXPECT_EQ(dns::RdataToString(reply->answers[0].rdata), "10.0.0.2");

  EngineStats stats = engine.stats();
  EXPECT_EQ(stats.truncated, 1u);
  EXPECT_EQ(stats.tcp_fallbacks, 1u);
  EXPECT_GE(tcp.requests_served(), 1u);
}

// --- wrapped mode over the simulator ---------------------------------------

simnet::SimNetwork::Handler EchoHandler() {
  return [](const std::vector<uint8_t>& wire) -> std::vector<uint8_t> {
    auto query = dns::Message::Decode(wire);
    if (!query.ok()) return {};
    return dns::MakeResponse(*query, dns::Rcode::kNoError).Encode();
  };
}

TEST(QueryEngineWrappedTest, StreamFallbackRecoversTruncatedReply) {
  simnet::SimNetwork net(7);
  geo::IPv4 ns(10, 0, 0, 1);
  net.AttachHandler(ns, EchoHandler());
  simnet::EndpointBehavior behavior;
  behavior.truncate_rate = 1.0;  // every datagram comes back TC=1
  net.SetBehavior(ns, behavior);

  const std::vector<uint8_t> wire =
      dns::MakeQuery(5, Name::FromString("www.gov.xx"), dns::RRType::kA)
          .Encode();

  // Bare transport: the damage is visible.
  auto bare = net.Exchange(ns, wire);
  ASSERT_TRUE(bare.ok());
  ASSERT_TRUE(dns::Message::Decode(*bare)->header.tc);

  QueryEngine::Options options;
  options.stream_fallback = true;
  QueryEngine engine(&net, options);
  auto raw = engine.Exchange(ns, wire);
  ASSERT_TRUE(raw.ok()) << raw.status().ToString();
  auto reply = dns::Message::Decode(*raw);
  ASSERT_TRUE(reply.ok());
  EXPECT_FALSE(reply->header.tc);

  EngineStats stats = engine.stats();
  EXPECT_EQ(stats.truncated, 1u);
  EXPECT_EQ(stats.tcp_fallbacks, 1u);
  EXPECT_EQ(net.stats().stream_exchanges, 1u);
}

TEST(QueryEngineWrappedTest, RateLimitChargesDeterministicLogicalDelay) {
  auto run = [](uint64_t tag) -> std::pair<uint64_t, uint64_t> {
    simnet::SimNetwork net(11);
    geo::IPv4 ns(10, 0, 0, 2);
    net.AttachHandler(ns, EchoHandler());

    QueryEngine::Options options;
    options.per_server_qps = 2.0;  // one token per 500 logical ms
    options.per_server_burst = 1;
    QueryEngine engine(&net, options);

    engine.PushChaosContext(tag);
    const uint64_t start = engine.now_ms();
    const std::vector<uint8_t> wire =
        dns::MakeQuery(5, Name::FromString("www.gov.xx"), dns::RRType::kA)
            .Encode();
    for (int i = 0; i < 4; ++i) {
      auto raw = engine.Exchange(ns, wire);
      EXPECT_TRUE(raw.ok());
    }
    const uint64_t elapsed = engine.now_ms() - start;
    engine.PopChaosContext();
    return {elapsed, engine.stats().ratelimit_deferred};
  };

  auto [elapsed_a, deferred_a] = run(404);
  auto [elapsed_b, deferred_b] = run(404);
  // Pacing is a pure function of (tag, query sequence): identical runs
  // charge identical logical waits.
  EXPECT_EQ(elapsed_a, elapsed_b);
  EXPECT_EQ(deferred_a, deferred_b);
  EXPECT_EQ(deferred_a, 3u);  // burst covers the first query only
  // Three waits of ~500ms dominate the elapsed logical time.
  EXPECT_GE(elapsed_a, 1500u);
}

// --- end-to-end determinism -------------------------------------------------

std::string RunStudyArm(bool engine_mode, int workers, int lanes) {
  worldgen::WorldConfig config;
  config.scale = 0.01;
  config.seed = 2022;
  auto world = worldgen::BuildWorld(config);

  worldgen::BoundStudy bound;
  bound.policy = std::make_unique<worldgen::PolicyLookupAdapter>(
      &world->registry_policy());
  core::StudyInputs inputs =
      worldgen::MakeStudyInputs(*world, bound.policy.get());
  std::unique_ptr<QueryEngine> engine;
  if (engine_mode) {
    engine = std::make_unique<QueryEngine>(inputs.transport,
                                           QueryEngine::Options{});
    inputs.transport = engine.get();
  }
  bound.study = std::make_unique<core::Study>(std::move(inputs));

  bound.study->RunSelection();
  bound.study->RunMining();
  core::MeasurerOptions measure;
  measure.workers = workers;
  measure.async_lanes = lanes;
  bound.study->RunActiveMeasurement(measure);

  std::vector<std::string> top10;
  for (const char* code : worldgen::Top10CountryCodes()) {
    top10.emplace_back(code);
  }
  return core::ExportReportJson(core::BuildReport(*bound.study, top10));
}

TEST(QueryEngineStudyTest, EngineReportByteIdenticalToSync) {
  const std::string sync1 = RunStudyArm(/*engine_mode=*/false, 1, 0);
  const std::string sync4 = RunStudyArm(/*engine_mode=*/false, 4, 0);
  const std::string engine4 = RunStudyArm(/*engine_mode=*/true, 4, 0);
  const std::string engine_lanes = RunStudyArm(/*engine_mode=*/true, 0, 8);
  ASSERT_FALSE(sync1.empty());
  EXPECT_EQ(sync1, sync4);
  EXPECT_EQ(sync1, engine4);
  EXPECT_EQ(sync1, engine_lanes);
}

TEST(NetioStandaloneTest, StartFailsOnPrivilegedPortOrReportsCleanly) {
  // Binding port 53 usually needs privileges; either outcome must be clean.
  UdpServer server;
  auto status = server.Start(Loopback(), 53, [](const std::vector<uint8_t>&) {
    return std::vector<uint8_t>{};
  });
  if (status.ok()) {
    server.Stop();
    SUCCEED();
  } else {
    EXPECT_EQ(status.code(), util::ErrorCode::kUnavailable);
  }
}

}  // namespace
}  // namespace govdns::netio
