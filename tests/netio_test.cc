// Loopback tests for the real-socket transport: genuine UDP datagrams
// between UdpTransport and UdpServer on 127.0.0.1, carrying real DNS
// wire-format messages produced and consumed by the same code the
// simulation uses.
#include <gtest/gtest.h>

#include "core/resolver.h"
#include "netio/udp.h"
#include "zone/auth_server.h"

namespace govdns::netio {
namespace {

using dns::MakeA;
using dns::MakeNs;
using dns::MakeSoa;
using dns::Name;

geo::IPv4 Loopback() { return geo::IPv4(127, 0, 0, 1); }

std::shared_ptr<zone::Zone> TestZone() {
  auto z = std::make_shared<zone::Zone>(Name::FromString("gov.xx"));
  z->Add(MakeSoa(z->origin(), Name::FromString("ns1.gov.xx"),
                 Name::FromString("hostmaster.gov.xx"), 1));
  z->Add(MakeNs(z->origin(), Name::FromString("ns1.gov.xx")));
  z->Add(MakeA(Name::FromString("ns1.gov.xx"), geo::IPv4(10, 0, 0, 1)));
  z->Add(MakeA(Name::FromString("www.gov.xx"), geo::IPv4(10, 0, 0, 2)));
  return z;
}

UdpServer::Handler AuthHandler(zone::AuthServer* server) {
  return [server](const std::vector<uint8_t>& wire) -> std::vector<uint8_t> {
    auto query = dns::Message::Decode(wire);
    if (!query.ok()) return {};
    return server->Answer(*query).Encode();
  };
}

class NetioTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auth_ = std::make_unique<zone::AuthServer>("ns1.gov.xx");
    auth_->AddZone(TestZone());
    auto status = server_.Start(Loopback(), 0, AuthHandler(auth_.get()));
    if (!status.ok()) {
      GTEST_SKIP() << "cannot bind loopback UDP socket: "
                   << status.ToString();
    }
  }

  std::unique_ptr<zone::AuthServer> auth_;
  UdpServer server_;
};

TEST_F(NetioTest, RealPacketsRoundTrip) {
  UdpTransport::Options options;
  options.port = server_.port();
  options.timeout_ms = 2000;
  UdpTransport transport(options);

  dns::Message query =
      dns::MakeQuery(77, Name::FromString("www.gov.xx"), dns::RRType::kA);
  auto raw = transport.Exchange(Loopback(), query.Encode());
  ASSERT_TRUE(raw.ok()) << raw.status().ToString();
  auto reply = dns::Message::Decode(*raw);
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply->header.id, 77);
  EXPECT_TRUE(reply->header.aa);
  ASSERT_EQ(reply->answers.size(), 1u);
  EXPECT_EQ(dns::RdataToString(reply->answers[0].rdata), "10.0.0.2");
  EXPECT_GE(server_.requests_served(), 1u);
}

TEST_F(NetioTest, ResolverQueryServerWorksOverRealSockets) {
  // The measurement-side classification runs unchanged over real UDP.
  UdpTransport::Options options;
  options.port = server_.port();
  UdpTransport transport(options);
  core::IterativeResolver resolver(&transport, {Loopback()});

  auto reply = resolver.QueryServer(Loopback(), Name::FromString("www.gov.xx"),
                                    dns::RRType::kA);
  EXPECT_EQ(reply.outcome, core::QueryOutcome::kAuthAnswer);

  reply = resolver.QueryServer(Loopback(), Name::FromString("nothere.gov.xx"),
                               dns::RRType::kA);
  EXPECT_EQ(reply.outcome, core::QueryOutcome::kAuthNegative);

  reply = resolver.QueryServer(Loopback(), Name::FromString("example.com"),
                               dns::RRType::kA);
  EXPECT_EQ(reply.outcome, core::QueryOutcome::kRefused);
}

TEST_F(NetioTest, TimeoutAgainstSilentPort) {
  // A second server socket that never answers (handler returns empty).
  UdpServer silent;
  auto status = silent.Start(Loopback(), 0,
                             [](const std::vector<uint8_t>&) {
                               return std::vector<uint8_t>{};
                             });
  ASSERT_TRUE(status.ok());
  UdpTransport::Options options;
  options.port = silent.port();
  options.timeout_ms = 200;
  UdpTransport transport(options);
  auto raw = transport.Exchange(Loopback(), {0, 1, 2, 3});
  EXPECT_FALSE(raw.ok());
  EXPECT_EQ(raw.status().code(), util::ErrorCode::kTimeout);
}

TEST_F(NetioTest, ServerStopIsIdempotentAndRestartable) {
  server_.Stop();
  EXPECT_FALSE(server_.running());
  server_.Stop();  // no-op
  auto status = server_.Start(Loopback(), 0, AuthHandler(auth_.get()));
  ASSERT_TRUE(status.ok());
  EXPECT_TRUE(server_.running());
  EXPECT_GT(server_.port(), 0);
}

TEST(NetioStandaloneTest, StartFailsOnPrivilegedPortOrReportsCleanly) {
  // Binding port 53 usually needs privileges; either outcome must be clean.
  UdpServer server;
  auto status = server.Start(Loopback(), 53, [](const std::vector<uint8_t>&) {
    return std::vector<uint8_t>{};
  });
  if (status.ok()) {
    server.Stop();
    SUCCEED();
  } else {
    EXPECT_EQ(status.code(), util::ErrorCode::kUnavailable);
  }
}

}  // namespace
}  // namespace govdns::netio
