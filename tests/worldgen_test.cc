#include <gtest/gtest.h>

#include <set>

#include "worldgen/countries.h"
#include "worldgen/providers.h"
#include "worldgen/world.h"

namespace govdns::worldgen {
namespace {

// ---------------------------------------------------------------------------
// Static tables
// ---------------------------------------------------------------------------

TEST(CountryTableTest, Has193UniqueMembers) {
  auto countries = Countries();
  EXPECT_EQ(countries.size(), 193u);
  std::set<std::string> codes;
  for (const auto& c : countries) codes.insert(c.code);
  EXPECT_EQ(codes.size(), 193u);
}

TEST(CountryTableTest, SubRegionsAreTheTwentyTwoM49Ones) {
  std::set<std::string> valid(SubRegionNames().begin(),
                              SubRegionNames().end());
  EXPECT_EQ(valid.size(), 22u);
  std::set<std::string> used;
  for (const auto& c : Countries()) {
    ASSERT_TRUE(valid.contains(c.subregion)) << c.code;
    used.insert(c.subregion);
  }
  EXPECT_EQ(used.size(), 22u);  // every sub-region has members
}

TEST(CountryTableTest, Top10AreRealCountriesWithExplicitTargets) {
  auto top10 = Top10CountryCodes();
  EXPECT_EQ(top10.size(), 10u);
  for (const char* code : top10) {
    int idx = CountryIndexByCode(code);
    ASSERT_GE(idx, 0) << code;
    EXPECT_TRUE(Countries()[idx].explicit_target) << code;
  }
  // 22 sub-regions + 10 split-out countries = the paper's 32 groups.
  EXPECT_EQ(SubRegionNames().size() + top10.size(), 32u);
}

TEST(CountryTableTest, IndexByCode) {
  EXPECT_GE(CountryIndexByCode("cn"), 0);
  EXPECT_EQ(CountryIndexByCode("zz"), -1);
  EXPECT_EQ(std::string(Countries()[CountryIndexByCode("br")].name), "Brazil");
}

TEST(ProviderTableTest, GroupKeysUniqueAndIndexed) {
  std::set<std::string> keys;
  for (const auto& p : Providers()) keys.insert(p.group_key);
  EXPECT_EQ(keys.size(), Providers().size());
  EXPECT_GE(ProviderIndexByGroupKey("cloudflare.com"), 0);
  EXPECT_EQ(ProviderIndexByGroupKey("nope"), -1);
}

TEST(ProviderTableTest, HostnameGenerationFollowsStyles) {
  const auto& aws = Providers()[ProviderIndexByGroupKey("AWS DNS")];
  auto host = ProviderHostname(aws, 0);
  EXPECT_NE(host.ToString().find("awsdns-"), std::string::npos);
  const auto& azure = Providers()[ProviderIndexByGroupKey("Azure DNS")];
  EXPECT_NE(ProviderHostname(azure, 2).ToString().find("azure-dns."),
            std::string::npos);
  const auto& cf = Providers()[ProviderIndexByGroupKey("cloudflare.com")];
  EXPECT_TRUE(ProviderHostname(cf, 0).IsSubdomainOf(
      dns::Name::FromString("ns.cloudflare.com")));
}

TEST(ProviderTableTest, CustomerNsPicksAreValid) {
  util::Rng rng(5);
  for (const auto& spec : Providers()) {
    for (int trial = 0; trial < 10; ++trial) {
      auto ns = PickCustomerNs(spec, rng);
      EXPECT_EQ(ns.size(), static_cast<size_t>(spec.ns_per_customer))
          << spec.display;
      std::set<dns::Name> distinct(ns.begin(), ns.end());
      EXPECT_EQ(distinct.size(), ns.size()) << spec.display;
    }
  }
}

// ---------------------------------------------------------------------------
// Generated-world invariants (small world, shared across tests)
// ---------------------------------------------------------------------------

class WorldTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    WorldConfig config;
    config.scale = 0.02;
    world_ = BuildWorld(config).release();
  }
  static void TearDownTestSuite() { delete world_; }
  static World* world_;
};

World* WorldTest::world_ = nullptr;

TEST_F(WorldTest, EveryCountryHasSuffixAndKbEntry) {
  ASSERT_EQ(world_->country_runtime().size(), 193u);
  ASSERT_EQ(world_->knowledge_base().size(), 193u);
  for (const auto& rt : world_->country_runtime()) {
    EXPECT_FALSE(rt.suffix.IsRoot());
    EXPECT_FALSE(rt.central_ns.empty());
  }
}

TEST_F(WorldTest, DomainsBelongToTheirCountrySuffix) {
  for (const auto& d : world_->domains()) {
    ASSERT_GE(d.country, 0);
    EXPECT_TRUE(d.name.IsSubdomainOf(
        world_->country_runtime()[d.country].suffix))
        << d.name.ToString();
  }
}

TEST_F(WorldTest, EpochsAreContiguousAndOrdered) {
  for (const auto& d : world_->domains()) {
    ASSERT_FALSE(d.epochs.empty()) << d.name.ToString();
    for (size_t i = 0; i < d.epochs.size(); ++i) {
      EXPECT_LE(d.epochs[i].days.first, d.epochs[i].days.last);
      if (i > 0) {
        EXPECT_EQ(d.epochs[i].days.first, d.epochs[i - 1].days.last + 1)
            << d.name.ToString();
      }
      EXPECT_FALSE(d.epochs[i].ns_names.empty());
    }
    EXPECT_EQ(d.epochs.front().days.first, d.birth);
  }
}

TEST_F(WorldTest, QueryListDomainsWereVisibleInWindow) {
  const util::CivilDay window_start = util::DayFromYmd(2020, 1, 1);
  for (const auto& d : world_->domains()) {
    if (!d.in_query_list) continue;
    EXPECT_FALSE(d.disposable_excluded) << d.name.ToString();
    bool visible = d.death == kAliveForever || d.death >= window_start ||
                   d.fate == DomainFate::kStaleDelegation;
    EXPECT_TRUE(visible) << d.name.ToString();
  }
}

TEST_F(WorldTest, PdnsCoversEveryNonDisposableDomain) {
  int checked = 0;
  for (const auto& d : world_->domains()) {
    if (checked >= 500) break;  // spot-check; full sweep is slow
    ++checked;
    auto entries = world_->pdns_db().Lookup(d.name);
    EXPECT_FALSE(entries.empty()) << d.name.ToString();
  }
}

TEST_F(WorldTest, ActiveDomainsHaveReachableInfrastructure) {
  // For a sample of kActive domains, at least one final-epoch NS hostname
  // resolves within the world's host map and answers authoritatively.
  int checked = 0;
  for (const auto& d : world_->domains()) {
    if (!d.in_query_list || d.fate != DomainFate::kActive) continue;
    if (d.parked_ns_ref || d.relative_name_truncation) continue;
    if (++checked > 200) break;
    // The zone must exist: query via the network is covered by integration
    // tests; here we just check the endpoint bookkeeping is consistent.
    EXPECT_FALSE(d.epochs.back().ns_names.empty());
  }
  EXPECT_GT(checked, 50);
}

TEST_F(WorldTest, RegistrarStateMatchesGroundTruth) {
  for (const auto& rt : world_->country_runtime()) {
    for (const auto& comp : rt.companies) {
      bool alive = comp.last_year == 0;
      if (alive) {
        EXPECT_TRUE(world_->registrar_client().IsRegistered(comp.domain))
            << comp.domain.ToString();
      }
      if (comp.dead_and_available || comp.dead_and_parked) {
        EXPECT_TRUE(world_->registrar_client().IsAvailable(comp.domain))
            << comp.domain.ToString();
      }
      if (comp.dead_and_parked) {
        auto price = world_->registrar_client().PriceUsd(comp.domain);
        ASSERT_TRUE(price.has_value());
        EXPECT_GE(*price, 300.0);  // aftermarket pricing (§IV-D)
      }
    }
  }
}

TEST_F(WorldTest, ChinaShrinksInto2020) {
  int cn = CountryIndexByCode("cn");
  int peak_2019 = 0, in_2020 = 0;
  for (const auto& d : world_->domains()) {
    if (d.country != cn) continue;
    if (d.Alive(util::DayFromYmd(2019, 12, 1))) ++peak_2019;
    if (d.Alive(util::DayFromYmd(2020, 12, 1))) ++in_2020;
  }
  EXPECT_GT(peak_2019, in_2020);  // the consolidation dip
}

TEST(WorldDeterminismTest, SameSeedSameWorld) {
  WorldConfig config;
  config.scale = 0.005;
  auto a = BuildWorld(config);
  auto b = BuildWorld(config);
  ASSERT_EQ(a->domains().size(), b->domains().size());
  EXPECT_EQ(a->pdns_db().entry_count(), b->pdns_db().entry_count());
  EXPECT_EQ(a->network().endpoint_count(), b->network().endpoint_count());
  for (size_t i = 0; i < a->domains().size(); i += 97) {
    EXPECT_EQ(a->domains()[i].name, b->domains()[i].name);
    EXPECT_EQ(a->domains()[i].birth, b->domains()[i].birth);
    EXPECT_EQ(a->domains()[i].fate, b->domains()[i].fate);
  }
}

TEST(WorldDeterminismTest, DifferentSeedsDiffer) {
  WorldConfig a_config;
  a_config.scale = 0.005;
  WorldConfig b_config = a_config;
  b_config.seed = a_config.seed + 1;
  auto a = BuildWorld(a_config);
  auto b = BuildWorld(b_config);
  // Same calibration targets -> similar sizes, different details.
  bool any_difference = a->domains().size() != b->domains().size();
  for (size_t i = 0; !any_difference && i < a->domains().size() &&
                     i < b->domains().size();
       ++i) {
    any_difference = !(a->domains()[i].name == b->domains()[i].name);
  }
  EXPECT_TRUE(any_difference);
}

}  // namespace
}  // namespace govdns::worldgen
