#include <gtest/gtest.h>

#include "zone/zonefile.h"

namespace govdns::zone {
namespace {

using dns::Name;
using dns::RRType;

constexpr char kSample[] = R"($ORIGIN gov.xx.
$TTL 7200
@       IN SOA ns1.nic.gov.xx. hostmaster.gov.xx. (
            2021040100 ; serial
            7200       ; refresh
            900        ; retry
            1209600    ; expire
            300 )      ; minimum
@       IN NS  ns1.nic.gov.xx.
@       IN NS  ns2.nic.gov.xx.
ns1.nic 86400 IN A 10.0.2.1
ns2.nic IN A 10.0.2.2
www     IN A 10.0.2.10
        IN TXT "national portal"
moe     IN NS ns1.moe
moe     IN NS ns1.ext.yy.
mail    IN MX 10 mx1
alias   IN CNAME www
)";

TEST(ZoneFileTest, ParsesSampleZone) {
  auto zone = ParseZoneFile(kSample, Name::FromString("gov.xx"));
  ASSERT_TRUE(zone.ok()) << zone.status().ToString();
  EXPECT_EQ(zone->origin().ToString(), "gov.xx");

  auto soa = zone->Soa();
  ASSERT_TRUE(soa.has_value());
  const auto& soa_rdata = std::get<dns::SoaRdata>(soa->rdata);
  EXPECT_EQ(soa_rdata.serial, 2021040100u);
  EXPECT_EQ(soa_rdata.minimum, 300u);
  EXPECT_EQ(soa_rdata.mname.ToString(), "ns1.nic.gov.xx");

  EXPECT_EQ(zone->Find(zone->origin(), RRType::kNS).size(), 2u);
  auto a = zone->Find(Name::FromString("ns1.nic.gov.xx"), RRType::kA);
  ASSERT_EQ(a.size(), 1u);
  EXPECT_EQ(a[0].ttl, 86400u);  // explicit per-record TTL
  EXPECT_EQ(dns::RdataToString(a[0].rdata), "10.0.2.1");

  // $TTL applies where no per-record TTL is given.
  auto www = zone->Find(Name::FromString("www.gov.xx"), RRType::kA);
  ASSERT_EQ(www.size(), 1u);
  EXPECT_EQ(www[0].ttl, 7200u);

  // Blank owner repeats the previous owner (the TXT under www).
  auto txt = zone->Find(Name::FromString("www.gov.xx"), RRType::kTXT);
  ASSERT_EQ(txt.size(), 1u);
  EXPECT_EQ(std::get<dns::TxtRdata>(txt[0].rdata).strings[0],
            "national portal");

  // Relative vs absolute NS targets.
  auto moe_ns = zone->NsTargets(Name::FromString("moe.gov.xx"));
  ASSERT_EQ(moe_ns.size(), 2u);
  EXPECT_EQ(moe_ns[0].ToString(), "ns1.moe.gov.xx");
  EXPECT_EQ(moe_ns[1].ToString(), "ns1.ext.yy");

  auto mx = zone->Find(Name::FromString("mail.gov.xx"), RRType::kMX);
  ASSERT_EQ(mx.size(), 1u);
  EXPECT_EQ(std::get<dns::MxRdata>(mx[0].rdata).exchange.ToString(),
            "mx1.gov.xx");

  auto cname = zone->Find(Name::FromString("alias.gov.xx"), RRType::kCNAME);
  ASSERT_EQ(cname.size(), 1u);
}

TEST(ZoneFileTest, OriginDirectiveOverridesArgument) {
  auto zone = ParseZoneFile("$ORIGIN gov.yy.\n@ IN NS ns1\n",
                            Name::FromString("ignored.zz"));
  ASSERT_TRUE(zone.ok());
  EXPECT_EQ(zone->origin().ToString(), "gov.yy");
  EXPECT_EQ(zone->NsTargets(zone->origin())[0].ToString(), "ns1.gov.yy");
}

TEST(ZoneFileTest, AtSignAndDefaultTtl) {
  ZoneFileOptions options;
  options.default_ttl = 1234;
  auto zone = ParseZoneFile("@ IN A 1.2.3.4\n", Name::FromString("x.yy"),
                            options);
  ASSERT_TRUE(zone.ok());
  auto a = zone->Find(Name::FromString("x.yy"), RRType::kA);
  ASSERT_EQ(a.size(), 1u);
  EXPECT_EQ(a[0].ttl, 1234u);
}

TEST(ZoneFileTest, ErrorsNameTheLine) {
  auto zone = ParseZoneFile("@ IN NS ns1\n@ IN A not-an-address\n",
                            Name::FromString("x.yy"));
  ASSERT_FALSE(zone.ok());
  EXPECT_NE(zone.status().message().find("line 2"), std::string::npos);
}

TEST(ZoneFileTest, RejectsUnknownTypeAndDirective) {
  EXPECT_FALSE(
      ParseZoneFile("@ IN BOGUS x\n", Name::FromString("x.yy")).ok());
  EXPECT_FALSE(
      ParseZoneFile("$GENERATE 1-5 x A 1.2.3.4\n", Name::FromString("x.yy"))
          .ok());
}

TEST(ZoneFileTest, RejectsOutOfZoneRecord) {
  auto zone = ParseZoneFile("elsewhere.zz. IN A 1.2.3.4\n",
                            Name::FromString("gov.xx"));
  EXPECT_FALSE(zone.ok());
}

TEST(ZoneFileTest, RejectsLeadingBlankOwnerWithoutPrevious) {
  EXPECT_FALSE(ParseZoneFile("  IN A 1.2.3.4\n", Name::FromString("x.yy")).ok());
}

TEST(ZoneFileTest, CommentsAndBlankLinesIgnored) {
  auto zone = ParseZoneFile(
      "; header comment\n\n@ IN A 1.2.3.4 ; trailing comment\n\n",
      Name::FromString("x.yy"));
  ASSERT_TRUE(zone.ok());
  EXPECT_EQ(zone->record_count(), 1u);
}

TEST(ZoneFileTest, RoundTripPreservesRecords) {
  auto zone = ParseZoneFile(kSample, Name::FromString("gov.xx"));
  ASSERT_TRUE(zone.ok());
  std::string text = WriteZoneFile(*zone);
  auto reparsed = ParseZoneFile(text, zone->origin());
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString() << "\n" << text;
  EXPECT_EQ(reparsed->record_count(), zone->record_count());
  // Spot-check semantic equality of a few records.
  EXPECT_EQ(reparsed->Find(Name::FromString("www.gov.xx"), RRType::kA),
            zone->Find(Name::FromString("www.gov.xx"), RRType::kA));
  EXPECT_EQ(reparsed->NsTargets(Name::FromString("moe.gov.xx")),
            zone->NsTargets(Name::FromString("moe.gov.xx")));
  EXPECT_EQ(std::get<dns::SoaRdata>(reparsed->Soa()->rdata),
            std::get<dns::SoaRdata>(zone->Soa()->rdata));
}

TEST(ZoneFileTest, GeneratedWorldZonesRoundTrip) {
  // Serialize-and-reparse a real generated zone.
  Zone zone(Name::FromString("moe.gov.zz"));
  zone.Add(dns::MakeSoa(zone.origin(), Name::FromString("ns1.moe.gov.zz"),
                        Name::FromString("hostmaster.moe.gov.zz"), 99));
  zone.Add(dns::MakeNs(zone.origin(), Name::FromString("ns1.moe.gov.zz")));
  zone.Add(dns::MakeNs(zone.origin(), Name::FromString("tim.ns.cloudflare.com")));
  zone.Add(dns::MakeA(Name::FromString("ns1.moe.gov.zz"),
                      geo::IPv4(192, 0, 2, 7)));
  zone.Add(dns::MakeTxt(zone.origin(), "v=spf1 -all"));
  auto reparsed = ParseZoneFile(WriteZoneFile(zone), zone.origin());
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  EXPECT_EQ(reparsed->record_count(), zone.record_count());
  EXPECT_EQ(reparsed->NsTargets(zone.origin()), zone.NsTargets(zone.origin()));
}

}  // namespace
}  // namespace govdns::zone
