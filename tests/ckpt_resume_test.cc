// Kill-anywhere resume harness (DESIGN.md §6f acceptance): a world-scale
// study is killed at EVERY journal write point — under every kill mode,
// including modes that truncate or corrupt the in-flight frame — and then
// resumed; the final exported StudyReport JSON must be byte-identical to an
// uninterrupted run, for 1 worker and for a pool. Also: every corruption
// mode applied to a completed journal produces a clean restart-from-prior-
// phase decision with the matching diagnostic counter, and cooperative
// interruption surfaces as a structured PipelineError that a later resume
// recovers from.
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "ckpt/fault.h"
#include "ckpt/journal.h"
#include "core/export.h"
#include "core/report.h"
#include "core/study.h"
#include "core/study_ckpt.h"
#include "worldgen/adapter.h"
#include "worldgen/countries.h"

namespace govdns {
namespace {

namespace fs = std::filesystem;

// Small but end-to-end world: hostile chaos exercises retries, dead
// subtrees, and the negative cache on top of the checkpoint machinery.
constexpr double kScale = 0.004;
constexpr size_t kBatch = 200;
constexpr uint64_t kWorldFp = 0x57EADF00D5EEDull;

std::string TempDir(const std::string& tag) {
  std::string dir =
      (fs::temp_directory_path() / ("govdns_resume_" + tag)).string();
  fs::remove_all(dir);
  return dir;
}

worldgen::WorldConfig SmallWorld() {
  worldgen::WorldConfig config;
  config.scale = kScale;
  config.chaos = simnet::ChaosProfile::Hostile();
  return config;
}

std::string ReportJsonOf(core::Study& study) {
  std::vector<std::string> top10;
  for (const char* code : worldgen::Top10CountryCodes()) {
    top10.emplace_back(code);
  }
  return core::ExportReportJson(core::BuildReport(study, top10));
}

struct RunResult {
  bool killed = false;                      // the fault plan fired
  std::string json;                         // empty when killed
  std::optional<std::string> prior_report;  // report.ck found on resume
  ckpt::JournalStats jstats;
  core::StudyCheckpointStats cstats;
};

// One full checkpointed pipeline run on a fresh world. The world is rebuilt
// every time — exactly what a restarted process does — so resume must work
// from the journal alone.
RunResult RunCheckpointed(const std::string& dir, bool resume,
                          const ckpt::CkptFaultPlan* plan, int workers,
                          const std::atomic<bool>* interrupt = nullptr) {
  auto world = worldgen::BuildWorld(SmallWorld());
  auto bound = worldgen::MakeStudy(*world);
  core::StudyCheckpointOptions opts;
  opts.batch_size = kBatch;
  opts.resume = resume;
  core::StudyCheckpoint ckpt(dir, kWorldFp, opts);
  if (plan != nullptr) ckpt.set_fault_plan(*plan);
  bound.study->AttachCheckpoint(&ckpt);
  if (interrupt != nullptr) bound.study->set_interrupt_flag(interrupt);

  RunResult out;
  try {
    bound.study->RunSelection();
    bound.study->RunMining();
    core::MeasurerOptions mopts;
    mopts.workers = workers;
    bound.study->RunActiveMeasurement(mopts);
    out.prior_report = ckpt.TryLoadReportJson();
    out.json = ReportJsonOf(*bound.study);
    ckpt.SaveReportJson(out.json);
  } catch (const ckpt::KillPointReached&) {
    out.killed = true;
  }
  out.jstats = ckpt.journal_stats();
  out.cstats = ckpt.stats();
  return out;
}

// The same pipeline with no checkpoint at all.
std::string RunPlain(int workers) {
  auto world = worldgen::BuildWorld(SmallWorld());
  auto bound = worldgen::MakeStudy(*world);
  bound.study->RunSelection();
  bound.study->RunMining();
  core::MeasurerOptions mopts;
  mopts.workers = workers;
  bound.study->RunActiveMeasurement(mopts);
  return ReportJsonOf(*bound.study);
}

void DamageFile(const std::string& path,
                const std::function<void(std::string&)>& mutate) {
  std::ifstream in(path, std::ios::binary);
  std::string raw((std::istreambuf_iterator<char>(in)),
                  std::istreambuf_iterator<char>());
  in.close();
  ASSERT_FALSE(raw.empty()) << path;
  mutate(raw);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << raw;
}

TEST(CkptResumeTest, CheckpointedRunMatchesPlainRun) {
  const std::string dir = TempDir("vs_plain");
  RunResult ck = RunCheckpointed(dir, /*resume=*/false, nullptr, /*workers=*/1);
  ASSERT_FALSE(ck.killed);
  EXPECT_EQ(ck.json, RunPlain(/*workers=*/1));
  // The sweep below relies on a meaningful number of write points.
  EXPECT_GE(ck.jstats.commits, 5u);
  fs::remove_all(dir);
}

// Kill at write k (mode cycling through all five), resume, compare.
void KillSweep(int workers) {
  const std::string tag = "sweep_w" + std::to_string(workers);
  const std::string base_dir = TempDir(tag + "_base");
  RunResult baseline =
      RunCheckpointed(base_dir, /*resume=*/false, nullptr, workers);
  ASSERT_FALSE(baseline.killed);
  ASSERT_FALSE(baseline.json.empty());
  // Includes the final SaveReportJson commit — that write point is swept too.
  const uint64_t writes = baseline.jstats.commits;
  ASSERT_GE(writes, 5u);
  fs::remove_all(base_dir);

  constexpr ckpt::KillMode kModes[] = {
      ckpt::KillMode::kBeforeWrite, ckpt::KillMode::kAfterTemp,
      ckpt::KillMode::kTruncate, ckpt::KillMode::kCorrupt,
      ckpt::KillMode::kAfterCommit};
  for (uint64_t k = 1; k <= writes; ++k) {
    const ckpt::KillMode mode = kModes[k % 5];
    const std::string dir = TempDir(tag + "_k" + std::to_string(k));
    ckpt::CkptFaultPlan plan;
    plan.kill_at_write = k;
    plan.mode = mode;
    plan.exit_process = false;
    RunResult killed = RunCheckpointed(dir, /*resume=*/false, &plan, workers);
    ASSERT_TRUE(killed.killed)
        << "plan at write " << k << " never fired (only "
        << killed.jstats.commits << " writes)";
    RunResult resumed =
        RunCheckpointed(dir, /*resume=*/true, nullptr, workers);
    ASSERT_FALSE(resumed.killed);
    EXPECT_EQ(resumed.json, baseline.json)
        << "report diverged after kill at write " << k << " ("
        << ckpt::KillModeName(mode) << ")";
    fs::remove_all(dir);
  }
}

TEST(CkptResumeTest, KillAtEveryWritePointSingleWorker) { KillSweep(1); }

TEST(CkptResumeTest, KillAtEveryWritePointWorkerPool) { KillSweep(4); }

// A fully-resumed run finds the journaled report and it matches what it
// recomputes.
TEST(CkptResumeTest, CompletedJournalServesThePriorReport) {
  const std::string dir = TempDir("prior_report");
  RunResult first =
      RunCheckpointed(dir, /*resume=*/false, nullptr, /*workers=*/1);
  ASSERT_FALSE(first.killed);
  RunResult second =
      RunCheckpointed(dir, /*resume=*/true, nullptr, /*workers=*/1);
  ASSERT_FALSE(second.killed);
  ASSERT_TRUE(second.prior_report.has_value());
  EXPECT_EQ(*second.prior_report, first.json);
  EXPECT_EQ(second.json, first.json);
  // Everything loaded; nothing recomputed or re-saved except the report.
  EXPECT_EQ(second.cstats.phases_loaded, 2);
  EXPECT_EQ(second.cstats.phases_saved, 0);
  EXPECT_EQ(second.cstats.batches_saved, 0);
  EXPECT_GT(second.cstats.results_loaded, 0);
  fs::remove_all(dir);
}

// ---- corruption of a completed journal -----------------------------------
// Each damage mode must produce a clean restart-from-prior-phase decision
// (the matching rejected_* counter), then a byte-identical report.

struct CorruptionCase {
  const char* file;
  void (*mutate)(std::string&);
  uint64_t ckpt::JournalStats::* counter;
};

void ExpectRecovery(const std::string& tag, const CorruptionCase& c) {
  const std::string dir = TempDir(tag);
  RunResult first =
      RunCheckpointed(dir, /*resume=*/false, nullptr, /*workers=*/1);
  ASSERT_FALSE(first.killed);
  DamageFile(dir + "/" + c.file, c.mutate);
  RunResult resumed =
      RunCheckpointed(dir, /*resume=*/true, nullptr, /*workers=*/1);
  ASSERT_FALSE(resumed.killed);
  EXPECT_EQ(resumed.json, first.json) << tag;
  EXPECT_GT(resumed.jstats.*(c.counter), 0u) << tag;
  fs::remove_all(dir);
}

TEST(CkptResumeTest, RecoversFromTruncatedMiningFrame) {
  ExpectRecovery(
      "trunc_mining",
      {"mining.ck", [](std::string& raw) { raw.resize(raw.size() / 2); },
       &ckpt::JournalStats::rejected_truncated});
}

TEST(CkptResumeTest, RecoversFromFlippedCrcByteInSelection) {
  ExpectRecovery("crc_selection",
                 {"selection.ck",
                  [](std::string& raw) {
                    raw[ckpt::kFrameHeaderSize + raw.size() / 3] ^= 0x40;
                  },
                  &ckpt::JournalStats::rejected_crc});
}

TEST(CkptResumeTest, RecoversFromWrongFormatVersion) {
  ExpectRecovery("version_mining",
                 {"mining.ck",
                  [](std::string& raw) {
                    raw[4] = static_cast<char>(ckpt::kFrameVersion + 7);
                  },
                  &ckpt::JournalStats::rejected_version});
}

TEST(CkptResumeTest, RecoversFromDamagedBatchFrame) {
  ExpectRecovery(
      "trunc_batch",
      {"active_000000.ck",
       [](std::string& raw) { raw.resize(ckpt::kFrameHeaderSize + 10); },
       &ckpt::JournalStats::rejected_truncated});
}

// A journal written under a different config/world identity must be
// rejected wholesale (fingerprint counter), then rebuilt from scratch.
TEST(CkptResumeTest, RejectsJournalFromDifferentWorld) {
  const std::string dir = TempDir("wrong_world");
  {
    auto world = worldgen::BuildWorld(SmallWorld());
    auto bound = worldgen::MakeStudy(*world);
    core::StudyCheckpointOptions opts;
    opts.batch_size = kBatch;
    core::StudyCheckpoint ckpt(dir, kWorldFp + 1, opts);  // other identity
    bound.study->AttachCheckpoint(&ckpt);
    bound.study->RunSelection();
    bound.study->RunMining();
  }
  const std::string base_dir = TempDir("wrong_world_base");
  RunResult baseline = RunCheckpointed(base_dir, /*resume=*/false, nullptr, 1);
  RunResult resumed = RunCheckpointed(dir, /*resume=*/true, nullptr, 1);
  ASSERT_FALSE(resumed.killed);
  EXPECT_EQ(resumed.json, baseline.json);
  EXPECT_GT(resumed.jstats.rejected_fingerprint, 0u);
  EXPECT_EQ(resumed.cstats.phases_loaded, 0);
  fs::remove_all(dir);
  fs::remove_all(base_dir);
}

// ---- cooperative interruption --------------------------------------------

TEST(CkptResumeTest, InterruptSurfacesAsPipelineErrorAndResumes) {
  const std::string dir = TempDir("interrupt");
  std::atomic<bool> flag{true};
  try {
    RunCheckpointed(dir, /*resume=*/false, nullptr, /*workers=*/1, &flag);
    FAIL() << "interrupted run completed";
  } catch (const core::PipelineError& e) {
    EXPECT_EQ(e.phase(), "selection");
    EXPECT_EQ(e.cause(), "interrupted");
  }
  flag.store(false);
  RunResult resumed =
      RunCheckpointed(dir, /*resume=*/true, nullptr, /*workers=*/1, &flag);
  ASSERT_FALSE(resumed.killed);
  EXPECT_EQ(resumed.json, RunPlain(/*workers=*/1));
  fs::remove_all(dir);
}

}  // namespace
}  // namespace govdns
