// A small hand-built Internet for resolver and measurement tests:
//
//   . (root)            a.rootsim @ 10.0.0.1
//   xx (TLD)            a.nic.xx  @ 10.0.1.1
//   gov.xx              ns1.nic.gov.xx @ 10.0.2.1
//     moe.gov.xx        healthy: ns1/ns2.moe.gov.xx @ 10.0.3.1/.2 (glue)
//     lame.gov.xx       glue present, nothing listens  (partial: 1 of 1)
//     half.gov.xx       ns1 healthy, ns2 dead          (partially lame)
//     glueless.gov.xx   NS = ns1.ext.xx (resolved via the ext.xx zone)
//     typo.gov.xx       NS = ns1ext.xx  (unresolvable label fusion)
//     refused.gov.xx    served by a kRefuseAll host
//     drift.gov.xx      parent lists {ns1,old}; child zone lists {ns1,new}
//   ext.xx              ns1.ext.xx @ 10.0.5.1 (also serves glueless.gov.xx)
//
//   yy (TLD)            a.nic.yy  @ 10.0.10.1   (regression-test subtree)
//   gov.yy              g1 @ 10.0.11.1 (honest) + g2 @ 10.0.11.2 (poisons
//                       referrals for victim.gov.yy with an out-of-bailiwick
//                       additional A record)
//     victim.gov.yy     ns1/ns2.victim.gov.yy @ 10.0.12.1/.2, both healthy
//     chain.gov.yy      parent lists only ns1 @ 10.0.13.1 whose zone copy
//                       names {ns1,ns2}; ns2/ns3 @ 10.0.13.2/.3 serve a
//                       newer copy naming {ns1,ns2,ns3} — the full NS set
//                       only appears after a second expansion round
#pragma once

#include <memory>

#include "simnet/network.h"
#include "zone/auth_server.h"
#include "zone/zone.h"

namespace govdns::testing {

class TinyInternet {
 public:
  explicit TinyInternet(uint64_t seed = 1) : net(seed) {
    using dns::MakeA;
    using dns::MakeCname;
    using dns::MakeNs;
    using dns::MakeSoa;
    using dns::Name;

    auto N = [](const char* s) { return Name::FromString(s); };

    // --- root + rootsim ---
    auto root = AddZone(".");
    auto rootsim = AddZone("rootsim");
    root->Add(MakeNs(N("."), N("a.rootsim")));
    root->Add(MakeSoa(N("."), N("a.rootsim"), N("nstld.rootsim"), 1));
    root->Add(MakeNs(N("rootsim"), N("a.rootsim")));
    root->Add(MakeA(N("a.rootsim"), Ip(10, 0, 0, 1)));
    rootsim->Add(MakeNs(N("rootsim"), N("a.rootsim")));
    rootsim->Add(MakeA(N("a.rootsim"), Ip(10, 0, 0, 1)));
    root_server = AddServer("a.rootsim", {Ip(10, 0, 0, 1)});
    root_server->AddZone(root);
    root_server->AddZone(rootsim);

    // --- xx TLD ---
    auto xx = AddZone("xx");
    xx->Add(MakeNs(N("xx"), N("a.nic.xx")));
    xx->Add(MakeSoa(N("xx"), N("a.nic.xx"), N("hostmaster.nic.xx"), 1));
    xx->Add(MakeA(N("a.nic.xx"), Ip(10, 0, 1, 1)));
    root->Add(MakeNs(N("xx"), N("a.nic.xx")));
    root->Add(MakeA(N("a.nic.xx"), Ip(10, 0, 1, 1)));
    tld_server = AddServer("a.nic.xx", {Ip(10, 0, 1, 1)});
    tld_server->AddZone(xx);

    // --- ext.xx (out-of-bailiwick NS provider) ---
    auto ext = AddZone("ext.xx");
    ext->Add(MakeNs(N("ext.xx"), N("ns1.ext.xx")));
    ext->Add(MakeSoa(N("ext.xx"), N("ns1.ext.xx"), N("hostmaster.ext.xx"), 1));
    ext->Add(MakeA(N("ns1.ext.xx"), Ip(10, 0, 5, 1)));
    xx->Add(MakeNs(N("ext.xx"), N("ns1.ext.xx")));
    xx->Add(MakeA(N("ns1.ext.xx"), Ip(10, 0, 5, 1)));
    ext_server = AddServer("ns1.ext.xx", {Ip(10, 0, 5, 1)});
    ext_server->AddZone(ext);

    // --- gov.xx ---
    auto gov = AddZone("gov.xx");
    gov->Add(MakeNs(N("gov.xx"), N("ns1.nic.gov.xx")));
    gov->Add(MakeSoa(N("gov.xx"), N("ns1.nic.gov.xx"),
                     N("hostmaster.gov.xx"), 1));
    gov->Add(MakeA(N("ns1.nic.gov.xx"), Ip(10, 0, 2, 1)));
    xx->Add(MakeNs(N("gov.xx"), N("ns1.nic.gov.xx")));
    xx->Add(MakeA(N("ns1.nic.gov.xx"), Ip(10, 0, 2, 1)));
    gov_server = AddServer("ns1.nic.gov.xx", {Ip(10, 0, 2, 1)});
    gov_server->AddZone(gov);

    // moe.gov.xx: healthy.
    auto moe = AddZone("moe.gov.xx");
    moe->Add(MakeNs(N("moe.gov.xx"), N("ns1.moe.gov.xx")));
    moe->Add(MakeNs(N("moe.gov.xx"), N("ns2.moe.gov.xx")));
    moe->Add(MakeSoa(N("moe.gov.xx"), N("ns1.moe.gov.xx"),
                     N("hostmaster.moe.gov.xx"), 1));
    moe->Add(MakeA(N("ns1.moe.gov.xx"), Ip(10, 0, 3, 1)));
    moe->Add(MakeA(N("ns2.moe.gov.xx"), Ip(10, 0, 3, 2)));
    moe->Add(MakeA(N("www.moe.gov.xx"), Ip(10, 0, 3, 10)));
    moe->Add(MakeCname(N("alias.moe.gov.xx"), N("www.moe.gov.xx")));
    gov->Add(MakeNs(N("moe.gov.xx"), N("ns1.moe.gov.xx")));
    gov->Add(MakeNs(N("moe.gov.xx"), N("ns2.moe.gov.xx")));
    gov->Add(MakeA(N("ns1.moe.gov.xx"), Ip(10, 0, 3, 1)));
    gov->Add(MakeA(N("ns2.moe.gov.xx"), Ip(10, 0, 3, 2)));
    moe_server1 = AddServer("ns1.moe.gov.xx", {Ip(10, 0, 3, 1)});
    moe_server2 = AddServer("ns2.moe.gov.xx", {Ip(10, 0, 3, 2)});
    moe_server1->AddZone(moe);
    moe_server2->AddZone(moe);

    // lame.gov.xx: glue to a host nobody runs.
    gov->Add(MakeNs(N("lame.gov.xx"), N("ns1.lame.gov.xx")));
    gov->Add(MakeA(N("ns1.lame.gov.xx"), Ip(10, 0, 4, 1)));

    // half.gov.xx: one good, one dead.
    auto half = AddZone("half.gov.xx");
    half->Add(MakeNs(N("half.gov.xx"), N("ns1.half.gov.xx")));
    half->Add(MakeNs(N("half.gov.xx"), N("ns2.half.gov.xx")));
    half->Add(MakeSoa(N("half.gov.xx"), N("ns1.half.gov.xx"),
                      N("hostmaster.half.gov.xx"), 1));
    half->Add(MakeA(N("ns1.half.gov.xx"), Ip(10, 0, 4, 11)));
    half->Add(MakeA(N("ns2.half.gov.xx"), Ip(10, 0, 4, 12)));
    gov->Add(MakeNs(N("half.gov.xx"), N("ns1.half.gov.xx")));
    gov->Add(MakeNs(N("half.gov.xx"), N("ns2.half.gov.xx")));
    gov->Add(MakeA(N("ns1.half.gov.xx"), Ip(10, 0, 4, 11)));
    gov->Add(MakeA(N("ns2.half.gov.xx"), Ip(10, 0, 4, 12)));
    half_server = AddServer("ns1.half.gov.xx", {Ip(10, 0, 4, 11)});
    half_server->AddZone(half);
    // 10.0.4.12 has no handler: dead secondary.

    // glueless.gov.xx: NS out of bailiwick, no glue.
    auto glueless = AddZone("glueless.gov.xx");
    glueless->Add(MakeNs(N("glueless.gov.xx"), N("ns1.ext.xx")));
    glueless->Add(MakeSoa(N("glueless.gov.xx"), N("ns1.ext.xx"),
                          N("hostmaster.ext.xx"), 1));
    glueless->Add(MakeA(N("www.glueless.gov.xx"), Ip(10, 0, 6, 1)));
    gov->Add(MakeNs(N("glueless.gov.xx"), N("ns1.ext.xx")));
    ext_server->AddZone(glueless);

    // typo.gov.xx: the fused-label typo, unresolvable.
    gov->Add(MakeNs(N("typo.gov.xx"), N("ns1ext.xx")));

    // refused.gov.xx: host answers REFUSED for everything.
    gov->Add(MakeNs(N("refused.gov.xx"), N("ns1.refused.gov.xx")));
    gov->Add(MakeA(N("ns1.refused.gov.xx"), Ip(10, 0, 4, 21)));
    refused_server = AddServer("ns1.refused.gov.xx", {Ip(10, 0, 4, 21)},
                               zone::ServerMode::kRefuseAll);

    // drift.gov.xx: parent {ns1,old}, child {ns1,new}; old host dead,
    // new host alive.
    auto drift = AddZone("drift.gov.xx");
    drift->Add(MakeNs(N("drift.gov.xx"), N("ns1.drift.gov.xx")));
    drift->Add(MakeNs(N("drift.gov.xx"), N("nsnew.drift.gov.xx")));
    drift->Add(MakeSoa(N("drift.gov.xx"), N("ns1.drift.gov.xx"),
                       N("hostmaster.drift.gov.xx"), 1));
    drift->Add(MakeA(N("ns1.drift.gov.xx"), Ip(10, 0, 7, 1)));
    drift->Add(MakeA(N("nsnew.drift.gov.xx"), Ip(10, 0, 7, 2)));
    drift->Add(MakeA(N("nsold.drift.gov.xx"), Ip(10, 0, 7, 3)));
    gov->Add(MakeNs(N("drift.gov.xx"), N("ns1.drift.gov.xx")));
    gov->Add(MakeNs(N("drift.gov.xx"), N("nsold.drift.gov.xx")));
    gov->Add(MakeA(N("ns1.drift.gov.xx"), Ip(10, 0, 7, 1)));
    gov->Add(MakeA(N("nsold.drift.gov.xx"), Ip(10, 0, 7, 3)));
    drift_server = AddServer("ns1.drift.gov.xx", {Ip(10, 0, 7, 1)});
    drift_server->AddZone(drift);
    drift_server_new = AddServer("nsnew.drift.gov.xx", {Ip(10, 0, 7, 2)});
    drift_server_new->AddZone(drift);
    // nsold @ 10.0.7.3: resolvable but nothing listens.

    // --- yy TLD (kept separate from xx so its traffic cannot shift the
    // global exchange ordinals any xx-path test depends on) ---
    auto yy = AddZone("yy");
    yy->Add(MakeNs(N("yy"), N("a.nic.yy")));
    yy->Add(MakeSoa(N("yy"), N("a.nic.yy"), N("hostmaster.nic.yy"), 1));
    yy->Add(MakeA(N("a.nic.yy"), Ip(10, 0, 10, 1)));
    root->Add(MakeNs(N("yy"), N("a.nic.yy")));
    root->Add(MakeA(N("a.nic.yy"), Ip(10, 0, 10, 1)));
    yy_tld_server = AddServer("a.nic.yy", {Ip(10, 0, 10, 1)});
    yy_tld_server->AddZone(yy);

    // --- gov.yy: two parent servers; g2 poisons victim.gov.yy referrals ---
    auto govyy = AddZone("gov.yy");
    govyy->Add(MakeNs(N("gov.yy"), N("g1.nic.gov.yy")));
    govyy->Add(MakeNs(N("gov.yy"), N("g2.nic.gov.yy")));
    govyy->Add(MakeSoa(N("gov.yy"), N("g1.nic.gov.yy"),
                       N("hostmaster.gov.yy"), 1));
    govyy->Add(MakeA(N("g1.nic.gov.yy"), Ip(10, 0, 11, 1)));
    govyy->Add(MakeA(N("g2.nic.gov.yy"), Ip(10, 0, 11, 2)));
    yy->Add(MakeNs(N("gov.yy"), N("g1.nic.gov.yy")));
    yy->Add(MakeNs(N("gov.yy"), N("g2.nic.gov.yy")));
    yy->Add(MakeA(N("g1.nic.gov.yy"), Ip(10, 0, 11, 1)));
    yy->Add(MakeA(N("g2.nic.gov.yy"), Ip(10, 0, 11, 2)));
    gov_yy_server1 = AddServer("g1.nic.gov.yy", {Ip(10, 0, 11, 1)});
    gov_yy_server1->AddZone(govyy);

    // victim.gov.yy: an honestly-delegated two-host zone.
    auto victim = AddZone("victim.gov.yy");
    victim->Add(MakeNs(N("victim.gov.yy"), N("ns1.victim.gov.yy")));
    victim->Add(MakeNs(N("victim.gov.yy"), N("ns2.victim.gov.yy")));
    victim->Add(MakeSoa(N("victim.gov.yy"), N("ns1.victim.gov.yy"),
                        N("hostmaster.victim.gov.yy"), 1));
    victim->Add(MakeA(N("ns1.victim.gov.yy"), Ip(10, 0, 12, 1)));
    victim->Add(MakeA(N("ns2.victim.gov.yy"), Ip(10, 0, 12, 2)));
    govyy->Add(MakeNs(N("victim.gov.yy"), N("ns1.victim.gov.yy")));
    govyy->Add(MakeNs(N("victim.gov.yy"), N("ns2.victim.gov.yy")));
    govyy->Add(MakeA(N("ns1.victim.gov.yy"), Ip(10, 0, 12, 1)));
    govyy->Add(MakeA(N("ns2.victim.gov.yy"), Ip(10, 0, 12, 2)));
    victim_server1 = AddServer("ns1.victim.gov.yy", {Ip(10, 0, 12, 1)});
    victim_server2 = AddServer("ns2.victim.gov.yy", {Ip(10, 0, 12, 2)});
    victim_server1->AddZone(victim);
    victim_server2->AddZone(victim);

    // g2: answers gov.yy normally, except that referrals for anything under
    // victim.gov.yy delegate to ns1 only while the additional section also
    // smuggles an A record for ns2 pointing at an unrelated address — the
    // classic out-of-bailiwick glue a measurement client must not swallow.
    servers_.push_back(
        std::make_unique<zone::AuthServer>("g2.nic.gov.yy",
                                           zone::ServerMode::kNormal));
    gov_yy_server2 = servers_.back().get();
    gov_yy_server2->AddZone(govyy);
    zone::AuthServer* g2 = gov_yy_server2;
    net.AttachHandler(Ip(10, 0, 11, 2), [g2](const std::vector<uint8_t>& wire) {
      auto query = dns::Message::Decode(wire);
      if (!query.ok()) {
        dns::Message err;
        err.header.qr = true;
        err.header.rcode = dns::Rcode::kFormErr;
        return err.Encode();
      }
      const dns::Name victim_zone = dns::Name::FromString("victim.gov.yy");
      if (!query->questions.empty() &&
          query->questions[0].name.IsSubdomainOf(victim_zone)) {
        dns::Message resp = dns::MakeResponse(*query, dns::Rcode::kNoError);
        resp.header.aa = false;
        resp.authority.push_back(
            dns::MakeNs(victim_zone, dns::Name::FromString("ns1.victim.gov.yy")));
        resp.additional.push_back(dns::MakeA(
            dns::Name::FromString("ns1.victim.gov.yy"), Ip(10, 0, 12, 1)));
        // The poison: ns2 is a real nameserver of victim.gov.yy, but *this*
        // referral does not delegate to it, so its address must be ignored.
        resp.additional.push_back(dns::MakeA(
            dns::Name::FromString("ns2.victim.gov.yy"), Ip(10, 0, 9, 9)));
        return resp.Encode();
      }
      return g2->Answer(*query).Encode();
    });

    // chain.gov.yy: the NS set only fully emerges by following servers that
    // first appear in another server's authoritative answer. The parent
    // knows just ns1; ns1's (older) zone copy names {ns1,ns2}; ns2 and ns3
    // serve a newer copy naming {ns1,ns2,ns3}.
    auto chain_old = AddZone("chain.gov.yy");
    chain_old->Add(MakeNs(N("chain.gov.yy"), N("ns1.chain.gov.yy")));
    chain_old->Add(MakeNs(N("chain.gov.yy"), N("ns2.chain.gov.yy")));
    chain_old->Add(MakeSoa(N("chain.gov.yy"), N("ns1.chain.gov.yy"),
                           N("hostmaster.chain.gov.yy"), 1));
    chain_old->Add(MakeA(N("ns1.chain.gov.yy"), Ip(10, 0, 13, 1)));
    chain_old->Add(MakeA(N("ns2.chain.gov.yy"), Ip(10, 0, 13, 2)));
    chain_old->Add(MakeA(N("ns3.chain.gov.yy"), Ip(10, 0, 13, 3)));
    auto chain_new = AddZone("chain.gov.yy");
    chain_new->Add(MakeNs(N("chain.gov.yy"), N("ns1.chain.gov.yy")));
    chain_new->Add(MakeNs(N("chain.gov.yy"), N("ns2.chain.gov.yy")));
    chain_new->Add(MakeNs(N("chain.gov.yy"), N("ns3.chain.gov.yy")));
    chain_new->Add(MakeSoa(N("chain.gov.yy"), N("ns1.chain.gov.yy"),
                           N("hostmaster.chain.gov.yy"), 2));
    chain_new->Add(MakeA(N("ns1.chain.gov.yy"), Ip(10, 0, 13, 1)));
    chain_new->Add(MakeA(N("ns2.chain.gov.yy"), Ip(10, 0, 13, 2)));
    chain_new->Add(MakeA(N("ns3.chain.gov.yy"), Ip(10, 0, 13, 3)));
    govyy->Add(MakeNs(N("chain.gov.yy"), N("ns1.chain.gov.yy")));
    govyy->Add(MakeA(N("ns1.chain.gov.yy"), Ip(10, 0, 13, 1)));
    chain_server1 = AddServer("ns1.chain.gov.yy", {Ip(10, 0, 13, 1)});
    chain_server1->AddZone(chain_old);
    chain_server2 = AddServer("ns2.chain.gov.yy", {Ip(10, 0, 13, 2)});
    chain_server2->AddZone(chain_new);
    chain_server3 = AddServer("ns3.chain.gov.yy", {Ip(10, 0, 13, 3)});
    chain_server3->AddZone(chain_new);
  }

  static geo::IPv4 Ip(uint8_t a, uint8_t b, uint8_t c, uint8_t d) {
    return geo::IPv4(a, b, c, d);
  }

  std::vector<geo::IPv4> roots() const { return {Ip(10, 0, 0, 1)}; }

  simnet::SimNetwork net;
  zone::AuthServer* root_server = nullptr;
  zone::AuthServer* tld_server = nullptr;
  zone::AuthServer* gov_server = nullptr;
  zone::AuthServer* ext_server = nullptr;
  zone::AuthServer* moe_server1 = nullptr;
  zone::AuthServer* moe_server2 = nullptr;
  zone::AuthServer* half_server = nullptr;
  zone::AuthServer* refused_server = nullptr;
  zone::AuthServer* drift_server = nullptr;
  zone::AuthServer* drift_server_new = nullptr;
  zone::AuthServer* yy_tld_server = nullptr;
  zone::AuthServer* gov_yy_server1 = nullptr;
  zone::AuthServer* gov_yy_server2 = nullptr;
  zone::AuthServer* victim_server1 = nullptr;
  zone::AuthServer* victim_server2 = nullptr;
  zone::AuthServer* chain_server1 = nullptr;
  zone::AuthServer* chain_server2 = nullptr;
  zone::AuthServer* chain_server3 = nullptr;

 private:
  std::shared_ptr<zone::Zone> AddZone(const char* origin) {
    auto z = std::make_shared<zone::Zone>(dns::Name::FromString(origin));
    zones_.push_back(z);
    return z;
  }

  zone::AuthServer* AddServer(const char* id, std::vector<geo::IPv4> ips,
                              zone::ServerMode mode = zone::ServerMode::kNormal) {
    servers_.push_back(std::make_unique<zone::AuthServer>(id, mode));
    zone::AuthServer* server = servers_.back().get();
    for (geo::IPv4 ip : ips) {
      net.AttachHandler(ip, [server](const std::vector<uint8_t>& wire) {
        auto query = dns::Message::Decode(wire);
        if (!query.ok()) {
          dns::Message err;
          err.header.qr = true;
          err.header.rcode = dns::Rcode::kFormErr;
          return err.Encode();
        }
        return server->Answer(*query).Encode();
      });
    }
    return server;
  }

  std::vector<std::shared_ptr<zone::Zone>> zones_;
  std::vector<std::unique_ptr<zone::AuthServer>> servers_;
};

}  // namespace govdns::testing
