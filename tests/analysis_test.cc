// Unit tests for the §IV analyses over synthetic MeasurementResults — every
// classification branch, without any network involved.
#include <gtest/gtest.h>

#include "core/analysis.h"

namespace govdns::core {
namespace {

using dns::Name;

NsHostResult Host(const char* name, NsHostStatus status, bool in_p, bool in_c,
                  std::vector<geo::IPv4> addrs = {}) {
  NsHostResult host;
  host.host = Name::FromString(name);
  host.status = status;
  host.in_parent_set = in_p;
  host.in_child_set = in_c;
  host.addresses = std::move(addrs);
  return host;
}

MeasurementResult Result(const char* domain,
                         std::vector<const char*> parent_ns,
                         std::vector<const char*> child_ns,
                         std::vector<NsHostResult> hosts) {
  MeasurementResult r;
  r.domain = Name::FromString(domain);
  r.parent_located = true;
  r.parent_responded = true;
  for (const char* ns : parent_ns) r.parent_ns.push_back(Name::FromString(ns));
  for (const char* ns : child_ns) r.child_ns.push_back(Name::FromString(ns));
  r.parent_has_records = !r.parent_ns.empty();
  r.hosts = std::move(hosts);
  for (const auto& host : r.hosts) {
    if (host.status == NsHostStatus::kAuthoritative) {
      r.child_any_authoritative = true;
    }
  }
  return r;
}

// ---------------------------------------------------------------------------
// Delegation classification
// ---------------------------------------------------------------------------

TEST(ClassifyDelegationTest, Healthy) {
  auto r = Result("d.gov.xx", {"a.x", "b.x"}, {"a.x", "b.x"},
                  {Host("a.x", NsHostStatus::kAuthoritative, true, true),
                   Host("b.x", NsHostStatus::kAuthoritative, true, true)});
  EXPECT_EQ(ClassifyDelegation(r), DelegationHealth::kHealthy);
}

TEST(ClassifyDelegationTest, EveryFailureModeIsDefective) {
  for (auto status : {NsHostStatus::kNonAuthoritative, NsHostStatus::kRefused,
                      NsHostStatus::kNoResponse, NsHostStatus::kUnresolvable}) {
    auto r = Result("d.gov.xx", {"a.x", "b.x"}, {"a.x", "b.x"},
                    {Host("a.x", NsHostStatus::kAuthoritative, true, true),
                     Host("b.x", status, true, true)});
    EXPECT_EQ(ClassifyDelegation(r), DelegationHealth::kPartiallyDefective)
        << static_cast<int>(status);
  }
}

TEST(ClassifyDelegationTest, AllBadIsFullyDefective) {
  auto r = Result("d.gov.xx", {"a.x", "b.x"}, {},
                  {Host("a.x", NsHostStatus::kNoResponse, true, false),
                   Host("b.x", NsHostStatus::kUnresolvable, true, false)});
  EXPECT_EQ(ClassifyDelegation(r), DelegationHealth::kFullyDefective);
}

TEST(ClassifyDelegationTest, ChildOnlyHostsDoNotCount) {
  // A dead child-only NS is an inconsistency problem, not a (parent)
  // delegation defect.
  auto r = Result("d.gov.xx", {"a.x"}, {"a.x", "c.x"},
                  {Host("a.x", NsHostStatus::kAuthoritative, true, true),
                   Host("c.x", NsHostStatus::kNoResponse, false, true)});
  EXPECT_EQ(ClassifyDelegation(r), DelegationHealth::kHealthy);
}

// ---------------------------------------------------------------------------
// Consistency classification
// ---------------------------------------------------------------------------

TEST(ClassifyConsistencyTest, Equal) {
  auto r = Result("d.gov.xx", {"a.x", "b.x"}, {"b.x", "a.x"},
                  {Host("a.x", NsHostStatus::kAuthoritative, true, true),
                   Host("b.x", NsHostStatus::kAuthoritative, true, true)});
  EXPECT_EQ(ClassifyConsistency(r), ConsistencyClass::kEqual);
}

TEST(ClassifyConsistencyTest, ChildSuperset) {
  auto r = Result("d.gov.xx", {"a.x"}, {"a.x", "b.x"},
                  {Host("a.x", NsHostStatus::kAuthoritative, true, true),
                   Host("b.x", NsHostStatus::kAuthoritative, false, true)});
  EXPECT_EQ(ClassifyConsistency(r), ConsistencyClass::kChildSuperset);
}

TEST(ClassifyConsistencyTest, ParentSuperset) {
  auto r = Result("d.gov.xx", {"a.x", "b.x"}, {"a.x"},
                  {Host("a.x", NsHostStatus::kAuthoritative, true, true),
                   Host("b.x", NsHostStatus::kNoResponse, true, false)});
  EXPECT_EQ(ClassifyConsistency(r), ConsistencyClass::kParentSuperset);
}

TEST(ClassifyConsistencyTest, OverlapNeither) {
  auto r = Result("d.gov.xx", {"a.x", "old.x"}, {"a.x", "new.x"},
                  {Host("a.x", NsHostStatus::kAuthoritative, true, true),
                   Host("old.x", NsHostStatus::kNoResponse, true, false),
                   Host("new.x", NsHostStatus::kAuthoritative, false, true)});
  EXPECT_EQ(ClassifyConsistency(r), ConsistencyClass::kOverlapNeither);
}

TEST(ClassifyConsistencyTest, DisjointWithSharedAddresses) {
  geo::IPv4 shared(10, 0, 0, 1);
  auto r = Result("d.gov.xx", {"old.x"}, {"new.x"},
                  {Host("old.x", NsHostStatus::kAuthoritative, true, false,
                        {shared}),
                   Host("new.x", NsHostStatus::kAuthoritative, false, true,
                        {shared})});
  EXPECT_EQ(ClassifyConsistency(r), ConsistencyClass::kDisjointSharedIp);
}

TEST(ClassifyConsistencyTest, DisjointDifferentAddresses) {
  auto r = Result("d.gov.xx", {"old.x"}, {"new.x"},
                  {Host("old.x", NsHostStatus::kAuthoritative, true, false,
                        {geo::IPv4(10, 0, 0, 1)}),
                   Host("new.x", NsHostStatus::kAuthoritative, false, true,
                        {geo::IPv4(10, 0, 0, 2)})});
  EXPECT_EQ(ClassifyConsistency(r), ConsistencyClass::kDisjoint);
}

TEST(ClassifyConsistencyTest, NoChildAnswerNotComparable) {
  auto r = Result("d.gov.xx", {"a.x"}, {},
                  {Host("a.x", NsHostStatus::kNoResponse, true, false)});
  EXPECT_EQ(ClassifyConsistency(r), ConsistencyClass::kNotComparable);
}

// ---------------------------------------------------------------------------
// Aggregations
// ---------------------------------------------------------------------------

ActiveDataset SmallDataset() {
  std::vector<CountryMeta> metas = {{"aa", "Aland", "Northern Europe", false},
                                    {"bb", "Borduria", "Eastern Europe", false}};
  std::vector<SeedDomain> seeds;
  seeds.push_back({0, Name::FromString("gov.aa"),
                   SeedVerification::kRegistryPolicy, false});
  seeds.push_back({1, Name::FromString("gov.bb"),
                   SeedVerification::kRegistryPolicy, false});

  std::vector<MeasurementResult> results;
  // Healthy 2-NS in aa.
  results.push_back(
      Result("x.gov.aa", {"n1.x.gov.aa", "n2.x.gov.aa"},
             {"n1.x.gov.aa", "n2.x.gov.aa"},
             {Host("n1.x.gov.aa", NsHostStatus::kAuthoritative, true, true,
                   {geo::IPv4(10, 0, 0, 1)}),
              Host("n2.x.gov.aa", NsHostStatus::kAuthoritative, true, true,
                   {geo::IPv4(10, 0, 1, 1)})}));
  // Stale 1-NS in aa.
  results.push_back(Result(
      "y.gov.aa", {"n1.y.gov.aa"}, {},
      {Host("n1.y.gov.aa", NsHostStatus::kNoResponse, true, false)}));
  // Partially defective in bb, pointing at an external dead host.
  results.push_back(
      Result("z.gov.bb", {"n1.z.gov.bb", "ns1.deadhost.com"},
             {"n1.z.gov.bb", "ns1.deadhost.com"},
             {Host("n1.z.gov.bb", NsHostStatus::kAuthoritative, true, true,
                   {geo::IPv4(10, 1, 0, 1)}),
              Host("ns1.deadhost.com", NsHostStatus::kUnresolvable, true,
                   true)}));
  // No parent records (removed) in bb.
  MeasurementResult removed;
  removed.domain = Name::FromString("w.gov.bb");
  removed.parent_located = true;
  removed.parent_responded = true;
  results.push_back(removed);

  return ActiveDataset::Build(std::move(results), std::move(seeds),
                              std::move(metas));
}

TEST(ActiveDatasetTest, BuildsCountryMapping) {
  auto dataset = SmallDataset();
  EXPECT_EQ(dataset.country[0], 0);
  EXPECT_EQ(dataset.country[2], 1);
}

// Regression: with duplicate seed rows for the same d_gov (equal label
// count), attribution used `>=` and silently let the *last* duplicate win.
// The tiebreak is first-seed-in-input-order, independent of list order.
TEST(ActiveDatasetTest, CountryTiebreakIsFirstSeedWins) {
  std::vector<CountryMeta> metas = {{"aa", "Aland", "Northern Europe", false},
                                    {"bb", "Borduria", "Eastern Europe", false}};
  std::vector<SeedDomain> seeds;
  seeds.push_back({0, Name::FromString("gov.aa"),
                   SeedVerification::kRegistryPolicy, false});
  seeds.push_back({1, Name::FromString("gov.aa"),
                   SeedVerification::kRegistryPolicy, false});

  std::vector<MeasurementResult> results;
  MeasurementResult r;
  r.domain = Name::FromString("x.gov.aa");
  results.push_back(r);

  auto dataset =
      ActiveDataset::Build(std::move(results), std::move(seeds), metas);
  EXPECT_EQ(dataset.country[0], 0);

  // Same duplicates, reversed: the first listed still wins.
  std::vector<SeedDomain> reversed;
  reversed.push_back({1, Name::FromString("gov.aa"),
                      SeedVerification::kRegistryPolicy, false});
  reversed.push_back({0, Name::FromString("gov.aa"),
                      SeedVerification::kRegistryPolicy, false});
  std::vector<MeasurementResult> results2;
  results2.push_back(r);
  auto dataset2 = ActiveDataset::Build(std::move(results2),
                                       std::move(reversed), metas);
  EXPECT_EQ(dataset2.country[0], 1);

  // The longest-match rule itself is untouched: a deeper seed still beats a
  // shallower one listed earlier.
  std::vector<SeedDomain> nested;
  nested.push_back({0, Name::FromString("aa"),
                    SeedVerification::kRegistryPolicy, false});
  nested.push_back({1, Name::FromString("gov.aa"),
                    SeedVerification::kRegistryPolicy, false});
  std::vector<MeasurementResult> results3;
  results3.push_back(r);
  auto dataset3 =
      ActiveDataset::Build(std::move(results3), std::move(nested), metas);
  EXPECT_EQ(dataset3.country[0], 1);
}

TEST(ActiveDatasetTest, Funnel) {
  auto dataset = SmallDataset();
  auto funnel = dataset.ComputeFunnel();
  EXPECT_EQ(funnel.queried, 4);
  EXPECT_EQ(funnel.parent_responded, 4);
  EXPECT_EQ(funnel.parent_has_records, 3);
  EXPECT_EQ(funnel.child_authoritative, 2);
}

TEST(AnalyzeReplicationTest, CountsAndCdf) {
  auto summary = AnalyzeReplication(SmallDataset());
  EXPECT_EQ(summary.domains_considered, 3);
  EXPECT_EQ(summary.d1ns_count, 1);
  EXPECT_DOUBLE_EQ(summary.d1ns_stale_pct, 1.0);
  EXPECT_NEAR(summary.pct_at_least_two, 2.0 / 3.0, 1e-9);
  ASSERT_FALSE(summary.ns_count_cdf.empty());
  EXPECT_DOUBLE_EQ(summary.ns_count_cdf.back().second, 1.0);
}

TEST(AnalyzeDelegationsTest, PerCountryRows) {
  auto summary = AnalyzeDelegations(SmallDataset());
  EXPECT_EQ(summary.domains_considered, 3);
  EXPECT_EQ(summary.partially_defective, 1);
  EXPECT_EQ(summary.fully_defective, 1);
  ASSERT_EQ(summary.by_country.size(), 2u);
}

TEST(AnalyzeDiversityTest, MultiCounting) {
  geo::AsnDatabase asn_db;
  asn_db.Add(geo::Cidr(geo::IPv4(10, 0, 0, 0), 24), 100, "a");
  asn_db.Add(geo::Cidr(geo::IPv4(10, 0, 1, 0), 24), 200, "b");
  asn_db.Add(geo::Cidr(geo::IPv4(10, 1, 0, 0), 24), 300, "c");
  auto rows = AnalyzeDiversity(SmallDataset(), asn_db, {"aa", "bb"});
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0].label, "Total");
  // Multi-NS domains with addresses: x.gov.aa (2 IPs, 2 /24s, 2 ASNs) and
  // z.gov.bb (1 IP).
  EXPECT_EQ(rows[0].domains, 2);
  EXPECT_DOUBLE_EQ(rows[0].pct_multi_ip, 0.5);
  EXPECT_DOUBLE_EQ(rows[0].pct_multi_24, 0.5);
  EXPECT_DOUBLE_EQ(rows[0].pct_multi_asn, 0.5);
  EXPECT_EQ(rows[1].label, "aa");
  EXPECT_DOUBLE_EQ(rows[1].pct_multi_ip, 1.0);
}

TEST(AnalyzeConsistencyTest, Percentages) {
  auto summary = AnalyzeConsistency(SmallDataset());
  EXPECT_EQ(summary.comparable, 2);
  EXPECT_DOUBLE_EQ(summary.pct_equal, 1.0);
}

class FakeRegistrar : public registrar::RegistrarClient {
 public:
  bool IsAvailable(const dns::Name& domain) const override {
    return domain == Name::FromString("deadhost.com");
  }
  std::optional<double> PriceUsd(const dns::Name& domain) const override {
    if (!IsAvailable(domain)) return std::nullopt;
    return 11.99;
  }
};

TEST(AnalyzeHijackRiskTest, FindsAvailableNsDomain) {
  registrar::PublicSuffixList psl;
  psl.AddSuffix(Name::FromString("com"));
  psl.AddSuffix(Name::FromString("aa"));
  psl.AddSuffix(Name::FromString("bb"));
  psl.AddSuffix(Name::FromString("gov.aa"));
  psl.AddSuffix(Name::FromString("gov.bb"));
  FakeRegistrar registrar;
  auto summary = AnalyzeHijackRisk(SmallDataset(), psl, registrar);
  EXPECT_EQ(summary.available_ns_domains, 1);
  EXPECT_EQ(summary.affected_domains, 1);
  EXPECT_EQ(summary.affected_countries, 1);
  ASSERT_EQ(summary.prices_usd.size(), 1u);
  EXPECT_DOUBLE_EQ(summary.prices_usd[0], 11.99);
  // Government-owned dead hosts (n1.y.gov.aa) were excluded.
  EXPECT_EQ(summary.candidate_ns_domains, 1);
}

}  // namespace
}  // namespace govdns::core
