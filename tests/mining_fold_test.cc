// Fold-equivalence oracle for the parallel miner (DESIGN.md §6j).
//
// The miner's contract is that the pre-pass/binary-search/renumber pipeline
// is a pure optimization: its MinedDataset must be byte-identical to what a
// serial, entry-major traversal with a single grow-as-you-go intern table
// produces. ReferenceMine below IS that traversal — a from-scratch
// reimplementation of the pre-pool algorithm (hash-map interning in
// first-appearance order, std::map-based mode computation), sharing no code
// with the production miner beyond the public types. Every production
// configuration — {1, 2, 4, 8} workers × {frozen, owning, mapped}
// substrates — is pinned against it, along with the renumber pass's
// first-seen id order and full-report byte identity across worker counts.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <map>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "ckpt/snapshot_file.h"
#include "core/export.h"
#include "core/mining.h"
#include "core/report.h"
#include "core/study.h"
#include "pdns/db.h"
#include "pdns/snapshot_io.h"
#include "util/civil_time.h"
#include "worldgen/adapter.h"

namespace govdns {
namespace {

namespace fs = std::filesystem;

constexpr uint64_t kFingerprint = 0x666f6c64746573ull;

// The pre-pool mining algorithm, reimplemented as plainly as possible: one
// serial pass over the seeds in order, interning NS hostnames into the
// global table at first use. Mode computation goes through std::maps — the
// shape the original code had before the flat-vector sweep — so the oracle
// does not share the production histogram path either. Supports the default
// statistic only (kMode), which is all these tests use.
core::MinedDataset ReferenceMine(const pdns::PdnsSnapshot& snapshot,
                                 const std::vector<core::SeedDomain>& seeds,
                                 const core::MiningConfig& config) {
  GOVDNS_CHECK(config.statistic == core::YearlyStatistic::kMode);
  core::MinedDataset out;
  out.config = config;
  out.stats.seeds = static_cast<int64_t>(seeds.size());
  const int years = config.year_count();

  std::vector<util::CivilDay> year_start(years), year_end(years);
  for (int y = 0; y < years; ++y) {
    year_start[y] = util::YearStart(config.first_year + y);
    year_end[y] = util::YearEnd(config.first_year + y);
  }

  std::unordered_map<std::string, int32_t> intern;
  auto intern_ns = [&](std::string_view ns) -> int32_t {
    auto [it, inserted] = intern.emplace(
        std::string(ns), static_cast<int32_t>(out.ns_names.size()));
    if (inserted) out.ns_names.emplace_back(ns);
    return it->second;
  };

  for (size_t s = 0; s < seeds.size(); ++s) {
    const auto [name_lo, name_hi] = snapshot.WildcardNameRange(seeds[s].d_gov);
    for (size_t n = name_lo; n < name_hi; ++n) {
      const auto entries = snapshot.entries(n);
      bool any_ns = false;
      for (const auto& entry : entries) {
        any_ns |= entry.type == dns::RRType::kNS;
      }
      if (!any_ns) continue;

      core::MinedDomain domain;
      domain.name = snapshot.name(n);
      domain.country = seeds[s].country;
      domain.seed_index = static_cast<int>(s);
      domain.disposable = core::PdnsMiner::LooksDisposable(domain.name);
      domain.years.resize(years);

      for (const auto& entry : entries) {
        if (entry.type != dns::RRType::kNS) continue;
        ++out.stats.entries_scanned;
        const bool stable =
            entry.seen.last - entry.seen.first >= config.stability_days;
        if (!stable) ++out.stats.entries_unstable;
        if (entry.seen.Overlaps(config.active_window) &&
            (stable || !config.require_stable_for_active)) {
          domain.in_active_window = true;
        }
        if (!stable) continue;
        for (int y = 0; y < years; ++y) {
          if (entry.seen.last < year_start[y] ||
              entry.seen.first > year_end[y]) {
            continue;
          }
          domain.years[y].ns_ids.push_back(intern_ns(entry.rdata));
        }
      }

      for (int y = 0; y < years; ++y) {
        if (domain.years[y].ns_ids.empty()) continue;
        std::map<util::CivilDay, int> delta;
        for (const auto& entry : entries) {
          if (entry.type != dns::RRType::kNS) continue;
          if (entry.seen.last - entry.seen.first < config.stability_days) {
            continue;
          }
          util::CivilDay from = std::max(entry.seen.first, year_start[y]);
          util::CivilDay to = std::min(entry.seen.last, year_end[y]);
          if (from > to) continue;
          delta[from] += 1;
          delta[to + 1] -= 1;
        }
        std::map<int, int64_t> days_at_count;
        int current = 0;
        util::CivilDay prev = year_start[y];
        for (const auto& [day, d] : delta) {
          if (current > 0) days_at_count[current] += day - prev;
          current += d;
          prev = day;
        }
        int mode = 0;
        int64_t best_days = 0;
        for (const auto& [count, day_total] : days_at_count) {
          if (day_total > best_days) {  // ties -> smaller (ascending walk)
            best_days = day_total;
            mode = count;
          }
        }
        domain.years[y].mode_ns_count = mode;
        auto& ids = domain.years[y].ns_ids;
        std::sort(ids.begin(), ids.end());
        ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
      }

      ++out.stats.domains;
      if (domain.disposable) ++out.stats.domains_disposable;
      if (domain.in_active_window) ++out.stats.domains_in_active_window;
      out.domains.push_back(std::move(domain));
    }
  }
  return out;
}

struct OracleFixture {
  std::unique_ptr<worldgen::World> world;
  worldgen::BoundStudy bound;
  pdns::PdnsSnapshot frozen;
  core::MinedDataset reference;

  static OracleFixture Make() {
    OracleFixture f;
    worldgen::WorldConfig config;
    config.scale = 0.02;
    f.world = worldgen::BuildWorld(config);
    f.bound = worldgen::MakeStudy(*f.world);
    f.bound.study->RunSelection();
    f.frozen = f.bound.study->inputs().pdns->Freeze();
    f.reference = ReferenceMine(f.frozen, f.bound.study->seeds(),
                                f.bound.study->inputs().mining);
    return f;
  }

  core::MinedDataset Mine(int workers) {
    core::MinerOptions options;
    options.workers = workers;
    core::PdnsMiner miner(f_db(), f_config(), options);
    return miner.Mine(bound.study->seeds());
  }

  const pdns::PdnsDatabase* f_db() { return bound.study->inputs().pdns; }
  const core::MiningConfig& f_config() {
    return bound.study->inputs().mining;
  }
};

TEST(MiningFoldTest, MatchesSerialReferenceAcrossWorkersAndSubstrates) {
  OracleFixture f = OracleFixture::Make();

  // The oracle must exercise real volume: many seeds, a real intern table.
  ASSERT_GT(f.bound.study->seeds().size(), 10u);
  ASSERT_GT(f.reference.domains.size(), 100u);
  ASSERT_GT(f.reference.ns_names.size(), 50u);

  // Round-trip the frozen snapshot through a file so the owning and mapped
  // substrates probe the exact production load paths.
  const std::string dir =
      (fs::temp_directory_path() / "govdns_mining_fold").string();
  fs::remove_all(dir);
  fs::create_directories(dir);
  const std::string path = dir + "/pdns.gvsn";
  ASSERT_TRUE(
      pdns::WritePdnsSnapshotFile(f.frozen, kFingerprint, dir, path).ok());
  auto owning = pdns::ReadPdnsSnapshotFileOwning(path, kFingerprint);
  auto mapped = pdns::MappedPdnsSnapshot::Open(
      path, kFingerprint, ckpt::SnapshotValidation::kFull);
  ASSERT_TRUE(owning.ok() && mapped.ok());

  const std::vector<core::SeedDomain>& seeds = f.bound.study->seeds();
  for (int workers : {1, 2, 4, 8}) {
    core::MinerOptions options;
    options.workers = workers;
    core::PdnsMiner db_miner(f.f_db(), f.f_config(), options);
    core::PdnsMiner snap_miner(f.f_config(), options);

    const core::MinedDataset via_db = db_miner.Mine(seeds);
    // Field-by-field first for readable failures...
    EXPECT_EQ(via_db.ns_names, f.reference.ns_names) << "w=" << workers;
    EXPECT_EQ(via_db.stats, f.reference.stats) << "w=" << workers;
    ASSERT_EQ(via_db.domains.size(), f.reference.domains.size());
    // ...then the whole dataset, and every pre-frozen substrate.
    EXPECT_TRUE(via_db == f.reference) << "db w=" << workers;
    EXPECT_TRUE(snap_miner.MineSnapshot(f.frozen, seeds) == f.reference)
        << "frozen w=" << workers;
    EXPECT_TRUE(snap_miner.MineSnapshot(*owning, seeds) == f.reference)
        << "owning w=" << workers;
    EXPECT_TRUE(snap_miner.MineSnapshot(*mapped, seeds) == f.reference)
        << "mapped w=" << workers;
  }
  fs::remove_all(dir);
}

TEST(MiningFoldTest, RenumberRestoresFirstSeenSeedOrderIds) {
  OracleFixture f = OracleFixture::Make();
  const core::MinedDataset mined = f.Mine(8);

  // The renumber pass's whole job: ns ids numbered by first appearance in
  // the serial entry-major traversal — the oracle's intern order.
  EXPECT_EQ(mined.ns_names, f.reference.ns_names);

  // Structural restatement, independent of the oracle: walking domains in
  // order, the first sighting of each id must arrive in ascending id order
  // with no gaps.
  int32_t next_unseen = 0;
  std::vector<bool> seen(mined.ns_names.size(), false);
  for (const core::MinedDomain& domain : mined.domains) {
    for (const core::YearState& year : domain.years) {
      for (int32_t id : year.ns_ids) {
        if (seen[static_cast<size_t>(id)]) continue;
        EXPECT_EQ(id, next_unseen) << "id assigned out of first-seen order";
        seen[static_cast<size_t>(id)] = true;
        ++next_unseen;
      }
    }
  }
  EXPECT_EQ(static_cast<size_t>(next_unseen), mined.ns_names.size());

  // Thread scheduling differs run to run; the bytes must not.
  EXPECT_TRUE(f.Mine(8) == mined);
}

TEST(MiningFoldTest, ReportJsonIsByteIdenticalAcrossMineWorkerCounts) {
  auto run = [](int mine_workers) {
    worldgen::WorldConfig config;
    config.scale = 0.02;
    auto world = worldgen::BuildWorld(config);
    auto bound = worldgen::MakeStudy(*world);
    bound.study->RunSelection();
    core::MinerOptions mopts;
    mopts.workers = mine_workers;
    bound.study->RunMining(mopts);
    core::MeasurerOptions aopts;
    aopts.workers = 1;
    bound.study->RunActiveMeasurement(aopts);
    return core::ExportReportJson(
        core::BuildReport(*bound.study, {"cn", "br"}));
  };
  // The report embeds the profiler's sub-phase rows (items, logical time),
  // so this also pins that every new fold sub-phase reports
  // schedule-independent items.
  EXPECT_EQ(run(1), run(8));
}

}  // namespace
}  // namespace govdns
