#include <gtest/gtest.h>

#include "dns/message.h"
#include "dns/wire.h"
#include "util/rng.h"

namespace govdns::dns {
namespace {

TEST(WireWriterTest, Primitives) {
  WireWriter w;
  w.WriteU8(0xAB);
  w.WriteU16(0x1234);
  w.WriteU32(0xDEADBEEF);
  ASSERT_EQ(w.size(), 7u);
  WireReader r(w.buffer());
  EXPECT_EQ(*r.ReadU8(), 0xAB);
  EXPECT_EQ(*r.ReadU16(), 0x1234);
  EXPECT_EQ(*r.ReadU32(), 0xDEADBEEFu);
  EXPECT_TRUE(r.AtEnd());
}

TEST(WireReaderTest, TruncationDetected) {
  std::vector<uint8_t> buf = {0x12};
  WireReader r(buf);
  EXPECT_FALSE(r.ReadU16().ok());
  EXPECT_FALSE(WireReader(buf).ReadU32().ok());
}

TEST(WireNameTest, UncompressedRoundTrip) {
  WireWriter w;
  Name name = Name::FromString("www.gov.au");
  w.WriteNameUncompressed(name);
  EXPECT_EQ(w.size(), name.WireLength());
  WireReader r(w.buffer());
  auto decoded = r.ReadName();
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, name);
}

TEST(WireNameTest, RootName) {
  WireWriter w;
  w.WriteName(Name::Root());
  ASSERT_EQ(w.size(), 1u);
  EXPECT_EQ(w.buffer()[0], 0);
  WireReader r(w.buffer());
  EXPECT_TRUE(r.ReadName()->IsRoot());
}

TEST(WireNameTest, CompressionEmitsPointer) {
  WireWriter w;
  Name a = Name::FromString("ns1.gov.cn");
  Name b = Name::FromString("ns2.gov.cn");
  w.WriteName(a);
  size_t first = w.size();
  w.WriteName(b);
  // Second name: "ns2" label (4 bytes) + 2-byte pointer to "gov.cn".
  EXPECT_EQ(w.size() - first, 4u + 2u);

  WireReader r(w.buffer());
  EXPECT_EQ(*r.ReadName(), a);
  EXPECT_EQ(*r.ReadName(), b);
}

TEST(WireNameTest, FullSuffixCompression) {
  WireWriter w;
  Name a = Name::FromString("gov.cn");
  w.WriteName(a);
  size_t first = w.size();
  w.WriteName(a);  // identical name: a bare pointer
  EXPECT_EQ(w.size() - first, 2u);
  WireReader r(w.buffer());
  EXPECT_EQ(*r.ReadName(), a);
  EXPECT_EQ(*r.ReadName(), a);
}

TEST(WireNameTest, PointerLoopRejected) {
  // A pointer that points at itself.
  std::vector<uint8_t> buf = {0xC0, 0x00};
  WireReader r(buf);
  EXPECT_FALSE(r.ReadName().ok());
}

TEST(WireNameTest, ForwardPointerRejected) {
  // Pointer to offset 4, beyond its own position.
  std::vector<uint8_t> buf = {0xC0, 0x04, 0, 0, 3, 'c', 'o', 'm', 0};
  WireReader r(buf);
  EXPECT_FALSE(r.ReadName().ok());
}

TEST(WireNameTest, ReservedLabelTypeRejected) {
  std::vector<uint8_t> buf = {0x80, 0x01};
  WireReader r(buf);
  EXPECT_FALSE(r.ReadName().ok());
}

TEST(WireRecordTest, ARecordRoundTrip) {
  ResourceRecord rr = MakeA(Name::FromString("www.gov.au"),
                            geo::IPv4(192, 0, 2, 1), 3600);
  WireWriter w;
  w.WriteRecord(rr);
  WireReader r(w.buffer());
  auto decoded = r.ReadRecord();
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, rr);
}

TEST(WireRecordTest, SoaRoundTrip) {
  ResourceRecord rr = MakeSoa(Name::FromString("gov.au"),
                              Name::FromString("ns1.gov.au"),
                              Name::FromString("hostmaster.gov.au"), 42);
  WireWriter w;
  w.WriteRecord(rr);
  WireReader r(w.buffer());
  auto decoded = r.ReadRecord();
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, rr);
}

TEST(WireRecordTest, TxtRoundTrip) {
  ResourceRecord rr = MakeTxt(Name::FromString("gov.au"), "v=spf1 -all");
  WireWriter w;
  w.WriteRecord(rr);
  WireReader r(w.buffer());
  auto decoded = r.ReadRecord();
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, rr);
}

TEST(WireRecordTest, RdlengthMismatchRejected) {
  // A record claiming 5 bytes of A rdata.
  WireWriter w;
  w.WriteName(Name::FromString("x.com"));
  w.WriteU16(1);   // type A
  w.WriteU16(1);   // class IN
  w.WriteU32(60);  // ttl
  w.WriteU16(5);   // WRONG rdlength
  w.WriteU32(0x01020304);
  w.WriteU8(0xFF);
  WireReader r(w.buffer());
  EXPECT_FALSE(r.ReadRecord().ok());
}

// ---------------------------------------------------------------------------
// Whole-message properties
// ---------------------------------------------------------------------------

Message RandomMessage(util::Rng& rng) {
  static const char* kHosts[] = {
      "www.gov.au",   "ns1.gov.cn",        "moe.gov.cn",
      "a.nic.com",    "tim.ns.cloudflare.com", "ns-3.awsdns-01.co.uk",
      "deep.sub.zone.gov.br",
  };
  auto random_name = [&] {
    return Name::FromString(kHosts[rng.UniformU64(std::size(kHosts))]);
  };
  Message m;
  m.header.id = static_cast<uint16_t>(rng.NextU64());
  m.header.qr = rng.Bernoulli(0.5);
  m.header.aa = rng.Bernoulli(0.5);
  m.header.rd = rng.Bernoulli(0.5);
  m.header.rcode = rng.Bernoulli(0.2) ? Rcode::kNxDomain : Rcode::kNoError;
  m.questions.push_back(
      {random_name(), rng.Bernoulli(0.5) ? RRType::kNS : RRType::kA,
       RRClass::kIN});
  auto random_rr = [&]() -> ResourceRecord {
    switch (rng.UniformU64(4)) {
      case 0:
        return MakeA(random_name(),
                     geo::IPv4(static_cast<uint32_t>(rng.NextU64())),
                     static_cast<uint32_t>(rng.UniformU64(86400)));
      case 1:
        return MakeNs(random_name(), random_name());
      case 2:
        return MakeCname(random_name(), random_name());
      default:
        return MakeSoa(random_name(), random_name(), random_name(),
                       static_cast<uint32_t>(rng.NextU64()));
    }
  };
  for (uint64_t i = rng.UniformU64(4); i > 0; --i) m.answers.push_back(random_rr());
  for (uint64_t i = rng.UniformU64(4); i > 0; --i) m.authority.push_back(random_rr());
  for (uint64_t i = rng.UniformU64(4); i > 0; --i) m.additional.push_back(random_rr());
  return m;
}

class MessageRoundTripProperty : public ::testing::TestWithParam<int> {};

TEST_P(MessageRoundTripProperty, EncodeDecodeIdentity) {
  util::Rng rng(GetParam() * 31337);
  for (int i = 0; i < 60; ++i) {
    Message m = RandomMessage(rng);
    auto wire = m.Encode();
    auto decoded = Message::Decode(wire);
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_EQ(*decoded, m);
  }
}

TEST_P(MessageRoundTripProperty, TruncatedPrefixesNeverCrash) {
  util::Rng rng(GetParam() * 7919);
  Message m = RandomMessage(rng);
  auto wire = m.Encode();
  // Every strict prefix must decode cleanly or fail cleanly — never crash.
  for (size_t len = 0; len < wire.size(); ++len) {
    auto decoded = Message::Decode(wire.data(), len);
    if (decoded.ok()) {
      // Only possible if trailing records were absent; counts must agree.
      auto reencoded = decoded->Encode();
      EXPECT_LE(reencoded.size(), wire.size());
    }
  }
}

TEST_P(MessageRoundTripProperty, BitFlipsNeverCrash) {
  util::Rng rng(GetParam() * 104729);
  Message m = RandomMessage(rng);
  auto wire = m.Encode();
  for (int i = 0; i < 200; ++i) {
    auto corrupted = wire;
    size_t pos = rng.UniformU64(corrupted.size());
    corrupted[pos] ^= static_cast<uint8_t>(1 + rng.UniformU64(255));
    auto decoded = Message::Decode(corrupted);  // must not crash or hang
    (void)decoded;
  }
  SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(Seeds, MessageRoundTripProperty,
                         ::testing::Range(1, 11));

}  // namespace
}  // namespace govdns::dns
