#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "core/export.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/profile.h"
#include "obs/trace.h"

namespace govdns::obs {
namespace {

// ---------------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------------

TEST(MetricsTest, DeclareIsIdempotent) {
  MetricsRegistry registry;
  int a = registry.DeclareCounter("x.count");
  int b = registry.DeclareCounter("x.count", Determinism::kDiagnostic);
  EXPECT_EQ(a, b);
  // The original determinism wins.
  registry.Add(a, 1);
  MetricsSnapshot stable = registry.Snapshot(/*include_diagnostic=*/false);
  ASSERT_EQ(stable.counters.size(), 1u);
  EXPECT_EQ(stable.counters[0].name, "x.count");
  EXPECT_EQ(stable.counters[0].value, 1u);
}

TEST(MetricsTest, ShardAbsorbSumsAndZeroes) {
  MetricsRegistry registry;
  int queries = registry.DeclareCounter("queries");
  int retries = registry.DeclareCounter("retries");
  auto s1 = registry.NewShard();
  auto s2 = registry.NewShard();
  s1->Add(queries, 3);
  s1->Add(retries, 1);
  s2->Add(queries, 4);
  registry.Absorb(*s1);
  registry.Absorb(*s2);
  // Absorbing again is a no-op: Absorb zeroed the shard cells.
  registry.Absorb(*s1);
  MetricsSnapshot snap = registry.Snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].name, "queries");
  EXPECT_EQ(snap.counters[0].value, 7u);
  EXPECT_EQ(snap.counters[1].value, 1u);
}

TEST(MetricsTest, AbsorbOrderDoesNotMatter) {
  auto run = [](bool reverse) {
    MetricsRegistry registry;
    int c = registry.DeclareCounter("c");
    int h = registry.DeclareHistogram("h");
    auto s1 = registry.NewShard();
    auto s2 = registry.NewShard();
    s1->Add(c, 10);
    s1->Observe(h, 5);
    s2->Add(c, 20);
    s2->Observe(h, 1000);
    if (reverse) {
      registry.Absorb(*s2);
      registry.Absorb(*s1);
    } else {
      registry.Absorb(*s1);
      registry.Absorb(*s2);
    }
    return core::ExportMetricsJson(registry.Snapshot());
  };
  EXPECT_EQ(run(false), run(true));
}

TEST(MetricsTest, AbsorbToleratesOlderShorterShards) {
  MetricsRegistry registry;
  int a = registry.DeclareCounter("a");
  auto old_shard = registry.NewShard();
  old_shard->Add(a, 5);
  // A later declaration widens the registry, not the existing shard.
  int b = registry.DeclareCounter("b");
  registry.Add(b, 7);
  registry.Absorb(*old_shard);
  MetricsSnapshot snap = registry.Snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].value, 5u);
  EXPECT_EQ(snap.counters[1].value, 7u);
}

TEST(MetricsTest, DiagnosticSeriesExcludedFromStableSnapshot) {
  MetricsRegistry registry;
  registry.Add(registry.DeclareCounter("stable.c"), 1);
  registry.Add(registry.DeclareCounter("diag.c", Determinism::kDiagnostic), 2);
  registry.Observe(registry.DeclareHistogram("diag.h", Determinism::kDiagnostic),
                   3);
  registry.SetGauge("diag.g", 4);  // gauges default to diagnostic
  registry.SetGauge("stable.g", 5, Determinism::kStable);

  MetricsSnapshot all = registry.Snapshot();
  EXPECT_EQ(all.counters.size(), 2u);
  EXPECT_EQ(all.gauges.size(), 2u);
  EXPECT_EQ(all.histograms.size(), 1u);

  MetricsSnapshot stable = registry.Snapshot(/*include_diagnostic=*/false);
  ASSERT_EQ(stable.counters.size(), 1u);
  EXPECT_EQ(stable.counters[0].name, "stable.c");
  ASSERT_EQ(stable.gauges.size(), 1u);
  EXPECT_EQ(stable.gauges[0].name, "stable.g");
  EXPECT_EQ(stable.gauges[0].value, 5);
  EXPECT_TRUE(stable.histograms.empty());
}

TEST(MetricsTest, SnapshotSortedByName) {
  MetricsRegistry registry;
  registry.Add(registry.DeclareCounter("zz"), 1);
  registry.Add(registry.DeclareCounter("aa"), 1);
  registry.Add(registry.DeclareCounter("mm"), 1);
  MetricsSnapshot snap = registry.Snapshot();
  ASSERT_EQ(snap.counters.size(), 3u);
  EXPECT_EQ(snap.counters[0].name, "aa");
  EXPECT_EQ(snap.counters[1].name, "mm");
  EXPECT_EQ(snap.counters[2].name, "zz");
}

TEST(HistogramTest, Log2Buckets) {
  HistogramData h;
  h.Observe(0);  // bucket 0
  h.Observe(1);  // bit_width 1
  h.Observe(2);  // bit_width 2
  h.Observe(3);  // bit_width 2
  h.Observe(1024);  // bit_width 11
  EXPECT_EQ(h.count, 5u);
  EXPECT_EQ(h.sum, 1030u);
  EXPECT_EQ(h.min, 0u);
  EXPECT_EQ(h.max, 1024u);
  EXPECT_EQ(h.buckets[0], 1u);
  EXPECT_EQ(h.buckets[1], 1u);
  EXPECT_EQ(h.buckets[2], 2u);
  EXPECT_EQ(h.buckets[11], 1u);
}

TEST(HistogramTest, HugeValuesClampIntoLastBucket) {
  HistogramData h;
  h.Observe(~uint64_t{0});
  EXPECT_EQ(h.buckets[HistogramData::kBuckets - 1], 1u);
  EXPECT_EQ(h.max, ~uint64_t{0});
}

TEST(HistogramTest, MergeIsElementwiseSum) {
  HistogramData a, b;
  a.Observe(4);
  a.Observe(7);
  b.Observe(1);
  b.Observe(100);
  HistogramData merged = a;
  merged.Merge(b);
  HistogramData expect;
  for (uint64_t v : {4, 7, 1, 100}) expect.Observe(v);
  EXPECT_EQ(merged, expect);
  // Merging an empty histogram preserves min/max.
  HistogramData empty;
  merged.Merge(empty);
  EXPECT_EQ(merged, expect);
}

// ---------------------------------------------------------------------------
// Tracing
// ---------------------------------------------------------------------------

TEST(DomainTraceTest, KeepFirstUnderCap) {
  DomainTrace trace("a.gov.xx", /*max_events=*/2);
  trace.Record(TraceEventKind::kQuery, 10, 0x01020304, 0);
  trace.Record(TraceEventKind::kBackoff, 20, 0, 1);
  trace.Record(TraceEventKind::kQuery, 30);
  ASSERT_EQ(trace.events().size(), 2u);
  EXPECT_EQ(trace.events()[0].kind, TraceEventKind::kQuery);
  EXPECT_EQ(trace.events()[0].server, 0x01020304u);
  EXPECT_EQ(trace.events()[1].at_ms, 20u);
  EXPECT_EQ(trace.dropped(), 1u);
}

TEST(TraceRingTest, SamplePeriodOneTracesEverything) {
  TraceRing ring;
  EXPECT_TRUE(ring.Sampled("anything.gov.xx"));
  EXPECT_TRUE(ring.Sampled(""));
}

TEST(TraceRingTest, SamplingIsDeterministicAndRoughlyProportional) {
  TraceConfig config;
  config.sample_period = 4;
  TraceRing ring(config);
  TraceRing ring2(config);
  int sampled = 0;
  for (int i = 0; i < 1000; ++i) {
    std::string name = "d" + std::to_string(i) + ".gov.xx";
    bool s = ring.Sampled(name);
    EXPECT_EQ(s, ring2.Sampled(name));  // no hidden state
    if (s) ++sampled;
  }
  EXPECT_GT(sampled, 150);
  EXPECT_LT(sampled, 400);
}

TEST(TraceRingTest, RingEvictsOldestFirst) {
  TraceConfig config;
  config.max_domains = 2;
  TraceRing ring(config);
  for (const char* name : {"a", "b", "c"}) {
    DomainTrace t(name, 8);
    t.Record(TraceEventKind::kQuery, 1);
    ring.Fold(std::move(t));
  }
  EXPECT_EQ(ring.folded_total(), 3u);
  auto entries = ring.Entries();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0]->domain(), "b");  // oldest retained first
  EXPECT_EQ(entries[1]->domain(), "c");
}

TEST(CutTraceLogTest, SnapshotSortsAndDeduplicates) {
  CutTraceLog log;
  // Racing publishers of the same cut carry identical content; the snapshot
  // collapses them.
  log.Record("zone.b", true, 2, 4);
  log.Record("zone.a", true, 1, 1);
  log.Record("zone.b", true, 2, 4);
  log.Record("zone.b", false, 2, 0);
  EXPECT_EQ(log.recorded(), 4u);
  auto snap = log.Snapshot();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap[0].zone, "zone.a");
  EXPECT_EQ(snap[1].zone, "zone.b");
  EXPECT_FALSE(snap[1].reachable);
  EXPECT_EQ(snap[2].zone, "zone.b");
  EXPECT_TRUE(snap[2].reachable);
}

TEST(CutTraceLogTest, ConcurrentRecordsAllLand) {
  CutTraceLog log;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&log, t] {
      for (int i = 0; i < 100; ++i) {
        log.Record("z" + std::to_string(i), true, uint32_t(t), 0);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(log.recorded(), 400u);
  EXPECT_EQ(log.Snapshot().size(), 400u);  // distinct ns_count per thread
}

TEST(TraceEventKindTest, AllKindsNamed) {
  for (int k = 0; k <= int(TraceEventKind::kOutcome); ++k) {
    EXPECT_STRNE(TraceEventKindName(TraceEventKind(k)), "unknown");
  }
}

// ---------------------------------------------------------------------------
// Profiling
// ---------------------------------------------------------------------------

TEST(PhaseProfilerTest, ScopeRecordsOnExit) {
  PhaseProfiler profiler;
  {
    PhaseProfiler::Scope scope(&profiler, "mining");
    scope.set_items(42);
    scope.set_logical_ms(1234);
    EXPECT_TRUE(profiler.records().empty());  // not recorded until exit
  }
  auto records = profiler.records();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].name, "mining");
  EXPECT_EQ(records[0].items, 42);
  EXPECT_EQ(records[0].logical_ms, 1234u);
  EXPECT_GE(records[0].wall_ms, 0.0);
}

TEST(PhaseProfilerTest, LastRecordFindsTheMostRecentByName) {
  PhaseProfiler profiler;
  EXPECT_FALSE(profiler.LastRecord("mining.fold").has_value());
  {
    PhaseProfiler::Scope s(&profiler, "mining.fold");
    s.set_items(1);
  }
  {
    PhaseProfiler::Scope s(&profiler, "mining.shard");
    s.set_items(5);
  }
  {
    PhaseProfiler::Scope s(&profiler, "mining.fold");
    s.set_items(2);
  }
  auto rec = profiler.LastRecord("mining.fold");
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->items, 2);  // the later of the two same-named rows
  EXPECT_EQ(profiler.LastRecord("mining.shard")->items, 5);
  EXPECT_FALSE(profiler.LastRecord("absent").has_value());
}

TEST(PhaseProfilerTest, PhasesKeptInOrder) {
  PhaseProfiler profiler;
  { PhaseProfiler::Scope s(&profiler, "selection"); }
  { PhaseProfiler::Scope s(&profiler, "mining"); }
  { PhaseProfiler::Scope s(&profiler, "measurement"); }
  auto records = profiler.records();
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0].name, "selection");
  EXPECT_EQ(records[2].name, "measurement");
}

// ---------------------------------------------------------------------------
// Export shapes
// ---------------------------------------------------------------------------

TEST(ObsExportTest, MetricsJsonShape) {
  MetricsRegistry registry;
  registry.Add(registry.DeclareCounter("queries"), 9);
  registry.Observe(registry.DeclareHistogram("latency"), 3);
  registry.SetGauge("cache.size", 12);
  std::string json = core::ExportMetricsJson(registry.Snapshot());
  EXPECT_NE(json.find("\"counters\":["), std::string::npos);
  EXPECT_NE(json.find("{\"name\":\"queries\",\"value\":9,"
                      "\"determinism\":\"stable\"}"),
            std::string::npos);
  EXPECT_NE(json.find("\"gauges\":["), std::string::npos);
  EXPECT_NE(json.find("\"determinism\":\"diagnostic\""), std::string::npos);
  // latency=3 -> bucket index 2; trailing zero buckets elided.
  EXPECT_NE(json.find("\"buckets\":[0,0,1]"), std::string::npos);
}

TEST(ObsExportTest, MetricsCsvShape) {
  MetricsRegistry registry;
  registry.Add(registry.DeclareCounter("queries"), 9);
  registry.Observe(registry.DeclareHistogram("latency"), 3);
  std::string csv = core::ExportMetricsCsv(registry.Snapshot());
  EXPECT_NE(csv.find("kind,name,determinism,count,sum,min,max\n"),
            std::string::npos);
  EXPECT_NE(csv.find("counter,queries,stable,9,,,\n"), std::string::npos);
  EXPECT_NE(csv.find("histogram,latency,stable,1,3,3,3\n"), std::string::npos);
}

TEST(ObsExportTest, TraceJsonShape) {
  TraceConfig config;
  config.sample_period = 2;
  TraceRing ring(config);
  DomainTrace t("a.gov.xx", 8);
  t.Record(TraceEventKind::kQuery, 10, 0x0a000001, 1);
  t.Record(TraceEventKind::kOutcome, 25);
  ring.Fold(std::move(t));
  CutTraceLog log;
  log.Record("gov.xx", true, 2, 2);
  std::string json = core::ExportTraceJson(ring, log);
  EXPECT_NE(json.find("\"sample_period\":2"), std::string::npos);
  EXPECT_NE(json.find("\"folded_domains\":1"), std::string::npos);
  EXPECT_NE(json.find("\"domain\":\"a.gov.xx\""), std::string::npos);
  EXPECT_NE(json.find("{\"kind\":\"query\",\"at_ms\":10,"
                      "\"server\":167772161,\"aux\":1}"),
            std::string::npos);
  EXPECT_NE(json.find("{\"kind\":\"outcome\",\"at_ms\":25}"),
            std::string::npos);
  EXPECT_NE(json.find("{\"zone\":\"gov.xx\",\"reachable\":true,"
                      "\"ns\":2,\"addrs\":2}"),
            std::string::npos);
}

}  // namespace
}  // namespace govdns::obs
