// The sharded PDNS miner must be a pure optimization: for a fixed world
// seed, the MinedDataset — domain rows, per-year NS id sets, the interned
// ns_names table (order included), and the mining stats — must be
// byte-identical whether one worker or many mined the seed list. The frozen
// snapshot path must also agree with the legacy map-backed search, and the
// active query list derived from the dataset must not move.
#include <gtest/gtest.h>

#include <vector>

#include "core/mining.h"
#include "core/study.h"
#include "worldgen/adapter.h"

namespace govdns {
namespace {

struct WorldFixture {
  std::unique_ptr<worldgen::World> world;
  worldgen::BoundStudy bound;

  static WorldFixture Make() {
    WorldFixture f;
    worldgen::WorldConfig config;
    config.scale = 0.02;
    f.world = worldgen::BuildWorld(config);
    f.bound = worldgen::MakeStudy(*f.world);
    f.bound.study->RunSelection();
    return f;
  }

  core::MinedDataset Mine(int workers) {
    core::MinerOptions options;
    options.workers = workers;
    core::PdnsMiner miner(bound.study->inputs().pdns,
                          bound.study->inputs().mining, options);
    return miner.Mine(bound.study->seeds());
  }
};

TEST(ParallelMineTest, WorkerCountsAreByteIdentical) {
  WorldFixture f = WorldFixture::Make();
  const core::MinedDataset serial = f.Mine(1);

  // The world must give the equivalence teeth: many seeds, many domains, a
  // real intern table, and both stable and unstable entries.
  EXPECT_GT(f.bound.study->seeds().size(), 10u);
  EXPECT_GT(serial.domains.size(), 100u);
  EXPECT_GT(serial.ns_names.size(), 50u);
  EXPECT_GT(serial.stats.entries_scanned, serial.stats.domains);

  for (int workers : {2, 7}) {
    const core::MinedDataset pooled = f.Mine(workers);
    // Field-by-field first for readable failures...
    EXPECT_EQ(pooled.ns_names, serial.ns_names) << "workers=" << workers;
    EXPECT_EQ(pooled.stats, serial.stats) << "workers=" << workers;
    ASSERT_EQ(pooled.domains.size(), serial.domains.size())
        << "workers=" << workers;
    // ...then the whole dataset, config included.
    EXPECT_TRUE(pooled == serial) << "workers=" << workers;
    EXPECT_EQ(core::PdnsMiner::ActiveQueryList(pooled),
              core::PdnsMiner::ActiveQueryList(serial))
        << "workers=" << workers;
  }
}

TEST(ParallelMineTest, DefaultWorkerCountMatchesSerial) {
  WorldFixture f = WorldFixture::Make();
  // workers = 0 (hardware concurrency) must behave like any explicit count.
  EXPECT_TRUE(f.Mine(0) == f.Mine(1));
}

TEST(ParallelMineTest, RepeatedParallelRunsAreDeterministic) {
  // Same seed list, same worker count, two runs: thread scheduling differs,
  // the bytes must not.
  WorldFixture f = WorldFixture::Make();
  EXPECT_TRUE(f.Mine(7) == f.Mine(7));
}

TEST(ParallelMineTest, StudyRunMiningUsesThePoolAndProfilesSubPhases) {
  worldgen::WorldConfig config;
  config.scale = 0.02;
  auto world = worldgen::BuildWorld(config);
  auto bound = worldgen::MakeStudy(*world);
  bound.study->RunSelection();
  core::MinerOptions options;
  options.workers = 3;
  const core::MinedDataset& mined = bound.study->RunMining(options);

  WorldFixture f = WorldFixture::Make();
  EXPECT_TRUE(mined == f.Mine(1));

  // The study's profiler carries the miner's sub-phases alongside "mining".
  bool saw_mining = false, saw_freeze = false, saw_shard = false,
       saw_fold = false, saw_intern = false, saw_merge = false,
       saw_renumber = false, saw_sort = false, saw_concat = false;
  for (const obs::PhaseRecord& r : bound.study->profiler().records()) {
    saw_mining |= r.name == "mining";
    saw_freeze |= r.name == "mining.freeze";
    saw_shard |= r.name == "mining.shard";
    saw_fold |= r.name == "mining.fold";
    saw_intern |= r.name == "mining.fold.intern";
    saw_merge |= r.name == "mining.fold.intern.merge";
    saw_renumber |= r.name == "mining.fold.renumber";
    saw_sort |= r.name == "mining.fold.sort";
    saw_concat |= r.name == "mining.fold.concat";
  }
  EXPECT_TRUE(saw_mining);
  EXPECT_TRUE(saw_freeze);
  EXPECT_TRUE(saw_shard);
  EXPECT_TRUE(saw_fold);
  EXPECT_TRUE(saw_intern);
  EXPECT_TRUE(saw_merge);
  EXPECT_TRUE(saw_renumber);
  EXPECT_TRUE(saw_sort);
  EXPECT_TRUE(saw_concat);
}

}  // namespace
}  // namespace govdns
