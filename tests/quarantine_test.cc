// Quarantine acceptance (DESIGN.md §6g): with one country's authoritative
// infrastructure fully blackholed, a budgeted study must (a) quarantine
// exactly that country's affected domains with the right reason codes while
// every other country's results stay byte-identical to a healthy run,
// (b) produce the same report for 1 and N workers, (c) survive a kill/resume
// cycle mid-degradation with a byte-identical report (the quarantine state
// rides its own journal frame), and (d) converge to the no-budget report as
// budgets grow. Study-level country/phase budgets must pre-quarantine
// deterministically at batch granularity.
#include <gtest/gtest.h>

#include <filesystem>
#include <set>
#include <string>
#include <vector>

#include "ckpt/fault.h"
#include "ckpt/journal.h"
#include "core/export.h"
#include "core/measure.h"
#include "core/report.h"
#include "core/study.h"
#include "core/study_ckpt.h"
#include "worldgen/adapter.h"
#include "worldgen/countries.h"

namespace govdns {
namespace {

namespace fs = std::filesystem;

// Big enough that the target country holds several active-query domains,
// small enough to keep the suite quick.
constexpr double kScale = 0.01;
constexpr size_t kBatch = 100;
constexpr uint64_t kWorldFp = 0xDE67ADEDF00Dull;
// The blackholed country: default reserved suffix (gov.eg), mid-size
// weight, no special fates — its degradation cannot hide behind a custom
// topology.
constexpr const char* kTarget = "eg";
// Generous against healthy domains (tens of ms to a few seconds of logical
// time each), tight against a blackholed parent chain (>= 3 attempts x
// 2000 ms per server before backoff).
constexpr uint64_t kDomainDeadlineMs = 8000;

std::string TempDir(const std::string& tag) {
  std::string dir =
      (fs::temp_directory_path() / ("govdns_quarantine_" + tag)).string();
  fs::remove_all(dir);
  return dir;
}

worldgen::WorldConfig HealthyWorld() {
  worldgen::WorldConfig config;
  config.scale = kScale;
  return config;
}

worldgen::WorldConfig BlackholedWorld() {
  worldgen::WorldConfig config = HealthyWorld();
  simnet::ChaosProfile blackhole;
  blackhole.p_blackhole = 1.0;
  config.country_chaos.push_back({kTarget, blackhole});
  return config;
}

core::MeasurerOptions DeadlineOptions(int workers) {
  core::MeasurerOptions options;
  options.workers = workers;
  options.max_logical_ms_per_domain = kDomainDeadlineMs;
  return options;
}

struct StudyRun {
  std::string json;
  core::QuarantineReport quarantine;
  std::vector<core::MeasurementResult> results;
  std::vector<int> country;  // per result: index into metas
  std::vector<core::CountryMeta> metas;
};

std::string ReportJsonOf(core::Study& study) {
  std::vector<std::string> top10;
  for (const char* code : worldgen::Top10CountryCodes()) {
    top10.emplace_back(code);
  }
  return core::ExportReportJson(core::BuildReport(study, top10));
}

StudyRun RunStudy(const worldgen::WorldConfig& config,
             const core::MeasurerOptions& options) {
  auto world = worldgen::BuildWorld(config);
  auto bound = worldgen::MakeStudy(*world);
  bound.study->RunSelection();
  bound.study->RunMining();
  bound.study->RunActiveMeasurement(options);
  StudyRun out;
  out.json = ReportJsonOf(*bound.study);
  out.quarantine = core::BuildQuarantineReport(bound.study->active());
  out.results = bound.study->active().results;
  out.country = bound.study->active().country;
  out.metas = bound.study->active().metas;
  return out;
}

int CountryIndex(const StudyRun& run, const std::string& code) {
  for (size_t i = 0; i < run.metas.size(); ++i) {
    if (run.metas[i].code == code) return static_cast<int>(i);
  }
  return -1;
}

// ---- (a) precision: only the blackholed country degrades -------------------

TEST(QuarantineTest, BlackholedCountryQuarantinedPreciselyWithReasons) {
  const StudyRun healthy = RunStudy(HealthyWorld(), DeadlineOptions(1));
  const StudyRun degraded = RunStudy(BlackholedWorld(), DeadlineOptions(1));
  ASSERT_EQ(healthy.results.size(), degraded.results.size());
  ASSERT_EQ(healthy.country, degraded.country);

  const int target = CountryIndex(degraded, kTarget);
  ASSERT_GE(target, 0);

  // The world must actually contain target-country domains to degrade, or
  // everything below is vacuous. The healthy run may quarantine a few
  // deadline-crossing domains of its own (dead-parent fates retry their way
  // past the budget) — degradation is measured against that baseline.
  int target_domains = 0;
  int target_quarantined = 0;
  int healthy_target_quarantined = 0;
  for (size_t i = 0; i < degraded.results.size(); ++i) {
    const core::MeasurementResult& d = degraded.results[i];
    if (degraded.country[i] == target) {
      ++target_domains;
      if (healthy.results[i].quarantine_reason !=
          core::QuarantineReason::kNone) {
        ++healthy_target_quarantined;
      }
      if (d.quarantine_reason != core::QuarantineReason::kNone) {
        ++target_quarantined;
        // A fully blackholed ADNS yields timeout-shaped degradation: the
        // deadline classifies it as hang or blackhole, never as a
        // study-level budget verdict.
        EXPECT_TRUE(d.quarantine_reason == core::QuarantineReason::kHang ||
                    d.quarantine_reason == core::QuarantineReason::kBlackhole)
            << d.domain.ToString() << " reason "
            << core::QuarantineReasonName(d.quarantine_reason);
        EXPECT_TRUE(d.degraded);
      }
    } else {
      // Everything outside the target country is byte-identical to the
      // healthy world — including logical timings and query stats.
      EXPECT_EQ(d, healthy.results[i]) << d.domain.ToString();
    }
  }
  ASSERT_GE(target_domains, 3) << "scale too small for a meaningful test";
  EXPECT_GT(target_quarantined, healthy_target_quarantined);

  // Report view: the target shows up in the by-country quarantine rows, and
  // every row that is not the target matches the healthy run's rows.
  std::set<std::string> degraded_codes;
  for (const auto& row : degraded.quarantine.by_country) {
    degraded_codes.insert(row.code);
  }
  EXPECT_TRUE(degraded_codes.count(kTarget) == 1);
  std::set<std::string> healthy_codes;
  for (const auto& row : healthy.quarantine.by_country) {
    healthy_codes.insert(row.code);
    EXPECT_TRUE(degraded_codes.count(row.code) == 1)
        << "healthy-run quarantine row vanished under degradation: "
        << row.code;
  }
  for (const auto& row : degraded.quarantine.by_country) {
    if (row.code == kTarget) {
      EXPECT_EQ(row.quarantined, target_quarantined);
      EXPECT_EQ(row.domains, target_domains);
    } else {
      // Any other quarantined country was already degraded in the healthy
      // world (same count), not collateral damage of the blackhole.
      EXPECT_TRUE(healthy_codes.count(row.code) == 1) << row.code;
    }
  }
  EXPECT_EQ(degraded.quarantine.quarantined,
            healthy.quarantine.quarantined - healthy_target_quarantined +
                target_quarantined);
  EXPECT_LT(degraded.quarantine.coverage, 1.0);
  EXPECT_EQ(degraded.quarantine.total_domains,
            static_cast<int64_t>(degraded.results.size()));
}

// ---- (b) worker-count invariance under degradation -------------------------

TEST(QuarantineTest, DegradedReportIsWorkerCountInvariant) {
  const StudyRun serial = RunStudy(BlackholedWorld(), DeadlineOptions(1));
  const StudyRun pooled = RunStudy(BlackholedWorld(), DeadlineOptions(4));
  EXPECT_EQ(serial.json, pooled.json);
  EXPECT_EQ(serial.quarantine, pooled.quarantine);
  EXPECT_GT(serial.quarantine.quarantined, 0);
}

// ---- (d) convergence: budgets off == budgets huge --------------------------

TEST(QuarantineTest, GrowingBudgetsConvergeToTheUnbudgetedReport) {
  core::MeasurerOptions huge = DeadlineOptions(1);
  huge.max_logical_ms_per_domain = 50'000'000;
  const StudyRun unbudgeted = RunStudy(BlackholedWorld(), core::MeasurerOptions{
                                      .workers = 1});
  const StudyRun budgeted = RunStudy(BlackholedWorld(), huge);
  EXPECT_EQ(unbudgeted.json, budgeted.json);
  // With room to finish, even blackholed domains complete their (failing)
  // measurements the slow way: nothing is quarantined on either side.
  EXPECT_EQ(unbudgeted.quarantine.quarantined, 0);
  EXPECT_EQ(budgeted.quarantine.quarantined, 0);
  EXPECT_EQ(budgeted.quarantine.coverage, 1.0);
}

// ---- study-level budgets: deterministic batch-granular pre-quarantine ------

TEST(QuarantineTest, PhaseDeadlinePreQuarantinesDeterministically) {
  core::MeasurerOptions options;
  options.workers = 1;
  options.phase_deadline_logical_ms = 30'000;
  options.budget_batch_size = 25;
  const StudyRun serial = RunStudy(HealthyWorld(), options);
  options.workers = 4;
  const StudyRun pooled = RunStudy(HealthyWorld(), options);

  EXPECT_EQ(serial.json, pooled.json);
  EXPECT_EQ(serial.quarantine, pooled.quarantine);
  // The phase deadline actually pre-empted later batches...
  EXPECT_GT(serial.quarantine.budget_exceeded, 0);
  EXPECT_LT(serial.quarantine.coverage, 1.0);
  // ...and a pre-quarantined placeholder carries no measurement payload.
  bool saw_placeholder = false;
  for (const core::MeasurementResult& r : serial.results) {
    if (r.quarantine_reason == core::QuarantineReason::kBudgetExceeded) {
      saw_placeholder = true;
      EXPECT_TRUE(r.degraded);
      EXPECT_EQ(r.query_stats.queries, 0u);
      EXPECT_FALSE(r.parent_located);
    }
  }
  EXPECT_TRUE(saw_placeholder);
}

TEST(QuarantineTest, CountryBudgetCutsOffOnlyOverBudgetCountries) {
  core::MeasurerOptions options;
  options.workers = 1;
  options.max_logical_ms_per_country = 2'000;
  options.budget_batch_size = 25;
  const StudyRun run = RunStudy(HealthyWorld(), options);
  EXPECT_GT(run.quarantine.budget_exceeded, 0);
  // Every pre-quarantined domain belongs to a country that had already
  // spent its budget in an earlier batch; a country small enough to finish
  // within budget has no quarantined domains at all.
  const StudyRun baseline = RunStudy(HealthyWorld(), core::MeasurerOptions{
                                    .workers = 1});
  ASSERT_EQ(baseline.results.size(), run.results.size());
  for (size_t i = 0; i < run.results.size(); ++i) {
    if (run.results[i].quarantine_reason == core::QuarantineReason::kNone) {
      EXPECT_EQ(run.results[i], baseline.results[i])
          << run.results[i].domain.ToString();
    } else {
      EXPECT_EQ(run.results[i].quarantine_reason,
                core::QuarantineReason::kBudgetExceeded);
    }
  }
}

// ---- (c) kill/resume mid-degradation ---------------------------------------

struct CkptRun {
  bool killed = false;
  std::string json;
  uint64_t commits = 0;
};

CkptRun RunCheckpointed(const std::string& dir, bool resume,
                        const ckpt::CkptFaultPlan* plan, int workers) {
  auto world = worldgen::BuildWorld(BlackholedWorld());
  auto bound = worldgen::MakeStudy(*world);
  core::StudyCheckpointOptions opts;
  opts.batch_size = kBatch;
  opts.resume = resume;
  core::StudyCheckpoint ckpt(dir, kWorldFp, opts);
  if (plan != nullptr) ckpt.set_fault_plan(*plan);
  bound.study->AttachCheckpoint(&ckpt);

  CkptRun out;
  try {
    bound.study->RunSelection();
    bound.study->RunMining();
    bound.study->RunActiveMeasurement(DeadlineOptions(workers));
    out.json = ReportJsonOf(*bound.study);
    ckpt.SaveReportJson(out.json);
  } catch (const ckpt::KillPointReached&) {
    out.killed = true;
  }
  out.commits = ckpt.journal_stats().commits;
  return out;
}

TEST(QuarantineTest, KillResumeMidDegradationPreservesTheReport) {
  // A degraded checkpointed run must (1) match the uncheckpointed degraded
  // run, and (2) resume byte-identically from a kill at any stage of the
  // degradation — including after the quarantine frame was journaled.
  const StudyRun plain = RunStudy(BlackholedWorld(), DeadlineOptions(1));
  const std::string base_dir = TempDir("base");
  CkptRun baseline =
      RunCheckpointed(base_dir, /*resume=*/false, nullptr, /*workers=*/1);
  ASSERT_FALSE(baseline.killed);
  EXPECT_EQ(baseline.json, plain.json);
  ASSERT_GE(baseline.commits, 5u);
  fs::remove_all(base_dir);

  // Sweep a few write points: early (selection/mining), mid-measurement
  // (inside the degraded batches), and the tail (quarantine + report
  // frames land last).
  const std::vector<uint64_t> kill_points = {
      2, baseline.commits / 2, baseline.commits - 1, baseline.commits};
  for (uint64_t k : kill_points) {
    const std::string dir = TempDir("kill_" + std::to_string(k));
    ckpt::CkptFaultPlan plan;
    plan.kill_at_write = k;
    plan.mode = ckpt::KillMode::kAfterCommit;
    plan.exit_process = false;
    CkptRun killed =
        RunCheckpointed(dir, /*resume=*/false, &plan, /*workers=*/1);
    ASSERT_TRUE(killed.killed) << "kill at write " << k << " never fired";
    CkptRun resumed =
        RunCheckpointed(dir, /*resume=*/true, nullptr, /*workers=*/1);
    ASSERT_FALSE(resumed.killed);
    EXPECT_EQ(resumed.json, baseline.json)
        << "degraded report diverged after kill at write " << k;
    fs::remove_all(dir);
  }

  // A full resume of a completed journal revalidates the stored quarantine
  // frame (TryLoadQuarantine + equality check) and reproduces the report.
  const std::string done_dir = TempDir("done");
  CkptRun first =
      RunCheckpointed(done_dir, /*resume=*/false, nullptr, /*workers=*/1);
  ASSERT_FALSE(first.killed);
  CkptRun second =
      RunCheckpointed(done_dir, /*resume=*/true, nullptr, /*workers=*/1);
  ASSERT_FALSE(second.killed);
  EXPECT_EQ(second.json, first.json);
  fs::remove_all(done_dir);
}

}  // namespace
}  // namespace govdns
