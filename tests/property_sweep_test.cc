// Randomized property sweeps: each suite generates structured-random
// inputs from a seeded RNG and checks the implementation against a
// brute-force oracle or an algebraic invariant. TEST_P instantiations give
// independent seeds, so a failure names the seed that reproduces it.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "pdns/db.h"
#include "registrar/suffix.h"
#include "util/rng.h"
#include "util/stats.h"
#include "zone/auth_server.h"
#include "zone/lint.h"
#include "zone/zone.h"
#include "zone/zonefile.h"

namespace govdns {
namespace {

using dns::Name;
using dns::RRType;

// ---------------------------------------------------------------------------
// Random zone construction shared by the suites.
// ---------------------------------------------------------------------------

struct RandomZone {
  std::shared_ptr<zone::Zone> zone;
  std::vector<dns::ResourceRecord> records;  // everything added
  std::set<Name> delegation_cuts;
};

RandomZone MakeRandomZone(util::Rng& rng) {
  static const char* kLabels[] = {"a", "b", "ns1", "ns2", "www", "mail",
                                  "moe", "portal", "x", "y"};
  RandomZone out;
  Name origin = Name::FromString("gov.zz");
  out.zone = std::make_shared<zone::Zone>(origin);
  auto add = [&](dns::ResourceRecord rr) {
    out.records.push_back(rr);
    out.zone->Add(std::move(rr));
  };
  add(dns::MakeSoa(origin, origin.Child("ns1"), origin.Child("hostmaster"),
                   static_cast<uint32_t>(rng.UniformU64(1000) + 1)));
  add(dns::MakeNs(origin, origin.Child("ns1")));
  add(dns::MakeNs(origin, origin.Child("ns2")));
  add(dns::MakeA(origin.Child("ns1"),
                 geo::IPv4(static_cast<uint32_t>(rng.NextU64()))));
  add(dns::MakeA(origin.Child("ns2"),
                 geo::IPv4(static_cast<uint32_t>(rng.NextU64()))));

  int extra = 4 + static_cast<int>(rng.UniformU64(12));
  for (int i = 0; i < extra; ++i) {
    Name owner = origin.Child(kLabels[rng.UniformU64(std::size(kLabels))]);
    if (rng.Bernoulli(0.4)) {
      owner = owner.Child(kLabels[rng.UniformU64(std::size(kLabels))]);
    }
    switch (rng.UniformU64(3)) {
      case 0:
        add(dns::MakeA(owner, geo::IPv4(static_cast<uint32_t>(rng.NextU64()))));
        break;
      case 1:
        add(dns::MakeTxt(owner, "t" + std::to_string(rng.UniformU64(99))));
        break;
      default: {
        // A delegation cut (only if strictly below the origin and no data
        // name is its ancestor/descendant conflictingly — Zone allows it).
        if (owner.IsProperSubdomainOf(origin)) {
          add(dns::MakeNs(owner, owner.Child("ns1")));
          add(dns::MakeA(owner.Child("ns1"),
                         geo::IPv4(static_cast<uint32_t>(rng.NextU64()))));
          out.delegation_cuts.insert(owner);
        }
        break;
      }
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Zone lookup vs brute force
// ---------------------------------------------------------------------------

class ZoneOracleProperty : public ::testing::TestWithParam<int> {};

TEST_P(ZoneOracleProperty, FindMatchesBruteForce) {
  util::Rng rng(GetParam() * 7717);
  for (int round = 0; round < 20; ++round) {
    RandomZone rz = MakeRandomZone(rng);
    // Query every (name, type) combination seen plus some misses.
    std::set<Name> names;
    for (const auto& rr : rz.records) names.insert(rr.name);
    names.insert(Name::FromString("missing.gov.zz"));
    for (const Name& name : names) {
      for (RRType type : {RRType::kA, RRType::kNS, RRType::kTXT,
                          RRType::kSOA}) {
        auto got = rz.zone->Find(name, type);
        std::vector<dns::ResourceRecord> expected;
        for (const auto& rr : rz.records) {
          if (rr.name == name && rr.type() == type) expected.push_back(rr);
        }
        EXPECT_EQ(got.size(), expected.size())
            << name.ToString() << " " << dns::RRTypeName(type);
      }
    }
    // record_count equals the number of added records.
    EXPECT_EQ(rz.zone->record_count(), rz.records.size());
  }
}

TEST_P(ZoneOracleProperty, DelegationDetectionMatchesCutSet) {
  util::Rng rng(GetParam() * 1337 + 3);
  for (int round = 0; round < 20; ++round) {
    RandomZone rz = MakeRandomZone(rng);
    std::set<Name> names;
    for (const auto& rr : rz.records) names.insert(rr.name);
    for (const Name& name : names) {
      auto cut = rz.zone->FindDelegation(name);
      // Oracle: the topmost cut that is an ancestor-or-self of the name.
      const Name* expected = nullptr;
      for (const Name& candidate : rz.delegation_cuts) {
        if (name.IsSubdomainOf(candidate) &&
            (expected == nullptr ||
             candidate.LabelCount() < expected->LabelCount())) {
          expected = &candidate;
        }
      }
      if (expected == nullptr) {
        EXPECT_FALSE(cut.has_value()) << name.ToString();
      } else {
        ASSERT_TRUE(cut.has_value()) << name.ToString();
        EXPECT_EQ(*cut, *expected) << name.ToString();
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ZoneOracleProperty, ::testing::Range(1, 7));

// ---------------------------------------------------------------------------
// AuthServer responses are always well-formed and consistent with the zone
// ---------------------------------------------------------------------------

class AuthServerProperty : public ::testing::TestWithParam<int> {};

TEST_P(AuthServerProperty, ResponsesAreConsistentWithZoneData) {
  util::Rng rng(GetParam() * 90001);
  for (int round = 0; round < 15; ++round) {
    RandomZone rz = MakeRandomZone(rng);
    zone::AuthServer server("prop.test");
    server.AddZone(rz.zone);

    std::set<Name> names;
    for (const auto& rr : rz.records) names.insert(rr.name);
    names.insert(Name::FromString("nope.gov.zz"));
    names.insert(Name::FromString("deep.under.nope.gov.zz"));

    for (const Name& name : names) {
      auto query = dns::MakeQuery(1, name, RRType::kA);
      auto reply = server.Answer(query);
      // Wire round trip of every reply.
      auto decoded = dns::Message::Decode(reply.Encode());
      ASSERT_TRUE(decoded.ok());
      EXPECT_EQ(*decoded, reply);

      auto cut = rz.zone->FindDelegation(name);
      if (cut.has_value()) {
        // At or below a cut: must be a referral to that cut, never AA.
        EXPECT_FALSE(reply.header.aa) << name.ToString();
        ASSERT_TRUE(reply.IsReferral()) << name.ToString();
        for (const auto& rr : reply.authority) {
          EXPECT_EQ(rr.name, *cut);
        }
      } else {
        EXPECT_TRUE(reply.header.aa) << name.ToString();
        if (reply.header.rcode == dns::Rcode::kNxDomain) {
          EXPECT_FALSE(rz.zone->NameExists(name)) << name.ToString();
        }
        for (const auto& rr : reply.answers) {
          EXPECT_EQ(rr.name, name);
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AuthServerProperty, ::testing::Range(1, 7));

// ---------------------------------------------------------------------------
// Zone file round trip on random zones
// ---------------------------------------------------------------------------

class ZoneFileProperty : public ::testing::TestWithParam<int> {};

TEST_P(ZoneFileProperty, SerializeParseRoundTrip) {
  util::Rng rng(GetParam() * 5557);
  for (int round = 0; round < 10; ++round) {
    RandomZone rz = MakeRandomZone(rng);
    std::string text = zone::WriteZoneFile(*rz.zone);
    auto reparsed = zone::ParseZoneFile(text, rz.zone->origin());
    ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString() << "\n" << text;
    EXPECT_EQ(reparsed->record_count(), rz.zone->record_count()) << text;
    // Every original record set survives with identical contents.
    std::set<Name> names;
    for (const auto& rr : rz.records) names.insert(rr.name);
    for (const Name& name : names) {
      for (RRType type :
           {RRType::kA, RRType::kNS, RRType::kTXT, RRType::kSOA}) {
        auto a = rz.zone->Find(name, type);
        auto b = reparsed->Find(name, type);
        ASSERT_EQ(a.size(), b.size()) << name.ToString();
        std::sort(a.begin(), a.end(), [](const auto& x, const auto& y) {
          return dns::RdataToString(x.rdata) < dns::RdataToString(y.rdata);
        });
        std::sort(b.begin(), b.end(), [](const auto& x, const auto& y) {
          return dns::RdataToString(x.rdata) < dns::RdataToString(y.rdata);
        });
        EXPECT_EQ(a, b) << name.ToString();
      }
    }
  }
}

TEST_P(ZoneFileProperty, LintIsStableAcrossRoundTrip) {
  // Linting a zone and linting its serialized-reparsed twin must agree on
  // the rule multiset (findings are structural, not textual).
  util::Rng rng(GetParam() * 7103);
  for (int round = 0; round < 10; ++round) {
    RandomZone rz = MakeRandomZone(rng);
    auto reparsed = zone::ParseZoneFile(zone::WriteZoneFile(*rz.zone),
                                        rz.zone->origin());
    ASSERT_TRUE(reparsed.ok());
    auto rules_of = [](const std::vector<zone::LintFinding>& findings) {
      std::multiset<zone::LintRule> rules;
      for (const auto& f : findings) rules.insert(f.rule);
      return rules;
    };
    EXPECT_EQ(rules_of(zone::LintZone(*rz.zone)),
              rules_of(zone::LintZone(*reparsed)));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ZoneFileProperty, ::testing::Range(1, 7));

// ---------------------------------------------------------------------------
// PDNS wildcard search vs brute force
// ---------------------------------------------------------------------------

class PdnsOracleProperty : public ::testing::TestWithParam<int> {};

TEST_P(PdnsOracleProperty, WildcardSearchMatchesBruteForce) {
  util::Rng rng(GetParam() * 31321);
  static const char* kSuffixes[] = {"gov.aa", "gov.ab", "go.aa", "gov.aab"};
  static const char* kHosts[] = {"x", "y", "z"};

  pdns::PdnsDatabase db(/*merge_gap_days=*/5);
  struct Observation {
    Name name;
    std::string rdata;
    util::DayInterval seen;
  };
  std::vector<Observation> observations;
  for (int i = 0; i < 300; ++i) {
    Name name = Name::FromString(kSuffixes[rng.UniformU64(4)]);
    int depth = static_cast<int>(rng.UniformU64(3));
    for (int d = 0; d < depth; ++d) {
      name = name.Child(kHosts[rng.UniformU64(3)]);
    }
    std::string rdata = "ns" + std::to_string(rng.UniformU64(3)) + ".h.cc";
    util::CivilDay start = static_cast<util::CivilDay>(rng.UniformU64(1000));
    util::CivilDay len = static_cast<util::CivilDay>(rng.UniformU64(40));
    db.ObserveInterval(name, RRType::kNS, rdata, {start, start + len});
    observations.push_back({name, rdata, {start, start + len}});
  }

  for (const char* suffix_text : kSuffixes) {
    Name suffix = Name::FromString(suffix_text);
    pdns::Query query;
    query.window = util::DayInterval{200, 600};
    auto hits = db.WildcardSearch(suffix, query);
    // Oracle: brute-force day coverage per (name, rdata) key.
    std::set<std::pair<std::string, std::string>> expected_keys;
    for (const auto& ob : observations) {
      if (!ob.name.IsSubdomainOf(suffix)) continue;
      if (!ob.seen.Overlaps(*query.window)) continue;
      expected_keys.insert({ob.name.ToString(), ob.rdata});
    }
    std::set<std::pair<std::string, std::string>> got_keys;
    for (const auto& entry : hits) {
      EXPECT_TRUE(entry.rrname.IsSubdomainOf(suffix));
      EXPECT_TRUE(entry.seen.Overlaps(*query.window));
      got_keys.insert({entry.rrname.ToString(), entry.rdata});
    }
    // Every expected key surfaces (merged entries may widen intervals, so
    // extra keys cannot appear: a merged interval is a union of observed
    // ones... which may bridge the window — hence superset check).
    for (const auto& key : expected_keys) {
      EXPECT_TRUE(got_keys.contains(key)) << key.first << " " << key.second;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PdnsOracleProperty, ::testing::Range(1, 7));

// ---------------------------------------------------------------------------
// Public-suffix list vs brute force
// ---------------------------------------------------------------------------

class PslOracleProperty : public ::testing::TestWithParam<int> {};

TEST_P(PslOracleProperty, RegisteredDomainMatchesBruteForce) {
  util::Rng rng(GetParam() * 41999);
  registrar::PublicSuffixList psl;
  std::vector<Name> suffixes = {
      Name::FromString("aa"),        Name::FromString("bb"),
      Name::FromString("co.aa"),     Name::FromString("gov.aa"),
      Name::FromString("gov.bb"),    Name::FromString("x.gov.bb"),
  };
  for (const auto& s : suffixes) psl.AddSuffix(s);

  static const char* kLabels[] = {"a", "b", "co", "gov", "x", "www"};
  for (int i = 0; i < 400; ++i) {
    // Random name over the same label alphabet, 1-5 labels, ending aa/bb.
    std::vector<std::string> labels;
    int n = 1 + static_cast<int>(rng.UniformU64(4));
    for (int j = 0; j < n; ++j) {
      labels.push_back(kLabels[rng.UniformU64(std::size(kLabels))]);
    }
    labels.push_back(rng.Bernoulli(0.5) ? "aa" : "bb");
    Name name = *Name::FromLabels(labels);

    // Oracle: longest suffix in the list, then +1 label.
    const Name* best = nullptr;
    for (const auto& s : suffixes) {
      if (name.IsSubdomainOf(s) &&
          (best == nullptr || s.LabelCount() > best->LabelCount())) {
        best = &s;
      }
    }
    auto got = psl.RegisteredDomain(name);
    if (best == nullptr || best->LabelCount() == name.LabelCount()) {
      EXPECT_FALSE(got.has_value()) << name.ToString();
    } else {
      ASSERT_TRUE(got.has_value()) << name.ToString();
      EXPECT_EQ(*got, name.Suffix(best->LabelCount() + 1)) << name.ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PslOracleProperty, ::testing::Range(1, 7));

// ---------------------------------------------------------------------------
// Statistics invariants
// ---------------------------------------------------------------------------

class StatsProperty : public ::testing::TestWithParam<int> {};

TEST_P(StatsProperty, ModeIsAnElementWithMaximalCount) {
  util::Rng rng(GetParam() * 65537);
  for (int round = 0; round < 50; ++round) {
    std::vector<int> values;
    int n = 1 + static_cast<int>(rng.UniformU64(40));
    for (int i = 0; i < n; ++i) {
      values.push_back(static_cast<int>(rng.UniformU64(6)));
    }
    int mode = util::ModeOf(values);
    std::map<int, int> counts;
    for (int v : values) ++counts[v];
    int max_count = 0;
    for (const auto& [v, c] : counts) max_count = std::max(max_count, c);
    EXPECT_EQ(counts[mode], max_count);
    // Tie-break: no smaller value has the same count.
    for (const auto& [v, c] : counts) {
      if (c == max_count) {
        EXPECT_GE(v, mode);
        break;  // map order: the first maximal is the smallest
      }
    }
  }
}

TEST_P(StatsProperty, PercentileIsMonotoneAndBounded) {
  util::Rng rng(GetParam() * 271);
  for (int round = 0; round < 20; ++round) {
    std::vector<double> values;
    int n = 1 + static_cast<int>(rng.UniformU64(60));
    for (int i = 0; i < n; ++i) values.push_back(rng.UniformDouble() * 100);
    double lo = *std::min_element(values.begin(), values.end());
    double hi = *std::max_element(values.begin(), values.end());
    double prev = lo;
    for (double p = 0.0; p <= 1.0001; p += 0.1) {
      double q = util::Percentile(values, std::min(p, 1.0));
      EXPECT_GE(q, lo - 1e-9);
      EXPECT_LE(q, hi + 1e-9);
      EXPECT_GE(q, prev - 1e-9);  // monotone in p
      prev = q;
    }
  }
}

TEST_P(StatsProperty, EmpiricalCdfIsAProperCdf) {
  util::Rng rng(GetParam() * 9001);
  std::vector<double> values;
  int n = 1 + static_cast<int>(rng.UniformU64(100));
  for (int i = 0; i < n; ++i) {
    values.push_back(double(rng.UniformU64(20)));
  }
  auto cdf = util::EmpiricalCdf(values);
  double prev_value = -1, prev_frac = 0;
  for (const auto& point : cdf) {
    EXPECT_GT(point.value, prev_value);
    EXPECT_GT(point.cumulative_fraction, prev_frac);
    prev_value = point.value;
    prev_frac = point.cumulative_fraction;
  }
  EXPECT_DOUBLE_EQ(cdf.back().cumulative_fraction, 1.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, StatsProperty, ::testing::Range(1, 9));

}  // namespace
}  // namespace govdns
