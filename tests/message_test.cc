#include <gtest/gtest.h>

#include "dns/message.h"

namespace govdns::dns {
namespace {

TEST(MessageTest, MakeQuerySetsQuestion) {
  Message q = MakeQuery(7, Name::FromString("moe.gov.cn"), RRType::kNS);
  EXPECT_EQ(q.header.id, 7);
  EXPECT_FALSE(q.header.qr);
  EXPECT_FALSE(q.header.rd);  // iterative client
  ASSERT_EQ(q.questions.size(), 1u);
  EXPECT_EQ(q.questions[0].name.ToString(), "moe.gov.cn");
  EXPECT_EQ(q.questions[0].type, RRType::kNS);
}

TEST(MessageTest, MakeResponseEchoesIdAndQuestion) {
  Message q = MakeQuery(99, Name::FromString("x.gov.br"), RRType::kA);
  Message r = MakeResponse(q, Rcode::kNxDomain);
  EXPECT_TRUE(r.header.qr);
  EXPECT_EQ(r.header.id, 99);
  EXPECT_EQ(r.header.rcode, Rcode::kNxDomain);
  EXPECT_EQ(r.questions, q.questions);
}

TEST(MessageTest, IsReferralRequiresNsAuthorityWithoutAnswers) {
  Message q = MakeQuery(1, Name::FromString("moe.gov.cn"), RRType::kNS);
  Message r = MakeResponse(q, Rcode::kNoError);
  EXPECT_FALSE(r.IsReferral());  // no authority records

  r.authority.push_back(
      MakeNs(Name::FromString("moe.gov.cn"), Name::FromString("ns1.moe.gov.cn")));
  EXPECT_TRUE(r.IsReferral());

  Message with_answer = r;
  with_answer.answers.push_back(
      MakeNs(Name::FromString("moe.gov.cn"), Name::FromString("ns1.moe.gov.cn")));
  EXPECT_FALSE(with_answer.IsReferral());

  Message authoritative = r;
  authoritative.header.aa = true;
  EXPECT_FALSE(authoritative.IsReferral());

  Message error = r;
  error.header.rcode = Rcode::kServFail;
  EXPECT_FALSE(error.IsReferral());

  Message not_response = r;
  not_response.header.qr = false;
  EXPECT_FALSE(not_response.IsReferral());
}

TEST(MessageTest, HeaderFlagsSurviveWire) {
  Message m = MakeQuery(0x1234, Name::FromString("a.b"), RRType::kSOA);
  m.header.qr = true;
  m.header.aa = true;
  m.header.tc = true;
  m.header.ra = true;
  m.header.rcode = Rcode::kRefused;
  auto decoded = Message::Decode(m.Encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->header, m.header);
}

TEST(MessageTest, RcodeNames) {
  EXPECT_EQ(RcodeName(Rcode::kNoError), "NOERROR");
  EXPECT_EQ(RcodeName(Rcode::kNxDomain), "NXDOMAIN");
  EXPECT_EQ(RcodeName(Rcode::kRefused), "REFUSED");
  EXPECT_EQ(RcodeName(Rcode::kServFail), "SERVFAIL");
}

TEST(MessageTest, ToStringMentionsSections) {
  Message q = MakeQuery(5, Name::FromString("x.gov.in"), RRType::kNS);
  Message r = MakeResponse(q, Rcode::kNoError);
  r.answers.push_back(
      MakeNs(Name::FromString("x.gov.in"), Name::FromString("ns1.x.gov.in")));
  std::string text = r.ToString();
  EXPECT_NE(text.find("question: x.gov.in NS"), std::string::npos);
  EXPECT_NE(text.find("answer:"), std::string::npos);
}

TEST(RdataTest, TypeNamesAndAccessors) {
  EXPECT_EQ(RRTypeName(RRType::kNS), "NS");
  EXPECT_EQ(RRTypeName(RRType::kAAAA), "AAAA");
  ASSERT_TRUE(RRTypeFromName("SOA").ok());
  EXPECT_EQ(*RRTypeFromName("SOA"), RRType::kSOA);
  EXPECT_FALSE(RRTypeFromName("BOGUS").ok());

  ResourceRecord a = MakeA(Name::FromString("x.y"), geo::IPv4(10, 0, 0, 1));
  EXPECT_EQ(a.type(), RRType::kA);
  EXPECT_EQ(RdataToString(a.rdata), "10.0.0.1");
  EXPECT_NE(a.ToString().find("x.y"), std::string::npos);

  ResourceRecord ns = MakeNs(Name::FromString("x.y"), Name::FromString("n.s"));
  EXPECT_EQ(RdataToString(ns.rdata), "n.s");
}

}  // namespace
}  // namespace govdns::dns
