#include <gtest/gtest.h>

#include "core/providers.h"

namespace govdns::core {
namespace {

using dns::Name;

TEST(ProviderMatcherTest, SuffixRules) {
  ProviderMatcher matcher(DefaultProviderRules());
  int m = matcher.MatchNs("tim.ns.cloudflare.com");
  ASSERT_GE(m, 0);
  EXPECT_EQ(matcher.rules()[m].group_key, "cloudflare.com");

  m = matcher.MatchNs("ns37.domaincontrol.com");
  ASSERT_GE(m, 0);
  EXPECT_EQ(matcher.rules()[m].group_key, "domaincontrol.com");

  EXPECT_LT(matcher.MatchNs("ns1.example.org"), 0);
  // Suffix matching must not fire on lookalike names.
  EXPECT_LT(matcher.MatchNs("ns1.notcloudflare.com"), 0);
}

TEST(ProviderMatcherTest, AwsSubstringRule) {
  ProviderMatcher matcher(DefaultProviderRules());
  for (const char* host : {"ns-923.awsdns-51.co.uk", "ns-0.awsdns-00.com",
                           "ns-1536.awsdns-00.org"}) {
    int m = matcher.MatchNs(host);
    ASSERT_GE(m, 0) << host;
    EXPECT_EQ(matcher.rules()[m].group_key, "AWS DNS");
  }
}

TEST(ProviderMatcherTest, AzureAndGroupedFamilies) {
  ProviderMatcher matcher(DefaultProviderRules());
  int m = matcher.MatchNs("ns1-07.azure-dns.com");
  ASSERT_GE(m, 0);
  EXPECT_EQ(matcher.rules()[m].group_key, "Azure DNS");

  // Hostgator's US and Brazilian families share one group.
  int us = matcher.MatchNs("ns1.hostgator.com");
  int br = matcher.MatchNs("ns5.hostgator.com.br");
  ASSERT_GE(us, 0);
  ASSERT_GE(br, 0);
  EXPECT_EQ(us, br);
}

TEST(ProviderMatcherTest, CaseInsensitive) {
  ProviderMatcher matcher(DefaultProviderRules());
  EXPECT_GE(matcher.MatchNs("TIM.NS.CLOUDFLARE.COM"), 0);
  EXPECT_GE(matcher.MatchNs("NS-1.AWSDNS-09.NET"), 0);
}

TEST(ProviderMatcherTest, SoaMatching) {
  ProviderMatcher matcher(DefaultProviderRules());
  dns::SoaRdata soa;
  soa.mname = Name::FromString("ns1.vanity.gov.xx");
  soa.rname = Name::FromString("hostmaster.dnsmadeeasy.com");
  int m = matcher.MatchSoa(soa);
  ASSERT_GE(m, 0);
  EXPECT_EQ(matcher.rules()[m].group_key, "dnsmadeeasy.com");

  soa.rname = Name::FromString("hostmaster.vanity.gov.xx");
  soa.mname = Name::FromString("amber.ns.cloudflare.com");
  m = matcher.MatchSoa(soa);
  ASSERT_GE(m, 0);
  EXPECT_EQ(matcher.rules()[m].group_key, "cloudflare.com");
}

// ---------------------------------------------------------------------------
// Analyzer
// ---------------------------------------------------------------------------

MinedDataset TinyDataset() {
  MinedDataset dataset;
  dataset.config.first_year = 2019;
  dataset.config.last_year = 2020;
  dataset.ns_names = {"amber.ns.cloudflare.com", "tim.ns.cloudflare.com",
                      "ns-1.awsdns-00.com", "ns1.own.gov.aa"};
  auto add = [&](const char* name, int country, std::vector<int32_t> ns2020) {
    MinedDomain d;
    d.name = Name::FromString(name);
    d.country = country;
    d.years.resize(2);
    d.years[1].mode_ns_count = static_cast<int>(ns2020.size());
    d.years[1].ns_ids = std::move(ns2020);
    dataset.domains.push_back(std::move(d));
  };
  add("a.gov.aa", 0, {0, 1});     // pure cloudflare -> d_1P
  add("b.gov.aa", 0, {0, 3});     // cloudflare + own -> not d_1P
  add("c.gov.bb", 1, {2});        // AWS
  add("d.gov.bb", 1, {3});        // own only -> unmatched
  return dataset;
}

std::vector<CountryMeta> TwoCountries() {
  return {{"aa", "Aland", "Northern Europe", false},
          {"bb", "Borduria", "Eastern Europe", true}};
}

TEST(ProviderAnalyzerTest, CountsDomainsD1pGroupsCountries) {
  ProviderMatcher matcher(DefaultProviderRules());
  ProviderAnalyzer analyzer(&matcher, TwoCountries());
  auto table = analyzer.Analyze(TinyDataset(), 2020);
  EXPECT_EQ(table.total_domains, 4);
  EXPECT_EQ(table.total_groups, 2);  // one sub-region + one top-10 country

  const ProviderYearRow* cloudflare = nullptr;
  const ProviderYearRow* aws = nullptr;
  for (const auto& row : table.rows) {
    if (row.group_key == "cloudflare.com") cloudflare = &row;
    if (row.group_key == "AWS DNS") aws = &row;
  }
  ASSERT_NE(cloudflare, nullptr);
  EXPECT_EQ(cloudflare->domains, 2);
  EXPECT_EQ(cloudflare->d1p, 1);
  EXPECT_EQ(cloudflare->countries, 1);
  EXPECT_EQ(cloudflare->groups, 1);
  ASSERT_NE(aws, nullptr);
  EXPECT_EQ(aws->domains, 1);
  EXPECT_EQ(aws->d1p, 1);
}

TEST(ProviderAnalyzerTest, EmptyYearHasNoUsage) {
  ProviderMatcher matcher(DefaultProviderRules());
  ProviderAnalyzer analyzer(&matcher, TwoCountries());
  auto table = analyzer.Analyze(TinyDataset(), 2019);
  EXPECT_EQ(table.total_domains, 0);
  EXPECT_EQ(ProviderAnalyzer::MaxCountriesAnyProvider(table), 0);
}

TEST(ProviderAnalyzerTest, TopByCountriesSortsAndTruncates) {
  ProviderMatcher matcher(DefaultProviderRules());
  ProviderAnalyzer analyzer(&matcher, TwoCountries());
  auto table = analyzer.Analyze(TinyDataset(), 2020);
  auto top = ProviderAnalyzer::TopByCountries(table, 2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_GE(top[0].countries, top[1].countries);
  EXPECT_EQ(top[0].group_key, "cloudflare.com");  // ties break by domains
  EXPECT_EQ(ProviderAnalyzer::MaxCountriesAnyProvider(table), 1);
}

TEST(ProviderGroupKeyTest, Top10CountriesAreOwnGroups) {
  CountryMeta normal{"aa", "Aland", "Northern Europe", false};
  CountryMeta top{"cn", "China", "Eastern Asia", true};
  EXPECT_EQ(ProviderGroupKey(normal), "subregion:Northern Europe");
  EXPECT_EQ(ProviderGroupKey(top), "country:cn");
}

}  // namespace
}  // namespace govdns::core
