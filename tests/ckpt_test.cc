// Unit tests for the checkpoint layer: serialization, frame CRCs, the
// journal's atomic-commit/validated-load protocol, every corruption
// rejection mode, the kill-point fault injector's on-disk effects, and the
// cut cache's export/restore + negative bound (DESIGN.md §6f).
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "ckpt/fault.h"
#include "ckpt/journal.h"
#include "ckpt/serial.h"
#include "core/cut_cache.h"
#include "core/mining.h"
#include "core/resolver.h"
#include "core/study_ckpt.h"

namespace govdns {
namespace {

namespace fs = std::filesystem;

std::string TempDir(const std::string& tag) {
  std::string dir =
      (fs::temp_directory_path() / ("govdns_ckpt_" + tag)).string();
  fs::remove_all(dir);
  return dir;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void WriteFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << bytes;
}

// ---- serialization --------------------------------------------------------

TEST(CkptSerialTest, RoundTripsEveryPrimitive) {
  ckpt::Writer w;
  w.U8(0xAB);
  w.U32(0xDEADBEEFu);
  w.U64(0x0123456789ABCDEFull);
  w.I32(-42);
  w.I64(-9e15);
  w.Bool(true);
  w.Bool(false);
  w.F64(3.25);
  w.Str("hello");
  w.Str("");
  const std::string bytes = w.Take();

  ckpt::Reader r(bytes);
  uint8_t u8 = 0;
  uint32_t u32 = 0;
  uint64_t u64 = 0;
  int32_t i32 = 0;
  int64_t i64 = 0;
  bool b1 = false, b2 = true;
  double f = 0;
  std::string s1, s2;
  EXPECT_TRUE(r.U8(&u8));
  EXPECT_TRUE(r.U32(&u32));
  EXPECT_TRUE(r.U64(&u64));
  EXPECT_TRUE(r.I32(&i32));
  EXPECT_TRUE(r.I64(&i64));
  EXPECT_TRUE(r.Bool(&b1));
  EXPECT_TRUE(r.Bool(&b2));
  EXPECT_TRUE(r.F64(&f));
  EXPECT_TRUE(r.Str(&s1));
  EXPECT_TRUE(r.Str(&s2));
  EXPECT_TRUE(r.AtEnd());
  EXPECT_EQ(u8, 0xAB);
  EXPECT_EQ(u32, 0xDEADBEEFu);
  EXPECT_EQ(u64, 0x0123456789ABCDEFull);
  EXPECT_EQ(i32, -42);
  EXPECT_EQ(i64, static_cast<int64_t>(-9e15));
  EXPECT_TRUE(b1);
  EXPECT_FALSE(b2);
  EXPECT_EQ(f, 3.25);
  EXPECT_EQ(s1, "hello");
  EXPECT_EQ(s2, "");
}

TEST(CkptSerialTest, TruncationLatchesFailure) {
  ckpt::Writer w;
  w.U32(7);
  std::string bytes = w.Take();
  bytes.pop_back();

  ckpt::Reader r(bytes);
  uint32_t v = 99;
  EXPECT_FALSE(r.U32(&v));
  EXPECT_EQ(v, 99u);  // untouched on failure
  EXPECT_FALSE(r.ok());
  EXPECT_FALSE(r.AtEnd());
  // Latched: even a 1-byte read fails now.
  uint8_t b = 0;
  EXPECT_FALSE(r.U8(&b));
}

TEST(CkptSerialTest, StringLengthBeyondBufferIsRejected) {
  ckpt::Writer w;
  w.Size(1000);  // claims 1000 bytes that are not there
  w.Raw("abc");
  const std::string bytes = w.Take();
  ckpt::Reader r(bytes);
  std::string s;
  EXPECT_FALSE(r.Str(&s));
  EXPECT_FALSE(r.ok());
}

TEST(CkptSerialTest, SizeRoundTripsBeyond32Bits) {
  // The regression the widened codec exists for: a length crossing 4Gi must
  // round-trip exactly. Under the old `U32(static_cast<uint32_t>(n))`
  // encoding, (1 << 32) + 5 came back as 5 — silent wraparound, not an
  // error — and the checkpoint decoded to a plausible but wrong world.
  const uint64_t big = (uint64_t(1) << 32) + 5;
  ASSERT_NE(static_cast<uint32_t>(big), big);  // what the old path lost

  ckpt::Writer w;
  w.Size(0);
  w.Size(127);           // 1-byte varint boundary
  w.Size(128);           // 2-byte varint boundary
  w.Size(big);
  w.Size(uint64_t(1) << 63);
  w.Size(UINT64_MAX);
  const std::string bytes = w.Take();

  ckpt::Reader r(bytes);
  uint64_t v = 0;
  EXPECT_TRUE(r.Size(&v));
  EXPECT_EQ(v, 0u);
  EXPECT_TRUE(r.Size(&v));
  EXPECT_EQ(v, 127u);
  EXPECT_TRUE(r.Size(&v));
  EXPECT_EQ(v, 128u);
  EXPECT_TRUE(r.Size(&v));
  EXPECT_EQ(v, big);
  EXPECT_TRUE(r.Size(&v));
  EXPECT_EQ(v, uint64_t(1) << 63);
  EXPECT_TRUE(r.Size(&v));
  EXPECT_EQ(v, UINT64_MAX);
  EXPECT_TRUE(r.AtEnd());
}

TEST(CkptSerialTest, U32CheckedRefusesOverflowLoudly) {
  ckpt::Writer w;
  EXPECT_TRUE(w.U32Checked(0xFFFFFFFFull));  // largest value that fits
  const size_t size_before = w.size();
  EXPECT_FALSE(w.U32Checked(uint64_t(1) << 32));
  EXPECT_EQ(w.size(), size_before);  // nothing written on refusal
  EXPECT_FALSE(w.ok());
  EXPECT_EQ(w.status().code(), util::ErrorCode::kInvalidArgument);
}

TEST(CkptSerialTest, NonMinimalVarintIsRejected) {
  // 0x80 0x00 spells 0 in two bytes; only the one-byte 0x00 is legal, so a
  // corrupted stream cannot alias a valid one.
  const std::string bytes("\x80\x00", 2);
  ckpt::Reader r(bytes);
  uint64_t v = 99;
  EXPECT_FALSE(r.Size(&v));
  EXPECT_EQ(v, 99u);
  EXPECT_FALSE(r.ok());
}

TEST(CkptSerialTest, OversizedVarintIsRejected) {
  // Eleven continuation bytes claim a >64-bit value.
  const std::string bytes("\xFF\xFF\xFF\xFF\xFF\xFF\xFF\xFF\xFF\xFF\x01", 11);
  ckpt::Reader r(bytes);
  uint64_t v = 0;
  EXPECT_FALSE(r.Size(&v));
  EXPECT_FALSE(r.ok());
}

TEST(CkptSerialTest, CountRejectsResizeBomb) {
  // A count must be coverable by the remaining bytes (>= 1 byte/element), so
  // a corrupted count can never drive a huge allocation.
  ckpt::Writer w;
  w.Size(1U << 20);  // one million elements...
  w.Raw("abc");      // ...backed by three bytes
  const std::string bytes = w.Take();
  ckpt::Reader r(bytes);
  size_t n = 0;
  EXPECT_FALSE(r.Count(&n));
  EXPECT_FALSE(r.ok());
}

TEST(CkptSerialTest, BoolRejectsOutOfRangeByte) {
  ckpt::Writer w;
  w.U8(2);
  const std::string bytes = w.Take();
  ckpt::Reader r(bytes);
  bool b = false;
  EXPECT_FALSE(r.Bool(&b));
}

TEST(CkptSerialTest, TrailingGarbageFailsAtEnd) {
  ckpt::Writer w;
  w.U8(1);
  w.U8(2);
  const std::string bytes = w.Take();
  ckpt::Reader r(bytes);
  uint8_t b = 0;
  EXPECT_TRUE(r.U8(&b));
  EXPECT_TRUE(r.ok());
  EXPECT_FALSE(r.AtEnd());  // one byte left over
}

// ---- CRC / fingerprint ----------------------------------------------------

TEST(CkptCrcTest, MatchesKnownVector) {
  // The IEEE CRC-32 check value.
  EXPECT_EQ(ckpt::Crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(ckpt::Crc32(""), 0x00000000u);
  EXPECT_NE(ckpt::Crc32("a"), ckpt::Crc32("b"));
}

TEST(CkptCrcTest, MixFingerprintIsOrderSensitive) {
  EXPECT_NE(ckpt::MixFingerprint(1, 2), ckpt::MixFingerprint(2, 1));
  EXPECT_NE(ckpt::MixFingerprint(1, 2), ckpt::MixFingerprint(1, 3));
}

TEST(CkptCrcTest, MiningConfigFingerprintSeesEveryField) {
  core::MiningConfig base;
  const uint64_t fp = core::MiningConfigFingerprint(base);
  core::MiningConfig changed = base;
  changed.stability_days = 9;
  EXPECT_NE(core::MiningConfigFingerprint(changed), fp);
  changed = base;
  changed.statistic = core::YearlyStatistic::kMean;
  EXPECT_NE(core::MiningConfigFingerprint(changed), fp);
  changed = base;
  changed.require_stable_for_active = true;
  EXPECT_NE(core::MiningConfigFingerprint(changed), fp);
  EXPECT_EQ(core::MiningConfigFingerprint(base), fp);  // stable
}

// ---- journal: commit/load protocol ---------------------------------------

TEST(CkptJournalTest, CommitThenLoadRoundTripsChainedFrames) {
  const std::string dir = TempDir("roundtrip");
  ckpt::Journal journal(dir, /*fingerprint=*/0x1234);

  auto crc1 = journal.Commit("alpha", "first payload", /*parent_crc=*/0);
  ASSERT_TRUE(crc1.ok());
  auto crc2 = journal.Commit("beta", "second payload", *crc1);
  ASSERT_TRUE(crc2.ok());

  auto f1 = journal.Load("alpha", 0);
  ASSERT_TRUE(f1.ok());
  EXPECT_EQ(f1->payload, "first payload");
  EXPECT_EQ(f1->crc, *crc1);
  auto f2 = journal.Load("beta", *crc1);
  ASSERT_TRUE(f2.ok());
  EXPECT_EQ(f2->payload, "second payload");

  EXPECT_EQ(journal.stats().commits, 2u);
  EXPECT_EQ(journal.stats().loads_ok, 2u);
  EXPECT_EQ(journal.stats().Rejections(), 0u);
  // No temp files linger after a clean commit.
  EXPECT_FALSE(fs::exists(dir + "/alpha.tmp"));
  fs::remove_all(dir);
}

TEST(CkptJournalTest, MissingFrameIsCountedNotFatal) {
  const std::string dir = TempDir("missing");
  ckpt::Journal journal(dir, 1);
  auto frame = journal.Load("nope", 0);
  EXPECT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), util::ErrorCode::kNotFound);
  EXPECT_EQ(journal.stats().rejected_missing, 1u);
  fs::remove_all(dir);
}

TEST(CkptJournalTest, TruncatedFrameRejected) {
  const std::string dir = TempDir("trunc");
  ckpt::Journal journal(dir, 1);
  ASSERT_TRUE(journal.Commit("f", "some payload bytes", 0).ok());
  std::string raw = ReadFile(dir + "/f.ck");
  WriteFile(dir + "/f.ck", raw.substr(0, raw.size() / 2));
  auto frame = journal.Load("f", 0);
  EXPECT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), util::ErrorCode::kDataLoss);
  EXPECT_EQ(journal.stats().rejected_truncated, 1u);
  fs::remove_all(dir);
}

TEST(CkptJournalTest, FlippedPayloadByteRejectedByCrc) {
  const std::string dir = TempDir("crcflip");
  ckpt::Journal journal(dir, 1);
  ASSERT_TRUE(journal.Commit("f", "some payload bytes", 0).ok());
  std::string raw = ReadFile(dir + "/f.ck");
  raw[ckpt::kFrameHeaderSize + 3] ^= 0x01;  // one payload bit
  WriteFile(dir + "/f.ck", raw);
  auto frame = journal.Load("f", 0);
  EXPECT_FALSE(frame.ok());
  EXPECT_EQ(journal.stats().rejected_crc, 1u);
  fs::remove_all(dir);
}

TEST(CkptJournalTest, WrongFormatVersionRejected) {
  const std::string dir = TempDir("version");
  ckpt::Journal journal(dir, 1);
  ASSERT_TRUE(journal.Commit("f", "payload", 0).ok());
  std::string raw = ReadFile(dir + "/f.ck");
  raw[4] = static_cast<char>(ckpt::kFrameVersion + 1);  // version u32 LSB
  WriteFile(dir + "/f.ck", raw);
  auto frame = journal.Load("f", 0);
  EXPECT_FALSE(frame.ok());
  EXPECT_EQ(journal.stats().rejected_version, 1u);
  fs::remove_all(dir);
}

TEST(CkptJournalTest, BadMagicRejected) {
  const std::string dir = TempDir("magic");
  ckpt::Journal journal(dir, 1);
  ASSERT_TRUE(journal.Commit("f", "payload", 0).ok());
  std::string raw = ReadFile(dir + "/f.ck");
  raw[0] = 'X';
  WriteFile(dir + "/f.ck", raw);
  auto frame = journal.Load("f", 0);
  EXPECT_FALSE(frame.ok());
  EXPECT_EQ(journal.stats().rejected_magic, 1u);
  fs::remove_all(dir);
}

TEST(CkptJournalTest, FingerprintMismatchRejected) {
  const std::string dir = TempDir("fp");
  {
    ckpt::Journal writer(dir, /*fingerprint=*/0xAAAA);
    ASSERT_TRUE(writer.Commit("f", "payload", 0).ok());
  }
  ckpt::Journal reader(dir, /*fingerprint=*/0xBBBB);
  auto frame = reader.Load("f", 0);
  EXPECT_FALSE(frame.ok());
  EXPECT_EQ(reader.stats().rejected_fingerprint, 1u);
  fs::remove_all(dir);
}

TEST(CkptJournalTest, ChainParentMismatchRejected) {
  const std::string dir = TempDir("chain");
  ckpt::Journal journal(dir, 1);
  ASSERT_TRUE(journal.Commit("f", "payload", 0).ok());
  auto frame = journal.Load("f", /*parent_crc=*/0x12345678);
  EXPECT_FALSE(frame.ok());
  EXPECT_EQ(journal.stats().rejected_chain, 1u);
  fs::remove_all(dir);
}

TEST(CkptJournalTest, WipeAllRemovesFramesAndTemps) {
  const std::string dir = TempDir("wipe");
  ckpt::Journal journal(dir, 1);
  ASSERT_TRUE(journal.Commit("f", "payload", 0).ok());
  WriteFile(dir + "/stale.tmp", "partial");
  journal.WipeAll();
  EXPECT_FALSE(journal.Exists("f"));
  EXPECT_FALSE(fs::exists(dir + "/stale.tmp"));
  fs::remove_all(dir);
}

// ---- fault injection: on-disk state per kill mode ------------------------

ckpt::CkptFaultPlan PlanAt(uint64_t index, ckpt::KillMode mode) {
  ckpt::CkptFaultPlan plan;
  plan.kill_at_write = index;
  plan.mode = mode;
  plan.exit_process = false;  // throw, so the test survives
  return plan;
}

TEST(CkptFaultTest, BeforeWriteLeavesNothingOnDisk) {
  const std::string dir = TempDir("kill_before");
  ckpt::Journal journal(dir, 1);
  journal.set_fault_plan(PlanAt(1, ckpt::KillMode::kBeforeWrite));
  EXPECT_THROW(
      { auto r = journal.Commit("f", "payload", 0); (void)r; },
      ckpt::KillPointReached);
  EXPECT_FALSE(fs::exists(dir + "/f.ck"));
  EXPECT_FALSE(fs::exists(dir + "/f.tmp"));
  fs::remove_all(dir);
}

TEST(CkptFaultTest, AfterTempLeavesOnlyTempFile) {
  const std::string dir = TempDir("kill_temp");
  ckpt::Journal journal(dir, 1);
  journal.set_fault_plan(PlanAt(1, ckpt::KillMode::kAfterTemp));
  EXPECT_THROW(
      { auto r = journal.Commit("f", "payload", 0); (void)r; },
      ckpt::KillPointReached);
  EXPECT_FALSE(fs::exists(dir + "/f.ck"));
  EXPECT_TRUE(fs::exists(dir + "/f.tmp"));
  // A later load ignores the orphan temp entirely.
  auto frame = journal.Load("f", 0);
  EXPECT_FALSE(frame.ok());
  EXPECT_EQ(journal.stats().rejected_missing, 1u);
  fs::remove_all(dir);
}

TEST(CkptFaultTest, TruncateModeDamagesCommittedFrame) {
  const std::string dir = TempDir("kill_trunc");
  ckpt::Journal journal(dir, 1);
  journal.set_fault_plan(PlanAt(1, ckpt::KillMode::kTruncate));
  EXPECT_THROW(
      { auto r = journal.Commit("f", "a payload long enough to halve", 0); (void)r; },
      ckpt::KillPointReached);
  ASSERT_TRUE(fs::exists(dir + "/f.ck"));
  auto frame = journal.Load("f", 0);
  EXPECT_FALSE(frame.ok());
  EXPECT_EQ(journal.stats().rejected_truncated, 1u);
  fs::remove_all(dir);
}

TEST(CkptFaultTest, CorruptModeFlipsOnePayloadByte) {
  const std::string dir = TempDir("kill_corrupt");
  ckpt::Journal journal(dir, 1);
  journal.set_fault_plan(PlanAt(1, ckpt::KillMode::kCorrupt));
  EXPECT_THROW(
      { auto r = journal.Commit("f", "a payload long enough to corrupt", 0); (void)r; },
      ckpt::KillPointReached);
  auto frame = journal.Load("f", 0);
  EXPECT_FALSE(frame.ok());
  EXPECT_EQ(journal.stats().rejected_crc, 1u);
  fs::remove_all(dir);
}

TEST(CkptFaultTest, AfterCommitLeavesValidFrame) {
  const std::string dir = TempDir("kill_after");
  ckpt::Journal journal(dir, 1);
  journal.set_fault_plan(PlanAt(1, ckpt::KillMode::kAfterCommit));
  EXPECT_THROW(
      { auto r = journal.Commit("f", "payload", 0); (void)r; },
      ckpt::KillPointReached);
  auto frame = journal.Load("f", 0);
  ASSERT_TRUE(frame.ok());
  EXPECT_EQ(frame->payload, "payload");
  fs::remove_all(dir);
}

TEST(CkptFaultTest, InjectedFsyncFailureRejectsCommitKeepsPriorGeneration) {
  const std::string dir = TempDir("fsync_fail");
  ckpt::Journal journal(dir, 1);
  ASSERT_TRUE(journal.Commit("f", "generation one", 0).ok());

  ckpt::CkptFaultPlan plan;
  plan.fail_fsync_at_write = 2;
  journal.set_fault_plan(plan);
  auto rejected = journal.Commit("f", "generation two", 0);
  EXPECT_FALSE(rejected.ok());  // an IO error, not a crash: status, no throw
  EXPECT_EQ(journal.stats().fsync_rejected, 1u);
  // No half-committed residue: the temp is gone and the prior generation is
  // still the durable, loadable truth.
  EXPECT_FALSE(fs::exists(dir + "/f.tmp"));
  auto frame = journal.Load("f", 0);
  ASSERT_TRUE(frame.ok());
  EXPECT_EQ(frame->payload, "generation one");

  // With the fault cleared the same commit goes through.
  journal.set_fault_plan(ckpt::CkptFaultPlan{});
  ASSERT_TRUE(journal.Commit("f", "generation two", 0).ok());
  auto fresh = journal.Load("f", 0);
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(fresh->payload, "generation two");
  fs::remove_all(dir);
}

TEST(CkptFaultTest, FsyncFailureFiresOnlyAtItsIndex) {
  const std::string dir = TempDir("fsync_index");
  ckpt::Journal journal(dir, 1);
  ckpt::CkptFaultPlan plan;
  plan.fail_fsync_at_write = 3;
  journal.set_fault_plan(plan);
  ASSERT_TRUE(journal.Commit("a", "1", 0).ok());
  ASSERT_TRUE(journal.Commit("b", "2", 0).ok());
  EXPECT_FALSE(journal.Commit("c", "3", 0).ok());
  EXPECT_FALSE(fs::exists(dir + "/c.ck"));
  // The write index keeps advancing past the faulted commit.
  ASSERT_TRUE(journal.Commit("c", "3", 0).ok());
  fs::remove_all(dir);
}

TEST(CkptFaultTest, PlanFiresOnlyAtItsIndex) {
  const std::string dir = TempDir("kill_index");
  ckpt::Journal journal(dir, 1);
  journal.set_fault_plan(PlanAt(3, ckpt::KillMode::kAfterCommit));
  ASSERT_TRUE(journal.Commit("a", "1", 0).ok());
  ASSERT_TRUE(journal.Commit("b", "2", 0).ok());
  EXPECT_THROW(
      { auto r = journal.Commit("c", "3", 0); (void)r; },
      ckpt::KillPointReached);
  fs::remove_all(dir);
}

// ---- shared cut cache: export/restore + negative bound --------------------

dns::Name N(const char* s) { return dns::Name::FromString(s); }

TEST(CutCacheCkptTest, ExportIsSortedRestoreDropsNegatives) {
  core::SharedCutCache cache;
  core::SharedCutCache::Entry pos;
  pos.ns_names = {N("ns1.gov.aa")};
  pos.addresses = {geo::IPv4(0x01020304u)};
  cache.Publish(N("gov.aa"), pos);
  cache.Publish(N("gov.bb"), pos);
  cache.PublishUnreachable(N("dead.gov.cc"), {N("ns.dead.gov.cc")},
                           /*expires_ms=*/5000, /*now_ms=*/0);

  auto exported = cache.Export();
  ASSERT_EQ(exported.size(), 3u);
  EXPECT_TRUE(std::is_sorted(
      exported.begin(), exported.end(),
      [](const auto& a, const auto& b) { return a.first < b.first; }));

  core::SharedCutCache fresh;
  EXPECT_EQ(fresh.Restore(exported), 2u);  // the negative is dropped
  EXPECT_EQ(fresh.size(), 2u);
  auto hit = fresh.Lookup(N("gov.aa"));
  ASSERT_TRUE(hit.has_value());
  EXPECT_TRUE(hit->reachable);
  EXPECT_EQ(hit->ns_names, pos.ns_names);
  EXPECT_FALSE(fresh.Lookup(N("dead.gov.cc")).has_value());
}

TEST(CutCacheCkptTest, RestoreNeverOverwritesLiveEntries) {
  core::SharedCutCache cache;
  core::SharedCutCache::Entry live;
  live.ns_names = {N("ns-live.gov.aa")};
  cache.Publish(N("gov.aa"), live);

  core::SharedCutCache::Entry stale;
  stale.ns_names = {N("ns-stale.gov.aa")};
  stale.reachable = true;
  EXPECT_EQ(cache.Restore({{N("gov.aa"), stale}}), 0u);
  auto hit = cache.Lookup(N("gov.aa"));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->ns_names, live.ns_names);
}

TEST(CutCacheCkptTest, NegativeBoundEvictsExpiredFirstThenEarliest) {
  // One stripe so the bound applies globally; capacity 2.
  core::SharedCutCache cache(/*stripes=*/1, /*max_negatives_per_stripe=*/2);
  cache.PublishUnreachable(N("a.gov"), {}, /*expires_ms=*/100, /*now_ms=*/0);
  cache.PublishUnreachable(N("b.gov"), {}, /*expires_ms=*/900, /*now_ms=*/0);
  EXPECT_EQ(cache.stats().negative_evictions, 0u);

  // At now=500, a.gov has expired: it goes first.
  cache.PublishUnreachable(N("c.gov"), {}, /*expires_ms=*/950, /*now_ms=*/500);
  EXPECT_EQ(cache.stats().negative_evictions, 1u);
  EXPECT_FALSE(cache.Lookup(N("a.gov")).has_value());
  EXPECT_TRUE(cache.Lookup(N("b.gov")).has_value());

  // Nothing expired at now=500: the earliest-expiring live negative (b) goes.
  cache.PublishUnreachable(N("d.gov"), {}, /*expires_ms=*/990, /*now_ms=*/500);
  EXPECT_EQ(cache.stats().negative_evictions, 2u);
  EXPECT_FALSE(cache.Lookup(N("b.gov")).has_value());
  EXPECT_TRUE(cache.Lookup(N("c.gov")).has_value());
  EXPECT_TRUE(cache.Lookup(N("d.gov")).has_value());

  // Republishing an existing negative does not evict anything.
  cache.PublishUnreachable(N("c.gov"), {}, /*expires_ms=*/999, /*now_ms=*/500);
  EXPECT_EQ(cache.stats().negative_evictions, 2u);
  // Positives are never evicted by the negative bound.
  core::SharedCutCache::Entry pos;
  pos.ns_names = {N("ns1.gov.aa")};
  cache.Publish(N("gov.aa"), pos);
  EXPECT_TRUE(cache.Lookup(N("gov.aa")).has_value());
}

TEST(CutCacheCkptTest, NegativeEvictionTiebreakIsStable) {
  // Two live negatives share one expires_ms; the victim must be the
  // canonically smaller name — an explicit tiebreak, not whatever the
  // stripe container happens to iterate first — so 1-worker and N-worker
  // runs that race publishes into the same stripe evict identically.
  for (bool publish_z_first : {true, false}) {
    core::SharedCutCache cache(/*stripes=*/1, /*max_negatives_per_stripe=*/2);
    if (publish_z_first) {
      cache.PublishUnreachable(N("z.gov"), {}, /*expires_ms=*/900, 0);
      cache.PublishUnreachable(N("m.gov"), {}, /*expires_ms=*/900, 0);
    } else {
      cache.PublishUnreachable(N("m.gov"), {}, /*expires_ms=*/900, 0);
      cache.PublishUnreachable(N("z.gov"), {}, /*expires_ms=*/900, 0);
    }
    // Nothing has expired at now=0; the tie resolves by canonical name.
    cache.PublishUnreachable(N("q.gov"), {}, /*expires_ms=*/950, 0);
    EXPECT_FALSE(cache.Lookup(N("m.gov")).has_value())
        << "publish_z_first=" << publish_z_first;
    EXPECT_TRUE(cache.Lookup(N("z.gov")).has_value());
    EXPECT_TRUE(cache.Lookup(N("q.gov")).has_value());
  }
}

TEST(CutCacheCkptTest, ResolverNegativeDefaultsAreBounded) {
  core::ResolverOptions options;
  EXPECT_GT(options.negative_cache_ttl_ms, 0u);
  EXPECT_GT(options.max_negative_cuts, 0u);
}

// ---- StudyCheckpoint payload codecs --------------------------------------

core::MeasurementResult FabricateResult(int salt) {
  core::MeasurementResult res;
  res.domain = N(("d" + std::to_string(salt) + ".gov.aa").c_str());
  res.parent_located = true;
  res.parent_zone = N("gov.aa");
  res.parent_responded = true;
  res.parent_has_records = (salt % 2) == 0;
  res.parent_answered_authoritatively = (salt % 3) == 0;
  res.parent_ns = {N("ns1.gov.aa"), N("ns2.gov.aa")};
  res.child_ns = {N("ns1.gov.aa")};
  res.child_any_authoritative = true;
  core::NsHostResult host;
  host.host = N("ns1.gov.aa");
  host.addresses = {geo::IPv4(0x0A000001u + static_cast<uint32_t>(salt))};
  host.status = core::NsHostStatus::kAuthoritative;
  host.in_parent_set = true;
  host.in_child_set = true;
  res.hosts.push_back(host);
  if (salt % 2 == 0) {
    dns::SoaRdata soa;
    soa.mname = N("ns1.gov.aa");
    soa.rname = N("admin.gov.aa");
    soa.serial = 2020010100u + static_cast<uint32_t>(salt);
    soa.refresh = 7200;
    soa.retry = 900;
    soa.expire = 1209600;
    soa.minimum = 300;
    res.soa = soa;
  }
  res.rounds = 1 + (salt % 2);
  res.query_stats.queries = 10 + static_cast<uint64_t>(salt);
  res.query_stats.retries = 2;
  res.query_stats.negative_cache_hits = 1;
  res.degraded = (salt % 5) == 0;
  res.logical_ms = 1000 + static_cast<uint64_t>(salt);
  return res;
}

// Brings a StudyCheckpoint to the post-mining chain state with tiny
// fabricated snapshots, so batch/cache frames can be exercised in isolation.
void SeedPhases(core::StudyCheckpoint& ckpt) {
  core::StudyCheckpoint::SelectionSnapshot sel;
  core::SeedDomain seed;
  seed.country = 0;
  seed.d_gov = N("gov.aa");
  sel.seeds.push_back(seed);
  sel.stats.total = 1;
  ckpt.SaveSelection(sel);

  core::StudyCheckpoint::MiningSnapshot mine;
  mine.dataset.config = core::MiningConfig{};
  mine.dataset.ns_names = {"ns1.gov.aa"};
  core::MinedDomain dom;
  dom.name = N("d0.gov.aa");
  dom.country = 0;
  dom.seed_index = 0;
  dom.years.resize(mine.dataset.config.year_count());
  dom.years[0].mode_ns_count = 1;
  dom.years[0].ns_ids = {0};
  dom.in_active_window = true;
  mine.dataset.domains.push_back(dom);
  mine.dataset.stats.seeds = 1;
  mine.dataset.stats.domains = 1;
  ckpt.SaveMining(mine);
}

TEST(StudyCheckpointTest, BatchResultsRoundTripBitForBit) {
  const std::string dir = TempDir("batch_rt");
  std::vector<core::MeasurementResult> batch;
  for (int i = 0; i < 5; ++i) batch.push_back(FabricateResult(i));
  {
    core::StudyCheckpoint ckpt(dir, /*config_fingerprint=*/77);
    ckpt.Bind(/*study_fingerprint=*/11);
    SeedPhases(ckpt);
    ckpt.AppendActiveBatch(0, batch);
  }
  core::StudyCheckpointOptions opts;
  opts.resume = true;
  core::StudyCheckpoint resumed(dir, 77, opts);
  resumed.Bind(11);
  ASSERT_TRUE(resumed.TryLoadSelection().has_value());
  ASSERT_TRUE(resumed.TryLoadMining(core::MiningConfig{}).has_value());
  std::vector<core::MeasurementResult> loaded =
      resumed.LoadActiveBatches(/*expected_total=*/5);
  ASSERT_EQ(loaded.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(loaded[static_cast<size_t>(i)], batch[static_cast<size_t>(i)])
        << "result " << i;
  }
  EXPECT_EQ(resumed.stats().batches_loaded, 1);
  EXPECT_EQ(resumed.stats().results_loaded, 5);
  fs::remove_all(dir);
}

TEST(StudyCheckpointTest, MiningConfigMismatchIsARejectedDecode) {
  const std::string dir = TempDir("cfg_mismatch");
  {
    core::StudyCheckpoint ckpt(dir, 77);
    ckpt.Bind(11);
    SeedPhases(ckpt);  // saved under the default MiningConfig
  }
  core::StudyCheckpointOptions opts;
  opts.resume = true;
  core::StudyCheckpoint resumed(dir, 77, opts);
  resumed.Bind(11);
  ASSERT_TRUE(resumed.TryLoadSelection().has_value());
  core::MiningConfig other;
  other.stability_days = 30;
  EXPECT_FALSE(resumed.TryLoadMining(other).has_value());
  EXPECT_EQ(resumed.stats().decode_rejects, 1);
  fs::remove_all(dir);
}

TEST(StudyCheckpointTest, CutCacheSnapshotRoundTripsPositivesOnly) {
  const std::string dir = TempDir("cache_snap");
  {
    core::StudyCheckpoint ckpt(dir, 77);
    ckpt.Bind(11);
    SeedPhases(ckpt);
    core::SharedCutCache cache;
    core::SharedCutCache::Entry pos;
    pos.ns_names = {N("ns1.gov.aa")};
    pos.addresses = {geo::IPv4(0x0A000001u)};
    cache.Publish(N("gov.aa"), pos);
    cache.PublishUnreachable(N("dead.gov.aa"), {N("ns.dead.gov.aa")}, 5000, 0);
    ckpt.SaveCutCacheSnapshot(cache);
  }
  core::StudyCheckpointOptions opts;
  opts.resume = true;
  core::StudyCheckpoint resumed(dir, 77, opts);
  resumed.Bind(11);
  ASSERT_TRUE(resumed.TryLoadSelection().has_value());
  ASSERT_TRUE(resumed.TryLoadMining(core::MiningConfig{}).has_value());
  core::SharedCutCache cache;
  EXPECT_EQ(resumed.RestoreCutCache(&cache), 1u);
  EXPECT_TRUE(cache.Lookup(N("gov.aa")).has_value());
  EXPECT_FALSE(cache.Lookup(N("dead.gov.aa")).has_value());
  fs::remove_all(dir);
}

TEST(StudyCheckpointTest, FreshRunWipesAStaleJournal) {
  const std::string dir = TempDir("fresh_wipe");
  {
    core::StudyCheckpoint ckpt(dir, 77);
    ckpt.Bind(11);
    SeedPhases(ckpt);
  }
  // resume=false (default): Bind wipes, loads find nothing.
  core::StudyCheckpoint fresh(dir, 77);
  fresh.Bind(11);
  EXPECT_FALSE(fresh.TryLoadSelection().has_value());
  EXPECT_FALSE(fs::exists(dir + "/selection.ck"));
  fs::remove_all(dir);
}

}  // namespace
}  // namespace govdns
