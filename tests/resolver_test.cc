#include <gtest/gtest.h>

#include "core/resolver.h"
#include "tests/test_world.h"

namespace govdns::core {
namespace {

using dns::Name;
using dns::RRType;
using govdns::testing::TinyInternet;

class ResolverTest : public ::testing::Test {
 protected:
  ResolverTest() : world_(), resolver_(&world_.net, world_.roots()) {}

  TinyInternet world_;
  IterativeResolver resolver_;
};

TEST_F(ResolverTest, ResolvesAddressThroughDelegationChain) {
  auto addrs = resolver_.ResolveAddresses(Name::FromString("www.moe.gov.xx"));
  ASSERT_TRUE(addrs.ok()) << addrs.status().ToString();
  ASSERT_EQ(addrs->size(), 1u);
  EXPECT_EQ((*addrs)[0], TinyInternet::Ip(10, 0, 3, 10));
}

TEST_F(ResolverTest, FollowsCname) {
  auto addrs = resolver_.ResolveAddresses(Name::FromString("alias.moe.gov.xx"));
  ASSERT_TRUE(addrs.ok());
  ASSERT_EQ(addrs->size(), 1u);
  EXPECT_EQ((*addrs)[0], TinyInternet::Ip(10, 0, 3, 10));
}

TEST_F(ResolverTest, ResolvesNsRecordsFromChild) {
  auto records = resolver_.Resolve(Name::FromString("moe.gov.xx"), RRType::kNS);
  ASSERT_TRUE(records.ok());
  EXPECT_EQ(records->size(), 2u);
}

TEST_F(ResolverTest, GluelessDelegationResolvedViaSeparateLookup) {
  auto addrs =
      resolver_.ResolveAddresses(Name::FromString("www.glueless.gov.xx"));
  ASSERT_TRUE(addrs.ok()) << addrs.status().ToString();
  EXPECT_EQ((*addrs)[0], TinyInternet::Ip(10, 0, 6, 1));
}

TEST_F(ResolverTest, NxDomainGivesEmptyAnswerNotError) {
  auto records =
      resolver_.Resolve(Name::FromString("absent.gov.xx"), RRType::kA);
  ASSERT_TRUE(records.ok());
  EXPECT_TRUE(records->empty());
}

TEST_F(ResolverTest, UnresolvableHostFails) {
  auto addrs = resolver_.ResolveAddresses(Name::FromString("ns1ext.xx"));
  EXPECT_FALSE(addrs.ok());
}

TEST_F(ResolverTest, DeadDelegationFails) {
  // lame.gov.xx's only nameserver never answers.
  auto records =
      resolver_.Resolve(Name::FromString("www.lame.gov.xx"), RRType::kA);
  EXPECT_FALSE(records.ok());
}

TEST_F(ResolverTest, FindEnclosingZoneReturnsParentServers) {
  auto zone = resolver_.FindEnclosingZoneServers(Name::FromString("moe.gov.xx"));
  ASSERT_TRUE(zone.ok()) << zone.status().ToString();
  EXPECT_EQ(zone->zone.ToString(), "gov.xx");
  ASSERT_EQ(zone->addresses.size(), 1u);
  EXPECT_EQ(zone->addresses[0], TinyInternet::Ip(10, 0, 2, 1));
}

TEST_F(ResolverTest, FindEnclosingZoneForDeepName) {
  // www.moe.gov.xx's enclosing zone is moe.gov.xx itself.
  auto zone =
      resolver_.FindEnclosingZoneServers(Name::FromString("www.moe.gov.xx"));
  ASSERT_TRUE(zone.ok());
  EXPECT_EQ(zone->zone.ToString(), "moe.gov.xx");
}

TEST_F(ResolverTest, FindEnclosingZoneForTld) {
  auto zone = resolver_.FindEnclosingZoneServers(Name::FromString("xx"));
  ASSERT_TRUE(zone.ok());
  EXPECT_TRUE(zone->zone.IsRoot());
}

TEST_F(ResolverTest, FindEnclosingZoneRejectsRoot) {
  EXPECT_FALSE(resolver_.FindEnclosingZoneServers(Name::Root()).ok());
}

TEST_F(ResolverTest, NonExistentDelegationStopsAtParent) {
  // gone.gov.xx has no records: the deepest enclosing zone is gov.xx and
  // its servers answer (with NXDOMAIN for the name itself).
  auto zone = resolver_.FindEnclosingZoneServers(Name::FromString("gone.gov.xx"));
  ASSERT_TRUE(zone.ok());
  EXPECT_EQ(zone->zone.ToString(), "gov.xx");
}

TEST_F(ResolverTest, CacheReducesQueryLoad) {
  (void)resolver_.ResolveAddresses(Name::FromString("www.moe.gov.xx"));
  uint64_t after_first = resolver_.queries_sent();
  (void)resolver_.ResolveAddresses(Name::FromString("ns2.moe.gov.xx"));
  uint64_t second_cost = resolver_.queries_sent() - after_first;
  // The second lookup starts from the cached moe.gov.xx cut: 1 query.
  EXPECT_LE(second_cost, 2u);
  EXPECT_GT(resolver_.cache_size(), 0u);
  resolver_.ClearCache();
  EXPECT_EQ(resolver_.cache_size(), 0u);
}

TEST_F(ResolverTest, QueryServerClassifiesOutcomes) {
  // Authoritative answer.
  auto r = resolver_.QueryServer(TinyInternet::Ip(10, 0, 3, 1),
                                 Name::FromString("www.moe.gov.xx"),
                                 RRType::kA);
  EXPECT_EQ(r.outcome, QueryOutcome::kAuthAnswer);
  // Referral.
  r = resolver_.QueryServer(TinyInternet::Ip(10, 0, 2, 1),
                            Name::FromString("moe.gov.xx"), RRType::kNS);
  EXPECT_EQ(r.outcome, QueryOutcome::kReferral);
  // Refused.
  r = resolver_.QueryServer(TinyInternet::Ip(10, 0, 4, 21),
                            Name::FromString("refused.gov.xx"), RRType::kNS);
  EXPECT_EQ(r.outcome, QueryOutcome::kRefused);
  // Unreachable.
  r = resolver_.QueryServer(TinyInternet::Ip(10, 0, 4, 12),
                            Name::FromString("half.gov.xx"), RRType::kNS);
  EXPECT_EQ(r.outcome, QueryOutcome::kUnreachable);
  // Negative.
  r = resolver_.QueryServer(TinyInternet::Ip(10, 0, 2, 1),
                            Name::FromString("absent.gov.xx"), RRType::kA);
  EXPECT_EQ(r.outcome, QueryOutcome::kAuthNegative);
}

TEST_F(ResolverTest, SilentEndpointIsTimeout) {
  world_.net.SetBehavior(TinyInternet::Ip(10, 0, 3, 1),
                         simnet::EndpointBehavior{.silent = true});
  auto r = resolver_.QueryServer(TinyInternet::Ip(10, 0, 3, 1),
                                 Name::FromString("www.moe.gov.xx"),
                                 RRType::kA);
  EXPECT_EQ(r.outcome, QueryOutcome::kTimeout);
}

TEST_F(ResolverTest, RetriesRecoverFromLoss) {
  world_.net.SetBehavior(TinyInternet::Ip(10, 0, 3, 1),
                         simnet::EndpointBehavior{.loss_rate = 0.6});
  ResolverOptions options;
  options.retries = 6;
  IterativeResolver retrying(&world_.net, world_.roots(), options);
  auto r = retrying.QueryServer(TinyInternet::Ip(10, 0, 3, 1),
                                Name::FromString("www.moe.gov.xx"),
                                RRType::kA);
  EXPECT_EQ(r.outcome, QueryOutcome::kAuthAnswer);
}

}  // namespace
}  // namespace govdns::core
