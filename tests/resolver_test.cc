#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/resolver.h"
#include "tests/test_world.h"

namespace govdns::core {
namespace {

using dns::Name;
using dns::RRType;
using govdns::testing::TinyInternet;

class ResolverTest : public ::testing::Test {
 protected:
  ResolverTest() : world_(), resolver_(&world_.net, world_.roots()) {}

  TinyInternet world_;
  IterativeResolver resolver_;
};

TEST_F(ResolverTest, ResolvesAddressThroughDelegationChain) {
  auto addrs = resolver_.ResolveAddresses(Name::FromString("www.moe.gov.xx"));
  ASSERT_TRUE(addrs.ok()) << addrs.status().ToString();
  ASSERT_EQ(addrs->size(), 1u);
  EXPECT_EQ((*addrs)[0], TinyInternet::Ip(10, 0, 3, 10));
}

TEST_F(ResolverTest, FollowsCname) {
  auto addrs = resolver_.ResolveAddresses(Name::FromString("alias.moe.gov.xx"));
  ASSERT_TRUE(addrs.ok());
  ASSERT_EQ(addrs->size(), 1u);
  EXPECT_EQ((*addrs)[0], TinyInternet::Ip(10, 0, 3, 10));
}

TEST_F(ResolverTest, ResolvesNsRecordsFromChild) {
  auto records = resolver_.Resolve(Name::FromString("moe.gov.xx"), RRType::kNS);
  ASSERT_TRUE(records.ok());
  EXPECT_EQ(records->size(), 2u);
}

TEST_F(ResolverTest, GluelessDelegationResolvedViaSeparateLookup) {
  auto addrs =
      resolver_.ResolveAddresses(Name::FromString("www.glueless.gov.xx"));
  ASSERT_TRUE(addrs.ok()) << addrs.status().ToString();
  EXPECT_EQ((*addrs)[0], TinyInternet::Ip(10, 0, 6, 1));
}

TEST_F(ResolverTest, NxDomainGivesEmptyAnswerNotError) {
  auto records =
      resolver_.Resolve(Name::FromString("absent.gov.xx"), RRType::kA);
  ASSERT_TRUE(records.ok());
  EXPECT_TRUE(records->empty());
}

TEST_F(ResolverTest, UnresolvableHostFails) {
  auto addrs = resolver_.ResolveAddresses(Name::FromString("ns1ext.xx"));
  EXPECT_FALSE(addrs.ok());
}

TEST_F(ResolverTest, DeadDelegationFails) {
  // lame.gov.xx's only nameserver never answers.
  auto records =
      resolver_.Resolve(Name::FromString("www.lame.gov.xx"), RRType::kA);
  EXPECT_FALSE(records.ok());
}

TEST_F(ResolverTest, FindEnclosingZoneReturnsParentServers) {
  auto zone = resolver_.FindEnclosingZoneServers(Name::FromString("moe.gov.xx"));
  ASSERT_TRUE(zone.ok()) << zone.status().ToString();
  EXPECT_EQ(zone->zone.ToString(), "gov.xx");
  ASSERT_EQ(zone->addresses.size(), 1u);
  EXPECT_EQ(zone->addresses[0], TinyInternet::Ip(10, 0, 2, 1));
}

TEST_F(ResolverTest, FindEnclosingZoneForDeepName) {
  // www.moe.gov.xx's enclosing zone is moe.gov.xx itself.
  auto zone =
      resolver_.FindEnclosingZoneServers(Name::FromString("www.moe.gov.xx"));
  ASSERT_TRUE(zone.ok());
  EXPECT_EQ(zone->zone.ToString(), "moe.gov.xx");
}

TEST_F(ResolverTest, FindEnclosingZoneForTld) {
  auto zone = resolver_.FindEnclosingZoneServers(Name::FromString("xx"));
  ASSERT_TRUE(zone.ok());
  EXPECT_TRUE(zone->zone.IsRoot());
}

TEST_F(ResolverTest, FindEnclosingZoneRejectsRoot) {
  EXPECT_FALSE(resolver_.FindEnclosingZoneServers(Name::Root()).ok());
}

TEST_F(ResolverTest, NonExistentDelegationStopsAtParent) {
  // gone.gov.xx has no records: the deepest enclosing zone is gov.xx and
  // its servers answer (with NXDOMAIN for the name itself).
  auto zone = resolver_.FindEnclosingZoneServers(Name::FromString("gone.gov.xx"));
  ASSERT_TRUE(zone.ok());
  EXPECT_EQ(zone->zone.ToString(), "gov.xx");
}

TEST_F(ResolverTest, CacheReducesQueryLoad) {
  (void)resolver_.ResolveAddresses(Name::FromString("www.moe.gov.xx"));
  uint64_t after_first = resolver_.queries_sent();
  (void)resolver_.ResolveAddresses(Name::FromString("ns2.moe.gov.xx"));
  uint64_t second_cost = resolver_.queries_sent() - after_first;
  // The second lookup starts from the cached moe.gov.xx cut: 1 query.
  EXPECT_LE(second_cost, 2u);
  EXPECT_GT(resolver_.cache_size(), 0u);
  resolver_.ClearCache();
  EXPECT_EQ(resolver_.cache_size(), 0u);
}

TEST_F(ResolverTest, QueryServerClassifiesOutcomes) {
  // Authoritative answer.
  auto r = resolver_.QueryServer(TinyInternet::Ip(10, 0, 3, 1),
                                 Name::FromString("www.moe.gov.xx"),
                                 RRType::kA);
  EXPECT_EQ(r.outcome, QueryOutcome::kAuthAnswer);
  // Referral.
  r = resolver_.QueryServer(TinyInternet::Ip(10, 0, 2, 1),
                            Name::FromString("moe.gov.xx"), RRType::kNS);
  EXPECT_EQ(r.outcome, QueryOutcome::kReferral);
  // Refused.
  r = resolver_.QueryServer(TinyInternet::Ip(10, 0, 4, 21),
                            Name::FromString("refused.gov.xx"), RRType::kNS);
  EXPECT_EQ(r.outcome, QueryOutcome::kRefused);
  // Unreachable.
  r = resolver_.QueryServer(TinyInternet::Ip(10, 0, 4, 12),
                            Name::FromString("half.gov.xx"), RRType::kNS);
  EXPECT_EQ(r.outcome, QueryOutcome::kUnreachable);
  // Negative.
  r = resolver_.QueryServer(TinyInternet::Ip(10, 0, 2, 1),
                            Name::FromString("absent.gov.xx"), RRType::kA);
  EXPECT_EQ(r.outcome, QueryOutcome::kAuthNegative);
}

TEST_F(ResolverTest, SilentEndpointIsTimeout) {
  world_.net.SetBehavior(TinyInternet::Ip(10, 0, 3, 1),
                         simnet::EndpointBehavior{.silent = true});
  auto r = resolver_.QueryServer(TinyInternet::Ip(10, 0, 3, 1),
                                 Name::FromString("www.moe.gov.xx"),
                                 RRType::kA);
  EXPECT_EQ(r.outcome, QueryOutcome::kTimeout);
}

TEST_F(ResolverTest, RetriesRecoverFromLoss) {
  world_.net.SetBehavior(TinyInternet::Ip(10, 0, 3, 1),
                         simnet::EndpointBehavior{.loss_rate = 0.6});
  ResolverOptions options;
  options.retry.max_attempts = 7;
  IterativeResolver retrying(&world_.net, world_.roots(), options);
  auto r = retrying.QueryServer(TinyInternet::Ip(10, 0, 3, 1),
                                Name::FromString("www.moe.gov.xx"),
                                RRType::kA);
  EXPECT_EQ(r.outcome, QueryOutcome::kAuthAnswer);
  EXPECT_GT(retrying.counters().retries, 0u);
}

TEST_F(ResolverTest, FreshTransactionIdPerAttempt) {
  // A server that answers every query with undecodable garbage: each attempt
  // must carry a fresh transaction id so a stale reply can never validate a
  // later attempt.
  const geo::IPv4 garbler = TinyInternet::Ip(10, 0, 9, 9);
  std::vector<uint16_t> seen_ids;
  world_.net.AttachHandler(garbler, [&](const std::vector<uint8_t>& q) {
    seen_ids.push_back(uint16_t(q[0]) << 8 | q[1]);
    return std::vector<uint8_t>{0xde, 0xad};
  });
  ResolverOptions options;
  options.retry.max_attempts = 4;
  IterativeResolver r(&world_.net, world_.roots(), options);
  auto reply = r.QueryServer(garbler, Name::FromString("www.moe.gov.xx"),
                             RRType::kA);
  EXPECT_EQ(reply.outcome, QueryOutcome::kMalformed);
  ASSERT_EQ(seen_ids.size(), 4u);
  std::sort(seen_ids.begin(), seen_ids.end());
  EXPECT_TRUE(std::adjacent_find(seen_ids.begin(), seen_ids.end()) ==
              seen_ids.end());
  EXPECT_EQ(r.counters().malformed, 4u);
  EXPECT_EQ(r.counters().retries, 3u);
}

TEST_F(ResolverTest, BackoffChargedToTransportClock) {
  world_.net.SetBehavior(TinyInternet::Ip(10, 0, 3, 1),
                         simnet::EndpointBehavior{.silent = true});
  ResolverOptions options;
  options.retry.max_attempts = 3;
  options.retry.initial_backoff_ms = 100;
  IterativeResolver r(&world_.net, world_.roots(), options);
  const uint64_t before = world_.net.clock().now_ms();
  (void)r.QueryServer(TinyInternet::Ip(10, 0, 3, 1),
                      Name::FromString("www.moe.gov.xx"), RRType::kA);
  // Two waits (before attempts 2 and 3), each at least 75ms after jitter.
  EXPECT_GE(r.counters().backoff_ms, 150u);
  EXPECT_GE(world_.net.clock().now_ms() - before, r.counters().backoff_ms);
}

TEST_F(ResolverTest, CircuitBreakerSkipsKnownDeadServer) {
  const geo::IPv4 dead = TinyInternet::Ip(10, 0, 3, 1);
  world_.net.SetBehavior(dead, simnet::EndpointBehavior{.silent = true});
  ResolverOptions options;
  options.retry.max_attempts = 1;
  options.retry.breaker_threshold = 2;
  options.retry.breaker_cooldown_ms = 10000;
  IterativeResolver r(&world_.net, world_.roots(), options);
  const Name q = Name::FromString("www.moe.gov.xx");
  (void)r.QueryServer(dead, q, RRType::kA);
  (void)r.QueryServer(dead, q, RRType::kA);  // second failure opens the breaker
  EXPECT_EQ(r.open_circuits(), 1u);
  const uint64_t sent = r.counters().queries;
  auto reply = r.QueryServer(dead, q, RRType::kA);
  EXPECT_EQ(reply.outcome, QueryOutcome::kUnreachable);
  EXPECT_EQ(r.counters().queries, sent);  // no traffic while open
  EXPECT_EQ(r.counters().breaker_skips, 1u);
  // After cooldown the circuit half-opens and traffic resumes.
  world_.net.clock().Advance(10001);
  EXPECT_EQ(r.open_circuits(), 0u);
  (void)r.QueryServer(dead, q, RRType::kA);
  EXPECT_EQ(r.counters().queries, sent + 1);
}

TEST_F(ResolverTest, BreakerIgnoresMalformedReplies) {
  // Garbage proves the endpoint is alive; only silence/unreachability may
  // open the circuit.
  const geo::IPv4 garbler = TinyInternet::Ip(10, 0, 9, 9);
  world_.net.AttachHandler(garbler, [](const std::vector<uint8_t>&) {
    return std::vector<uint8_t>{0x00};
  });
  ResolverOptions options;
  options.retry.max_attempts = 2;
  options.retry.breaker_threshold = 1;
  IterativeResolver r(&world_.net, world_.roots(), options);
  for (int i = 0; i < 4; ++i) {
    (void)r.QueryServer(garbler, Name::FromString("www.moe.gov.xx"),
                        RRType::kA);
  }
  EXPECT_EQ(r.open_circuits(), 0u);
  EXPECT_EQ(r.counters().breaker_skips, 0u);
}

TEST_F(ResolverTest, NegativeCacheShortCircuitsDeadSubtree) {
  ResolverOptions options;
  options.retry.max_attempts = 1;
  options.retry.breaker_threshold = 0;
  options.negative_cache_ttl_ms = 60000;
  IterativeResolver r(&world_.net, world_.roots(), options);
  const Name name = Name::FromString("www.lame.gov.xx");
  EXPECT_FALSE(r.Resolve(name, RRType::kA).ok());
  const uint64_t first_walk = r.counters().queries;
  EXPECT_FALSE(r.Resolve(name, RRType::kA).ok());
  EXPECT_GE(r.counters().negative_cache_hits, 1u);
  // The repeat walk is answered from the negative cache: no new traffic.
  EXPECT_EQ(r.counters().queries, first_walk);
  // Once the entry expires, the subtree is probed again.
  world_.net.clock().Advance(60001);
  EXPECT_FALSE(r.Resolve(name, RRType::kA).ok());
  EXPECT_GT(r.counters().queries, first_walk);
}

TEST_F(ResolverTest, QueryBudgetCapsTraffic) {
  ResolverOptions options;
  IterativeResolver r(&world_.net, world_.roots(), options);
  r.ArmQueryBudget(2);
  auto result = r.ResolveAddresses(Name::FromString("www.moe.gov.xx"));
  EXPECT_FALSE(result.ok());  // the walk needs more than two queries
  EXPECT_TRUE(r.BudgetExhausted());
  EXPECT_EQ(r.counters().queries, 2u);
  EXPECT_GE(r.counters().budget_denied, 1u);
  r.DisarmQueryBudget();
  auto again = r.ResolveAddresses(Name::FromString("www.moe.gov.xx"));
  EXPECT_TRUE(again.ok());
}

}  // namespace
}  // namespace govdns::core
