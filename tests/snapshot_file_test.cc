// Tests for the GVSN snapshot container (ckpt/snapshot_file.h) and the
// mmap-able PdnsSnapshot persistence built on it (pdns/snapshot_io.h):
// container round-trip and every rejection mode (wrong fingerprint/version,
// truncation, corrupt payloads, misaligned sections), a randomized oracle
// pinning the mapped snapshot's lookups to the owning snapshot's, and the
// mining byte-identity contract across substrates and worker counts.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <random>
#include <string>
#include <vector>

#include "ckpt/journal.h"
#include "ckpt/snapshot_file.h"
#include "core/mining.h"
#include "dns/name.h"
#include "pdns/db.h"
#include "pdns/snapshot_io.h"
#include "util/status.h"

namespace govdns {
namespace {

namespace fs = std::filesystem;
using dns::Name;
using dns::RRType;
using util::DayFromYmd;

constexpr uint64_t kFingerprint = 0xFEEDFACE12345678ull;

std::string TempDir(const std::string& tag) {
  std::string dir =
      (fs::temp_directory_path() / ("govdns_snapfile_" + tag)).string();
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void WriteFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << bytes;
}

// ---- container: round trip ------------------------------------------------

TEST(SnapshotContainerTest, RoundTripsSectionsAligned) {
  const std::string dir = TempDir("roundtrip");
  const std::string path = dir + "/snap.gvsn";
  ckpt::SnapshotFileWriter w(/*version=*/7, kFingerprint);
  w.AddSection(1, "alpha");
  w.AddSection(2, std::string(1000, 'x'));
  w.AddSection(9, "");  // empty sections are legal
  ASSERT_TRUE(w.WriteTo(dir, path).ok());

  for (auto validation :
       {ckpt::SnapshotValidation::kFast, ckpt::SnapshotValidation::kFull}) {
    auto view =
        ckpt::SnapshotFileView::Open(path, /*expected_version=*/7,
                                     kFingerprint, validation);
    ASSERT_TRUE(view.ok()) << view.status().ToString();
    EXPECT_EQ(view->section_count(), 3u);
    EXPECT_EQ(view->fingerprint(), kFingerprint);
    auto s1 = view->Section(1);
    auto s2 = view->Section(2);
    auto s9 = view->Section(9);
    ASSERT_TRUE(s1.ok() && s2.ok() && s9.ok());
    EXPECT_EQ(*s1, "alpha");
    EXPECT_EQ(*s2, std::string(1000, 'x'));
    EXPECT_EQ(*s9, "");
    EXPECT_FALSE(view->Section(42).ok());  // kNotFound, not UB
    EXPECT_EQ(view->Section(42).status().code(), util::ErrorCode::kNotFound);
  }

  // The read fallback serves identical bytes without mmap.
  auto fallback = ckpt::SnapshotFileView::OpenReadOnly(
      path, 7, kFingerprint, ckpt::SnapshotValidation::kFull);
  ASSERT_TRUE(fallback.ok());
  EXPECT_FALSE(fallback->mapped());
  EXPECT_EQ(*fallback->Section(1), "alpha");

  // Non-empty sections start at 64-byte-aligned offsets in the image.
  const std::string image = ReadFile(path);
  EXPECT_NE(image.find("alpha"), std::string::npos);
  EXPECT_EQ(image.find("alpha") % ckpt::kSnapshotSectionAlign, 0u);
  EXPECT_EQ(image.find(std::string(64, 'x')) % ckpt::kSnapshotSectionAlign,
            0u);
  fs::remove_all(dir);
}

// ---- container: rejection modes -------------------------------------------

struct ContainerFixture {
  std::string dir, path, image;

  explicit ContainerFixture(const std::string& tag) {
    dir = TempDir(tag);
    path = dir + "/snap.gvsn";
    ckpt::SnapshotFileWriter w(/*version=*/3, kFingerprint);
    w.AddSection(1, "abc");
    w.AddSection(2, std::string(100, 'y'));
    image = w.Assemble();
    WriteFile(path, image);
  }
  ~ContainerFixture() { fs::remove_all(dir); }

  util::Status Open(uint32_t version = 3, uint64_t fp = kFingerprint) const {
    return ckpt::SnapshotFileView::Open(path, version, fp,
                                        ckpt::SnapshotValidation::kFull)
        .status();
  }
};

TEST(SnapshotContainerTest, RejectsWrongFingerprint) {
  ContainerFixture f("fp");
  EXPECT_TRUE(f.Open().ok());
  auto status = f.Open(3, kFingerprint ^ 1);
  EXPECT_EQ(status.code(), util::ErrorCode::kDataLoss);
}

TEST(SnapshotContainerTest, RejectsWrongVersion) {
  ContainerFixture f("ver");
  auto status = f.Open(4);
  EXPECT_EQ(status.code(), util::ErrorCode::kDataLoss);
}

TEST(SnapshotContainerTest, RejectsMissingFileAsNotFound) {
  auto status = ckpt::SnapshotFileView::Open(
                    "/nonexistent/snap.gvsn", 3, kFingerprint,
                    ckpt::SnapshotValidation::kFast)
                    .status();
  EXPECT_EQ(status.code(), util::ErrorCode::kNotFound);
}

TEST(SnapshotContainerTest, RejectsTruncation) {
  ContainerFixture f("trunc");
  // Every truncation point must reject cleanly — header, table, payload.
  for (size_t keep : {size_t(0), size_t(10), size_t(31), size_t(40),
                      ckpt::kSnapshotHeaderSize + 2 * 32 + 5,
                      f.image.size() - 1}) {
    WriteFile(f.path, f.image.substr(0, keep));
    auto status = f.Open();
    EXPECT_EQ(status.code(), util::ErrorCode::kDataLoss) << "keep=" << keep;
  }
}

TEST(SnapshotContainerTest, RejectsCorruptMagicAndHeader) {
  ContainerFixture f("magic");
  std::string bad = f.image;
  bad[0] = 'X';  // magic
  WriteFile(f.path, bad);
  EXPECT_EQ(f.Open().code(), util::ErrorCode::kDataLoss);

  bad = f.image;
  bad[13] ^= 0x40;  // section count, caught by the header CRC
  WriteFile(f.path, bad);
  EXPECT_EQ(f.Open().code(), util::ErrorCode::kDataLoss);
}

TEST(SnapshotContainerTest, RejectsCorruptTable) {
  ContainerFixture f("table");
  std::string bad = f.image;
  bad[ckpt::kSnapshotHeaderSize + 8] ^= 0x01;  // section 1's offset
  WriteFile(f.path, bad);
  EXPECT_EQ(f.Open().code(), util::ErrorCode::kDataLoss);
}

TEST(SnapshotContainerTest, FullValidationCatchesPayloadCorruption) {
  ContainerFixture f("payload");
  std::string bad = f.image;
  bad[bad.size() - 1] ^= 0x01;  // inside the last section's payload
  WriteFile(f.path, bad);
  // kFast trusts payload bytes (O(1) open contract) ...
  EXPECT_TRUE(ckpt::SnapshotFileView::Open(f.path, 3, kFingerprint,
                                           ckpt::SnapshotValidation::kFast)
                  .ok());
  // ... kFull walks every payload CRC and rejects.
  EXPECT_EQ(f.Open().code(), util::ErrorCode::kDataLoss);
}

// Re-stamps the table CRC (header offset 24) and header CRC (offset 28)
// after tampering with table bytes, so the tampered field itself — not a
// CRC mismatch — must trigger the rejection.
void RestampCrcs(std::string* image, size_t table_bytes) {
  const uint32_t table_crc =
      ckpt::Crc32({image->data() + ckpt::kSnapshotHeaderSize, table_bytes});
  std::memcpy(image->data() + 24, &table_crc, 4);
  const uint32_t header_crc = ckpt::Crc32({image->data(), 28});
  std::memcpy(image->data() + 28, &header_crc, 4);
}

TEST(SnapshotContainerTest, RejectsMisalignedSectionOffset) {
  ContainerFixture f("misalign");
  std::string bad = f.image;
  // Section 1 ("abc", 3 bytes at offset 96 with 61 bytes of padding after):
  // shift its offset by 8 — still in bounds, no longer 64-byte aligned.
  uint64_t off = 0;
  std::memcpy(&off, bad.data() + ckpt::kSnapshotHeaderSize + 8, 8);
  off += 8;
  std::memcpy(bad.data() + ckpt::kSnapshotHeaderSize + 8, &off, 8);
  RestampCrcs(&bad, 2 * ckpt::kSnapshotTableEntrySize);
  WriteFile(f.path, bad);
  auto status = ckpt::SnapshotFileView::Open(f.path, 3, kFingerprint,
                                             ckpt::SnapshotValidation::kFast)
                    .status();
  EXPECT_EQ(status.code(), util::ErrorCode::kDataLoss);
}

TEST(SnapshotContainerTest, RejectsOutOfBoundsSection) {
  ContainerFixture f("oob");
  std::string bad = f.image;
  uint64_t len = 1 << 20;  // far past EOF
  std::memcpy(bad.data() + ckpt::kSnapshotHeaderSize + 16, &len, 8);
  RestampCrcs(&bad, 2 * ckpt::kSnapshotTableEntrySize);
  WriteFile(f.path, bad);
  auto status = ckpt::SnapshotFileView::Open(f.path, 3, kFingerprint,
                                             ckpt::SnapshotValidation::kFast)
                    .status();
  EXPECT_EQ(status.code(), util::ErrorCode::kDataLoss);
}

TEST(SnapshotContainerTest, RejectsDuplicateSectionIds) {
  ContainerFixture f("dup");
  std::string bad = f.image;
  // Rewrite section 2's id to 1.
  const uint32_t one = 1;
  std::memcpy(bad.data() + ckpt::kSnapshotHeaderSize +
                  ckpt::kSnapshotTableEntrySize,
              &one, 4);
  RestampCrcs(&bad, 2 * ckpt::kSnapshotTableEntrySize);
  WriteFile(f.path, bad);
  auto status = ckpt::SnapshotFileView::Open(f.path, 3, kFingerprint,
                                             ckpt::SnapshotValidation::kFast)
                    .status();
  EXPECT_EQ(status.code(), util::ErrorCode::kDataLoss);
}

// ---- pdns snapshot: randomized oracle -------------------------------------

// A deterministic pseudo-random government namespace: a few hundred owners
// under two ccTLD seeds with NS/A/CNAME records across the study years.
pdns::PdnsDatabase RandomDatabase(uint32_t seed) {
  std::mt19937 rng(seed);
  pdns::PdnsDatabase db(/*merge_gap_days=*/30);
  const std::vector<std::string> tlds = {"gov.xx", "gov.yy"};
  const std::vector<std::string> hosts = {"www",  "mail", "portal", "moe",
                                          "mof",  "city", "health", "tax",
                                          "stat", "reg"};
  const std::vector<std::string> ns_pool = {
      "ns1.provider-a.net", "ns2.provider-a.net", "ns1.provider-b.org",
      "dns.local.gov.xx",   "dns.local.gov.yy"};
  std::uniform_int_distribution<int> tld_d(0, int(tlds.size()) - 1);
  std::uniform_int_distribution<int> host_d(0, int(hosts.size()) - 1);
  std::uniform_int_distribution<int> depth_d(0, 2);
  std::uniform_int_distribution<int> ns_d(0, int(ns_pool.size()) - 1);
  std::uniform_int_distribution<int> year_d(2011, 2020);
  std::uniform_int_distribution<int> day_d(1, 27);
  std::uniform_int_distribution<int> span_d(0, 400);
  std::uniform_int_distribution<int> type_d(0, 3);

  for (int i = 0; i < 400; ++i) {
    Name owner = Name::FromString(tlds[tld_d(rng)]);
    const int depth = depth_d(rng);
    for (int d = 0; d < depth; ++d) owner = owner.Child(hosts[host_d(rng)]);
    const auto first = DayFromYmd(year_d(rng), 1 + (i % 12), day_d(rng));
    const util::DayInterval seen{first, first + span_d(rng)};
    switch (type_d(rng)) {
      case 0:
      case 1:  // NS-heavy, like the real corpus
        db.ObserveInterval(owner, RRType::kNS, ns_pool[ns_d(rng)], seen);
        break;
      case 2:
        db.ObserveInterval(owner, RRType::kA, "192.0.2." + std::to_string(i % 250),
                           seen);
        break;
      default:
        db.ObserveInterval(owner, RRType::kCNAME, "cdn.provider-a.net", seen);
        break;
    }
  }
  return db;
}

struct PdnsFileFixture {
  std::string dir, path;
  pdns::PdnsSnapshot frozen;

  explicit PdnsFileFixture(const std::string& tag, uint32_t seed = 1234) {
    dir = TempDir(tag);
    path = dir + "/pdns.gvsn";
    frozen = RandomDatabase(seed).Freeze();
    auto status =
        pdns::WritePdnsSnapshotFile(frozen, kFingerprint, dir, path);
    GOVDNS_CHECK(status.ok());
  }
  ~PdnsFileFixture() { fs::remove_all(dir); }
};

TEST(SnapshotFileTest, MappedLookupsMatchOwningOracle) {
  PdnsFileFixture f("oracle");
  auto mapped = pdns::MappedPdnsSnapshot::Open(
      f.path, kFingerprint, ckpt::SnapshotValidation::kFull);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  ASSERT_EQ(mapped->name_count(), f.frozen.name_count());
  ASSERT_EQ(mapped->entry_count(), f.frozen.entry_count());

  // Every name materializes identically (and so does its canonical key).
  for (size_t i = 0; i < mapped->name_count(); ++i) {
    EXPECT_EQ(mapped->name(i), f.frozen.name(i)) << "name " << i;
    EXPECT_EQ(mapped->name_key(i), f.frozen.name(i).CanonicalKey());
  }

  // Randomized suffix probes: existing owners, their parents, cousins that
  // exist nowhere, the two seeds, and the root.
  std::mt19937 rng(99);
  std::uniform_int_distribution<size_t> pick(0, f.frozen.name_count() - 1);
  std::vector<Name> probes = {Name::Root(), Name::FromString("gov.xx"),
                              Name::FromString("gov.yy"),
                              Name::FromString("gov.zz"),
                              Name::FromString("xx")};
  for (int i = 0; i < 200; ++i) {
    Name n = f.frozen.name(pick(rng));
    probes.push_back(n);
    if (!n.IsRoot()) probes.push_back(n.Child("nonexistent"));
  }
  std::vector<pdns::Query> queries(3);
  queries[1].type = RRType::kNS;
  queries[2].type = RRType::kNS;
  queries[2].min_seen_gap_days = 7;
  queries[2].window =
      util::DayInterval{DayFromYmd(2014, 1, 1), DayFromYmd(2017, 12, 31)};

  for (const Name& probe : probes) {
    EXPECT_EQ(mapped->WildcardNameRange(probe),
              f.frozen.WildcardNameRange(probe))
        << probe.ToString();
    for (const auto& q : queries) {
      EXPECT_EQ(mapped->WildcardSearch(probe, q),
                f.frozen.WildcardSearch(probe, q))
          << probe.ToString();
    }
  }
}

TEST(SnapshotFileTest, ParseLoadReconstructsTheFrozenSnapshot) {
  PdnsFileFixture f("parse");
  auto owning = pdns::ReadPdnsSnapshotFileOwning(f.path, kFingerprint);
  ASSERT_TRUE(owning.ok()) << owning.status().ToString();
  ASSERT_EQ(owning->name_count(), f.frozen.name_count());
  ASSERT_EQ(owning->entry_count(), f.frozen.entry_count());
  for (size_t i = 0; i < owning->name_count(); ++i) {
    EXPECT_EQ(owning->name(i), f.frozen.name(i));
    const auto got = owning->entries(i);
    const auto want = f.frozen.entries(i);
    ASSERT_EQ(got.size(), want.size());
    for (size_t e = 0; e < got.size(); ++e) EXPECT_EQ(got[e], want[e]);
  }
}

TEST(SnapshotFileTest, RejectsWrongFingerprintTruncationAndCorruption) {
  PdnsFileFixture f("reject");
  EXPECT_FALSE(pdns::MappedPdnsSnapshot::Open(f.path, kFingerprint ^ 1).ok());
  EXPECT_FALSE(
      pdns::ReadPdnsSnapshotFileOwning(f.path, kFingerprint ^ 1).ok());

  const std::string image = ReadFile(f.path);
  const std::string tampered_path = f.dir + "/tampered.gvsn";
  for (size_t keep :
       {size_t(0), size_t(16), image.size() / 2, image.size() - 3}) {
    WriteFile(tampered_path, image.substr(0, keep));
    EXPECT_FALSE(
        pdns::MappedPdnsSnapshot::Open(tampered_path, kFingerprint).ok())
        << "keep=" << keep;
    EXPECT_FALSE(
        pdns::ReadPdnsSnapshotFileOwning(tampered_path, kFingerprint).ok());
  }

  // Flip one byte inside every section payload (extents read straight from
  // the section table; inter-section padding is deliberately excluded — no
  // CRC covers it). The parse-load (kFull) path must reject every one.
  std::mt19937 rng(7);
  uint32_t section_count = 0;
  std::memcpy(&section_count, image.data() + 12, 4);
  ASSERT_EQ(section_count, 6u);
  for (uint32_t i = 0; i < section_count; ++i) {
    const char* entry =
        image.data() + ckpt::kSnapshotHeaderSize + i * ckpt::kSnapshotTableEntrySize;
    uint64_t off = 0, len = 0;
    std::memcpy(&off, entry + 8, 8);
    std::memcpy(&len, entry + 16, 8);
    if (len == 0) continue;
    std::uniform_int_distribution<uint64_t> pos_d(off, off + len - 1);
    std::string bad = image;
    bad[pos_d(rng)] ^= 0x20;
    WriteFile(tampered_path, bad);
    EXPECT_FALSE(
        pdns::ReadPdnsSnapshotFileOwning(tampered_path, kFingerprint).ok())
        << "section " << i;
  }
}

// ---- pdns snapshot: mining identity ---------------------------------------

TEST(SnapshotFileTest, MiningIsByteIdenticalAcrossSubstratesAndWorkers) {
  PdnsFileFixture f("mine");
  pdns::PdnsDatabase db = RandomDatabase(1234);  // same seed as the fixture
  const std::vector<core::SeedDomain> seeds = {
      {0, Name::FromString("gov.xx"), core::SeedVerification::kRegistryPolicy,
       false},
      {1, Name::FromString("gov.yy"), core::SeedVerification::kRegistryPolicy,
       false}};
  core::MiningConfig config;

  core::PdnsMiner db_miner(&db, config);
  const auto baseline = db_miner.Mine(seeds);
  EXPECT_GT(baseline.domains.size(), 0u);

  auto owning = pdns::ReadPdnsSnapshotFileOwning(f.path, kFingerprint);
  auto mapped = pdns::MappedPdnsSnapshot::Open(
      f.path, kFingerprint, ckpt::SnapshotValidation::kFull);
  ASSERT_TRUE(owning.ok() && mapped.ok());

  for (int workers : {1, 4}) {
    core::MinerOptions opts;
    opts.workers = workers;
    core::PdnsMiner miner(config, opts);
    EXPECT_EQ(miner.MineSnapshot(f.frozen, seeds), baseline)
        << "frozen w=" << workers;
    EXPECT_EQ(miner.MineSnapshot(*owning, seeds), baseline)
        << "owning w=" << workers;
    EXPECT_EQ(miner.MineSnapshot(*mapped, seeds), baseline)
        << "mapped w=" << workers;
  }
}

}  // namespace
}  // namespace govdns
