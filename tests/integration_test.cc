// End-to-end integration: generate a world, run the whole measurement
// pipeline against it through the network only, and check that the
// analyses recover the planted ground truth within sampling tolerances.
#include <gtest/gtest.h>

#include "core/analysis.h"
#include "core/providers.h"
#include "core/study.h"
#include "worldgen/adapter.h"

namespace govdns {
namespace {

class IntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    worldgen::WorldConfig config;
    config.scale = 0.04;
    world_ = worldgen::BuildWorld(config).release();
    bound_ = new worldgen::BoundStudy(worldgen::MakeStudy(*world_));
    bound_->study->RunAll();
  }
  static void TearDownTestSuite() {
    delete bound_;
    delete world_;
  }

  static core::Study& study() { return *bound_->study; }
  static worldgen::World* world_;
  static worldgen::BoundStudy* bound_;
};

worldgen::World* IntegrationTest::world_ = nullptr;
worldgen::BoundStudy* IntegrationTest::bound_ = nullptr;

TEST_F(IntegrationTest, MiningRecoversPlantedDomains) {
  // Every mined 2020 domain exists in ground truth, and the 2020 count is
  // close to the number of planted domains visible that year.
  const auto& dataset = study().mined();
  int64_t truth_2020 = 0;
  for (const auto& d : world_->domains()) {
    if (d.Alive(util::DayFromYmd(2020, 7, 1))) ++truth_2020;
  }
  auto counts = core::CountPerYear(dataset);
  double measured = static_cast<double>(counts.back().domains);
  EXPECT_GT(measured, truth_2020 * 0.9);
  EXPECT_LT(measured, truth_2020 * 1.25);

  int spot = 0;
  for (const auto& domain : dataset.domains) {
    // Flash/disposable names are PDNS noise by design, not planted domains.
    if (domain.disposable) continue;
    if (++spot > 300) break;
    EXPECT_NE(world_->FindDomain(domain.name), nullptr)
        << domain.name.ToString();
  }
}

TEST_F(IntegrationTest, QueryListMatchesGroundTruthFlags) {
  auto list = core::PdnsMiner::ActiveQueryList(study().mined());
  std::set<dns::Name> queried(list.begin(), list.end());
  int64_t truth_in_list = 0;
  for (const auto& d : world_->domains()) {
    if (d.in_query_list) ++truth_in_list;
  }
  EXPECT_NEAR(static_cast<double>(queried.size()),
              static_cast<double>(truth_in_list), truth_in_list * 0.05);
  // No disposable domain slipped through.
  for (const auto& name : list) {
    const auto* truth = world_->FindDomain(name);
    ASSERT_NE(truth, nullptr);
    EXPECT_FALSE(truth->disposable_excluded) << name.ToString();
  }
}

TEST_F(IntegrationTest, FatesAreMeasuredCorrectly) {
  const auto& dataset = study().active();
  int64_t agree = 0, total = 0;
  for (size_t i = 0; i < dataset.results.size(); ++i) {
    const auto& r = dataset.results[i];
    const auto* truth = world_->FindDomain(r.domain);
    ASSERT_NE(truth, nullptr);
    ++total;
    bool ok = true;
    switch (truth->fate) {
      case worldgen::DomainFate::kActive:
        ok = r.parent_has_records && r.child_any_authoritative;
        break;
      case worldgen::DomainFate::kStaleDelegation:
        ok = r.parent_has_records && !r.child_any_authoritative;
        // Parked references answer through the parking service; they are
        // planned as active though, so no overlap here.
        break;
      case worldgen::DomainFate::kRemoved:
        ok = r.parent_responded && !r.parent_has_records;
        break;
      case worldgen::DomainFate::kDeadParent:
        ok = !r.parent_responded;
        break;
    }
    agree += ok;
  }
  // Transient loss and shared-NS edge cases cause a little disagreement.
  EXPECT_GT(static_cast<double>(agree) / total, 0.97)
      << agree << "/" << total;
}

TEST_F(IntegrationTest, ReplicationMatchesPaperShape) {
  auto summary = core::AnalyzeReplication(study().active());
  EXPECT_GT(summary.pct_at_least_two, 0.95);   // paper: 98.4%
  EXPECT_GT(summary.d1ns_stale_pct, 0.40);     // paper: 60.1%
  EXPECT_LT(summary.d1ns_stale_pct, 0.80);
}

TEST_F(IntegrationTest, DelegationDefectsMatchPaperShape) {
  auto summary = core::AnalyzeDelegations(study().active());
  double n = static_cast<double>(summary.domains_considered);
  double partial = summary.partially_defective / n;
  double full = summary.fully_defective / n;
  EXPECT_GT(partial, 0.15);  // paper: 25.4%
  EXPECT_LT(partial, 0.35);
  EXPECT_GT(full, 0.02);     // paper: ~4%
  EXPECT_LT(full, 0.10);
  EXPECT_GT(partial, full);  // partial dominates, as in the paper
}

TEST_F(IntegrationTest, ConsistencyMatchesPaperShape) {
  auto summary = core::AnalyzeConsistency(study().active());
  EXPECT_GT(summary.pct_equal, 0.68);  // paper: 76.8%
  EXPECT_LT(summary.pct_equal, 0.88);
  // Second-level domains are much more consistent than deeper ones.
  auto it2 = summary.by_level.find(2);
  if (it2 != summary.by_level.end() && it2->second.second >= 20) {
    double level2 = double(it2->second.first) / it2->second.second;
    EXPECT_GT(level2, summary.pct_equal);
  }
  EXPECT_GT(summary.pct_disagree_with_partial_defect, 0.25);  // paper: 40.9%
}

TEST_F(IntegrationTest, MeasuredConsistencyClassesMatchPlans) {
  // For active domains with no extra lame-ness, the measured class should
  // match the planted plan most of the time.
  const auto& dataset = study().active();
  int64_t agree = 0, total = 0;
  for (size_t i = 0; i < dataset.results.size(); ++i) {
    const auto& r = dataset.results[i];
    const auto* truth = world_->FindDomain(r.domain);
    if (truth == nullptr || truth->fate != worldgen::DomainFate::kActive) {
      continue;
    }
    if (truth->partial_lame || truth->typo_parent_ns ||
        truth->relative_name_truncation || truth->parked_ns_ref) {
      continue;
    }
    auto klass = core::ClassifyConsistency(r);
    if (klass == core::ConsistencyClass::kNotComparable) continue;
    ++total;
    using CP = worldgen::ConsistencyPlan;
    using CC = core::ConsistencyClass;
    CC expected = CC::kEqual;
    switch (truth->consistency) {
      case CP::kEqual: expected = CC::kEqual; break;
      case CP::kChildSuperset: expected = CC::kChildSuperset; break;
      case CP::kParentSuperset: expected = CC::kParentSuperset; break;
      case CP::kOverlapNeither: expected = CC::kOverlapNeither; break;
      case CP::kDisjointSharedIp: expected = CC::kDisjointSharedIp; break;
      case CP::kDisjoint: expected = CC::kDisjoint; break;
    }
    agree += klass == expected;
  }
  ASSERT_GT(total, 500);
  // Central-hosted domains mask the parent view (same servers), so perfect
  // agreement is impossible; the bulk must still match.
  EXPECT_GT(static_cast<double>(agree) / total, 0.80);
}

TEST_F(IntegrationTest, HijackPoolMatchesGroundTruth) {
  auto summary = core::AnalyzeHijackRisk(study().active(), world_->psl(),
                                         world_->registrar_client());
  // Every planted dangling-available domain should surface, give or take
  // measurement noise; nothing wildly more.
  int64_t planted = 0;
  for (const auto& d : world_->domains()) {
    planted += d.in_query_list && d.dangling_available_ns;
  }
  EXPECT_GT(summary.affected_domains, planted / 2);
  EXPECT_GT(summary.available_ns_domains, 0);
  // §IV-D parked cases.
  int64_t parked_refs = 0;
  for (const auto& d : world_->domains()) parked_refs += d.parked_ns_ref;
  if (parked_refs > 0) {
    EXPECT_GT(summary.dangling_available_ns, 0);
    EXPECT_GE(summary.dangling_domains, summary.dangling_available_ns);
  }
  for (double price : summary.dangling_prices_usd) {
    EXPECT_GE(price, 300.0);
  }
}

TEST_F(IntegrationTest, ProviderTrendsMatchCalibration) {
  core::ProviderMatcher matcher(core::DefaultProviderRules());
  core::ProviderAnalyzer analyzer(&matcher, worldgen::MakeCountryMetas());
  auto t2011 = analyzer.Analyze(study().mined(), 2011);
  auto t2020 = analyzer.Analyze(study().mined(), 2020);
  auto row = [](const core::ProviderYearTable& t, const char* key) {
    for (const auto& r : t.rows) {
      if (r.group_key == key) return r.domains;
    }
    return int64_t{0};
  };
  // The centralization story: hyperscalers explode between 2011 and 2020.
  EXPECT_GT(row(t2020, "cloudflare.com"), 20 * std::max<int64_t>(
      row(t2011, "cloudflare.com"), 1));
  EXPECT_GT(row(t2020, "AWS DNS"), 50);
  EXPECT_EQ(row(t2011, "Azure DNS"), 0);
  EXPECT_GT(row(t2020, "Azure DNS"), 10);
  // And the paper's headline: max countries grows strongly.
  EXPECT_GT(core::ProviderAnalyzer::MaxCountriesAnyProvider(t2020),
            core::ProviderAnalyzer::MaxCountriesAnyProvider(t2011));
}

TEST_F(IntegrationTest, DeterministicEndToEnd) {
  // A second, independent run over an identical world must produce the
  // same headline numbers.
  worldgen::WorldConfig config;
  config.scale = 0.04;
  auto world2 = worldgen::BuildWorld(config);
  auto bound2 = worldgen::MakeStudy(*world2);
  bound2.study->RunAll();
  auto a = core::AnalyzeDelegations(study().active());
  auto b = core::AnalyzeDelegations(bound2.study->active());
  EXPECT_EQ(a.domains_considered, b.domains_considered);
  EXPECT_EQ(a.partially_defective, b.partially_defective);
  EXPECT_EQ(a.fully_defective, b.fully_defective);
}

}  // namespace
}  // namespace govdns
