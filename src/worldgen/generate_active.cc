// World generation, phase 3: measurement-time planning (fates,
// inconsistency plans, hijack-risk seeding) and the live DNS infrastructure
// the measurement client will query in "April 2021".
#include <algorithm>
#include <cmath>

#include "util/civil_time.h"
#include "worldgen/builder.h"

namespace govdns::worldgen {

namespace {

constexpr util::CivilDay WindowStart() { return 18262; }  // 2020-01-01

// Fuses the first two labels of a hostname: the paper's
// "pns12cloudns.net for pns12.cloudns.net" zone-file typo.
dns::Name TypoOf(const dns::Name& host) {
  if (host.LabelCount() < 2) return host;
  std::vector<std::string> labels;
  labels.push_back(host.Label(0) + host.Label(1));
  for (size_t i = 2; i < host.LabelCount(); ++i) {
    labels.push_back(host.Label(i));
  }
  auto name = dns::Name::FromLabels(std::move(labels));
  return name.ok() ? *std::move(name) : host;
}

}  // namespace

// ---------------------------------------------------------------------------
// Risk-country selection (must run before lifecycles: lingering customers
// of dead companies are only allowed in these countries).
// ---------------------------------------------------------------------------

void World::Builder::SelectRiskCountries() {
  auto countries = Countries();
  const int n = static_cast<int>(countries.size());
  util::Rng r = rng.Fork("risk-countries");

  // Weighted sampling without replacement, by 2020 volume.
  std::vector<int> order(n);
  for (int i = 0; i < n; ++i) order[i] = i;
  std::vector<double> weights(n);
  for (int i = 0; i < n; ++i) weights[i] = targets[i][year_count - 1] + 1.0;
  int want = std::min(cfg.available_ns_domain_countries, n);
  while (static_cast<int>(available_ns_countries.size()) < want) {
    size_t k = r.WeightedIndex(weights);
    if (weights[k] > 0.0) {
      available_ns_countries.insert(static_cast<int>(k));
      weights[k] = 0.0;
    }
  }
  // The parked (aftermarket) cases live in a few of those countries.
  std::vector<int> pool(available_ns_countries.begin(),
                        available_ns_countries.end());
  r.Shuffle(pool);
  for (int i = 0; i < cfg.parked_ns_countries &&
                  i < static_cast<int>(pool.size());
       ++i) {
    parked_countries.insert(pool[i]);
  }
}

// ---------------------------------------------------------------------------
// Measurement-time planning
// ---------------------------------------------------------------------------

void World::Builder::PlanMeasurementState() {
  auto countries = Countries();
  const int n = static_cast<int>(countries.size());
  util::Rng r = rng.Fork("plan");
  const util::CivilDay window_start = WindowStart();
  const util::CivilDay db_end = util::DayFromYmd(2021, 2, 15);

  // Which intermediate zones are dead.
  intermediate_dead.resize(n);
  for (int c = 0; c < n; ++c) {
    const CountrySpec& spec = countries[c];
    CountryRuntime& rt = w.country_rt_[c];
    size_t n_inter = rt.intermediate_zones.size();
    intermediate_dead[c].assign(n_inter, 0);
    size_t dead = static_cast<size_t>(
        std::lround(n_inter * spec.dead_intermediate_share));
    std::vector<size_t> order(n_inter);
    for (size_t k = 0; k < n_inter; ++k) order[k] = k;
    r.Shuffle(order);
    for (size_t k = 0; k < dead; ++k) {
      intermediate_dead[c][order[k]] = 1;
      rt.dead_intermediate_zones.push_back(rt.intermediate_zones[order[k]]);
    }
  }

  // Per-domain fate, consistency, and lame-ness plans.
  for (size_t i = 0; i < w.domains_.size(); ++i) {
    DomainTruth& d = w.domains_[i];
    DomainGenState& gs = gen_state[i];
    const CountrySpec& spec = countries[d.country];

    util::CivilDay visible_until = gs.lingering_on_dead_company
                                       ? db_end
                                       : std::min(d.death, db_end);
    if (visible_until < window_start || d.birth > db_end) continue;
    if (d.disposable_excluded) continue;
    d.in_query_list = true;

    if (gs.is_apex) {
      d.fate = DomainFate::kActive;
      d.consistency = ConsistencyPlan::kEqual;
      continue;
    }
    if (gs.intermediate >= 0 && intermediate_dead[d.country][gs.intermediate]) {
      d.fate = DomainFate::kDeadParent;
      continue;
    }
    if (gs.lingering_on_dead_company) {
      d.fate = DomainFate::kStaleDelegation;
      d.dangling_available_ns = true;
      continue;
    }

    const bool naturally_dead = d.death != kAliveForever;
    if (naturally_dead) {
      // Registries clean up most deleted domains; a minority of
      // delegations outlive their zones.
      d.fate = r.Bernoulli(0.88) ? DomainFate::kRemoved
                                : DomainFate::kStaleDelegation;
      continue;
    }

    double p_stale = gs.is_single_ns
                         ? cfg.stale_rate_1ns + spec.extra_stale_rate
                         : cfg.stale_rate + spec.extra_stale_rate * 0.08;
    if (r.Bernoulli(std::min(0.95, p_stale))) {
      d.fate = DomainFate::kStaleDelegation;
      // The domain actually died recently; only the delegation survives.
      // Never before its final deployment change, though.
      d.death = util::DayFromYmd(2020, 6, 1) +
                static_cast<util::CivilDay>(r.UniformU64(270));
      if (!d.epochs.empty()) {
        d.death = std::max(d.death, d.epochs.back().days.first);
        d.epochs.back().days.last = d.death;
      }
      continue;
    }
    if (r.Bernoulli(cfg.removed_fraction)) {
      d.fate = DomainFate::kRemoved;
      continue;
    }

    // Safety net: a domain still riding a provider or company that no
    // longer exists at measurement time is a stale delegation, whatever the
    // sampling above said (this catches customers who signed up with a host
    // during its final year).
    if (!d.epochs.empty()) {
      const NsEpoch& last = d.epochs.back();
      bool host_gone = false;
      if (last.national_company >= 0) {
        const CompanyRuntime& crt = companies[last.national_company];
        const NationalCompany& comp =
            w.country_rt_[crt.country].companies[crt.index_in_country];
        host_gone = comp.last_year != 0;
      } else if (last.provider >= 0) {
        const ProviderSpec& pspec = *providers[last.provider].spec;
        host_gone = pspec.end_year != 0 && pspec.end_year <= cfg.last_year;
      }
      if (host_gone) {
        d.fate = DomainFate::kStaleDelegation;
        size_t linger_cap = 1 + (last.national_company % 2);
        if (available_ns_countries.contains(d.country) &&
            last.national_company >= 0 &&
            companies[last.national_company].lingering.size() < linger_cap) {
          d.dangling_available_ns = true;
          companies[last.national_company].lingering.push_back(
              static_cast<int>(i));
        }
        continue;
      }
    }

    d.fate = DomainFate::kActive;

    // Parent/child inconsistency plan (Fig. 13); second-level domains are
    // far more consistent.
    double m = d.level <= 2 ? cfg.second_level_inconsistency_multiplier : 1.0;
    double u = r.UniformDouble();
    double a = cfg.p_child_superset * m;
    double b = a + cfg.p_parent_superset * m;
    double cthr = b + cfg.p_overlap_neither * m;
    double e = cthr + cfg.p_disjoint * m;
    if (u < a) {
      d.consistency = ConsistencyPlan::kChildSuperset;
    } else if (u < b) {
      d.consistency = ConsistencyPlan::kParentSuperset;
    } else if (u < cthr) {
      d.consistency = ConsistencyPlan::kOverlapNeither;
    } else if (u < e) {
      d.consistency = r.Bernoulli(cfg.p_disjoint_ip_overlap)
                          ? ConsistencyPlan::kDisjointSharedIp
                          : ConsistencyPlan::kDisjoint;
    } else {
      d.consistency = ConsistencyPlan::kEqual;
      if (r.Bernoulli(cfg.p_relative_name_truncation)) {
        d.relative_name_truncation = true;
      }
    }

    // Lame-ness flavours.
    if (!gs.is_single_ns && r.Bernoulli(spec.shared_dead_ns_rate) &&
        w.country_rt_[d.country].shared_dead_ns.has_value()) {
      d.partial_lame = true;  // the shared dead host is added at build time
    }
    if (available_ns_countries.contains(d.country)) {
      // Typos overwhelmingly hit hand-maintained zone files (national or
      // self-hosted NS); big-provider names are typo'd only rarely, which
      // is what keeps cross-country d_ns collisions to a handful.
      double typo_rate = cfg.typo_ns_rate;
      if (!d.epochs.empty() &&
          d.epochs.back().style == DeployStyle::kGlobal) {
        typo_rate *= 0.15;
      }
      if (r.Bernoulli(typo_rate)) {
        d.typo_parent_ns = true;
        d.dangling_available_ns = true;
      }
    }
  }

  // Aftermarket parking (§IV-D): in each parked country, pick dead
  // companies (with their lingering customers detached) and park them;
  // wire `parked_ns_customer_domains` active domains to reference them.
  int companies_needed = cfg.parked_ns_domains;
  int customers_per = std::max(
      1, cfg.parked_ns_customer_domains / std::max(1, cfg.parked_ns_domains));
  // Spread the parked cases across the parked countries (the paper found
  // them in 7): at most ceil(needed / countries) per country on the first
  // pass, topping up on later passes if some country lacked candidates.
  int per_country_cap =
      (companies_needed + std::max<int>(1, parked_countries.size()) - 1) /
      std::max<int>(1, parked_countries.size());
  for (int sweep = 0; sweep < 3 && companies_needed > 0; ++sweep) {
    if (sweep > 0) per_country_cap = companies_needed;  // top-up sweeps
  for (int c : parked_countries) {
    if (companies_needed <= 0) break;
    int taken_here = 0;
    for (int ci : country_company_ids[c]) {
      if (companies_needed <= 0 || taken_here >= per_country_cap) break;
      CompanyRuntime& crt = companies[ci];
      NationalCompany& comp =
          w.country_rt_[c].companies[crt.index_in_country];
      if (comp.last_year == 0) continue;   // still alive
      if (comp.dead_and_parked) continue;  // already taken in a prior sweep
      int wired = 0;
      // Its abandoned customers *are* the §IV-D references: the parking
      // service answers for them, so they look responsive-but-inconsistent
      // rather than lame.
      for (int id : crt.lingering) {
        DomainTruth& d = w.domains_[id];
        // Only convert reachable zombies; one under a dead intermediate
        // zone stays unreachable no matter who answers for its NS.
        if (!d.in_query_list || d.fate != DomainFate::kStaleDelegation) {
          continue;
        }
        d.fate = DomainFate::kActive;
        d.dangling_available_ns = false;
        d.parked_ns_ref = true;
        d.consistency = ConsistencyPlan::kEqual;
        parked_assignments[id] = ci;
        ++wired;
      }
      crt.lingering.clear();
      // Top up with active domains if the company had no zombies.
      for (int id : country_active[c]) {
        if (wired >= customers_per) break;
        DomainTruth& d = w.domains_[id];
        if (!d.in_query_list || d.fate != DomainFate::kActive) continue;
        if (gen_state[id].is_apex || d.parked_ns_ref) continue;
        d.parked_ns_ref = true;
        parked_assignments[id] = ci;
        ++wired;
      }
      if (wired == 0) continue;  // nothing references it; leave it alone
      comp.dead_and_parked = true;
      comp.dead_and_available = false;
      --companies_needed;
      ++taken_here;
    }
  }
  }

  // Mark dead companies with lingering customers as available-to-register.
  for (CompanyRuntime& crt : companies) {
    NationalCompany& comp =
        w.country_rt_[crt.country].companies[crt.index_in_country];
    if (comp.last_year != 0 && !crt.lingering.empty()) {
      comp.dead_and_available = true;
    }
  }
}

// ---------------------------------------------------------------------------
// Active infrastructure
// ---------------------------------------------------------------------------

void World::Builder::BuildActiveInfrastructure() {
  auto countries = Countries();
  const int n = static_cast<int>(countries.size());
  util::Rng r = rng.Fork("active");

  // Country-level: portal addresses, live/dead intermediate zones.
  for (int c = 0; c < n; ++c) {
    CountryRuntime& rt = w.country_rt_[c];
    zone::Zone* suffix_zone = FindZone(rt.suffix);
    GOVDNS_CHECK(suffix_zone != nullptr);
    const KnowledgeBaseEntry& kb = w.knowledge_base_[c];
    if (kb.link_resolves) {
      suffix_zone->Add(
          dns::MakeA(rt.portal_fqdn, country_pools[c].Take(0, false), 3600));
    }
    zone::AuthServer* central = nullptr;
    if (!rt.central_ns.empty()) {
      auto it = hosts.find(rt.central_ns[0]);
      if (it != hosts.end()) central = it->second.server;
    }
    for (size_t k = 0; k < rt.intermediate_zones.size(); ++k) {
      const dns::Name& inter = rt.intermediate_zones[k];
      if (intermediate_dead[c][k]) {
        // Delegation to hosts that no longer exist: unresolvable, so the
        // whole subtree has an unreachable parent.
        Delegate(suffix_zone, inter,
                 {inter.Child("ns1"), inter.Child("ns2")});
        continue;
      }
      auto z = NewZone(inter);
      for (const dns::Name& ns : rt.central_ns) {
        z->Add(dns::MakeNs(inter, ns, 86400));
      }
      if (!rt.central_ns.empty()) {
        z->Add(dns::MakeSoa(inter, rt.central_ns[0],
                            rt.suffix.Child("hostmaster"), 1));
      }
      Delegate(suffix_zone, inter, rt.central_ns);
      if (central != nullptr) central->AddZone(z);
    }
  }

  // Parked companies: TLD delegation handed to the parking service, premium
  // aftermarket price at the registrar.
  for (const CompanyRuntime& crt : companies) {
    const NationalCompany& comp =
        w.country_rt_[crt.country].companies[crt.index_in_country];
    if (!comp.dead_and_parked) continue;
    zone::Zone* tld = FindZone(comp.domain.Suffix(1));
    GOVDNS_CHECK(tld != nullptr);
    Delegate(tld, comp.domain, {parking_ns1, parking_ns2});
    w.registrar_.SetPremiumPrice(comp.domain,
                                 300.0 + r.UniformDouble() * 4700.0);
  }

  // Per-domain infrastructure.
  for (size_t i = 0; i < w.domains_.size(); ++i) {
    DomainTruth& d = w.domains_[i];
    const DomainGenState& gs = gen_state[i];
    if (!d.in_query_list || gs.is_apex) continue;
    if (d.fate == DomainFate::kRemoved || d.fate == DomainFate::kDeadParent) {
      continue;
    }
    const CountrySpec& spec = countries[d.country];
    CountryRuntime& rt = w.country_rt_[d.country];
    GOVDNS_CHECK(!d.epochs.empty());
    const NsEpoch& last = d.epochs.back();

    dns::Name parent_origin =
        gs.intermediate >= 0 ? rt.intermediate_zones[gs.intermediate]
                             : rt.suffix;
    zone::Zone* parent_zone = FindZone(parent_origin);
    GOVDNS_CHECK(parent_zone != nullptr);

    util::Rng dr = rng.Fork("dom:" + d.name.ToString());

    // ---- Parked-reference domains: parent points at the parked company.
    if (d.parked_ns_ref) {
      const CompanyRuntime& crt = companies[parked_assignments[i]];
      const NationalCompany& comp =
          w.country_rt_[crt.country].companies[crt.index_in_country];
      for (const dns::Name& ns : comp.ns_names) {
        parent_zone->Add(dns::MakeNs(d.name, ns, 86400));
      }
      continue;
    }

    // ---- Stale delegations: parent records only, child servers gone.
    if (d.fate == DomainFate::kStaleDelegation) {
      bool typo_done = false;
      for (const dns::Name& ns : last.ns_names) {
        dns::Name entry = ns;
        if (d.typo_parent_ns && !typo_done) {
          entry = TypoOf(ns);
          typo_done = true;
        }
        parent_zone->Add(dns::MakeNs(d.name, entry, 86400));
        // Half the in-bailiwick hostnames keep a stale glue record pointing
        // at a host that no longer answers; the rest are unresolvable.
        if (entry.IsSubdomainOf(d.name) && dr.Bernoulli(0.5)) {
          parent_zone->Add(
              dns::MakeA(entry, country_pools[d.country].Take(1, false), 86400));
          // No endpoint is attached at that address... unless another live
          // host got it; mark it silent to be safe.
          // (Address reuse is rare; silencing is the conservative choice.)
        }
      }
      continue;
    }

    // ---- Active domains.
    GOVDNS_CHECK(d.fate == DomainFate::kActive);
    std::vector<dns::Name> base = last.ns_names;
    std::vector<dns::Name> parent_set = base;
    std::vector<dns::Name> child_set = base;

    const dns::Name fresh_ns = d.name.Child("ns-new");
    dns::Name old_ns = d.name.Child("ns-old");
    if (d.epochs.size() >= 2) {
      const NsEpoch& prev_epoch = d.epochs[d.epochs.size() - 2];
      const auto& prev = prev_epoch.ns_names;
      // Reuse the previous operator's name only if that operator still
      // exists; otherwise stale-parent records would flood the dangling
      // d_ns pool far beyond the per-company lingering budget.
      bool prev_operator_alive = true;
      if (prev_epoch.national_company >= 0) {
        const CompanyRuntime& crt = companies[prev_epoch.national_company];
        prev_operator_alive =
            w.country_rt_[crt.country]
                .companies[crt.index_in_country]
                .last_year == 0;
      } else if (prev_epoch.provider >= 0) {
        prev_operator_alive = providers[prev_epoch.provider].alive_2021;
      }
      if (prev_operator_alive && !prev.empty() &&
          !(prev.front() == base.front())) {
        old_ns = prev.front();
      }
    }
    bool old_ns_alive = false;
    switch (d.consistency) {
      case ConsistencyPlan::kEqual:
        break;
      case ConsistencyPlan::kChildSuperset:
        child_set.push_back(fresh_ns);
        break;
      case ConsistencyPlan::kParentSuperset:
        parent_set.push_back(old_ns);
        old_ns_alive = dr.Bernoulli(0.45);
        break;
      case ConsistencyPlan::kOverlapNeither:
        parent_set.push_back(old_ns);
        old_ns_alive = dr.Bernoulli(0.45);
        child_set.push_back(fresh_ns);
        break;
      case ConsistencyPlan::kDisjointSharedIp: {
        // Renamed hosts, same addresses: child advertises new names that
        // resolve to the same endpoints as the parent's names.
        child_set.clear();
        for (size_t k = 0; k < base.size() && k < 4; ++k) {
          child_set.push_back(
              d.name.Child(std::string("ns") + char('a' + k)));
        }
        break;
      }
      case ConsistencyPlan::kDisjoint: {
        child_set.clear();
        size_t cnt = std::max<size_t>(2, std::min<size_t>(base.size(), 3));
        for (size_t k = 0; k < cnt; ++k) {
          child_set.push_back(
              d.name.Child("ns" + std::to_string(k + 1) + "x"));
        }
        break;
      }
    }
    if (d.relative_name_truncation && child_set.size() >= 2) {
      // Zone-file typo: the origin was never appended; a single label leaks.
      child_set.back() = dns::Name::FromString(child_set.back().Label(0));
    }
    if (d.partial_lame && rt.shared_dead_ns.has_value()) {
      parent_set.push_back(*rt.shared_dead_ns);
      child_set.push_back(*rt.shared_dead_ns);
    }
    bool typo_applied = false;
    if (d.typo_parent_ns) {
      for (dns::Name& ns : parent_set) {
        if (ns.IsSubdomainOf(d.name)) continue;  // typo the provider-ish one
        ns = TypoOf(ns);
        typo_applied = true;
        break;
      }
      if (!typo_applied && !parent_set.empty()) {
        parent_set.front() = TypoOf(parent_set.front());
      }
    }

    // Local lame-ness: one self-hosted child NS is down.
    bool local_lame =
        last.style == DeployStyle::kPrivate && base.size() >= 2 &&
        base.front().IsSubdomainOf(d.name) &&
        dr.Bernoulli(cfg.partial_lame_rate * 3.0);

    // ---- Build the child zone.
    auto z = NewZone(d.name);
    for (const dns::Name& ns : child_set) {
      z->Add(dns::MakeNs(d.name, ns, 3600));
    }
    // SOA: MNAME/RNAME follow the operator (the provider fingerprint).
    dns::Name mname = child_set.front();
    dns::Name rname = d.name.Child("hostmaster");
    if (last.style == DeployStyle::kGlobal && last.provider >= 0) {
      const ProviderRuntime& prt = providers[last.provider];
      if (!prt.hostnames.empty()) mname = prt.hostnames.front();
      auto reg = w.psl_.RegisteredDomain(mname);
      if (reg) rname = reg->Child("hostmaster");
    } else if (last.style == DeployStyle::kNational &&
               last.national_company >= 0) {
      const CompanyRuntime& crt = companies[last.national_company];
      const NationalCompany& comp =
          w.country_rt_[crt.country].companies[crt.index_in_country];
      mname = comp.ns_names.front();
      rname = comp.domain.Child("hostmaster");
    }
    z->Add(dns::MakeSoa(d.name, mname, rname, 2021040100));
    z->Add(dns::MakeA(d.name.Child("www"),
                      country_pools[d.country].Take(2, false), 3600));

    // ---- Wire every referenced hostname.
    // Self-hosted endpoint topology is sampled once per domain.
    const DiversityProfile& dp = spec.diversity;
    bool single_ip = dr.Bernoulli(dp.p_single_ip);
    bool single_24 = dr.Bernoulli(dp.p_single_24_given_multi_ip);
    bool single_asn = dr.Bernoulli(dp.p_single_asn_given_multi_24);
    geo::IPv4 shared_self_ip;
    bool have_shared_ip = false;
    int self_count = 0;
    zone::AuthServer* provider_farm =
        (last.style == DeployStyle::kGlobal && last.provider >= 0)
            ? providers[last.provider].farm
            : nullptr;

    std::set<dns::Name> wired;
    auto wire_host = [&](const dns::Name& host, bool serves_zone) {
      if (!wired.insert(host).second) return;
      if (host.LabelCount() == 1) return;  // truncated relative name
      auto it = hosts.find(host);
      if (it != hosts.end()) {
        // Existing infrastructure (central, company, provider, parking).
        if (serves_zone && it->second.server != nullptr) {
          it->second.server->AddZone(z);
        }
        return;
      }
      if (!host.IsSubdomainOf(d.name)) {
        // Typo'd / shared-dead / foreign hostname: leave unresolvable.
        return;
      }
      // Self-hosted (or vanity) host: allocate address(es) and, unless this
      // host is the designated local-lame victim, attach a server.
      geo::IPv4 ip;
      if (last.vanity && provider_farm != nullptr) {
        const ProviderRuntime& prt = providers[last.provider];
        ip = prt.hostname_ips[dr.UniformU64(prt.hostname_ips.size())];
      } else if (single_ip) {
        if (!have_shared_ip) {
          shared_self_ip = country_pools[d.country].Take(0, true);
          have_shared_ip = true;
        }
        ip = shared_self_ip;
      } else {
        // Realize the sampled per-domain diversity: same /24, different
        // /24s in one AS, or different AS groups.
        int group;
        bool fresh;
        if (self_count == 0) {
          group = 0;
          fresh = true;
        } else if (single_24) {
          group = 0;
          fresh = false;  // stay in this domain's current /24
        } else if (single_asn) {
          group = 0;
          fresh = true;  // a new /24 in the same AS
        } else {
          group = self_count % 2;  // alternate AS groups
          fresh = false;
        }
        ip = country_pools[d.country].Take(group, fresh);
      }
      ++self_count;
      z->Add(dns::MakeA(host, ip, 3600));
      if (host.IsSubdomainOf(parent_origin)) {
        parent_zone->Add(dns::MakeA(host, ip, 86400));  // glue
      }
      bool victim = local_lame && self_count == 1;
      if (victim) {
        w.network_->SetBehavior(ip, simnet::EndpointBehavior{.silent = true});
        return;
      }
      if (last.vanity && provider_farm != nullptr) {
        if (serves_zone) provider_farm->AddZone(z);
        hosts[host] = HostRecord{provider_farm, {ip}};
        return;
      }
      zone::AuthServer* srv = NewServer(host.ToString());
      AttachHost(host, srv, {ip});
      if (serves_zone) srv->AddZone(z);
    };

    for (const dns::Name& ns : child_set) wire_host(ns, true);
    for (const dns::Name& ns : parent_set) {
      bool serves = true;
      if (!(ns == old_ns)) {
        serves = true;
      } else {
        serves = old_ns_alive;
      }
      wire_host(ns, serves);
    }

    // kDisjointSharedIp: the child's new names reuse the parent hosts'
    // addresses (added after wiring so we can read them back).
    if (d.consistency == ConsistencyPlan::kDisjointSharedIp) {
      for (size_t k = 0; k < child_set.size() && k < parent_set.size(); ++k) {
        // Only the renamed in-zone hosts get aliases; appended extras (the
        // shared dead host) must not be re-addressed.
        if (!child_set[k].IsSubdomainOf(d.name)) continue;
        auto it = hosts.find(parent_set[k]);
        if (it == hosts.end() || it->second.ips.empty()) continue;
        // Alias: same address, new name.
        z->Add(dns::MakeA(child_set[k], it->second.ips.front(), 3600));
        if (child_set[k].IsSubdomainOf(parent_origin)) {
          parent_zone->Add(
              dns::MakeA(child_set[k], it->second.ips.front(), 86400));
        }
      }
    }

    // ---- Parent-side delegation records.
    for (const dns::Name& ns : parent_set) {
      parent_zone->Add(dns::MakeNs(d.name, ns, 86400));
    }
  }
}

// ---------------------------------------------------------------------------
// Registrar finalization
// ---------------------------------------------------------------------------

void World::Builder::FinalizeRegistrar() {
  // Every government domain in the study is, of course, registered.
  for (const DomainTruth& d : w.domains_) {
    if (!d.in_query_list) continue;
    auto reg = w.psl_.RegisteredDomain(d.name);
    if (reg) w.registrar_.Register(*reg);
  }
  // Dead companies: available only when they still have lingering customers
  // in a risk country (or are parked, which SetPremiumPrice already left
  // unregistered); every other dead company's name was re-registered by
  // someone else.
  for (const CompanyRuntime& crt : companies) {
    const NationalCompany& comp =
        w.country_rt_[crt.country].companies[crt.index_in_country];
    if (comp.last_year == 0) continue;  // alive: registered at creation
    if (comp.dead_and_available || comp.dead_and_parked) continue;
    w.registrar_.Register(comp.domain);
  }
}

}  // namespace govdns::worldgen
