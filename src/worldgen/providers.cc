#include "worldgen/providers.h"

#include <map>

#include "util/status.h"

namespace govdns::worldgen {

namespace {

// Vanity-name pool used for Cloudflare-style hostnames.
constexpr const char* kWordPool[] = {
    "ada",   "alex",  "amber", "amy",   "anna",  "beth",  "carl",  "cody",
    "cora",  "dahlia","dana",  "dean",  "elle",  "emma",  "erin",  "fred",
    "gail",  "gina",  "hank",  "iris",  "ivan",  "jean",  "jill",  "kate",
    "kurt",  "lana",  "leah",  "liam",  "lola",  "mark",  "mira",  "nash",
    "nina",  "noah",  "olga",  "omar",  "pete",  "rosa",  "ruth",  "sara",
    "seth",  "tess",  "tim",   "uma",   "vera",  "walt",  "wren",  "zara",
};
constexpr int kWordPoolSize = static_cast<int>(std::size(kWordPool));

std::vector<ProviderSpec> BuildProviders() {
  std::vector<ProviderSpec> p;
  auto add = [&](ProviderSpec spec) { p.push_back(std::move(spec)); };

  // --- The big clouds -----------------------------------------------------
  add({.display = "Amazon Route 53",
       .group_key = "AWS DNS",
       .naming = NamingStyle::kAws,
       .ns_domains = {"com", "net", "org", "co.uk"},  // awsdns families
       .start_year = 2010,
       .end_year = 0,
       .domains_2011 = 5,
       .domains_2020 = 5193,
       .small_country_affinity = 1.0,
       .coverage_2011 = 0.04,
       .coverage_2020 = 0.42,
       .country_focus = "",
       .ns_per_customer = 4,
       .pool_size = 128,
       .num_prefixes = 8,
       .num_asns = 1,
       .in_table2 = true,
       .vanity_fraction = 0.02});
  add({.display = "Cloudflare",
       .group_key = "cloudflare.com",
       .naming = NamingStyle::kWordPool,
       .ns_domains = {"cloudflare.com"},
       .start_year = 2010,
       .end_year = 0,
       .domains_2011 = 12,
       .domains_2020 = 4136,
       .small_country_affinity = 1.6,
       .coverage_2011 = 0.07,
       .coverage_2020 = 0.47,
       .country_focus = "",
       .ns_per_customer = 2,
       .pool_size = kWordPoolSize,
       .num_prefixes = 6,
       .num_asns = 1,
       .in_table2 = true,
       .vanity_fraction = 0.0});
  add({.display = "Azure DNS",
       .group_key = "Azure DNS",
       .naming = NamingStyle::kAzure,
       .ns_domains = {"com", "net", "org", "info"},  // azure-dns families
       .start_year = 2016,
       .end_year = 0,
       .domains_2011 = 0,
       .domains_2020 = 1574,
       .small_country_affinity = 0.8,
       .coverage_2011 = 0.0,
       .coverage_2020 = 0.23,
       .country_focus = "",
       .ns_per_customer = 4,
       .pool_size = 64,
       .num_prefixes = 8,
       .num_asns = 1,
       .in_table2 = true,
       .vanity_fraction = 0.02});

  // --- Managed-DNS specialists --------------------------------------------
  add({.display = "GoDaddy",
       .group_key = "domaincontrol.com",
       .naming = NamingStyle::kNumberedPool,
       .ns_domains = {"domaincontrol.com"},
       .start_year = 2005,
       .end_year = 0,
       .domains_2011 = 283,
       .domains_2020 = 1582,
       .small_country_affinity = 1.8,
       .coverage_2011 = 0.4,
       .coverage_2020 = 0.39,
       .country_focus = "",
       .ns_per_customer = 2,
       .pool_size = 80,
       .num_prefixes = 4,
       .num_asns = 1,
       .in_table2 = true,
       .vanity_fraction = 0.01});
  add({.display = "DNSPod",
       .group_key = "dnspod.net",
       .naming = NamingStyle::kNumberedPool,
       .ns_domains = {"dnspod.net"},
       .start_year = 2007,
       .end_year = 0,
       .domains_2011 = 373,
       .domains_2020 = 700,
       .small_country_affinity = 1.0,
       .coverage_2011 = 1.0,
       .coverage_2020 = 1.0,
       .country_focus = "cn",
       .ns_per_customer = 2,
       .pool_size = 24,
       .num_prefixes = 4,
       .num_asns = 2,
       .in_table2 = true,
       .vanity_fraction = 0.0});
  add({.display = "DNSMadeEasy",
       .group_key = "dnsmadeeasy.com",
       .naming = NamingStyle::kNumberedPool,
       .ns_domains = {"dnsmadeeasy.com"},
       .start_year = 2005,
       .end_year = 0,
       .domains_2011 = 89,
       .domains_2020 = 254,
       .small_country_affinity = 1.2,
       .coverage_2011 = 0.1,
       .coverage_2020 = 0.11,
       .country_focus = "",
       .ns_per_customer = 4,
       .pool_size = 16,
       .num_prefixes = 6,
       .num_asns = 2,
       .in_table2 = true,
       .vanity_fraction = 0.03});
  add({.display = "Dyn",
       .group_key = "dynect.net",
       .naming = NamingStyle::kNumberedPool,
       .ns_domains = {"dynect.net"},
       .start_year = 2005,
       .end_year = 0,
       .domains_2011 = 7,
       .domains_2020 = 170,
       .small_country_affinity = 0.9,
       .coverage_2011 = 0.03,
       .coverage_2020 = 0.13,
       .country_focus = "",
       .ns_per_customer = 4,
       .pool_size = 8,
       .num_prefixes = 4,
       .num_asns = 2,
       .in_table2 = true,
       .vanity_fraction = 0.05});
  add({.display = "UltraDNS",
       .group_key = "ultradns.net",
       .naming = NamingStyle::kNumberedPool,
       .ns_domains = {"ultradns.net"},
       .start_year = 2005,
       .end_year = 0,
       .domains_2011 = 15,
       .domains_2020 = 66,
       .small_country_affinity = 0.7,
       .coverage_2011 = 0.04,
       .coverage_2020 = 0.06,
       .country_focus = "",
       .ns_per_customer = 4,
       .pool_size = 8,
       .num_prefixes = 4,
       .num_asns = 2,
       .in_table2 = true,
       .vanity_fraction = 0.05});

  // --- US shared-hosting wave (dominant in 2011) ---------------------------
  add({.display = "Hostgator (websitewelcome)",
       .group_key = "websitewelcome.com",
       .naming = NamingStyle::kNumberedPool,
       .ns_domains = {"websitewelcome.com"},
       .start_year = 2005,
       .end_year = 0,
       .domains_2011 = 424,
       .domains_2020 = 745,
       .small_country_affinity = 2.2,
       .coverage_2011 = 0.45,
       .coverage_2020 = 0.31,
       .country_focus = "",
       .ns_per_customer = 2,
       .pool_size = 120,
       .num_prefixes = 3,
       .num_asns = 1,
       .in_table2 = false,
       .vanity_fraction = 0.0});
  add({.display = "Hostgator",
       .group_key = "Hostgator",
       .naming = NamingStyle::kNumberedPool,
       .ns_domains = {"hostgator.com", "hostgator.com.br"},
       .start_year = 2006,
       .end_year = 0,
       .domains_2011 = 183,
       .domains_2020 = 1536,
       .small_country_affinity = 1.7,
       .coverage_2011 = 0.26,
       .coverage_2020 = 0.34,
       .country_focus = "",
       .ns_per_customer = 2,
       .pool_size = 60,
       .num_prefixes = 3,
       .num_asns = 1,
       .in_table2 = false,
       .vanity_fraction = 0.0});
  add({.display = "ZoneEdit",
       .group_key = "zoneedit.com",
       .naming = NamingStyle::kNumberedPool,
       .ns_domains = {"zoneedit.com"},
       .start_year = 2000,
       .end_year = 0,
       .domains_2011 = 182,
       .domains_2020 = 110,
       .small_country_affinity = 1.8,
       .coverage_2011 = 0.28,
       .coverage_2020 = 0.1,
       .country_focus = "",
       .ns_per_customer = 2,
       .pool_size = 20,
       .num_prefixes = 2,
       .num_asns = 1,
       .in_table2 = false,
       .vanity_fraction = 0.0});
  add({.display = "DreamHost",
       .group_key = "dreamhost.com",
       .naming = NamingStyle::kNumberedPool,
       .ns_domains = {"dreamhost.com"},
       .start_year = 2002,
       .end_year = 0,
       .domains_2011 = 243,
       .domains_2020 = 290,
       .small_country_affinity = 1.6,
       .coverage_2011 = 0.26,
       .coverage_2020 = 0.12,
       .country_focus = "",
       .ns_per_customer = 3,
       .pool_size = 3,
       .num_prefixes = 3,
       .num_asns = 1,
       .in_table2 = false,
       .vanity_fraction = 0.0});
  add({.display = "Bluehost",
       .group_key = "bluehost.com",
       .naming = NamingStyle::kNumberedPool,
       .ns_domains = {"bluehost.com"},
       .start_year = 2004,
       .end_year = 0,
       .domains_2011 = 134,
       .domains_2020 = 432,
       .small_country_affinity = 2.4,
       .coverage_2011 = 0.26,
       .coverage_2020 = 0.36,
       .country_focus = "",
       .ns_per_customer = 2,
       .pool_size = 2,
       .num_prefixes = 2,
       .num_asns = 1,
       .in_table2 = false,
       .vanity_fraction = 0.0});
  add({.display = "IX Web Hosting",
       .group_key = "ixwebhosting.com",
       .naming = NamingStyle::kNumberedPool,
       .ns_domains = {"ixwebhosting.com"},
       .start_year = 2002,
       .end_year = 2019,
       .domains_2011 = 98,
       .domains_2020 = 12,
       .small_country_affinity = 1.8,
       .coverage_2011 = 0.24,
       .coverage_2020 = 0.04,
       .country_focus = "",
       .ns_per_customer = 2,
       .pool_size = 12,
       .num_prefixes = 2,
       .num_asns = 1,
       .in_table2 = false,
       .vanity_fraction = 0.0});
  add({.display = "HostMonster",
       .group_key = "hostmonster.com",
       .naming = NamingStyle::kNumberedPool,
       .ns_domains = {"hostmonster.com"},
       .start_year = 2005,
       .end_year = 0,
       .domains_2011 = 103,
       .domains_2020 = 75,
       .small_country_affinity = 1.8,
       .coverage_2011 = 0.23,
       .coverage_2020 = 0.07,
       .country_focus = "",
       .ns_per_customer = 2,
       .pool_size = 2,
       .num_prefixes = 2,
       .num_asns = 1,
       .in_table2 = false,
       .vanity_fraction = 0.0});
  add({.display = "EveryDNS",
       .group_key = "everydns.net",
       .naming = NamingStyle::kNumberedPool,
       .ns_domains = {"everydns.net"},
       .start_year = 2001,
       .end_year = 2011,  // shut down; customers forced to churn
       .domains_2011 = 259,
       .domains_2020 = 0,
       .small_country_affinity = 1.6,
       .coverage_2011 = 0.22,
       .coverage_2020 = 0.0,
       .country_focus = "",
       .ns_per_customer = 4,
       .pool_size = 4,
       .num_prefixes = 2,
       .num_asns = 1,
       .in_table2 = false,
       .vanity_fraction = 0.0});
  add({.display = "PipeDNS",
       .group_key = "pipedns.com",
       .naming = NamingStyle::kNumberedPool,
       .ns_domains = {"pipedns.com"},
       .start_year = 2004,
       .end_year = 2018,
       .domains_2011 = 48,
       .domains_2020 = 8,
       .small_country_affinity = 1.8,
       .coverage_2011 = 0.21,
       .coverage_2020 = 0.03,
       .country_focus = "",
       .ns_per_customer = 3,
       .pool_size = 6,
       .num_prefixes = 2,
       .num_asns = 1,
       .in_table2 = false,
       .vanity_fraction = 0.0});
  add({.display = "Rackspace (stabletransit)",
       .group_key = "stabletransit.com",
       .naming = NamingStyle::kNumberedPool,
       .ns_domains = {"stabletransit.com"},
       .start_year = 2006,
       .end_year = 0,
       .domains_2011 = 57,
       .domains_2020 = 55,
       .small_country_affinity = 1.2,
       .coverage_2011 = 0.19,
       .coverage_2020 = 0.09,
       .country_focus = "",
       .ns_per_customer = 2,
       .pool_size = 4,
       .num_prefixes = 2,
       .num_asns = 1,
       .in_table2 = false,
       .vanity_fraction = 0.0});

  // --- The 2013+ generation ------------------------------------------------
  add({.display = "DigitalOcean",
       .group_key = "digitalocean.com",
       .naming = NamingStyle::kNumberedPool,
       .ns_domains = {"digitalocean.com"},
       .start_year = 2013,
       .end_year = 0,
       .domains_2011 = 0,
       .domains_2020 = 429,
       .small_country_affinity = 1.6,
       .coverage_2011 = 0.0,
       .coverage_2020 = 0.28,
       .country_focus = "",
       .ns_per_customer = 3,
       .pool_size = 3,
       .num_prefixes = 3,
       .num_asns = 1,
       .in_table2 = false,
       .vanity_fraction = 0.0});
  add({.display = "Microsoft Online",
       .group_key = "microsoftonline.com",
       .naming = NamingStyle::kNumberedPool,
       .ns_domains = {"microsoftonline.com"},
       .start_year = 2012,
       .end_year = 0,
       .domains_2011 = 0,
       .domains_2020 = 135,
       .small_country_affinity = 1.5,
       .coverage_2011 = 0.0,
       .coverage_2020 = 0.25,
       .country_focus = "",
       .ns_per_customer = 2,
       .pool_size = 8,
       .num_prefixes = 4,
       .num_asns = 1,
       .in_table2 = false,
       .vanity_fraction = 0.0});
  add({.display = "Wix",
       .group_key = "wixdns.net",
       .naming = NamingStyle::kNumberedPool,
       .ns_domains = {"wixdns.net"},
       .start_year = 2013,
       .end_year = 0,
       .domains_2011 = 0,
       .domains_2020 = 324,
       .small_country_affinity = 1.8,
       .coverage_2011 = 0.0,
       .coverage_2020 = 0.22,
       .country_focus = "",
       .ns_per_customer = 2,
       .pool_size = 10,
       .num_prefixes = 2,
       .num_asns = 1,
       .in_table2 = false,
       .vanity_fraction = 0.0});
  add({.display = "ClouDNS",
       .group_key = "cloudns.net",
       .naming = NamingStyle::kNumberedPool,
       .ns_domains = {"cloudns.net"},
       .start_year = 2010,
       .end_year = 0,
       .domains_2011 = 10,
       .domains_2020 = 225,
       .small_country_affinity = 1.7,
       .coverage_2011 = 0.05,
       .coverage_2020 = 0.22,
       .country_focus = "",
       .ns_per_customer = 4,
       .pool_size = 20,
       .num_prefixes = 4,
       .num_asns = 2,
       .in_table2 = false,
       .vanity_fraction = 0.0});

  // --- Chinese registrar/hosting giants (gov.cn's dominant providers) -----
  add({.display = "HiChina (Alibaba)",
       .group_key = "hichina.com",
       .naming = NamingStyle::kNumberedPool,
       .ns_domains = {"hichina.com"},
       .start_year = 2005,
       .end_year = 0,
       .domains_2011 = 4200,
       .domains_2020 = 11000,
       .small_country_affinity = 1.0,
       .coverage_2011 = 1.0,
       .coverage_2020 = 1.0,
       .country_focus = "cn",
       .ns_per_customer = 2,
       .pool_size = 32,
       .num_prefixes = 8,
       .num_asns = 2,
       .in_table2 = false,
       .vanity_fraction = 0.0});
  add({.display = "XinNet (xincache)",
       .group_key = "xincache.com",
       .naming = NamingStyle::kNumberedPool,
       .ns_domains = {"xincache.com"},
       .start_year = 2005,
       .end_year = 0,
       .domains_2011 = 3000,
       .domains_2020 = 7700,
       .small_country_affinity = 1.0,
       .coverage_2011 = 1.0,
       .coverage_2020 = 1.0,
       .country_focus = "cn",
       .ns_per_customer = 2,
       .pool_size = 16,
       .num_prefixes = 4,
       .num_asns = 2,
       .in_table2 = false,
       .vanity_fraction = 0.0});
  add({.display = "DNS-DIY",
       .group_key = "dns-diy.com",
       .naming = NamingStyle::kNumberedPool,
       .ns_domains = {"dns-diy.com"},
       .start_year = 2006,
       .end_year = 0,
       .domains_2011 = 1700,
       .domains_2020 = 4200,
       .small_country_affinity = 1.0,
       .coverage_2011 = 1.0,
       .coverage_2020 = 1.0,
       .country_focus = "cn",
       .ns_per_customer = 2,
       .pool_size = 12,
       .num_prefixes = 3,
       .num_asns = 2,
       .in_table2 = false,
       .vanity_fraction = 0.0});

  return p;
}

const std::vector<ProviderSpec>& ProviderVector() {
  static const std::vector<ProviderSpec> kProviders = BuildProviders();
  return kProviders;
}

}  // namespace

std::span<const ProviderSpec> Providers() { return ProviderVector(); }

int ProviderIndexByGroupKey(const std::string& group_key) {
  static const std::map<std::string, int> kIndex = [] {
    std::map<std::string, int> m;
    const auto& providers = ProviderVector();
    for (int i = 0; i < static_cast<int>(providers.size()); ++i) {
      m[providers[i].group_key] = i;
    }
    return m;
  }();
  auto it = kIndex.find(group_key);
  return it == kIndex.end() ? -1 : it->second;
}

dns::Name ProviderHostname(const ProviderSpec& spec, int i) {
  GOVDNS_CHECK(i >= 0);
  switch (spec.naming) {
    case NamingStyle::kNumberedPool: {
      GOVDNS_CHECK(i < spec.pool_size);
      // Round-robin across the provider's ns domains (hostgator.com /
      // hostgator.com.br).
      const std::string& base = spec.ns_domains[i % spec.ns_domains.size()];
      int ordinal = i / static_cast<int>(spec.ns_domains.size()) + 1;
      return dns::Name::FromString("ns" + std::to_string(ordinal) + "." + base);
    }
    case NamingStyle::kWordPool: {
      GOVDNS_CHECK(i < spec.pool_size && i < kWordPoolSize);
      return dns::Name::FromString(std::string(kWordPool[i]) + ".ns." +
                                   spec.ns_domains[0]);
    }
    case NamingStyle::kAws: {
      // ns-{n}.awsdns-{nn}.{family}; family cycles com/net/org/co.uk.
      int family = i % static_cast<int>(spec.ns_domains.size());
      int shard = (i / static_cast<int>(spec.ns_domains.size())) % 64;
      int host = i % 2048;
      char buf[64];
      std::snprintf(buf, sizeof(buf), "ns-%d.awsdns-%02d.", host, shard);
      return dns::Name::FromString(std::string(buf) + spec.ns_domains[family]);
    }
    case NamingStyle::kAzure: {
      int family = i % static_cast<int>(spec.ns_domains.size());
      int shard = (i / static_cast<int>(spec.ns_domains.size())) % 100;
      char buf[64];
      std::snprintf(buf, sizeof(buf), "ns%d-%02d.azure-dns.", family + 1,
                    shard);
      return dns::Name::FromString(std::string(buf) + spec.ns_domains[family]);
    }
  }
  GOVDNS_CHECK(false);
  return dns::Name::Root();
}

std::vector<dns::Name> PickCustomerNs(const ProviderSpec& spec,
                                      util::Rng& rng) {
  std::vector<dns::Name> out;
  switch (spec.naming) {
    case NamingStyle::kAws:
    case NamingStyle::kAzure: {
      // One hostname per family; families differ by construction.
      int families = static_cast<int>(spec.ns_domains.size());
      int base = static_cast<int>(rng.UniformU64(spec.pool_size / families)) *
                 families;
      for (int f = 0; f < spec.ns_per_customer; ++f) {
        out.push_back(ProviderHostname(spec, base + f));
      }
      break;
    }
    case NamingStyle::kNumberedPool:
    case NamingStyle::kWordPool: {
      // A contiguous run starting at a random slot (GoDaddy-style nsNN/nsMM
      // pairing) — deterministic per customer, shared across customers that
      // draw the same slot.
      int n = spec.ns_per_customer;
      GOVDNS_CHECK(spec.pool_size >= n);
      int start = static_cast<int>(rng.UniformU64(spec.pool_size - n + 1));
      for (int k = 0; k < n; ++k) {
        out.push_back(ProviderHostname(spec, start + k));
      }
      break;
    }
  }
  return out;
}

}  // namespace govdns::worldgen
