// World generation, phase 2: ten years of domain lifecycles (births,
// deaths, deployment switches), demand-driven third-party-provider
// adoption calibrated to Tables II/III, and passive-DNS population.
#include <algorithm>
#include <cmath>

#include "util/civil_time.h"
#include "worldgen/builder.h"

namespace govdns::worldgen {

namespace {

constexpr const char* kGovWords[] = {
    "moe",        "moh",      "mof",       "moj",       "mod",
    "interior",   "foreign",  "finance",   "health",    "education",
    "justice",    "defense",  "police",    "customs",   "tax",
    "treasury",   "senate",   "assembly",  "parliament","council",
    "courts",     "audit",    "census",    "statistics","archives",
    "library",    "museum",   "heritage",  "culture",   "sports",
    "tourism",    "trade",    "industry",  "commerce",  "energy",
    "mining",     "oil",      "water",     "forestry",  "fisheries",
    "agriculture","land",     "housing",   "transport", "roads",
    "railways",   "aviation", "ports",     "post",      "telecom",
    "ict",        "digital",  "egov",      "portal",    "services",
    "registry",   "identity", "passport",  "visa",      "immigration",
    "labour",     "pension",  "welfare",   "social",    "women",
    "youth",      "children", "veterans",  "science",   "research",
    "environment","climate",  "weather",   "disaster",  "emergency",
    "fire",       "ambulance","hospital",  "clinic",    "pharmacy",
    "food",       "standards","metrology", "patent",    "procurement",
    "budget",     "planning", "investment","export",    "bank",
    "currency",   "insurance","elections", "ombudsman", "anticorruption",
    "cyber",      "security", "intel",     "border",    "coastguard",
    "navy",       "army",     "airforce",  "mapping",   "survey",
    "geology",    "space",    "nuclear",   "grid",      "city",
    "municipal",  "province", "district",  "region",    "county",
};

}  // namespace

int World::Builder::SampleNsCount(util::Rng& r) {
  static const std::vector<double> kWeights = {0.64, 0.20, 0.11, 0.03,
                                               0.012, 0.005, 0.003};
  return 2 + static_cast<int>(r.WeightedIndex(kWeights));
}

// ---------------------------------------------------------------------------
// Assignment helpers
// ---------------------------------------------------------------------------

World::Builder::NsAssignment World::Builder::AssignPrivate(int domain_id,
                                                           int year,
                                                           util::Rng& r) {
  const DomainTruth& d = w.domains_[domain_id];
  const CountrySpec& spec = Countries()[d.country];
  const CountryRuntime& rt = w.country_rt_[d.country];
  NsAssignment a;
  a.style = DeployStyle::kPrivate;

  double frac = std::clamp((year - 2011) / 9.0, 0.0, 1.0);
  double p1 = cfg.p_single_ns_private_2011 +
              (cfg.p_single_ns_private_2020 - cfg.p_single_ns_private_2011) *
                  frac;
  bool single = r.Bernoulli(p1);
  // Centralized government DNS (NIC-style) vs self-hosted.
  double central_share = spec.private_share >= 0.5 ? 0.75 : 0.45;
  if (!single && r.Bernoulli(central_share) && rt.central_ns.size() >= 2) {
    int k = 2 + static_cast<int>(r.UniformU64(
                    std::min<size_t>(2, rt.central_ns.size() - 1)));
    for (int j = 0; j < k && j < static_cast<int>(rt.central_ns.size()); ++j) {
      a.ns_names.push_back(rt.central_ns[j]);
    }
  } else {
    int k = single ? 1 : SampleNsCount(r);
    for (int j = 0; j < k; ++j) {
      a.ns_names.push_back(d.name.Child("ns" + std::to_string(j + 1)));
    }
  }
  return a;
}

World::Builder::NsAssignment World::Builder::AssignNational(int domain_id,
                                                            int year,
                                                            util::Rng& r) {
  const DomainTruth& d = w.domains_[domain_id];
  const auto& comp_ids = country_company_ids[d.country];
  const auto& comps = w.country_rt_[d.country].companies;
  NsAssignment a;
  a.style = DeployStyle::kNational;
  for (int attempt = 0; attempt < 12; ++attempt) {
    size_t k = r.Zipf(comp_ids.size(), 1.0) - 1;
    const NationalCompany& comp = comps[k];
    if (comp.first_year <= year &&
        (comp.last_year == 0 || comp.last_year > year)) {
      a.company = comp_ids[k];
      a.ns_names = comp.ns_names;
      if (r.Bernoulli(cfg.p_single_ns_other)) a.ns_names.resize(1);
      return a;
    }
  }
  // No live company found (tiny country, early year): self-host instead.
  return AssignPrivate(domain_id, year, r);
}

World::Builder::NsAssignment World::Builder::AssignProvider(int domain_id,
                                                            int provider,
                                                            util::Rng& r) {
  const DomainTruth& d = w.domains_[domain_id];
  NsAssignment a;
  a.style = DeployStyle::kGlobal;
  a.provider = provider;
  if (r.Bernoulli(providers[provider].spec->vanity_fraction)) {
    // Vanity front: own NS names, provider infrastructure behind them.
    a.vanity = true;
    a.ns_names = {d.name.Child("ns1"), d.name.Child("ns2")};
    return a;
  }
  a.ns_names = PickCustomerNs(*providers[provider].spec, r);
  if (r.Bernoulli(cfg.p_mixed_provider_ns)) {
    a.ns_names.push_back(d.name.Child("ns0"));
  }
  return a;
}

void World::Builder::ApplyAssignment(int domain_id, const NsAssignment& a,
                                     util::CivilDay day) {
  DomainTruth& d = w.domains_[domain_id];
  DomainGenState& gs = gen_state[domain_id];

  // Detach from previous provider/company counts.
  if (gs.provider >= 0) --providers[gs.provider].customer_count;
  if (gs.company >= 0) --companies[gs.company].customer_count;
  gs.provider = a.provider;
  gs.company = a.company;
  if (a.provider >= 0) {
    providers[a.provider].customers.push_back(domain_id);
    ++providers[a.provider].customer_count;
  }
  if (a.company >= 0) {
    companies[a.company].customers.push_back(domain_id);
    ++companies[a.company].customer_count;
  }
  gs.is_single_ns = a.ns_names.size() == 1;

  if (!d.epochs.empty()) {
    NsEpoch& prev = d.epochs.back();
    if (prev.days.first >= day) {
      d.epochs.pop_back();  // same-day re-roll: replace
    } else {
      prev.days.last = day - 1;
    }
  }
  NsEpoch epoch;
  epoch.days = {day, kAliveForever};
  epoch.style = a.style;
  epoch.provider = a.provider;
  epoch.national_company = a.company;
  epoch.vanity = a.vanity;
  epoch.ns_names = a.ns_names;
  d.epochs.push_back(std::move(epoch));
}

// ---------------------------------------------------------------------------
// The year loop
// ---------------------------------------------------------------------------

void World::Builder::GenerateLifecyclesAndDeployments() {
  auto countries = Countries();
  const int n = static_cast<int>(countries.size());

  // Rough capacity guess: births over the decade plus the initial cohort.
  size_t capacity = static_cast<size_t>(cfg.total_domains_2020 * cfg.scale * 1.8);
  w.domains_.reserve(capacity);
  gen_state.reserve(capacity);

  std::vector<int> live_count(n, 0);
  // Per-country label de-duplication.
  std::vector<std::map<std::string, int>> label_use(n);

  util::Rng lifecycle_rng = rng.Fork("lifecycle");

  auto create_domain = [&](int country, util::CivilDay birth,
                           util::Rng& r) -> int {
    const CountrySpec& spec = countries[country];
    CountryRuntime& rt = w.country_rt_[country];
    DomainTruth d;
    d.country = country;
    d.birth = birth;
    d.death = kAliveForever;
    // Name: a government-ish label, optionally under an intermediate zone.
    const char* word = kGovWords[r.UniformU64(std::size(kGovWords))];
    int& uses = label_use[country][word];
    std::string label =
        uses == 0 ? std::string(word) : std::string(word) + std::to_string(uses);
    ++uses;
    bool disposable = r.Bernoulli(cfg.disposable_fraction);
    if (disposable) {
      // Disposable-looking: machine-generated labels (mail gateways, CDN
      // probes, short-lived campaign sites). The measurement pipeline drops
      // them with the same kind of name heuristic the paper applied.
      static constexpr char kHex[] = "0123456789abcdef";
      label += '-';
      for (int h = 0; h < 6; ++h) label += kHex[r.UniformU64(16)];
    }
    dns::Name parent = rt.suffix;
    int inter = -1;
    if (!rt.intermediate_zones.empty() &&
        r.Bernoulli(spec.deep_hierarchy_share)) {
      inter = static_cast<int>(r.UniformU64(rt.intermediate_zones.size()));
      parent = rt.intermediate_zones[inter];
    }
    d.name = parent.Child(label);
    d.level = static_cast<int>(d.name.LabelCount());
    d.disposable_excluded = disposable;

    int id = static_cast<int>(w.domains_.size());
    w.domains_.push_back(std::move(d));
    w.domain_index_[w.domains_.back().name] = id;
    DomainGenState gs;
    gs.alive = true;
    gs.intermediate = inter;
    gen_state.push_back(gs);
    country_active[country].push_back(id);
    ++live_count[country];
    return id;
  };

  // The d_gov apexes themselves are domains with NS records (the <1% of
  // second-level names in the paper's dataset). They are permanent, run on
  // the central government servers, and never churn.
  for (int c = 0; c < n; ++c) {
    const CountryRuntime& rt = w.country_rt_[c];
    if (rt.suffix.LabelCount() < 2) continue;  // TLD-style suffix (.gov)
    DomainTruth d;
    d.country = c;
    d.name = rt.suffix;
    d.level = static_cast<int>(rt.suffix.LabelCount());
    d.birth = util::DayFromYmd(2010, 1, 1);
    d.death = kAliveForever;
    NsEpoch epoch;
    epoch.days = {d.birth, kAliveForever};
    epoch.style = DeployStyle::kPrivate;
    epoch.ns_names = rt.central_ns;
    d.epochs.push_back(std::move(epoch));
    int id = static_cast<int>(w.domains_.size());
    w.domains_.push_back(std::move(d));
    w.domain_index_[w.domains_.back().name] = id;
    DomainGenState gs;
    gs.alive = true;
    gs.is_apex = true;
    gen_state.push_back(gs);
    country_active[c].push_back(id);
    ++live_count[c];
  }

  for (int year = cfg.first_year; year <= cfg.last_year; ++year) {
    util::Rng yr = lifecycle_rng.Fork("year:" + std::to_string(year));
    util::CivilDay y_start = util::YearStart(year);
    util::CivilDay y_end = util::YearEnd(year);
    int year_days = util::DaysInYear(year);

    std::vector<int> choosers;
    std::vector<char> is_chooser(w.domains_.size(), 0);
    auto add_chooser = [&](int id) {
      if (id < static_cast<int>(is_chooser.size()) && is_chooser[id]) return;
      if (id >= static_cast<int>(is_chooser.size())) {
        is_chooser.resize(id + 1, 0);
      }
      is_chooser[id] = 1;
      choosers.push_back(id);
    };

    // (a) Forced churn: providers that shut down last year.
    for (auto& prt : providers) {
      if (prt.spec->end_year != 0 && prt.spec->end_year == year - 1) {
        for (int id : prt.customers) {
          if (gen_state[id].alive && gen_state[id].provider >= 0 &&
              providers[gen_state[id].provider].spec == prt.spec) {
            add_chooser(id);
          }
        }
      }
    }
    // (b) Companies that folded last year: most customers migrate, some
    // linger forever (the dangling-delegation seed population).
    for (size_t ci = 0; ci < companies.size(); ++ci) {
      CompanyRuntime& crt = companies[ci];
      const NationalCompany& comp =
          w.country_rt_[crt.country].companies[crt.index_in_country];
      // Customers churn the year after their host folds; in the final
      // simulated year, same-year deaths churn too (there is no later year
      // to catch them).
      const bool died_last_year = comp.last_year == year - 1;
      const bool dies_final_year =
          year == cfg.last_year && comp.last_year == year;
      if (!died_last_year && !dies_final_year) continue;
      bool may_linger = available_ns_countries.empty()  // set later; year-1 ok
                        || available_ns_countries.contains(crt.country);
      for (int id : crt.customers) {
        if (!gen_state[id].alive || gen_state[id].company != static_cast<int>(ci)) {
          continue;
        }
        // Half the folded hosts keep one zombie customer, half keep two
        // (paper: 805 d_ns serve 1,121 domains, ~1.4 each).
        size_t linger_cap = 1 + (ci % 2);
        if (may_linger && crt.lingering.size() < linger_cap &&
            yr.Bernoulli(0.15)) {
          gen_state[id].lingering_on_dead_company = true;
          crt.lingering.push_back(id);
        } else {
          add_chooser(id);
        }
      }
    }

    // (c) Deaths, then (d) births per country.
    for (int c = 0; c < n; ++c) {
      auto& active = country_active[c];
      size_t out = 0;
      for (size_t k = 0; k < active.size(); ++k) {
        int id = active[k];
        DomainGenState& gs = gen_state[id];
        if (!gs.alive) continue;
        if (!gs.lingering_on_dead_company && !gs.is_apex &&
            year > cfg.first_year) {
          double p_death =
              gs.is_single_ns ? cfg.death_rate_1ns : cfg.death_rate;
          if (yr.Bernoulli(p_death)) {
            DomainTruth& d = w.domains_[id];
            d.death = y_start + static_cast<util::CivilDay>(
                                    yr.UniformU64(year_days));
            if (!d.epochs.empty()) d.epochs.back().days.last = d.death;
            gs.alive = false;
            if (gs.provider >= 0) --providers[gs.provider].customer_count;
            if (gs.company >= 0) --companies[gs.company].customer_count;
            --live_count[c];
            continue;
          }
        }
        active[out++] = id;
      }
      active.resize(out);

      int target = static_cast<int>(std::lround(TargetFor(c, year)));
      while (live_count[c] < target) {
        util::CivilDay birth =
            year == cfg.first_year
                ? util::YearStart(2010) +
                      static_cast<util::CivilDay>(yr.UniformU64(365))
                : y_start + static_cast<util::CivilDay>(yr.UniformU64(year_days));
        int id = create_domain(c, birth, yr);
        add_chooser(id);
      }
      // Shrinking targets (China 2020): extra deaths.
      int shrink_guard = static_cast<int>(active.size()) * 4 + 16;
      while (live_count[c] > target && !active.empty() && shrink_guard-- > 0) {
        size_t k = yr.UniformU64(active.size());
        int id = active[k];
        DomainGenState& gs = gen_state[id];
        if (gs.is_apex) continue;
        DomainTruth& d = w.domains_[id];
        // Consolidation-style shrinkage is dated to the closing weeks of
        // the *previous* year, so the decline registers as a year-over-year
        // dip in the PDNS counts (paper Fig. 2, the Chinese consolidation).
        d.death = y_start - 1 - static_cast<util::CivilDay>(yr.UniformU64(21));
        d.death = std::max(d.death, d.birth);
        if (!d.epochs.empty()) {
          d.death = std::max(d.death, d.epochs.back().days.first);
        }
        if (!d.epochs.empty()) d.epochs.back().days.last = d.death;
        gs.alive = false;
        if (gs.provider >= 0) --providers[gs.provider].customer_count;
        if (gs.company >= 0) --companies[gs.company].customer_count;
        active.erase(active.begin() + k);
        --live_count[c];
      }

      // (e) Voluntary switches and d_1NS upgrades.
      for (int id : active) {
        if (w.domains_[id].birth >= y_start) continue;  // newly born
        DomainGenState& gs = gen_state[id];
        if (gs.lingering_on_dead_company || gs.is_apex) continue;
        double p = cfg.switch_rate +
                   (gs.is_single_ns ? cfg.upgrade_rate_1ns : 0.0);
        if (yr.Bernoulli(p)) add_chooser(id);
      }
    }

    // (f) Demand-driven allocation.
    yr.Shuffle(choosers);
    std::vector<char> assigned(w.domains_.size(), 0);

    auto provider_target = [&](const ProviderSpec& spec) -> double {
      if (year < spec.start_year) return 0.0;
      if (spec.end_year != 0 && year > spec.end_year) return 0.0;
      double frac = std::clamp((year - 2011) / 9.0, 0.0, 1.0);
      double t = spec.domains_2011 +
                 (spec.domains_2020 - spec.domains_2011) * frac;
      // Providers that existed before 2011 already have their 2011 level;
      // late entrants ramp from zero at start_year.
      if (spec.start_year > 2011) {
        double ramp = std::clamp(
            double(year - spec.start_year + 1) /
                double(std::max(1, 2020 - spec.start_year + 1)),
            0.0, 1.0);
        t = spec.domains_2020 * ramp;
      }
      return t * cfg.scale;
    };

    const auto top10 = Top10CountryCodes();
    auto is_top10 = [&](int country) {
      for (const char* code : top10) {
        if (countries[country].code == std::string_view(code)) return true;
      }
      return false;
    };

    for (size_t p = 0; p < providers.size(); ++p) {
      ProviderRuntime& prt = providers[p];
      const ProviderSpec& spec = *prt.spec;
      double target = provider_target(spec);
      double deficit = target - prt.customer_count;
      if (deficit >= 1.0) {
        // Sequential weighted sampling over unassigned choosers.
        double total_w = 0.0;
        std::vector<double> weights(choosers.size(), 0.0);
        double frac_cov = std::clamp((year - 2011) / 9.0, 0.0, 1.0);
        double coverage = spec.coverage_2011 +
                          (spec.coverage_2020 - spec.coverage_2011) * frac_cov;
        for (size_t j = 0; j < choosers.size(); ++j) {
          int id = choosers[j];
          if (assigned[id] || !gen_state[id].alive) continue;
          int country = w.domains_[id].country;
          if (!spec.country_focus.empty() &&
              spec.country_focus != countries[country].code) {
            continue;
          }
          // Country-adoption gate: a deterministic per-(provider, country)
          // coin decides whether this market ever buys from this provider;
          // the threshold grows with the provider's coverage, so markets
          // open monotonically over the decade (Table III calibration).
          if (spec.country_focus.empty()) {
            double u = double(util::HashString(std::string(spec.group_key) +
                                               "|" + countries[country].code) >>
                              11) *
                       0x1.0p-53;
            if (u >= coverage) continue;
          }
          double wgt = is_top10(country) ? 1.0 : spec.small_country_affinity;
          weights[j] = wgt;
          total_w += wgt;
        }
        double need = deficit;
        for (size_t j = 0; j < choosers.size() && need >= 0.5 && total_w > 0;
             ++j) {
          if (weights[j] <= 0.0) continue;
          double accept = need * weights[j] / total_w;
          total_w -= weights[j];
          if (yr.Bernoulli(std::min(1.0, accept))) {
            int id = choosers[j];
            // New domains (no deployment yet) are configured the day
            // they appear; switchers migrate on a random day of the year.
            util::CivilDay day =
                w.domains_[id].epochs.empty()
                    ? w.domains_[id].birth
                    : y_start + static_cast<util::CivilDay>(
                                    yr.UniformU64(year_days));
            ApplyAssignment(id, AssignProvider(id, static_cast<int>(p), yr),
                            day);
            assigned[id] = 1;
            need -= 1.0;
          }
        }
      } else if (deficit <= -2.0 && prt.customer_count > 0) {
        // Declining provider: force some customers out.
        int to_remove = static_cast<int>(-deficit);
        for (size_t j = 0; j < prt.customers.size() && to_remove > 0; ++j) {
          int id = prt.customers[j];
          if (!gen_state[id].alive ||
              gen_state[id].provider != static_cast<int>(p) || assigned[id]) {
            continue;
          }
          if (!yr.Bernoulli(0.5)) continue;
          add_chooser(id);  // will be reassigned below
          assigned.resize(std::max(assigned.size(), is_chooser.size()), 0);
          --to_remove;
        }
      }
    }

    // (g) Everyone else: private or national by country mix.
    for (int id : choosers) {
      if (id < static_cast<int>(assigned.size()) && assigned[id]) continue;
      if (!gen_state[id].alive) continue;
      const DomainTruth& d = w.domains_[id];
      const CountrySpec& spec = countries[d.country];
      double p_private =
          spec.private_share / (spec.private_share + spec.national_share);
      util::CivilDay day =
          d.epochs.empty()
              ? d.birth
              : y_start +
                    static_cast<util::CivilDay>(yr.UniformU64(year_days));
      day = std::min(day, y_end);
      NsAssignment a = yr.Bernoulli(p_private)
                           ? AssignPrivate(id, year, yr)
                           : AssignNational(id, year, yr);
      ApplyAssignment(id, a, day);
    }
  }
}

// ---------------------------------------------------------------------------
// Passive DNS
// ---------------------------------------------------------------------------

void World::Builder::PopulatePdns() {
  const util::CivilDay db_start = util::DayFromYmd(2010, 1, 1);
  const util::CivilDay db_end = util::DayFromYmd(2021, 2, 15);
  util::Rng prng = rng.Fork("pdns");

  // Flash domains: names that exist for only a few days (expired
  // registrations, parked experiments, campaign one-offs). They carry
  // machine-generated labels, so the disposable-name filter keeps them out
  // of the query list, and their short record lifetimes are exactly what
  // the §III-C stability threshold exists to drop.
  static constexpr char kHex[] = "0123456789abcdef";
  for (int c = 0; c < static_cast<int>(w.country_rt_.size()); ++c) {
    const CountryRuntime& rt = w.country_rt_[c];
    for (int year = cfg.first_year; year <= cfg.last_year; ++year) {
      int n_flash = static_cast<int>(TargetFor(c, year) * 0.05);
      for (int k = 0; k < n_flash; ++k) {
        std::string label = "site-";
        for (int h = 0; h < 6; ++h) label += kHex[prng.UniformU64(16)];
        dns::Name name = rt.suffix.Child(label);
        util::CivilDay day = util::YearStart(year) +
                             static_cast<util::CivilDay>(prng.UniformU64(360));
        int len = 1 + static_cast<int>(prng.UniformU64(5));
        std::string ns = "ns" + std::to_string(1 + prng.UniformU64(2)) +
                         ".flashpark" +
                         std::to_string(1 + prng.UniformU64(4)) + ".net";
        w.pdns_.ObserveInterval(name, dns::RRType::kNS, ns,
                                {day, day + len - 1});
      }
    }
  }

  for (size_t i = 0; i < w.domains_.size(); ++i) {
    const DomainTruth& d = w.domains_[i];
    for (const NsEpoch& epoch : d.epochs) {
      util::DayInterval seen{std::max(epoch.days.first, db_start),
                             std::min(epoch.days.last, db_end)};
      if (seen.first > seen.last) continue;
      for (const dns::Name& ns : epoch.ns_names) {
        w.pdns_.ObserveInterval(d.name, dns::RRType::kNS, ns.ToString(), seen);
      }
    }
    // Stale delegations and lingering zombies stay visible: sensors keep
    // seeing the parent-side records long after the child died.
    bool visible_to_end =
        d.fate == DomainFate::kStaleDelegation ||
        gen_state[i].lingering_on_dead_company;
    if (visible_to_end && !d.epochs.empty()) {
      const NsEpoch& last = d.epochs.back();
      util::CivilDay from = std::max(last.days.first, db_start);
      if (from <= db_end) {
        for (const dns::Name& ns : last.ns_names) {
          w.pdns_.ObserveInterval(d.name, dns::RRType::kNS, ns.ToString(),
                                  {from, db_end});
        }
      }
    }
    // Short-lived junk records (the 7-day stability filter's prey).
    for (int year = cfg.first_year; year <= cfg.last_year; ++year) {
      util::CivilDay ys = util::YearStart(year);
      util::CivilDay ye = util::YearEnd(year);
      if (d.birth > ye || d.death < ys) continue;
      if (!prng.Bernoulli(cfg.transient_record_rate)) continue;
      util::CivilDay day =
          ys + static_cast<util::CivilDay>(prng.UniformU64(300));
      int len = 1 + static_cast<int>(prng.UniformU64(cfg.transient_max_days));
      std::string shield =
          "ns" + std::to_string(1 + prng.UniformU64(2)) + ".ddosshield" +
          std::to_string(1 + prng.UniformU64(3)) + ".net";
      w.pdns_.ObserveInterval(d.name, dns::RRType::kNS, shield,
                              {day, day + len - 1});
    }
  }
}

}  // namespace govdns::worldgen
