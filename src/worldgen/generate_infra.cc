// World generation, phase 1: targets, global DNS infrastructure (root,
// TLDs, providers, parking service) and per-country infrastructure
// (ccTLD + suffix zones, registries, national hosting companies,
// knowledge-base entries).
#include <algorithm>
#include <cmath>

#include "util/strings.h"
#include "worldgen/builder.h"

namespace govdns::worldgen {

namespace {


// Words used to mint national hosting-company names.
constexpr const char* kHostWords[] = {
    "webhost", "dnspro",  "hostline", "netserv", "datapark", "zonehub",
    "nethost", "sitebox", "domainex", "servnet",  "hostwave", "netcore",
    "webzone", "dnsland", "hostpark", "clouddom", "netpoint", "webgrid",
};

}  // namespace

// ---------------------------------------------------------------------------
// CountryAddressPool
// ---------------------------------------------------------------------------

void CountryAddressPool::Init(geo::AddressAllocator* alloc, std::string org,
                              int asn_groups) {
  GOVDNS_CHECK(alloc != nullptr && asn_groups >= 1);
  alloc_ = alloc;
  org_ = std::move(org);
  groups_.resize(asn_groups);
}

geo::IPv4 CountryAddressPool::Take(int group, bool fresh_prefix) {
  GOVDNS_CHECK(alloc_ != nullptr);
  GOVDNS_CHECK(group >= 0 && group < static_cast<int>(groups_.size()));
  Group& g = groups_[group];
  if (g.blocks.empty()) {
    g.blocks.push_back(alloc_->AllocateBlock(24, org_));
    g.asn = alloc_->last_asn();
    g.cursor_host = 0;
  }
  if (fresh_prefix) {
    // Move to a new /24 in this group. Never reuse an earlier block: two
    // hosts sharing an address would silently shadow each other's servers.
    g.blocks.push_back(alloc_->AllocateBlock(24, org_, g.asn));
    g.cursor_block = static_cast<int>(g.blocks.size()) - 1;
    g.cursor_host = 0;
  }
  Group& gg = groups_[group];
  if (gg.cursor_host + 2 >= gg.blocks[gg.cursor_block].size()) {
    // Current block exhausted: continue in a fresh one (same ASN).
    gg.blocks.push_back(alloc_->AllocateBlock(24, org_, gg.asn));
    gg.cursor_block = static_cast<int>(gg.blocks.size()) - 1;
    gg.cursor_host = 0;
  }
  const geo::Cidr& block = gg.blocks[gg.cursor_block];
  return geo::AddressAllocator::HostInBlock(block, gg.cursor_host++);
}

// ---------------------------------------------------------------------------
// Builder basics
// ---------------------------------------------------------------------------

World::Builder::Builder(World& world)
    : w(world),
      cfg(world.config_),
      rng(world.config_.seed),
      alloc(&world.asn_db_) {}

void World::Builder::Build() {
  year_count = cfg.last_year - cfg.first_year + 1;
  ComputeTargets();
  SelectRiskCountries();
  BuildRootAndTlds();
  BuildProviderInfra();
  BuildCountryInfra();
  GenerateLifecyclesAndDeployments();
  PlanMeasurementState();
  PopulatePdns();
  BuildActiveInfrastructure();
  FinalizeRegistrar();
  ApplyCountryFaults();
  RecordNsHosts();
}

void World::Builder::RecordNsHosts() {
  // Snapshot the attached-host table into the World so post-build overlays
  // (World::ApplyVantage) can find every nameserver endpoint. `hosts` is a
  // std::map, so the snapshot is in hostname order — deterministic across
  // runs and vantages.
  w.ns_hosts_.clear();
  w.ns_hosts_.reserve(hosts.size());
  for (const auto& [hostname, record] : hosts) {
    w.ns_hosts_.push_back(NsHost{hostname, record.ips});
  }
}

void World::Builder::ApplyCountryFaults() {
  // Per-country fault overlays (DESIGN.md §6g), layered after every host is
  // wired so the base chaos realization is undisturbed. Only hosts under the
  // country's own government suffix are afflicted: shared provider farms
  // keep their behaviour, so other countries' measurements stay
  // byte-identical to a fault-free run.
  for (const WorldConfig::CountryChaos& fault : cfg.country_chaos) {
    if (!fault.chaos.Any()) continue;
    int country = CountryIndexByCode(fault.code);
    if (country < 0 ||
        country >= static_cast<int>(w.country_rt_.size())) {
      continue;
    }
    const dns::Name& suffix = w.country_rt_[country].suffix;
    for (const auto& [hostname, record] : hosts) {
      if (!hostname.IsSubdomainOf(suffix)) continue;
      for (geo::IPv4 ip : record.ips) {
        w.network_->SetBehavior(
            ip, fault.chaos.Realize(cfg.seed, ip,
                                    w.network_->GetBehavior(ip)));
      }
    }
  }
}

std::shared_ptr<zone::Zone> World::Builder::NewZone(const dns::Name& origin) {
  auto z = std::make_shared<zone::Zone>(origin);
  zones[origin] = z;
  w.zones_.push_back(z);
  return z;
}

zone::Zone* World::Builder::FindZone(const dns::Name& origin) {
  auto it = zones.find(origin);
  return it == zones.end() ? nullptr : it->second.get();
}

zone::AuthServer* World::Builder::NewServer(const std::string& id,
                                            zone::ServerMode mode) {
  w.servers_.push_back(std::make_unique<zone::AuthServer>(id, mode));
  return w.servers_.back().get();
}

void World::Builder::AttachHost(const dns::Name& hostname,
                                zone::AuthServer* server,
                                std::vector<geo::IPv4> ips) {
  GOVDNS_CHECK(server != nullptr && !ips.empty());
  for (geo::IPv4 ip : ips) {
    w.network_->AttachHandler(
        ip, [server](const std::vector<uint8_t>& wire_query) {
          auto query = dns::Message::Decode(wire_query);
          if (!query.ok()) {
            // Garbage in: a real server would send FORMERR with id 0.
            dns::Message err;
            err.header.qr = true;
            err.header.rcode = dns::Rcode::kFormErr;
            return err.Encode();
          }
          return server->Answer(*query).Encode();
        });
    w.network_->SetBehavior(
        ip, cfg.chaos.Realize(
                cfg.seed, ip,
                simnet::EndpointBehavior{.silent = false,
                                         .loss_rate = cfg.base_loss_rate,
                                         .rtt_ms = cfg.rtt_ms_base}));
  }
  hosts[hostname] = HostRecord{server, std::move(ips)};
}

void World::Builder::Delegate(zone::Zone* parent, const dns::Name& child,
                              const std::vector<dns::Name>& ns_names) {
  GOVDNS_CHECK(parent != nullptr);
  for (const dns::Name& ns : ns_names) {
    parent->Add(dns::MakeNs(child, ns, 86400));
    // Glue where required: NS target inside the delegated subtree (or at
    // least inside the parent zone's bailiwick below the cut).
    if (ns.IsSubdomainOf(child)) {
      auto it = hosts.find(ns);
      if (it != hosts.end()) {
        for (geo::IPv4 ip : it->second.ips) {
          parent->Add(dns::MakeA(ns, ip, 86400));
        }
      }
    }
  }
}

void World::Builder::AddHostAddresses(zone::Zone* zone,
                                      const dns::Name& hostname,
                                      const std::vector<geo::IPv4>& ips) {
  GOVDNS_CHECK(zone != nullptr);
  for (geo::IPv4 ip : ips) zone->Add(dns::MakeA(hostname, ip, 3600));
}

double World::Builder::TargetFor(int country, int year) const {
  int offset = year - cfg.first_year;
  GOVDNS_CHECK(offset >= 0 && offset < year_count);
  return targets[country][offset];
}

// ---------------------------------------------------------------------------
// Targets (Fig. 2 calibration)
// ---------------------------------------------------------------------------

void World::Builder::ComputeTargets() {
  auto countries = Countries();
  const int n = static_cast<int>(countries.size());
  targets.assign(n, std::vector<double>(year_count, 0.0));

  // Global anchors at scale 1.0.
  const double total_2020 = cfg.total_domains_2020;
  const double start_ratio = cfg.total_domains_2011 / cfg.total_domains_2020;

  double explicit_2020 = 0.0;
  double weight_sum = 0.0;
  for (const CountrySpec& c : countries) {
    if (c.explicit_target) {
      explicit_2020 += c.pdns_2020_weight;
    } else {
      weight_sum += c.pdns_2020_weight;
    }
  }
  const double rest_budget_2020 = total_2020 - explicit_2020;
  GOVDNS_CHECK(rest_budget_2020 > 0.0);

  const int cn = CountryIndexByCode("cn");
  for (int i = 0; i < n; ++i) {
    const CountrySpec& c = countries[i];
    double t2020 = c.explicit_target
                       ? c.pdns_2020_weight
                       : c.pdns_2020_weight / weight_sum * rest_budget_2020;
    double t2011 = t2020 * start_ratio;
    for (int y = 0; y < year_count; ++y) {
      double frac = year_count == 1 ? 1.0 : double(y) / (year_count - 1);
      targets[i][y] = (t2011 + (t2020 - t2011) * frac) * cfg.scale;
    }
  }

  // China's consolidation: growth to a 2019 peak, then the 2020 drop that
  // gives Fig. 2 its dip.
  if (cn >= 0 && countries[cn].explicit_target && year_count >= 2) {
    double t2020 = targets[cn][year_count - 1];
    double peak = t2020 * (38000.0 / 30000.0);
    double t2011 = t2020 * (14000.0 / 30000.0);
    for (int y = 0; y + 1 < year_count; ++y) {
      double frac = year_count == 2 ? 1.0 : double(y) / (year_count - 2);
      targets[cn][y] = t2011 + (peak - t2011) * frac;
    }
    targets[cn][year_count - 1] = t2020;
  }
}

// ---------------------------------------------------------------------------
// Root, TLDs, parking service
// ---------------------------------------------------------------------------

void World::Builder::BuildRootAndTlds() {
  // Root servers live under the pseudo-TLD "rootsim" and serve both zones.
  auto root_zone = NewZone(dns::Name::Root());
  auto rootsim = NewZone(dns::Name::FromString("rootsim"));
  zone::AuthServer* root_farm = NewServer("root-servers");

  geo::Cidr root_block = alloc.AllocateBlock(24, "Root Server Operators");
  std::vector<dns::Name> root_ns;
  for (int i = 0; i < 4; ++i) {
    dns::Name host =
        dns::Name::FromString(std::string(1, char('a' + i)) + ".rootsim");
    geo::IPv4 ip = geo::AddressAllocator::HostInBlock(root_block, i);
    AttachHost(host, root_farm, {ip});
    w.root_server_ips_.push_back(ip);
    root_ns.push_back(host);
    rootsim->Add(dns::MakeA(host, ip, 518400));
  }
  for (const dns::Name& ns : root_ns) {
    root_zone->Add(dns::MakeNs(dns::Name::Root(), ns, 518400));
    rootsim->Add(dns::MakeNs(rootsim->origin(), ns, 518400));
  }
  root_zone->Add(dns::MakeSoa(dns::Name::Root(), root_ns[0],
                              dns::Name::FromString("nstld.rootsim"), 1));
  rootsim->Add(dns::MakeSoa(rootsim->origin(), root_ns[0],
                            dns::Name::FromString("nstld.rootsim"), 1));
  Delegate(root_zone.get(), rootsim->origin(), root_ns);
  root_farm->AddZone(root_zone);
  root_farm->AddZone(rootsim);

  // TLDs: generic + every ccTLD + the .gov TLD (the US suffix).
  std::vector<std::string> tlds = {"com", "net", "org", "info", "gov"};
  for (const CountrySpec& c : Countries()) tlds.emplace_back(c.code);
  // "uk" etc. are already in the country list; dedupe just in case.
  std::sort(tlds.begin(), tlds.end());
  tlds.erase(std::unique(tlds.begin(), tlds.end()), tlds.end());

  for (const std::string& tld : tlds) {
    dns::Name origin = dns::Name::FromString(tld);
    auto z = NewZone(origin);
    zone::AuthServer* farm = NewServer("tld:" + tld);
    geo::Cidr block = alloc.AllocateBlock(24, "Registry " + tld);
    std::vector<dns::Name> ns_names;
    for (int i = 0; i < 2; ++i) {
      dns::Name host = origin.Child("nic").Child(std::string(1, char('a' + i)));
      geo::IPv4 ip = geo::AddressAllocator::HostInBlock(block, i);
      AttachHost(host, farm, {ip});
      z->Add(dns::MakeA(host, ip, 86400));
      ns_names.push_back(host);
    }
    for (const dns::Name& ns : ns_names) z->Add(dns::MakeNs(origin, ns, 86400));
    z->Add(dns::MakeSoa(origin, ns_names[0],
                        origin.Child("nic").Child("hostmaster"), 1));
    Delegate(root_zone.get(), origin, ns_names);
    farm->AddZone(z);
    w.psl_.AddSuffix(origin);
  }
  // Multi-label public suffixes used by provider NS domains.
  w.psl_.AddSuffix(dns::Name::FromString("co.uk"));
  w.psl_.AddSuffix(dns::Name::FromString("com.br"));

  // The domain-parking service: answers every query with its own records.
  {
    dns::Name park_domain = dns::Name::FromString("parkmonster.com");
    // The farm's id doubles as the NS name it claims in parking answers.
    parking_farm = NewServer("ns1.parkmonster.com", zone::ServerMode::kParking);
    geo::Cidr block = alloc.AllocateBlock(24, "ParkMonster Inc");
    parking_ns1 = park_domain.Child("ns1");
    parking_ns2 = park_domain.Child("ns2");
    parking_ips = {geo::AddressAllocator::HostInBlock(block, 0),
                   geo::AddressAllocator::HostInBlock(block, 1)};
    // Parking answers A queries with its own (DNS-serving) addresses, so a
    // hijack probe that follows them still gets responses (§IV-D: "the
    // ADNS involved were not defective").
    parking_farm->SetParkingAddresses(parking_ips);
    AttachHost(parking_ns1, parking_farm, {parking_ips[0]});
    AttachHost(parking_ns2, parking_farm, {parking_ips[1]});
    // parkmonster.com itself must resolve normally: a small normal zone on
    // a separate server, so only *parked customer domains* hit the
    // catch-all behaviour.
    auto z = NewZone(park_domain);
    zone::AuthServer* self = NewServer("parking-self");
    geo::IPv4 self_ip = geo::AddressAllocator::HostInBlock(block, 2);
    dns::Name self_ns = park_domain.Child("self");
    AttachHost(self_ns, self, {self_ip});
    z->Add(dns::MakeA(self_ns, self_ip, 3600));
    z->Add(dns::MakeA(parking_ns1, parking_ips[0], 3600));
    z->Add(dns::MakeA(parking_ns2, parking_ips[1], 3600));
    z->Add(dns::MakeNs(park_domain, self_ns, 3600));
    z->Add(dns::MakeSoa(park_domain, self_ns,
                        park_domain.Child("hostmaster"), 1));
    self->AddZone(z);
    Delegate(FindZone(dns::Name::FromString("com")), park_domain, {self_ns});
    w.registrar_.Register(park_domain);
  }
}

// ---------------------------------------------------------------------------
// Providers
// ---------------------------------------------------------------------------

void World::Builder::BuildProviderInfra() {
  auto specs = Providers();
  providers.resize(specs.size());
  for (size_t p = 0; p < specs.size(); ++p) {
    const ProviderSpec& spec = specs[p];
    ProviderRuntime& rt = providers[p];
    rt.spec = &spec;
    rt.alive_2021 = spec.end_year == 0 || spec.end_year >= 2021;

    // Hostname pool.
    for (int i = 0; i < spec.pool_size; ++i) {
      rt.hostnames.push_back(ProviderHostname(spec, i));
    }

    // Address blocks: num_prefixes /24s spread over num_asns ASNs.
    std::vector<geo::Cidr> blocks;
    uint32_t first_asn = 0;
    for (int b = 0; b < spec.num_prefixes; ++b) {
      std::optional<uint32_t> reuse;
      // Blocks pair up within an ASN so that a customer's consecutive
      // hostname picks land in one AS about half the time.
      if (spec.num_asns > 0 && b > 0) {
        uint32_t asn_index = static_cast<uint32_t>((b / 2) % spec.num_asns);
        if (!(b < 2 && asn_index == 0)) reuse = first_asn + asn_index;
      }
      geo::Cidr block = alloc.AllocateBlock(24, spec.display, reuse);
      if (b == 0) first_asn = alloc.last_asn();
      blocks.push_back(block);
    }

    if (rt.alive_2021) rt.farm = NewServer("provider:" + std::string(spec.group_key));

    std::vector<uint32_t> block_cursor(blocks.size(), 0);
    for (size_t i = 0; i < rt.hostnames.size(); ++i) {
      size_t b = i % blocks.size();
      geo::IPv4 ip =
          geo::AddressAllocator::HostInBlock(blocks[b], block_cursor[b]++);
      rt.hostname_ips.push_back(ip);
      if (rt.farm != nullptr) AttachHost(rt.hostnames[i], rt.farm, {ip});
    }

    // Zones for the registered domains the hostnames live under; alive
    // providers get real zones + delegations, dead ones get nothing (their
    // hostnames become unresolvable, feeding the lame-delegation pool).
    if (!rt.alive_2021) continue;
    std::map<dns::Name, std::vector<size_t>> by_domain;
    for (size_t i = 0; i < rt.hostnames.size(); ++i) {
      auto reg = w.psl_.RegisteredDomain(rt.hostnames[i]);
      GOVDNS_CHECK(reg.has_value());
      by_domain[*reg].push_back(i);
    }
    for (const auto& [domain, host_idx] : by_domain) {
      auto z = NewZone(domain);
      std::vector<dns::Name> apex_ns;
      for (size_t k = 0; k < host_idx.size() && k < 2; ++k) {
        apex_ns.push_back(rt.hostnames[host_idx[k]]);
      }
      for (size_t i : host_idx) {
        z->Add(dns::MakeA(rt.hostnames[i], rt.hostname_ips[i], 3600));
      }
      for (const dns::Name& ns : apex_ns) z->Add(dns::MakeNs(domain, ns, 3600));
      z->Add(dns::MakeSoa(domain, apex_ns[0], domain.Child("hostmaster"), 1));
      rt.farm->AddZone(z);
      // Delegate from the TLD that contains it.
      auto suffix = w.psl_.MatchingSuffix(domain);
      GOVDNS_CHECK(suffix.has_value());
      zone::Zone* tld = FindZone(suffix->Suffix(1));
      GOVDNS_CHECK(tld != nullptr);
      Delegate(tld, domain, apex_ns);
      w.registrar_.Register(domain);
    }
  }
}

// ---------------------------------------------------------------------------
// Countries
// ---------------------------------------------------------------------------

void World::Builder::BuildCountryInfra() {
  auto countries = Countries();
  const int n = static_cast<int>(countries.size());
  w.country_rt_.resize(n);
  country_pools.resize(n);
  country_company_ids.resize(n);
  country_active.resize(n);

  // The paper's §III-A quirks.
  const std::set<std::string> broken_links = {"er", "kp", "tm", "so", "ss",
                                              "dj", "td", "cf", "nr", "tv",
                                              "ki"};
  const std::set<std::string> msq_differs = {"tm", "so"};
  const std::string squatted_country = "gq";

  for (int i = 0; i < n; ++i) {
    const CountrySpec& spec = countries[i];
    CountryRuntime& rt = w.country_rt_[i];
    util::Rng crng = rng.Fork(std::string("country:") + spec.code);

    // Suffix name.
    std::string suffix_text = spec.suffix[0] != '\0'
                                  ? spec.suffix
                                  : std::string("gov.") + spec.code;
    rt.suffix = dns::Name::FromString(suffix_text);

    country_pools[i].Init(&alloc, std::string(spec.name) + " Government", 4);

    // Suffix zone + central government DNS. When the suffix is a TLD (the
    // US .gov), the TLD zone built earlier doubles as the suffix zone.
    zone::Zone* suffix_zone = FindZone(rt.suffix);
    if (suffix_zone == nullptr) {
      auto z = NewZone(rt.suffix);
      suffix_zone = z.get();
      zone::AuthServer* central = NewServer(std::string("central:") + spec.code);
      int central_count = 2 + static_cast<int>(crng.UniformU64(2));
      // Central infrastructure topology follows the country's diversity
      // profile: one AS for NIC-style consolidation, a shared front
      // address where the profile says nameserver pairs collapse to one IP.
      const bool central_multi_asn =
          spec.diversity.p_single_asn_given_multi_24 < 0.5;
      const bool central_shared_ip = spec.diversity.p_single_ip > 0.3;
      const bool central_single_24 =
          spec.diversity.p_single_24_given_multi_ip > 0.4;
      geo::IPv4 shared_ip;
      for (int k = 0; k < central_count; ++k) {
        dns::Name host = rt.suffix.Child("nic").Child("ns" + std::to_string(k + 1));
        geo::IPv4 ip;
        if (central_shared_ip && k > 0) {
          ip = shared_ip;
        } else {
          ip = country_pools[i].Take(central_multi_asn ? k % 2 : 0,
                                     /*fresh_prefix=*/!central_single_24 || k == 0);
          shared_ip = ip;
        }
        AttachHost(host, central, {ip});
        z->Add(dns::MakeA(host, ip, 86400));
        rt.central_ns.push_back(host);
      }
      for (const dns::Name& ns : rt.central_ns) {
        z->Add(dns::MakeNs(rt.suffix, ns, 86400));
      }
      z->Add(dns::MakeSoa(rt.suffix, rt.central_ns[0],
                          rt.suffix.Child("hostmaster"), 1));
      central->AddZone(z);
      // Delegate from the enclosing zone (ccTLD, or deeper for registered
      // domains like jis.gov.jm whose parent gov.jm has no zone: delegate
      // straight from the ccTLD in that case).
      dns::Name tld = rt.suffix.Suffix(1);
      zone::Zone* parent = FindZone(tld);
      GOVDNS_CHECK(parent != nullptr);
      Delegate(parent, rt.suffix, rt.central_ns);
    } else {
      // TLD-as-suffix (US): reuse the registry servers as central NS.
      rt.central_ns.push_back(rt.suffix.Child("nic").Child("a"));
      rt.central_ns.push_back(rt.suffix.Child("nic").Child("b"));
    }

    // PSL and registry policy.
    if (spec.suffix_style == SuffixStyle::kReservedSuffix) {
      w.psl_.AddSuffix(rt.suffix);
      w.registry_policy_.restricted[rt.suffix] = true;
    } else {
      // The enclosing "gov.xx" is a public suffix but has no restriction
      // documentation (the paper's gov.la / gov.tl / gov.jm situation), or
      // the portal is an ordinary registered domain (regjeringen.no).
      if (rt.suffix.LabelCount() >= 3) {
        w.psl_.AddSuffix(rt.suffix.Parent());
      }
      w.registrar_.Register(rt.suffix);
    }

    // Portal FQDN + knowledge-base entry.
    rt.portal_fqdn = rt.suffix.Child("www");
    KnowledgeBaseEntry kb;
    kb.country = i;
    kb.portal_fqdn = rt.portal_fqdn;
    kb.msq_fqdn = rt.portal_fqdn;
    if (broken_links.contains(spec.code)) {
      kb.link_resolves = false;
      if (msq_differs.contains(spec.code)) {
        // The KB page still points at a long-dead domain.
        kb.portal_fqdn =
            dns::Name::FromString(std::string("www.old-portal.") + spec.code);
      }
    } else if (spec.code == squatted_country) {
      // Link resolves, but to a squatter: a parked .com domain.
      dns::Name squat =
          dns::Name::FromString(std::string("egov-") + spec.code + ".com");
      kb.portal_fqdn = squat.Child("www");
      kb.link_squatted = true;
      // Delegate the squatted domain to the parking service.
      Delegate(FindZone(dns::Name::FromString("com")), squat,
               {parking_ns1, parking_ns2});
      parking_farm->AddZone(NewZone(squat));  // catch-all answers anyway
      w.registrar_.Register(squat);
    }
    w.knowledge_base_.push_back(kb);

    // National hosting companies.
    double t2020 = targets[i][year_count - 1];
    int n_comp = std::max(
        2, static_cast<int>(std::lround(cfg.national_companies_per_1k_domains *
                                        t2020 / 1000.0)));
    for (int k = 0; k < n_comp; ++k) {
      NationalCompany comp;
      const char* word = kHostWords[crng.UniformU64(std::size(kHostWords))];
      std::string base = std::string(word) + std::to_string(k + 1);
      bool under_com = crng.Bernoulli(0.6);
      comp.domain = dns::Name::FromString(
          under_com ? base + spec.code + ".com" : base + "." + spec.code);
      comp.first_year = 2004 + static_cast<int>(crng.UniformU64(14));
      if (crng.Bernoulli(0.40)) {
        comp.last_year = std::min(
            2020, comp.first_year + 2 + static_cast<int>(crng.UniformU64(12)));
      }
      // Topology from the country's diversity profile.
      const DiversityProfile& dp = spec.diversity;
      if (crng.Bernoulli(dp.p_single_ip)) {
        comp.num_ips = 1;
        comp.num_prefixes = 1;
        comp.num_asns = 1;
      } else {
        comp.num_ips = 2;
        comp.num_prefixes =
            crng.Bernoulli(dp.p_single_24_given_multi_ip) ? 1 : 2;
        comp.num_asns = comp.num_prefixes == 1
                            ? 1
                            : (crng.Bernoulli(dp.p_single_asn_given_multi_24)
                                   ? 1
                                   : 2);
      }
      comp.ns_names = {comp.domain.Child("ns1"), comp.domain.Child("ns2")};
      rt.companies.push_back(comp);

      CompanyRuntime comp_rt;
      comp_rt.country = i;
      comp_rt.index_in_country = k;
      const bool alive_2021 = comp.last_year == 0;
      if (alive_2021) {
        // Live infrastructure: addresses, endpoints, zone, delegation.
        zone::AuthServer* farm =
            NewServer("company:" + comp.domain.ToString());
        comp_rt.farm = farm;
        for (int ni = 0; ni < 2; ++ni) {
          int group = comp.num_asns == 2 ? ni % 2 : 0;
          bool fresh = comp.num_prefixes == 2 && ni > 0;
          geo::IPv4 ip = comp.num_ips == 1 && ni > 0
                             ? comp_rt.ns_ips[0]
                             : country_pools[i].Take(group, fresh);
          comp_rt.ns_ips.push_back(ip);
        }
        if (comp.num_ips == 1) {
          AttachHost(comp.ns_names[0], farm, {comp_rt.ns_ips[0]});
          hosts[comp.ns_names[1]] = HostRecord{farm, {comp_rt.ns_ips[1]}};
        } else {
          AttachHost(comp.ns_names[0], farm, {comp_rt.ns_ips[0]});
          AttachHost(comp.ns_names[1], farm, {comp_rt.ns_ips[1]});
        }
        auto z = NewZone(comp.domain);
        z->Add(dns::MakeA(comp.ns_names[0], comp_rt.ns_ips[0], 3600));
        z->Add(dns::MakeA(comp.ns_names[1], comp_rt.ns_ips[1], 3600));
        for (const dns::Name& ns : comp.ns_names) {
          z->Add(dns::MakeNs(comp.domain, ns, 3600));
        }
        z->Add(dns::MakeSoa(comp.domain, comp.ns_names[0],
                            comp.domain.Child("hostmaster"), 1));
        farm->AddZone(z);
        dns::Name tld = comp.domain.Suffix(1);
        zone::Zone* parent_zone = FindZone(tld);
        GOVDNS_CHECK(parent_zone != nullptr);
        Delegate(parent_zone, comp.domain, comp.ns_names);
        w.registrar_.Register(comp.domain);
      }
      country_company_ids[i].push_back(static_cast<int>(companies.size()));
      companies.push_back(std::move(comp_rt));
    }

    // The country-wide shared dead nameserver, when configured: half the
    // affected countries get a resolvable-but-silent host, half an
    // unresolvable hostname.
    if (spec.shared_dead_ns_rate > 0.0) {
      dns::Name host = rt.suffix.Child("nic").Child("ns-old");
      rt.shared_dead_ns = host;
      if (crng.Bernoulli(0.25)) {
        // Resolvable but silent.
        geo::IPv4 ip = country_pools[i].Take(0, true);
        suffix_zone->Add(dns::MakeA(host, ip, 86400));
        w.network_->SetBehavior(ip, simnet::EndpointBehavior{.silent = true});
      }
      // else: no A record anywhere -> unresolvable.
    }

    // Live intermediate zones (the gov.br state layer); their zones and
    // delegations are created here, domains are placed under them later.
    if (spec.deep_hierarchy_share > 0.0) {
      int n_inter =
          std::max(3, static_cast<int>(std::lround(t2020 / 600.0)));
      for (int k = 0; k < n_inter; ++k) {
        dns::Name inter = rt.suffix.Child("r" + std::to_string(k + 1));
        rt.intermediate_zones.push_back(inter);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Entry point
// ---------------------------------------------------------------------------

std::unique_ptr<World> BuildWorld(const WorldConfig& config) {
  auto world = std::unique_ptr<World>(new World(config));
  World::Builder builder(*world);
  builder.Build();
  return world;
}

}  // namespace govdns::worldgen
