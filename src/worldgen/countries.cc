#include "worldgen/countries.h"

#include <map>
#include <vector>

#include "util/status.h"

namespace govdns::worldgen {

namespace {

// Relative-weight classes for countries without explicit paper targets.
constexpr double kBig = 2400;    // large, developed e-government
constexpr double kUpper = 1200;  // substantial deployments
constexpr double kMid = 450;     // moderate
constexpr double kSmall = 120;   // small
constexpr double kTiny = 12;     // a handful of zones

const char* const kSubRegions[] = {
    "Northern Africa",    "Eastern Africa",   "Middle Africa",
    "Southern Africa",    "Western Africa",   "Caribbean",
    "Central America",    "South America",    "Northern America",
    "Central Asia",       "Eastern Asia",     "South-eastern Asia",
    "Southern Asia",      "Western Asia",     "Eastern Europe",
    "Northern Europe",    "Southern Europe",  "Western Europe",
    "Australia and New Zealand", "Melanesia", "Micronesia",
    "Polynesia",
};

const char* const kTop10[] = {"cn", "th", "br", "mx", "uk",
                              "tr", "in", "au", "ua", "ar"};

CountrySpec Make(const char* code, const char* name, const char* subregion,
                 double weight) {
  CountrySpec c{};
  c.code = code;
  c.name = name;
  c.subregion = subregion;
  c.pdns_2020_weight = weight;
  c.explicit_target = false;
  c.suffix_style = SuffixStyle::kReservedSuffix;
  c.suffix = "";  // default gov.<code>
  c.private_share = 0.32;
  c.national_share = 0.52;
  c.diversity = DiversityProfile{};
  c.deep_hierarchy_share = 0.03;  // small legacy subtrees everywhere
  c.dead_intermediate_share = 0.5;
  c.extra_stale_rate = 0.0;
  c.shared_dead_ns_rate = 0.17;
  return c;
}

std::vector<CountrySpec> BuildCountries() {
  std::vector<CountrySpec> v;
  auto add = [&](const char* code, const char* name, const char* subregion,
                 double weight) -> CountrySpec& {
    v.push_back(Make(code, name, subregion, weight));
    return v.back();
  };

  // ---- Northern Africa ----
  add("dz", "Algeria", "Northern Africa", kMid);
  add("eg", "Egypt", "Northern Africa", 900);
  add("ly", "Libya", "Northern Africa", kSmall);
  add("ma", "Morocco", "Northern Africa", 700);
  add("sd", "Sudan", "Northern Africa", kSmall);
  add("tn", "Tunisia", "Northern Africa", kMid);

  // ---- Eastern Africa ----
  add("bi", "Burundi", "Eastern Africa", kTiny);
  add("km", "Comoros", "Eastern Africa", kTiny);
  add("dj", "Djibouti", "Eastern Africa", kTiny);
  add("er", "Eritrea", "Eastern Africa", kTiny);
  add("et", "Ethiopia", "Eastern Africa", kSmall);
  add("ke", "Kenya", "Eastern Africa", 1100).suffix = "go.ke";
  add("mg", "Madagascar", "Eastern Africa", kSmall);
  add("mw", "Malawi", "Eastern Africa", kSmall);
  add("mu", "Mauritius", "Eastern Africa", kSmall);
  add("mz", "Mozambique", "Eastern Africa", kSmall);
  add("rw", "Rwanda", "Eastern Africa", kSmall);
  add("sc", "Seychelles", "Eastern Africa", kTiny);
  add("so", "Somalia", "Eastern Africa", kTiny);
  add("ss", "South Sudan", "Eastern Africa", kTiny);
  add("ug", "Uganda", "Eastern Africa", kMid).suffix = "go.ug";
  add("tz", "Tanzania", "Eastern Africa", kMid).suffix = "go.tz";
  add("zm", "Zambia", "Eastern Africa", kSmall);
  add("zw", "Zimbabwe", "Eastern Africa", kSmall);

  // ---- Middle Africa ----
  add("ao", "Angola", "Middle Africa", kSmall);
  add("cm", "Cameroon", "Middle Africa", kSmall);
  add("cf", "Central African Republic", "Middle Africa", kTiny);
  add("td", "Chad", "Middle Africa", kTiny);
  add("cg", "Congo", "Middle Africa", kTiny);
  add("cd", "DR Congo", "Middle Africa", kSmall);
  add("gq", "Equatorial Guinea", "Middle Africa", kTiny);
  add("ga", "Gabon", "Middle Africa", kTiny);
  add("st", "Sao Tome and Principe", "Middle Africa", kTiny);

  // ---- Southern Africa ----
  add("bw", "Botswana", "Southern Africa", kSmall);
  add("sz", "Eswatini", "Southern Africa", kTiny);
  add("ls", "Lesotho", "Southern Africa", kTiny);
  add("na", "Namibia", "Southern Africa", kSmall);
  add("za", "South Africa", "Southern Africa", 1500);

  // ---- Western Africa ----
  add("bj", "Benin", "Western Africa", kSmall).suffix = "gouv.bj";
  {
    auto& bf = add("bf", "Burkina Faso", "Western Africa", 9);
    bf.shared_dead_ns_rate = 0.30;  // few domains, weak upkeep (Fig 9 note)
  }
  add("cv", "Cabo Verde", "Western Africa", kTiny);
  add("ci", "Cote d'Ivoire", "Western Africa", kSmall).suffix = "gouv.ci";
  add("gm", "Gambia", "Western Africa", kTiny);
  add("gh", "Ghana", "Western Africa", kMid);
  add("gn", "Guinea", "Western Africa", kTiny);
  add("gw", "Guinea-Bissau", "Western Africa", kTiny);
  add("lr", "Liberia", "Western Africa", kTiny);
  add("ml", "Mali", "Western Africa", kSmall);
  add("mr", "Mauritania", "Western Africa", kTiny);
  add("ne", "Niger", "Western Africa", kTiny);
  add("ng", "Nigeria", "Western Africa", 1000);
  add("sn", "Senegal", "Western Africa", kSmall).suffix = "gouv.sn";
  add("sl", "Sierra Leone", "Western Africa", kTiny);
  add("tg", "Togo", "Western Africa", kTiny).suffix = "gouv.tg";

  // ---- Caribbean ----
  add("ag", "Antigua and Barbuda", "Caribbean", kTiny);
  add("bs", "Bahamas", "Caribbean", kSmall);
  add("bb", "Barbados", "Caribbean", kSmall);
  add("cu", "Cuba", "Caribbean", kSmall);
  add("dm", "Dominica", "Caribbean", kTiny);
  add("do", "Dominican Republic", "Caribbean", kMid).suffix = "gob.do";
  add("gd", "Grenada", "Caribbean", kTiny);
  add("ht", "Haiti", "Caribbean", kTiny).suffix = "gouv.ht";
  {
    // Paper: could not verify jis.gov.jm's suffix restriction; registered
    // domain used instead of the suffix.
    auto& jm = add("jm", "Jamaica", "Caribbean", kSmall);
    jm.suffix_style = SuffixStyle::kRegisteredDomain;
    jm.suffix = "jis.gov.jm";
  }
  add("kn", "Saint Kitts and Nevis", "Caribbean", kTiny);
  add("lc", "Saint Lucia", "Caribbean", kTiny);
  add("vc", "Saint Vincent and the Grenadines", "Caribbean", kTiny);
  add("tt", "Trinidad and Tobago", "Caribbean", kSmall);

  // ---- Central America ----
  add("bz", "Belize", "Central America", kTiny);
  add("cr", "Costa Rica", "Central America", kMid).suffix = "go.cr";
  add("sv", "El Salvador", "Central America", kMid).suffix = "gob.sv";
  add("gt", "Guatemala", "Central America", kMid).suffix = "gob.gt";
  add("hn", "Honduras", "Central America", kSmall).suffix = "gob.hn";
  {
    auto& mx = add("mx", "Mexico", "Central America", 7800);
    mx.explicit_target = true;
    mx.suffix = "gob.mx";
    mx.diversity = {0.100, 0.251, 0.619};
    mx.extra_stale_rate = 0.22;      // paper: many stale d_1NS, stale records
    mx.shared_dead_ns_rate = 0.26;
    mx.deep_hierarchy_share = 0.15;
    mx.dead_intermediate_share = 0.70;
  }
  add("ni", "Nicaragua", "Central America", kSmall).suffix = "gob.ni";
  add("pa", "Panama", "Central America", kSmall).suffix = "gob.pa";

  // ---- South America ----
  {
    auto& ar = add("ar", "Argentina", "South America", 4200);
    ar.explicit_target = true;
    ar.suffix = "gob.ar";
    ar.diversity = {0.024, 0.264, 0.575};
    ar.shared_dead_ns_rate = 0.18;
  }
  {
    auto& bo = add("bo", "Bolivia", "South America", 9);
    bo.suffix = "gob.bo";
    bo.shared_dead_ns_rate = 0.30;
  }
  {
    auto& br = add("br", "Brazil", "South America", 11000);
    br.explicit_target = true;
    br.diversity = {0.043, 0.432, 0.748};
    br.deep_hierarchy_share = 0.80;  // state zones: 53% of 4th-level domains
    br.dead_intermediate_share = 0.08;
    br.extra_stale_rate = 0.20;
    br.shared_dead_ns_rate = 0.30;
  }
  add("cl", "Chile", "South America", 1400).suffix = "gob.cl";
  add("co", "Colombia", "South America", 1800);
  add("ec", "Ecuador", "South America", 1200).suffix = "gob.ec";
  add("gy", "Guyana", "South America", kTiny);
  add("py", "Paraguay", "South America", kSmall);
  add("pe", "Peru", "South America", 1500).suffix = "gob.pe";
  add("sr", "Suriname", "South America", kTiny);
  add("uy", "Uruguay", "South America", kMid).suffix = "gub.uy";
  add("ve", "Venezuela", "South America", kMid).suffix = "gob.ve";

  // ---- Northern America ----
  {
    auto& ca = add("ca", "Canada", "Northern America", 1700);
    ca.suffix = "gc.ca";
  }
  {
    auto& us = add("us", "United States", "Northern America", 3000);
    us.suffix = "gov";  // the .gov TLD itself
  }

  // ---- Central Asia ----
  add("kz", "Kazakhstan", "Central Asia", 700);
  {
    auto& kg = add("kg", "Kyrgyzstan", "Central Asia", 400);
    kg.extra_stale_rate = 0.30;  // paper: >half of d_1NS unresponsive
    kg.private_share = 0.55;
  }
  add("tj", "Tajikistan", "Central Asia", kSmall);
  add("tm", "Turkmenistan", "Central Asia", kTiny);
  add("uz", "Uzbekistan", "Central Asia", kMid);

  // ---- Eastern Asia ----
  {
    auto& cn = add("cn", "China", "Eastern Asia", 30000);
    cn.explicit_target = true;
    cn.diversity = {0.027, 0.016, 0.452};
    cn.deep_hierarchy_share = 0.45;  // provincial/prefecture zones
    cn.dead_intermediate_share = 0.75;  // the 2020/21 consolidation
    cn.private_share = 0.18;
    cn.national_share = 0.72;  // hichina/xincache/dns-diy dominate
    cn.shared_dead_ns_rate = 0.10;
  }
  add("jp", "Japan", "Eastern Asia", 2000).suffix = "go.jp";
  add("mn", "Mongolia", "Eastern Asia", 300);
  add("kp", "North Korea", "Eastern Asia", kTiny);
  add("kr", "South Korea", "Eastern Asia", 2000).suffix = "go.kr";

  // ---- South-eastern Asia ----
  add("bn", "Brunei", "South-eastern Asia", kSmall);
  add("kh", "Cambodia", "South-eastern Asia", kSmall);
  {
    auto& id = add("id", "Indonesia", "South-eastern Asia", 2600);
    id.suffix = "go.id";
    id.extra_stale_rate = 0.30;  // paper: >half of d_1NS unresponsive
    id.private_share = 0.45;
    id.deep_hierarchy_share = 0.15;
    id.dead_intermediate_share = 0.70;
  }
  {
    // Paper: could not verify restriction; used registered domain.
    auto& la = add("la", "Laos", "South-eastern Asia", kSmall);
    la.suffix_style = SuffixStyle::kRegisteredDomain;
    la.suffix = "laogov.gov.la";
  }
  add("my", "Malaysia", "South-eastern Asia", 1500);
  add("mm", "Myanmar", "South-eastern Asia", kMid);
  add("ph", "Philippines", "South-eastern Asia", 1500);
  add("sg", "Singapore", "South-eastern Asia", kMid);
  {
    auto& th = add("th", "Thailand", "South-eastern Asia", 11500);
    th.explicit_target = true;
    th.suffix = "go.th";
    th.diversity = {0.639, 0.122, 0.571};  // NS pairs sharing one address
    th.private_share = 0.50;
    th.shared_dead_ns_rate = 0.38;
    th.deep_hierarchy_share = 0.18;
    th.dead_intermediate_share = 0.70;
  }
  {
    auto& tl = add("tl", "Timor-Leste", "South-eastern Asia", kTiny);
    tl.suffix_style = SuffixStyle::kRegisteredDomain;
    tl.suffix = "timor-leste.gov.tl";
  }
  add("vn", "Vietnam", "South-eastern Asia", 1600);

  // ---- Southern Asia ----
  add("af", "Afghanistan", "Southern Asia", kSmall);
  add("bd", "Bangladesh", "Southern Asia", 800);
  add("bt", "Bhutan", "Southern Asia", kTiny);
  {
    auto& in = add("in", "India", "Southern Asia", 6600);
    in.explicit_target = true;
    in.diversity = {0.066, 0.100, 0.874};  // NIC: one AS hosts nearly all
    in.private_share = 0.55;               // NIC-run infrastructure
    in.national_share = 0.35;
    in.shared_dead_ns_rate = 0.22;
  }
  add("ir", "Iran", "Southern Asia", kMid);
  add("mv", "Maldives", "Southern Asia", kTiny);
  add("np", "Nepal", "Southern Asia", kMid);
  add("pk", "Pakistan", "Southern Asia", 700);
  add("lk", "Sri Lanka", "Southern Asia", kMid);

  // ---- Western Asia ----
  add("am", "Armenia", "Western Asia", kSmall);
  add("az", "Azerbaijan", "Western Asia", kMid);
  add("bh", "Bahrain", "Western Asia", kSmall);
  add("cy", "Cyprus", "Western Asia", kSmall);
  add("ge", "Georgia", "Western Asia", kMid);
  add("iq", "Iraq", "Western Asia", kSmall);
  add("il", "Israel", "Western Asia", 1000);
  add("jo", "Jordan", "Western Asia", kMid);
  add("kw", "Kuwait", "Western Asia", kSmall);
  add("lb", "Lebanon", "Western Asia", kSmall);
  add("om", "Oman", "Western Asia", kSmall);
  add("qa", "Qatar", "Western Asia", kSmall);
  add("sa", "Saudi Arabia", "Western Asia", 800);
  add("sy", "Syria", "Western Asia", kTiny);
  {
    auto& tr = add("tr", "Turkey", "Western Asia", 6800);
    tr.explicit_target = true;
    tr.diversity = {0.089, 0.203, 0.420};
    tr.extra_stale_rate = 0.25;  // paper: hundreds of stale records
    tr.shared_dead_ns_rate = 0.40;
    tr.deep_hierarchy_share = 0.15;
    tr.dead_intermediate_share = 0.70;
  }
  {
    auto& ae = add("ae", "United Arab Emirates", "Western Asia", 8);
    ae.shared_dead_ns_rate = 0.25;  // centralized e-gov, few zones
  }
  add("ye", "Yemen", "Western Asia", kTiny);

  // ---- Eastern Europe ----
  add("by", "Belarus", "Eastern Europe", kMid);
  {
    auto& bg = add("bg", "Bulgaria", "Eastern Europe", 9);
    bg.shared_dead_ns_rate = 0.30;
  }
  add("cz", "Czechia", "Eastern Europe", kUpper);
  add("hu", "Hungary", "Eastern Europe", kUpper);
  add("md", "Moldova", "Eastern Europe", kMid);
  add("pl", "Poland", "Eastern Europe", 1800);
  add("ro", "Romania", "Eastern Europe", kUpper);
  add("ru", "Russia", "Eastern Europe", kBig);
  add("sk", "Slovakia", "Eastern Europe", kMid);
  {
    auto& ua = add("ua", "Ukraine", "Eastern Europe", 5100);
    ua.explicit_target = true;
    ua.diversity = {0.010, 0.371, 0.276};
    ua.shared_dead_ns_rate = 0.16;
  }

  // ---- Northern Europe ----
  add("dk", "Denmark", "Northern Europe", kUpper);
  add("ee", "Estonia", "Northern Europe", kMid);
  add("fi", "Finland", "Northern Europe", kUpper);
  add("is", "Iceland", "Northern Europe", kSmall);
  add("ie", "Ireland", "Northern Europe", kUpper);
  add("lv", "Latvia", "Northern Europe", kMid);
  add("lt", "Lithuania", "Northern Europe", kMid);
  {
    // Paper: the one portal FQDN with NS records not covered by a suffix
    // check; the registered domain is government-run.
    auto& no = add("no", "Norway", "Northern Europe", kUpper);
    no.suffix_style = SuffixStyle::kRegisteredDomain;
    no.suffix = "regjeringen.no";
  }
  add("se", "Sweden", "Northern Europe", kUpper);
  {
    auto& uk = add("uk", "United Kingdom", "Northern Europe", 7000);
    uk.explicit_target = true;
    uk.diversity = {0.003, 0.036, 0.735};
    uk.shared_dead_ns_rate = 0.06;
  }

  // ---- Southern Europe ----
  add("al", "Albania", "Southern Europe", kSmall);
  add("ad", "Andorra", "Southern Europe", kTiny);
  add("ba", "Bosnia and Herzegovina", "Southern Europe", kSmall);
  add("hr", "Croatia", "Southern Europe", kMid);
  add("gr", "Greece", "Southern Europe", kUpper);
  add("it", "Italy", "Southern Europe", 2200);
  add("mt", "Malta", "Southern Europe", kSmall);
  add("me", "Montenegro", "Southern Europe", kSmall);
  add("mk", "North Macedonia", "Southern Europe", kSmall);
  add("pt", "Portugal", "Southern Europe", kUpper);
  add("sm", "San Marino", "Southern Europe", kTiny);
  add("rs", "Serbia", "Southern Europe", kMid);
  add("si", "Slovenia", "Southern Europe", kMid);
  add("es", "Spain", "Southern Europe", 2200).suffix = "gob.es";

  // ---- Western Europe ----
  add("at", "Austria", "Western Europe", kUpper).suffix = "gv.at";
  add("be", "Belgium", "Western Europe", kUpper);
  add("fr", "France", "Western Europe", 2500).suffix = "gouv.fr";
  add("de", "Germany", "Western Europe", 2500).suffix = "bund.de";
  add("li", "Liechtenstein", "Western Europe", kTiny);
  add("lu", "Luxembourg", "Western Europe", kSmall);
  add("mc", "Monaco", "Western Europe", kTiny).suffix = "gouv.mc";
  add("nl", "Netherlands", "Western Europe", 1300).suffix = "overheid.nl";
  add("ch", "Switzerland", "Western Europe", kUpper).suffix = "admin.ch";

  // ---- Australia and New Zealand ----
  {
    auto& au = add("au", "Australia", "Australia and New Zealand", 5400);
    au.explicit_target = true;
    au.diversity = {0.008, 0.076, 0.902};  // provider-heavy, single-AS
    au.private_share = 0.20;
    au.national_share = 0.40;
    au.shared_dead_ns_rate = 0.08;
  }
  add("nz", "New Zealand", "Australia and New Zealand", kUpper).suffix =
      "govt.nz";

  // ---- Melanesia ----
  add("fj", "Fiji", "Melanesia", kSmall);
  add("pg", "Papua New Guinea", "Melanesia", kTiny);
  add("sb", "Solomon Islands", "Melanesia", kTiny);
  add("vu", "Vanuatu", "Melanesia", kTiny);

  // ---- Micronesia ----
  add("ki", "Kiribati", "Micronesia", kTiny);
  add("mh", "Marshall Islands", "Micronesia", kTiny);
  add("fm", "Micronesia", "Micronesia", kTiny);
  add("nr", "Nauru", "Micronesia", kTiny);
  add("pw", "Palau", "Micronesia", kTiny);

  // ---- Polynesia ----
  add("ws", "Samoa", "Polynesia", kTiny);
  add("to", "Tonga", "Polynesia", kTiny);
  add("tv", "Tuvalu", "Polynesia", kTiny);

  return v;
}

const std::vector<CountrySpec>& CountryVector() {
  static const std::vector<CountrySpec> kCountries = BuildCountries();
  GOVDNS_CHECK(kCountries.size() == 193);
  return kCountries;
}

}  // namespace

std::span<const CountrySpec> Countries() { return CountryVector(); }

int CountryIndexByCode(const std::string& code) {
  static const std::map<std::string, int> kIndex = [] {
    std::map<std::string, int> m;
    const auto& countries = CountryVector();
    for (int i = 0; i < static_cast<int>(countries.size()); ++i) {
      m[countries[i].code] = i;
    }
    return m;
  }();
  auto it = kIndex.find(code);
  return it == kIndex.end() ? -1 : it->second;
}

std::span<const char* const> SubRegionNames() { return kSubRegions; }

std::span<const char* const> Top10CountryCodes() { return kTop10; }

}  // namespace govdns::worldgen
