// Bridges a generated World to the core library's StudyInputs.
//
// The analysis pipeline (core) only sees the substrate interfaces; this
// adapter is the single place where the simulated world is plugged into
// them, exactly as socket transports and real databases would be.
#pragma once

#include "core/study.h"
#include "worldgen/world.h"

namespace govdns::worldgen {

// Country metadata in the shape core expects (code/name/sub-region/top-10).
std::vector<core::CountryMeta> MakeCountryMetas();

// The UN-knowledge-base records of a world.
std::vector<core::KnowledgeBaseRecord> MakeKnowledgeBase(const World& world);

// A core policy lookup view over the world's registry documentation.
class PolicyLookupAdapter : public core::RegistryPolicyLookup {
 public:
  explicit PolicyLookupAdapter(const RegistryPolicyDb* db) : db_(db) {}
  std::optional<bool> IsRestricted(const dns::Name& suffix) const override {
    return db_->IsRestricted(suffix);
  }

 private:
  const RegistryPolicyDb* db_;
};

// Complete StudyInputs wired to a world. The PolicyLookupAdapter must
// outlive the returned inputs; callers keep it alongside (see MakeStudy).
core::StudyInputs MakeStudyInputs(World& world,
                                  const core::RegistryPolicyLookup* policy);

// Convenience: a ready-to-run Study bound to a world (owns the adapter).
struct BoundStudy {
  std::unique_ptr<PolicyLookupAdapter> policy;
  std::unique_ptr<core::Study> study;
};
BoundStudy MakeStudy(World& world);

}  // namespace govdns::worldgen
