// The generated world: every substrate instance plus ground truth.
//
// World is what the paper's authors faced: a DNS ecosystem reachable only
// through queries (simnet), a passive-DNS database (pdns), a GeoIP ASN
// database (geo), and a registrar (registrar) — plus, because this is a
// simulation, the generator's ground truth, which the tests use to verify
// that the measurement pipeline recovers what was planted. Analysis code
// must not read ground truth; it sees only the substrate interfaces.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "dns/name.h"
#include "geo/asn_db.h"
#include "pdns/db.h"
#include "registrar/registrar.h"
#include "registrar/suffix.h"
#include "simnet/network.h"
#include "util/civil_time.h"
#include "worldgen/config.h"
#include "worldgen/countries.h"
#include "worldgen/providers.h"
#include "zone/auth_server.h"

namespace govdns::worldgen {

enum class DeployStyle : uint8_t {
  kPrivate,   // NS inside the country's own government namespace
  kNational,  // a domestic hosting company
  kGlobal,    // one of the named third-party providers
};

// Measurement-time condition of a domain (April 2021).
enum class DomainFate : uint8_t {
  kActive,          // parent delegates, child servers answer
  kStaleDelegation, // parent records remain, child servers gone (fully lame)
  kRemoved,         // parent answers but the delegation was deleted
  kDeadParent,      // the parent zone's own servers are gone
};

// Planned parent/child NS-set relation for a responsive domain (Fig. 13).
enum class ConsistencyPlan : uint8_t {
  kEqual,
  kChildSuperset,    // P subset of C
  kParentSuperset,   // C subset of P
  kOverlapNeither,   // intersect, neither contains the other
  kDisjointSharedIp, // disjoint NS names resolving to common addresses
  kDisjoint,         // disjoint, different addresses
};

// One period during which a domain's NS set was constant (PDNS history).
struct NsEpoch {
  util::DayInterval days;
  DeployStyle style = DeployStyle::kPrivate;
  int provider = -1;          // index into Providers() when kGlobal
  int national_company = -1;  // index into the country's companies
  // Provider-hosted but fronted by vanity NS names in the customer's own
  // zone; only the SOA MNAME betrays the provider.
  bool vanity = false;
  std::vector<dns::Name> ns_names;
};

struct DomainTruth {
  dns::Name name;
  int country = -1;
  int level = 3;  // DNS hierarchy level of the name (label count)
  util::CivilDay birth = 0;
  // Day after which the domain was abandoned; kAliveForever if still used.
  util::CivilDay death = 0;
  std::vector<NsEpoch> epochs;

  // Measurement-time plan.
  bool in_query_list = false;      // seen in the PDNS window
  bool disposable_excluded = false;
  DomainFate fate = DomainFate::kActive;
  bool partial_lame = false;       // >=1 parent-listed NS does not serve it
  bool typo_parent_ns = false;     // parent lists a typo'd NS hostname
  bool dangling_available_ns = false;  // references a registrable d_ns
  // Parent NS point at an expired provider domain now held by a parking
  // service that answers everything (the paper's §IV-D aftermarket cases).
  bool parked_ns_ref = false;
  ConsistencyPlan consistency = ConsistencyPlan::kEqual;
  bool relative_name_truncation = false;

  bool Alive(util::CivilDay day) const { return birth <= day && day < death; }
  const NsEpoch* EpochAt(util::CivilDay day) const;
};

inline constexpr util::CivilDay kAliveForever = 0x3FFFFFFF;

// A domestic hosting company.
struct NationalCompany {
  dns::Name domain;             // e.g. thaihost3.co.th
  std::vector<dns::Name> ns_names;
  int first_year = 2011;
  int last_year = 0;            // 0 = still operating
  bool dead_and_available = false;  // expired: its domain can be registered
  bool dead_and_parked = false;     // expired: aftermarket parking answers
  // Topology sampled from the country's diversity profile at creation.
  int num_ips = 2;
  int num_prefixes = 2;
  int num_asns = 1;
};

// What the UN Knowledge Base page (plus the member-state questionnaire)
// says about a country — including the broken/squatted link quirks the
// paper describes in §III-A.
struct KnowledgeBaseEntry {
  int country = -1;
  dns::Name portal_fqdn;                 // from the KB link
  bool link_resolves = true;             // 11 countries: false
  std::optional<dns::Name> msq_fqdn;     // questionnaire entry, if any
  bool link_squatted = false;            // third party serving ads
};

// Registry policy documentation (what the paper dug out of IANA's root DB
// and registrar docs): is this suffix restricted to government use?
struct RegistryPolicyDb {
  std::map<dns::Name, bool> restricted;

  // nullopt: no documentation found (the paper's gov.la/gov.tl/gov.jm case).
  std::optional<bool> IsRestricted(const dns::Name& suffix) const {
    auto it = restricted.find(suffix);
    if (it == restricted.end()) return std::nullopt;
    return it->second;
  }
};

// One attached nameserver host: its DNS hostname and the addresses it
// answers on. Recorded by the builder (in hostname order) so post-build
// overlays — World::ApplyVantage — can re-afflict endpoints without access
// to the builder's internal state.
struct NsHost {
  dns::Name hostname;
  std::vector<geo::IPv4> ips;
};

struct CountryRuntime {
  dns::Name suffix;        // gov.cn / gob.mx / regjeringen.no ...
  dns::Name portal_fqdn;   // www.<portal>
  std::vector<NationalCompany> companies;
  std::vector<dns::Name> intermediate_zones;       // live (sp.gov.br, ...)
  std::vector<dns::Name> dead_intermediate_zones;  // parents that vanished
  // Shared government DNS hosts (central NIC-style infrastructure).
  std::vector<dns::Name> central_ns;
  // The country-wide "shared dead NS" incident host, if any.
  std::optional<dns::Name> shared_dead_ns;
  std::vector<double> domains_per_year;  // index 0 = first_year
};

class World {
 public:
  explicit World(WorldConfig config);
  ~World();

  World(const World&) = delete;
  World& operator=(const World&) = delete;

  const WorldConfig& config() const { return config_; }

  // --- Substrates (what analysis code is allowed to touch) ---------------
  simnet::SimNetwork& network() { return *network_; }
  const pdns::PdnsDatabase& pdns_db() const { return pdns_; }
  pdns::PdnsDatabase& mutable_pdns_db() { return pdns_; }
  const geo::AsnDatabase& asn_db() const { return asn_db_; }
  const registrar::SimRegistrar& registrar_client() const { return registrar_; }
  registrar::SimRegistrar& mutable_registrar() { return registrar_; }
  const registrar::PublicSuffixList& psl() const { return psl_; }
  registrar::PublicSuffixList& mutable_psl() { return psl_; }
  const std::vector<KnowledgeBaseEntry>& knowledge_base() const {
    return knowledge_base_;
  }
  const RegistryPolicyDb& registry_policy() const { return registry_policy_; }
  // Root nameserver addresses — the resolver's priming hints.
  const std::vector<geo::IPv4>& root_server_ips() const {
    return root_server_ips_;
  }
  // Every attached nameserver host, in hostname order.
  const std::vector<NsHost>& ns_hosts() const { return ns_hosts_; }

  // Overlays one vantage's network view on the built world (DESIGN.md
  // §6k): `profile.chaos` afflicts every nameserver endpoint once (shared
  // addresses are deduplicated), then each country override afflicts the
  // hosts under that country's government suffix, mirroring the builder's
  // ApplyCountryFaults. Draws are seeded by HashString(profile.name, ...)
  // — a pure function of (vantage name, world seed, address) — so two
  // vantages never share a realization and adding one never perturbs
  // another's. A benign profile (no afflictions) leaves the network
  // byte-identical to the base world. Not idempotent: call at most once
  // per World instance.
  void ApplyVantage(const VantageProfile& profile);

  // --- Ground truth (tests and report annotation only) -------------------
  const std::vector<DomainTruth>& domains() const { return domains_; }
  const std::vector<CountryRuntime>& country_runtime() const {
    return country_rt_;
  }
  const DomainTruth* FindDomain(const dns::Name& name) const;

  // --- Generator internals (used by generate.cc) --------------------------
  struct Builder;

  size_t server_count() const { return servers_.size(); }
  size_t zone_count() const { return zones_.size(); }

 private:
  friend struct Builder;

  WorldConfig config_;
  std::unique_ptr<simnet::SimNetwork> network_;
  pdns::PdnsDatabase pdns_;
  geo::AsnDatabase asn_db_;
  registrar::SimRegistrar registrar_;
  registrar::PublicSuffixList psl_;
  RegistryPolicyDb registry_policy_;
  std::vector<KnowledgeBaseEntry> knowledge_base_;
  std::vector<geo::IPv4> root_server_ips_;
  std::vector<NsHost> ns_hosts_;

  std::vector<DomainTruth> domains_;
  std::map<dns::Name, int> domain_index_;
  std::vector<CountryRuntime> country_rt_;

  // Owning containers for the simulated infrastructure.
  std::vector<std::unique_ptr<zone::AuthServer>> servers_;
  std::vector<std::shared_ptr<zone::Zone>> zones_;
};

// Builds a complete world from the configuration. Deterministic in
// config.seed: identical configs produce identical worlds.
std::unique_ptr<World> BuildWorld(const WorldConfig& config);

// The default vantage roster used by `govdns_study --vantages N`: vantage 0
// ("v0-base") is entirely benign — its view IS the classic single-vantage
// study — and later vantages see progressively flakier paths (jitter, loss
// flaps, and for index >= 2 regional rate limiting), exercising the
// disagreement analysis without drowning it.
VantageProfile MakeDefaultVantageProfile(int index);

}  // namespace govdns::worldgen
