// World-generation configuration.
//
// All stochastic behaviour hangs off `seed`; all volume knobs scale with
// `scale` (1.0 = the paper's global scale, ~190k domains in the 2020 PDNS
// snapshot). Tests run small worlds (scale ~0.01); the benchmark harnesses
// default to full scale. Every rate here is a calibration target derived
// from a number the paper reports (cited inline).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "simnet/network.h"

namespace govdns::worldgen {

// Per-country fault overlay (DESIGN.md §6g): every nameserver host under
// the named country's government suffix gets `chaos` layered on top of
// whatever behaviour it already has. Hosts shared with other countries
// (global provider farms) are untouched, so a fully blackholed country
// degrades only its own domains. Unknown codes are ignored.
struct CountryChaos {
  std::string code;  // ccTLD label as in Countries(), e.g. "br"
  simnet::ChaosProfile chaos;
};

// A named network view: what one measurement vantage point sees
// (DESIGN.md §6k). `chaos` is layered on every nameserver host in the
// world; `country_chaos` adds further per-country overlays through the
// same suffix-matching path as WorldConfig::country_chaos. Realization is
// seeded by the vantage *name*, never by its position in a list, so adding
// or removing one vantage cannot perturb another vantage's draws.
struct VantageProfile {
  std::string name;  // e.g. "us-east"; doubles as journal-dir suffix
  simnet::ChaosProfile chaos;
  std::vector<CountryChaos> country_chaos;
};

struct WorldConfig {
  uint64_t seed = 2022;

  // Volume multiplier on every per-country domain-count target.
  double scale = 1.0;

  // The PDNS observation window (paper: 2011..2020 inclusive).
  int first_year = 2011;
  int last_year = 2020;

  // Global total of domains with NS data in the 2020 PDNS snapshot at
  // scale 1.0 (Fig. 2: 192.6k).
  // Slightly below the paper's 192.6k: a domain that dies mid-year still
  // shows records that year, so measured yearly counts exceed the live
  // population by the annual churn (~4%).
  double total_domains_2020 = 185000;
  // And in 2011 (Fig. 2: 113.5k), via the global growth curve.
  double total_domains_2011 = 112500;

  // Annual death rate for ordinary domains; single-NS domains die faster
  // (Fig. 6: only 21% of 2011's d_1NS remain by 2020 => ~16%/yr).
  double death_rate = 0.055;
  double death_rate_1ns = 0.215;

  // Probability per year that a surviving domain re-rolls its deployment
  // (provider switch / redesign). Feeds both the provider-trend tables and
  // parent/child drift.
  double switch_rate = 0.06;

  // Probability that a newly created *private-style* domain starts with a
  // single nameserver, at the two anchor years (linear in between).
  // Calibrated so d_1NS is ~4.2% of 2011 domains and ~3.1% of 2020's.
  double p_single_ns_private_2011 = 0.125;
  double p_single_ns_private_2020 = 0.125;
  // Same for national/global styles (rare).
  double p_single_ns_other = 0.010;
  // Probability per year that a d_1NS adds a secondary.
  double upgrade_rate_1ns = 0.04;

  // Fraction of a provider-hosted domain's NS sets that also include a
  // nameserver of its own (breaks single-provider dependency, d_1P).
  double p_mixed_provider_ns = 0.07;

  // --- Measurement-time (April 2021) state --------------------------------
  // Fraction of PDNS-window domains excluded by the paper's "disposable
  // domain" filter before active queries (147k queried of ~192.6k seen).
  double disposable_fraction = 0.26;

  // Fraction of queried domains whose *parent* zone ADNS no longer respond
  // (paper: 115k of 147k had a parent response => ~22%). Realized by dead
  // intermediate zones; China's consolidation contributes the bulk.
  double dead_parent_fraction_default = 0.14;
  double dead_parent_fraction_cn = 0.45;

  // Of domains whose parent responds: fraction with the delegation removed
  // (empty/NXDOMAIN answers; paper: 96k non-empty of 115k => ~16.5%).
  double removed_fraction = 0.165;

  // Baseline probability that a live domain's delegation went fully stale
  // (child servers gone while parent records remain). Per-country
  // extra_stale_rate adds to it; single-NS domains use the *_1ns variant
  // (paper Fig. 8: 60.1% of d_1NS gave no authoritative response).
  double stale_rate = 0.012;
  double stale_rate_1ns = 0.42;

  // Probability that a multi-NS domain has one NS dead for domain-local
  // reasons (beyond the per-country shared dead-NS incidents).
  double partial_lame_rate = 0.035;

  // Probability that a (partially lame) domain's parent NS entry is a typo
  // of a real hostname (pns12cloudns.net for pns12.cloudns.net).
  double typo_ns_rate = 0.013;

  // --- Parent/child inconsistency (Fig. 13: P=C for 76.8%) ---------------
  // Probabilities for a *responsive* domain's consistency class; the
  // remainder is P=C. Third-and-lower-level domains use these; second-level
  // domains are far more consistent (93.5%), handled by the multiplier.
  double p_child_superset = 0.105;   // P ⊂ C (child added NS, parent stale)
  double p_parent_superset = 0.080;  // C ⊂ P (child dropped NS)
  double p_overlap_neither = 0.055;  // overlap but neither contains other
  double p_disjoint = 0.058;         // no common NS name
  double p_disjoint_ip_overlap = 0.35;  // of disjoint: same addresses anyway
  double second_level_inconsistency_multiplier = 0.28;
  // Probability that a child NS RRset entry lost its origin (a single-label
  // name like "ns" from a zone-file typo; a P != C flavour).
  double p_relative_name_truncation = 0.004;

  // --- Hijackable dangling records ----------------------------------------
  // Countries whose defective delegations reference nameserver domains that
  // are available to register (paper: 805 d_ns / 1,121 domains / 49
  // countries), and the aftermarket parked cases of §IV-D (13 d_ns / 26
  // domains / 7 countries; min price 300 USD).
  int available_ns_domain_countries = 49;
  int available_ns_domains = 805;
  int parked_ns_domains = 13;
  int parked_ns_customer_domains = 26;
  int parked_ns_countries = 7;

  // --- PDNS sensor artefacts ----------------------------------------------
  // Short-lived junk records per domain-year (expired/DDoS-switch records
  // the 7-day stability filter should drop).
  double transient_record_rate = 0.03;
  int transient_max_days = 5;

  // --- Network behaviour ---------------------------------------------------
  double base_loss_rate = 0.002;  // transient loss on healthy endpoints
  uint32_t rtt_ms_base = 20;

  // Endpoint-level chaos applied on top of the base behaviour when wiring
  // nameserver hosts (flapping, rate limiting, truncation, spoofed ids,
  // corruption, bursts, jitter). Default: entirely benign, so the
  // calibrated marginals above are undisturbed; the chaos sweep and
  // robustness tests use simnet::ChaosProfile::Hostile().
  simnet::ChaosProfile chaos;

  // Per-country fault overlays, applied after the world is built (see
  // CountryChaos above; kept as a nested alias for existing call sites).
  using CountryChaos = worldgen::CountryChaos;
  std::vector<CountryChaos> country_chaos;

  // Named per-vantage network views (DESIGN.md §6k). Not applied at build
  // time: each vantage shard calls World::ApplyVantage on its own copy of
  // the world (typically a forked child), overlaying the profile on the
  // base realization. An empty list means the classic single-vantage study.
  std::vector<VantageProfile> vantages;

  // Number of national hosting companies per country (scaled by country
  // volume; at least 2).
  double national_companies_per_1k_domains = 10.5;
};

}  // namespace govdns::worldgen
