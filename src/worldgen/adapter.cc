#include "worldgen/adapter.h"

namespace govdns::worldgen {

std::vector<core::CountryMeta> MakeCountryMetas() {
  std::vector<core::CountryMeta> metas;
  auto top10 = Top10CountryCodes();
  for (const CountrySpec& spec : Countries()) {
    core::CountryMeta meta;
    meta.code = spec.code;
    meta.name = spec.name;
    meta.subregion = spec.subregion;
    for (const char* code : top10) {
      if (meta.code == code) meta.top10 = true;
    }
    metas.push_back(std::move(meta));
  }
  return metas;
}

std::vector<core::KnowledgeBaseRecord> MakeKnowledgeBase(const World& world) {
  std::vector<core::KnowledgeBaseRecord> out;
  for (const KnowledgeBaseEntry& entry : world.knowledge_base()) {
    core::KnowledgeBaseRecord record;
    record.country = entry.country;
    record.portal_fqdn = entry.portal_fqdn;
    record.msq_fqdn = entry.msq_fqdn;
    out.push_back(std::move(record));
  }
  return out;
}

core::StudyInputs MakeStudyInputs(World& world,
                                  const core::RegistryPolicyLookup* policy) {
  core::StudyInputs inputs;
  inputs.transport = &world.network();
  inputs.root_hints = world.root_server_ips();
  inputs.pdns = &world.pdns_db();
  inputs.asn_db = &world.asn_db();
  inputs.registrar = &world.registrar_client();
  inputs.psl = &world.psl();
  inputs.policy = policy;
  inputs.knowledge_base = MakeKnowledgeBase(world);
  inputs.countries = MakeCountryMetas();
  inputs.mining.first_year = world.config().first_year;
  inputs.mining.last_year = world.config().last_year;
  return inputs;
}

BoundStudy MakeStudy(World& world) {
  BoundStudy bound;
  bound.policy = std::make_unique<PolicyLookupAdapter>(&world.registry_policy());
  bound.study =
      std::make_unique<core::Study>(MakeStudyInputs(world, bound.policy.get()));
  return bound;
}

}  // namespace govdns::worldgen
