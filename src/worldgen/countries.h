// Static data for the 193 UN member states.
//
// This plays the role of the UN E-Government Knowledge Base in the paper:
// each country has a national portal whose domain seeds discovery, a
// government suffix (or registered domain) under which its e-government
// zones live, and a UN M49 sub-region used for the provider-coverage
// analyses (Tables II/III group by sub-region, with the 10 countries
// holding the most PDNS records split out as their own groups).
//
// Per-country calibration knobs (relative zone counts, deployment-style
// mix, diversity profile) are also declared here so that the generated
// world's marginals track the paper's reported per-country statistics.
#pragma once

#include <cstdint>
#include <span>
#include <string>

namespace govdns::worldgen {

// How a country anchors its e-government namespace.
enum class SuffixStyle : uint8_t {
  kReservedSuffix,    // a registration-restricted suffix, e.g. gov.cn
  kRegisteredDomain,  // an ordinary registered domain, e.g. regjeringen.no
};

// Per-country placement profile for nameserver IPs, calibrated against the
// per-country rows of Table I.
struct DiversityProfile {
  // Among multi-NS domains: probability that all NS resolve to one address.
  double p_single_ip = 0.10;
  // Given >1 address: probability all addresses share a /24.
  double p_single_24_given_multi_ip = 0.36;
  // Given >1 /24: probability all prefixes share an ASN.
  double p_single_asn_given_multi_24 = 0.52;
};

struct CountrySpec {
  const char* code;       // ccTLD label, e.g. "cn"
  const char* name;       // display name
  const char* subregion;  // UN M49 sub-region name
  // Target number of domains with NS data in the 2020 PDNS snapshot.
  // Explicit for the paper's top-10 countries; for the rest this is a
  // relative weight that the generator normalizes to the global total.
  double pdns_2020_weight;
  bool explicit_target;  // true: weight IS the target count

  SuffixStyle suffix_style;
  // The government suffix ("gov.cn") or registered domain
  // ("regjeringen.no"). Empty means derive "gov." + code.
  const char* suffix;

  // Deployment-style mix (fractions; remainder = global third-party
  // providers): private infrastructure and national hosting companies.
  double private_share;
  double national_share;

  DiversityProfile diversity;

  // Fraction of this country's domains delegated below an intermediate
  // zone (states/provinces), giving fourth-level domains as in gov.br.
  double deep_hierarchy_share;
  // Fraction of those intermediate zones (and the domains under them) that
  // are dead by measurement time — the paper's "parent zone nameservers do
  // not respond" population (China's consolidation dominates it).
  double dead_intermediate_share;

  // Elevated misconfiguration rates (see WorldConfig for global baselines).
  double extra_stale_rate;         // extra fully-stale delegations
  double shared_dead_ns_rate;      // domains pointing at a shared dead NS
};

// The full 193-member table, canonical order by country code.
std::span<const CountrySpec> Countries();

// Index into Countries() by ccTLD code; -1 if absent.
int CountryIndexByCode(const std::string& code);

// The 22 UN M49 sub-region names used in the table.
std::span<const char* const> SubRegionNames();

// The paper's top-10 countries by PDNS record volume (Table I order).
// These are split out as their own "sub-region" groups in Tables II/III.
std::span<const char* const> Top10CountryCodes();

}  // namespace govdns::worldgen
