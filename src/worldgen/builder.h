// Internal state shared by the world-generation phases (see generate_*.cc).
// Not part of the public worldgen API.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "geo/asn_db.h"
#include "util/rng.h"
#include "worldgen/world.h"
#include "zone/auth_server.h"
#include "zone/zone.h"

namespace govdns::worldgen {

// Per-country lazily-grown address pool: a handful of "government network"
// ASN groups, each a growing list of /24 blocks. Diversity sampling asks
// for addresses in the same /24, a fresh /24 in the same ASN, or a
// different ASN entirely.
class CountryAddressPool {
 public:
  CountryAddressPool() = default;
  void Init(geo::AddressAllocator* alloc, std::string org, int asn_groups);

  // An address in group `g`; `fresh_prefix` forces a /24 not handed out by
  // the immediately preceding call in that group.
  geo::IPv4 Take(int group, bool fresh_prefix);

  int groups() const { return static_cast<int>(groups_.size()); }

 private:
  struct Group {
    std::vector<geo::Cidr> blocks;
    uint32_t asn = 0;
    int cursor_block = 0;
    uint32_t cursor_host = 0;
  };
  geo::AddressAllocator* alloc_ = nullptr;
  std::string org_;
  std::vector<Group> groups_;
};

struct ProviderRuntime {
  const ProviderSpec* spec = nullptr;
  bool alive_2021 = false;
  zone::AuthServer* farm = nullptr;  // null for dead providers
  std::vector<dns::Name> hostnames;
  std::vector<geo::IPv4> hostname_ips;
  // Live customer domain ids (lazily compacted).
  std::vector<int> customers;
  int customer_count = 0;
};

struct CompanyRuntime {
  int country = -1;
  int index_in_country = -1;
  zone::AuthServer* farm = nullptr;  // null for dead companies
  std::vector<geo::IPv4> ns_ips;
  std::vector<int> customers;
  int customer_count = 0;
  std::vector<int> lingering;  // customers that never migrated away
};

// Mutable per-domain generation state beyond what DomainTruth records.
struct DomainGenState {
  bool alive = false;
  bool is_apex = false;  // the d_gov suffix zone itself
  int provider = -1;          // current global provider
  int company = -1;           // current national company (global index)
  bool is_single_ns = false;
  bool lingering_on_dead_company = false;
  int intermediate = -1;      // index into country's intermediates, -1 = none
  bool intermediate_dead = false;
};

struct World::Builder {
  explicit Builder(World& world);

  void Build();

  // --- Phases --------------------------------------------------------------
  void ComputeTargets();
  void SelectRiskCountries();
  void BuildRootAndTlds();
  void BuildProviderInfra();
  void BuildCountryInfra();
  void GenerateLifecyclesAndDeployments();
  void PlanMeasurementState();
  void PopulatePdns();
  void BuildActiveInfrastructure();
  void FinalizeRegistrar();
  void ApplyCountryFaults();
  void RecordNsHosts();

  // --- Infrastructure helpers ----------------------------------------------
  std::shared_ptr<zone::Zone> NewZone(const dns::Name& origin);
  zone::Zone* FindZone(const dns::Name& origin);
  zone::AuthServer* NewServer(const std::string& id,
                              zone::ServerMode mode = zone::ServerMode::kNormal);
  // Registers `hostname` at `ips`: attaches the server handler to each
  // address on the network.
  void AttachHost(const dns::Name& hostname, zone::AuthServer* server,
                  std::vector<geo::IPv4> ips);
  // NS records for `child` in `parent` + A glue for in-bailiwick targets.
  void Delegate(zone::Zone* parent, const dns::Name& child,
                const std::vector<dns::Name>& ns_names);
  // A record(s) for a hostname, added to the zone that should carry them.
  void AddHostAddresses(zone::Zone* zone, const dns::Name& hostname,
                        const std::vector<geo::IPv4>& ips);

  // --- Deployment helpers --------------------------------------------------
  struct NsAssignment {
    DeployStyle style = DeployStyle::kPrivate;
    int provider = -1;
    int company = -1;  // global company index
    bool vanity = false;
    std::vector<dns::Name> ns_names;
  };
  NsAssignment AssignPrivate(int domain_id, int year, util::Rng& rng);
  NsAssignment AssignNational(int domain_id, int year, util::Rng& rng);
  NsAssignment AssignProvider(int domain_id, int provider, util::Rng& rng);
  void ApplyAssignment(int domain_id, const NsAssignment& a,
                       util::CivilDay day);
  int SampleNsCount(util::Rng& rng);

  // Target number of PDNS-visible domains for country c in year y.
  double TargetFor(int country, int year) const;

  // --- Data ---------------------------------------------------------------
  World& w;
  const WorldConfig& cfg;
  util::Rng rng;
  geo::AddressAllocator alloc;

  std::map<dns::Name, std::shared_ptr<zone::Zone>> zones;
  struct HostRecord {
    zone::AuthServer* server = nullptr;
    std::vector<geo::IPv4> ips;
  };
  std::map<dns::Name, HostRecord> hosts;

  std::vector<ProviderRuntime> providers;
  std::vector<CompanyRuntime> companies;  // global list
  std::vector<CountryAddressPool> country_pools;
  std::vector<std::vector<int>> country_company_ids;  // per-country indices
  std::vector<std::vector<int>> country_active;       // live domain ids
  std::vector<DomainGenState> gen_state;

  // Per-country, per-year-offset targets.
  std::vector<std::vector<double>> targets;

  // Countries allowed to have registrable dangling NS domains (the 49).
  std::set<int> available_ns_countries;
  // Countries hosting the aftermarket-parked cases (the 7).
  std::set<int> parked_countries;

  // The parking service (answers everything) used by squatted/parked names.
  zone::AuthServer* parking_farm = nullptr;
  std::vector<geo::IPv4> parking_ips;
  dns::Name parking_ns1, parking_ns2;

  // Active domains whose parent NS reference a parked company: domain id ->
  // global company index.
  std::map<int, int> parked_assignments;
  // Per-country dead flags for intermediate zones.
  std::vector<std::vector<char>> intermediate_dead;

  int year_count = 0;
};

}  // namespace govdns::worldgen
