#include "worldgen/world.h"

#include <set>

#include "util/rng.h"
#include "worldgen/countries.h"

namespace govdns::worldgen {

namespace {

// Namespace tag mixed into the vantage seed so vantage draws can never
// collide with the builder's base-chaos or country-fault draws, which use
// the raw world seed.
constexpr uint64_t kVantageSeedTag = 0x76616e74ULL;  // "vant"

}  // namespace

const NsEpoch* DomainTruth::EpochAt(util::CivilDay day) const {
  for (const NsEpoch& epoch : epochs) {
    if (epoch.days.Contains(day)) return &epoch;
  }
  return nullptr;
}

World::World(WorldConfig config)
    : config_(config),
      network_(std::make_unique<simnet::SimNetwork>(config.seed ^ 0x6e6574ULL)),
      pdns_(/*merge_gap_days=*/30),
      registrar_(config.seed ^ 0x726567ULL) {}

World::~World() = default;

void World::ApplyVantage(const VantageProfile& profile) {
  const uint64_t vseed =
      util::HashString(profile.name, config_.seed ^ kVantageSeedTag);
  if (profile.chaos.Any()) {
    // Hosts share addresses (provider farms, vanity names fronting the same
    // farm); dedupe so each endpoint is afflicted exactly once regardless of
    // how many hostnames point at it.
    std::set<geo::IPv4> seen;
    for (const NsHost& host : ns_hosts_) {
      for (geo::IPv4 ip : host.ips) {
        if (!seen.insert(ip).second) continue;
        network_->SetBehavior(
            ip, profile.chaos.Realize(vseed, ip, network_->GetBehavior(ip)));
      }
    }
  }
  for (const CountryChaos& fault : profile.country_chaos) {
    if (!fault.chaos.Any()) continue;
    int country = CountryIndexByCode(fault.code);
    if (country < 0 || country >= static_cast<int>(country_rt_.size())) {
      continue;
    }
    const dns::Name& suffix = country_rt_[country].suffix;
    std::set<geo::IPv4> seen;
    for (const NsHost& host : ns_hosts_) {
      if (!host.hostname.IsSubdomainOf(suffix)) continue;
      for (geo::IPv4 ip : host.ips) {
        if (!seen.insert(ip).second) continue;
        network_->SetBehavior(
            ip, fault.chaos.Realize(vseed, ip, network_->GetBehavior(ip)));
      }
    }
  }
}

VantageProfile MakeDefaultVantageProfile(int index) {
  VantageProfile p;
  p.name = "v" + std::to_string(index) + (index == 0 ? "-base" : "-far");
  if (index <= 0) return p;  // benign: the paper's single US vantage
  // Farther vantages: progressively noisier paths. Rates stay well below
  // the Hostile() preset so most countries still resolve and the
  // disagreement analysis has signal rather than uniform darkness.
  p.chaos.p_flapping = 0.02 * index;
  p.chaos.p_bursty = 0.03 * index;
  p.chaos.p_jittery = 0.05 * index;
  p.chaos.rtt_jitter_ms = 25;
  if (index >= 2) p.chaos.p_rate_limited = 0.015 * (index - 1);
  return p;
}

const DomainTruth* World::FindDomain(const dns::Name& name) const {
  auto it = domain_index_.find(name);
  if (it == domain_index_.end()) return nullptr;
  return &domains_[it->second];
}

}  // namespace govdns::worldgen
