#include "worldgen/world.h"

namespace govdns::worldgen {

const NsEpoch* DomainTruth::EpochAt(util::CivilDay day) const {
  for (const NsEpoch& epoch : epochs) {
    if (epoch.days.Contains(day)) return &epoch;
  }
  return nullptr;
}

World::World(WorldConfig config)
    : config_(config),
      network_(std::make_unique<simnet::SimNetwork>(config.seed ^ 0x6e6574ULL)),
      pdns_(/*merge_gap_days=*/30),
      registrar_(config.seed ^ 0x726567ULL) {}

World::~World() = default;

const DomainTruth* World::FindDomain(const dns::Name& name) const {
  auto it = domain_index_.find(name);
  if (it == domain_index_.end()) return nullptr;
  return &domains_[it->second];
}

}  // namespace govdns::worldgen
