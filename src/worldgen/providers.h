// Third-party DNS provider pool.
//
// Each named provider reproduces one row of the paper's Tables II/III: its
// nameserver naming convention (AWS's ns-N.awsdns-NN.TLD pattern, pooled
// vanity names at Cloudflare, a fixed ns1/ns2 pair at small shared hosts),
// the domains its NS hostnames live under, its adoption trajectory between
// 2011 and 2020, regional focus (DNSPod and the big Chinese registrars serve
// only gov.cn customers), and its network topology (how many /24 prefixes
// and ASNs its nameserver fleet spans — the input to Table I's diversity
// numbers for provider-hosted domains).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "dns/name.h"
#include "util/rng.h"

namespace govdns::worldgen {

enum class NamingStyle : uint8_t {
  kNumberedPool,  // ns{i}.{domain}; customers draw a pair from the pool
  kWordPool,      // {word}.ns.{domain} (Cloudflare-style vanity pool)
  kAws,           // ns-{n}.awsdns-{nn}.{com|net|org|co.uk}, one per family
  kAzure,         // ns1-{nn}.azure-dns.{com|net|org|info}, one per family
};

struct ProviderSpec {
  const char* display;    // "Cloudflare"
  const char* group_key;  // aggregation key used in the tables, e.g.
                          // "cloudflare.com" or "AWS DNS" (grouped families)
  NamingStyle naming;
  // Domains the provider's NS hostnames live under. For kAws/kAzure these
  // are the per-family base domains; otherwise usually a single entry.
  std::vector<std::string> ns_domains;

  int start_year;  // first year customers can adopt it
  int end_year;    // last year it operates (0 = still alive in 2021);
                   // EveryDNS's 2011 shutdown makes its customers churn

  // Target number of government domains using it, at the paper's global
  // scale, in 2011 and 2020. The generator linearly interpolates between
  // the anchor years (zero before start_year) and fills adoption
  // demand-driven, so these anchors land close to the reported counts.
  double domains_2011;
  double domains_2020;

  // >1 biases adoption toward countries with few domains (cheap shared
  // hosts show up in far more countries per domain than the big clouds).
  double small_country_affinity;

  // Fraction of countries that ever adopt this provider, at the anchor
  // years (linearly interpolated; the gate is a deterministic per-country
  // hash, so coverage grows monotonically). Calibrates Table III's
  // countries-per-provider: 52 for the 2011 leader, 85 for 2020's.
  double coverage_2011 = 1.0;
  double coverage_2020 = 1.0;

  // Empty = global; a ccTLD code restricts adoption to that country.
  std::string country_focus;

  int ns_per_customer;  // how many of its NS a customer lists
  int pool_size;        // hostnames in the pool (kNumberedPool/kWordPool)

  int num_prefixes;  // /24s the NS fleet spans
  int num_asns;      // ASNs the fleet spans

  bool in_table2;  // one of the paper's "major providers" (Table II)

  // Fraction of customers fronting the provider with vanity NS names in
  // their own zone; only the SOA MNAME/RNAME betrays the provider (this is
  // what the SOA-based matching ablation measures).
  double vanity_fraction;
};

// The named provider table (global + Chinese regional providers).
std::span<const ProviderSpec> Providers();

// Index by group_key; -1 if absent.
int ProviderIndexByGroupKey(const std::string& group_key);

// Generates the i-th NS hostname of a provider's pool, following its
// naming style. `i` must be < pool size (for pooled styles).
dns::Name ProviderHostname(const ProviderSpec& spec, int i);

// Picks the NS hostnames a new customer is assigned, deterministic in rng.
std::vector<dns::Name> PickCustomerNs(const ProviderSpec& spec,
                                      util::Rng& rng);

}  // namespace govdns::worldgen
