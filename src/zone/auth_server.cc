#include "zone/auth_server.h"

namespace govdns::zone {

AuthServer::AuthServer(std::string host_id, ServerMode mode)
    : host_id_(std::move(host_id)), mode_(mode) {}

void AuthServer::AddZone(std::shared_ptr<const Zone> zone) {
  GOVDNS_CHECK(zone != nullptr);
  dns::Name origin = zone->origin();
  zones_[std::move(origin)] = std::move(zone);
}

void AuthServer::RemoveZone(const dns::Name& origin) { zones_.erase(origin); }

void AuthServer::SetParkingAddresses(std::vector<geo::IPv4> addresses) {
  parking_addresses_ = std::move(addresses);
}

const Zone* AuthServer::FindBestZone(const dns::Name& qname) const {
  // Longest-suffix match over the attached zone origins: at most
  // LabelCount() map probes, so servers hosting many zones stay fast.
  for (size_t count = qname.LabelCount(); count + 1 > 0; --count) {
    auto it = zones_.find(qname.Suffix(count));
    if (it != zones_.end()) return it->second.get();
  }
  return nullptr;
}

dns::Message AuthServer::Answer(const dns::Message& query) const {
  if (query.questions.size() != 1) {
    return dns::MakeResponse(query, dns::Rcode::kFormErr);
  }
  if (mode_ == ServerMode::kRefuseAll) {
    return dns::MakeResponse(query, dns::Rcode::kRefused);
  }
  if (mode_ == ServerMode::kParking) {
    return AnswerParking(query);
  }
  const Zone* zone = FindBestZone(query.questions.front().name);
  if (zone == nullptr) {
    return dns::MakeResponse(query, dns::Rcode::kRefused);
  }
  dns::Message response = AnswerFromZone(*zone, query);
  if (mode_ == ServerMode::kNoAuthBit) response.header.aa = false;
  return response;
}

dns::Message AuthServer::AnswerFromZone(const Zone& zone,
                                        const dns::Message& query) const {
  const dns::Question& q = query.questions.front();

  // Delegation check first: names at or below a cut are answered with a
  // referral, even when the query is for the cut's own NS set (the parent
  // is not authoritative there; RFC 1034 §4.2.1).
  if (auto cut = zone.FindDelegation(q.name)) {
    dns::Message response = dns::MakeResponse(query, dns::Rcode::kNoError);
    response.header.aa = false;
    auto ns_rrs = zone.Find(*cut, dns::RRType::kNS);
    response.authority = ns_rrs;
    // Glue: A records for in-zone NS targets, when present.
    for (const auto& ns_rr : ns_rrs) {
      const dns::Name& target = std::get<dns::NsRdata>(ns_rr.rdata).nameserver;
      if (!target.IsSubdomainOf(zone.origin())) continue;
      for (auto& glue : zone.Find(target, dns::RRType::kA)) {
        response.additional.push_back(std::move(glue));
      }
    }
    return response;
  }

  dns::Message response = dns::MakeResponse(query, dns::Rcode::kNoError);
  response.header.aa = true;

  auto rrs = zone.Find(q.name, q.type);
  if (!rrs.empty()) {
    response.answers = std::move(rrs);
    return response;
  }

  // CNAME at the name answers any type (the client chases the target).
  auto cnames = zone.Find(q.name, dns::RRType::kCNAME);
  if (!cnames.empty() && q.type != dns::RRType::kCNAME) {
    response.answers = std::move(cnames);
    return response;
  }

  // NODATA vs NXDOMAIN.
  if (!zone.NameExists(q.name)) {
    response.header.rcode = dns::Rcode::kNxDomain;
  }
  if (auto soa = zone.Soa()) {
    response.authority.push_back(*std::move(soa));
  }
  return response;
}

dns::Message AuthServer::AnswerParking(const dns::Message& query) const {
  const dns::Question& q = query.questions.front();
  dns::Message response = dns::MakeResponse(query, dns::Rcode::kNoError);
  response.header.aa = true;
  switch (q.type) {
    case dns::RRType::kA:
      for (geo::IPv4 addr : parking_addresses_) {
        response.answers.push_back(dns::MakeA(q.name, addr, 300));
      }
      break;
    case dns::RRType::kNS: {
      // A parking service claims itself as the nameserver for everything.
      auto self = dns::Name::Parse(host_id_);
      if (self.ok()) {
        response.answers.push_back(dns::MakeNs(q.name, *self, 300));
      }
      break;
    }
    default:
      // NODATA for other types.
      break;
  }
  return response;
}

}  // namespace govdns::zone
