// Zone hygiene linting — the "tools for DNS debugging" the paper's §V-B
// recommends as a remedy (RFC 1912, Zonemaster, registry pre-delegation
// checks). Runs RFC 1034/1912-style structural checks over a Zone and, when
// given the delegations a parent publishes, parent/child consistency checks
// — the same defect classes the measurement study finds in the wild,
// detectable *before* they ship.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "zone/zone.h"

namespace govdns::zone {

enum class LintSeverity {
  kError,    // will break resolution or violates a MUST
  kWarning,  // resilience/consistency risk (a SHOULD)
  kNotice,   // stylistic / informational
};

std::string_view LintSeverityName(LintSeverity severity);

// Which rule fired; stable identifiers for tooling.
enum class LintRule {
  kMissingSoa,           // no SOA at the apex (RFC 1035 MUST)
  kMultipleSoa,          // more than one SOA record
  kMissingApexNs,        // no NS RRset at the apex
  kSingleApexNs,         // only one apex NS (RFC 2182: use >= 2)
  kCnameAtApex,          // CNAME alongside apex records (RFC 1034 illegal)
  kCnameAndOtherData,    // CNAME coexists with other types at a name
  kNsPointsToCname,      // NS target is a CNAME (RFC 1912 §2.4)
  kRelativeNsTarget,     // single-label NS target (lost-origin typo)
  kMissingGlue,          // in-bailiwick NS target without an address record
  kOrphanGlue,           // address records below a cut that are not glue
  kUnresolvableNsTarget, // in-zone NS target name does not exist at all
  kTtlZero,              // zero TTL on a record
  kSoaSerialZero,        // serial 0 (suspicious default)
  kDelegationMismatch,   // parent NS set differs from child apex NS set
};

std::string_view LintRuleName(LintRule rule);

struct LintFinding {
  LintRule rule;
  LintSeverity severity;
  dns::Name name;       // the owner the finding is about
  std::string message;  // human-readable explanation

  std::string ToString() const;
};

struct LintOptions {
  // Treat a single apex NS as an error instead of a warning (government
  // operators per this paper's findings arguably should).
  bool strict_replication = false;
};

// Structural checks over one zone.
std::vector<LintFinding> LintZone(const Zone& zone,
                                  LintOptions options = LintOptions());

// Parent/child consistency: compares the NS RRset the parent publishes for
// `zone.origin()` against the child's apex NS RRset (the §IV-D check).
std::vector<LintFinding> LintDelegation(
    const Zone& zone, const std::vector<dns::Name>& parent_ns);

}  // namespace govdns::zone
