// RFC 1035 §5 master-file ("zone file") parsing and serialization.
//
// Lets zones be authored, inspected, and round-tripped as text — the format
// every DNS operator works in. Supported subset: $ORIGIN and $TTL
// directives, relative and absolute owner names, '@' for the origin,
// blank-owner continuation (repeat the previous owner), ';' comments,
// optional per-record TTLs and the IN class, and the record types the rest
// of the library models (A, AAAA, NS, CNAME, PTR, MX, SOA, TXT).
// Multi-line parenthesized SOA records are supported.
#pragma once

#include <iosfwd>
#include <string>

#include "util/status.h"
#include "zone/zone.h"

namespace govdns::zone {

struct ZoneFileOptions {
  // Default TTL when neither $TTL nor a per-record TTL is present.
  uint32_t default_ttl = 3600;
};

// Parses master-file text into a Zone. `origin` seeds $ORIGIN (a leading
// $ORIGIN directive overrides it). Returns a parse error naming the first
// offending line.
util::StatusOr<Zone> ParseZoneFile(const std::string& text,
                                   const dns::Name& origin,
                                   ZoneFileOptions options = ZoneFileOptions());

// Serializes a zone in master-file format: $ORIGIN/$TTL header, SOA first,
// then the remaining records in canonical owner order, with owners written
// relative to the origin.
std::string WriteZoneFile(const Zone& zone);

}  // namespace govdns::zone
