// DNS zone data: the authoritative record sets for one zone, plus lookup
// helpers used by the authoritative-server logic.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "dns/name.h"
#include "dns/rr.h"
#include "util/status.h"

namespace govdns::zone {

// A zone is the set of records from its origin (apex) down to — but not
// including — the apexes of delegated child zones. NS records at a name
// other than the origin mark a delegation cut.
class Zone {
 public:
  explicit Zone(dns::Name origin);

  const dns::Name& origin() const { return origin_; }

  // Adds a record. The owner name must be at or below the origin.
  void Add(dns::ResourceRecord rr);

  // All records of `type` at `name`; empty if none.
  std::vector<dns::ResourceRecord> Find(const dns::Name& name,
                                        dns::RRType type) const;

  // True if any record exists at `name` (of any type), or if `name` is an
  // empty non-terminal (an existing name's ancestor).
  bool NameExists(const dns::Name& name) const;

  // The closest delegation cut at or above `name`, strictly below the
  // origin: the NS RRset whose owner is the longest suffix of `name` that
  // is a proper subdomain of the origin and carries NS records.
  // Returns nullopt when `name` is inside this zone's authoritative data.
  std::optional<dns::Name> FindDelegation(const dns::Name& name) const;

  // The SOA record at the apex, if present.
  std::optional<dns::ResourceRecord> Soa() const;

  // All NS names at a given owner (convenience over Find).
  std::vector<dns::Name> NsTargets(const dns::Name& owner) const;

  // Iterates every record in the zone (tests and the PDNS replayer use it).
  void ForEachRecord(
      const std::function<void(const dns::ResourceRecord&)>& fn) const;

  size_t record_count() const;

 private:
  dns::Name origin_;
  // Owner name -> type -> records. std::map keeps canonical order, which
  // makes iteration (and thus everything built on it) deterministic.
  std::map<dns::Name, std::map<dns::RRType, std::vector<dns::ResourceRecord>>>
      records_;
};

}  // namespace govdns::zone
