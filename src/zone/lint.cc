#include "zone/lint.h"

#include <algorithm>
#include <map>
#include <set>

namespace govdns::zone {

std::string_view LintSeverityName(LintSeverity severity) {
  switch (severity) {
    case LintSeverity::kError:
      return "ERROR";
    case LintSeverity::kWarning:
      return "WARNING";
    case LintSeverity::kNotice:
      return "NOTICE";
  }
  return "?";
}

std::string_view LintRuleName(LintRule rule) {
  switch (rule) {
    case LintRule::kMissingSoa:
      return "missing-soa";
    case LintRule::kMultipleSoa:
      return "multiple-soa";
    case LintRule::kMissingApexNs:
      return "missing-apex-ns";
    case LintRule::kSingleApexNs:
      return "single-apex-ns";
    case LintRule::kCnameAtApex:
      return "cname-at-apex";
    case LintRule::kCnameAndOtherData:
      return "cname-and-other-data";
    case LintRule::kNsPointsToCname:
      return "ns-points-to-cname";
    case LintRule::kRelativeNsTarget:
      return "relative-ns-target";
    case LintRule::kMissingGlue:
      return "missing-glue";
    case LintRule::kOrphanGlue:
      return "orphan-glue";
    case LintRule::kUnresolvableNsTarget:
      return "unresolvable-ns-target";
    case LintRule::kTtlZero:
      return "ttl-zero";
    case LintRule::kSoaSerialZero:
      return "soa-serial-zero";
    case LintRule::kDelegationMismatch:
      return "delegation-mismatch";
  }
  return "?";
}

std::string LintFinding::ToString() const {
  std::string out(LintSeverityName(severity));
  out += " [";
  out += LintRuleName(rule);
  out += "] ";
  out += name.ToString();
  out += ": ";
  out += message;
  return out;
}

namespace {

void Add(std::vector<LintFinding>& findings, LintRule rule,
         LintSeverity severity, const dns::Name& name, std::string message) {
  findings.push_back(LintFinding{rule, severity, name, std::move(message)});
}

}  // namespace

std::vector<LintFinding> LintZone(const Zone& zone, LintOptions options) {
  std::vector<LintFinding> findings;
  const dns::Name& origin = zone.origin();

  // ---- Apex checks --------------------------------------------------------
  auto soas = zone.Find(origin, dns::RRType::kSOA);
  if (soas.empty()) {
    Add(findings, LintRule::kMissingSoa, LintSeverity::kError, origin,
        "zone has no SOA record at the apex");
  } else {
    if (soas.size() > 1) {
      Add(findings, LintRule::kMultipleSoa, LintSeverity::kError, origin,
          "zone has " + std::to_string(soas.size()) + " SOA records");
    }
    const auto& soa = std::get<dns::SoaRdata>(soas.front().rdata);
    if (soa.serial == 0) {
      Add(findings, LintRule::kSoaSerialZero, LintSeverity::kNotice, origin,
          "SOA serial is 0");
    }
  }

  auto apex_ns = zone.NsTargets(origin);
  if (apex_ns.empty()) {
    Add(findings, LintRule::kMissingApexNs, LintSeverity::kError, origin,
        "zone has no NS records at the apex");
  } else if (apex_ns.size() == 1) {
    Add(findings, LintRule::kSingleApexNs,
        options.strict_replication ? LintSeverity::kError
                                   : LintSeverity::kWarning,
        origin,
        "only one apex nameserver (RFC 2182 requires replication; this "
        "study found 60% of such government domains dead)");
  }
  if (!zone.Find(origin, dns::RRType::kCNAME).empty()) {
    Add(findings, LintRule::kCnameAtApex, LintSeverity::kError, origin,
        "CNAME at the zone apex is illegal (RFC 1034)");
  }

  // ---- Per-name scans -----------------------------------------------------
  // Collect every (owner, type) and all NS records for later checks.
  std::map<dns::Name, std::set<dns::RRType>> types_at;
  std::vector<dns::ResourceRecord> ns_records;
  zone.ForEachRecord([&](const dns::ResourceRecord& rr) {
    types_at[rr.name].insert(rr.type());
    if (rr.type() == dns::RRType::kNS) ns_records.push_back(rr);
    if (rr.ttl == 0) {
      Add(findings, LintRule::kTtlZero, LintSeverity::kNotice, rr.name,
          "record has TTL 0");
    }
  });

  for (const auto& [name, types] : types_at) {
    if (types.contains(dns::RRType::kCNAME) && types.size() > 1) {
      // A delegation NS alongside CNAME is doubly wrong but reported once.
      if (!(name == origin)) {  // apex case already reported
        Add(findings, LintRule::kCnameAndOtherData, LintSeverity::kError,
            name, "CNAME coexists with other record types");
      }
    }
  }

  // ---- NS target checks ---------------------------------------------------
  for (const dns::ResourceRecord& rr : ns_records) {
    const dns::Name& target = std::get<dns::NsRdata>(rr.rdata).nameserver;
    if (target.LabelCount() <= 1) {
      Add(findings, LintRule::kRelativeNsTarget, LintSeverity::kError,
          rr.name,
          "NS target '" + target.ToString() +
              "' looks like a relative name that lost its origin (the "
              "paper's 'ns' vs 'ns.example.com' typo)");
      continue;
    }
    if (!target.IsSubdomainOf(origin)) continue;  // out of bailiwick: fine
    const bool has_address =
        !zone.Find(target, dns::RRType::kA).empty() ||
        !zone.Find(target, dns::RRType::kAAAA).empty();
    if (has_address) continue;
    if (!zone.Find(target, dns::RRType::kCNAME).empty()) {
      Add(findings, LintRule::kNsPointsToCname, LintSeverity::kError, rr.name,
          "NS target " + target.ToString() + " is a CNAME (RFC 1912 2.4)");
    } else if (zone.NameExists(target)) {
      Add(findings, LintRule::kMissingGlue, LintSeverity::kWarning, rr.name,
          "in-bailiwick NS target " + target.ToString() +
              " has no address record (glue)");
    } else {
      Add(findings, LintRule::kUnresolvableNsTarget, LintSeverity::kError,
          rr.name,
          "in-zone NS target " + target.ToString() + " does not exist");
    }
  }

  // ---- Glue hygiene: address records below a cut must belong to the cut's
  // NS set (anything else is occluded data that silently stops resolving).
  std::set<dns::Name> glue_targets;
  for (const dns::ResourceRecord& rr : ns_records) {
    if (!(rr.name == origin)) {
      glue_targets.insert(std::get<dns::NsRdata>(rr.rdata).nameserver);
    }
  }
  zone.ForEachRecord([&](const dns::ResourceRecord& rr) {
    if (rr.type() != dns::RRType::kA && rr.type() != dns::RRType::kAAAA) {
      return;
    }
    auto cut = zone.FindDelegation(rr.name);
    if (!cut || rr.name == *cut) return;
    if (!glue_targets.contains(rr.name)) {
      Add(findings, LintRule::kOrphanGlue, LintSeverity::kWarning, rr.name,
          "address record below the " + cut->ToString() +
              " delegation is not glue for any of its nameservers");
    }
  });

  return findings;
}

std::vector<LintFinding> LintDelegation(
    const Zone& zone, const std::vector<dns::Name>& parent_ns) {
  std::vector<LintFinding> findings;
  std::set<dns::Name> parent(parent_ns.begin(), parent_ns.end());
  auto child_vec = zone.NsTargets(zone.origin());
  std::set<dns::Name> child(child_vec.begin(), child_vec.end());
  if (parent == child) return findings;

  auto describe = [](const std::set<dns::Name>& names) {
    std::string out;
    for (const auto& name : names) {
      if (!out.empty()) out += ", ";
      out += name.ToString();
    }
    return out.empty() ? std::string("(none)") : out;
  };
  std::set<dns::Name> parent_only, child_only;
  std::set_difference(parent.begin(), parent.end(), child.begin(),
                      child.end(),
                      std::inserter(parent_only, parent_only.begin()));
  std::set_difference(child.begin(), child.end(), parent.begin(),
                      parent.end(),
                      std::inserter(child_only, child_only.begin()));
  Add(findings, LintRule::kDelegationMismatch, LintSeverity::kWarning,
      zone.origin(),
      "parent and child NS sets disagree; parent-only: {" +
          describe(parent_only) + "}, child-only: {" + describe(child_only) +
          "} (stale parent records risk lame delegation or hijacking)");
  return findings;
}

}  // namespace govdns::zone
