// Authoritative nameserver behaviour.
//
// An AuthServer holds the zones a (simulated) nameserver host serves and
// produces RFC-1035-conformant responses: authoritative answers, referrals
// with glue, NODATA, NXDOMAIN, or REFUSED for zones it does not serve.
//
// Misconfiguration modes reproduce the lame-delegation flavours the paper
// measures: a host that is listed in a parent's NS set but refuses queries,
// answers non-authoritatively, or belongs to a domain-parking service that
// answers everything with its own addresses.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "dns/message.h"
#include "zone/zone.h"

namespace govdns::zone {

enum class ServerMode {
  kNormal,      // serve configured zones, REFUSED otherwise
  kRefuseAll,   // lame: always REFUSED, regardless of zone data
  kNoAuthBit,   // lame: answers from zone data but never sets AA
  kParking,     // answers *every* name authoritatively with parking records
};

class AuthServer {
 public:
  explicit AuthServer(std::string host_id, ServerMode mode = ServerMode::kNormal);

  const std::string& host_id() const { return host_id_; }
  ServerMode mode() const { return mode_; }
  void set_mode(ServerMode mode) { mode_ = mode; }

  // Attaches a zone. The server answers authoritatively for the most
  // specific attached zone whose origin is a suffix of the query name.
  void AddZone(std::shared_ptr<const Zone> zone);
  // Detaches a zone (a provider dropping a customer: later queries for it
  // get REFUSED, the classic lame-delegation cause).
  void RemoveZone(const dns::Name& origin);

  bool ServesZone(const dns::Name& origin) const {
    return zones_.contains(origin);
  }
  size_t zone_count() const { return zones_.size(); }

  // For kParking mode: the addresses returned for every query.
  void SetParkingAddresses(std::vector<geo::IPv4> addresses);

  // Full request->response logic. Always returns a message (silence is a
  // network property, modelled by simnet endpoint behaviour, not here).
  dns::Message Answer(const dns::Message& query) const;

 private:
  dns::Message AnswerFromZone(const Zone& zone, const dns::Message& query) const;
  dns::Message AnswerParking(const dns::Message& query) const;
  const Zone* FindBestZone(const dns::Name& qname) const;

  std::string host_id_;
  ServerMode mode_;
  std::map<dns::Name, std::shared_ptr<const Zone>> zones_;
  std::vector<geo::IPv4> parking_addresses_;
};

}  // namespace govdns::zone
