#include "zone/zone.h"

#include <functional>

namespace govdns::zone {

Zone::Zone(dns::Name origin) : origin_(std::move(origin)) {}

void Zone::Add(dns::ResourceRecord rr) {
  GOVDNS_CHECK(rr.name.IsSubdomainOf(origin_));
  records_[rr.name][rr.type()].push_back(std::move(rr));
}

std::vector<dns::ResourceRecord> Zone::Find(const dns::Name& name,
                                            dns::RRType type) const {
  auto it = records_.find(name);
  if (it == records_.end()) return {};
  auto jt = it->second.find(type);
  if (jt == it->second.end()) return {};
  return jt->second;
}

bool Zone::NameExists(const dns::Name& name) const {
  if (records_.contains(name)) return true;
  // Empty non-terminal: some existing owner is a proper subdomain of name.
  // Owners ordered canonically cluster under their ancestors, so scan the
  // range starting at `name`.
  for (auto it = records_.lower_bound(name); it != records_.end(); ++it) {
    if (!it->first.IsSubdomainOf(name)) break;
    return true;
  }
  return false;
}

std::optional<dns::Name> Zone::FindDelegation(const dns::Name& name) const {
  if (!name.IsSubdomainOf(origin_)) return std::nullopt;
  // Walk cuts from the origin downward: check each ancestor of `name` that
  // is strictly below the origin, shortest first, so the topmost cut wins.
  const size_t origin_labels = origin_.LabelCount();
  for (size_t count = origin_labels + 1; count <= name.LabelCount(); ++count) {
    dns::Name candidate = name.Suffix(count);
    auto it = records_.find(candidate);
    if (it != records_.end() && it->second.contains(dns::RRType::kNS)) {
      return candidate;
    }
  }
  return std::nullopt;
}

std::optional<dns::ResourceRecord> Zone::Soa() const {
  auto soas = Find(origin_, dns::RRType::kSOA);
  if (soas.empty()) return std::nullopt;
  return soas.front();
}

std::vector<dns::Name> Zone::NsTargets(const dns::Name& owner) const {
  std::vector<dns::Name> out;
  for (const auto& rr : Find(owner, dns::RRType::kNS)) {
    out.push_back(std::get<dns::NsRdata>(rr.rdata).nameserver);
  }
  return out;
}

void Zone::ForEachRecord(
    const std::function<void(const dns::ResourceRecord&)>& fn) const {
  for (const auto& [name, by_type] : records_) {
    for (const auto& [type, rrs] : by_type) {
      for (const auto& rr : rrs) fn(rr);
    }
  }
}

size_t Zone::record_count() const {
  size_t total = 0;
  for (const auto& [name, by_type] : records_) {
    for (const auto& [type, rrs] : by_type) total += rrs.size();
  }
  return total;
}

}  // namespace govdns::zone
