#include "zone/zonefile.h"

#include <cctype>
#include <sstream>
#include <vector>

#include "util/strings.h"

namespace govdns::zone {

namespace {

// A token stream over master-file text that understands ';' comments and
// '(' ... ')' line continuation, and reports logical-line boundaries.
class Tokenizer {
 public:
  explicit Tokenizer(const std::string& text) : text_(text) {}

  struct Line {
    std::vector<std::string> tokens;
    bool owner_field_blank = false;  // line started with whitespace
    int line_number = 0;
  };

  // Next logical line with at least one token; nullopt at end of input.
  std::optional<Line> NextLine() {
    while (pos_ < text_.size()) {
      Line line;
      line.line_number = line_number_;
      line.owner_field_blank =
          pos_ < text_.size() && (text_[pos_] == ' ' || text_[pos_] == '\t');
      int depth = 0;
      bool saw_token = false;
      while (pos_ < text_.size()) {
        char c = text_[pos_];
        if (c == ';') {
          SkipToEol();
          if (depth == 0) break;
          continue;
        }
        if (c == '\n') {
          ++pos_;
          ++line_number_;
          if (depth == 0) break;
          continue;
        }
        if (c == ' ' || c == '\t' || c == '\r') {
          ++pos_;
          continue;
        }
        if (c == '(') {
          ++depth;
          ++pos_;
          continue;
        }
        if (c == ')') {
          --depth;
          ++pos_;
          continue;
        }
        if (c == '"') {
          // Quoted character string (TXT).
          ++pos_;
          std::string token;
          while (pos_ < text_.size() && text_[pos_] != '"') {
            token += text_[pos_++];
          }
          if (pos_ < text_.size()) ++pos_;  // closing quote
          line.tokens.push_back("\"" + token);
          saw_token = true;
          continue;
        }
        std::string token;
        while (pos_ < text_.size() && !std::isspace(
                   static_cast<unsigned char>(text_[pos_])) &&
               text_[pos_] != ';' && text_[pos_] != '(' && text_[pos_] != ')') {
          token += text_[pos_++];
        }
        line.tokens.push_back(std::move(token));
        saw_token = true;
      }
      if (saw_token) return line;
      // Blank/comment-only line: keep scanning.
    }
    return std::nullopt;
  }

 private:
  void SkipToEol() {
    while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
  }

  const std::string& text_;
  size_t pos_ = 0;
  int line_number_ = 1;
};

util::StatusOr<dns::Name> ResolveName(const std::string& token,
                                      const dns::Name& origin) {
  if (token == "@") return origin;
  if (!token.empty() && token.back() == '.') {
    return dns::Name::Parse(token);
  }
  // Relative: append the origin.
  auto relative = dns::Name::Parse(token);
  if (!relative.ok()) return relative.status();
  std::vector<std::string> labels;
  for (const auto& label : relative->labels()) labels.push_back(label);
  for (const auto& label : origin.labels()) labels.push_back(label);
  return dns::Name::FromLabels(std::move(labels));
}

util::StatusOr<uint32_t> ParseU32(const std::string& token) {
  uint64_t value = 0;
  if (token.empty()) return util::ParseError("empty integer");
  for (char c : token) {
    if (!std::isdigit(static_cast<unsigned char>(c))) {
      return util::ParseError("not a number: " + token);
    }
    value = value * 10 + static_cast<uint64_t>(c - '0');
    if (value > 0xFFFFFFFFULL) return util::ParseError("overflow: " + token);
  }
  return static_cast<uint32_t>(value);
}

bool IsAllDigits(const std::string& token) {
  if (token.empty()) return false;
  for (char c : token) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

std::string ErrorAt(int line, const std::string& what) {
  return "line " + std::to_string(line) + ": " + what;
}

}  // namespace

util::StatusOr<Zone> ParseZoneFile(const std::string& text,
                                   const dns::Name& origin,
                                   ZoneFileOptions options) {
  Tokenizer tokenizer(text);
  dns::Name current_origin = origin;
  uint32_t default_ttl = options.default_ttl;
  std::optional<dns::Name> previous_owner;

  // Records are collected first: the zone origin may be overridden by a
  // leading $ORIGIN, and Zone is keyed on it.
  std::vector<dns::ResourceRecord> records;
  std::optional<dns::Name> zone_origin;

  while (auto line = tokenizer.NextLine()) {
    auto& tokens = line->tokens;
    const int ln = line->line_number;

    // Directives.
    if (tokens[0] == "$ORIGIN") {
      if (tokens.size() != 2) {
        return util::ParseError(ErrorAt(ln, "$ORIGIN needs one argument"));
      }
      auto name = ResolveName(tokens[1], current_origin);
      if (!name.ok()) return util::ParseError(ErrorAt(ln, name.status().message()));
      current_origin = *name;
      if (!zone_origin) zone_origin = current_origin;
      continue;
    }
    if (tokens[0] == "$TTL") {
      if (tokens.size() != 2) {
        return util::ParseError(ErrorAt(ln, "$TTL needs one argument"));
      }
      auto ttl = ParseU32(tokens[1]);
      if (!ttl.ok()) return util::ParseError(ErrorAt(ln, ttl.status().message()));
      default_ttl = *ttl;
      continue;
    }
    if (tokens[0].size() > 1 && tokens[0][0] == '$') {
      return util::ParseError(ErrorAt(ln, "unsupported directive " + tokens[0]));
    }
    if (!zone_origin) zone_origin = current_origin;

    // Owner.
    size_t next = 0;
    dns::Name owner = current_origin;
    if (line->owner_field_blank) {
      if (!previous_owner) {
        return util::ParseError(ErrorAt(ln, "no previous owner to repeat"));
      }
      owner = *previous_owner;
    } else {
      auto name = ResolveName(tokens[0], current_origin);
      if (!name.ok()) return util::ParseError(ErrorAt(ln, name.status().message()));
      owner = *name;
      next = 1;
    }
    previous_owner = owner;

    // Optional TTL and class, in either order.
    uint32_t ttl = default_ttl;
    for (int pass = 0; pass < 2 && next < tokens.size(); ++pass) {
      if (IsAllDigits(tokens[next])) {
        auto parsed = ParseU32(tokens[next]);
        if (!parsed.ok()) return util::ParseError(ErrorAt(ln, "bad TTL"));
        ttl = *parsed;
        ++next;
      } else if (util::EqualsIgnoreCase(tokens[next], "IN")) {
        ++next;
      }
    }
    if (next >= tokens.size()) {
      return util::ParseError(ErrorAt(ln, "missing record type"));
    }

    std::string type_token = tokens[next];
    for (char& c : type_token) {
      c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
    }
    auto type = dns::RRTypeFromName(type_token);
    if (!type.ok()) {
      return util::ParseError(ErrorAt(ln, "unknown type " + tokens[next]));
    }
    ++next;
    auto remaining = [&]() -> size_t { return tokens.size() - next; };

    dns::ResourceRecord rr;
    rr.name = owner;
    rr.ttl = ttl;
    switch (*type) {
      case dns::RRType::kA: {
        if (remaining() != 1) {
          return util::ParseError(ErrorAt(ln, "A needs one address"));
        }
        auto addr = geo::IPv4::Parse(tokens[next]);
        if (!addr.ok()) return util::ParseError(ErrorAt(ln, "bad address"));
        rr.rdata = dns::ARdata{*addr};
        break;
      }
      case dns::RRType::kNS:
      case dns::RRType::kCNAME:
      case dns::RRType::kPTR: {
        if (remaining() != 1) {
          return util::ParseError(ErrorAt(ln, "expected one name"));
        }
        auto target = ResolveName(tokens[next], current_origin);
        if (!target.ok()) return util::ParseError(ErrorAt(ln, "bad name"));
        if (*type == dns::RRType::kNS) {
          rr.rdata = dns::NsRdata{*target};
        } else if (*type == dns::RRType::kCNAME) {
          rr.rdata = dns::CnameRdata{*target};
        } else {
          rr.rdata = dns::PtrRdata{*target};
        }
        break;
      }
      case dns::RRType::kMX: {
        if (remaining() != 2) {
          return util::ParseError(ErrorAt(ln, "MX needs preference + name"));
        }
        auto pref = ParseU32(tokens[next]);
        if (!pref.ok() || *pref > 0xFFFF) {
          return util::ParseError(ErrorAt(ln, "bad MX preference"));
        }
        auto target = ResolveName(tokens[next + 1], current_origin);
        if (!target.ok()) return util::ParseError(ErrorAt(ln, "bad MX target"));
        rr.rdata = dns::MxRdata{static_cast<uint16_t>(*pref), *target};
        break;
      }
      case dns::RRType::kSOA: {
        if (remaining() != 7) {
          return util::ParseError(
              ErrorAt(ln, "SOA needs mname rname and 5 numbers"));
        }
        dns::SoaRdata soa;
        auto mname = ResolveName(tokens[next], current_origin);
        auto rname = ResolveName(tokens[next + 1], current_origin);
        if (!mname.ok() || !rname.ok()) {
          return util::ParseError(ErrorAt(ln, "bad SOA names"));
        }
        soa.mname = *mname;
        soa.rname = *rname;
        uint32_t* fields[] = {&soa.serial, &soa.refresh, &soa.retry,
                              &soa.expire, &soa.minimum};
        for (int i = 0; i < 5; ++i) {
          auto value = ParseU32(tokens[next + 2 + i]);
          if (!value.ok()) {
            return util::ParseError(ErrorAt(ln, "bad SOA number"));
          }
          *fields[i] = *value;
        }
        rr.rdata = soa;
        break;
      }
      case dns::RRType::kTXT: {
        if (remaining() < 1) {
          return util::ParseError(ErrorAt(ln, "TXT needs strings"));
        }
        dns::TxtRdata txt;
        for (; next < tokens.size(); ++next) {
          std::string value = tokens[next];
          if (!value.empty() && value[0] == '"') value = value.substr(1);
          if (value.size() > 255) {
            return util::ParseError(ErrorAt(ln, "TXT string too long"));
          }
          txt.strings.push_back(std::move(value));
        }
        rr.rdata = std::move(txt);
        rr.name = owner;
        rr.ttl = ttl;
        records.push_back(std::move(rr));
        continue;  // `next` already consumed
      }
      case dns::RRType::kAAAA:
        return util::ParseError(ErrorAt(ln, "AAAA text format unsupported"));
    }
    records.push_back(std::move(rr));
  }

  if (!zone_origin) zone_origin = origin;
  Zone zone(*zone_origin);
  for (auto& rr : records) {
    if (!rr.name.IsSubdomainOf(zone.origin())) {
      return util::ParseError("record " + rr.name.ToString() +
                              " outside zone " + zone.origin().ToString());
    }
    zone.Add(std::move(rr));
  }
  return zone;
}

namespace {

// Owner written relative to the origin where possible.
std::string RelativeOwner(const dns::Name& name, const dns::Name& origin) {
  if (name == origin) return "@";
  if (name.IsProperSubdomainOf(origin)) {
    std::vector<std::string> labels;
    size_t keep = name.LabelCount() - origin.LabelCount();
    for (size_t i = 0; i < keep; ++i) labels.push_back(name.Label(i));
    return util::Join(labels, ".");
  }
  return name.ToString() + ".";
}

std::string RdataText(const dns::ResourceRecord& rr, const dns::Name& origin) {
  (void)origin;
  switch (rr.type()) {
    case dns::RRType::kTXT: {
      const auto& txt = std::get<dns::TxtRdata>(rr.rdata);
      std::string out;
      for (const auto& s : txt.strings) {
        if (!out.empty()) out += ' ';
        out += '"' + s + '"';
      }
      return out;
    }
    case dns::RRType::kNS:
      return std::get<dns::NsRdata>(rr.rdata).nameserver.ToString() + ".";
    case dns::RRType::kCNAME:
      return std::get<dns::CnameRdata>(rr.rdata).target.ToString() + ".";
    case dns::RRType::kPTR:
      return std::get<dns::PtrRdata>(rr.rdata).target.ToString() + ".";
    case dns::RRType::kMX: {
      const auto& mx = std::get<dns::MxRdata>(rr.rdata);
      return std::to_string(mx.preference) + " " + mx.exchange.ToString() + ".";
    }
    case dns::RRType::kSOA: {
      const auto& soa = std::get<dns::SoaRdata>(rr.rdata);
      std::ostringstream os;
      os << soa.mname.ToString() << ". " << soa.rname.ToString() << ". ( "
         << soa.serial << " " << soa.refresh << " " << soa.retry << " "
         << soa.expire << " " << soa.minimum << " )";
      return os.str();
    }
    default:
      return dns::RdataToString(rr.rdata);
  }
}

}  // namespace

std::string WriteZoneFile(const Zone& zone) {
  std::ostringstream os;
  os << "$ORIGIN " << zone.origin().ToString() << ".\n";
  os << "$TTL 3600\n";
  // SOA first, then everything else in iteration (canonical) order.
  if (auto soa = zone.Soa()) {
    os << RelativeOwner(soa->name, zone.origin()) << " " << soa->ttl
       << " IN SOA " << RdataText(*soa, zone.origin()) << "\n";
  }
  zone.ForEachRecord([&](const dns::ResourceRecord& rr) {
    if (rr.type() == dns::RRType::kSOA) return;
    os << RelativeOwner(rr.name, zone.origin()) << " " << rr.ttl << " IN "
       << dns::RRTypeName(rr.type()) << " " << RdataText(rr, zone.origin())
       << "\n";
  });
  return os.str();
}

}  // namespace govdns::zone
