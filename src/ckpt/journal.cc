#include "ckpt/journal.h"

#include <fcntl.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "ckpt/serial.h"

namespace govdns::ckpt {

namespace {

constexpr char kMagic[4] = {'G', 'V', 'C', 'K'};

std::array<uint32_t, 256> MakeCrcTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

// Writes bytes to `path` and fsyncs the file descriptor before closing, so
// a subsequent rename publishes fully-durable content.
util::Status WriteFileDurable(const std::string& path,
                              std::string_view bytes) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return util::InternalError("open " + path + ": " + std::strerror(errno));
  }
  size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + off, bytes.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      const int err = errno;
      ::close(fd);
      return util::InternalError("write " + path + ": " + std::strerror(err));
    }
    off += static_cast<size_t>(n);
  }
  if (::fsync(fd) != 0) {
    const int err = errno;
    ::close(fd);
    return util::InternalError("fsync " + path + ": " + std::strerror(err));
  }
  ::close(fd);
  return util::Status::Ok();
}

// Makes the rename itself durable: without the directory fsync a crash can
// forget the directory entry even though the file's bytes are on disk.
util::Status FsyncDir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) {
    return util::InternalError("open dir " + dir + ": " +
                               std::strerror(errno));
  }
  if (::fsync(fd) != 0) {
    const int err = errno;
    ::close(fd);
    return util::InternalError("fsync dir " + dir + ": " +
                               std::strerror(err));
  }
  ::close(fd);
  return util::Status::Ok();
}

// Flips one byte at `offset` in place (kCorrupt fault mode).
void FlipByteAt(const std::string& path, size_t offset) {
  const int fd = ::open(path.c_str(), O_RDWR);
  if (fd < 0) return;
  char b = 0;
  if (::pread(fd, &b, 1, static_cast<off_t>(offset)) == 1) {
    b = static_cast<char>(b ^ 0xFF);
    ::pwrite(fd, &b, 1, static_cast<off_t>(offset));
    ::fsync(fd);
  }
  ::close(fd);
}

}  // namespace

uint32_t Crc32(std::string_view bytes) {
  static const std::array<uint32_t, 256> table = MakeCrcTable();
  uint32_t c = 0xFFFFFFFFu;
  for (const char ch : bytes) {
    c = table[(c ^ static_cast<uint8_t>(ch)) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

util::Status AtomicWriteFileDurable(const std::string& dir,
                                    const std::string& path,
                                    std::string_view bytes) {
  const std::string tmp = path + ".tmp";
  GOVDNS_RETURN_IF_ERROR(WriteFileDurable(tmp, bytes));
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    return util::InternalError("rename " + tmp + " -> " + path + ": " +
                               std::strerror(errno));
  }
  return FsyncDir(dir);
}

uint64_t MixFingerprint(uint64_t a, uint64_t b) {
  uint64_t state = a ^ (b + 0x9E3779B97F4A7C15ull + (a << 6) + (a >> 2));
  // One SplitMix64 round for avalanche.
  state += 0x9E3779B97F4A7C15ull;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

Journal::Journal(std::string dir, uint64_t fingerprint)
    : dir_(std::move(dir)), fingerprint_(fingerprint) {}

std::string Journal::FramePath(const std::string& name) const {
  return dir_ + "/" + name + ".ck";
}

util::Status Journal::EnsureDir() {
  if (dir_ready_) return util::Status::Ok();
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec) {
    return util::InternalError("mkdir " + dir_ + ": " + ec.message());
  }
  dir_ready_ = true;
  return util::Status::Ok();
}

void Journal::Kill(uint64_t write_index, const std::string& name) {
  std::fprintf(stderr, "[ckpt] kill-point fired at write %llu (%s, %s)\n",
               static_cast<unsigned long long>(write_index),
               std::string(KillModeName(plan_.mode)).c_str(), name.c_str());
  if (plan_.exit_process) {
    std::fflush(nullptr);
    ::_exit(kKillExitCode);
  }
  throw KillPointReached(write_index, plan_.mode, name);
}

util::StatusOr<uint32_t> Journal::Commit(const std::string& name,
                                         std::string_view payload,
                                         uint32_t parent_crc) {
  GOVDNS_RETURN_IF_ERROR(EnsureDir());
  const uint64_t index = ++stats_.commits;
  const bool fire = plan_.kill_at_write != 0 && index == plan_.kill_at_write;
  if (fire && plan_.mode == KillMode::kBeforeWrite) Kill(index, name);

  const uint32_t crc = Crc32(payload);
  Writer header;
  header.Raw(std::string_view(kMagic, sizeof kMagic));
  header.U32(kFrameVersion);
  header.U64(fingerprint_);
  header.U32(parent_crc);
  header.U32(crc);
  header.U64(payload.size());
  std::string frame = header.Take();
  GOVDNS_CHECK(frame.size() == kFrameHeaderSize);
  frame.append(payload);

  const std::string tmp = dir_ + "/" + name + ".tmp";
  const std::string final_path = FramePath(name);
  GOVDNS_RETURN_IF_ERROR(WriteFileDurable(tmp, frame));
  if (plan_.fail_fsync_at_write != 0 && index == plan_.fail_fsync_at_write) {
    // Injected EIO at the temp file's fsync. The bytes may or may not be on
    // disk — fsync failure semantics promise nothing — so the only safe
    // move is to discard the temp and reject the commit outright. The
    // previous generation of <name>.ck was never touched and stays the
    // durable truth.
    ::unlink(tmp.c_str());
    ++stats_.fsync_rejected;
    return util::InternalError("fsync " + tmp +
                               ": Input/output error (injected)");
  }
  if (fire && plan_.mode == KillMode::kAfterTemp) Kill(index, name);
  if (::rename(tmp.c_str(), final_path.c_str()) != 0) {
    return util::InternalError("rename " + tmp + " -> " + final_path + ": " +
                               std::strerror(errno));
  }
  GOVDNS_RETURN_IF_ERROR(FsyncDir(dir_));
  stats_.bytes_written += frame.size();

  if (fire) {
    switch (plan_.mode) {
      case KillMode::kTruncate:
        ::truncate(final_path.c_str(), static_cast<off_t>(frame.size() / 2));
        break;
      case KillMode::kCorrupt:
        // Flip a payload byte so the CRC check must catch it (an empty
        // payload flips the stored CRC itself instead).
        FlipByteAt(final_path, payload.empty()
                                   ? kFrameHeaderSize - 12
                                   : kFrameHeaderSize + payload.size() / 2);
        break;
      default:
        break;
    }
    Kill(index, name);
  }
  return crc;
}

util::StatusOr<Journal::LoadedFrame> Journal::Load(const std::string& name,
                                                   uint32_t parent_crc) {
  const std::string path = FramePath(name);
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    ++stats_.rejected_missing;
    return util::NotFoundError("no checkpoint frame " + path);
  }
  std::string raw((std::istreambuf_iterator<char>(in)),
                  std::istreambuf_iterator<char>());
  if (raw.size() < kFrameHeaderSize) {
    ++stats_.rejected_truncated;
    return util::DataLossError("truncated frame header in " + path);
  }
  Reader r(raw);
  if (std::memcmp(raw.data(), kMagic, sizeof kMagic) != 0) {
    ++stats_.rejected_magic;
    return util::DataLossError("bad magic in " + path);
  }
  uint8_t skip = 0;
  for (size_t i = 0; i < sizeof kMagic; ++i) r.U8(&skip);
  uint32_t version = 0, got_parent = 0, payload_crc = 0;
  uint64_t fingerprint = 0, payload_size = 0;
  if (!r.U32(&version) || !r.U64(&fingerprint) || !r.U32(&got_parent) ||
      !r.U32(&payload_crc) || !r.U64(&payload_size)) {
    ++stats_.rejected_truncated;
    return util::DataLossError("truncated frame header in " + path);
  }
  if (version != kFrameVersion) {
    ++stats_.rejected_version;
    return util::DataLossError("frame version " + std::to_string(version) +
                               " != " + std::to_string(kFrameVersion) +
                               " in " + path);
  }
  if (fingerprint != fingerprint_) {
    ++stats_.rejected_fingerprint;
    return util::DataLossError("config/world fingerprint mismatch in " + path);
  }
  if (payload_size != raw.size() - kFrameHeaderSize) {
    ++stats_.rejected_truncated;
    return util::DataLossError("payload size mismatch in " + path);
  }
  std::string_view payload(raw.data() + kFrameHeaderSize,
                           raw.size() - kFrameHeaderSize);
  if (Crc32(payload) != payload_crc) {
    ++stats_.rejected_crc;
    return util::DataLossError("payload CRC mismatch in " + path);
  }
  if (got_parent != parent_crc) {
    ++stats_.rejected_chain;
    return util::DataLossError("chain parent CRC mismatch in " + path);
  }
  ++stats_.loads_ok;
  LoadedFrame frame;
  frame.payload.assign(payload);
  frame.crc = payload_crc;
  return frame;
}

bool Journal::Exists(const std::string& name) const {
  std::error_code ec;
  return std::filesystem::exists(FramePath(name), ec);
}

void Journal::WipeAll() {
  std::error_code ec;
  std::filesystem::directory_iterator it(dir_, ec);
  if (ec) return;  // nothing to wipe
  for (const auto& entry : it) {
    const std::string ext = entry.path().extension().string();
    if (ext == ".ck" || ext == ".tmp") {
      std::filesystem::remove(entry.path(), ec);
    }
  }
}

}  // namespace govdns::ckpt
