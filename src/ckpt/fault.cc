#include "ckpt/fault.h"

namespace govdns::ckpt {

std::string_view KillModeName(KillMode mode) {
  switch (mode) {
    case KillMode::kBeforeWrite: return "before-write";
    case KillMode::kAfterTemp: return "after-temp";
    case KillMode::kTruncate: return "truncate";
    case KillMode::kCorrupt: return "corrupt";
    case KillMode::kAfterCommit: return "after-commit";
  }
  return "unknown";
}

KillPointReached::KillPointReached(uint64_t write_index, KillMode mode,
                                   const std::string& file)
    : std::runtime_error("ckpt kill-point at write " +
                         std::to_string(write_index) + " (" +
                         std::string(KillModeName(mode)) + ", " + file + ")"),
      write_index_(write_index),
      mode_(mode) {}

}  // namespace govdns::ckpt
