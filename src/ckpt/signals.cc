#include "ckpt/signals.h"

#include <csignal>
#include <unistd.h>

namespace govdns::ckpt {

namespace {

// Handler state. Everything the handler touches is lock-free atomic or
// async-signal-safe (_exit): no allocation, no stdio, no locks. The exit
// code and flag pointer are themselves atomics — a plain int here is a data
// race the moment a signal lands on another thread (or during a re-install),
// and the handler could _exit with a torn/stale code. Both are stored before
// sigaction() exposes the handler, so the first deliverable signal already
// observes them.
static_assert(std::atomic<int>::is_always_lock_free,
              "handler exit code must be async-signal-safe to read");
std::atomic<std::atomic<bool>*> g_flag{nullptr};
std::atomic<int> g_signals{0};
std::atomic<int> g_exit_code{130};

void EscalatingHandler(int) {
  const int seen = g_signals.fetch_add(1, std::memory_order_relaxed);
  if (seen == 0) {
    std::atomic<bool>* flag = g_flag.load(std::memory_order_relaxed);
    if (flag != nullptr) flag->store(true, std::memory_order_relaxed);
    return;
  }
  // Second signal: the flush is taking too long (or is itself wedged).
  // Abandon it — _exit skips atexit/static destructors and buffered IO,
  // which is the point: nothing below us can hang.
  _exit(g_exit_code.load(std::memory_order_relaxed));
}

}  // namespace

void InstallEscalatingHandlers(std::atomic<bool>* flag, int exit_code) {
  // Publish the handler's inputs before sigaction() makes it reachable; a
  // signal racing the install then reads the new state, never a stale code.
  g_flag.store(flag, std::memory_order_relaxed);
  g_exit_code.store(exit_code, std::memory_order_relaxed);
  g_signals.store(0, std::memory_order_relaxed);
  struct sigaction sa {};
  sa.sa_handler = EscalatingHandler;
  sigemptyset(&sa.sa_mask);
  // No SA_RESETHAND: the handler itself stays installed so the escalation
  // path (second signal -> _exit) runs under our control, and no SA_RESTART
  // so a blocking write the flush is stuck in gets interrupted.
  sa.sa_flags = 0;
  sigaction(SIGINT, &sa, nullptr);
  sigaction(SIGTERM, &sa, nullptr);
}

int EscalationCount() { return g_signals.load(std::memory_order_relaxed); }

}  // namespace govdns::ckpt
