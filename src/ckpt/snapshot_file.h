// Relocatable, offset-indexed, checksummed snapshot container (DESIGN.md
// §6i): the generic file format under mmap-able PdnsSnapshot persistence.
//
// Layout (all integers little-endian, fixed width — never varint, so a
// mapped reader needs zero decoding):
//
//   header (32 bytes):
//     magic "GVSN" | endian u32 (0x01020304) | format version u32 |
//     section count u32 | fingerprint u64 | table crc u32 | header crc u32
//   section table (32 bytes per section):
//     section id u32 | reserved u32 (0) | file offset u64 | length u64 |
//     payload crc u32 | reserved u32 (0)
//   section payloads, each starting at a 64-byte-aligned file offset,
//   zero-padded between sections.
//
// Relocatable: every pointer in the file is a file offset, never an
// address, so the bytes are valid at whatever address mmap chooses.
// Checksummed: header and table CRCs are always verified on open (O(1));
// per-section payload CRCs are stored always but verified only under
// kFull validation — verifying them is O(file size) and would defeat the
// O(1) mapped-open guarantee, so the fast path trusts the kernel's page
// cache and the atomic-rename publish protocol instead.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/mmap_file.h"
#include "util/status.h"

namespace govdns::ckpt {

inline constexpr uint32_t kSnapshotEndianMarker = 0x01020304u;
inline constexpr size_t kSnapshotHeaderSize = 32;
inline constexpr size_t kSnapshotTableEntrySize = 32;
inline constexpr size_t kSnapshotSectionAlign = 64;

// Accumulates sections in memory, then publishes the file atomically
// (tmp + fsync + rename + dir fsync, shared with the GVCK journal).
class SnapshotFileWriter {
 public:
  // `version` is the caller's payload format version (bumped when section
  // contents change shape); `fingerprint` is the world/config identity a
  // reader must present to open the file.
  SnapshotFileWriter(uint32_t version, uint64_t fingerprint)
      : version_(version), fingerprint_(fingerprint) {}

  // Section ids must be unique per file; order of addition is preserved.
  void AddSection(uint32_t id, std::string bytes);

  // Assembles header + table + aligned payloads and writes `path`
  // durably/atomically. `dir` is the directory containing `path`.
  util::Status WriteTo(const std::string& dir, const std::string& path) const;

  // The assembled file image (for tests and in-memory round-trips).
  std::string Assemble() const;

 private:
  uint32_t version_;
  uint64_t fingerprint_;
  std::vector<std::pair<uint32_t, std::string>> sections_;
};

enum class SnapshotValidation {
  kFast,  // header + section table CRCs, bounds, alignment — O(1)
  kFull,  // kFast plus every section payload CRC — O(file size)
};

// Read-only view over an opened snapshot file. Owns the mapping; section
// views point into it, so the view must outlive every string_view it hands
// out.
class SnapshotFileView {
 public:
  // Validates the container against the expected identity. Every failure is
  // a clean kDataLoss (kNotFound for a missing file), never UB: bounds,
  // alignment, duplicate ids, and CRCs are all checked before any section
  // is served.
  static util::StatusOr<SnapshotFileView> Open(const std::string& path,
                                               uint32_t expected_version,
                                               uint64_t expected_fingerprint,
                                               SnapshotValidation validation);

  // As Open but never mmaps (always the read fallback) — for benchmarks and
  // filesystems without mmap.
  static util::StatusOr<SnapshotFileView> OpenReadOnly(
      const std::string& path, uint32_t expected_version,
      uint64_t expected_fingerprint, SnapshotValidation validation);

  // The payload bytes of section `id`; kNotFound if the file has no such
  // section. The returned view is 64-byte aligned relative to the file
  // start (and to the mapping, since mmap returns page-aligned addresses).
  util::StatusOr<std::string_view> Section(uint32_t id) const;

  size_t section_count() const { return sections_.size(); }
  // True when served by an actual mmap rather than the read fallback.
  bool mapped() const { return file_.mapped(); }
  uint64_t fingerprint() const { return fingerprint_; }

 private:
  static util::StatusOr<SnapshotFileView> Validate(
      util::MappedFile file, const std::string& path, uint32_t expected_version,
      uint64_t expected_fingerprint, SnapshotValidation validation);

  struct SectionRef {
    uint32_t id = 0;
    uint64_t offset = 0;
    uint64_t length = 0;
  };

  util::MappedFile file_;
  uint64_t fingerprint_ = 0;
  std::vector<SectionRef> sections_;
};

}  // namespace govdns::ckpt
