// Byte-level serialization for checkpoint payloads.
//
// Fixed-width little-endian primitives plus length-prefixed strings: the
// format must be byte-identical across runs and platforms because frame
// CRCs — and therefore the journal chain — are computed over these bytes.
// The Reader is fully bounds-checked and latches the first failure instead
// of throwing or aborting: a truncated or corrupted payload must always
// decode to a clean "reject this frame" decision, never to UB (the chaos
// model's rule for wire parsers, applied to our own on-disk format).
//
// Sizes and counts travel as LEB128 varints (Size/Count), never as raw
// U32s: an earlier revision encoded every length as `U32(static_cast<
// uint32_t>(n))`, which silently truncated once a logical length crossed
// 4Gi — at the 10–100x worldgen scales that is a data-corruption bug, not a
// perf bug. The varint path cannot truncate by construction; the one
// remaining way to ask for a 32-bit field (U32Checked) latches a structured
// kInvalidArgument status on the Writer instead of wrapping.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "util/status.h"

namespace govdns::ckpt {

class Writer {
 public:
  void U8(uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void U32(uint32_t v);
  void U64(uint64_t v);
  void I32(int32_t v) { U32(static_cast<uint32_t>(v)); }
  void I64(int64_t v) { U64(static_cast<uint64_t>(v)); }
  void Bool(bool v) { U8(v ? 1 : 0); }
  // IEEE-754 bit pattern; used only for diagnostic fields (wall times).
  void F64(double v);
  // LEB128 varint, minimal encoding; the codec for every size and count.
  // Cannot overflow or truncate for any uint64_t (or size_t) input.
  void Size(uint64_t v);
  // Width-checked 32-bit write: refuses (latching a structured status,
  // writing nothing) when v does not fit — the loud replacement for the old
  // silent `U32(static_cast<uint32_t>(v))` truncation. Returns ok().
  bool U32Checked(uint64_t v);
  // Varint length prefix followed by the raw bytes.
  void Str(std::string_view s);
  void Raw(std::string_view bytes) { out_.append(bytes); }

  // False once any checked write failed; the buffer must not be committed.
  bool ok() const { return status_.ok(); }
  const util::Status& status() const { return status_; }

  size_t size() const { return out_.size(); }
  std::string Take() { return std::move(out_); }

 private:
  std::string out_;
  util::Status status_;
};

class Reader {
 public:
  explicit Reader(std::string_view buf) : buf_(buf) {}

  // Each getter returns false (leaving *v untouched) once the buffer is
  // exhausted or a prior read failed; ok() stays false from then on.
  bool U8(uint8_t* v);
  bool U32(uint32_t* v);
  bool U64(uint64_t* v);
  bool I32(int32_t* v);
  bool I64(int64_t* v);
  bool Bool(bool* v);
  bool F64(double* v);
  // Minimal-form LEB128 varint; rejects non-minimal or >64-bit encodings
  // (corruption must not have two spellings of the same value).
  bool Size(uint64_t* v);
  // Size() plus a resize-bomb guard: an element count must be coverable by
  // the bytes that remain (>= 1 byte per element), so a corrupted count can
  // never drive a multi-gigabyte allocation before the bounds checks hit.
  bool Count(size_t* v);
  bool Str(std::string* s);

  bool ok() const { return ok_; }
  // True when every byte was consumed cleanly — trailing garbage is as much
  // a corruption signal as a short read.
  bool AtEnd() const { return ok_ && pos_ == buf_.size(); }
  size_t remaining() const { return buf_.size() - pos_; }

 private:
  // Claims n bytes or latches failure.
  const char* Take(size_t n);

  std::string_view buf_;
  size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace govdns::ckpt
