// Kill-point fault injection for the checkpoint journal.
//
// A CkptFaultPlan deterministically kills the process (or the current call
// stack) at the Nth journal write, optionally damaging the in-flight file
// first. The resume tests drive a study through *every* write index under
// every mode and assert the resumed report is byte-identical to an
// uninterrupted run — the checkpoint analogue of the simnet chaos model.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

namespace govdns::ckpt {

// Process exit status used when a fault plan fires with exit_process set;
// distinct from ordinary failure codes so harnesses can tell a planned
// kill from a genuine crash.
inline constexpr int kKillExitCode = 42;

// Where, relative to the write-to-temp / fsync / rename protocol, the kill
// lands. Every mode must leave the journal in a state resume recovers from.
enum class KillMode : uint8_t {
  kBeforeWrite,  // die before a single byte reaches disk
  kAfterTemp,    // temp file written, atomic rename never happened
  kTruncate,     // commit completed, then the file is cut to half its size
  kCorrupt,      // commit completed, then one payload byte is flipped
  kAfterCommit,  // die immediately after a fully durable commit
};

std::string_view KillModeName(KillMode mode);

struct CkptFaultPlan {
  // 1-based index of the journal write (Journal::Commit call) to kill at;
  // 0 disables the plan.
  uint64_t kill_at_write = 0;
  KillMode mode = KillMode::kAfterCommit;
  // true: _exit(kKillExitCode) like a real crash — the CLI harness mode.
  // false: throw KillPointReached so in-process tests catch and resume.
  bool exit_process = false;
  // 1-based index of the journal write whose temp-file fsync reports EIO
  // (0 disables). Unlike a kill point the process survives: the commit must
  // be *rejected* — temp discarded, error status returned, and the prior
  // generation of the frame left untouched. Post-failure fsync semantics
  // give no second chance (the dirty pages may already be gone), so
  // retrying the same fsync is not a recovery strategy.
  uint64_t fail_fsync_at_write = 0;
};

// Thrown when a fault plan with exit_process == false fires.
class KillPointReached : public std::runtime_error {
 public:
  KillPointReached(uint64_t write_index, KillMode mode,
                   const std::string& file);
  uint64_t write_index() const { return write_index_; }
  KillMode mode() const { return mode_; }

 private:
  uint64_t write_index_;
  KillMode mode_;
};

}  // namespace govdns::ckpt
