// Escalating SIGINT/SIGTERM handling for checkpointed runs (DESIGN.md §6g).
//
// The first signal raises a cooperative interrupt flag: the in-flight batch
// finishes, its checkpoint commits, and the pipeline unwinds with a
// structured error ("flush then exit"). The second signal — the operator
// pressing Ctrl-C again because the flush itself is wedged — must not be
// swallowed: the handler _exit()s immediately, async-signal-safely, without
// flushing anything further. That beats SA_RESETHAND (the previous scheme),
// where the second signal fell back to the default disposition and killed
// the process with an unhandled-signal status instead of a deliberate,
// testable exit code.
#pragma once

#include <atomic>

namespace govdns::ckpt {

// Installs the escalating handler on SIGINT and SIGTERM. `flag` (not owned;
// must outlive the handlers, i.e. effectively the process) is set on the
// first signal; the second signal _exit(exit_code)s. Re-installing replaces
// the previous registration and resets the escalation count.
void InstallEscalatingHandlers(std::atomic<bool>* flag, int exit_code);

// Signals received so far by the escalating handler (0 before any). Exposed
// for tests; reset by InstallEscalatingHandlers.
int EscalationCount();

}  // namespace govdns::ckpt
