// Crash-safe checkpoint journal (DESIGN.md §6f).
//
// A journal is a directory of framed snapshot files. Every frame carries a
// fixed 32-byte header:
//
//   magic "GVCK" | version u32 | fingerprint u64 | parent_crc u32 |
//   payload_crc u32 | payload_size u64
//
// followed by the payload bytes. Commits are durable and atomic: the frame
// is written to `<name>.tmp`, fsync'd, renamed to `<name>.ck`, and the
// directory fsync'd — a reader can only ever observe the old file, the new
// file, or (after a crash) a leftover temp it ignores. Loads re-validate
// everything: magic, version, fingerprint (the study's config/world
// identity), payload size, payload CRC, and the parent CRC linking this
// frame to the snapshot it was derived from. Any mismatch is a clean,
// counted rejection — the caller recomputes from the prior phase — never a
// crash and never silently reused stale data.
//
// Chain CRCs are content CRCs, deliberately: a phase that is re-run after
// its snapshot was corrupted reproduces the same bytes (the pipeline is
// deterministic), hence the same CRC, so later frames on disk remain valid
// against the recomputed parent and resume loses only the damaged phase.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "ckpt/fault.h"
#include "util/status.h"

namespace govdns::ckpt {

// CRC-32 (IEEE 802.3, reflected, table-driven). Crc32("123456789") ==
// 0xCBF43926.
uint32_t Crc32(std::string_view bytes);

// Mixes two 64-bit identities into one (order-sensitive; SplitMix64-based).
// Used to derive the journal fingerprint from world + study identities.
uint64_t MixFingerprint(uint64_t a, uint64_t b);

// Durably and atomically publishes `bytes` at `path`: writes `path`.tmp,
// fsyncs it, renames over `path`, and fsyncs the containing directory. The
// journal's frame commit and the snapshot-file writer share this path so a
// crash can only ever leave the old file, the new file, or an ignorable
// temp. `dir` must be the directory containing `path`.
util::Status AtomicWriteFileDurable(const std::string& dir,
                                    const std::string& path,
                                    std::string_view bytes);

// Version 2: payload sizes/counts are LEB128 varints (width-checked, never
// truncated); version-1 frames encoded them as raw U32s and are rejected.
inline constexpr uint32_t kFrameVersion = 2;
inline constexpr size_t kFrameHeaderSize = 32;

struct JournalStats {
  uint64_t commits = 0;        // Commit calls (write points; includes faulted)
  uint64_t bytes_written = 0;  // frame bytes that reached the final file
  uint64_t fsync_rejected = 0;  // commits aborted by an (injected) fsync EIO
  uint64_t loads_ok = 0;
  // Per-cause rejection counters: the "diagnostic metric" behind every
  // restart-from-scratch / restart-from-prior-phase decision.
  uint64_t rejected_missing = 0;
  uint64_t rejected_truncated = 0;  // short file or payload-size mismatch
  uint64_t rejected_magic = 0;
  uint64_t rejected_version = 0;
  uint64_t rejected_fingerprint = 0;
  uint64_t rejected_crc = 0;
  uint64_t rejected_chain = 0;  // parent CRC does not match expected

  uint64_t Rejections() const {
    return rejected_missing + rejected_truncated + rejected_magic +
           rejected_version + rejected_fingerprint + rejected_crc +
           rejected_chain;
  }
};

class Journal {
 public:
  // `dir` is created on first use. `fingerprint` stamps every frame and is
  // validated on every load; see set_fingerprint.
  Journal(std::string dir, uint64_t fingerprint);

  // Replaces the fingerprint before any IO has happened (the study mixes
  // its own config identity in after construction).
  void set_fingerprint(uint64_t fingerprint) { fingerprint_ = fingerprint; }
  uint64_t fingerprint() const { return fingerprint_; }

  void set_fault_plan(const CkptFaultPlan& plan) { plan_ = plan; }

  // Durably commits `payload` under `name` (stored as <name>.ck), chained
  // to `parent_crc`. Returns the payload CRC for chaining the next frame.
  // This is the journal's only write point — the fault plan counts these
  // calls and fires here.
  util::StatusOr<uint32_t> Commit(const std::string& name,
                                  std::string_view payload,
                                  uint32_t parent_crc);

  struct LoadedFrame {
    std::string payload;
    uint32_t crc = 0;
  };
  // Loads and fully validates <name>.ck against this journal's fingerprint
  // and `parent_crc`. Every failure mode returns a status (kNotFound for a
  // missing file, kDataLoss otherwise) and bumps exactly one rejection
  // counter.
  util::StatusOr<LoadedFrame> Load(const std::string& name,
                                   uint32_t parent_crc);

  bool Exists(const std::string& name) const;

  // Removes every frame and temp file in the directory; fresh-run
  // (non-resume) semantics.
  void WipeAll();

  const std::string& dir() const { return dir_; }
  const JournalStats& stats() const { return stats_; }

 private:
  std::string FramePath(const std::string& name) const;
  util::Status EnsureDir();
  // Fires the fault plan: _exit or throw, per plan.exit_process.
  [[noreturn]] void Kill(uint64_t write_index, const std::string& name);

  std::string dir_;
  uint64_t fingerprint_;
  CkptFaultPlan plan_;
  bool dir_ready_ = false;
  JournalStats stats_;
};

}  // namespace govdns::ckpt
