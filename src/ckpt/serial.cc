#include "ckpt/serial.h"

#include <cstring>
#include <limits>

namespace govdns::ckpt {

void Writer::U32(uint32_t v) {
  for (int i = 0; i < 4; ++i) out_.push_back(static_cast<char>(v >> (8 * i)));
}

void Writer::U64(uint64_t v) {
  for (int i = 0; i < 8; ++i) out_.push_back(static_cast<char>(v >> (8 * i)));
}

void Writer::F64(double v) {
  uint64_t bits = 0;
  static_assert(sizeof bits == sizeof v);
  std::memcpy(&bits, &v, sizeof bits);
  U64(bits);
}

void Writer::Size(uint64_t v) {
  while (v >= 0x80) {
    out_.push_back(static_cast<char>((v & 0x7F) | 0x80));
    v >>= 7;
  }
  out_.push_back(static_cast<char>(v));
}

bool Writer::U32Checked(uint64_t v) {
  if (v > std::numeric_limits<uint32_t>::max()) {
    if (status_.ok()) {
      status_ = util::InvalidArgumentError(
          "u32 overflow: " + std::to_string(v) + " does not fit in 32 bits");
    }
    return false;
  }
  U32(static_cast<uint32_t>(v));
  return ok();
}

void Writer::Str(std::string_view s) {
  Size(s.size());
  out_.append(s);
}

const char* Reader::Take(size_t n) {
  if (!ok_ || n > buf_.size() - pos_) {
    ok_ = false;
    return nullptr;
  }
  const char* p = buf_.data() + pos_;
  pos_ += n;
  return p;
}

bool Reader::U8(uint8_t* v) {
  const char* p = Take(1);
  if (p == nullptr) return false;
  *v = static_cast<uint8_t>(*p);
  return true;
}

bool Reader::U32(uint32_t* v) {
  const char* p = Take(4);
  if (p == nullptr) return false;
  uint32_t out = 0;
  for (int i = 0; i < 4; ++i) {
    out |= static_cast<uint32_t>(static_cast<uint8_t>(p[i])) << (8 * i);
  }
  *v = out;
  return true;
}

bool Reader::U64(uint64_t* v) {
  const char* p = Take(8);
  if (p == nullptr) return false;
  uint64_t out = 0;
  for (int i = 0; i < 8; ++i) {
    out |= static_cast<uint64_t>(static_cast<uint8_t>(p[i])) << (8 * i);
  }
  *v = out;
  return true;
}

bool Reader::I32(int32_t* v) {
  uint32_t u = 0;
  if (!U32(&u)) return false;
  *v = static_cast<int32_t>(u);
  return true;
}

bool Reader::I64(int64_t* v) {
  uint64_t u = 0;
  if (!U64(&u)) return false;
  *v = static_cast<int64_t>(u);
  return true;
}

bool Reader::Bool(bool* v) {
  uint8_t u = 0;
  if (!U8(&u)) return false;
  // Any non-{0,1} byte is corruption, not a creative truthy value.
  if (u > 1) {
    ok_ = false;
    return false;
  }
  *v = u != 0;
  return true;
}

bool Reader::F64(double* v) {
  uint64_t bits = 0;
  if (!U64(&bits)) return false;
  std::memcpy(v, &bits, sizeof bits);
  return true;
}

bool Reader::Size(uint64_t* v) {
  uint64_t out = 0;
  uint8_t byte = 0;
  for (int shift = 0; shift < 64; shift += 7) {
    if (!U8(&byte)) return false;
    const uint64_t low = byte & 0x7F;
    // The 10th byte may only carry the final bit of a 64-bit value.
    if (shift == 63 && low > 1) {
      ok_ = false;
      return false;
    }
    out |= low << shift;
    if ((byte & 0x80) == 0) {
      // Minimal form only: a multi-byte encoding must not end in a zero
      // group (two spellings of one value would defeat corruption checks).
      if (shift > 0 && low == 0) {
        ok_ = false;
        return false;
      }
      *v = out;
      return true;
    }
  }
  ok_ = false;  // continuation bit past 64 bits
  return false;
}

bool Reader::Count(size_t* v) {
  uint64_t n = 0;
  if (!Size(&n)) return false;
  if (n > remaining()) {
    ok_ = false;
    return false;
  }
  *v = static_cast<size_t>(n);
  return true;
}

bool Reader::Str(std::string* s) {
  size_t len = 0;
  if (!Count(&len)) return false;
  const char* p = Take(len);
  if (p == nullptr) return false;
  s->assign(p, len);
  return true;
}

}  // namespace govdns::ckpt
