#include "ckpt/serial.h"

#include <cstring>

namespace govdns::ckpt {

void Writer::U32(uint32_t v) {
  for (int i = 0; i < 4; ++i) out_.push_back(static_cast<char>(v >> (8 * i)));
}

void Writer::U64(uint64_t v) {
  for (int i = 0; i < 8; ++i) out_.push_back(static_cast<char>(v >> (8 * i)));
}

void Writer::F64(double v) {
  uint64_t bits = 0;
  static_assert(sizeof bits == sizeof v);
  std::memcpy(&bits, &v, sizeof bits);
  U64(bits);
}

void Writer::Str(std::string_view s) {
  U32(static_cast<uint32_t>(s.size()));
  out_.append(s);
}

const char* Reader::Take(size_t n) {
  if (!ok_ || n > buf_.size() - pos_) {
    ok_ = false;
    return nullptr;
  }
  const char* p = buf_.data() + pos_;
  pos_ += n;
  return p;
}

bool Reader::U8(uint8_t* v) {
  const char* p = Take(1);
  if (p == nullptr) return false;
  *v = static_cast<uint8_t>(*p);
  return true;
}

bool Reader::U32(uint32_t* v) {
  const char* p = Take(4);
  if (p == nullptr) return false;
  uint32_t out = 0;
  for (int i = 0; i < 4; ++i) {
    out |= static_cast<uint32_t>(static_cast<uint8_t>(p[i])) << (8 * i);
  }
  *v = out;
  return true;
}

bool Reader::U64(uint64_t* v) {
  const char* p = Take(8);
  if (p == nullptr) return false;
  uint64_t out = 0;
  for (int i = 0; i < 8; ++i) {
    out |= static_cast<uint64_t>(static_cast<uint8_t>(p[i])) << (8 * i);
  }
  *v = out;
  return true;
}

bool Reader::I32(int32_t* v) {
  uint32_t u = 0;
  if (!U32(&u)) return false;
  *v = static_cast<int32_t>(u);
  return true;
}

bool Reader::I64(int64_t* v) {
  uint64_t u = 0;
  if (!U64(&u)) return false;
  *v = static_cast<int64_t>(u);
  return true;
}

bool Reader::Bool(bool* v) {
  uint8_t u = 0;
  if (!U8(&u)) return false;
  // Any non-{0,1} byte is corruption, not a creative truthy value.
  if (u > 1) {
    ok_ = false;
    return false;
  }
  *v = u != 0;
  return true;
}

bool Reader::F64(double* v) {
  uint64_t bits = 0;
  if (!U64(&bits)) return false;
  std::memcpy(v, &bits, sizeof bits);
  return true;
}

bool Reader::Str(std::string* s) {
  uint32_t len = 0;
  if (!U32(&len)) return false;
  const char* p = Take(len);
  if (p == nullptr) return false;
  s->assign(p, len);
  return true;
}

}  // namespace govdns::ckpt
