#include "ckpt/snapshot_file.h"

#include <cstring>

#include "ckpt/journal.h"
#include "ckpt/serial.h"

namespace govdns::ckpt {

namespace {

constexpr char kMagic[4] = {'G', 'V', 'S', 'N'};

uint64_t AlignUp(uint64_t v, uint64_t align) {
  return (v + align - 1) / align * align;
}

util::Status Corrupt(const std::string& path, const std::string& what) {
  return util::DataLossError("snapshot file " + path + ": " + what);
}

}  // namespace

void SnapshotFileWriter::AddSection(uint32_t id, std::string bytes) {
  for (const auto& [existing, _] : sections_) GOVDNS_CHECK(existing != id);
  sections_.emplace_back(id, std::move(bytes));
}

std::string SnapshotFileWriter::Assemble() const {
  const uint64_t table_size = sections_.size() * kSnapshotTableEntrySize;
  uint64_t offset = AlignUp(kSnapshotHeaderSize + table_size,
                            kSnapshotSectionAlign);

  Writer table;
  std::vector<uint64_t> offsets;
  offsets.reserve(sections_.size());
  for (const auto& [id, bytes] : sections_) {
    offsets.push_back(offset);
    table.U32(id);
    table.U32(0);
    table.U64(offset);
    table.U64(bytes.size());
    table.U32(Crc32(bytes));
    table.U32(0);
    offset = AlignUp(offset + bytes.size(), kSnapshotSectionAlign);
  }
  const std::string table_bytes = std::move(table).Take();
  GOVDNS_CHECK(table_bytes.size() == table_size);

  Writer header;
  header.Raw(std::string_view(kMagic, sizeof kMagic));
  header.U32(kSnapshotEndianMarker);
  header.U32(version_);
  header.U32(static_cast<uint32_t>(sections_.size()));
  header.U64(fingerprint_);
  header.U32(Crc32(table_bytes));
  std::string header_bytes = std::move(header).Take();
  // The header CRC covers everything before it.
  Writer crc;
  crc.U32(Crc32(header_bytes));
  header_bytes += std::move(crc).Take();
  GOVDNS_CHECK(header_bytes.size() == kSnapshotHeaderSize);

  std::string out;
  out.reserve(offset);
  out += header_bytes;
  out += table_bytes;
  for (size_t i = 0; i < sections_.size(); ++i) {
    out.resize(offsets[i], '\0');  // zero pad up to the aligned offset
    out += sections_[i].second;
  }
  return out;
}

util::Status SnapshotFileWriter::WriteTo(const std::string& dir,
                                         const std::string& path) const {
  return AtomicWriteFileDurable(dir, path, Assemble());
}

util::StatusOr<SnapshotFileView> SnapshotFileView::Open(
    const std::string& path, uint32_t expected_version,
    uint64_t expected_fingerprint, SnapshotValidation validation) {
  auto file = util::MappedFile::Open(path);
  if (!file.ok()) return file.status();
  return Validate(*std::move(file), path, expected_version,
                  expected_fingerprint, validation);
}

util::StatusOr<SnapshotFileView> SnapshotFileView::OpenReadOnly(
    const std::string& path, uint32_t expected_version,
    uint64_t expected_fingerprint, SnapshotValidation validation) {
  auto file = util::MappedFile::OpenReadOnly(path);
  if (!file.ok()) return file.status();
  return Validate(*std::move(file), path, expected_version,
                  expected_fingerprint, validation);
}

util::StatusOr<SnapshotFileView> SnapshotFileView::Validate(
    util::MappedFile file, const std::string& path, uint32_t expected_version,
    uint64_t expected_fingerprint, SnapshotValidation validation) {
  const std::string_view bytes = file.view();
  if (bytes.size() < kSnapshotHeaderSize) {
    return Corrupt(path, "truncated header");
  }
  if (std::memcmp(bytes.data(), kMagic, sizeof kMagic) != 0) {
    return Corrupt(path, "bad magic");
  }
  Reader r(bytes.substr(sizeof kMagic, kSnapshotHeaderSize - sizeof kMagic));
  uint32_t endian = 0, version = 0, section_count = 0;
  uint32_t table_crc = 0, header_crc = 0;
  uint64_t fingerprint = 0;
  GOVDNS_CHECK(r.U32(&endian) && r.U32(&version) && r.U32(&section_count) &&
               r.U64(&fingerprint) && r.U32(&table_crc) && r.U32(&header_crc));
  if (Crc32(bytes.substr(0, kSnapshotHeaderSize - 4)) != header_crc) {
    return Corrupt(path, "header CRC mismatch");
  }
  if (endian != kSnapshotEndianMarker) {
    return Corrupt(path, "endianness mismatch (file written on a "
                         "different-endian host)");
  }
  if (version != expected_version) {
    return Corrupt(path, "format version " + std::to_string(version) +
                             " != expected " + std::to_string(expected_version));
  }
  if (fingerprint != expected_fingerprint) {
    return Corrupt(path, "world/config fingerprint mismatch");
  }
  const uint64_t table_size =
      static_cast<uint64_t>(section_count) * kSnapshotTableEntrySize;
  if (kSnapshotHeaderSize + table_size > bytes.size()) {
    return Corrupt(path, "truncated section table");
  }
  const std::string_view table = bytes.substr(kSnapshotHeaderSize, table_size);
  if (Crc32(table) != table_crc) {
    return Corrupt(path, "section table CRC mismatch");
  }

  SnapshotFileView view;
  view.fingerprint_ = fingerprint;
  view.sections_.reserve(section_count);
  Reader tr(table);
  for (uint32_t i = 0; i < section_count; ++i) {
    SectionRef ref;
    uint32_t reserved0 = 0, payload_crc = 0, reserved1 = 0;
    GOVDNS_CHECK(tr.U32(&ref.id) && tr.U32(&reserved0) && tr.U64(&ref.offset) &&
                 tr.U64(&ref.length) && tr.U32(&payload_crc) &&
                 tr.U32(&reserved1));
    if (ref.offset % kSnapshotSectionAlign != 0) {
      return Corrupt(path, "misaligned section " + std::to_string(ref.id));
    }
    if (ref.offset > bytes.size() || ref.length > bytes.size() - ref.offset) {
      return Corrupt(path, "section " + std::to_string(ref.id) +
                               " out of bounds");
    }
    for (const SectionRef& prior : view.sections_) {
      if (prior.id == ref.id) {
        return Corrupt(path, "duplicate section id " + std::to_string(ref.id));
      }
    }
    if (validation == SnapshotValidation::kFull &&
        Crc32(bytes.substr(ref.offset, ref.length)) != payload_crc) {
      return Corrupt(path, "section " + std::to_string(ref.id) +
                               " payload CRC mismatch");
    }
    view.sections_.push_back(ref);
  }
  view.file_ = std::move(file);
  return view;
}

util::StatusOr<std::string_view> SnapshotFileView::Section(uint32_t id) const {
  for (const SectionRef& ref : sections_) {
    if (ref.id == id) {
      return file_.view().substr(ref.offset, ref.length);
    }
  }
  return util::NotFoundError("snapshot has no section " + std::to_string(id));
}

}  // namespace govdns::ckpt
