// DNS messages (RFC 1035 §4): header, question, and the four sections.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dns/name.h"
#include "dns/rr.h"
#include "util/status.h"

namespace govdns::dns {

enum class Opcode : uint8_t {
  kQuery = 0,
};

enum class Rcode : uint8_t {
  kNoError = 0,
  kFormErr = 1,
  kServFail = 2,
  kNxDomain = 3,
  kNotImp = 4,
  kRefused = 5,
};

std::string_view RcodeName(Rcode rcode);

struct Header {
  uint16_t id = 0;
  bool qr = false;  // response flag
  Opcode opcode = Opcode::kQuery;
  bool aa = false;  // authoritative answer
  bool tc = false;  // truncated
  bool rd = false;  // recursion desired
  bool ra = false;  // recursion available
  Rcode rcode = Rcode::kNoError;

  friend bool operator==(const Header&, const Header&) = default;
};

struct Question {
  Name name;
  RRType type = RRType::kA;
  RRClass klass = RRClass::kIN;

  friend bool operator==(const Question&, const Question&) = default;
};

struct Message {
  Header header;
  std::vector<Question> questions;
  std::vector<ResourceRecord> answers;
  std::vector<ResourceRecord> authority;
  std::vector<ResourceRecord> additional;

  // Serializes to RFC 1035 wire format with name compression.
  std::vector<uint8_t> Encode() const;

  static util::StatusOr<Message> Decode(const std::vector<uint8_t>& wire);
  static util::StatusOr<Message> Decode(const uint8_t* data, size_t len);

  // True when the response is a referral: not authoritative for the
  // question, no answers, but NS records in the authority section.
  bool IsReferral() const;

  std::string ToString() const;

  friend bool operator==(const Message&, const Message&) = default;
};

// Builds a standard query for (name, type).
Message MakeQuery(uint16_t id, const Name& name, RRType type);

// Builds a response skeleton echoing the query's id and question.
Message MakeResponse(const Message& query, Rcode rcode);

}  // namespace govdns::dns
