// Transport abstraction between the measurement client and the network.
//
// The core library is written against this interface; the simulator
// (simnet::SimNetwork) is one implementation, and a socket-based transport
// could be another without touching any analysis code.
#pragma once

#include <cstdint>
#include <vector>

#include "geo/ipv4.h"
#include "util/status.h"

namespace govdns::dns {

class QueryTransport {
 public:
  virtual ~QueryTransport() = default;

  // Sends `wire_query` to the server at `server`, returning the raw response
  // bytes. Failure statuses follow the taxonomy in util::Status:
  //   kTimeout     - no response within the timeout (silent or lossy server)
  //   kUnavailable - no endpoint at that address (e.g. ICMP unreachable)
  virtual util::StatusOr<std::vector<uint8_t>> Exchange(
      geo::IPv4 server, const std::vector<uint8_t>& wire_query) = 0;

  // Stream-semantics exchange (DNS over TCP, RFC 1035 §4.2.2): used to
  // re-ask a query whose UDP reply came back truncated (TC=1). The length
  // framing is the transport's concern — `wire_query` and the returned
  // reply are bare DNS messages. Transports without a stream path keep the
  // default, which reports kFailedPrecondition so callers can fall back to
  // treating truncation as damage.
  virtual util::StatusOr<std::vector<uint8_t>> ExchangeStream(
      geo::IPv4 server, const std::vector<uint8_t>& wire_query) {
    (void)server;
    (void)wire_query;
    return util::FailedPreconditionError("transport has no stream path");
  }

  // Logical transport time. Retry backoff and health-tracking cooldowns are
  // charged against this clock so they stay deterministic: the simulator
  // maps it onto its SimClock, while the default implementation keeps a
  // private counter advanced only by Delay().
  virtual uint64_t now_ms() const { return fallback_now_ms_; }

  // Charges a backoff delay to the transport clock. Nothing sleeps: real
  // transports may override to pace actual traffic, the simulator advances
  // its virtual clock.
  virtual void Delay(uint32_t ms) { fallback_now_ms_ += ms; }

  // Scoped "chaos context" for deterministic parallel use. While a context
  // is active on the calling thread, a simulating transport derives all
  // per-exchange randomness, its logical clock, and per-endpoint chaos
  // state from `tag` instead of from process-global counters, so the same
  // unit of work produces the same outcomes regardless of how work is
  // interleaved across threads. Contexts nest (strict LIFO per thread).
  // Transports that talk to the real network ignore them.
  virtual void PushChaosContext(uint64_t tag) { (void)tag; }
  virtual void PopChaosContext() {}

 private:
  uint64_t fallback_now_ms_ = 0;
};

}  // namespace govdns::dns
