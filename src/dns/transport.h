// Transport abstraction between the measurement client and the network.
//
// The core library is written against this interface; the simulator
// (simnet::SimNetwork) is one implementation, and a socket-based transport
// could be another without touching any analysis code.
#pragma once

#include <cstdint>
#include <vector>

#include "geo/ipv4.h"
#include "util/status.h"

namespace govdns::dns {

class QueryTransport {
 public:
  virtual ~QueryTransport() = default;

  // Sends `wire_query` to the server at `server`, returning the raw response
  // bytes. Failure statuses follow the taxonomy in util::Status:
  //   kTimeout     - no response within the timeout (silent or lossy server)
  //   kUnavailable - no endpoint at that address (e.g. ICMP unreachable)
  virtual util::StatusOr<std::vector<uint8_t>> Exchange(
      geo::IPv4 server, const std::vector<uint8_t>& wire_query) = 0;
};

}  // namespace govdns::dns
