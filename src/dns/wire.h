// RFC 1035 wire-format primitives: bounded reader, writer with name
// compression, and rdata codecs.
//
// The simulated network carries real wire-format packets so that the
// measurement client exercises genuine encode/parse paths, including
// compression pointers and truncation handling.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "dns/name.h"
#include "dns/rr.h"
#include "util/status.h"

namespace govdns::dns {

class WireWriter {
 public:
  void WriteU8(uint8_t v);
  void WriteU16(uint16_t v);
  void WriteU32(uint32_t v);
  void WriteBytes(const uint8_t* data, size_t len);

  // Writes a domain name, using a compression pointer to an earlier
  // occurrence of the longest possible suffix (RFC 1035 §4.1.4).
  void WriteName(const Name& name);

  // Writes a name without compression (used inside rdata where some
  // implementations forbid pointers; we allow compression only for NS/CNAME
  // /PTR/SOA/MX rdata names as RFC 1035 does).
  void WriteNameUncompressed(const Name& name);

  // Encodes a full resource record, including the RDLENGTH backpatch.
  void WriteRecord(const ResourceRecord& rr);

  size_t size() const { return buffer_.size(); }
  const std::vector<uint8_t>& buffer() const { return buffer_; }
  std::vector<uint8_t> TakeBuffer() { return std::move(buffer_); }

  // Overwrites 2 bytes at `offset` (for RDLENGTH / counts backpatching).
  void PatchU16(size_t offset, uint16_t v);

 private:
  std::vector<uint8_t> buffer_;
  // Maps an already-emitted name suffix (presentation form) to its offset.
  std::map<std::string, uint16_t> compression_offsets_;
};

class WireReader {
 public:
  WireReader(const uint8_t* data, size_t len) : data_(data), len_(len) {}
  explicit WireReader(const std::vector<uint8_t>& buf)
      : WireReader(buf.data(), buf.size()) {}

  util::StatusOr<uint8_t> ReadU8();
  util::StatusOr<uint16_t> ReadU16();
  util::StatusOr<uint32_t> ReadU32();
  util::Status ReadBytes(uint8_t* out, size_t len);

  // Reads a (possibly compressed) domain name. Rejects pointer loops and
  // forward pointers.
  util::StatusOr<Name> ReadName();

  // Decodes a full resource record starting at the current position.
  util::StatusOr<ResourceRecord> ReadRecord();

  size_t position() const { return pos_; }
  size_t remaining() const { return len_ - pos_; }
  bool AtEnd() const { return pos_ == len_; }

 private:
  util::StatusOr<Name> ReadNameAt(size_t& pos, int depth);

  const uint8_t* data_;
  size_t len_;
  size_t pos_ = 0;
};

// Decodes typed rdata from its wire form. `reader` must be positioned at the
// start of the rdata; `rdlength` bounds it. Name-bearing rdata may contain
// compression pointers into the whole message.
util::StatusOr<Rdata> ReadRdata(WireReader& reader, RRType type,
                                uint16_t rdlength);

// DNS-over-TCP framing (RFC 1035 §4.2.2): each message on a stream is
// prefixed by a two-byte big-endian length.

// Returns `message` with the length prefix prepended. CHECK-fails on
// messages over 65535 bytes — nothing this pipeline builds comes close.
std::vector<uint8_t> FrameTcp(const std::vector<uint8_t>& message);

// Extracts the first complete framed message from a stream buffer. Returns
// nullopt when `len` does not yet cover the prefix plus the full message;
// on success `*consumed` is the total bytes eaten (2 + message length).
std::optional<std::vector<uint8_t>> UnframeTcp(const uint8_t* data, size_t len,
                                               size_t* consumed);

}  // namespace govdns::dns
