#include "dns/name.h"

#include <algorithm>
#include <ostream>

#include "util/rng.h"
#include "util/strings.h"

namespace govdns::dns {

bool IsValidLabel(std::string_view label) {
  if (label.empty() || label.size() > 63) return false;
  for (char c : label) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '-' || c == '_';
    if (!ok) return false;
  }
  return true;
}

util::StatusOr<Name> Name::Parse(std::string_view text) {
  if (text.empty()) return util::ParseError("empty name");
  if (text == ".") return Name();
  if (text.back() == '.') text.remove_suffix(1);
  std::vector<std::string> labels;
  size_t start = 0;
  for (size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == '.') {
      std::string_view label = text.substr(start, i - start);
      if (!IsValidLabel(label)) {
        return util::ParseError("bad label in name: " + std::string(text));
      }
      labels.push_back(util::ToLower(label));
      start = i + 1;
    }
  }
  return FromLabels(std::move(labels));
}

Name Name::FromString(std::string_view text) {
  auto parsed = Parse(text);
  GOVDNS_CHECK(parsed.ok());
  return *std::move(parsed);
}

util::StatusOr<Name> Name::FromLabels(std::vector<std::string> labels) {
  size_t wire_len = 1;
  for (auto& label : labels) {
    if (!IsValidLabel(label)) {
      return util::ParseError("invalid label: " + label);
    }
    label = util::ToLower(label);
    wire_len += 1 + label.size();
  }
  if (wire_len > 255) return util::ParseError("name exceeds 255 octets");
  return Name(std::move(labels));
}

std::string Name::ToString() const {
  if (labels_.empty()) return ".";
  std::string out;
  for (size_t i = 0; i < labels_.size(); ++i) {
    if (i > 0) out += '.';
    out += labels_[i];
  }
  return out;
}

bool Name::IsSubdomainOf(const Name& other) const {
  if (other.labels_.size() > labels_.size()) return false;
  // Compare the rightmost labels.
  return std::equal(other.labels_.rbegin(), other.labels_.rend(),
                    labels_.rbegin());
}

bool Name::IsProperSubdomainOf(const Name& other) const {
  return labels_.size() > other.labels_.size() && IsSubdomainOf(other);
}

Name Name::Parent() const {
  GOVDNS_CHECK(!labels_.empty());
  return Name(std::vector<std::string>(labels_.begin() + 1, labels_.end()));
}

Name Name::Child(std::string_view label) const {
  std::vector<std::string> labels;
  labels.reserve(labels_.size() + 1);
  labels.emplace_back(label);
  labels.insert(labels.end(), labels_.begin(), labels_.end());
  auto name = FromLabels(std::move(labels));
  GOVDNS_CHECK(name.ok());
  return *std::move(name);
}

Name Name::Suffix(size_t count) const {
  GOVDNS_CHECK(count <= labels_.size());
  return Name(
      std::vector<std::string>(labels_.end() - count, labels_.end()));
}

size_t Name::WireLength() const {
  size_t len = 1;
  for (const auto& label : labels_) len += 1 + label.size();
  return len;
}

std::string Name::CanonicalKey() const {
  std::string key;
  key.reserve(WireLength());
  for (auto it = labels_.rbegin(); it != labels_.rend(); ++it) {
    if (!key.empty()) key += '\0';
    key += *it;
  }
  return key;
}

util::StatusOr<Name> Name::FromCanonicalKey(std::string_view key) {
  if (key.empty()) return Name();
  std::vector<std::string> labels;
  size_t end = key.size();
  // Labels come out leftmost-first by walking the key back to front.
  for (size_t i = key.size(); i-- > 0;) {
    if (key[i] == '\0') {
      labels.emplace_back(key.substr(i + 1, end - i - 1));
      end = i;
    }
  }
  labels.emplace_back(key.substr(0, end));
  return FromLabels(std::move(labels));
}

std::strong_ordering Name::operator<=>(const Name& other) const {
  // Canonical ordering: compare labels right to left.
  size_t n = std::min(labels_.size(), other.labels_.size());
  for (size_t i = 1; i <= n; ++i) {
    const std::string& a = labels_[labels_.size() - i];
    const std::string& b = other.labels_[other.labels_.size() - i];
    if (auto cmp = a <=> b; cmp != 0) return cmp;
  }
  return labels_.size() <=> other.labels_.size();
}

size_t Name::Hash::operator()(const Name& n) const {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (const auto& label : n.labels_) {
    h = util::HashString(label, h);
  }
  return static_cast<size_t>(h);
}

std::ostream& operator<<(std::ostream& os, const Name& name) {
  return os << name.ToString();
}

}  // namespace govdns::dns
