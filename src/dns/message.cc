#include "dns/message.h"

#include <sstream>

#include "dns/wire.h"

namespace govdns::dns {

std::string_view RcodeName(Rcode rcode) {
  switch (rcode) {
    case Rcode::kNoError:
      return "NOERROR";
    case Rcode::kFormErr:
      return "FORMERR";
    case Rcode::kServFail:
      return "SERVFAIL";
    case Rcode::kNxDomain:
      return "NXDOMAIN";
    case Rcode::kNotImp:
      return "NOTIMP";
    case Rcode::kRefused:
      return "REFUSED";
  }
  return "RCODE?";
}

std::vector<uint8_t> Message::Encode() const {
  WireWriter w;
  w.WriteU16(header.id);
  uint16_t flags = 0;
  if (header.qr) flags |= 0x8000;
  flags |= static_cast<uint16_t>(header.opcode) << 11;
  if (header.aa) flags |= 0x0400;
  if (header.tc) flags |= 0x0200;
  if (header.rd) flags |= 0x0100;
  if (header.ra) flags |= 0x0080;
  flags |= static_cast<uint16_t>(header.rcode) & 0x0F;
  w.WriteU16(flags);
  w.WriteU16(static_cast<uint16_t>(questions.size()));
  w.WriteU16(static_cast<uint16_t>(answers.size()));
  w.WriteU16(static_cast<uint16_t>(authority.size()));
  w.WriteU16(static_cast<uint16_t>(additional.size()));
  for (const Question& q : questions) {
    w.WriteName(q.name);
    w.WriteU16(static_cast<uint16_t>(q.type));
    w.WriteU16(static_cast<uint16_t>(q.klass));
  }
  for (const auto* section : {&answers, &authority, &additional}) {
    for (const ResourceRecord& rr : *section) w.WriteRecord(rr);
  }
  return w.TakeBuffer();
}

util::StatusOr<Message> Message::Decode(const std::vector<uint8_t>& wire) {
  return Decode(wire.data(), wire.size());
}

util::StatusOr<Message> Message::Decode(const uint8_t* data, size_t len) {
  WireReader r(data, len);
  Message msg;
  auto id = r.ReadU16();
  if (!id.ok()) return id.status();
  msg.header.id = *id;
  auto flags_or = r.ReadU16();
  if (!flags_or.ok()) return flags_or.status();
  uint16_t flags = *flags_or;
  msg.header.qr = flags & 0x8000;
  uint8_t opcode = (flags >> 11) & 0x0F;
  if (opcode != 0) return util::ParseError("unsupported opcode");
  msg.header.opcode = Opcode::kQuery;
  msg.header.aa = flags & 0x0400;
  msg.header.tc = flags & 0x0200;
  msg.header.rd = flags & 0x0100;
  msg.header.ra = flags & 0x0080;
  msg.header.rcode = static_cast<Rcode>(flags & 0x0F);

  uint16_t counts[4];
  for (auto& count : counts) {
    auto v = r.ReadU16();
    if (!v.ok()) return v.status();
    count = *v;
  }
  for (uint16_t i = 0; i < counts[0]; ++i) {
    Question q;
    auto name = r.ReadName();
    if (!name.ok()) return name.status();
    q.name = *std::move(name);
    auto type = r.ReadU16();
    if (!type.ok()) return type.status();
    q.type = static_cast<RRType>(*type);
    auto klass = r.ReadU16();
    if (!klass.ok()) return klass.status();
    if (*klass != static_cast<uint16_t>(RRClass::kIN)) {
      return util::ParseError("unsupported question class");
    }
    msg.questions.push_back(std::move(q));
  }
  std::vector<ResourceRecord>* sections[] = {&msg.answers, &msg.authority,
                                             &msg.additional};
  for (int s = 0; s < 3; ++s) {
    for (uint16_t i = 0; i < counts[s + 1]; ++i) {
      auto rr = r.ReadRecord();
      if (!rr.ok()) return rr.status();
      sections[s]->push_back(*std::move(rr));
    }
  }
  if (!r.AtEnd()) return util::ParseError("trailing bytes in message");
  return msg;
}

bool Message::IsReferral() const {
  if (!header.qr || header.aa) return false;
  if (header.rcode != Rcode::kNoError) return false;
  if (!answers.empty()) return false;
  for (const ResourceRecord& rr : authority) {
    if (rr.type() == RRType::kNS) return true;
  }
  return false;
}

std::string Message::ToString() const {
  std::ostringstream os;
  os << ";; id " << header.id << " " << RcodeName(header.rcode)
     << (header.qr ? " qr" : "") << (header.aa ? " aa" : "")
     << (header.tc ? " tc" : "") << "\n";
  for (const Question& q : questions) {
    os << ";; question: " << q.name << " " << RRTypeName(q.type) << "\n";
  }
  auto dump = [&](const char* label, const std::vector<ResourceRecord>& rrs) {
    for (const ResourceRecord& rr : rrs) {
      os << ";; " << label << ": " << rr.ToString() << "\n";
    }
  };
  dump("answer", answers);
  dump("authority", authority);
  dump("additional", additional);
  return os.str();
}

Message MakeQuery(uint16_t id, const Name& name, RRType type) {
  Message msg;
  msg.header.id = id;
  msg.header.rd = false;  // iterative measurement client: no recursion
  msg.questions.push_back({name, type, RRClass::kIN});
  return msg;
}

Message MakeResponse(const Message& query, Rcode rcode) {
  Message msg;
  msg.header.id = query.header.id;
  msg.header.qr = true;
  msg.header.rd = query.header.rd;
  msg.header.rcode = rcode;
  msg.questions = query.questions;
  return msg;
}

}  // namespace govdns::dns
