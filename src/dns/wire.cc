#include "dns/wire.h"

#include <cstring>

namespace govdns::dns {

void WireWriter::WriteU8(uint8_t v) { buffer_.push_back(v); }

void WireWriter::WriteU16(uint16_t v) {
  buffer_.push_back(static_cast<uint8_t>(v >> 8));
  buffer_.push_back(static_cast<uint8_t>(v & 0xFF));
}

void WireWriter::WriteU32(uint32_t v) {
  WriteU16(static_cast<uint16_t>(v >> 16));
  WriteU16(static_cast<uint16_t>(v & 0xFFFF));
}

void WireWriter::WriteBytes(const uint8_t* data, size_t len) {
  buffer_.insert(buffer_.end(), data, data + len);
}

void WireWriter::PatchU16(size_t offset, uint16_t v) {
  GOVDNS_CHECK(offset + 2 <= buffer_.size());
  buffer_[offset] = static_cast<uint8_t>(v >> 8);
  buffer_[offset + 1] = static_cast<uint8_t>(v & 0xFF);
}

void WireWriter::WriteName(const Name& name) {
  // Emit labels until a suffix we have already emitted appears; then emit a
  // compression pointer to it. Record offsets for every new suffix that is
  // still addressable by a 14-bit pointer.
  const auto labels = name.labels();
  for (size_t i = 0; i < labels.size(); ++i) {
    Name suffix = name.Suffix(labels.size() - i);
    std::string key = suffix.ToString();
    auto it = compression_offsets_.find(key);
    if (it != compression_offsets_.end()) {
      WriteU16(static_cast<uint16_t>(0xC000 | it->second));
      return;
    }
    if (buffer_.size() <= 0x3FFF) {
      compression_offsets_.emplace(key,
                                   static_cast<uint16_t>(buffer_.size()));
    }
    const std::string& label = labels[i];
    WriteU8(static_cast<uint8_t>(label.size()));
    WriteBytes(reinterpret_cast<const uint8_t*>(label.data()), label.size());
  }
  WriteU8(0);  // root
}

void WireWriter::WriteNameUncompressed(const Name& name) {
  for (const std::string& label : name.labels()) {
    WriteU8(static_cast<uint8_t>(label.size()));
    WriteBytes(reinterpret_cast<const uint8_t*>(label.data()), label.size());
  }
  WriteU8(0);
}

namespace {

void WriteRdata(WireWriter& w, const Rdata& rdata) {
  struct Visitor {
    WireWriter& w;
    void operator()(const ARdata& r) const { w.WriteU32(r.address.bits()); }
    void operator()(const AaaaRdata& r) const {
      w.WriteBytes(r.address.data(), r.address.size());
    }
    void operator()(const NsRdata& r) const { w.WriteName(r.nameserver); }
    void operator()(const CnameRdata& r) const { w.WriteName(r.target); }
    void operator()(const PtrRdata& r) const { w.WriteName(r.target); }
    void operator()(const MxRdata& r) const {
      w.WriteU16(r.preference);
      w.WriteName(r.exchange);
    }
    void operator()(const SoaRdata& r) const {
      w.WriteName(r.mname);
      w.WriteName(r.rname);
      w.WriteU32(r.serial);
      w.WriteU32(r.refresh);
      w.WriteU32(r.retry);
      w.WriteU32(r.expire);
      w.WriteU32(r.minimum);
    }
    void operator()(const TxtRdata& r) const {
      for (const std::string& s : r.strings) {
        GOVDNS_CHECK(s.size() <= 255);
        w.WriteU8(static_cast<uint8_t>(s.size()));
        w.WriteBytes(reinterpret_cast<const uint8_t*>(s.data()), s.size());
      }
    }
  };
  std::visit(Visitor{w}, rdata);
}

}  // namespace

void WireWriter::WriteRecord(const ResourceRecord& rr) {
  WriteName(rr.name);
  WriteU16(static_cast<uint16_t>(rr.type()));
  WriteU16(static_cast<uint16_t>(rr.klass));
  WriteU32(rr.ttl);
  size_t rdlength_offset = buffer_.size();
  WriteU16(0);  // placeholder
  size_t rdata_start = buffer_.size();
  WriteRdata(*this, rr.rdata);
  size_t rdlen = buffer_.size() - rdata_start;
  GOVDNS_CHECK(rdlen <= 0xFFFF);
  PatchU16(rdlength_offset, static_cast<uint16_t>(rdlen));
}

util::StatusOr<uint8_t> WireReader::ReadU8() {
  if (pos_ + 1 > len_) return util::ParseError("truncated u8");
  return data_[pos_++];
}

util::StatusOr<uint16_t> WireReader::ReadU16() {
  if (pos_ + 2 > len_) return util::ParseError("truncated u16");
  uint16_t v = static_cast<uint16_t>((data_[pos_] << 8) | data_[pos_ + 1]);
  pos_ += 2;
  return v;
}

util::StatusOr<uint32_t> WireReader::ReadU32() {
  if (pos_ + 4 > len_) return util::ParseError("truncated u32");
  uint32_t v = (uint32_t{data_[pos_]} << 24) | (uint32_t{data_[pos_ + 1]} << 16) |
               (uint32_t{data_[pos_ + 2]} << 8) | data_[pos_ + 3];
  pos_ += 4;
  return v;
}

util::Status WireReader::ReadBytes(uint8_t* out, size_t len) {
  if (pos_ + len > len_) return util::ParseError("truncated bytes");
  std::memcpy(out, data_ + pos_, len);
  pos_ += len;
  return util::Status::Ok();
}

util::StatusOr<Name> WireReader::ReadName() { return ReadNameAt(pos_, 0); }

util::StatusOr<Name> WireReader::ReadNameAt(size_t& pos, int depth) {
  if (depth > 32) return util::ParseError("compression pointer loop");
  std::vector<std::string> labels;
  size_t wire_len = 1;
  for (;;) {
    if (pos >= len_) return util::ParseError("truncated name");
    uint8_t len_byte = data_[pos];
    if ((len_byte & 0xC0) == 0xC0) {
      if (pos + 2 > len_) return util::ParseError("truncated pointer");
      size_t target = (static_cast<size_t>(len_byte & 0x3F) << 8) |
                      data_[pos + 1];
      pos += 2;
      if (target >= pos - 2) {
        return util::ParseError("forward compression pointer");
      }
      size_t tail_pos = target;
      auto tail = ReadNameAt(tail_pos, depth + 1);
      if (!tail.ok()) return tail.status();
      for (const std::string& label : tail->labels()) {
        labels.push_back(label);
        wire_len += 1 + label.size();
        if (wire_len > 255) return util::ParseError("name too long");
      }
      return Name::FromLabels(std::move(labels));
    }
    if ((len_byte & 0xC0) != 0) {
      return util::ParseError("reserved label type");
    }
    ++pos;
    if (len_byte == 0) return Name::FromLabels(std::move(labels));
    if (pos + len_byte > len_) return util::ParseError("truncated label");
    labels.emplace_back(reinterpret_cast<const char*>(data_ + pos), len_byte);
    pos += len_byte;
    wire_len += 1 + len_byte;
    if (wire_len > 255) return util::ParseError("name too long");
  }
}

util::StatusOr<Rdata> ReadRdata(WireReader& reader, RRType type,
                                uint16_t rdlength) {
  const size_t rdata_end = reader.position() + rdlength;
  auto check_consumed = [&](Rdata rdata) -> util::StatusOr<Rdata> {
    if (reader.position() != rdata_end) {
      return util::ParseError("rdata length mismatch");
    }
    return rdata;
  };
  switch (type) {
    case RRType::kA: {
      auto bits = reader.ReadU32();
      if (!bits.ok()) return bits.status();
      return check_consumed(ARdata{geo::IPv4(*bits)});
    }
    case RRType::kAAAA: {
      AaaaRdata r;
      GOVDNS_RETURN_IF_ERROR(reader.ReadBytes(r.address.data(), 16));
      return check_consumed(std::move(r));
    }
    case RRType::kNS: {
      auto name = reader.ReadName();
      if (!name.ok()) return name.status();
      return check_consumed(NsRdata{*std::move(name)});
    }
    case RRType::kCNAME: {
      auto name = reader.ReadName();
      if (!name.ok()) return name.status();
      return check_consumed(CnameRdata{*std::move(name)});
    }
    case RRType::kPTR: {
      auto name = reader.ReadName();
      if (!name.ok()) return name.status();
      return check_consumed(PtrRdata{*std::move(name)});
    }
    case RRType::kMX: {
      auto pref = reader.ReadU16();
      if (!pref.ok()) return pref.status();
      auto name = reader.ReadName();
      if (!name.ok()) return name.status();
      return check_consumed(MxRdata{*pref, *std::move(name)});
    }
    case RRType::kSOA: {
      SoaRdata r;
      auto mname = reader.ReadName();
      if (!mname.ok()) return mname.status();
      r.mname = *std::move(mname);
      auto rname = reader.ReadName();
      if (!rname.ok()) return rname.status();
      r.rname = *std::move(rname);
      for (uint32_t* field :
           {&r.serial, &r.refresh, &r.retry, &r.expire, &r.minimum}) {
        auto v = reader.ReadU32();
        if (!v.ok()) return v.status();
        *field = *v;
      }
      return check_consumed(std::move(r));
    }
    case RRType::kTXT: {
      TxtRdata r;
      while (reader.position() < rdata_end) {
        auto len = reader.ReadU8();
        if (!len.ok()) return len.status();
        std::string s(*len, '\0');
        GOVDNS_RETURN_IF_ERROR(
            reader.ReadBytes(reinterpret_cast<uint8_t*>(s.data()), *len));
        r.strings.push_back(std::move(s));
      }
      return check_consumed(std::move(r));
    }
  }
  return util::ParseError("unsupported rdata type");
}

util::StatusOr<ResourceRecord> WireReader::ReadRecord() {
  ResourceRecord rr;
  auto name = ReadName();
  if (!name.ok()) return name.status();
  rr.name = *std::move(name);
  auto type = ReadU16();
  if (!type.ok()) return type.status();
  auto klass = ReadU16();
  if (!klass.ok()) return klass.status();
  if (*klass != static_cast<uint16_t>(RRClass::kIN)) {
    return util::ParseError("unsupported class");
  }
  rr.klass = RRClass::kIN;
  auto ttl = ReadU32();
  if (!ttl.ok()) return ttl.status();
  rr.ttl = *ttl;
  auto rdlength = ReadU16();
  if (!rdlength.ok()) return rdlength.status();
  if (position() + *rdlength > len_) {
    return util::ParseError("rdata exceeds message");
  }
  auto rdata = ReadRdata(*this, static_cast<RRType>(*type), *rdlength);
  if (!rdata.ok()) return rdata.status();
  rr.rdata = *std::move(rdata);
  return rr;
}

std::vector<uint8_t> FrameTcp(const std::vector<uint8_t>& message) {
  GOVDNS_CHECK(message.size() <= 0xFFFF);
  std::vector<uint8_t> framed;
  framed.reserve(message.size() + 2);
  framed.push_back(static_cast<uint8_t>(message.size() >> 8));
  framed.push_back(static_cast<uint8_t>(message.size() & 0xFF));
  framed.insert(framed.end(), message.begin(), message.end());
  return framed;
}

std::optional<std::vector<uint8_t>> UnframeTcp(const uint8_t* data, size_t len,
                                               size_t* consumed) {
  if (len < 2) return std::nullopt;
  const size_t msg_len = static_cast<size_t>(data[0]) << 8 | data[1];
  if (len < 2 + msg_len) return std::nullopt;
  if (consumed != nullptr) *consumed = 2 + msg_len;
  return std::vector<uint8_t>(data + 2, data + 2 + msg_len);
}

}  // namespace govdns::dns
