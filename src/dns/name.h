// DNS domain names.
//
// A Name is an ordered list of labels, least-significant first in
// presentation order ("www.gov.au" = labels {www, gov, au}). Names are
// stored lowercased: DNS comparison is ASCII case-insensitive (RFC 1035
// §2.3.3) and nothing in this codebase needs to preserve the original case.
#pragma once

#include <compare>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace govdns::dns {

class Name {
 public:
  // The root name (zero labels).
  Name() = default;

  // Parses presentation format. Accepts an optional trailing dot; "." is the
  // root. Rejects empty labels, labels > 63 octets, and names > 255 octets.
  static util::StatusOr<Name> Parse(std::string_view text);

  // Parses or aborts; for literals known to be valid at compile time.
  static Name FromString(std::string_view text);

  static Name Root() { return Name(); }

  // Builds from labels ordered leftmost-first (e.g. {"www", "gov", "au"}).
  static util::StatusOr<Name> FromLabels(std::vector<std::string> labels);

  bool IsRoot() const { return labels_.empty(); }
  size_t LabelCount() const { return labels_.size(); }
  std::span<const std::string> labels() const { return labels_; }
  const std::string& Label(size_t i) const { return labels_[i]; }

  // Presentation format without trailing dot; "." for the root.
  std::string ToString() const;

  // True if *this is `other` or a descendant of it. Every name is a
  // subdomain of the root.
  bool IsSubdomainOf(const Name& other) const;
  // Strict descendant (excludes equality).
  bool IsProperSubdomainOf(const Name& other) const;

  // Name with the leftmost label removed. Aborts on the root.
  Name Parent() const;

  // New name with `label` prepended ("mail" + "gov.au" -> "mail.gov.au").
  // Aborts if the label is invalid or the result exceeds length limits.
  Name Child(std::string_view label) const;

  // Keeps only the `count` rightmost labels ("a.b.gov.au".Suffix(2) ->
  // "gov.au"). count must be <= LabelCount().
  Name Suffix(size_t count) const;

  // Total wire length in octets: sum of (1 + label size) + 1 root byte.
  size_t WireLength() const;

  // Flat sort key: labels rightmost-first, joined by '\0' ("www.gov.au" ->
  // "au\0gov\0www"; the root -> ""). Because '\0' sorts below every legal
  // label byte, plain memcmp/string_view order on keys equals operator<=>
  // canonical order, and the subdomain test is a prefix check plus a label
  // boundary — which is what lets a memory-mapped snapshot binary-search
  // names without materializing a single Name (pdns/snapshot_io.h).
  std::string CanonicalKey() const;
  // Inverse of CanonicalKey; rejects malformed keys (empty or invalid
  // labels) rather than aborting, since keys arrive from disk.
  static util::StatusOr<Name> FromCanonicalKey(std::string_view key);

  // Lexicographic by label from the right (canonical DNS ordering); equal
  // names compare equal. Usable as std::map key.
  std::strong_ordering operator<=>(const Name& other) const;
  bool operator==(const Name& other) const { return labels_ == other.labels_; }

  struct Hash {
    size_t operator()(const Name& n) const;
  };

 private:
  explicit Name(std::vector<std::string> labels) : labels_(std::move(labels)) {}

  std::vector<std::string> labels_;
};

// True if `label` is a legal DNS label for our purposes: 1-63 octets of
// letters, digits, hyphen, or underscore (seen in real NS hostnames).
bool IsValidLabel(std::string_view label);

std::ostream& operator<<(std::ostream& os, const Name& name);

}  // namespace govdns::dns
