#include "dns/rr.h"

#include <cstdio>

namespace govdns::dns {

std::string_view RRTypeName(RRType type) {
  switch (type) {
    case RRType::kA:
      return "A";
    case RRType::kNS:
      return "NS";
    case RRType::kCNAME:
      return "CNAME";
    case RRType::kSOA:
      return "SOA";
    case RRType::kPTR:
      return "PTR";
    case RRType::kMX:
      return "MX";
    case RRType::kTXT:
      return "TXT";
    case RRType::kAAAA:
      return "AAAA";
  }
  return "TYPE?";
}

util::StatusOr<RRType> RRTypeFromName(std::string_view name) {
  if (name == "A") return RRType::kA;
  if (name == "NS") return RRType::kNS;
  if (name == "CNAME") return RRType::kCNAME;
  if (name == "SOA") return RRType::kSOA;
  if (name == "PTR") return RRType::kPTR;
  if (name == "MX") return RRType::kMX;
  if (name == "TXT") return RRType::kTXT;
  if (name == "AAAA") return RRType::kAAAA;
  return util::ParseError("unknown RR type: " + std::string(name));
}

RRType RdataType(const Rdata& rdata) {
  struct Visitor {
    RRType operator()(const ARdata&) const { return RRType::kA; }
    RRType operator()(const AaaaRdata&) const { return RRType::kAAAA; }
    RRType operator()(const NsRdata&) const { return RRType::kNS; }
    RRType operator()(const CnameRdata&) const { return RRType::kCNAME; }
    RRType operator()(const PtrRdata&) const { return RRType::kPTR; }
    RRType operator()(const MxRdata&) const { return RRType::kMX; }
    RRType operator()(const SoaRdata&) const { return RRType::kSOA; }
    RRType operator()(const TxtRdata&) const { return RRType::kTXT; }
  };
  return std::visit(Visitor{}, rdata);
}

std::string RdataToString(const Rdata& rdata) {
  struct Visitor {
    std::string operator()(const ARdata& r) const {
      return r.address.ToString();
    }
    std::string operator()(const AaaaRdata& r) const {
      char buf[64];
      std::string out;
      for (int i = 0; i < 16; i += 2) {
        std::snprintf(buf, sizeof(buf), "%s%x", i ? ":" : "",
                      (r.address[i] << 8) | r.address[i + 1]);
        out += buf;
      }
      return out;
    }
    std::string operator()(const NsRdata& r) const {
      return r.nameserver.ToString();
    }
    std::string operator()(const CnameRdata& r) const {
      return r.target.ToString();
    }
    std::string operator()(const PtrRdata& r) const {
      return r.target.ToString();
    }
    std::string operator()(const MxRdata& r) const {
      return std::to_string(r.preference) + " " + r.exchange.ToString();
    }
    std::string operator()(const SoaRdata& r) const {
      return r.mname.ToString() + " " + r.rname.ToString() + " " +
             std::to_string(r.serial);
    }
    std::string operator()(const TxtRdata& r) const {
      std::string out;
      for (const auto& s : r.strings) {
        if (!out.empty()) out += ' ';
        out += '"' + s + '"';
      }
      return out;
    }
  };
  return std::visit(Visitor{}, rdata);
}

std::string ResourceRecord::ToString() const {
  return name.ToString() + " " + std::to_string(ttl) + " IN " +
         std::string(RRTypeName(type())) + " " + RdataToString(rdata);
}

ResourceRecord MakeA(const Name& name, geo::IPv4 address, uint32_t ttl) {
  return {name, RRClass::kIN, ttl, ARdata{address}};
}

ResourceRecord MakeNs(const Name& name, const Name& nameserver, uint32_t ttl) {
  return {name, RRClass::kIN, ttl, NsRdata{nameserver}};
}

ResourceRecord MakeCname(const Name& name, const Name& target, uint32_t ttl) {
  return {name, RRClass::kIN, ttl, CnameRdata{target}};
}

ResourceRecord MakeSoa(const Name& name, const Name& mname, const Name& rname,
                       uint32_t serial, uint32_t ttl) {
  SoaRdata soa;
  soa.mname = mname;
  soa.rname = rname;
  soa.serial = serial;
  soa.refresh = 7200;
  soa.retry = 900;
  soa.expire = 1209600;
  soa.minimum = 300;
  return {name, RRClass::kIN, ttl, std::move(soa)};
}

ResourceRecord MakeTxt(const Name& name, std::string text, uint32_t ttl) {
  return {name, RRClass::kIN, ttl, TxtRdata{{std::move(text)}}};
}

}  // namespace govdns::dns
