// Resource records: types, rdata, RRsets.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "dns/name.h"
#include "geo/ipv4.h"
#include "util/status.h"

namespace govdns::dns {

enum class RRType : uint16_t {
  kA = 1,
  kNS = 2,
  kCNAME = 5,
  kSOA = 6,
  kPTR = 12,
  kMX = 15,
  kTXT = 16,
  kAAAA = 28,
};

std::string_view RRTypeName(RRType type);
util::StatusOr<RRType> RRTypeFromName(std::string_view name);

enum class RRClass : uint16_t {
  kIN = 1,
};

struct ARdata {
  geo::IPv4 address;
  friend bool operator==(const ARdata&, const ARdata&) = default;
};

struct AaaaRdata {
  std::array<uint8_t, 16> address{};
  friend bool operator==(const AaaaRdata&, const AaaaRdata&) = default;
};

struct NsRdata {
  Name nameserver;
  friend bool operator==(const NsRdata&, const NsRdata&) = default;
};

struct CnameRdata {
  Name target;
  friend bool operator==(const CnameRdata&, const CnameRdata&) = default;
};

struct PtrRdata {
  Name target;
  friend bool operator==(const PtrRdata&, const PtrRdata&) = default;
};

struct MxRdata {
  uint16_t preference = 0;
  Name exchange;
  friend bool operator==(const MxRdata&, const MxRdata&) = default;
};

struct SoaRdata {
  Name mname;  // primary nameserver; a provider fingerprint in §IV-B
  Name rname;  // responsible mailbox, dot-encoded
  uint32_t serial = 0;
  uint32_t refresh = 0;
  uint32_t retry = 0;
  uint32_t expire = 0;
  uint32_t minimum = 0;
  friend bool operator==(const SoaRdata&, const SoaRdata&) = default;
};

struct TxtRdata {
  std::vector<std::string> strings;  // each <= 255 octets
  friend bool operator==(const TxtRdata&, const TxtRdata&) = default;
};

using Rdata = std::variant<ARdata, AaaaRdata, NsRdata, CnameRdata, PtrRdata,
                           MxRdata, SoaRdata, TxtRdata>;

// The RRType implied by an Rdata alternative.
RRType RdataType(const Rdata& rdata);

// Presentation form of the rdata ("ns1.example.com", "192.0.2.1", ...).
std::string RdataToString(const Rdata& rdata);

struct ResourceRecord {
  Name name;
  RRClass klass = RRClass::kIN;
  uint32_t ttl = 3600;
  Rdata rdata;

  RRType type() const { return RdataType(rdata); }
  std::string ToString() const;

  friend bool operator==(const ResourceRecord&, const ResourceRecord&) =
      default;
};

// Convenience constructors.
ResourceRecord MakeA(const Name& name, geo::IPv4 address, uint32_t ttl = 3600);
ResourceRecord MakeNs(const Name& name, const Name& nameserver,
                      uint32_t ttl = 3600);
ResourceRecord MakeCname(const Name& name, const Name& target,
                         uint32_t ttl = 3600);
ResourceRecord MakeSoa(const Name& name, const Name& mname, const Name& rname,
                       uint32_t serial, uint32_t ttl = 3600);
ResourceRecord MakeTxt(const Name& name, std::string text, uint32_t ttl = 3600);

}  // namespace govdns::dns
