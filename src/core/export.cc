#include "core/export.h"

#include <sstream>

#include "util/json.h"

namespace govdns::core {

namespace {

const char* DeterminismName(obs::Determinism det) {
  return det == obs::Determinism::kStable ? "stable" : "diagnostic";
}

void WriteProviderTable(util::JsonWriter& json, const ProviderYearTable& t) {
  json.BeginObject();
  json.Kv("year", t.year);
  json.Kv("total_domains", t.total_domains);
  json.Kv("total_groups", t.total_groups);
  json.Key("rows").BeginArray();
  for (const auto& row : t.rows) {
    if (row.domains == 0) continue;
    json.BeginObject();
    json.Kv("provider", row.group_key);
    json.Kv("domains", row.domains);
    json.Kv("d1p", row.d1p);
    json.Kv("groups", row.groups);
    json.Kv("countries", row.countries);
    json.Kv("major", row.major);
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();
}

}  // namespace

std::string ExportReportJson(const StudyReport& report) {
  util::JsonWriter json;
  json.BeginObject();

  json.Key("selection").BeginObject();
  json.Kv("countries", report.selection.total);
  json.Kv("broken_links", report.selection.broken_links);
  json.Kv("squatted_links", report.selection.squatted_links);
  json.Kv("msq_fallbacks", report.selection.msq_fallbacks);
  json.Kv("registered_domain_fallbacks",
          report.selection.registered_domain_fallbacks);
  json.EndObject();

  json.Key("pdns_per_year").BeginArray();
  for (const auto& row : report.pdns_per_year) {
    json.BeginObject();
    json.Kv("year", row.year);
    json.Kv("domains", row.domains);
    json.Kv("countries", row.countries);
    json.Kv("nameservers", row.nameservers);
    json.EndObject();
  }
  json.EndArray();

  json.Key("funnel").BeginObject();
  json.Kv("queried", report.funnel.queried);
  json.Kv("parent_responded", report.funnel.parent_responded);
  json.Kv("parent_has_records", report.funnel.parent_has_records);
  json.Kv("child_authoritative", report.funnel.child_authoritative);
  json.EndObject();

  json.Key("replication").BeginObject();
  json.Kv("domains_considered", report.replication.domains_considered);
  json.Kv("pct_at_least_two", report.replication.pct_at_least_two);
  json.Kv("d1ns_count", report.replication.d1ns_count);
  json.Kv("d1ns_stale_pct", report.replication.d1ns_stale_pct);
  json.Key("ns_count_cdf").BeginArray();
  for (const auto& [count, cdf] : report.replication.ns_count_cdf) {
    json.BeginObject();
    json.Kv("ns", count);
    json.Kv("cdf", cdf);
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();

  json.Key("diversity").BeginArray();
  for (const auto& row : report.diversity) {
    json.BeginObject();
    json.Kv("label", row.label);
    json.Kv("domains", row.domains);
    json.Kv("pct_multi_ip", row.pct_multi_ip);
    json.Kv("pct_multi_24", row.pct_multi_24);
    json.Kv("pct_multi_asn", row.pct_multi_asn);
    json.EndObject();
  }
  json.EndArray();

  json.Key("d1ns_churn").BeginArray();
  for (const auto& row : report.d1ns_churn) {
    json.BeginObject();
    json.Kv("year", row.year);
    json.Kv("d1ns", row.d1ns_total);
    json.Kv("pct_overlap_2011", row.pct_overlap_2011);
    json.Kv("pct_new_vs_prev", row.pct_new_vs_prev);
    json.Kv("pct_2011_cohort_gone", row.pct_2011_cohort_gone);
    json.EndObject();
  }
  json.EndArray();

  json.Key("private_share").BeginArray();
  for (const auto& row : report.private_share) {
    json.BeginObject();
    json.Kv("year", row.year);
    json.Kv("pct_d1ns_private", row.pct_d1ns_private);
    json.Kv("pct_all_private", row.pct_all_private);
    json.EndObject();
  }
  json.EndArray();

  json.Key("providers").BeginObject();
  json.Key("first_year");
  WriteProviderTable(json, report.providers_first_year);
  json.Key("last_year");
  WriteProviderTable(json, report.providers_last_year);
  json.EndObject();

  json.Key("delegations").BeginObject();
  json.Kv("domains_considered", report.delegations.domains_considered);
  json.Kv("partially_defective", report.delegations.partially_defective);
  json.Kv("fully_defective", report.delegations.fully_defective);
  json.Key("by_country").BeginArray();
  for (const auto& row : report.delegations.by_country) {
    json.BeginObject();
    json.Kv("country", row.code);
    json.Kv("domains", row.domains);
    json.Kv("partial", row.partial);
    json.Kv("full", row.full);
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();

  json.Key("hijack").BeginObject();
  json.Kv("candidate_ns_domains", report.hijack.candidate_ns_domains);
  json.Kv("available_ns_domains", report.hijack.available_ns_domains);
  json.Kv("affected_domains", report.hijack.affected_domains);
  json.Kv("affected_countries", report.hijack.affected_countries);
  json.Kv("multi_country_ns_domains", report.hijack.multi_country_ns_domains);
  json.Kv("dangling_available_ns", report.hijack.dangling_available_ns);
  json.Kv("dangling_domains", report.hijack.dangling_domains);
  json.Kv("dangling_countries", report.hijack.dangling_countries);
  json.Key("prices_usd").BeginArray();
  for (double p : report.hijack.prices_usd) json.Double(p);
  json.EndArray();
  json.EndObject();

  json.Key("consistency").BeginObject();
  json.Kv("comparable", report.consistency.comparable);
  json.Kv("pct_equal", report.consistency.pct_equal);
  json.Kv("pct_disagree_with_partial_defect",
          report.consistency.pct_disagree_with_partial_defect);
  json.Key("classes").BeginObject();
  for (const auto& [klass, count] : report.consistency.counts) {
    switch (klass) {
      case ConsistencyClass::kEqual:
        json.Kv("equal", count);
        break;
      case ConsistencyClass::kChildSuperset:
        json.Kv("child_superset", count);
        break;
      case ConsistencyClass::kParentSuperset:
        json.Kv("parent_superset", count);
        break;
      case ConsistencyClass::kOverlapNeither:
        json.Kv("overlap_neither", count);
        break;
      case ConsistencyClass::kDisjointSharedIp:
        json.Kv("disjoint_shared_ip", count);
        break;
      case ConsistencyClass::kDisjoint:
        json.Kv("disjoint", count);
        break;
      case ConsistencyClass::kNotComparable:
        break;
    }
  }
  json.EndObject();
  json.EndObject();

  const ResilienceReport& res = report.resilience;
  json.Key("resilience").BeginObject();
  json.Kv("domains", res.domains);
  json.Kv("degraded_domains", res.degraded_domains);
  json.Kv("queries", int64_t(res.totals.queries));
  json.Kv("retries", int64_t(res.totals.retries));
  json.Kv("timeouts", int64_t(res.totals.timeouts));
  json.Kv("breaker_skips", int64_t(res.totals.breaker_skips));
  json.Kv("negative_cache_hits", int64_t(res.totals.negative_cache_hits));
  json.Kv("budget_denied", int64_t(res.totals.budget_denied));
  json.Kv("deadline_denied", int64_t(res.totals.deadline_denied));
  json.Kv("max_queries_one_domain", int64_t(res.max_queries_one_domain));
  json.Kv("avg_queries_per_domain", res.avg_queries_per_domain);
  json.Kv("total_logical_ms", int64_t(res.total_logical_ms));
  json.Kv("max_logical_ms_one_domain",
          int64_t(res.max_logical_ms_one_domain));
  json.EndObject();

  const QuarantineReport& quar = report.quarantine;
  json.Key("quarantine").BeginObject();
  json.Kv("total_domains", quar.total_domains);
  json.Kv("quarantined", quar.quarantined);
  json.Kv("hang", quar.hang);
  json.Kv("blackhole", quar.blackhole);
  json.Kv("budget_exceeded", quar.budget_exceeded);
  json.Kv("watchdog_cancelled", quar.watchdog_cancelled);
  json.Kv("vantage_lost", quar.vantage_lost);
  json.Kv("coverage", quar.coverage);
  json.Key("by_country").BeginArray();
  for (const QuarantineReport::CountryRow& row : quar.by_country) {
    json.BeginObject();
    json.Kv("code", row.code);
    json.Kv("domains", row.domains);
    json.Kv("quarantined", row.quarantined);
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();

  json.Key("profile").BeginArray();
  for (const obs::PhaseRecord& r : report.profile) {
    json.BeginObject();
    json.Kv("name", r.name);
    json.Kv("items", r.items);
    json.Kv("logical_ms", int64_t(r.logical_ms));
    json.EndObject();
  }
  json.EndArray();

  json.EndObject();
  return json.TakeString();
}

std::string ExportMetricsJson(const obs::MetricsSnapshot& snapshot) {
  util::JsonWriter json;
  json.BeginObject();

  json.Key("counters").BeginArray();
  for (const auto& c : snapshot.counters) {
    json.BeginObject();
    json.Kv("name", c.name);
    json.Key("value").Uint(c.value);
    json.Kv("determinism", DeterminismName(c.determinism));
    json.EndObject();
  }
  json.EndArray();

  json.Key("gauges").BeginArray();
  for (const auto& g : snapshot.gauges) {
    json.BeginObject();
    json.Kv("name", g.name);
    json.Kv("value", g.value);
    json.Kv("determinism", DeterminismName(g.determinism));
    json.EndObject();
  }
  json.EndArray();

  json.Key("histograms").BeginArray();
  for (const auto& h : snapshot.histograms) {
    json.BeginObject();
    json.Kv("name", h.name);
    json.Kv("determinism", DeterminismName(h.determinism));
    json.Key("count").Uint(h.data.count);
    json.Key("sum").Uint(h.data.sum);
    json.Key("min").Uint(h.data.count > 0 ? h.data.min : 0);
    json.Key("max").Uint(h.data.max);
    // Trailing empty buckets are elided; index i counts values with
    // bit_width i (bucket 0 = zeros).
    int last = obs::HistogramData::kBuckets;
    while (last > 0 && h.data.buckets[last - 1] == 0) --last;
    json.Key("buckets").BeginArray();
    for (int i = 0; i < last; ++i) json.Uint(h.data.buckets[i]);
    json.EndArray();
    json.EndObject();
  }
  json.EndArray();

  json.EndObject();
  return json.TakeString();
}

std::string ExportMetricsCsv(const obs::MetricsSnapshot& snapshot) {
  std::ostringstream os;
  os << "kind,name,determinism,count,sum,min,max\n";
  for (const auto& c : snapshot.counters) {
    os << "counter," << c.name << ',' << DeterminismName(c.determinism) << ','
       << c.value << ",,,\n";
  }
  for (const auto& g : snapshot.gauges) {
    os << "gauge," << g.name << ',' << DeterminismName(g.determinism) << ','
       << g.value << ",,,\n";
  }
  for (const auto& h : snapshot.histograms) {
    os << "histogram," << h.name << ',' << DeterminismName(h.determinism)
       << ',' << h.data.count << ',' << h.data.sum << ','
       << (h.data.count > 0 ? h.data.min : 0) << ',' << h.data.max << '\n';
  }
  return os.str();
}

std::string ExportTraceJson(const obs::TraceRing& traces,
                            const obs::CutTraceLog& cut_log) {
  util::JsonWriter json;
  json.BeginObject();

  json.Key("config").BeginObject();
  json.Key("sample_period").Uint(traces.config().sample_period);
  json.Key("max_domains").Uint(traces.config().max_domains);
  json.Key("max_events_per_domain").Uint(traces.config().max_events_per_domain);
  json.EndObject();

  json.Key("folded_domains").Uint(traces.folded_total());

  json.Key("domains").BeginArray();
  for (const obs::DomainTrace* trace : traces.Entries()) {
    json.BeginObject();
    json.Kv("domain", trace->domain());
    json.Key("dropped").Uint(trace->dropped());
    json.Key("events").BeginArray();
    for (const obs::TraceEvent& e : trace->events()) {
      json.BeginObject();
      json.Kv("kind", obs::TraceEventKindName(e.kind));
      json.Key("at_ms").Uint(e.at_ms);
      if (e.server != 0) json.Key("server").Uint(e.server);
      if (e.aux != 0) json.Kv("aux", int(e.aux));
      json.EndObject();
    }
    json.EndArray();
    json.EndObject();
  }
  json.EndArray();

  json.Key("cut_log").BeginArray();
  for (const obs::CutTraceLog::Entry& entry : cut_log.Snapshot()) {
    json.BeginObject();
    json.Kv("zone", entry.zone);
    json.Kv("reachable", entry.reachable);
    json.Key("ns").Uint(entry.ns_count);
    json.Key("addrs").Uint(entry.addr_count);
    json.EndObject();
  }
  json.EndArray();

  json.EndObject();
  return json.TakeString();
}

std::string ExportCsv(const StudyReport& report, const std::string& table) {
  std::ostringstream os;
  if (table == "pdns_per_year") {
    os << "year,domains,countries,nameservers\n";
    for (const auto& row : report.pdns_per_year) {
      os << row.year << ',' << row.domains << ',' << row.countries << ','
         << row.nameservers << '\n';
    }
  } else if (table == "d1ns_churn") {
    os << "year,d1ns,pct_overlap_2011,pct_new_vs_prev,pct_2011_cohort_gone\n";
    for (const auto& row : report.d1ns_churn) {
      os << row.year << ',' << row.d1ns_total << ',' << row.pct_overlap_2011
         << ',' << row.pct_new_vs_prev << ',' << row.pct_2011_cohort_gone
         << '\n';
    }
  } else if (table == "private_share") {
    os << "year,pct_d1ns_private,pct_all_private\n";
    for (const auto& row : report.private_share) {
      os << row.year << ',' << row.pct_d1ns_private << ','
         << row.pct_all_private << '\n';
    }
  } else if (table == "diversity") {
    os << "label,domains,pct_multi_ip,pct_multi_24,pct_multi_asn\n";
    for (const auto& row : report.diversity) {
      os << row.label << ',' << row.domains << ',' << row.pct_multi_ip << ','
         << row.pct_multi_24 << ',' << row.pct_multi_asn << '\n';
    }
  } else if (table == "delegations_by_country") {
    os << "country,domains,partial,full\n";
    for (const auto& row : report.delegations.by_country) {
      os << row.code << ',' << row.domains << ',' << row.partial << ','
         << row.full << '\n';
    }
  } else if (table == "hijack_by_country") {
    os << "country,affected_domains,available_ns_domains\n";
    for (const auto& row : report.hijack.by_country) {
      os << row.code << ',' << row.affected_domains << ','
         << row.available_ns_domains << '\n';
    }
  } else if (table == "consistency_by_country") {
    os << "country,comparable,disagree\n";
    for (const auto& row : report.consistency.by_country) {
      os << row.code << ',' << row.comparable << ',' << row.disagree << '\n';
    }
  }
  return os.str();
}

}  // namespace govdns::core
