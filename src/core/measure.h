// Active measurement of a domain's authoritative-DNS deployment — the
// paper's Fig. 1 procedure:
//
//   (1) locate the authoritative servers of the domain's parent zone and
//       query them for the domain's NS records;
//   (2) on a referral (or authoritative answer), collect the parent-side
//       NS set P;
//   (3) query the domain's own authoritative servers for its NS records;
//   (4) combine the child-side NS set C with P;
//   (5) resolve every nameserver hostname in P ∪ C to IPv4 addresses and
//       query each address for the domain's NS records, recording per-host
//       response status.
//
// A second round re-queries domains whose parent returned NS records but
// whose child servers never answered, to rule out transient loss (§III-B).
//
// Two construction modes:
//   * Legacy serial mode (resolver pointer): every Measure call runs through
//     one caller-owned resolver, exactly as the original client did.
//   * Pool mode (transport + root hints): MeasureAll shards the domain list
//     over worker threads; each worker owns a private IterativeResolver but
//     all share one thread-safe zone-cut + negative cache, and every domain
//     is measured inside a hermetic per-domain chaos scope. Results land in
//     input order and per-domain query_stats are byte-identical for any
//     worker count, so the downstream analyses and the resilience report do
//     not depend on parallelism.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "core/resolver.h"
#include "dns/rr.h"
#include "obs/obs.h"

namespace govdns::core {

// Condition of one nameserver hostname with respect to one domain.
enum class NsHostStatus {
  kAuthoritative,   // answered the domain's NS query with AA
  kNonAuthoritative,// responded, but without authority (or empty)
  kRefused,         // responded REFUSED/SERVFAIL
  kNoResponse,      // resolved, but no address ever replied
  kUnresolvable,    // hostname has no A records / cannot be resolved
};

struct NsHostResult {
  dns::Name host;
  std::vector<geo::IPv4> addresses;
  NsHostStatus status = NsHostStatus::kUnresolvable;
  bool in_parent_set = false;
  bool in_child_set = false;

  friend bool operator==(const NsHostResult&, const NsHostResult&) = default;
};

// Why a measured domain was quarantined (DESIGN.md §6g). The taxonomy is a
// client-side heuristic over the resolver's counters — the measurement
// vantage point cannot see inside a server that never answers, so "hang" vs
// "blackhole" is inferred from the shape of the failure: a domain whose
// every datagram timed out against a live parent looks hung end to end,
// while a mix of delivered-then-dark exchanges looks blackholed.
enum class QuarantineReason : uint8_t {
  kNone = 0,              // not quarantined
  kHang = 1,              // deadline hit; every query timed out
  kBlackhole = 2,         // deadline hit; some traffic delivered, then dark
  kBudgetExceeded = 3,    // country/phase budget pre-empted the domain
  kWatchdogCancelled = 4, // a stalled worker's in-flight domain was cancelled
  kVantageLost = 5,       // the vantage shard measuring it died for good
};

// The highest QuarantineReason value; codecs bounds-check against it.
inline constexpr uint8_t kMaxQuarantineReason =
    static_cast<uint8_t>(QuarantineReason::kVantageLost);

const char* QuarantineReasonName(QuarantineReason reason);

struct MeasurementResult {
  dns::Name domain;

  // Step 1: the parent zone.
  bool parent_located = false;    // found + reached the parent zone servers
  dns::Name parent_zone;
  bool parent_responded = false;  // >=1 parent server answered the NS query
  bool parent_has_records = false;  // the answer/referral named this domain
  // True when the parent's servers answered authoritatively for the domain
  // itself (parent and child hosted on the same servers).
  bool parent_answered_authoritatively = false;

  std::vector<dns::Name> parent_ns;  // P
  std::vector<dns::Name> child_ns;   // C (union over authoritative answers)
  bool child_any_authoritative = false;

  std::vector<NsHostResult> hosts;  // per hostname in P ∪ C

  std::optional<dns::SoaRdata> soa;  // from an authoritative child server
  int rounds = 1;

  // Resilience bookkeeping: the query effort this domain cost (diffed from
  // the resolver's counters), and whether the per-domain budget cut the
  // measurement short — a degraded result may under-report live servers.
  ResolverCounters query_stats;
  bool degraded = false;
  // Logical (transport-clock) time this measurement consumed. In engine
  // mode a pure function of (world seed, domain), like query_stats.
  uint64_t logical_ms = 0;
  // Degradation verdict: kNone for a healthy measurement, otherwise the
  // reason this domain was cut short and must be read as partial coverage.
  QuarantineReason quarantine_reason = QuarantineReason::kNone;

  // All distinct addresses of the domain's nameservers (for Table I).
  std::vector<geo::IPv4> NsAddresses() const;
  // Convenience: the union P ∪ C.
  std::vector<dns::Name> AllNs() const;

  // Full-field equality: used by the checkpoint tests to prove a journaled
  // result decodes back bit-for-bit.
  friend bool operator==(const MeasurementResult&,
                         const MeasurementResult&) = default;
};

struct MeasurerOptions {
  bool second_round = true;  // re-query silent children (§III-B)
  bool collect_soa = true;
  // Hard cap on datagrams per measured domain (0 = unlimited). When spent,
  // remaining queries fail fast and the result is flagged `degraded`.
  uint64_t max_queries_per_domain = 250;
  // --- Deadline-budget hierarchy (DESIGN.md §6g), all 0 = disabled --------
  // Logical (transport-clock) ms one domain may consume before it is
  // quarantined. Overrides ResolverOptions::domain_deadline_ms when set.
  uint64_t max_logical_ms_per_domain = 0;
  // Logical ms all of one country's domains together may consume; once a
  // country is over budget (as of a batch boundary) its remaining domains
  // are pre-quarantined without traffic. Enforced by Study.
  uint64_t max_logical_ms_per_country = 0;
  // Logical ms the whole measurement phase may consume; past it, remaining
  // batches are pre-quarantined. Enforced by Study at batch granularity so
  // the cutoff is deterministic and worker-count independent.
  uint64_t phase_deadline_logical_ms = 0;
  // Granularity (domains) of study-level budget enforcement and checkpoint
  // journaling when a country/phase budget is armed. 0 = the checkpoint's
  // batch_size when one is attached, else 64. Changing it may move which
  // domains fall past a budget cutoff (each batch's verdicts read only the
  // accumulators of the batches before it), but never changes healthy runs.
  size_t budget_batch_size = 0;
  // Wall-clock watchdog (PhaseWatchdog): a worker that makes no progress
  // heartbeat within this many real ms has its in-flight domain cancelled
  // and requeued once. 0 = no watchdog. Never fires in pure simulation
  // (exchanges always return), so it cannot perturb deterministic runs.
  uint32_t watchdog_stall_ms = 0;
  uint32_t watchdog_poll_ms = 20;
  // Worker threads used by MeasureAll in pool mode; 0 picks
  // std::thread::hardware_concurrency(). Ignored in legacy serial mode.
  int workers = 0;
  // Async submit lanes (ZDNS-style, DESIGN.md §6h): when > 0, overrides
  // `workers` as the pool size. Intended for transports that multiplex
  // I/O — e.g. netio::QueryEngine — where a lane parked in Exchange costs
  // a parked thread, not a socket round-trip, so lane count can far
  // exceed core count to keep the engine's in-flight window full. Every
  // domain is measured hermetically, so any lane count yields the same
  // byte stream.
  int async_lanes = 0;
  // Observability sink (not owned; may be null). When set, the measurer
  // folds per-worker metric shards into obs->metrics(), samples per-domain
  // traces into obs->traces() (folded in input order, so the retained set
  // is worker-count independent), and wires the shared cut cache's publish
  // log to obs->cut_log().
  obs::Observability* obs = nullptr;
};

class ActiveMeasurer {
 public:
  using Options = MeasurerOptions;

  // Legacy serial mode: all measurement traffic goes through `resolver`,
  // which the caller owns and may share with other components.
  ActiveMeasurer(IterativeResolver* resolver,
                 MeasurerOptions options = MeasurerOptions());

  // Pool mode: MeasureAll runs a worker pool over `transport`; workers share
  // one zone-cut cache owned by the measurer.
  ActiveMeasurer(dns::QueryTransport* transport,
                 std::vector<geo::IPv4> root_hints,
                 ResolverOptions resolver_options = ResolverOptions(),
                 MeasurerOptions options = MeasurerOptions());
  ~ActiveMeasurer();

  MeasurementResult Measure(const dns::Name& domain);

  // Runs Measure over a list (the paper's 147k-domain query list). Results
  // are returned in input order regardless of how work was sharded.
  std::vector<MeasurementResult> MeasureAll(
      const std::vector<dns::Name>& domains);

  // Aggregate query effort of the last MeasureAll: in pool mode the exact
  // sum of the per-worker resolver counters (surface queries only — shared
  // cache computation is accounted on the cache itself); in legacy mode the
  // caller resolver's cumulative counters.
  const ResolverCounters& merged_counters() const { return merged_counters_; }
  uint64_t merged_queries_sent() const { return merged_queries_sent_; }
  // Pool mode only (nullptr otherwise). The mutable overload exists for
  // checkpoint warm-start (SharedCutCache::Restore before MeasureAll).
  const SharedCutCache* shared_cache() const { return shared_cache_.get(); }
  SharedCutCache* shared_cache() { return shared_cache_.get(); }

 private:
  // Well-known metric ids, declared once per run on the attached registry.
  struct MetricIds;

  // `trace_slot`, when non-null, receives this domain's event log; the
  // caller owns folding it into the ring (in input order).
  MeasurementResult MeasureWith(IterativeResolver& resolver,
                                const dns::Name& domain,
                                std::optional<obs::DomainTrace>* trace_slot);
  void MeasureInternal(IterativeResolver& resolver, MeasurementResult& result,
                       obs::DomainTrace* trace);
  void QueryChildServers(IterativeResolver& resolver,
                         MeasurementResult& result);
  // True when obs is attached and this domain falls in the trace sample.
  bool WantTrace(const dns::Name& domain) const;
  // Post-run bookkeeping: cut-cache gauges on the attached registry.
  void PublishCacheGauges();

  IterativeResolver* resolver_ = nullptr;     // legacy serial mode
  dns::QueryTransport* transport_ = nullptr;  // pool mode
  std::vector<geo::IPv4> roots_;
  ResolverOptions resolver_options_;
  std::unique_ptr<SharedCutCache> shared_cache_;
  Options options_;
  ResolverCounters merged_counters_;
  uint64_t merged_queries_sent_ = 0;
};

}  // namespace govdns::core
