#include "core/analysis.h"

#include <algorithm>
#include <set>

namespace govdns::core {

namespace {

// True when the NS host fails to serve the domain (the paper's defective
// criterion: listed but "does not answer queries for that zone").
bool HostDefective(const NsHostResult& host) {
  return host.status != NsHostStatus::kAuthoritative;
}

}  // namespace

ActiveDataset ActiveDataset::Build(std::vector<MeasurementResult> results,
                                   std::vector<SeedDomain> seeds,
                                   std::vector<CountryMeta> metas) {
  ActiveDataset out;
  out.results = std::move(results);
  out.seeds = std::move(seeds);
  out.metas = std::move(metas);
  out.country.resize(out.results.size(), -1);
  // Longest-match over seeds (jis.gov.jm-style seeds can nest under a TLD
  // another seed also uses). Strictly-longer-only so the first seed in input
  // order wins among equal-length matches: two same-length seeds that both
  // enclose the domain are necessarily the same d_gov (duplicate seed rows,
  // possibly with conflicting country metadata), and attribution must not
  // depend on which duplicate happens to be listed last.
  for (size_t i = 0; i < out.results.size(); ++i) {
    int best = -1;
    size_t best_labels = 0;
    for (const SeedDomain& seed : out.seeds) {
      if (!out.results[i].domain.IsSubdomainOf(seed.d_gov)) continue;
      if (best >= 0 && seed.d_gov.LabelCount() <= best_labels) continue;
      best = seed.country;
      best_labels = seed.d_gov.LabelCount();
    }
    out.country[i] = best;
  }
  return out;
}

ActiveDataset::Funnel ActiveDataset::ComputeFunnel() const {
  Funnel funnel;
  funnel.queried = static_cast<int64_t>(results.size());
  for (const MeasurementResult& r : results) {
    if (r.parent_responded) ++funnel.parent_responded;
    if (r.parent_has_records) ++funnel.parent_has_records;
    if (r.child_any_authoritative) ++funnel.child_authoritative;
  }
  return funnel;
}

// ---------------------------------------------------------------------------
// Replication
// ---------------------------------------------------------------------------

ReplicationSummary AnalyzeReplication(const ActiveDataset& dataset) {
  ReplicationSummary out;
  std::map<int, int64_t> count_hist;
  std::map<int, ReplicationSummary::CountryRow> by_country;

  for (size_t i = 0; i < dataset.results.size(); ++i) {
    const MeasurementResult& r = dataset.results[i];
    if (!r.parent_has_records) continue;
    ++out.domains_considered;
    int ns_count = static_cast<int>(r.AllNs().size());
    ++count_hist[ns_count];

    int c = dataset.country[i];
    ReplicationSummary::CountryRow* row = nullptr;
    if (c >= 0) {
      row = &by_country[c];
      row->code = dataset.metas[c].code;
      ++row->domains;
    }
    if (ns_count == 1) {
      ++out.d1ns_count;
      bool stale = !r.child_any_authoritative;
      if (stale) {
        out.d1ns_stale_pct += 1.0;  // numerator for now
      }
      if (row != nullptr) {
        ++row->d1ns;
        if (stale) ++row->d1ns_stale;
      }
    } else if (row != nullptr) {
      ++row->min_two;
    }
  }

  int64_t cumulative = 0;
  for (const auto& [count, freq] : count_hist) {
    cumulative += freq;
    out.ns_count_cdf.emplace_back(
        count, double(cumulative) / double(out.domains_considered));
  }
  if (out.domains_considered > 0) {
    int64_t singles = count_hist.count(1) ? count_hist[1] : 0;
    out.pct_at_least_two =
        1.0 - double(singles) / double(out.domains_considered);
  }
  if (out.d1ns_count > 0) {
    out.d1ns_stale_pct /= double(out.d1ns_count);
  }
  for (auto& [c, row] : by_country) out.by_country.push_back(std::move(row));
  return out;
}

// ---------------------------------------------------------------------------
// Diversity (Table I)
// ---------------------------------------------------------------------------

namespace {

struct DiversityAcc {
  int64_t domains = 0;
  int64_t multi_ip = 0;
  int64_t multi_24 = 0;
  int64_t multi_asn = 0;

  DiversityRow Finish(std::string label) const {
    DiversityRow row;
    row.label = std::move(label);
    row.domains = domains;
    if (domains > 0) {
      row.pct_multi_ip = double(multi_ip) / double(domains);
      row.pct_multi_24 = double(multi_24) / double(domains);
      row.pct_multi_asn = double(multi_asn) / double(domains);
    }
    return row;
  }
};

}  // namespace

std::vector<DiversityRow> AnalyzeDiversity(
    const ActiveDataset& dataset, const geo::AsnDatabase& asn_db,
    const std::vector<std::string>& country_codes) {
  DiversityAcc total;
  std::map<std::string, DiversityAcc> per_country;
  std::map<int, std::string> wanted;  // country index -> code
  for (size_t i = 0; i < dataset.metas.size(); ++i) {
    for (const std::string& code : country_codes) {
      if (dataset.metas[i].code == code) wanted[static_cast<int>(i)] = code;
    }
  }

  for (size_t i = 0; i < dataset.results.size(); ++i) {
    const MeasurementResult& r = dataset.results[i];
    if (!r.parent_has_records) continue;
    if (r.AllNs().size() < 2) continue;  // multi-NS domains only
    std::vector<geo::IPv4> addrs = r.NsAddresses();
    if (addrs.empty()) continue;

    std::set<uint32_t> prefixes;
    std::set<uint32_t> asns;
    for (geo::IPv4 ip : addrs) {
      prefixes.insert(ip.Slash24().bits());
      if (auto info = asn_db.Lookup(ip)) asns.insert(info->asn);
    }
    auto bump = [&](DiversityAcc& acc) {
      ++acc.domains;
      if (addrs.size() > 1) ++acc.multi_ip;
      if (prefixes.size() > 1) ++acc.multi_24;
      if (asns.size() > 1) ++acc.multi_asn;
    };
    bump(total);
    int c = dataset.country[i];
    if (c >= 0) {
      auto it = wanted.find(c);
      if (it != wanted.end()) bump(per_country[it->second]);
    }
  }

  std::vector<DiversityRow> rows;
  rows.push_back(total.Finish("Total"));
  for (const std::string& code : country_codes) {
    auto it = per_country.find(code);
    rows.push_back(it == per_country.end() ? DiversityRow{code, 0, 0, 0, 0}
                                           : it->second.Finish(code));
  }
  return rows;
}

std::vector<LevelDiversityRow> AnalyzeDiversityByLevel(
    const ActiveDataset& dataset) {
  std::map<int, std::pair<int64_t, int64_t>> acc;  // level -> (multi24, total)
  for (const MeasurementResult& r : dataset.results) {
    if (!r.parent_has_records || r.AllNs().size() < 2) continue;
    std::vector<geo::IPv4> addrs = r.NsAddresses();
    if (addrs.empty()) continue;
    std::set<uint32_t> prefixes;
    for (geo::IPv4 ip : addrs) prefixes.insert(ip.Slash24().bits());
    int level = static_cast<int>(r.domain.LabelCount());
    ++acc[level].second;
    if (prefixes.size() > 1) ++acc[level].first;
  }
  std::vector<LevelDiversityRow> out;
  for (const auto& [level, counts] : acc) {
    LevelDiversityRow row;
    row.level = level;
    row.domains = counts.second;
    row.pct_multi_24 =
        counts.second > 0 ? double(counts.first) / double(counts.second) : 0.0;
    out.push_back(row);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Defective delegations
// ---------------------------------------------------------------------------

DelegationHealth ClassifyDelegation(const MeasurementResult& result) {
  int64_t parent_hosts = 0;
  int64_t defective = 0;
  for (const NsHostResult& host : result.hosts) {
    if (!host.in_parent_set) continue;
    ++parent_hosts;
    if (HostDefective(host)) ++defective;
  }
  if (parent_hosts == 0 || defective == 0) return DelegationHealth::kHealthy;
  return defective == parent_hosts ? DelegationHealth::kFullyDefective
                                   : DelegationHealth::kPartiallyDefective;
}

DelegationSummary AnalyzeDelegations(const ActiveDataset& dataset) {
  DelegationSummary out;
  std::map<int, DelegationSummary::CountryRow> by_country;
  for (size_t i = 0; i < dataset.results.size(); ++i) {
    const MeasurementResult& r = dataset.results[i];
    if (!r.parent_has_records) continue;
    ++out.domains_considered;
    DelegationHealth health = ClassifyDelegation(r);
    int c = dataset.country[i];
    DelegationSummary::CountryRow* row = nullptr;
    if (c >= 0) {
      row = &by_country[c];
      row->code = dataset.metas[c].code;
      ++row->domains;
    }
    if (health == DelegationHealth::kPartiallyDefective) {
      ++out.partially_defective;
      if (row != nullptr) ++row->partial;
    } else if (health == DelegationHealth::kFullyDefective) {
      ++out.fully_defective;
      if (row != nullptr) ++row->full;
    }
  }
  for (auto& [c, row] : by_country) out.by_country.push_back(std::move(row));
  return out;
}

// ---------------------------------------------------------------------------
// Parent/child consistency
// ---------------------------------------------------------------------------

ConsistencyClass ClassifyConsistency(const MeasurementResult& result) {
  if (!result.parent_has_records || result.child_ns.empty() ||
      !result.child_any_authoritative) {
    return ConsistencyClass::kNotComparable;
  }
  std::set<dns::Name> p(result.parent_ns.begin(), result.parent_ns.end());
  std::set<dns::Name> c(result.child_ns.begin(), result.child_ns.end());
  if (p == c) return ConsistencyClass::kEqual;
  std::vector<dns::Name> common;
  std::set_intersection(p.begin(), p.end(), c.begin(), c.end(),
                        std::back_inserter(common));
  if (!common.empty()) {
    if (std::includes(c.begin(), c.end(), p.begin(), p.end())) {
      return ConsistencyClass::kChildSuperset;
    }
    if (std::includes(p.begin(), p.end(), c.begin(), c.end())) {
      return ConsistencyClass::kParentSuperset;
    }
    return ConsistencyClass::kOverlapNeither;
  }
  // Disjoint name sets: compare IP(P) vs IP(C).
  std::set<geo::IPv4> ip_p, ip_c;
  for (const NsHostResult& host : result.hosts) {
    for (geo::IPv4 ip : host.addresses) {
      if (p.contains(host.host)) ip_p.insert(ip);
      if (c.contains(host.host)) ip_c.insert(ip);
    }
  }
  for (geo::IPv4 ip : ip_p) {
    if (ip_c.contains(ip)) return ConsistencyClass::kDisjointSharedIp;
  }
  return ConsistencyClass::kDisjoint;
}

ConsistencySummary AnalyzeConsistency(const ActiveDataset& dataset) {
  ConsistencySummary out;
  std::map<int, ConsistencySummary::CountryRow> by_country;
  int64_t disagree_total = 0;
  int64_t disagree_with_defect = 0;

  for (size_t i = 0; i < dataset.results.size(); ++i) {
    const MeasurementResult& r = dataset.results[i];
    ConsistencyClass klass = ClassifyConsistency(r);
    if (klass == ConsistencyClass::kNotComparable) continue;
    ++out.comparable;
    ++out.counts[klass];
    int level = static_cast<int>(r.domain.LabelCount());
    auto& [equal, total] = out.by_level[level];
    ++total;
    if (klass == ConsistencyClass::kEqual) ++equal;

    int c = dataset.country[i];
    if (c >= 0) {
      auto& row = by_country[c];
      row.code = dataset.metas[c].code;
      ++row.comparable;
      if (klass != ConsistencyClass::kEqual) ++row.disagree;
    }
    if (klass != ConsistencyClass::kEqual) {
      ++disagree_total;
      if (ClassifyDelegation(r) != DelegationHealth::kHealthy) {
        ++disagree_with_defect;
      }
    }
  }
  if (out.comparable > 0) {
    out.pct_equal =
        double(out.counts[ConsistencyClass::kEqual]) / double(out.comparable);
  }
  if (disagree_total > 0) {
    out.pct_disagree_with_partial_defect =
        double(disagree_with_defect) / double(disagree_total);
  }
  for (auto& [c, row] : by_country) out.by_country.push_back(std::move(row));
  return out;
}

// ---------------------------------------------------------------------------
// Hijack risk
// ---------------------------------------------------------------------------

HijackSummary AnalyzeHijackRisk(const ActiveDataset& dataset,
                                const registrar::PublicSuffixList& psl,
                                const registrar::RegistrarClient& registrar) {
  HijackSummary out;

  auto is_government = [&](const dns::Name& name) {
    for (const SeedDomain& seed : dataset.seeds) {
      if (name.IsSubdomainOf(seed.d_gov)) return true;
    }
    return false;
  };

  struct NsDomainInfo {
    std::set<size_t> domains;   // result indices referencing it
    std::set<int> countries;
  };
  std::map<dns::Name, NsDomainInfo> defective_refs;
  std::map<dns::Name, NsDomainInfo> dangling_refs;

  for (size_t i = 0; i < dataset.results.size(); ++i) {
    const MeasurementResult& r = dataset.results[i];
    if (!r.parent_has_records) continue;
    const bool any_defect = ClassifyDelegation(r) != DelegationHealth::kHealthy;
    ConsistencyClass klass = ClassifyConsistency(r);

    if (any_defect) {
      for (const NsHostResult& host : r.hosts) {
        if (!host.in_parent_set || !HostDefective(host)) continue;
        if (is_government(host.host)) continue;
        auto reg = psl.RegisteredDomain(host.host);
        if (!reg) continue;
        auto& info = defective_refs[*reg];
        info.domains.insert(i);
        if (dataset.country[i] >= 0) info.countries.insert(dataset.country[i]);
      }
    } else if (klass != ConsistencyClass::kEqual &&
               klass != ConsistencyClass::kNotComparable) {
      // §IV-D: inconsistent but fully responsive — dangling candidates are
      // the NS names not present in both P and C.
      std::set<dns::Name> p(r.parent_ns.begin(), r.parent_ns.end());
      std::set<dns::Name> c(r.child_ns.begin(), r.child_ns.end());
      for (const NsHostResult& host : r.hosts) {
        bool in_both = p.contains(host.host) && c.contains(host.host);
        if (in_both || is_government(host.host)) continue;
        auto reg = psl.RegisteredDomain(host.host);
        if (!reg) continue;
        auto& info = dangling_refs[*reg];
        info.domains.insert(i);
        if (dataset.country[i] >= 0) info.countries.insert(dataset.country[i]);
      }
    }
  }

  std::map<int, HijackSummary::CountryRow> by_country;
  std::set<size_t> affected_domains;
  std::set<int> affected_countries;
  out.candidate_ns_domains = static_cast<int64_t>(defective_refs.size());
  for (const auto& [reg, info] : defective_refs) {
    if (!registrar.IsAvailable(reg)) continue;
    ++out.available_ns_domains;
    if (auto price = registrar.PriceUsd(reg)) out.prices_usd.push_back(*price);
    if (info.countries.size() > 1) ++out.multi_country_ns_domains;
    affected_domains.insert(info.domains.begin(), info.domains.end());
    affected_countries.insert(info.countries.begin(), info.countries.end());
    for (int c : info.countries) {
      auto& row = by_country[c];
      row.code = dataset.metas[c].code;
      ++row.available_ns_domains;
    }
    for (size_t i : info.domains) {
      int c = dataset.country[i];
      if (c >= 0) ++by_country[c].affected_domains;
    }
  }
  out.affected_domains = static_cast<int64_t>(affected_domains.size());
  out.affected_countries = static_cast<int64_t>(affected_countries.size());
  for (auto& [c, row] : by_country) out.by_country.push_back(std::move(row));

  std::set<size_t> dangling_domains;
  std::set<int> dangling_countries;
  for (const auto& [reg, info] : dangling_refs) {
    if (!registrar.IsAvailable(reg)) continue;
    ++out.dangling_available_ns;
    if (auto price = registrar.PriceUsd(reg)) {
      out.dangling_prices_usd.push_back(*price);
    }
    dangling_domains.insert(info.domains.begin(), info.domains.end());
    dangling_countries.insert(info.countries.begin(), info.countries.end());
  }
  out.dangling_domains = static_cast<int64_t>(dangling_domains.size());
  out.dangling_countries = static_cast<int64_t>(dangling_countries.size());
  return out;
}

}  // namespace govdns::core
