#include "core/report.h"

#include <algorithm>
#include <cstdio>

#include "util/json.h"
#include "util/strings.h"
#include "util/table.h"

namespace govdns::core {

ResilienceReport BuildResilienceReport(const ActiveDataset& dataset) {
  ResilienceReport report;
  report.domains = static_cast<int64_t>(dataset.results.size());
  for (const MeasurementResult& r : dataset.results) {
    if (r.degraded) ++report.degraded_domains;
    report.totals += r.query_stats;
    report.max_queries_one_domain =
        std::max(report.max_queries_one_domain, r.query_stats.queries);
    report.total_logical_ms += r.logical_ms;
    report.max_logical_ms_one_domain =
        std::max(report.max_logical_ms_one_domain, r.logical_ms);
  }
  if (report.domains > 0) {
    report.avg_queries_per_domain =
        double(report.totals.queries) / double(report.domains);
  }
  return report;
}

std::string ResilienceReport::ToJson() const {
  util::JsonWriter w;
  w.BeginObject()
      .Kv("domains", domains)
      .Kv("degraded_domains", degraded_domains)
      .Kv("queries", int64_t(totals.queries))
      .Kv("retries", int64_t(totals.retries))
      .Kv("timeouts", int64_t(totals.timeouts))
      .Kv("unreachable", int64_t(totals.unreachable))
      .Kv("refused", int64_t(totals.refused))
      .Kv("malformed", int64_t(totals.malformed))
      .Kv("wrong_id", int64_t(totals.wrong_id))
      .Kv("truncated", int64_t(totals.truncated))
      .Kv("backoff_ms", int64_t(totals.backoff_ms))
      .Kv("breaker_skips", int64_t(totals.breaker_skips))
      .Kv("negative_cache_hits", int64_t(totals.negative_cache_hits))
      .Kv("budget_denied", int64_t(totals.budget_denied))
      .Kv("deadline_denied", int64_t(totals.deadline_denied))
      .Kv("max_queries_one_domain", int64_t(max_queries_one_domain))
      .Kv("avg_queries_per_domain", avg_queries_per_domain)
      .Kv("total_logical_ms", int64_t(total_logical_ms))
      .Kv("max_logical_ms_one_domain", int64_t(max_logical_ms_one_domain))
      .EndObject();
  return w.TakeString();
}

QuarantineReport BuildQuarantineReport(const ActiveDataset& dataset) {
  QuarantineReport report;
  report.total_domains = static_cast<int64_t>(dataset.results.size());
  // Per-country tallies, indexed like dataset.metas (+1 slot for unknown).
  std::vector<QuarantineReport::CountryRow> rows(dataset.metas.size() + 1);
  for (size_t i = 0; i < dataset.results.size(); ++i) {
    const int c = dataset.country[i];
    const size_t slot = (c >= 0 && static_cast<size_t>(c) < dataset.metas.size())
                            ? static_cast<size_t>(c)
                            : dataset.metas.size();
    ++rows[slot].domains;
    const QuarantineReason reason = dataset.results[i].quarantine_reason;
    if (reason == QuarantineReason::kNone) continue;
    ++report.quarantined;
    ++rows[slot].quarantined;
    switch (reason) {
      case QuarantineReason::kNone:
        break;
      case QuarantineReason::kHang:
        ++report.hang;
        break;
      case QuarantineReason::kBlackhole:
        ++report.blackhole;
        break;
      case QuarantineReason::kBudgetExceeded:
        ++report.budget_exceeded;
        break;
      case QuarantineReason::kWatchdogCancelled:
        ++report.watchdog_cancelled;
        break;
      case QuarantineReason::kVantageLost:
        ++report.vantage_lost;
        break;
    }
  }
  for (size_t slot = 0; slot < rows.size(); ++slot) {
    if (rows[slot].quarantined == 0) continue;
    rows[slot].code = slot < dataset.metas.size() ? dataset.metas[slot].code
                                                  : std::string("??");
    report.by_country.push_back(std::move(rows[slot]));
  }
  if (report.total_domains > 0) {
    report.coverage = double(report.total_domains - report.quarantined) /
                      double(report.total_domains);
  }
  return report;
}

StudyReport BuildReport(Study& study,
                        const std::vector<std::string>& diversity_countries) {
  GOVDNS_CHECK(study.has_mined() && study.has_active());
  StudyReport report;
  report.selection = study.selection_stats();
  report.pdns_per_year = CountPerYear(study.mined());
  report.funnel = study.active().ComputeFunnel();

  // Analyzers run over in-memory datasets — no transport, so logical time is
  // structurally zero; each phase still records item counts and (diagnostic)
  // wall time. `items` is the number of measured domains each analyzer
  // consumed unless noted.
  obs::PhaseProfiler prof;
  const int64_t active_n = static_cast<int64_t>(study.active().results.size());
  const int64_t mined_n = static_cast<int64_t>(study.mined().domains.size());
  auto analyze = [&](const char* name, int64_t items, auto&& body) {
    obs::PhaseProfiler::Scope phase(&prof, name);
    phase.set_items(items);
    body();
  };

  analyze("analyze.replication", active_n, [&] {
    report.replication = AnalyzeReplication(study.active());
  });
  analyze("analyze.diversity", active_n, [&] {
    report.diversity = AnalyzeDiversity(study.active(), *study.inputs().asn_db,
                                        diversity_countries);
  });
  analyze("analyze.d1ns_churn", mined_n, [&] {
    report.d1ns_churn = D1nsChurn(study.mined());
  });
  analyze("analyze.private_share", mined_n, [&] {
    report.private_share = PrivateShare(study.mined(), study.seeds());
  });

  static const ProviderMatcher kMatcher(DefaultProviderRules());
  ProviderAnalyzer analyzer(&kMatcher, study.inputs().countries);
  analyze("analyze.providers", mined_n, [&] {
    report.providers_first_year =
        analyzer.Analyze(study.mined(), study.mined().config.first_year);
    report.providers_last_year =
        analyzer.Analyze(study.mined(), study.mined().config.last_year);
  });

  analyze("analyze.delegations", active_n, [&] {
    report.delegations = AnalyzeDelegations(study.active());
  });
  analyze("analyze.hijack", active_n, [&] {
    report.hijack = AnalyzeHijackRisk(study.active(), *study.inputs().psl,
                                      *study.inputs().registrar);
  });
  analyze("analyze.consistency", active_n, [&] {
    report.consistency = AnalyzeConsistency(study.active());
  });
  analyze("analyze.resilience", active_n, [&] {
    report.resilience = BuildResilienceReport(study.active());
  });
  analyze("analyze.quarantine", active_n, [&] {
    report.quarantine = BuildQuarantineReport(study.active());
  });

  report.profile = study.profiler().records();
  for (obs::PhaseRecord& r : prof.records()) {
    report.profile.push_back(std::move(r));
  }
  return report;
}

void PrintReport(const StudyReport& report, std::ostream& os) {
  using util::Percent;
  using util::WithCommas;

  os << "== government DNS study report ==\n\n";
  os << "selection: " << report.selection.total << " countries, "
     << report.selection.broken_links << " dead portal links, "
     << report.selection.squatted_links << " squatted, "
     << report.selection.registered_domain_fallbacks
     << " registered-domain fallbacks\n";

  const auto& first = report.pdns_per_year.front();
  const auto& last = report.pdns_per_year.back();
  os << "passive DNS: " << WithCommas(first.domains) << " domains ("
     << first.year << ") -> " << WithCommas(last.domains) << " (" << last.year
     << ")\n";
  os << "active: " << WithCommas(report.funnel.queried) << " queried, "
     << WithCommas(report.funnel.parent_responded) << " parent responses, "
     << WithCommas(report.funnel.parent_has_records) << " with records\n\n";

  os << "-- replication --\n";
  os << ">=2 nameservers: " << Percent(report.replication.pct_at_least_two)
     << " of " << WithCommas(report.replication.domains_considered)
     << " domains\n";
  os << "d_1NS: " << WithCommas(report.replication.d1ns_count)
     << ", unresponsive: " << Percent(report.replication.d1ns_stale_pct)
     << "\n";
  if (!report.diversity.empty()) {
    const DiversityRow& total = report.diversity.front();
    os << "diversity (multi-NS domains): |IP|>1 "
       << Percent(total.pct_multi_ip) << ", |/24|>1 "
       << Percent(total.pct_multi_24) << ", |ASN|>1 "
       << Percent(total.pct_multi_asn) << "\n";
  }

  os << "\n-- providers --\n";
  os << "max countries on one provider: "
     << ProviderAnalyzer::MaxCountriesAnyProvider(report.providers_first_year)
     << " (" << report.providers_first_year.year << ") -> "
     << ProviderAnalyzer::MaxCountriesAnyProvider(report.providers_last_year)
     << " (" << report.providers_last_year.year << ")\n";

  double n = static_cast<double>(report.delegations.domains_considered);
  os << "\n-- defective delegations --\n";
  os << "partial: " << Percent(report.delegations.partially_defective / n)
     << ", full: " << Percent(report.delegations.fully_defective / n) << "\n";
  os << "registrable d_ns: " << report.hijack.available_ns_domains
     << " affecting " << report.hijack.affected_domains << " domains in "
     << report.hijack.affected_countries << " countries\n";

  os << "\n-- parent/child consistency --\n";
  os << "P = C: " << Percent(report.consistency.pct_equal) << " of "
     << WithCommas(report.consistency.comparable) << " comparable domains\n";
  os << "dangling-but-responsive d_ns: "
     << report.hijack.dangling_available_ns << " ("
     << report.hijack.dangling_domains << " domains, "
     << report.hijack.dangling_countries << " countries)\n";

  const ResilienceReport& res = report.resilience;
  char avg[32];
  std::snprintf(avg, sizeof(avg), "%.1f", res.avg_queries_per_domain);
  os << "\n-- measurement resilience --\n";
  os << WithCommas(int64_t(res.totals.queries)) << " queries over "
     << WithCommas(res.domains) << " domains (avg " << avg << ", max "
     << WithCommas(int64_t(res.max_queries_one_domain)) << "); "
     << WithCommas(int64_t(res.totals.retries)) << " retries, "
     << WithCommas(int64_t(res.totals.timeouts)) << " timeouts, "
     << WithCommas(int64_t(res.totals.refused)) << " refused, "
     << WithCommas(int64_t(res.totals.malformed + res.totals.wrong_id +
                           res.totals.truncated))
     << " malformed/spoofed/truncated\n";
  os << "breaker skips: " << WithCommas(int64_t(res.totals.breaker_skips))
     << ", negative-cache hits: "
     << WithCommas(int64_t(res.totals.negative_cache_hits))
     << ", degraded domains: " << WithCommas(res.degraded_domains) << "\n";
  os << "logical time: " << WithCommas(int64_t(res.total_logical_ms))
     << " ms summed over domains (max "
     << WithCommas(int64_t(res.max_logical_ms_one_domain))
     << " ms for one domain)\n";

  const QuarantineReport& q = report.quarantine;
  if (q.quarantined > 0) {
    // Coverage annotations: only rendered for degraded runs, so a healthy
    // report reads exactly as it did before the degradation model existed.
    os << "\n-- degraded coverage --\n";
    os << "quarantined: " << WithCommas(q.quarantined) << " of "
       << WithCommas(q.total_domains) << " domains (coverage "
       << Percent(q.coverage) << "): " << WithCommas(q.hang) << " hang, "
       << WithCommas(q.blackhole) << " blackhole, "
       << WithCommas(q.budget_exceeded) << " budget-exceeded, "
       << WithCommas(q.watchdog_cancelled) << " watchdog-cancelled";
    if (q.vantage_lost > 0) {
      os << ", " << WithCommas(q.vantage_lost) << " vantage-lost";
    }
    os << "\n";
    for (const QuarantineReport::CountryRow& row : q.by_country) {
      os << "  " << row.code << ": " << WithCommas(row.quarantined) << " of "
         << WithCommas(row.domains) << " quarantined\n";
    }
  }

  if (!report.profile.empty()) {
    // Logical/item columns only: wall_ms is diagnostic and would make this
    // rendering differ between two same-seed runs.
    os << "\n-- phase profile --\n";
    for (const obs::PhaseRecord& r : report.profile) {
      os << r.name << ": " << WithCommas(r.items) << " items";
      if (r.logical_ms > 0) {
        os << ", " << WithCommas(int64_t(r.logical_ms)) << " logical ms";
      }
      os << "\n";
    }
  }
}

}  // namespace govdns::core
