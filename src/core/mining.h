// Passive-DNS mining (§III-B/C, Figures 2, 3, 6, 7).
//
// From each seed d_gov, a left-hand wildcard search discovers every zone in
// the government namespace. Records are stability-filtered, and each
// domain-year is summarized by the mode of its daily nameserver counts
// (paper Fig. 5). The miner also derives the active-measurement query list:
// domains seen in the collection window, minus disposable-looking names.
//
// Mine() shards the seed list over a worker pool (MinerOptions::workers)
// mirroring the measurement engine (DESIGN.md §6c/§6e/§6j): the database is
// frozen once into a flat PdnsSnapshot, a parallel pre-pass builds the
// global NS-name intern table up front (unique stable rdata per worker,
// merged into one byte-sorted table), and each worker then mines whole
// seeds against zero-copy entry spans, resolving rdata -> global id by
// bucket-accelerated binary search — no per-shard hash tables and no
// string copies on the hit path. The fold degenerates to a parallel concat
// plus a commutative stats merge; a final deterministic renumber pass
// restores first-seen seed-order ids, so the MinedDataset — domains,
// ns_names order, and stats — is byte-identical for any worker count (and
// to the pre-pool serial miner).
//
// Stability predicate (§III-C): a record is stable when
//
//     last_seen − first_seen >= stability_days      (default 7)
//
// i.e. the *gap* between first and last sighting must reach the threshold —
// the paper's own formulation, chosen because 7 days is the largest default
// cache TTL among the resolvers it surveys. Note this is NOT the inclusive
// calendar length `DayInterval::LengthDays()` (= last − first + 1): a record
// seen on day 0 and day 6 spans 7 calendar days but only a 6-day gap, and is
// dropped. An earlier revision tested `LengthDays() < stability_days`, which
// let such records through — one day of transient junk per record slipped
// into every yearly series (see MinerTest.StabilityBoundaryMatchesPaper).
#pragma once

#include <string>
#include <vector>

#include "core/types.h"
#include "obs/profile.h"
#include "pdns/db.h"
#include "util/civil_time.h"

namespace govdns::pdns {
class MappedPdnsSnapshot;
}  // namespace govdns::pdns

namespace govdns::core {

// Which statistic summarizes the daily NS-count list of a domain-year.
// The paper uses the mode (Fig. 5); the alternatives quantify how much that
// choice matters (see bench_ablation_nsdaily_stat).
enum class YearlyStatistic { kMode, kMin, kMax, kMean };

struct MiningConfig {
  int first_year = 2011;
  int last_year = 2020;
  // Minimum first-seen-to-last-seen gap (days) for a record to be stable:
  // keep iff last_seen − first_seen >= stability_days (see file comment).
  int stability_days = 7;
  YearlyStatistic statistic = YearlyStatistic::kMode;
  // The active-collection window (paper: 2020-01-01 .. 2021-02).
  util::DayInterval active_window{util::DayFromYmd(2020, 1, 1),
                                  util::DayFromYmd(2021, 2, 15)};
  bool filter_disposable = true;
  // Whether a PDNS entry must also pass the stability filter to pull its
  // domain into the active-measurement window. The paper-faithful default is
  // false: §III-B extracts raw FQDNs seen during the collection window for
  // querying (transients are then handled by the second round and the
  // responsiveness funnel), while the §III-C stability filter applies only
  // to the longitudinal series. Set true to require a stable sighting — an
  // ablation-style tightening that keeps one-day wonders out of the query
  // list entirely.
  bool require_stable_for_active = false;

  int year_count() const { return last_year - first_year + 1; }

  friend bool operator==(const MiningConfig&, const MiningConfig&) = default;
};

// Stable 64-bit digest of every MiningConfig field. Folded into the study's
// checkpoint fingerprint so a journal mined under a different config is
// rejected at frame-load time, before any payload is trusted.
uint64_t MiningConfigFingerprint(const MiningConfig& config);

// Execution knobs of one Mine() pass. Deliberately NOT part of MiningConfig:
// the config travels inside the MinedDataset, and nothing about how the work
// was scheduled may appear in the dataset (byte-identical across worker
// counts is the pool's contract).
struct MinerOptions {
  // Worker threads sharding the seed list; 0 picks
  // std::thread::hardware_concurrency(), clamped to the seed count.
  int workers = 0;
  // Optional sub-phase profiling sink (not owned; may be null): records
  // "mining.freeze", "mining.fold.intern" (+ ".merge" for its serial tail),
  // "mining.shard", "mining.fold.{renumber,sort,concat}", and the umbrella
  // "mining.fold" wall-time phases (DESIGN.md §6j).
  obs::PhaseProfiler* profiler = nullptr;
};

// One domain-year summary.
struct YearState {
  // Mode of the daily NS-count list; 0 = no stable records that year.
  int mode_ns_count = 0;
  // Interned ids of the distinct NS hostnames seen (stable records only).
  std::vector<int32_t> ns_ids;

  friend bool operator==(const YearState&, const YearState&) = default;
};

struct MinedDomain {
  dns::Name name;
  int country = -1;    // from the owning seed
  int seed_index = -1;
  std::vector<YearState> years;  // indexed by year - first_year
  bool disposable = false;
  bool in_active_window = false;

  bool HasData(int year_offset) const {
    return years[year_offset].mode_ns_count > 0;
  }

  friend bool operator==(const MinedDomain&, const MinedDomain&) = default;
};

// Deterministic bookkeeping of one Mine() pass. Pure function of (database,
// seeds, config); the study folds it into the observability metrics so the
// mining stage is not a black box between selection and measurement.
struct MiningStats {
  int64_t seeds = 0;
  int64_t entries_scanned = 0;     // PDNS entries examined
  int64_t entries_unstable = 0;    // dropped by the stability filter
  int64_t domains = 0;             // distinct owner names mined
  int64_t domains_disposable = 0;  // matching the disposable heuristic
  int64_t domains_in_active_window = 0;

  friend bool operator==(const MiningStats&, const MiningStats&) = default;
};

struct MinedDataset {
  MiningConfig config;
  std::vector<MinedDomain> domains;
  std::vector<std::string> ns_names;  // interned hostname table
  MiningStats stats;

  const std::string& NsName(int32_t id) const { return ns_names[id]; }

  friend bool operator==(const MinedDataset&, const MinedDataset&) = default;
};

class PdnsMiner {
 public:
  PdnsMiner(const pdns::PdnsDatabase* db, MiningConfig config = MiningConfig(),
            MinerOptions options = MinerOptions());
  // Snapshot-only miner (no database): for MineSnapshot callers that load a
  // pre-frozen snapshot from a file instead of freezing one.
  explicit PdnsMiner(MiningConfig config, MinerOptions options = MinerOptions());

  // Pure function of (database, seeds, config): the worker count and every
  // other MinerOptions knob may change only the wall time, never the bytes
  // (pinned by ParallelMineTest).
  MinedDataset Mine(const std::vector<SeedDomain>& seeds);

  // Mines a pre-frozen snapshot — owning or memory-mapped — skipping the
  // freeze phase entirely (the snapshot-file fast path; DESIGN.md §6i).
  // Both overloads run the identical sharded pipeline over the identical
  // entry data, so the dataset is byte-identical to Mine() on the source
  // database, for any worker count (pinned by SnapshotFileTest).
  MinedDataset MineSnapshot(const pdns::PdnsSnapshot& snapshot,
                            const std::vector<SeedDomain>& seeds);
  MinedDataset MineSnapshot(const pdns::MappedPdnsSnapshot& snapshot,
                            const std::vector<SeedDomain>& seeds);

  // The heuristic the pipeline uses in place of the paper's manual
  // "disposable domains" filtering: machine-generated-looking labels.
  static bool LooksDisposable(const dns::Name& name);

  // The query list for active measurement.
  static std::vector<dns::Name> ActiveQueryList(const MinedDataset& dataset);
  // Country index of each query-list entry, aligned with ActiveQueryList
  // (same filter, same order). The study's per-country budget accounting
  // (DESIGN.md §6g) keys on this.
  static std::vector<int> ActiveQueryCountries(const MinedDataset& dataset);

 private:
  // Shard + fold over any snapshot exposing the PdnsSnapshot lookup API.
  template <typename Snapshot>
  MinedDataset MineImpl(const Snapshot& snapshot,
                        const std::vector<SeedDomain>& seeds);

  // Emits the "mining.freeze" profile row for a pre-frozen substrate so the
  // profile schema is substrate-independent (see mining.cc for rationale).
  void RecordSnapshotAttach(size_t entries);

  const pdns::PdnsDatabase* db_;
  MiningConfig config_;
  MinerOptions options_;
};

// ---- Longitudinal aggregates over a mined dataset -------------------------

struct YearlyCounts {
  int year = 0;
  int64_t domains = 0;
  int64_t countries = 0;
  int64_t nameservers = 0;  // distinct hostnames
};
// Figures 2 and 3.
std::vector<YearlyCounts> CountPerYear(const MinedDataset& dataset);

struct D1nsChurnRow {
  int year = 0;
  int64_t d1ns_total = 0;
  double pct_overlap_2011 = 0.0;   // share of this year's d_1NS also 1-NS in 2011
  double pct_new_vs_prev = 0.0;    // share not d_1NS the year before
  double pct_2011_cohort_gone = 0.0;  // of 2011's d_1NS, share w/o data now
};
// Figure 6.
std::vector<D1nsChurnRow> D1nsChurn(const MinedDataset& dataset);

struct PrivateShareRow {
  int year = 0;
  double pct_d1ns_private = 0.0;
  double pct_all_private = 0.0;
};
// Figure 7: a domain-year counts as private when every stable NS hostname
// that year sits inside the domain's own d_gov (a lower bound, as in the
// paper).
std::vector<PrivateShareRow> PrivateShare(const MinedDataset& dataset,
                                          const std::vector<SeedDomain>& seeds);

}  // namespace govdns::core
