// Shared input types for the analysis pipeline.
//
// CountryMeta carries the public UN metadata the paper groups by (sub-
// region, plus the top-10-by-volume countries split out as their own
// groups). SeedDomain is the output of §III-A domain selection: one
// government namespace anchor (d_gov) per country.
#pragma once

#include <string>
#include <vector>

#include "dns/name.h"

namespace govdns::core {

struct CountryMeta {
  std::string code;       // ccTLD label
  std::string name;
  std::string subregion;  // UN M49 sub-region
  bool top10 = false;     // one of the 10 countries with the most PDNS data
};

// How a d_gov candidate was validated (§III-A).
enum class SeedVerification {
  kRegistryPolicy,      // ccTLD registry documents the suffix as restricted
  kRegisteredDomain,    // no documentation: fell back to registered domain
  kMsqCrossCheck,       // validated against the member-state questionnaire
};

struct SeedDomain {
  int country = -1;  // index into the CountryMeta list
  dns::Name d_gov;
  SeedVerification verification = SeedVerification::kRegistryPolicy;
  bool used_msq_fallback = false;  // KB link was broken or squatted
};

// The paper's grouping for Tables II/III: every country in a sub-region
// forms one group, except top-10 countries, which are their own groups.
// Returns a group key.
inline std::string ProviderGroupKey(const CountryMeta& meta) {
  return meta.top10 ? "country:" + meta.code : "subregion:" + meta.subregion;
}

}  // namespace govdns::core
