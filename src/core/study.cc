#include "core/study.h"

namespace govdns::core {

Study::Study(StudyInputs inputs)
    : inputs_(std::move(inputs)),
      resolver_(inputs_.transport, inputs_.root_hints) {
  GOVDNS_CHECK(inputs_.transport != nullptr);
  GOVDNS_CHECK(inputs_.pdns != nullptr);
  GOVDNS_CHECK(inputs_.psl != nullptr);
  GOVDNS_CHECK(inputs_.policy != nullptr);
}

const std::vector<SeedDomain>& Study::RunSelection() {
  obs::PhaseProfiler::Scope phase(&profiler_, "selection");
  const uint64_t t0 = inputs_.transport->now_ms();
  SeedSelector selector(&resolver_, inputs_.psl, inputs_.policy);
  seeds_ = selector.Select(inputs_.knowledge_base, &selection_stats_);
  phase.set_logical_ms(inputs_.transport->now_ms() - t0);
  phase.set_items(static_cast<int64_t>(seeds_.size()));
  return seeds_;
}

const MinedDataset& Study::RunMining(MinerOptions options) {
  GOVDNS_CHECK(!seeds_.empty());
  obs::PhaseProfiler::Scope phase(&profiler_, "mining");
  if (options.profiler == nullptr) options.profiler = &profiler_;
  PdnsMiner miner(inputs_.pdns, inputs_.mining, options);
  mined_ = std::make_unique<MinedDataset>(miner.Mine(seeds_));
  phase.set_items(mined_->stats.domains);
  if (obs_ != nullptr) {
    // Mining is a pure function of (database, seeds, config) — the worker
    // count may not change a byte of it — so its stats are kStable and land
    // as registry-level counters (no worker shards here).
    obs::MetricsRegistry& m = obs_->metrics();
    const MiningStats& s = mined_->stats;
    m.Add(m.DeclareCounter("mining.seeds"), s.seeds);
    m.Add(m.DeclareCounter("mining.entries_scanned"), s.entries_scanned);
    m.Add(m.DeclareCounter("mining.entries_unstable"), s.entries_unstable);
    m.Add(m.DeclareCounter("mining.domains"), s.domains);
    m.Add(m.DeclareCounter("mining.domains_disposable"), s.domains_disposable);
    m.Add(m.DeclareCounter("mining.domains_in_active_window"),
          s.domains_in_active_window);
    m.Add(m.DeclareCounter("mining.ns_names"),
          static_cast<int64_t>(mined_->ns_names.size()));
  }
  return *mined_;
}

const ActiveDataset& Study::RunActiveMeasurement(MeasurerOptions options) {
  GOVDNS_CHECK(mined_ != nullptr);
  obs::PhaseProfiler::Scope phase(&profiler_, "measurement");
  if (options.obs == nullptr) options.obs = obs_;
  std::vector<dns::Name> query_list = PdnsMiner::ActiveQueryList(*mined_);
  ActiveMeasurer measurer(inputs_.transport, inputs_.root_hints,
                          ResolverOptions(), options);
  std::vector<MeasurementResult> results = measurer.MeasureAll(query_list);
  measurement_counters_ = measurer.merged_counters();
  measurement_queries_sent_ = measurer.merged_queries_sent();
  measurement_cache_stats_ = measurer.shared_cache()->stats();
  // Logical time: the sum of per-domain scope clocks, not the global clock —
  // domain scopes run on context-local clocks, and the sum is the quantity
  // that stays deterministic across worker counts.
  uint64_t logical = 0;
  for (const MeasurementResult& r : results) logical += r.logical_ms;
  phase.set_logical_ms(logical);
  phase.set_items(static_cast<int64_t>(results.size()));
  active_ = std::make_unique<ActiveDataset>(
      ActiveDataset::Build(std::move(results), seeds_, inputs_.countries));
  return *active_;
}

void Study::RunAll() {
  RunSelection();
  RunMining();
  RunActiveMeasurement();
}

}  // namespace govdns::core
